// cartstencil: a compact Jacobi heat iteration on a Cartesian process
// grid, written the way an MPI practitioner would: the topology comes
// from CartCreate/Shift, boundary ranks communicate with ProcNull (no
// edge special-casing anywhere), and the halo columns travel as vector
// datatypes straight from device memory.
//
//	go run ./examples/cartstencil
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math"

	"mv2sim/internal/cluster"
	"mv2sim/internal/cuda"
	"mv2sim/internal/datatype"
	"mv2sim/internal/mem"
	"mv2sim/internal/mpi"
)

const (
	gridR, gridC = 2, 2 // process grid
	rows, cols   = 64, 64
	iters        = 20
)

func main() {
	cl := cluster.New(cluster.Config{Nodes: gridR * gridC, GPUMemBytes: 16 << 20})

	pitch := cols + 2
	rowType, _ := datatype.Contiguous(cols, datatype.Float64)
	rowType.MustCommit()
	colType, _ := datatype.Vector(rows+2, 1, pitch, datatype.Float64)
	colType.MustCommit()

	heat := make([]float64, gridR*gridC)
	err := cl.Run(func(n *cluster.Node) {
		r := n.Rank
		cart := r.Comm().CartCreate([]int{gridR, gridC}, []bool{false, false})
		north, south := cart.Shift(0, 1)
		west, east := cart.Shift(1, 1)

		field := n.Ctx.MustMalloc((rows + 2) * pitch * 8)
		next := n.Ctx.MustMalloc((rows + 2) * pitch * 8)
		// Hot spot at the south-east corner of rank 0's block, right at
		// the junction of all four ranks: diffusion must cross the halo
		// exchange to reach every neighbour.
		if r.Rank() == 0 {
			putF64(field, (rows*pitch+cols)*8, 1000)
			putF64(next, (rows*pitch+cols)*8, 1000)
		}

		off := func(row, col int) int { return (row*pitch + col) * 8 }
		for it := 0; it < iters; it++ {
			// Halo exchange: rows north/south, columns east/west. ProcNull
			// neighbours complete instantly, so no ifs.
			reqs := []*mpi.Request{
				cart.Irecv(field.Add(off(0, 1)), 1, rowType, north, 0),
				cart.Irecv(field.Add(off(rows+1, 1)), 1, rowType, south, 0),
				cart.Irecv(field.Add(off(0, 0)), 1, colType, west, 1),
				cart.Irecv(field.Add(off(0, cols+1)), 1, colType, east, 1),
			}
			cart.Send(field.Add(off(1, 1)), 1, rowType, north, 0)
			cart.Send(field.Add(off(rows, 1)), 1, rowType, south, 0)
			cart.Send(field.Add(off(0, 1)), 1, colType, west, 1)
			cart.Send(field.Add(off(0, cols)), 1, colType, east, 1)
			r.Waitall(reqs...)

			// Jacobi relaxation (the "kernel"; cost modeled on the device).
			done := n.Ctx.LaunchKernel(r.Proc(), kernelStream(n), rows*cols, 1.0, func() {
				for i := 1; i <= rows; i++ {
					for j := 1; j <= cols; j++ {
						v := 0.25 * (getF64(field, off(i-1, j)) + getF64(field, off(i+1, j)) +
							getF64(field, off(i, j-1)) + getF64(field, off(i, j+1)))
						putF64(next, off(i, j), v)
					}
				}
			})
			r.Proc().Wait(done)
			field, next = next, field
		}

		// Total heat on this rank.
		var sum float64
		for i := 1; i <= rows; i++ {
			for j := 1; j <= cols; j++ {
				sum += getF64(field, off(i, j))
			}
		}
		heat[r.Rank()] = sum
		r.Barrier()
	})
	if err != nil {
		log.Fatal(err)
	}

	total := 0.0
	for rank, h := range heat {
		fmt.Printf("rank %d (%d,%d): heat %8.3f\n", rank, rank/gridC, rank%gridC, h)
		total += h
	}
	fmt.Printf("\nheat diffused across the grid; every rank's share came through\n")
	fmt.Printf("device-resident vector datatypes (total in domain: %.3f)\n", total)
}

// kernelStream lazily creates one kernel stream per node.
var streams = map[*cluster.Node]*cuda.Stream{}

func kernelStream(n *cluster.Node) *cuda.Stream {
	if s, ok := streams[n]; ok {
		return s
	}
	s := n.Ctx.NewStream()
	streams[n] = s
	return s
}

func putF64(p mem.Ptr, off int, v float64) {
	binary.LittleEndian.PutUint64(p.Add(off).Bytes(8), math.Float64bits(v))
}

func getF64(p mem.Ptr, off int) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(p.Add(off).Bytes(8)))
}
