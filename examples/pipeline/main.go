// pipeline: productivity vs performance, quantified.
//
// The paper's Figure 4 shows three ways to move a non-contiguous GPU
// buffer between nodes. This example measures all three on the simulated
// testbed for one 4 MB vector and prints what each one costs — the
// blocking version is simple and slow, the hand-written pipeline is fast
// and complicated, and MV2-GPU-NC is both fast and one line of MPI.
//
//	go run ./examples/pipeline
package main

import (
	"fmt"
	"log"

	"mv2sim/internal/osu"
	"mv2sim/internal/report"
	"mv2sim/internal/sim"
)

func main() {
	const msg = 4 << 20
	cfg := osu.VectorConfig{Iters: 3}

	fmt.Printf("One-way latency of a %s vector of 4-byte elements, GPU to GPU:\n\n", report.ByteSize(msg))
	results := map[osu.Design]sim.Time{}
	for _, d := range osu.Designs {
		lat, err := osu.VectorLatency(d, msg, cfg)
		if err != nil {
			log.Fatal(err)
		}
		results[d] = lat
		fmt.Printf("  %-28s %12.1f us\n", d.String(), lat.Micros())
	}

	blocking := results[osu.DesignCpy2DSend]
	manual := results[osu.DesignManualPipeline]
	nc := results[osu.DesignMV2GPUNC]

	fmt.Println()
	fmt.Printf("Hand-written pipeline vs blocking:  %s faster (lots of stream-juggling code)\n",
		report.Improvement(blocking, manual))
	fmt.Printf("MV2-GPU-NC vs blocking:             %s faster (one MPI_Send on a device pointer)\n",
		report.Improvement(blocking, nc))
	if nc <= manual {
		fmt.Printf("MV2-GPU-NC vs hand-written:         %s faster — auto's kernel pack beats the memcpy2D pipeline\n",
			report.Improvement(manual, nc))
	} else {
		fmt.Printf("MV2-GPU-NC vs hand-written:         within %.1f%% — the library matches expert code\n",
			100*(float64(nc)/float64(manual)-1))
	}
}
