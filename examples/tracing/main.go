// Tracing: watch the paper's five-stage pipeline run.
//
// Two ranks exchange one large strided vector — the same transparent
// device-to-device send as examples/quickstart — but with the internal/obs
// tracing layer attached. Three tracers observe the identical task stream:
//
//   - ChromeTracer writes trace.json; open it at https://ui.perfetto.dev
//     to see pack/D2H/RDMA/H2D/unpack as overlapping tracks per rank,
//     HCA byte counters, and vbuf-pool occupancy.
//   - StatsTracer prints a per-kind table (how many packs, how long).
//   - BusyTimeTracer reports how hard each resource worked.
//
// Tracing is opt-in: drop the Tracers field and every instrumented hot
// path reverts to its zero-allocation fast path.
//
//	go run ./examples/tracing
package main

import (
	"fmt"
	"log"
	"os"

	"mv2sim/internal/cluster"
	"mv2sim/internal/datatype"
	"mv2sim/internal/mem"
	"mv2sim/internal/obs"
)

func main() {
	chrome := obs.NewChromeTracer()
	stats := obs.NewStatsTracer()
	busy := obs.NewBusyTimeTracer()
	cl := cluster.New(cluster.Config{
		Nodes:       2,
		GPUMemBytes: 64 << 20,
		Tracers:     []obs.Tracer{chrome, stats, busy},
	})

	// A 1 MB packed message strided across a 4 MB matrix region: big
	// enough for the rendezvous pipeline to chunk it 16 ways.
	vec, err := datatype.Vector(1<<18, 1, 4, datatype.Float32)
	if err != nil {
		log.Fatal(err)
	}
	vec.MustCommit()

	err = cl.Run(func(n *cluster.Node) {
		r := n.Rank
		buf := n.Ctx.MustMalloc(vec.Span(1))
		if r.Rank() == 0 {
			mem.Fill(buf, vec.Span(1), func(i int) byte { return byte(i) })
			r.Send(buf, 1, vec, 1, 0)
		} else {
			r.Recv(buf, 1, vec, 0, 0)
		}
	})
	if err != nil {
		log.Fatal(err)
	}

	f, err := os.Create("trace.json")
	if err != nil {
		log.Fatal(err)
	}
	if _, err := chrome.WriteTo(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote trace.json: %d events on %d tracks — open in https://ui.perfetto.dev\n\n",
		chrome.Events(), len(chrome.Tracks()))

	fmt.Println(stats.Table("Task kinds (one 1 MB vector send)"))

	from, to := busy.Window()
	fmt.Printf("resource utilization over the %.1f us window:\n", (to - from).Micros())
	for _, where := range []string{"gpu0.d2dEngine", "gpu0.d2hEngine", "hca0.tx", "gpu1.h2dEngine", "gpu1.d2dEngine"} {
		fmt.Printf("  %-16s %5.1f%%\n", where, 100*busy.Utilization(where, from, to))
	}
}
