// halo2d: the 9-point-stencil halo exchange from the paper's application
// study, on a 2x2 process grid, run with BOTH exchange styles:
//
//   - Def:        cudaMemcpy/cudaMemcpy2D staging + MPI on host buffers
//     (Figure 4(a) — what SHOC's Stencil2D originally did);
//   - MV2-GPU-NC: device buffers + MPI datatypes straight into Send/Recv
//     (Figure 4(c) — the paper's contribution).
//
// Both runs are validated against a sequential reference computation, and
// the program prints the per-iteration times side by side.
//
//	go run ./examples/halo2d
package main

import (
	"fmt"
	"log"

	"mv2sim/internal/shoc"
)

func main() {
	base := shoc.Params{
		GridRows: 2, GridCols: 2,
		Rows: 256, Cols: 256,
		Prec:     shoc.F32,
		Iters:    3,
		Warmup:   1,
		Validate: true,
	}

	fmt.Println("2x2 grid, 256x256 cells/rank, single precision, validated against a serial reference")
	fmt.Println()
	var times [2]string
	for i, v := range []shoc.Variant{shoc.Def, shoc.NC} {
		p := base
		p.Variant = v
		res, err := shoc.Run(p)
		if err != nil {
			log.Fatalf("%v: %v", v, err)
		}
		times[i] = fmt.Sprintf("%-22s median iteration %10.1f us  (validated: %v)",
			v, res.MedianIter.Micros(), res.Validated)
	}
	for _, t := range times {
		fmt.Println(t)
	}
	fmt.Println()
	fmt.Println("Identical fields, less code, lower time — the paper's Table I + II story.")
}
