// Quickstart: the paper's programming model in a dozen lines.
//
// Two ranks, each with a GPU. Rank 0 owns a strided column inside a
// matrix in *device memory* and sends it with a committed MPI vector
// datatype — no cudaMemcpy anywhere. The library (internal/core) detects
// the device pointer and runs the GPU-offloaded, pipelined transfer of
// the paper transparently.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"mv2sim/internal/cluster"
	"mv2sim/internal/datatype"
	"mv2sim/internal/mem"
)

func main() {
	// An 8-node testbed like the paper's: one Fermi-class GPU and one QDR
	// HCA per node. Two nodes are enough here.
	cl := cluster.New(cluster.Config{Nodes: 2, GPUMemBytes: 64 << 20})

	// A column of a 1024x1024 float matrix: 1024 elements, one float wide,
	// 1024 floats apart — MPI_Type_vector(1024, 1, 1024, MPI_FLOAT).
	column, err := datatype.Vector(1024, 1, 1024, datatype.Float32)
	if err != nil {
		log.Fatal(err)
	}
	column.MustCommit()

	const matrixBytes = 1024 * 1024 * 4
	err = cl.Run(func(n *cluster.Node) {
		r := n.Rank
		matrix := n.Ctx.MustMalloc(matrixBytes) // device memory
		switch r.Rank() {
		case 0:
			mem.Fill(matrix, matrixBytes, func(i int) byte { return byte(i % 251) })
			// Device pointer straight into MPI_Send — that's the paper.
			r.Send(matrix, 1, column, 1, 0)
			fmt.Printf("rank 0: sent one %d-byte strided column at t=%v\n",
				column.Size(), r.Now())
		case 1:
			st := r.Recv(matrix, 1, column, 0, 0)
			fmt.Printf("rank 1: received %d bytes from rank %d at t=%v\n",
				st.Bytes, st.Source, r.Now())
			// Verify a few strided elements landed where the type says.
			for _, row := range []int{0, 500, 1023} {
				off := row * 1024 * 4
				fmt.Printf("  element %4d: % x\n", row, matrix.Add(off).Bytes(4))
			}
		}
	})
	if err != nil {
		log.Fatal(err)
	}
}
