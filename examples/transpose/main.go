// transpose: a distributed matrix transpose between two GPUs using only
// MPI datatypes — the classic derived-datatype trick, running on device
// memory.
//
// The sender describes one matrix column as MPI_Type_vector(rows, 1, cols)
// and resizes its extent to one element, so sending `cols` of them streams
// the columns out in order: the packed stream *is* the transposed matrix.
// The receiver just receives a contiguous block. No explicit packing, no
// staging copies in application code; the library's GPU path does the
// gather with its pack kernel because this layout is not a uniform 2D
// shape.
//
//	go run ./examples/transpose
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math"

	"mv2sim/internal/cluster"
	"mv2sim/internal/datatype"
	"mv2sim/internal/mem"
)

const (
	rows = 96
	cols = 64
)

func main() {
	col, err := datatype.Vector(rows, 1, cols, datatype.Float32)
	if err != nil {
		log.Fatal(err)
	}
	col.MustCommit()
	// Shrink the extent to one float so consecutive "columns" start one
	// element apart (MPI_Type_create_resized).
	colStep, err := datatype.Resized(col, 0, 4)
	if err != nil {
		log.Fatal(err)
	}
	colStep.MustCommit()

	cl := cluster.New(cluster.Config{Nodes: 2, GPUMemBytes: 32 << 20})
	err = cl.Run(func(n *cluster.Node) {
		r := n.Rank
		switch r.Rank() {
		case 0:
			matrix := n.Ctx.MustMalloc(rows * cols * 4)
			for i := 0; i < rows; i++ {
				for j := 0; j < cols; j++ {
					putF32(matrix, (i*cols+j)*4, float32(i*1000+j))
				}
			}
			// Sending cols column-types transposes on the wire.
			r.Send(matrix, cols, colStep, 1, 0)
			fmt.Printf("rank 0: sent %dx%d matrix as %d column vectors\n", rows, cols, cols)
		case 1:
			transposed := n.Ctx.MustMalloc(cols * rows * 4)
			st := r.Recv(transposed, cols*rows, datatype.Float32, 0, 0)
			fmt.Printf("rank 1: received %d bytes; verifying transpose...\n", st.Bytes)
			for j := 0; j < cols; j++ {
				for i := 0; i < rows; i++ {
					got := getF32(transposed, (j*rows+i)*4)
					want := float32(i*1000 + j)
					if got != want {
						log.Fatalf("transpose[%d][%d] = %v, want %v", j, i, got, want)
					}
				}
			}
			fmt.Println("rank 1: transpose verified element-for-element")
		}
	})
	if err != nil {
		log.Fatal(err)
	}
}

func putF32(p mem.Ptr, off int, v float32) {
	binary.LittleEndian.PutUint32(p.Add(off).Bytes(4), math.Float32bits(v))
}

func getF32(p mem.Ptr, off int) float32 {
	return math.Float32frombits(binary.LittleEndian.Uint32(p.Add(off).Bytes(4)))
}
