module mv2sim

go 1.22
