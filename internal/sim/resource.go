package sim

import "fmt"

// Resource models a server pool with fixed capacity and a FIFO wait queue.
// It is the building block for every contended piece of simulated hardware:
// a GPU copy engine (capacity 1), an InfiniBand link (capacity 1), a pool
// of DMA channels (capacity n).
//
// Ownership is handed off directly from Release to the head waiter, so a
// releasing process cannot barge back in front of queued waiters.
type Resource struct {
	e     *engineCore
	name  string
	cap   int
	inUse int
	queue []*Event // one wakeup event per waiter, FIFO

	// Stats.
	acquires   uint64
	maxQueue   int
	busyTime   Time // total slot-occupied time (integrated over slots)
	lastChange Time
}

// NewResource creates a resource with the given capacity (>0).
func (e *engineCore) NewResource(name string, capacity int) *Resource {
	if capacity <= 0 {
		panic("sim: resource capacity must be positive: " + name)
	}
	return &Resource{e: e, name: name, cap: capacity}
}

// Name returns the resource name.
func (r *Resource) Name() string { return r.name }

// Capacity returns the number of slots.
func (r *Resource) Capacity() int { return r.cap }

// InUse returns the number of currently occupied slots.
func (r *Resource) InUse() int { return r.inUse }

// QueueLen returns the number of processes waiting to acquire.
func (r *Resource) QueueLen() int { return len(r.queue) }

func (r *Resource) accountChange() {
	r.busyTime += Time(int64(r.inUse) * int64(r.e.now-r.lastChange))
	r.lastChange = r.e.now
}

// Acquire blocks until a slot is free and takes it.
func (r *Resource) Acquire(p *Proc) {
	if r.inUse < r.cap && len(r.queue) == 0 {
		r.accountChange()
		r.inUse++
		r.acquires++
		return
	}
	ev := r.e.NewEvent(r.name + ".grant")
	r.queue = append(r.queue, ev)
	if len(r.queue) > r.maxQueue {
		r.maxQueue = len(r.queue)
	}
	p.Wait(ev)
	// Slot was transferred to us by Release; accounting already done there.
	r.acquires++
}

// TryAcquire takes a slot if one is immediately free and reports success.
func (r *Resource) TryAcquire() bool {
	if r.inUse < r.cap && len(r.queue) == 0 {
		r.accountChange()
		r.inUse++
		r.acquires++
		return true
	}
	return false
}

// Release frees one slot. If waiters are queued, the slot passes directly
// to the head waiter (the slot never becomes observably free in between).
// Release may be called from any context.
func (r *Resource) Release() {
	if r.inUse <= 0 {
		panic("sim: release of idle resource " + r.name)
	}
	if len(r.queue) > 0 {
		head := r.queue[0]
		r.queue = r.queue[1:]
		// inUse is unchanged: the slot moves from releaser to waiter.
		head.Trigger()
		return
	}
	r.accountChange()
	r.inUse--
}

// Use acquires the resource, holds it for d, then releases it. This is the
// common "occupy hardware for a modeled duration" idiom.
func (r *Resource) Use(p *Proc, d Time) {
	r.Acquire(p)
	p.Sleep(d)
	r.Release()
}

// Utilization returns the mean fraction of capacity occupied between the
// start of the simulation and now.
func (r *Resource) Utilization() float64 {
	if r.e.now == 0 {
		return 0
	}
	busy := r.busyTime + Time(int64(r.inUse)*int64(r.e.now-r.lastChange))
	return float64(busy) / float64(int64(r.cap)*int64(r.e.now))
}

// Stats returns a short human-readable statistics line.
func (r *Resource) Stats() string {
	return fmt.Sprintf("%s: cap=%d acquires=%d maxQueue=%d util=%.1f%%",
		r.name, r.cap, r.acquires, r.maxQueue, 100*r.Utilization())
}
