// Package sim implements a deterministic discrete-event simulation engine.
//
// The engine advances a virtual clock by executing scheduled items in
// non-decreasing time order. Three kinds of items exist: callbacks, which
// run to completion inside the engine's goroutine, process resumptions,
// which hand control to a cooperative process, and tasks — pure host-memory
// work (no engine calls, no observable emissions) that an engine is free to
// execute off the dispatch goroutine as long as the bytes are in place when
// the task's slot in (time, seq) order is reached.
//
// Processes are ordinary goroutines wrapped by Proc. Exactly one process
// (or the engine itself) executes at any instant; control is transferred
// explicitly when a process blocks in Sleep, Wait, or a resource/queue
// operation. This cooperative single-executor discipline makes the whole
// simulation race-free and fully deterministic: the same program produces
// the same event trace on every run.
//
// Two engines implement the Engine interface: the default SerialEngine
// (New) runs everything, tasks included, on the dispatch goroutine; the
// ParallelEngine (NewParallel) farms tasks out to a GOMAXPROCS-sized
// worker pool and joins each task at its committed slot, which keeps the
// event order — and therefore every trace byte — identical to serial.
//
// All simulated components in this repository (GPU DMA engines, the
// InfiniBand fabric, the MPI progress engine) are built from the three
// primitives in this package: Proc, Event and Resource.
package sim

import (
	"container/heap"
	"fmt"
	"runtime"
	"sort"
	"sync"
)

// Time is a point in virtual time, measured in nanoseconds from the start
// of the simulation. It is intentionally distinct from time.Duration so
// simulated and wall-clock time cannot be confused.
type Time int64

// Convenient virtual-time units.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds returns t expressed in seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros returns t expressed in microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Millis returns t expressed in milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// String renders the time with an auto-selected unit.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.6gs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.6gms", t.Millis())
	case t >= Microsecond:
		return fmt.Sprintf("%.6gus", t.Micros())
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// DurationOf converts a byte count and a bandwidth in bytes/second into the
// virtual time the transfer occupies. Bandwidths of zero or below panic:
// a cost model with a zero bandwidth is a configuration bug, not a runtime
// condition to tolerate.
func DurationOf(bytes int, bytesPerSec float64) Time {
	if bytesPerSec <= 0 {
		panic("sim: non-positive bandwidth")
	}
	return Time(float64(bytes) / bytesPerSec * float64(Second))
}

// itemKind discriminates the schedulable item types.
type itemKind uint8

const (
	kindCall itemKind = iota
	kindResume
	kindTask
)

// item is one entry in the event heap. Items are recycled through the
// engine's freelist, so the wg field must return to zero before recycle.
type item struct {
	t    Time
	seq  uint64 // tie-breaker: FIFO among items at the same instant
	kind itemKind
	fn   func()
	proc *Proc
	wg   sync.WaitGroup // joins an off-goroutine task at its slot
}

type itemHeap []*item

func (h itemHeap) Len() int { return len(h) }
func (h itemHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h itemHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *itemHeap) Push(x interface{}) { *h = append(*h, x.(*item)) }
func (h *itemHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}

// Engine is the simulation scheduler interface. Two implementations exist:
// SerialEngine (New), the default cooperative engine, and ParallelEngine
// (NewParallel), which executes tasks on a worker pool while preserving
// byte-identical event order. The interface is sealed: the unexported core
// accessor keeps outside packages from substituting schedulers the
// determinism argument has not been made for.
type Engine interface {
	// Now returns the current virtual time.
	Now() Time
	// Events returns the number of scheduled items dispatched so far.
	Events() uint64
	// Run dispatches items until the queue is empty.
	Run() error
	// RunUntil dispatches items with time ≤ limit, leaving later items queued.
	RunUntil(limit Time) error
	// CallAt schedules fn to run in engine context at absolute time t.
	CallAt(t Time, fn func())
	// CallAfter schedules fn to run d after the current time.
	CallAfter(d Time, fn func())
	// TaskAt schedules pure host-memory work to be complete at time t.
	TaskAt(t Time, fn func())
	// Spawn creates a process starting at the current time.
	Spawn(name string, fn func(p *Proc)) *Proc
	// SpawnAt creates a process starting at absolute time t.
	SpawnAt(t Time, name string, fn func(p *Proc)) *Proc
	// SpawnDaemon creates a server process exempt from deadlock detection.
	SpawnDaemon(name string, fn func(p *Proc)) *Proc
	// NewEvent creates a named, unfired event.
	NewEvent(name string) *Event
	// NewResource creates a resource with the given capacity.
	NewResource(name string, capacity int) *Resource
	// AllOf returns an event that fires once all inputs have fired.
	AllOf(name string, evs ...*Event) *Event
	// SetTracer installs a trace sink for process lifecycle events.
	SetTracer(fn func(t Time, msg string))
	// SetHook installs a structured lifecycle observer.
	SetHook(h Hook)
	// Shutdown terminates every parked goroutine; see SerialEngine docs.
	Shutdown()

	core() *engineCore
}

// NewByName resolves an engine-selection knob ("" or "serial" for the
// default cooperative engine, "parallel" for the worker-pool engine) to a
// fresh engine. It is the single parse point for -engine flags and the
// MV2SIM_ENGINE environment toggle.
func NewByName(name string) (Engine, error) {
	switch name {
	case "", "serial":
		return New(), nil
	case "parallel":
		return NewParallel(), nil
	}
	return nil, fmt.Errorf("sim: unknown engine %q (want serial or parallel)", name)
}

// engineCore is the scheduler state shared by both engines. All methods of
// the Engine interface except Shutdown are implemented here once; the
// launch hook is the only seam the ParallelEngine overrides (nil means
// "run tasks inline at their slot").
type engineCore struct {
	now     Time
	seq     uint64
	heap    itemHeap
	free    []*item       // recycled items, engine-goroutine only
	cur     *Proc         // process currently holding the baton, nil in engine context
	yield   chan struct{} // signalled by a process when it blocks or finishes
	nlive   int           // spawned processes that have not finished
	blocked map[*Proc]string
	nevents uint64 // dispatched item count, for stats and runaway guards

	shutdown     chan struct{}
	shutdownDone bool

	tracer func(t Time, msg string)
	hook   Hook

	self     Engine         // the concrete engine embedding this core
	launch   func(it *item) // set by ParallelEngine: start a task off-goroutine
	inflight sync.WaitGroup // launched tasks not yet finished
	goros    sync.WaitGroup // process + pool goroutines not yet exited
}

// Hook observes engine lifecycle events with structured callbacks, the
// machine-readable counterpart of SetTracer's formatted strings. All
// callbacks run in simulation order while the caller holds the baton, so
// implementations need no locking. internal/obs provides an adapter that
// turns these into trace tasks.
type Hook interface {
	// ProcStart fires when a spawned process begins executing.
	ProcStart(t Time, name string)
	// ProcEnd fires when a process function returns (or panics).
	ProcEnd(t Time, name string)
	// EventFired fires on the first Trigger of every event.
	EventFired(t Time, name string)
}

// SerialEngine is the default cooperative engine: every item, tasks
// included, executes on the dispatch goroutine. The zero value is not
// usable; create engines with New.
type SerialEngine struct {
	engineCore
}

// New creates an empty serial engine at virtual time zero.
func New() *SerialEngine {
	e := &SerialEngine{}
	e.engineCore.init(e)
	return e
}

// init wires the core's channels and back-reference to the concrete engine.
func (e *engineCore) init(self Engine) {
	e.yield = make(chan struct{})
	e.blocked = map[*Proc]string{}
	e.shutdown = make(chan struct{})
	e.self = self
}

// core seals the Engine interface to this package's implementations.
func (e *engineCore) core() *engineCore { return e }

// Shutdown terminates every process goroutine still blocked in the engine
// (daemons waiting for work, processes stuck on unfired events). Blocked
// goroutines otherwise live for the lifetime of the Go program and keep
// everything they reference — entire simulated memories — reachable, so
// long-running harnesses that build many engines must call Shutdown when
// each simulation finishes.
//
// Shutdown must only be called while the engine is not executing (i.e.
// after Run/RunUntil has returned). It is idempotent. The engine must not
// be used afterwards.
//
// Shutdown joins the goroutines before returning. Without the join, a
// harness that builds engines back to back races the previous run's
// dying goroutines: their stacks keep the dead simulation reachable, so
// the next run's allocation storm fights the collector over gigabytes
// that are about to be garbage (a 60x wall-clock cliff on a single-CPU
// host before the join was added).
func (e *engineCore) Shutdown() {
	if !e.shutdownDone {
		e.shutdownDone = true
		close(e.shutdown)
	}
	e.goros.Wait()
}

// Now returns the current virtual time.
func (e *engineCore) Now() Time { return e.now }

// Events returns the number of scheduled items dispatched so far.
func (e *engineCore) Events() uint64 { return e.nevents }

// SetTracer installs a trace sink invoked for process lifecycle events.
// Pass nil to disable tracing.
func (e *engineCore) SetTracer(fn func(t Time, msg string)) { e.tracer = fn }

// SetHook installs a structured lifecycle observer. Pass nil to disable.
func (e *engineCore) SetHook(h Hook) { e.hook = h }

func (e *engineCore) trace(format string, args ...interface{}) {
	if e.tracer != nil {
		e.tracer(e.now, fmt.Sprintf(format, args...))
	}
}

// newItem takes an item from the freelist, or allocates the first time.
// Only the engine goroutine (dispatch loop, or a process holding the
// baton) touches the freelist, so no locking is needed.
func (e *engineCore) newItem() *item {
	if n := len(e.free); n > 0 {
		it := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		return it
	}
	return &item{}
}

// recycle returns a dispatched item to the freelist. Callers must be done
// with every field; tasks are recycled only after their WaitGroup drained.
func (e *engineCore) recycle(it *item) {
	it.fn = nil
	it.proc = nil
	e.free = append(e.free, it)
}

// schedule inserts an item at absolute time t.
func (e *engineCore) schedule(t Time, it *item) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling into the past (%v < %v)", t, e.now))
	}
	it.t = t
	it.seq = e.seq
	e.seq++
	heap.Push(&e.heap, it)
}

// CallAt schedules fn to run in engine context at absolute time t.
// fn must not block; it may schedule further items, trigger events and
// spawn processes.
func (e *engineCore) CallAt(t Time, fn func()) {
	it := e.newItem()
	it.kind = kindCall
	it.fn = fn
	e.schedule(t, it)
}

// CallAfter schedules fn to run d after the current time.
func (e *engineCore) CallAfter(d Time, fn func()) {
	if d < 0 {
		panic("sim: negative delay")
	}
	e.CallAt(e.now+d, fn)
}

// TaskAt schedules fn — pure host-memory work that makes no engine calls
// and emits nothing observable — to be complete at absolute time t. The
// serial engine runs fn at the item's slot exactly like CallAt; the
// parallel engine starts fn on a pool worker immediately and joins it at
// the slot. Because fn only writes memory that nothing scheduled before
// the slot reads (the caller's obligation, checked by the race detector),
// both engines produce identical simulations.
func (e *engineCore) TaskAt(t Time, fn func()) {
	it := e.newItem()
	it.kind = kindTask
	it.fn = fn
	e.schedule(t, it)
	if e.launch != nil {
		it.wg.Add(1)
		e.inflight.Add(1)
		e.launch(it)
	}
}

// DeadlockError reports that the event queue drained while processes were
// still blocked on events that can no longer fire.
type DeadlockError struct {
	At      Time
	Blocked []string // "name: reason" for each stuck process
}

func (d *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at %v: %d process(es) blocked: %v", d.At, len(d.Blocked), d.Blocked)
}

// Run dispatches items until the queue is empty. It returns nil when the
// simulation drained cleanly (every spawned process finished), and a
// *DeadlockError when processes remain blocked with no pending items.
func (e *engineCore) Run() error {
	return e.run(-1)
}

// RunUntil dispatches items with time ≤ limit, leaving later items queued.
// The clock is advanced to limit even if the queue drains earlier.
func (e *engineCore) RunUntil(limit Time) error {
	err := e.run(limit)
	if err == nil && e.now < limit {
		e.now = limit
	}
	return err
}

func (e *engineCore) run(limit Time) error {
	// Every launched task must be joined before Run returns, even tasks
	// scheduled past a RunUntil limit: the caller is free to inspect any
	// simulated memory once the dispatch loop has stopped.
	defer e.inflight.Wait()
	for len(e.heap) > 0 {
		if limit >= 0 && e.heap[0].t > limit {
			return nil
		}
		it := heap.Pop(&e.heap).(*item)
		e.now = it.t
		e.nevents++
		switch it.kind {
		case kindCall:
			fn := it.fn
			e.recycle(it)
			fn()
		case kindResume:
			p := it.proc
			e.recycle(it)
			e.runProc(p)
		case kindTask:
			if e.launch != nil {
				it.wg.Wait()
			} else {
				it.fn()
			}
			e.recycle(it)
		}
	}
	var msgs []string
	for p, why := range e.blocked {
		if !p.daemon {
			msgs = append(msgs, p.name+": "+why)
		}
	}
	if len(msgs) > 0 {
		sort.Strings(msgs)
		return &DeadlockError{At: e.now, Blocked: msgs}
	}
	return nil
}

// runProc hands the baton to p and waits for it to yield it back.
// A panic inside the process is re-raised here, in the Run caller's
// goroutine, so it is observable and recoverable like any ordinary panic.
func (e *engineCore) runProc(p *Proc) {
	if p.done {
		panic("sim: resuming finished process " + p.name)
	}
	prev := e.cur
	e.cur = p
	p.resume <- struct{}{}
	<-e.yield
	e.cur = prev
	if p.panicked != nil {
		pv := p.panicked
		p.panicked = nil
		panic(pv)
	}
}

// Proc is a cooperative simulated process. Procs are created with Spawn and
// must only call blocking operations (Sleep, Wait, Resource.Acquire, ...)
// from their own goroutine while they hold the baton.
type Proc struct {
	e        *engineCore
	name     string
	resume   chan struct{}
	done     bool
	daemon   bool
	panicked interface{} // panic value captured from the process goroutine
}

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Engine returns the engine the process runs on.
func (p *Proc) Engine() Engine { return p.e.self }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.e.now }

// Spawn creates a process executing fn and schedules it to start at the
// current time (after already-queued items at this instant).
func (e *engineCore) Spawn(name string, fn func(p *Proc)) *Proc {
	return e.SpawnAt(e.now, name, fn)
}

// SpawnDaemon creates a server process that is allowed to remain blocked
// forever: it is excluded from deadlock detection, so a simulation whose
// ordinary processes all finish terminates cleanly even while daemons
// (e.g. CUDA stream workers, NIC service loops) still wait for work.
func (e *engineCore) SpawnDaemon(name string, fn func(p *Proc)) *Proc {
	p := e.SpawnAt(e.now, name, fn)
	p.daemon = true
	return p
}

// SpawnAt creates a process starting at absolute time t.
func (e *engineCore) SpawnAt(t Time, name string, fn func(p *Proc)) *Proc {
	p := &Proc{e: e, name: name, resume: make(chan struct{})}
	e.nlive++
	e.goros.Add(1)
	//lint:ignore detrand this goroutine IS the engine's process implementation: it baton-passes with the dispatcher (exactly one goroutine runs at a time, handed off via resume channels), so the Go scheduler never picks an interleaving
	go func() {
		defer e.goros.Done() // runs on normal return and on Goexit at Shutdown
		p.awaitResume()      // wait for first dispatch
		e.trace("proc %s: start", p.name)
		if e.hook != nil {
			e.hook.ProcStart(e.now, p.name)
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					p.panicked = r
				}
			}()
			fn(p)
		}()
		e.trace("proc %s: done", p.name)
		if e.hook != nil {
			e.hook.ProcEnd(e.now, p.name)
		}
		p.done = true
		e.nlive--
		e.yield <- struct{}{}
	}()
	it := e.newItem()
	it.kind = kindResume
	it.proc = p
	e.schedule(t, it)
	return p
}

// block releases the baton and waits until the engine resumes this process.
// reason is recorded for deadlock diagnostics.
func (p *Proc) block(reason string) {
	p.e.blocked[p] = reason
	p.e.yield <- struct{}{}
	p.awaitResume()
	delete(p.e.blocked, p)
}

// awaitResume parks the goroutine until the engine hands it the baton —
// or until Shutdown, in which case the goroutine exits so it stops
// retaining the simulation's memory.
func (p *Proc) awaitResume() {
	select {
	case <-p.resume:
	case <-p.e.shutdown:
		runtime.Goexit()
	}
}

// scheduleResume queues a wake-up for p at absolute time t.
func (p *Proc) scheduleResume(t Time) {
	it := p.e.newItem()
	it.kind = kindResume
	it.proc = p
	p.e.schedule(t, it)
}

// Sleep blocks the process for duration d of virtual time.
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		panic("sim: negative sleep")
	}
	p.scheduleResume(p.e.now + d)
	p.block("sleep")
}

// Yield reschedules the process at the current instant, letting other items
// queued for the same time run first.
func (p *Proc) Yield() {
	p.scheduleResume(p.e.now)
	p.block("yield")
}
