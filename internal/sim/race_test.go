package sim

import (
	"sync"
	"testing"
)

// workload is a representative simulation: a daemon service loop fed by a
// queue, a contended resource, event fan-in, and processes spawning
// processes. It returns the finish time and dispatched-event count so
// concurrent runs can be checked for determinism.
//
// Every baton handoff in here crosses the channel pair between the engine
// goroutine (Run) and a process goroutine (the Spawn closure), which is
// exactly the boundary the race detector must see happens-before edges on.
func workload(t *testing.T) (Time, uint64) {
	t.Helper()
	e := New()
	type job struct{ id int }
	q := NewQueue[job](e, "jobs")
	res := e.NewResource("worker", 2)
	done := make([]*Event, 8)

	e.SpawnDaemon("service", func(p *Proc) {
		for {
			j := q.Get(p)
			p.Sleep(Time(j.id+1) * Microsecond)
			done[j.id].Trigger()
		}
	})

	for i := 0; i < len(done); i++ {
		done[i] = e.NewEvent("done")
		i := i
		e.Spawn("producer", func(p *Proc) {
			res.Acquire(p)
			p.Sleep(10 * Nanosecond)
			res.Release()
			p.Yield()
			q.Put(job{id: i})
		})
	}

	e.Spawn("collector", func(p *Proc) {
		p.WaitAll(done...)
		// Spawning from process context hands the baton back through the
		// engine before the child's first instruction runs.
		child := e.NewEvent("child")
		e.Spawn("late", func(p *Proc) {
			p.Sleep(Microsecond)
			child.Trigger()
		})
		p.Wait(child)
	})

	e.CallAfter(5*Microsecond, func() {
		e.Spawn("callback-spawned", func(p *Proc) { p.Sleep(Nanosecond) })
	})

	if err := e.Run(); err != nil {
		t.Errorf("workload: %v", err)
	}
	now, events := e.Now(), e.Events()
	e.Shutdown() // terminates the still-blocked daemon goroutine
	return now, events
}

// TestRaceConcurrentEngines runs many independent engines simultaneously
// from separate OS-level goroutines. Engines share no state, so under
// `go test -race` this must be silent; it also checks the cooperative
// scheduler stays deterministic regardless of goroutine interleaving.
func TestRaceConcurrentEngines(t *testing.T) {
	const parallel = 8
	times := make([]Time, parallel)
	events := make([]uint64, parallel)
	var wg sync.WaitGroup
	for g := 0; g < parallel; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			times[g], events[g] = workload(t)
		}(g)
	}
	wg.Wait()
	for g := 1; g < parallel; g++ {
		if times[g] != times[0] || events[g] != events[0] {
			t.Errorf("run %d diverged: %v/%d events vs %v/%d",
				g, times[g], events[g], times[0], events[0])
		}
	}
}

// TestRaceHandoffStress bounces the baton across many process goroutines
// in one engine: a ring of processes each relaying a token through a
// queue. The engine goroutine and every process goroutine take turns on
// the shared scheduler state, so any missing synchronization in the
// resume/yield handoff shows up under -race.
func TestRaceHandoffStress(t *testing.T) {
	e := New()
	const ring, rounds = 64, 50
	queues := make([]*Queue[int], ring)
	for i := range queues {
		queues[i] = NewQueue[int](e, "ring")
	}
	var total int
	for i := 0; i < ring; i++ {
		i := i
		e.Spawn("relay", func(p *Proc) {
			for r := 0; r < rounds; r++ {
				v := queues[i].Get(p)
				p.Sleep(Nanosecond)
				if i == ring-1 {
					total += v
				} else {
					queues[i+1].Put(v + 1)
				}
			}
		})
	}
	e.Spawn("injector", func(p *Proc) {
		for r := 0; r < rounds; r++ {
			queues[0].Put(0)
			p.Sleep(Microsecond)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	e.Shutdown()
	if want := rounds * (ring - 1); total != want {
		t.Errorf("ring total = %d, want %d", total, want)
	}
}
