package sim

import (
	"runtime"
	"sync"
)

// ParallelEngine is the worker-pool engine: dispatch, processes, events
// and resources keep the exact cooperative single-executor discipline of
// the SerialEngine, but items scheduled with TaskAt — pure host-memory
// work such as DMA payload copies and pack/unpack kernel bodies — start
// on a GOMAXPROCS-sized pool the moment they are scheduled and are joined
// (WaitGroup barrier) when the dispatch loop reaches their (time, seq)
// slot. Scheduling decisions, clock advancement, tracer/hook output and
// therefore every trace byte are identical to the serial engine; only the
// wall-clock placement of the memory work moves.
//
// The safety obligation is structural: a task's footprint must not be
// touched by anything scheduled before the task's slot. Every TaskAt
// conversion site in this repository schedules the task and then sleeps
// the modeled duration, with readers sequenced behind events that fire at
// or after the slot — and `go test -race` verifies the claim empirically.
type ParallelEngine struct {
	engineCore

	mu      sync.Mutex
	cond    *sync.Cond
	pending []*item // FIFO of launched, unstarted tasks
	stopped bool
	workers int
}

// NewParallel creates an empty parallel engine at virtual time zero with
// one pool worker per available CPU.
func NewParallel() *ParallelEngine {
	e := &ParallelEngine{}
	e.engineCore.init(e)
	e.cond = sync.NewCond(&e.mu)
	e.launch = e.enqueue
	e.workers = runtime.GOMAXPROCS(0)
	if e.workers < 1 {
		e.workers = 1
	}
	for i := 0; i < e.workers; i++ {
		e.goros.Add(1)
		//lint:ignore detrand pool workers only execute barrier-joined TaskAt bodies: pure memory work with no engine calls and no observable output, joined at a fixed (time, seq) slot, so scheduling order cannot leak into the simulation
		go e.worker()
	}
	return e
}

// Workers returns the pool size.
func (e *ParallelEngine) Workers() int { return e.workers }

// enqueue hands a freshly scheduled task to the pool. Called only from the
// engine goroutine (the launch hook inside TaskAt).
func (e *ParallelEngine) enqueue(it *item) {
	e.mu.Lock()
	e.pending = append(e.pending, it)
	e.mu.Unlock()
	e.cond.Signal()
}

// worker drains the pending queue until Shutdown. Tasks run in FIFO pickup
// order across workers; completion order is irrelevant because each task
// is joined at its own slot.
func (e *ParallelEngine) worker() {
	defer e.goros.Done()
	for {
		e.mu.Lock()
		for len(e.pending) == 0 && !e.stopped {
			e.cond.Wait()
		}
		if len(e.pending) == 0 {
			// stopped with nothing left: drain complete.
			e.mu.Unlock()
			return
		}
		it := e.pending[0]
		e.pending[0] = nil
		e.pending = e.pending[1:]
		e.mu.Unlock()
		it.fn()
		it.wg.Done()
		e.inflight.Done()
	}
}

// Shutdown stops the pool workers and then terminates parked process
// goroutines exactly like the serial engine's Shutdown. Idempotent; must
// only be called after Run/RunUntil has returned, at which point the
// inflight barrier guarantees the pending queue is empty.
func (e *ParallelEngine) Shutdown() {
	e.mu.Lock()
	e.stopped = true
	e.mu.Unlock()
	e.cond.Broadcast()
	e.engineCore.Shutdown()
}
