package sim

import "fmt"

// Event is a one-shot condition that processes can wait on and that any
// execution context (a process or an engine callback) can trigger.
//
// Triggering is idempotent: the first Trigger fires the event, waking all
// current waiters at the current virtual time and running registered
// callbacks inline; later Trigger calls are no-ops. Waiting on an already
// fired event returns immediately without blocking.
type Event struct {
	e       *engineCore
	name    string
	fired   bool
	firedAt Time
	waiters []*Proc
	cbs     []func()
}

// NewEvent creates a named, unfired event.
func (e *engineCore) NewEvent(name string) *Event {
	return &Event{e: e, name: name}
}

// Name returns the event name given at creation.
func (ev *Event) Name() string { return ev.name }

// Fired reports whether the event has been triggered.
func (ev *Event) Fired() bool { return ev.fired }

// FiredAt returns the virtual time of the trigger. It panics if the event
// has not fired; check Fired first.
func (ev *Event) FiredAt() Time {
	if !ev.fired {
		panic("sim: FiredAt on unfired event " + ev.name)
	}
	return ev.firedAt
}

// Trigger fires the event. Waiters are resumed at the current instant in
// the order they began waiting; callbacks run inline, in registration
// order, before Trigger returns. Triggering an already-fired event is a
// no-op.
func (ev *Event) Trigger() {
	if ev.fired {
		return
	}
	ev.fired = true
	ev.firedAt = ev.e.now
	ev.e.trace("event %s: fired", ev.name)
	if ev.e.hook != nil {
		ev.e.hook.EventFired(ev.e.now, ev.name)
	}
	for _, p := range ev.waiters {
		p.scheduleResume(ev.e.now)
	}
	ev.waiters = nil
	cbs := ev.cbs
	ev.cbs = nil
	for _, fn := range cbs {
		fn()
	}
}

// OnTrigger registers fn to run when the event fires. If the event has
// already fired, fn runs immediately.
func (ev *Event) OnTrigger(fn func()) {
	if ev.fired {
		fn()
		return
	}
	ev.cbs = append(ev.cbs, fn)
}

// Wait blocks the process until the event fires. It returns immediately if
// the event has already fired.
func (p *Proc) Wait(ev *Event) {
	if ev.fired {
		return
	}
	ev.waiters = append(ev.waiters, p)
	p.block("wait " + ev.name)
}

// WaitAll blocks until every listed event has fired.
func (p *Proc) WaitAll(evs ...*Event) {
	for _, ev := range evs {
		p.Wait(ev)
	}
}

// WaitAny blocks until at least one listed event has fired and returns the
// index of the first fired event in argument order. It panics on an empty
// list.
//
// A process always waits on exactly one wakeup source, so WaitAny waits on
// a one-shot aggregate event wired to the inputs with OnTrigger. The
// aggregate's Trigger is idempotent, so later firings of other inputs are
// harmless. The callbacks registered on inputs that never fire persist for
// the inputs' lifetime; callers looping over long-lived events should wait
// on a Queue or Resource instead.
func (p *Proc) WaitAny(evs ...*Event) int {
	if len(evs) == 0 {
		panic("sim: WaitAny with no events")
	}
	for i, ev := range evs {
		if ev.fired {
			return i
		}
	}
	any := p.e.NewEvent("anyOf")
	for _, ev := range evs {
		ev.OnTrigger(any.Trigger)
	}
	p.Wait(any)
	for i, ev := range evs {
		if ev.fired {
			return i
		}
	}
	panic("sim: WaitAny woke with no fired event")
}

// AllOf returns a new event that fires once all inputs have fired. With no
// inputs the returned event is already fired.
func (e *engineCore) AllOf(name string, evs ...*Event) *Event {
	out := e.NewEvent(name)
	n := len(evs)
	if n == 0 {
		out.Trigger()
		return out
	}
	remaining := n
	for _, ev := range evs {
		ev.OnTrigger(func() {
			remaining--
			if remaining == 0 {
				out.Trigger()
			}
		})
	}
	return out
}

func (ev *Event) String() string {
	if ev.fired {
		return fmt.Sprintf("event(%s fired@%v)", ev.name, ev.firedAt)
	}
	return fmt.Sprintf("event(%s pending, %d waiters)", ev.name, len(ev.waiters))
}
