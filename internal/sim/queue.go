package sim

// Queue is an unbounded FIFO mailbox carrying values of type T between
// simulation contexts. Put never blocks; Get blocks the calling process
// until an item is available. Items are delivered in insertion order and
// waiters are served in arrival order.
//
// Queues are the message-passing primitive between simulated components,
// e.g. a NIC delivering packets to an MPI progress handler, or a stream
// worker consuming queued copy operations.
type Queue[T any] struct {
	e       *engineCore
	name    string
	items   []T
	waiters []*Event

	puts, gets uint64
	maxLen     int
}

// NewQueue creates an empty queue. The type parameter is chosen by the
// caller: sim.NewQueue[*packet](e, "nic0.rx").
func NewQueue[T any](e Engine, name string) *Queue[T] {
	return &Queue[T]{e: e.core(), name: name}
}

// Name returns the queue name.
func (q *Queue[T]) Name() string { return q.name }

// Len returns the number of queued items.
func (q *Queue[T]) Len() int { return len(q.items) }

// Put appends v and wakes the oldest waiter, if any. It may be called from
// any context.
func (q *Queue[T]) Put(v T) {
	q.items = append(q.items, v)
	q.puts++
	if len(q.items) > q.maxLen {
		q.maxLen = len(q.items)
	}
	if len(q.waiters) > 0 {
		head := q.waiters[0]
		q.waiters = q.waiters[1:]
		head.Trigger()
	}
}

// Get removes and returns the head item, blocking while the queue is empty.
//
// Wakeups are one-per-Put, and each woken waiter either consumes an item or
// (if a non-waiting Get at the same instant took it first) re-registers and
// blocks again, so no wakeup is ever lost.
func (q *Queue[T]) Get(p *Proc) T {
	for len(q.items) == 0 {
		ev := q.e.NewEvent(q.name + ".get")
		q.waiters = append(q.waiters, ev)
		p.Wait(ev)
	}
	v := q.items[0]
	var zero T
	q.items[0] = zero // release reference for GC
	q.items = q.items[1:]
	q.gets++
	return v
}

// TryGet removes and returns the head item without blocking.
func (q *Queue[T]) TryGet() (T, bool) {
	if len(q.items) == 0 {
		var zero T
		return zero, false
	}
	v := q.items[0]
	var zero T
	q.items[0] = zero
	q.items = q.items[1:]
	q.gets++
	return v, true
}
