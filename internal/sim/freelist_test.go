package sim

import "testing"

// TestEngineSteadyStateAllocs pins the item freelist: once an engine has
// run a warmup batch, further event scheduling must recycle items rather
// than allocate. The budget covers only the test's own closures — a
// thousand events through a freelist-less heap would show up as a
// thousand allocations.
func TestEngineSteadyStateAllocs(t *testing.T) {
	for _, name := range []string{"serial", "parallel"} {
		t.Run(name, func(t *testing.T) {
			e, err := NewByName(name)
			if err != nil {
				t.Fatal(err)
			}
			defer e.Shutdown()
			run := func() {
				n := 0
				var tick func()
				tick = func() {
					if n++; n < 1000 {
						e.CallAfter(Nanosecond, tick)
					}
				}
				e.CallAfter(Nanosecond, tick)
				if err := e.Run(); err != nil {
					t.Fatal(err)
				}
			}
			run() // warmup: populate the freelist
			if avg := testing.AllocsPerRun(5, run); avg > 8 {
				t.Errorf("%.1f allocs per 1000-event run after warmup, want the freelist to hold it near 0", avg)
			}
		})
	}
}

// TestFreelistRecyclesAcrossKinds drives calls, process resumptions and
// tasks through one engine, each chained so only a handful of items are
// outstanding at any instant, and checks the free stack stays bounded by
// that peak — not by the 300 total items scheduled.
func TestFreelistRecyclesAcrossKinds(t *testing.T) {
	e := New()
	defer e.Shutdown()
	total := 0
	var call func()
	call = func() {
		if total++; total%3 == 0 && total < 300 {
			e.TaskAt(e.Now()+Nanosecond, func() {}) // tasks retire through the same freelist
		}
		if total < 300 {
			e.CallAfter(Nanosecond, call)
		}
	}
	e.CallAfter(Nanosecond, call)
	e.Spawn("sleeper", func(p *Proc) {
		for i := 0; i < 100; i++ {
			p.Sleep(Nanosecond)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if total != 300 {
		t.Fatalf("ran %d chained callbacks, want 300", total)
	}
	if got := len(e.engineCore.free); got == 0 || got > 8 {
		t.Errorf("freelist holds %d items after run; want the handful that were ever outstanding at once", got)
	}
}
