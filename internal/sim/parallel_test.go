package sim

import (
	"testing"
	"testing/quick"
)

// TestParallelEngineName checks the constructor registry both ways.
func TestParallelEngineName(t *testing.T) {
	for _, name := range []string{"", "serial"} {
		e, err := NewByName(name)
		if err != nil {
			t.Fatalf("NewByName(%q): %v", name, err)
		}
		if _, ok := e.(*SerialEngine); !ok {
			t.Errorf("NewByName(%q) = %T, want *SerialEngine", name, e)
		}
		e.Shutdown()
	}
	e, err := NewByName("parallel")
	if err != nil {
		t.Fatalf("NewByName(parallel): %v", err)
	}
	pe, ok := e.(*ParallelEngine)
	if !ok {
		t.Fatalf("NewByName(parallel) = %T, want *ParallelEngine", e)
	}
	if pe.Workers() < 1 {
		t.Errorf("parallel engine has %d workers, want >= 1", pe.Workers())
	}
	pe.Shutdown()
	if _, err := NewByName("quantum"); err == nil {
		t.Error("NewByName must reject unknown engine names")
	}
}

// hammerTasks schedules `lanes` same-instant tasks at each of `rounds`
// ticks, every task writing its own disjoint slot of a shared buffer (a
// task's footprint may not be shared with anything else between its
// schedule and its slot — the contract DESIGN §11 places on task sites),
// with a reader process summing each round's slots right after its tasks
// join. Run under -race, this is the proof of the dispatch/join
// protocol: a reader overlapping a still-running body is a report.
func hammerTasks(t *testing.T, e Engine, lanes, rounds int) []int {
	t.Helper()
	buf := make([]int, lanes*rounds)
	for r := 1; r <= rounds; r++ {
		r := r
		at := Time(r) * Microsecond
		for l := 0; l < lanes; l++ {
			l := l
			e.TaskAt(at, func() { buf[(r-1)*lanes+l] = r*lanes + l })
		}
	}
	// The reader wakes exactly on each tick, sequenced after the tick's
	// tasks (their items carry earlier sequence numbers), so the slots it
	// reads are fully joined.
	sums := make([]int, rounds)
	e.Spawn("reader", func(p *Proc) {
		for r := 1; r <= rounds; r++ {
			p.Sleep(Microsecond)
			for l := 0; l < lanes; l++ {
				sums[r-1] += buf[(r-1)*lanes+l]
			}
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for r := 1; r <= rounds; r++ {
		want := 0
		for l := 0; l < lanes; l++ {
			want += r*lanes + l
		}
		if sums[r-1] != want {
			t.Errorf("round %d: reader saw sum %d, want %d", r, sums[r-1], want)
		}
	}
	return buf
}

// TestRaceSameInstantTaskHammer floods both engines with batches of
// same-instant tasks and concurrent reader processes. With -race this
// checks the dispatch/join protocol; without, it checks the results.
func TestRaceSameInstantTaskHammer(t *testing.T) {
	const lanes, rounds = 64, 50
	serial := hammerTasks(t, New(), lanes, rounds)
	parallel := hammerTasks(t, NewParallel(), lanes, rounds)
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("slot %d: serial %d != parallel %d", i, serial[i], parallel[i])
		}
	}
}

// TestPropEnginesIdenticalSchedules: for arbitrary workloads of timer
// chains, tasks and sleeping processes, both engines must visit the same
// number of events and finish at the same virtual time.
func TestPropEnginesIdenticalSchedules(t *testing.T) {
	f := func(chains, tasksRaw, procsRaw uint8) bool {
		nchains := 1 + int(chains%8)
		ntasks := int(tasksRaw % 32)
		nprocs := int(procsRaw % 8)
		run := func(e Engine) (uint64, Time) {
			for c := 0; c < nchains; c++ {
				c := c
				var tick func()
				n := 0
				tick = func() {
					if n++; n < 20 {
						e.CallAfter(Time(c+1)*Nanosecond, tick)
					}
				}
				e.CallAfter(Time(c+1)*Nanosecond, tick)
			}
			sink := make([]int, ntasks)
			for i := 0; i < ntasks; i++ {
				i := i
				e.TaskAt(Time(i%5)*Microsecond, func() { sink[i] = i })
			}
			for p := 0; p < nprocs; p++ {
				p := p
				e.Spawn("walker", func(pr *Proc) {
					for i := 0; i < 10; i++ {
						pr.Sleep(Time(p+1) * Nanosecond)
					}
				})
			}
			if err := e.Run(); err != nil {
				t.Fatal(err)
			}
			n, now := e.Events(), e.Now()
			e.Shutdown()
			return n, now
		}
		sn, st := run(New())
		pn, pt := run(NewParallel())
		return sn == pn && st == pt
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
