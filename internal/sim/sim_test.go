package sim

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestTimeUnits(t *testing.T) {
	if Microsecond != 1000*Nanosecond || Millisecond != 1000*Microsecond || Second != 1000*Millisecond {
		t.Fatal("unit ladder broken")
	}
	if got := (2500 * Microsecond).Millis(); got != 2.5 {
		t.Errorf("Millis = %v, want 2.5", got)
	}
	if got := (3 * Second).Seconds(); got != 3 {
		t.Errorf("Seconds = %v, want 3", got)
	}
	if got := (1500 * Nanosecond).Micros(); got != 1.5 {
		t.Errorf("Micros = %v, want 1.5", got)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500 * Nanosecond, "500ns"},
		{2 * Microsecond, "2us"},
		{3 * Millisecond, "3ms"},
		{4 * Second, "4s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("String(%d) = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestDurationOf(t *testing.T) {
	// 1 GiB/s-ish: 1e9 bytes/s → 1000 bytes takes 1 µs.
	if got := DurationOf(1000, 1e9); got != Microsecond {
		t.Errorf("DurationOf = %v, want 1us", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("DurationOf with zero bandwidth did not panic")
		}
	}()
	DurationOf(1, 0)
}

func TestCallOrdering(t *testing.T) {
	e := New()
	var got []int
	e.CallAt(30, func() { got = append(got, 3) })
	e.CallAt(10, func() { got = append(got, 1) })
	e.CallAt(20, func() { got = append(got, 2) })
	e.CallAt(10, func() { got = append(got, 11) }) // same time: FIFO by schedule order
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 11, 2, 3}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("order = %v, want %v", got, want)
	}
	if e.Now() != 30 {
		t.Errorf("final time = %v, want 30", e.Now())
	}
}

func TestSchedulingIntoPastPanics(t *testing.T) {
	e := New()
	e.CallAt(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling into the past did not panic")
			}
		}()
		e.CallAt(50, func() {})
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestProcSleep(t *testing.T) {
	e := New()
	var trace []string
	e.Spawn("a", func(p *Proc) {
		trace = append(trace, fmt.Sprintf("a0@%v", p.Now()))
		p.Sleep(10)
		trace = append(trace, fmt.Sprintf("a1@%v", p.Now()))
		p.Sleep(5)
		trace = append(trace, fmt.Sprintf("a2@%v", p.Now()))
	})
	e.Spawn("b", func(p *Proc) {
		p.Sleep(12)
		trace = append(trace, fmt.Sprintf("b@%v", p.Now()))
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a0@0ns", "a1@10ns", "b@12ns", "a2@15ns"}
	if !reflect.DeepEqual(trace, want) {
		t.Errorf("trace = %v, want %v", trace, want)
	}
}

func TestEventTriggerWakesWaiters(t *testing.T) {
	e := New()
	ev := e.NewEvent("go")
	var woke []string
	for _, name := range []string{"p1", "p2", "p3"} {
		name := name
		e.Spawn(name, func(p *Proc) {
			p.Wait(ev)
			woke = append(woke, fmt.Sprintf("%s@%v", name, p.Now()))
		})
	}
	e.CallAt(42, func() { ev.Trigger() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"p1@42ns", "p2@42ns", "p3@42ns"}
	if !reflect.DeepEqual(woke, want) {
		t.Errorf("woke = %v, want %v", woke, want)
	}
	if !ev.Fired() || ev.FiredAt() != 42 {
		t.Errorf("event state: fired=%v at=%v", ev.Fired(), ev.FiredAt())
	}
}

func TestEventTriggerIdempotent(t *testing.T) {
	e := New()
	ev := e.NewEvent("x")
	n := 0
	ev.OnTrigger(func() { n++ })
	e.CallAt(1, func() { ev.Trigger(); ev.Trigger() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("callback ran %d times, want 1", n)
	}
}

func TestWaitOnFiredEventReturnsImmediately(t *testing.T) {
	e := New()
	ev := e.NewEvent("pre")
	ev.Trigger()
	done := false
	e.Spawn("p", func(p *Proc) {
		p.Wait(ev)
		if p.Now() != 0 {
			t.Errorf("wait on fired event advanced time to %v", p.Now())
		}
		done = true
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Error("process did not complete")
	}
}

func TestOnTriggerAfterFireRunsImmediately(t *testing.T) {
	e := New()
	ev := e.NewEvent("x")
	ev.Trigger()
	ran := false
	ev.OnTrigger(func() { ran = true })
	if !ran {
		t.Error("OnTrigger on fired event did not run inline")
	}
}

func TestWaitAny(t *testing.T) {
	e := New()
	a, b := e.NewEvent("a"), e.NewEvent("b")
	var idx int
	var at Time
	e.Spawn("w", func(p *Proc) {
		idx = p.WaitAny(a, b)
		at = p.Now()
	})
	e.CallAt(7, func() { b.Trigger() })
	e.CallAt(9, func() { a.Trigger() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if idx != 1 || at != 7 {
		t.Errorf("WaitAny -> (%d,@%v), want (1,@7)", idx, at)
	}
}

func TestWaitAnyAlreadyFired(t *testing.T) {
	e := New()
	a, b := e.NewEvent("a"), e.NewEvent("b")
	b.Trigger()
	var idx int
	e.Spawn("w", func(p *Proc) { idx = p.WaitAny(a, b) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if idx != 1 {
		t.Errorf("idx = %d, want 1", idx)
	}
}

func TestAllOf(t *testing.T) {
	e := New()
	a, b, c := e.NewEvent("a"), e.NewEvent("b"), e.NewEvent("c")
	all := e.AllOf("all", a, b, c)
	var at Time = -1
	e.Spawn("w", func(p *Proc) {
		p.Wait(all)
		at = p.Now()
	})
	e.CallAt(5, func() { a.Trigger() })
	e.CallAt(15, func() { c.Trigger() })
	e.CallAt(10, func() { b.Trigger() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 15 {
		t.Errorf("AllOf fired at %v, want 15", at)
	}
	if empty := e.AllOf("none"); !empty.Fired() {
		t.Error("AllOf with no inputs should be pre-fired")
	}
}

func TestWaitAllBlocksUntilLast(t *testing.T) {
	e := New()
	a, b := e.NewEvent("a"), e.NewEvent("b")
	var at Time
	e.Spawn("w", func(p *Proc) {
		p.WaitAll(a, b)
		at = p.Now()
	})
	e.CallAt(3, func() { b.Trigger() })
	e.CallAt(8, func() { a.Trigger() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 8 {
		t.Errorf("WaitAll returned at %v, want 8", at)
	}
}

func TestDeadlockDetection(t *testing.T) {
	e := New()
	ev := e.NewEvent("never")
	e.Spawn("stuck", func(p *Proc) { p.Wait(ev) })
	err := e.Run()
	de, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("err = %v, want DeadlockError", err)
	}
	if len(de.Blocked) != 1 || !strings.Contains(de.Blocked[0], "stuck") {
		t.Errorf("blocked = %v", de.Blocked)
	}
}

func TestRunUntil(t *testing.T) {
	e := New()
	var fired []Time
	for _, tm := range []Time{5, 10, 15} {
		tm := tm
		e.CallAt(tm, func() { fired = append(fired, tm) })
	}
	if err := e.RunUntil(10); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fired, []Time{5, 10}) {
		t.Errorf("fired = %v, want [5 10]", fired)
	}
	if e.Now() != 10 {
		t.Errorf("now = %v, want 10", e.Now())
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fired, []Time{5, 10, 15}) {
		t.Errorf("fired = %v", fired)
	}
}

func TestRunUntilAdvancesClockPastQueue(t *testing.T) {
	e := New()
	if err := e.RunUntil(100); err != nil {
		t.Fatal(err)
	}
	if e.Now() != 100 {
		t.Errorf("now = %v, want 100", e.Now())
	}
}

func TestResourceMutualExclusion(t *testing.T) {
	e := New()
	r := e.NewResource("mutex", 1)
	var order []string
	worker := func(name string, hold Time) func(*Proc) {
		return func(p *Proc) {
			r.Acquire(p)
			order = append(order, name+"+")
			p.Sleep(hold)
			order = append(order, name+"-")
			r.Release()
		}
	}
	e.Spawn("a", worker("a", 10))
	e.Spawn("b", worker("b", 10))
	e.Spawn("c", worker("c", 10))
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a+", "a-", "b+", "b-", "c+", "c-"}
	if !reflect.DeepEqual(order, want) {
		t.Errorf("order = %v, want %v", order, want)
	}
	if e.Now() != 30 {
		t.Errorf("now = %v, want 30", e.Now())
	}
}

func TestResourceCapacityTwo(t *testing.T) {
	e := New()
	r := e.NewResource("dual", 2)
	var finish []Time
	for i := 0; i < 4; i++ {
		e.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
			r.Use(p, 10)
			finish = append(finish, p.Now())
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []Time{10, 10, 20, 20}
	if !reflect.DeepEqual(finish, want) {
		t.Errorf("finish = %v, want %v", finish, want)
	}
}

func TestResourceFIFOHandoff(t *testing.T) {
	// The releasing process must not re-acquire ahead of queued waiters.
	e := New()
	r := e.NewResource("res", 1)
	var got []string
	e.Spawn("first", func(p *Proc) {
		r.Acquire(p)
		p.Sleep(5)
		r.Release()
		r.Acquire(p) // should queue behind "second"
		got = append(got, "first-again")
		r.Release()
	})
	e.SpawnAt(1, "second", func(p *Proc) {
		r.Acquire(p)
		got = append(got, "second")
		p.Sleep(1)
		r.Release()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"second", "first-again"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got = %v, want %v", got, want)
	}
}

func TestResourceTryAcquire(t *testing.T) {
	e := New()
	r := e.NewResource("r", 1)
	e.Spawn("p", func(p *Proc) {
		if !r.TryAcquire() {
			t.Error("first TryAcquire failed")
		}
		if r.TryAcquire() {
			t.Error("second TryAcquire succeeded on full resource")
		}
		r.Release()
		if !r.TryAcquire() {
			t.Error("TryAcquire after release failed")
		}
		r.Release()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestResourceReleaseIdlePanics(t *testing.T) {
	e := New()
	r := e.NewResource("r", 1)
	defer func() {
		if recover() == nil {
			t.Error("release of idle resource did not panic")
		}
	}()
	r.Release()
}

func TestResourceUtilization(t *testing.T) {
	e := New()
	r := e.NewResource("r", 1)
	e.Spawn("p", func(p *Proc) {
		r.Use(p, 50)
		p.Sleep(50)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if u := r.Utilization(); u < 0.49 || u > 0.51 {
		t.Errorf("utilization = %v, want ~0.5", u)
	}
	if !strings.Contains(r.Stats(), "acquires=1") {
		t.Errorf("stats = %q", r.Stats())
	}
}

func TestQueueFIFO(t *testing.T) {
	e := New()
	q := NewQueue[int](e, "q")
	var got []int
	e.Spawn("consumer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			got = append(got, q.Get(p))
		}
	})
	for i := 0; i < 5; i++ {
		i := i
		e.CallAt(Time(i*10), func() { q.Put(i) })
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []int{0, 1, 2, 3, 4}) {
		t.Errorf("got = %v", got)
	}
}

func TestQueueMultipleConsumers(t *testing.T) {
	e := New()
	q := NewQueue[int](e, "q")
	sum := 0
	for i := 0; i < 3; i++ {
		e.Spawn(fmt.Sprintf("c%d", i), func(p *Proc) {
			sum += q.Get(p)
		})
	}
	e.CallAt(1, func() { q.Put(1); q.Put(2); q.Put(3) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if sum != 6 {
		t.Errorf("sum = %d, want 6", sum)
	}
}

func TestQueueTryGet(t *testing.T) {
	e := New()
	q := NewQueue[string](e, "q")
	if _, ok := q.TryGet(); ok {
		t.Error("TryGet on empty queue succeeded")
	}
	q.Put("x")
	v, ok := q.TryGet()
	if !ok || v != "x" {
		t.Errorf("TryGet = (%q,%v)", v, ok)
	}
	if q.Len() != 0 {
		t.Errorf("len = %d", q.Len())
	}
}

func TestYieldRunsOthersFirst(t *testing.T) {
	e := New()
	var order []string
	e.Spawn("a", func(p *Proc) {
		order = append(order, "a1")
		p.Yield()
		order = append(order, "a2")
	})
	e.Spawn("b", func(p *Proc) {
		order = append(order, "b")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a1", "b", "a2"}
	if !reflect.DeepEqual(order, want) {
		t.Errorf("order = %v, want %v", order, want)
	}
}

func TestSpawnAt(t *testing.T) {
	e := New()
	var at Time = -1
	e.SpawnAt(25, "late", func(p *Proc) { at = p.Now() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 25 {
		t.Errorf("started at %v, want 25", at)
	}
}

func TestTracer(t *testing.T) {
	e := New()
	var lines []string
	e.SetTracer(func(tm Time, msg string) { lines = append(lines, msg) })
	e.Spawn("p", func(p *Proc) {})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(lines) < 2 {
		t.Errorf("trace lines = %v", lines)
	}
}

func TestEventString(t *testing.T) {
	e := New()
	ev := e.NewEvent("x")
	if !strings.Contains(ev.String(), "pending") {
		t.Errorf("String = %q", ev.String())
	}
	ev.Trigger()
	if !strings.Contains(ev.String(), "fired") {
		t.Errorf("String = %q", ev.String())
	}
}

// Property: for any set of scheduled callbacks, execution order is sorted by
// (time, insertion order) — events never fire out of order and never at a
// decreasing clock.
func TestPropEventOrdering(t *testing.T) {
	f := func(delays []uint16) bool {
		e := New()
		type rec struct {
			t   Time
			seq int
		}
		var got []rec
		for i, d := range delays {
			i, tm := i, Time(d)
			e.CallAt(tm, func() { got = append(got, rec{e.Now(), i}) })
		}
		if err := e.Run(); err != nil {
			return false
		}
		if len(got) != len(delays) {
			return false
		}
		want := make([]rec, len(delays))
		for i, d := range delays {
			want[i] = rec{Time(d), i}
		}
		sort.SliceStable(want, func(i, j int) bool { return want[i].t < want[j].t })
		for i := range got {
			if got[i] != want[i] {
				return false
			}
			if got[i].t != Time(delays[got[i].seq]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: simulation is deterministic — the same randomized workload run
// twice produces the identical completion trace.
func TestPropDeterminism(t *testing.T) {
	runOnce := func(seed int64) []string {
		rng := rand.New(rand.NewSource(seed))
		e := New()
		r := e.NewResource("r", 1+rng.Intn(3))
		q := NewQueue[int](e, "q")
		var trace []string
		nworkers := 2 + rng.Intn(4)
		nitems := 5 + rng.Intn(10)
		for w := 0; w < nworkers; w++ {
			w := w
			hold := Time(1 + rng.Intn(20))
			e.Spawn(fmt.Sprintf("w%d", w), func(p *Proc) {
				for {
					v, ok := q.TryGet()
					if !ok {
						v = q.Get(p)
					}
					if v < 0 {
						return
					}
					r.Use(p, hold)
					trace = append(trace, fmt.Sprintf("w%d:%d@%v", w, v, p.Now()))
				}
			})
		}
		for i := 0; i < nitems; i++ {
			i := i
			e.CallAt(Time(rng.Intn(50)), func() { q.Put(i) })
		}
		e.CallAt(10000, func() {
			for w := 0; w < nworkers; w++ {
				q.Put(-1)
			}
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return trace
	}
	f := func(seed int64) bool {
		a := runOnce(seed)
		b := runOnce(seed)
		return reflect.DeepEqual(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: a resource never exceeds its capacity and serves waiters FIFO.
func TestPropResourceCapacity(t *testing.T) {
	f := func(capRaw uint8, holdsRaw []uint8) bool {
		capacity := 1 + int(capRaw%4)
		if len(holdsRaw) == 0 {
			return true
		}
		if len(holdsRaw) > 25 {
			holdsRaw = holdsRaw[:25]
		}
		e := New()
		r := e.NewResource("r", capacity)
		inUse, maxUse := 0, 0
		for i, h := range holdsRaw {
			hold := Time(1 + int(h%50))
			e.SpawnAt(Time(i%7), fmt.Sprintf("w%d", i), func(p *Proc) {
				r.Acquire(p)
				inUse++
				if inUse > maxUse {
					maxUse = inUse
				}
				p.Sleep(hold)
				inUse--
				r.Release()
			})
		}
		if err := e.Run(); err != nil {
			return false
		}
		return maxUse <= capacity && r.InUse() == 0 && r.QueueLen() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkEngineThroughput(b *testing.B) {
	e := New()
	r := e.NewResource("r", 2)
	for i := 0; i < b.N; i++ {
		e.Spawn("w", func(p *Proc) { r.Use(p, 5) })
	}
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

func TestDaemonExcludedFromDeadlock(t *testing.T) {
	e := New()
	q := NewQueue[int](e, "work")
	served := 0
	e.SpawnDaemon("server", func(p *Proc) {
		for {
			q.Get(p)
			served++
		}
	})
	e.Spawn("client", func(p *Proc) {
		p.Sleep(5)
		q.Put(1)
		q.Put(2)
	})
	if err := e.Run(); err != nil {
		t.Fatalf("daemon caused deadlock report: %v", err)
	}
	if served != 2 {
		t.Errorf("served = %d, want 2", served)
	}
}

func TestNonDaemonStillDeadlocks(t *testing.T) {
	e := New()
	q := NewQueue[int](e, "work")
	e.SpawnDaemon("server", func(p *Proc) {
		for {
			q.Get(p)
		}
	})
	ev := e.NewEvent("never")
	e.Spawn("stuck", func(p *Proc) { p.Wait(ev) })
	if _, ok := e.Run().(*DeadlockError); !ok {
		t.Error("expected DeadlockError for non-daemon process")
	}
}

func TestProcPanicPropagatesToRun(t *testing.T) {
	e := New()
	e.Spawn("boom", func(p *Proc) {
		p.Sleep(5)
		panic("kaboom")
	})
	defer func() {
		if r := recover(); r != "kaboom" {
			t.Errorf("recovered %v, want kaboom", r)
		}
	}()
	_ = e.Run()
	t.Error("Run returned instead of panicking")
}
