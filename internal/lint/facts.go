package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"mv2sim/internal/lint/cfg"
)

// A ParamFact summarizes what a function does with one of its parameters,
// from the caller's ownership point of view.
type ParamFact int

const (
	// ParamMoves: ownership is (or may be) transferred — the parameter is
	// returned, stored, captured, or handed to code the analysis cannot
	// see. The caller's release obligation is assumed discharged.
	ParamMoves ParamFact = iota
	// ParamBorrows: the function only reads the parameter. The caller
	// keeps the release obligation.
	ParamBorrows
	// ParamReleases: the function releases the parameter (frees the
	// buffer / ends the span) on every normal path, so a call counts as
	// the caller's release.
	ParamReleases
)

func (f ParamFact) String() string {
	switch f {
	case ParamBorrows:
		return "borrows"
	case ParamReleases:
		return "releases"
	}
	return "moves"
}

// Facts lazily computes and memoizes cross-package function summaries
// over a universe of loaded packages. Analyzers query facts about callees
// (possibly in other packages) instead of treating every helper call as an
// opaque ownership transfer — which is what previously forced
// //lint:ignore suppressions around release helpers.
type Facts struct {
	decls map[*types.Func]declOf

	ptrMemo  map[factKey]ParamFact
	ptrBusy  map[factKey]bool
	spanMemo map[factKey]ParamFact
	spanBusy map[factKey]bool

	visMemo map[*types.Func]visResult
	visBusy map[*types.Func]bool
}

type declOf struct {
	decl *ast.FuncDecl
	pkg  *Package
}

type factKey struct {
	fn    *types.Func
	index int
}

type visResult struct {
	visible bool
	why     string
}

// NewFacts indexes every function declaration in the universe.
func NewFacts(universe []*Package) *Facts {
	f := &Facts{
		decls:    map[*types.Func]declOf{},
		ptrMemo:  map[factKey]ParamFact{},
		ptrBusy:  map[factKey]bool{},
		spanMemo: map[factKey]ParamFact{},
		spanBusy: map[factKey]bool{},
		visMemo:  map[*types.Func]visResult{},
		visBusy:  map[*types.Func]bool{},
	}
	for _, pkg := range universe {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					f.decls[obj] = declOf{decl: fd, pkg: pkg}
				}
			}
		}
	}
	return f
}

// Decl returns the declaration of fn if it is in the universe.
func (f *Facts) Decl(fn *types.Func) (*ast.FuncDecl, *Package, bool) {
	d, ok := f.decls[fn]
	return d.decl, d.pkg, ok
}

// paramObjs returns the declared parameter objects of decl in order,
// nil entries for unnamed or blank parameters.
func paramObjs(info *types.Info, decl *ast.FuncDecl) []types.Object {
	var out []types.Object
	if decl.Type.Params == nil {
		return out
	}
	for _, field := range decl.Type.Params.List {
		if len(field.Names) == 0 {
			out = append(out, nil)
			continue
		}
		for _, name := range field.Names {
			if name.Name == "_" {
				out = append(out, nil)
			} else {
				out = append(out, info.Defs[name])
			}
		}
	}
	return out
}

// calleeFunc resolves a call to the *types.Func it invokes (function,
// method, or interface method), or nil for indirect calls through
// variables, built-ins, and type conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fn, ok := objOfIdent(info, fun).(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
			return nil
		}
		// Package-qualified call (pkg.Func).
		if fn, ok := objOfIdent(info, fun.Sel).(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// argParamIndex maps an argument position to the callee's parameter
// index, folding variadic spill onto the variadic parameter.
func argParamIndex(fn *types.Func, arg int) int {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Params().Len() == 0 {
		return -1
	}
	if arg < sig.Params().Len() {
		return arg
	}
	if sig.Variadic() {
		return sig.Params().Len() - 1
	}
	return -1
}

// ---------------------------------------------------------------------------
// Ownership facts (mem.Ptr / obs.Span parameters)

// PtrParam reports what fn does with its index-th parameter, assumed to
// hold a device allocation: releases it on every normal path (a call
// discharges the caller's Free obligation), only borrows it (the caller
// still owes a Free), or moves it (unknown / transfers ownership).
func (f *Facts) PtrParam(fn *types.Func, index int) ParamFact {
	key := factKey{fn, index}
	if v, ok := f.ptrMemo[key]; ok {
		return v
	}
	if f.ptrBusy[key] {
		return ParamMoves // recursion: be conservative
	}
	f.ptrBusy[key] = true
	v := f.paramFact(fn, index, ptrUseRules{f})
	f.ptrBusy[key] = false
	f.ptrMemo[key] = v
	return v
}

// SpanParam is PtrParam for obs.Span parameters: releasing means calling
// Span.End (or passing the span to another releasing function).
func (f *Facts) SpanParam(fn *types.Func, index int) ParamFact {
	key := factKey{fn, index}
	if v, ok := f.spanMemo[key]; ok {
		return v
	}
	if f.spanBusy[key] {
		return ParamMoves
	}
	f.spanBusy[key] = true
	v := f.paramFact(fn, index, spanUseRules{f})
	f.spanBusy[key] = false
	f.spanMemo[key] = v
	return v
}

// useRules abstracts the per-domain classification of one tracked-object
// use so ptr and span facts share the flow machinery. The analyzer
// rewrites (allocfree, spanend) use the same rules on their own tracked
// locals.
type useRules interface {
	// classifyCall classifies tracked-object mentions in one call's
	// direct arguments (and receiver where relevant).
	classifyCall(info *types.Info, call *ast.CallExpr, obj types.Object) useEffect
}

type useEffect int

const (
	useNone    useEffect = iota // pure read / borrowing call
	useRelease                  // discharges the obligation
	useEscape                   // ownership moves; stop tracking
)

// paramFact classifies every use of the parameter and, if the uses are
// release-shaped, verifies with a CFG dataflow that the release happens
// on every normal path.
func (f *Facts) paramFact(fn *types.Func, index int, rules useRules) ParamFact {
	d, ok := f.decls[fn]
	if !ok {
		return ParamMoves
	}
	params := paramObjs(d.pkg.Info, d.decl)
	if index < 0 || index >= len(params) {
		return ParamMoves
	}
	obj := params[index]
	if obj == nil {
		return ParamBorrows // unnamed parameter: never used
	}

	anyRelease, anyEscape := false, false
	classifyUses(d.pkg.Info, d.decl.Body, obj, rules, func(e useEffect) {
		switch e {
		case useRelease:
			anyRelease = true
		case useEscape:
			anyEscape = true
		}
	})
	switch {
	case anyEscape:
		return ParamMoves
	case !anyRelease:
		return ParamBorrows
	}
	// Release-shaped: confirm it happens on every normal path.
	g := cfg.New(d.decl.Body)
	survivors := flowSurvivors(g, d.pkg.Info, []obligation{{obj: obj}}, rules)
	if len(survivors) == 0 {
		return ParamReleases
	}
	return ParamMoves
}

// classifyUses walks body and reports the effect of every direct use of
// obj through report. Mentions inside nested function literals count as
// escapes (the closure may run at any time), matching the analyzers.
func classifyUses(info *types.Info, body ast.Node, obj types.Object, rules useRules, report func(useEffect)) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if mentionsObj(info, n, obj) {
				report(useEscape)
			}
			return false
		case *ast.ReturnStmt:
			if mentionsObjDirect(info, n, obj) {
				report(useEscape)
			}
			return true
		case *ast.CallExpr:
			if callMentionsObj(info, n, obj) {
				report(rules.classifyCall(info, n, obj))
			}
			return true
		case *ast.AssignStmt:
			for _, rhs := range n.Rhs {
				if _, isCall := rhs.(*ast.CallExpr); isCall {
					continue // classified by the CallExpr case
				}
				if mentionsObjDirect(info, rhs, obj) {
					report(useEscape)
				}
			}
			return true
		case *ast.CompositeLit:
			if mentionsObjDirect(info, n, obj) {
				report(useEscape)
			}
			return true
		case *ast.UnaryExpr:
			if id, ok := n.X.(*ast.Ident); ok && objOfIdent(info, id) == obj {
				report(useEscape) // &obj aliases it
			}
			return true
		}
		return true
	})
}

// mentionsObj reports whether obj is referenced anywhere under n.
func mentionsObj(info *types.Info, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		if id, ok := c.(*ast.Ident); ok && objOfIdent(info, id) == obj {
			found = true
		}
		return !found
	})
	return found
}

// mentionsObjDirect is mentionsObj stopping at nested calls and function
// literals, which classify their own mentions.
func mentionsObjDirect(info *types.Info, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		switch c.(type) {
		case *ast.CallExpr, *ast.FuncLit:
			return false
		}
		if id, ok := c.(*ast.Ident); ok && objOfIdent(info, id) == obj {
			found = true
		}
		return !found
	})
	return found
}

// callMentionsObj reports whether obj appears directly in call's
// arguments or receiver expression.
func callMentionsObj(info *types.Info, call *ast.CallExpr, obj types.Object) bool {
	for _, a := range call.Args {
		if mentionsObjDirect(info, a, obj) {
			return true
		}
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if id, ok := sel.X.(*ast.Ident); ok && objOfIdent(info, id) == obj {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// Determinism fact: does calling fn touch sim-visible state?

// SimVisible reports whether calling fn (transitively) touches
// simulation-visible state: schedules engine events, records obs tasks or
// counters, posts fabric work, takes or returns vbufs, mutates trace
// breakdowns, or prints to a writer. why names the API that makes it so.
func (f *Facts) SimVisible(fn *types.Func) (visible bool, why string) {
	if fn == nil {
		return false, ""
	}
	if v, ok := f.visMemo[fn]; ok {
		return v.visible, v.why
	}
	if base, ok := simVisibleBase(fn); ok {
		f.visMemo[fn] = visResult{true, base}
		return true, base
	}
	d, ok := f.decls[fn]
	if !ok {
		return false, "" // out-of-tree and not in the base table: assume pure
	}
	if f.visBusy[fn] {
		return false, "" // recursion: resolved by the outer frame
	}
	f.visBusy[fn] = true
	res := visResult{}
	ast.Inspect(d.decl.Body, func(n ast.Node) bool {
		if res.visible {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeFunc(d.pkg.Info, call)
		if callee == nil || callee == fn {
			return true
		}
		if v, why := f.SimVisible(callee); v {
			res = visResult{true, funcLabel(callee) + " → " + why}
			if callee.Pkg() != nil && f.hasDeclFor(callee) {
				// Keep only the first hop for readability.
				res.why = funcLabel(callee) + " → " + lastHop(why)
			}
		}
		return !res.visible
	})
	f.visBusy[fn] = false
	f.visMemo[fn] = res
	return res.visible, res.why
}

func (f *Facts) hasDeclFor(fn *types.Func) bool {
	_, ok := f.decls[fn]
	return ok
}

func lastHop(why string) string {
	if i := strings.LastIndex(why, "→ "); i >= 0 {
		return why[i+len("→ "):]
	}
	return why
}

// funcLabel renders fn as pkg.Type.Method or pkg.Func for messages.
func funcLabel(fn *types.Func) string {
	pkg := ""
	if fn.Pkg() != nil {
		p := fn.Pkg().Path()
		if i := strings.LastIndex(p, "/"); i >= 0 {
			p = p[i+1:]
		}
		pkg = p + "."
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if n := namedOf(sig.Recv().Type()); n != nil {
			return pkg + n.Obj().Name() + "." + fn.Name()
		}
	}
	return pkg + fn.Name()
}

// simVisibleBase classifies fn against the base table of APIs whose call
// order is observable in simulation results: engine scheduling, obs task
// and counter records, tracer callbacks, vbuf pool accounting, fabric
// posts, trace breakdowns, and direct printing.
func simVisibleBase(fn *types.Func) (string, bool) {
	if fn.Pkg() == nil {
		return "", false
	}
	pkgPath := fn.Pkg().Path()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		n := namedOf(sig.Recv().Type())
		if n == nil {
			return "", false
		}
		if simVisibleMethods[[3]string{pkgPath, n.Obj().Name(), fn.Name()}] {
			return funcLabel(fn), true
		}
		return "", false
	}
	if simVisibleFuncs[[2]string{pkgPath, fn.Name()}] {
		return funcLabel(fn), true
	}
	return "", false
}

// tracePath and hostmemPath/ibPath extend the analyzer-known import paths
// (lint.go) for the determinism domain.
const (
	tracePath   = "mv2sim/internal/trace"
	hostmemPath = "mv2sim/internal/hostmem"
	ibPath      = "mv2sim/internal/ib"
)

var simVisibleMethods = map[[3]string]bool{
	// Engine scheduling and lifecycle: creation and dispatch order define
	// the event sequence.
	{simPath, "Engine", "CallAt"}:      true,
	{simPath, "Engine", "CallAfter"}:   true,
	{simPath, "Engine", "TaskAt"}:      true,
	{simPath, "Engine", "Spawn"}:       true,
	{simPath, "Engine", "SpawnAt"}:     true,
	{simPath, "Engine", "SpawnDaemon"}: true,
	{simPath, "Engine", "Run"}:         true,
	{simPath, "Engine", "RunUntil"}:    true,
	{simPath, "Engine", "Shutdown"}:    true,
	{simPath, "Engine", "NewEvent"}:    true,
	{simPath, "Engine", "NewResource"}: true,
	{simPath, "Engine", "AllOf"}:       true,
	// Concrete-receiver spellings: Engine is an interface over the shared
	// engineCore, so calls through *SerialEngine / *ParallelEngine resolve
	// to methods promoted from engineCore (or overridden on the engine).
	{simPath, "engineCore", "CallAt"}:       true,
	{simPath, "engineCore", "CallAfter"}:    true,
	{simPath, "engineCore", "TaskAt"}:       true,
	{simPath, "engineCore", "Spawn"}:        true,
	{simPath, "engineCore", "SpawnAt"}:      true,
	{simPath, "engineCore", "SpawnDaemon"}:  true,
	{simPath, "engineCore", "Run"}:          true,
	{simPath, "engineCore", "RunUntil"}:     true,
	{simPath, "engineCore", "Shutdown"}:     true,
	{simPath, "engineCore", "NewEvent"}:     true,
	{simPath, "engineCore", "NewResource"}:  true,
	{simPath, "engineCore", "AllOf"}:        true,
	{simPath, "ParallelEngine", "Shutdown"}: true,
	{simPath, "Event", "Trigger"}:           true,
	{simPath, "Event", "OnTrigger"}:         true,
	{simPath, "Proc", "Wait"}:               true,
	{simPath, "Proc", "WaitAll"}:            true,
	{simPath, "Proc", "WaitAny"}:            true,
	{simPath, "Proc", "Sleep"}:              true,
	{simPath, "Proc", "Yield"}:              true,
	{simPath, "Resource", "Acquire"}:        true,
	{simPath, "Resource", "TryAcquire"}:     true,
	{simPath, "Resource", "Release"}:        true,
	{simPath, "Resource", "Use"}:            true,
	{simPath, "Queue", "Put"}:               true,
	{simPath, "Queue", "Get"}:               true,
	{simPath, "Queue", "TryGet"}:            true,
	{simPath, "Hook", "ProcStart"}:          true,
	{simPath, "Hook", "ProcEnd"}:            true,
	{simPath, "Hook", "EventFired"}:         true,

	// Task stream: record order is byte-visible in Chrome traces.
	{obsPath, "Hub", "Start"}:             true,
	{obsPath, "Hub", "StartTask"}:         true,
	{obsPath, "Hub", "StartChild"}:        true,
	{obsPath, "Hub", "Instant"}:           true,
	{obsPath, "Hub", "InstantChild"}:      true,
	{obsPath, "Hub", "Counter"}:           true,
	{obsPath, "Span", "End"}:              true,
	{obsPath, "Span", "Step"}:             true,
	{obsPath, "Span", "DependsOn"}:        true,
	{obsPath, "Span", "DependsOnTask"}:    true,
	{obsPath, "Tracer", "TaskStart"}:      true,
	{obsPath, "Tracer", "TaskEnd"}:        true,
	{obsPath, "Tracer", "TaskStep"}:       true,
	{obsPath, "Tracer", "CounterSample"}:  true,
	{obsPath, "DepTracer", "TaskDepends"}: true,

	// Rail/vbuf accounting and fabric posts.
	{hostmemPath, "Pool", "Get"}:         true,
	{hostmemPath, "Pool", "GetRail"}:     true,
	{hostmemPath, "Pool", "TryGet"}:      true,
	{hostmemPath, "Pool", "TryGetRail"}:  true,
	{hostmemPath, "Pool", "Put"}:         true,
	{ibPath, "HCA", "PostSend"}:          true,
	{ibPath, "HCA", "PostSendRail"}:      true,
	{ibPath, "HCA", "RDMAWrite"}:         true,
	{ibPath, "HCA", "RDMAWriteRail"}:     true,
	{ibPath, "HCA", "RDMAWriteRailTask"}: true,
	{ibPath, "HCA", "RDMARead"}:          true,
	{ibPath, "HCA", "Register"}:          true,
	{ibPath, "HCA", "Deregister"}:        true,

	// Trace breakdowns: key insertion order is the report's row order.
	{tracePath, "Breakdown", "Add"}:   true,
	{tracePath, "Breakdown", "Timed"}: true,
	{tracePath, "Breakdown", "Merge"}: true,
	{tracePath, "Breakdown", "Scale"}: true,
	{tracePath, "Breakdown", "Sub"}:   true,
}

var simVisibleFuncs = map[[2]string]bool{
	// Writer-directed printing: emit order is output order.
	{"fmt", "Print"}:    true,
	{"fmt", "Printf"}:   true,
	{"fmt", "Println"}:  true,
	{"fmt", "Fprint"}:   true,
	{"fmt", "Fprintf"}:  true,
	{"fmt", "Fprintln"}: true,
}
