package lint

import (
	"go/ast"
	"go/types"
)

// EventPair flags cuda.Event values that are waited on but never recorded
// in the enclosing function.
//
// A cuda.Event created with Ctx.NewEvent carries no marker until
// Event.Record enqueues one; Event.Synchronize and Ctx.StreamWaitEvent on
// an unrecorded event panic at simulation time (in real CUDA the wait
// silently completes and the ordering the code relies on does not exist).
// The analyzer tracks events created locally in a function; if such an
// event reaches Synchronize or StreamWaitEvent and no Record call on the
// same variable appears anywhere in the function, the wait is reported.
// Events that escape the function (returned, stored, passed to other
// calls) are assumed to be recorded elsewhere.
var EventPair = &Analyzer{
	Name: "eventpair",
	Doc:  "flags cuda.Event waits with no Record on any path in the function",
	Run:  runEventPair,
}

func runEventPair(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkEventPairs(pass, fn)
		}
	}
	return nil
}

type eventState struct {
	obj      types.Object
	recorded bool
	escaped  bool
	waits    []*ast.CallExpr // Synchronize / StreamWaitEvent uses
}

func checkEventPairs(pass *Pass, fn *ast.FuncDecl) {
	info := pass.TypesInfo
	events := map[types.Object]*eventState{}

	// Collect locals created by Ctx.NewEvent.
	ast.Inspect(fn, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		if len(as.Rhs) != len(as.Lhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			call, ok := as.Rhs[i].(*ast.CallExpr)
			if !ok {
				continue
			}
			mi, ok := methodCall(info, call)
			if !ok || mi.pkgPath != cudaPath || mi.typeName != "Ctx" || mi.method != "NewEvent" {
				continue
			}
			if obj := objOfIdent(info, id); obj != nil {
				events[obj] = &eventState{obj: obj}
			}
		}
		return true
	})
	if len(events) == 0 {
		return
	}

	// Classify every use of each event object.
	ast.Inspect(fn, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			if ret, ok := n.(*ast.ReturnStmt); ok {
				markMentioned(info, ret, events, func(st *eventState) { st.escaped = true })
			}
			return true
		}
		mi, ok := methodCall(info, call)
		if ok && mi.pkgPath == cudaPath && mi.typeName == "Event" {
			if id, ok := mi.recv.(*ast.Ident); ok {
				if st := events[objOfIdent(info, id)]; st != nil {
					switch mi.method {
					case "Record":
						st.recorded = true
					case "Synchronize":
						st.waits = append(st.waits, call)
					}
					return true
				}
			}
		}
		if ok && mi.pkgPath == cudaPath && mi.typeName == "Ctx" && mi.method == "StreamWaitEvent" {
			for _, a := range call.Args {
				if id, ok := a.(*ast.Ident); ok {
					if st := events[objOfIdent(info, id)]; st != nil {
						st.waits = append(st.waits, call)
						return true
					}
				}
			}
		}
		// Any other call mentioning the event lets it escape (it may be
		// recorded elsewhere).
		for _, a := range call.Args {
			markMentioned(info, a, events, func(st *eventState) { st.escaped = true })
		}
		return true
	})

	for _, st := range events {
		if st.recorded || st.escaped {
			continue
		}
		for _, w := range st.waits {
			pass.Reportf(w.Pos(),
				"event %s is waited on but never recorded in this function (Record must precede Synchronize/StreamWaitEvent)",
				st.obj.Name())
		}
	}
}

// markMentioned applies f to the state of every tracked event object
// referenced anywhere under node.
func markMentioned(info *types.Info, node ast.Node, events map[types.Object]*eventState, f func(*eventState)) {
	ast.Inspect(node, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if st := events[objOfIdent(info, id)]; st != nil {
				f(st)
			}
		}
		return true
	})
}
