package lint

import "testing"

func TestProcBlock(t *testing.T) {
	RunGolden(t, Testdata(), ProcBlock, "procblock")
}
