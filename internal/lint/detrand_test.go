package lint

import "testing"

func TestDetRand(t *testing.T) {
	RunGolden(t, Testdata(), DetRand, "detrand/internal/libd")
}

// TestDetRandCmdExempt verifies the cmd/ carve-out: the same constructs
// that are findings in library code are clean in a main package.
func TestDetRandCmdExempt(t *testing.T) {
	RunGolden(t, Testdata(), DetRand, "detrand/cmd/appd")
}

// TestDetRandSeededExempt verifies the seeded-randomness carve-out: a
// library file whose math/rand uses are confined to the explicit-seed
// constructors (rand.New(rand.NewSource(seed))) is deterministic by
// construction and draws no finding. The libd golden keeps the positive
// case: a file that also calls a package-level draw (rand.Int) is still
// flagged at the import.
func TestDetRandSeededExempt(t *testing.T) {
	RunGolden(t, Testdata(), DetRand, "detrand/internal/libseed")
}

// TestDetRandWorkerPoolExemption verifies the sanctioned worker-pool
// pattern: a documented //lint:ignore detrand on the pool spawn silences
// the go-statement finding at the driver level, while the raw analyzer
// still reports it (the directive is load-bearing, not dead).
func TestDetRandWorkerPoolExemption(t *testing.T) {
	loader := NewTreeLoader(Testdata())
	pkgs, err := loader.Load("suppress/internal/pool")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	diags, err := Run(pkgs, []*Analyzer{DetRand})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, d := range diags {
		t.Errorf("worker-pool spawn not suppressed: %s", d)
	}

	facts := NewFacts(loader.Packages())
	pass := &Pass{Analyzer: DetRand, Fset: pkgs[0].Fset, Files: pkgs[0].Files, Pkg: pkgs[0].Types, TypesInfo: pkgs[0].Info, Facts: facts}
	if err := DetRand.Run(pass); err != nil {
		t.Fatalf("raw run: %v", err)
	}
	if len(pass.diags) == 0 {
		t.Fatal("raw detrand found nothing in the pool package; the //lint:ignore is untested")
	}
}
