package lint

import "testing"

func TestDetRand(t *testing.T) {
	RunGolden(t, Testdata(), DetRand, "detrand/internal/libd")
}

// TestDetRandCmdExempt verifies the cmd/ carve-out: the same constructs
// that are findings in library code are clean in a main package.
func TestDetRandCmdExempt(t *testing.T) {
	RunGolden(t, Testdata(), DetRand, "detrand/cmd/appd")
}
