// Package eventpair holds golden cases for the eventpair analyzer.
package eventpair

import (
	"mv2sim/internal/cuda"
	"mv2sim/internal/sim"
)

// Positive: synchronized but never recorded.
func unrecorded(p *sim.Proc, ctx *cuda.Ctx) {
	ev := ctx.NewEvent()
	ev.Synchronize(p) // want `event ev is waited on but never recorded`
}

// Positive: a stream wait on an unrecorded event is the same bug.
func unrecordedStreamWait(p *sim.Proc, ctx *cuda.Ctx, s *cuda.Stream) {
	ev := ctx.NewEvent()
	ctx.StreamWaitEvent(p, s, ev) // want `event ev is waited on but never recorded`
}

// Negative: recorded before the wait.
func recorded(p *sim.Proc, ctx *cuda.Ctx, s *cuda.Stream) {
	ev := ctx.NewEvent()
	ev.Record(p, s)
	ev.Synchronize(p)
}

// Negative: the event escapes to a helper that may record it.
func escapes(p *sim.Proc, ctx *cuda.Ctx, s *cuda.Stream) {
	ev := ctx.NewEvent()
	recordLater(p, s, ev)
	ev.Synchronize(p)
}

func recordLater(p *sim.Proc, s *cuda.Stream, ev *cuda.Event) {
	ev.Record(p, s)
}

// Negative: an unused event is pointless but not a missed ordering.
func unused(ctx *cuda.Ctx) {
	_ = ctx.NewEvent()
}
