// Package pool is the sanctioned worker-pool exemption for detrand rule
// 5: raw goroutines are normally banned in simulator library code, but a
// pool whose workers only execute barrier-joined task bodies — pure
// memory work, no engine calls, no observable output, joined at a fixed
// (time, seq) slot — cannot leak scheduling order into the simulation.
// The exemption is claimed with a documented //lint:ignore on the spawn,
// exactly like the real engine's process goroutines claim the
// baton-passing exemption. Every directive here must suppress: the
// driver-level test expects this package to lint clean.
package pool

// Pool runs barrier-joined task bodies on raw goroutines.
type Pool struct {
	pending []func()
}

// Start launches n workers.
func (p *Pool) Start(n int) {
	for i := 0; i < n; i++ {
		//lint:ignore detrand pool workers only execute barrier-joined task bodies: pure memory work joined at a fixed slot, so scheduling order cannot leak into the simulation
		go p.worker()
	}
}

func (p *Pool) worker() {
	for _, fn := range p.pending {
		fn()
	}
}
