// Package suppress verifies //lint:ignore directives: every violation in
// this file carries a directive, so a clean run is expected.
package suppress

import (
	"mv2sim/internal/gpu"
	"mv2sim/internal/mem"
)

// TearDown drops Free errors deliberately: the device is being destroyed
// and the allocator state no longer matters.
func TearDown(dev *gpu.Device, ptrs []mem.Ptr) {
	for _, p := range ptrs {
		//lint:ignore errfree device teardown, allocator state is moot
		dev.Free(p)
	}
	dev.CheckAllocator() //lint:ignore errfree teardown check is best-effort
}

// Preload suppresses two analyzers at once.
func Preload(dev *gpu.Device) {
	//lint:ignore allocfree,errfree preloading a static arena for the process lifetime
	dev.MustMalloc(1 << 20)
}
