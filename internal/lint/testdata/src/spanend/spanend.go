// Package spanend holds golden cases for the spanend analyzer.
package spanend

import (
	"mv2sim/internal/obs"
	"mv2sim/internal/sim"
)

// Positive: started but never ended.
func unended(h *obs.Hub) {
	sp := h.Start("d2h_c2c", "rank0.d2h", 0, 65536) // want `span sp is started but never ended`
	_ = sp.Active()
}

// Positive: a step is not a completion.
func steppedOnly(h *obs.Hub) {
	sp := h.StartTask("rdma_write", "chunk", "hca0.tx", 1, 65536) // want `span sp is started but never ended`
	sp.Step("posted")
}

// Positive: a child span needs its own End.
func childUnended(h *obs.Hub, parent obs.Span) {
	sp := h.StartChild(parent, "d2d_nc2c", "rank0.pack", 0, 4096) // want `span sp is started but never ended`
	sp.Step("queued")
}

// Negative: started and ended.
func ended(h *obs.Hub) {
	sp := h.Start("d2d_nc2c", "rank0.pack", 0, 4096)
	sp.End()
}

// Negative: End passed as a method value to a trigger callback — the
// canonical pipeline idiom.
func endViaTrigger(h *obs.Hub, ev *sim.Event) {
	sp := h.Start("rdma_write", "rank0.rdma", 2, 65536)
	ev.OnTrigger(sp.End)
}

// Negative: ended inside a closure.
func endInClosure(h *obs.Hub, ev *sim.Event) {
	sp := h.Start("h2d_c2c", "rank1.h2d", 3, 65536)
	ev.OnTrigger(func() { sp.End() })
}

// Negative: the span escapes by return.
func escapesReturn(h *obs.Hub) obs.Span {
	sp := h.Start("d2h_c2c", "rank0.d2h", 0, 65536)
	return sp
}

// Negative: the span escapes to a helper that ends it.
func escapesHelper(h *obs.Hub) {
	sp := h.Start("d2h_c2c", "rank0.d2h", 0, 65536)
	endLater(sp)
}

func endLater(sp obs.Span) { sp.End() }

// Negative: the span escapes through a struct field.
type holder struct{ sp obs.Span }

func escapesField(h *obs.Hub, x *holder) {
	sp := h.Start("vbuf", "node0.txvbufs", 4, 65536)
	x.sp = sp
}

// Negative: instants and counters open nothing.
func instants(h *obs.Hub) {
	h.Instant("rts", "rank0.mpi", -1, 1<<20)
	h.Counter("node0.txvbufs.free", 63)
}
