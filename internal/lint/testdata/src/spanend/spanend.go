// Package spanend holds golden cases for the spanend analyzer.
package spanend

import (
	"mv2sim/internal/obs"
	"mv2sim/internal/sim"
)

// Positive: started but never ended.
func unended(h *obs.Hub) {
	sp := h.Start("d2h_c2c", "rank0.d2h", 0, 65536) // want `span sp is not ended on every path`
	_ = sp.Active()
}

// Positive: a step is not a completion.
func steppedOnly(h *obs.Hub) {
	sp := h.StartTask("rdma_write", "chunk", "hca0.tx", 1, 65536) // want `span sp is not ended on every path`
	sp.Step("posted")
}

// Positive: a child span needs its own End.
func childUnended(h *obs.Hub, parent obs.Span) {
	sp := h.StartChild(parent, "d2d_nc2c", "rank0.pack", 0, 4096) // want `span sp is not ended on every path`
	sp.Step("queued")
}

// Negative: started and ended.
func ended(h *obs.Hub) {
	sp := h.Start("d2d_nc2c", "rank0.pack", 0, 4096)
	sp.End()
}

// Negative: End passed as a method value to a trigger callback — the
// canonical pipeline idiom.
func endViaTrigger(h *obs.Hub, ev *sim.Event) {
	sp := h.Start("rdma_write", "rank0.rdma", 2, 65536)
	ev.OnTrigger(sp.End)
}

// Negative: ended inside a closure.
func endInClosure(h *obs.Hub, ev *sim.Event) {
	sp := h.Start("h2d_c2c", "rank1.h2d", 3, 65536)
	ev.OnTrigger(func() { sp.End() })
}

// Negative: the span escapes by return.
func escapesReturn(h *obs.Hub) obs.Span {
	sp := h.Start("d2h_c2c", "rank0.d2h", 0, 65536)
	return sp
}

// Negative: the span escapes to a helper that ends it.
func escapesHelper(h *obs.Hub) {
	sp := h.Start("d2h_c2c", "rank0.d2h", 0, 65536)
	endLater(sp)
}

func endLater(sp obs.Span) { sp.End() }

// Negative: the span escapes through a struct field.
type holder struct{ sp obs.Span }

func escapesField(h *obs.Hub, x *holder) {
	sp := h.Start("vbuf", "node0.txvbufs", 4, 65536)
	x.sp = sp
}

// Negative: instants and counters open nothing.
func instants(h *obs.Hub) {
	h.Instant("rts", "rank0.mpi", -1, 1<<20)
	h.Counter("node0.txvbufs.free", 63)
}

// Seeded flow bug: ended on the happy path, leaked on the early error
// return. The pre-v2 syntactic analyzer saw the End call somewhere in the
// function and declared the span handled. seeded:flow-only
func earlyReturnLeak(h *obs.Hub, err error) error {
	sp := h.Start("d2h_c2c", "rank0.d2h", 0, 65536) // want `span sp is not ended on every path`
	if err != nil {
		return err // sp is still open here
	}
	sp.End()
	return nil
}

// Seeded flow bug: the helper only reads the span; the pre-v2 analyzer
// treated any helper call as an ownership transfer and stayed silent.
// The cross-package fact proves observe borrows. seeded:flow-only
func borrowedNotEnded(h *obs.Hub) {
	sp := h.Start("d2h_c2c", "rank0.d2h", 0, 65536) // want `span sp is not ended on every path`
	observe(sp)
}

func observe(sp obs.Span) { _ = sp.Active() }

// Seeded flow bug: the defer is registered after the early return, so the
// error path leaves the span open. The pre-v2 analyzer saw the End call
// and stayed silent. seeded:flow-only
func deferTooLate(h *obs.Hub, err error) error {
	sp := h.Start("d2h_c2c", "rank0.d2h", 0, 65536) // want `span sp is not ended on every path`
	if err != nil {
		return err
	}
	defer sp.End()
	return nil
}

// Negative: a defer registered before the early return covers every path.
func deferCovers(h *obs.Hub, err error) error {
	sp := h.Start("d2h_c2c", "rank0.d2h", 0, 65536)
	defer sp.End()
	if err != nil {
		return err
	}
	return nil
}

// Negative: ended on both branches.
func bothBranches(h *obs.Hub, fast bool) {
	sp := h.Start("d2h_c2c", "rank0.d2h", 0, 65536)
	if fast {
		sp.End()
		return
	}
	sp.End()
}

// Negative: the panic path owes no End — the engine discards the run.
func panicPath(h *obs.Hub, bad bool) {
	sp := h.Start("d2h_c2c", "rank0.d2h", 0, 65536)
	if bad {
		panic("bad geometry")
	}
	sp.End()
}

// Negative: the helper ends its parameter on every path, which the
// cross-package fact proves, so passing the span to it is a release.
func endedViaFact(h *obs.Hub, ok bool) {
	sp := h.Start("d2h_c2c", "rank0.d2h", 0, 65536)
	finish(sp, ok)
}

func finish(sp obs.Span, ok bool) {
	if ok {
		sp.Step("ok")
	}
	sp.End()
}

// Negative: the helper ends its parameter only conditionally, so the fact
// machinery conservatively treats the call as an ownership move.
func maybeEnded(h *obs.Hub, ok bool) {
	sp := h.Start("d2h_c2c", "rank0.d2h", 0, 65536)
	maybeFinish(sp, ok)
}

func maybeFinish(sp obs.Span, ok bool) {
	if ok {
		sp.End()
	}
}
