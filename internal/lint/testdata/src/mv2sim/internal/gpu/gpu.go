// Package gpu is a golden-test stub of the real internal/gpu.
package gpu

import (
	"mv2sim/internal/mem"
	"mv2sim/internal/sim"
)

// Device is a simulated GPU.
type Device struct{}

// Config parameterizes a device.
type Config struct {
	MemBytes int
}

// New creates a device.
func New(e sim.Engine, id int, cfg Config) *Device { return &Device{} }

// Malloc allocates device memory.
func (d *Device) Malloc(n int) (mem.Ptr, error) { return mem.Ptr{}, nil }

// MustMalloc allocates or panics.
func (d *Device) MustMalloc(n int) mem.Ptr { return mem.Ptr{} }

// Free releases an allocation.
func (d *Device) Free(p mem.Ptr) error { return nil }

// CheckAllocator verifies allocator invariants.
func (d *Device) CheckAllocator() error { return nil }

// LiveAllocs counts live allocations.
func (d *Device) LiveAllocs() int { return 0 }
