// Package mem is a golden-test stub of the real internal/mem: the lint
// analyzers match simulator API by import path and type name, so the
// stubs live under the same import paths as the real packages.
package mem

// Ptr is a simulated device/host pointer.
type Ptr struct {
	off int
}

// Add offsets the pointer.
func (p Ptr) Add(n int) Ptr { return Ptr{p.off + n} }

// Space is a simulated address space.
type Space struct {
	base Ptr
}

// NewHostSpace creates a host space.
func NewHostSpace(name string, n int) *Space { return &Space{} }

// Base returns the base pointer.
func (s *Space) Base() Ptr { return s.base }
