// Package cluster is a golden-test stub of the real internal/cluster.
package cluster

import (
	"mv2sim/internal/cuda"
	"mv2sim/internal/mpi"
)

// Node is one rank's view of the cluster.
type Node struct {
	Rank *mpi.Rank
	Ctx  *cuda.Ctx
}

// Cluster is a simulated cluster.
type Cluster struct{}

// Config parameterizes a cluster.
type Config struct {
	Nodes int
	MPI   mpi.Config
}

// New creates a cluster.
func New(cfg Config) *Cluster { return &Cluster{} }

// Run executes fn on every node inside a simulation process.
func (c *Cluster) Run(fn func(n *Node)) error { return nil }
