// Package cuda is a golden-test stub of the real internal/cuda.
package cuda

import (
	"mv2sim/internal/gpu"
	"mv2sim/internal/mem"
	"mv2sim/internal/sim"
)

// Ctx is a simulated CUDA context.
type Ctx struct{}

// Stream is an in-order work queue.
type Stream struct{}

// Event is a stream marker.
type Event struct{}

// NewCtx creates a context on dev.
func NewCtx(e sim.Engine, dev *gpu.Device) *Ctx { return &Ctx{} }

// Malloc allocates device memory.
func (c *Ctx) Malloc(n int) (mem.Ptr, error) { return mem.Ptr{}, nil }

// MustMalloc allocates or panics.
func (c *Ctx) MustMalloc(n int) mem.Ptr { return mem.Ptr{} }

// Free releases an allocation.
func (c *Ctx) Free(p mem.Ptr) error { return nil }

// NewStream creates a stream.
func (c *Ctx) NewStream() *Stream { return &Stream{} }

// NewEvent creates an unrecorded event.
func (c *Ctx) NewEvent() *Event { return &Event{} }

// Memcpy is a blocking copy.
func (c *Ctx) Memcpy(p *sim.Proc, dst, src mem.Ptr, n int) {}

// Memcpy2D is a blocking strided copy.
func (c *Ctx) Memcpy2D(p *sim.Proc, dst mem.Ptr, dpitch int, src mem.Ptr, spitch, width, height int) {
}

// Memset is a blocking fill.
func (c *Ctx) Memset(p *sim.Proc, dst mem.Ptr, b byte, n int) {}

// MemcpyAsync enqueues an async copy.
func (c *Ctx) MemcpyAsync(p *sim.Proc, dst, src mem.Ptr, n int, s *Stream) *sim.Event {
	return &sim.Event{}
}

// Memcpy2DAsync enqueues an async strided copy.
func (c *Ctx) Memcpy2DAsync(p *sim.Proc, dst mem.Ptr, dpitch int, src mem.Ptr, spitch, width, height int, s *Stream) *sim.Event {
	return &sim.Event{}
}

// StreamWaitEvent makes s wait for ev.
func (c *Ctx) StreamWaitEvent(p *sim.Proc, s *Stream, ev *Event) {}

// Synchronize blocks until the stream drains.
func (s *Stream) Synchronize(p *sim.Proc) {}

// Query reports whether the stream is idle.
func (s *Stream) Query() bool { return true }

// Record enqueues a marker on s.
func (ev *Event) Record(p *sim.Proc, s *Stream) {}

// Synchronize blocks until the marker completes.
func (ev *Event) Synchronize(p *sim.Proc) {}

// Query reports completion.
func (ev *Event) Query() bool { return true }
