// Package obs is a golden-test stub of the real internal/obs.
package obs

// Task is one traced unit of work.
type Task struct {
	ID    uint64
	Kind  string
	Where string
}

// Hub fans task records out to tracers.
type Hub struct{}

// Span is an open task handle.
type Span struct{ hub *Hub }

// Start opens a task.
func (h *Hub) Start(kind, where string, chunk, bytes int) Span { return Span{hub: h} }

// StartTask opens a task with a distinct What label.
func (h *Hub) StartTask(kind, what, where string, chunk, bytes int) Span { return Span{hub: h} }

// StartChild opens a task parented to another span's task.
func (h *Hub) StartChild(parent Span, kind, where string, chunk, bytes int) Span {
	return Span{hub: h}
}

// Instant records a zero-duration task.
func (h *Hub) Instant(kind, where string, chunk, bytes int) {}

// Counter records a gauge sample.
func (h *Hub) Counter(name string, value float64) {}

// Enabled reports whether any tracer is attached.
func (h *Hub) Enabled() bool { return h != nil }

// Active reports whether the span is recording.
func (sp Span) Active() bool { return sp.hub != nil }

// Task returns the span's task record so far.
func (sp Span) Task() Task { return Task{} }

// Step records an intermediate step.
func (sp Span) Step(what string) {}

// End closes the task.
func (sp Span) End() {}
