// Package mpi is a golden-test stub of the real internal/mpi.
package mpi

import (
	"mv2sim/internal/mem"
	"mv2sim/internal/sim"
)

// Config holds MPI tunables.
type Config struct {
	EagerLimit int
	BlockSize  int
}

// Rank is one MPI process.
type Rank struct{}

// Proc returns the rank's simulation process.
func (r *Rank) Proc() *sim.Proc { return nil }

// Send is a blocking send.
func (r *Rank) Send(buf mem.Ptr, n int, dst, tag int) {}

// Recv is a blocking receive.
func (r *Rank) Recv(buf mem.Ptr, n int, src, tag int) {}
