// Package sim is a golden-test stub of the real internal/sim.
package sim

// Time is simulated time.
type Time int64

// Engine is the simulation scheduler interface; SerialEngine and
// ParallelEngine implement it over the shared engineCore.
type Engine interface {
	NewEvent(name string) *Event
	CallAt(t Time, fn func())
	CallAfter(d Time, fn func())
	TaskAt(t Time, fn func())
	Spawn(name string, fn func(p *Proc))
	Run() error
	Shutdown()
	NewResource(name string, n int) *Resource
	NewQueue(name string) *Queue
}

// engineCore is the shared implementation both engines embed.
type engineCore struct{}

// Proc is a simulated process.
type Proc struct{}

// Event is a one-shot condition.
type Event struct{ fired bool }

// Resource is a counted resource.
type Resource struct{}

// Queue is a blocking queue.
type Queue struct{}

// SerialEngine is the cooperative single-executor engine.
type SerialEngine struct{ engineCore }

// ParallelEngine is the worker-pool engine.
type ParallelEngine struct{ engineCore }

// New creates a serial engine.
func New() *SerialEngine { return &SerialEngine{} }

// NewParallel creates a parallel engine.
func NewParallel() *ParallelEngine { return &ParallelEngine{} }

// Shutdown stops the pool, then the core.
func (e *ParallelEngine) Shutdown() {}

// NewEvent creates an event.
func (e *engineCore) NewEvent(name string) *Event { return &Event{} }

// CallAt schedules fn at time t in engine context.
func (e *engineCore) CallAt(t Time, fn func()) {}

// CallAfter schedules fn after d in engine context.
func (e *engineCore) CallAfter(d Time, fn func()) {}

// TaskAt schedules a pure host-memory task joined at its (time, seq) slot.
func (e *engineCore) TaskAt(t Time, fn func()) {}

// Spawn starts a process.
func (e *engineCore) Spawn(name string, fn func(p *Proc)) {}

// Run runs the simulation.
func (e *engineCore) Run() error { return nil }

// Shutdown stops the engine.
func (e *engineCore) Shutdown() {}

// NewResource creates a resource.
func (e *engineCore) NewResource(name string, n int) *Resource { return &Resource{} }

// NewQueue creates a queue.
func (e *engineCore) NewQueue(name string) *Queue { return &Queue{} }

// Wait blocks on an event.
func (p *Proc) Wait(ev *Event) {}

// WaitAll blocks on all events.
func (p *Proc) WaitAll(evs ...*Event) {}

// Sleep blocks for d.
func (p *Proc) Sleep(d Time) {}

// Yield cedes the baton.
func (p *Proc) Yield() {}

// Now returns current time.
func (p *Proc) Now() Time { return 0 }

// Trigger fires the event.
func (ev *Event) Trigger() {}

// Fired reports whether the event fired.
func (ev *Event) Fired() bool { return ev.fired }

// OnTrigger registers an engine-context callback.
func (ev *Event) OnTrigger(fn func()) {}

// Acquire takes n units, blocking p.
func (r *Resource) Acquire(p *Proc, n int) {}

// Release returns n units.
func (r *Resource) Release(n int) {}

// Get blocks p until an item arrives.
func (q *Queue) Get(p *Proc) interface{} { return nil }

// Put enqueues an item.
func (q *Queue) Put(v interface{}) {}
