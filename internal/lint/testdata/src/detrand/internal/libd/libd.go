// Package libd holds golden cases for the detrand analyzer: the import
// path contains /internal/, so the determinism rules apply.
package libd

import (
	"fmt"
	"math/rand" // want `math/rand in simulator library code makes runs nondeterministic`
	"sort"
	"time"

	"mv2sim/internal/obs"
	"mv2sim/internal/sim"
)

// Positive (rule 1): the loop body records obs instants, so the emit
// order follows the randomized map order.
func emitPerKey(h *obs.Hub, sizes map[string]int) {
	for name, n := range sizes { // want `map iteration order is randomized per run but this loop drives sim-visible work`
		h.Instant(name, "rank0.mpi", -1, n)
	}
}

// Positive (rule 1, transitive): the helper reaches sim-visible state
// through its body, which the SimVisible fact proves.
func emitViaHelper(h *obs.Hub, sizes map[string]int) {
	for name, n := range sizes { // want `map iteration order is randomized per run but this loop drives sim-visible work`
		record(h, name, n)
	}
}

func record(h *obs.Hub, name string, n int) {
	h.Instant(name, "rank0.mpi", -1, n)
}

// Positive (rule 1, closure): one level of local closures is inlined.
func emitViaClosure(h *obs.Hub, sizes map[string]int) {
	emit := func(name string, n int) {
		h.Instant(name, "rank0.mpi", -1, n)
	}
	for name, n := range sizes { // want `map iteration order is randomized per run but this loop drives sim-visible work`
		emit(name, n)
	}
}

// Positive (rule 1, printing): emit order is output order.
func dump(sizes map[string]int) {
	for name, n := range sizes { // want `map iteration order is randomized per run but this loop drives sim-visible work`
		fmt.Println(name, n)
	}
}

// Positive (rule 2): the slice keeps the randomized key order and is
// never repaired.
func collectKeys(sizes map[string]int) []string {
	var names []string
	for name := range sizes { // want `map iteration appends to names in randomized order and names is never sorted afterwards`
		names = append(names, name)
	}
	return names
}

// Negative (rule 2): the canonical sorted-keys idiom.
func sortedKeys(sizes map[string]int) []string {
	var names []string
	for name := range sizes {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Negative: order-insensitive aggregation.
func total(sizes map[string]int) int {
	sum := 0
	for _, n := range sizes {
		sum += n
	}
	return sum
}

// Negative: building another map is order-insensitive.
func invert(sizes map[string]int) map[int]string {
	out := make(map[int]string, len(sizes))
	for name, n := range sizes {
		out[n] = name
	}
	return out
}

// Negative: ranging over a slice is deterministic, sim-visible work and
// all.
func emitSlice(h *obs.Hub, names []string) {
	for i, name := range names {
		h.Instant(name, "rank0.mpi", -1, i)
	}
}

// Positive (rule 3): host clock.
func stamp() int64 {
	t := time.Now() // want `time.Now reads the host clock in simulator library code`
	return t.UnixNano()
}

// Negative: duration arithmetic never reads the clock.
func window(d time.Duration) time.Duration {
	return 2 * d
}

// Positive (rule 5): raw goroutine.
func spawnRaw(f func()) {
	go f() // want `go statement in simulator library code`
}

// Worker-pool carve-out (rule 5): the spawn is a go statement like any
// other, but the documented //lint:ignore claims the sanctioned pattern —
// workers that only execute barrier-joined task bodies — mirroring the
// baton-passing exemption in the real engine. No finding survives the
// directive (the suppress tree proves the directive is load-bearing).
func spawnPool(work chan func()) {
	for i := 0; i < 4; i++ {
		//lint:ignore detrand pool workers only execute barrier-joined task bodies
		go drainPool(work)
	}
}

func drainPool(work chan func()) {
	for f := range work {
		f()
	}
}

// Negative: engine-scheduled concurrency.
func spawnSim(e sim.Engine) {
	e.Spawn("worker", func(p *sim.Proc) {
		p.Sleep(1)
	})
}

// Positive (rule 1): TaskAt through the Engine interface is sim-visible
// scheduling like CallAt.
func flushTasks(e sim.Engine, sizes map[string]int) {
	for _, n := range sizes { // want `map iteration order is randomized per run but this loop drives sim-visible work`
		n := n
		e.TaskAt(sim.Time(n), func() {})
	}
}

// Positive (rule 1): the same call through a concrete engine resolves to
// the method promoted from engineCore and must classify identically.
func flushTasksConcrete(e *sim.ParallelEngine, sizes map[string]int) {
	for _, n := range sizes { // want `map iteration order is randomized per run but this loop drives sim-visible work`
		n := n
		e.TaskAt(sim.Time(n), func() {})
	}
}

// Only the import above is flagged for math/rand (rule 4); call sites are
// not re-reported.
func jitter() int {
	return rand.Int()
}
