// Package libseed holds the sanctioned seeded-randomness pattern for the
// detrand analyzer: the import path contains /internal/, so the
// determinism rules apply, but every use of math/rand here is confined to
// the explicit-seed constructors (rand.New, rand.NewSource) and their
// types (rand.Rand, rand.Source). The stream is a pure function of the
// seed, so the import is deterministic by construction and produces no
// finding — this is the pattern the open-loop load generator's arrival
// schedules use.
package libseed

import "math/rand"

// NewRNG threads an explicit seed into a private generator — the
// sanctioned construction.
func NewRNG(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Draw consumes from a seeded generator passed in by the caller; methods
// on a *rand.Rand never touch the process-global state.
func Draw(rng *rand.Rand, n int) int {
	return rng.Intn(n)
}

// Spread mixes several deterministic draws, exercising the type names in
// signatures and locals.
func Spread(seed int64, k int) []float64 {
	var src rand.Source = rand.NewSource(seed)
	rng := rand.New(src)
	out := make([]float64, k)
	for i := range out {
		out[i] = rng.ExpFloat64()
	}
	return out
}
