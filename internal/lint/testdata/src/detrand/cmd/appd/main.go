// Command appd proves the cmd/ exemption: wall-clock reads, goroutines
// and map iteration are legal outside internal/ library code — timing a
// run and printing host state is exactly what a benchmark driver does.
package main

import (
	"fmt"
	"time"
)

func main() {
	start := time.Now()
	results := map[string]float64{"osu_latency": 12.5}
	for name, v := range results {
		fmt.Println(name, v)
	}
	go func() { fmt.Println("background") }()
	fmt.Println(time.Since(start))
}
