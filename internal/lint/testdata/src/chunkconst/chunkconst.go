// Package chunkconst holds golden cases for the chunkconst analyzer. The
// analyzer matches tunable names, so the cases are self-contained.
package chunkconst

// Config mirrors the tunable-bearing config structs of the simulator.
type Config struct {
	BlockSize  int
	EagerLimit int
	Rails      int
	Iters      int
}

// Const declarations are the one place raw values are allowed: they
// define the canonical tunables.
const (
	DefaultBlockSize  = 64 << 10
	DefaultEagerLimit = 16 << 10
	DefaultRails      = 1
)

// Positive: raw literals scattered into a composite literal.
func Bad() Config {
	return Config{
		BlockSize:  64 << 10, // want `raw literal used for BlockSize`
		EagerLimit: 16384,    // want `raw literal used for EagerLimit`
		Rails:      2,        // want `raw literal used for Rails`
		Iters:      10,
	}
}

// Positive: raw literal assigned to a tunable field.
func BadAssign(c *Config) {
	c.BlockSize = 32 << 10 // want `raw literal assigned to BlockSize`
	c.Rails = 4            // want `raw literal assigned to Rails`
}

// Negative: referencing the named tunables.
func Good() Config {
	return Config{
		BlockSize:  DefaultBlockSize,
		EagerLimit: DefaultEagerLimit,
		Rails:      DefaultRails,
	}
}

// Negative: sweeping the rail count over variables is how the rails
// experiments are written.
func RailSweep(counts []int) []Config {
	out := make([]Config, 0, len(counts))
	for _, r := range counts {
		c := Config{Rails: DefaultRails}
		c.Rails = r
		out = append(out, c)
	}
	return out
}

// Negative: sweeping a tunable over computed values is how calibration
// experiments are written.
func Sweep(sizes []int) []Config {
	out := make([]Config, 0, len(sizes))
	for _, bs := range sizes {
		c := Config{EagerLimit: DefaultEagerLimit}
		c.BlockSize = bs
		out = append(out, c)
	}
	return out
}

// PackMode mirrors core.PackMode: engine selection is a named-constant
// tunable like the block size.
type PackMode uint8

// The named mode constants — the one place raw mode values may appear.
const (
	PackModeAuto PackMode = iota
	PackModeMemcpy2D
	PackModeKernel
)

// ModeConfig mirrors core.Config's engine-selection fields.
type ModeConfig struct {
	PackMode   PackMode
	UnpackMode PackMode
}

// Positive: raw numeric mode values.
func BadModes() ModeConfig {
	return ModeConfig{
		PackMode:   1, // want `raw literal used for PackMode`
		UnpackMode: 2, // want `raw literal used for UnpackMode`
	}
}

// Positive: raw literal assigned to a mode field.
func BadModeAssign(c *ModeConfig) {
	c.PackMode = 2 // want `raw literal assigned to PackMode`
}

// Negative: the named constants.
func GoodModes() ModeConfig {
	c := ModeConfig{PackMode: PackModeMemcpy2D}
	c.UnpackMode = PackModeKernel
	return c
}

// NicConfig mirrors ib.Model's SGE-unit fields: the WQE gather-entry cap
// and the two gather cost rates, the first float64 tunables on the list.
type NicConfig struct {
	MaxSGEPerWQE          int
	NicGatherNsPerSegment float64
	NicGatherNsPerByte    float64
}

// The named SGE defaults — the one place raw values may appear.
const (
	DefaultMaxSGEPerWQE          = 32
	DefaultNicGatherNsPerSegment = 20.0
	DefaultNicGatherNsPerByte    = 0.05
)

// Positive: raw SGE tunables, including float literals.
func BadNic() NicConfig {
	return NicConfig{
		MaxSGEPerWQE:          32,   // want `raw literal used for MaxSGEPerWQE`
		NicGatherNsPerSegment: 20.0, // want `raw literal used for NicGatherNsPerSegment`
		NicGatherNsPerByte:    0.05, // want `raw literal used for NicGatherNsPerByte`
	}
}

// Positive: raw literals assigned to SGE tunable fields.
func BadNicAssign(c *NicConfig) {
	c.MaxSGEPerWQE = 16          // want `raw literal assigned to MaxSGEPerWQE`
	c.NicGatherNsPerByte = 2e-02 // want `raw literal assigned to NicGatherNsPerByte`
}

// Negative: the named defaults, and sweeping over variables.
func GoodNic(perSeg float64) NicConfig {
	c := NicConfig{
		MaxSGEPerWQE:          DefaultMaxSGEPerWQE,
		NicGatherNsPerSegment: DefaultNicGatherNsPerSegment,
	}
	c.NicGatherNsPerSegment = perSeg
	c.NicGatherNsPerByte = DefaultNicGatherNsPerByte
	return c
}
