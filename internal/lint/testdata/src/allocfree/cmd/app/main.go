// Command app is the allocfree clean negative: main packages may use
// MustMalloc and panic freely, and the leak check only covers internal/
// library code.
package main

import (
	"mv2sim/internal/gpu"
	"mv2sim/internal/sim"
)

func main() {
	e := sim.New()
	dev := gpu.New(e, 0, gpu.Config{MemBytes: 1 << 20})
	buf := dev.MustMalloc(512)
	_ = buf
	if err := e.Run(); err != nil {
		panic(err)
	}
}
