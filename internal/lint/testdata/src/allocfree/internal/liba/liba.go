// Package liba holds golden cases for the allocfree analyzer: the import
// path contains /internal/, so both the leak check and the
// error-propagation check apply.
package liba

import (
	"fmt"

	"mv2sim/internal/cuda"
	"mv2sim/internal/gpu"
	"mv2sim/internal/mem"
	"mv2sim/internal/sim"
)

// Positive: allocated, used only by borrowing simulator calls, never
// freed, never escapes.
func Leaky(p *sim.Proc, ctx *cuda.Ctx, dst mem.Ptr) {
	buf := ctx.MustMalloc(64) // want `device allocation assigned to buf is not freed on every path`
	ctx.Memcpy(p, dst, buf, 64)
}

// Positive: MustMalloc in library code with no simulation process around.
func Setup(dev *gpu.Device) mem.Ptr {
	return dev.MustMalloc(128) // want `MustMalloc panics on allocation failure`
}

// Positive: exported API turning a recoverable error into a crash.
func Validate(dev *gpu.Device) {
	if err := dev.CheckAllocator(); err != nil {
		panic(err) // want `Validate panics with an error value`
	}
}

// Negative: freed in the same function, error consumed.
func Freed(p *sim.Proc, ctx *cuda.Ctx, dst mem.Ptr) {
	buf := ctx.MustMalloc(64)
	ctx.Memcpy(p, dst, buf, 64)
	if err := ctx.Free(buf); err != nil {
		panic(err)
	}
}

// Negative: ownership is returned to the caller.
func Alloc(dev *gpu.Device) (mem.Ptr, error) {
	buf, err := dev.Malloc(256)
	if err != nil {
		return mem.Ptr{}, fmt.Errorf("alloc: %w", err)
	}
	return buf, nil
}

// Negative: Must-prefixed functions are documented panic wrappers.
func MustAlloc(dev *gpu.Device) mem.Ptr {
	return dev.MustMalloc(256) // allowed: the function advertises the panic
}

// Negative: inside a spawned simulation process, panicking is the
// designed error channel and MustMalloc is idiomatic.
func RunBench(e sim.Engine, dev *gpu.Device) {
	e.Spawn("bench", func(p *sim.Proc) {
		buf := dev.MustMalloc(64)
		if err := dev.Free(buf); err != nil {
			panic(err)
		}
	})
}

// Seeded flow bug: stage is freed on the happy path but leaks on the
// early error return after the second allocation fails. The pre-v2
// syntactic analyzer saw the Free call and was satisfied. seeded:flow-only
func EarlyReturnLeak(p *sim.Proc, ctx *cuda.Ctx, dst mem.Ptr) error {
	stage := ctx.MustMalloc(64) // want `device allocation assigned to stage is not freed on every path`
	extra, err := ctx.Malloc(128)
	if err != nil {
		return err // stage leaks here
	}
	ctx.Memcpy(p, dst, stage, 64)
	if err := ctx.Free(extra); err != nil {
		return err
	}
	return ctx.Free(stage)
}

// Seeded flow bug: freed on one branch only; the pre-v2 analyzer saw a
// Free somewhere in the function and was satisfied. seeded:flow-only
func BranchLeak(p *sim.Proc, ctx *cuda.Ctx, dst mem.Ptr, fast bool) {
	buf := ctx.MustMalloc(64) // want `device allocation assigned to buf is not freed on every path`
	if fast {
		if err := ctx.Free(buf); err != nil {
			panic(err)
		}
		return
	}
	ctx.Memcpy(p, dst, buf, 64)
}

// Seeded flow bug: the helper only borrows the buffer, which the
// cross-package fact proves, so the leak is real; the pre-v2 analyzer
// treated any helper call as an ownership move. seeded:flow-only
func BorrowedNotFreed(p *sim.Proc, ctx *cuda.Ctx, dst mem.Ptr) {
	buf := ctx.MustMalloc(64) // want `device allocation assigned to buf is not freed on every path`
	fill(p, ctx, dst, buf)
}

func fill(p *sim.Proc, ctx *cuda.Ctx, dst, src mem.Ptr) {
	ctx.Memcpy(p, dst, src, 64)
}

// Negative: released through a helper whose cross-package fact proves it
// frees its parameter on every path. discard deliberately avoids "free"
// in its name so the release is proven by the fact, not the name
// heuristic.
func FreedViaHelper(p *sim.Proc, ctx *cuda.Ctx, dst mem.Ptr) {
	buf := ctx.MustMalloc(64)
	ctx.Memcpy(p, dst, buf, 64)
	discard(ctx, buf)
}

func discard(ctx *cuda.Ctx, p mem.Ptr) {
	if err := ctx.Free(p); err != nil {
		panic(err)
	}
}

// Negative: a deferred cleanup closure registered before the early return
// covers every path (the closure capture is an ownership transfer from
// this function's point of view).
func DeferFreed(p *sim.Proc, ctx *cuda.Ctx, dst mem.Ptr, bad bool) {
	buf := ctx.MustMalloc(64)
	defer func() {
		if err := ctx.Free(buf); err != nil {
			panic(err)
		}
	}()
	if bad {
		return
	}
	ctx.Memcpy(p, dst, buf, 64)
}

// Negative: allocate and free inside each loop iteration.
func LoopFreed(p *sim.Proc, ctx *cuda.Ctx, dst mem.Ptr) {
	for i := 0; i < 4; i++ {
		buf := ctx.MustMalloc(64)
		ctx.Memcpy(p, dst, buf, 64)
		discard(ctx, buf)
	}
}
