// Package liba holds golden cases for the allocfree analyzer: the import
// path contains /internal/, so both the leak check and the
// error-propagation check apply.
package liba

import (
	"fmt"

	"mv2sim/internal/cuda"
	"mv2sim/internal/gpu"
	"mv2sim/internal/mem"
	"mv2sim/internal/sim"
)

// Positive: allocated, used only by borrowing simulator calls, never
// freed, never escapes.
func Leaky(p *sim.Proc, ctx *cuda.Ctx, dst mem.Ptr) {
	buf := ctx.MustMalloc(64) // want `device allocation assigned to buf is never freed`
	ctx.Memcpy(p, dst, buf, 64)
}

// Positive: MustMalloc in library code with no simulation process around.
func Setup(dev *gpu.Device) mem.Ptr {
	return dev.MustMalloc(128) // want `MustMalloc panics on allocation failure`
}

// Positive: exported API turning a recoverable error into a crash.
func Validate(dev *gpu.Device) {
	if err := dev.CheckAllocator(); err != nil {
		panic(err) // want `Validate panics with an error value`
	}
}

// Negative: freed in the same function, error consumed.
func Freed(p *sim.Proc, ctx *cuda.Ctx, dst mem.Ptr) {
	buf := ctx.MustMalloc(64)
	ctx.Memcpy(p, dst, buf, 64)
	if err := ctx.Free(buf); err != nil {
		panic(err)
	}
}

// Negative: ownership is returned to the caller.
func Alloc(dev *gpu.Device) (mem.Ptr, error) {
	buf, err := dev.Malloc(256)
	if err != nil {
		return mem.Ptr{}, fmt.Errorf("alloc: %w", err)
	}
	return buf, nil
}

// Negative: Must-prefixed functions are documented panic wrappers.
func MustAlloc(dev *gpu.Device) mem.Ptr {
	return dev.MustMalloc(256) // allowed: the function advertises the panic
}

// Negative: inside a spawned simulation process, panicking is the
// designed error channel and MustMalloc is idiomatic.
func RunBench(e *sim.Engine, dev *gpu.Device) {
	e.Spawn("bench", func(p *sim.Proc) {
		buf := dev.MustMalloc(64)
		if err := dev.Free(buf); err != nil {
			panic(err)
		}
	})
}
