// Package errfree holds golden cases for the errfree analyzer.
package errfree

import (
	"fmt"

	"mv2sim/internal/cuda"
	"mv2sim/internal/gpu"
	"mv2sim/internal/mem"
)

// Positive: calling Free as a bare statement drops the error.
func Discards(dev *gpu.Device, p mem.Ptr) {
	dev.Free(p) // want `error result of Device.Free is discarded`
}

// Positive: assigning to the blank identifier is equally discarded.
func Blank(ctx *cuda.Ctx, p mem.Ptr) {
	_ = ctx.Free(p) // want `error result of Ctx.Free is discarded`
}

// Positive: a bare deferred Free cannot surface its error.
func Deferred(dev *gpu.Device, p mem.Ptr) {
	defer dev.Free(p) // want `error result of Device.Free is discarded`
}

// Positive: CheckAllocator exists only for its error.
func Check(dev *gpu.Device) {
	dev.CheckAllocator() // want `error result of Device.CheckAllocator is discarded`
}

// Negative: errors consumed and propagated.
func Consumed(dev *gpu.Device, p mem.Ptr) error {
	if err := dev.Free(p); err != nil {
		return fmt.Errorf("free: %w", err)
	}
	return dev.CheckAllocator()
}

// Negative: a deferred closure that inspects the error is fine.
func DeferredClosure(dev *gpu.Device, p mem.Ptr) {
	defer func() {
		if err := dev.Free(p); err != nil {
			panic(err)
		}
	}()
}
