// Package procblock holds golden cases for the procblock analyzer.
package procblock

import (
	"mv2sim/internal/cuda"
	"mv2sim/internal/mem"
	"mv2sim/internal/mpi"
	"mv2sim/internal/sim"
)

var globalProc *sim.Proc

// Positive: a nil *sim.Proc can never block.
func nilProc(ctx *cuda.Ctx, dst, src mem.Ptr) {
	ctx.Memcpy(nil, dst, src, 8) // want `blocking call Ctx.Memcpy with nil \*sim\.Proc`
}

// Positive: the enclosing function neither receives nor obtains a process.
func fromGlobal(s *cuda.Stream) {
	s.Synchronize(globalProc) // want `blocking call Stream.Synchronize in a function that does not receive a \*sim\.Proc`
}

// Positive: blocking on a Proc-receiver method without local provenance.
func badWait(ev *sim.Event) {
	globalProc.Wait(ev) // want `blocking call Proc.Wait in a function that does not receive a \*sim\.Proc`
}

// Positive: engine-context callbacks run on the engine goroutine and must
// never block, even when the registering function owns a process.
func engineCallback(e sim.Engine, s *cuda.Stream, p *sim.Proc) {
	e.CallAfter(10, func() {
		s.Synchronize(p) // want `blocking call Stream.Synchronize inside an engine-context callback`
	})
}

// Positive: OnTrigger callbacks are engine context too.
func triggerCallback(ev *sim.Event, s *cuda.Stream, p *sim.Proc) {
	ev.OnTrigger(func() {
		s.Synchronize(p) // want `blocking call Stream.Synchronize inside an engine-context callback`
	})
}

// Negative: the function receives the process it blocks.
func withProc(p *sim.Proc, ctx *cuda.Ctx, dst, src mem.Ptr) {
	ctx.Memcpy(p, dst, src, 8)
	p.Sleep(5)
}

// Negative: the process is obtained locally from a simulation object.
func viaRank(r *mpi.Rank, s *cuda.Stream) {
	s.Synchronize(r.Proc())
}

// Negative: local variable assigned from a call is trusted provenance.
func viaLocal(r *mpi.Rank, s *cuda.Stream) {
	p := r.Proc()
	s.Synchronize(p)
}

// Negative: a spawned process body receives its own *sim.Proc.
func spawned(e sim.Engine, s *cuda.Stream) {
	e.Spawn("worker", func(p *sim.Proc) {
		s.Synchronize(p)
		p.Yield()
	})
}
