package lint

import "testing"

func TestErrFree(t *testing.T) {
	RunGolden(t, Testdata(), ErrFree, "errfree")
}
