package lint

import (
	"go/types"
	"testing"
)

// TestPtrParamFacts pins the cross-package fact lattice on the helper
// functions in the allocfree golden package: fill only borrows its
// buffers, discard frees its parameter on every path.
func TestPtrParamFacts(t *testing.T) {
	facts, pkg := loadFacts(t, "allocfree/internal/liba")

	fill := lookupFunc(t, pkg, "fill")
	// fill(p *sim.Proc, ctx *cuda.Ctx, dst, src mem.Ptr): both pointer
	// params are only passed to Memcpy, which borrows.
	for _, i := range []int{2, 3} {
		if got := facts.PtrParam(fill, i); got != ParamBorrows {
			t.Errorf("PtrParam(fill, %d) = %v, want ParamBorrows", i, got)
		}
	}

	discard := lookupFunc(t, pkg, "discard")
	if got := facts.PtrParam(discard, 1); got != ParamReleases {
		t.Errorf("PtrParam(discard, 1) = %v, want ParamReleases", got)
	}
}

// TestSpanParamFacts: finish ends its span on every path, maybeFinish
// only on one, observe never touches End.
func TestSpanParamFacts(t *testing.T) {
	facts, pkg := loadFacts(t, "spanend")

	cases := []struct {
		fn   string
		want ParamFact
	}{
		{"finish", ParamReleases},
		{"maybeFinish", ParamMoves}, // conditional End: not provable, conservative
		{"observe", ParamBorrows},
		{"endLater", ParamReleases},
	}
	for _, tc := range cases {
		fn := lookupFunc(t, pkg, tc.fn)
		if got := facts.SpanParam(fn, 0); got != tc.want {
			t.Errorf("SpanParam(%s, 0) = %v, want %v", tc.fn, got, tc.want)
		}
	}
}

// TestSimVisibleFact: the transitive reachability behind detrand rule 1.
func TestSimVisibleFact(t *testing.T) {
	facts, pkg := loadFacts(t, "detrand/internal/libd")

	record := lookupFunc(t, pkg, "record")
	if v, why := facts.SimVisible(record); !v || why == "" {
		t.Errorf("SimVisible(record) = %v, %q; want true with a why-chain", v, why)
	}
	window := lookupFunc(t, pkg, "window")
	if v, _ := facts.SimVisible(window); v {
		t.Errorf("SimVisible(window) = true; duration arithmetic touches nothing sim-visible")
	}
}

func loadFacts(t *testing.T, path string) (*Facts, *Package) {
	t.Helper()
	loader := NewTreeLoader(Testdata())
	pkgs, err := loader.Load(path)
	if err != nil {
		t.Fatalf("load %s: %v", path, err)
	}
	return NewFacts(loader.Packages()), pkgs[0]
}

func lookupFunc(t *testing.T, pkg *Package, name string) *types.Func {
	t.Helper()
	obj := pkg.Types.Scope().Lookup(name)
	fn, ok := obj.(*types.Func)
	if !ok {
		t.Fatalf("%s is not a func in %s (got %T)", name, pkg.Types.Path(), obj)
	}
	return fn
}
