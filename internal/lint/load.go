package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// A Loader parses and type-checks packages using only the standard
// library. Imports inside the loaded tree are resolved from source;
// everything else falls back to a source importer rooted at GOROOT, so
// loading works without pre-built export data or network access.
type Loader struct {
	fset         *token.FileSet
	resolve      func(importPath string) (dir string, ok bool)
	includeTests bool

	std  types.ImporterFrom
	pkgs map[string]*loadEntry
}

type loadEntry struct {
	pkg      *Package
	checking bool
}

// NewModuleLoader creates a loader for the Go module rooted at dir; import
// paths under the module path resolve to source directories in the tree.
func NewModuleLoader(root string, includeTests bool) (*Loader, error) {
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	l := newLoader(includeTests)
	l.resolve = func(importPath string) (string, bool) {
		if importPath == modPath {
			return root, true
		}
		if rest, ok := strings.CutPrefix(importPath, modPath+"/"); ok {
			return filepath.Join(root, filepath.FromSlash(rest)), true
		}
		return "", false
	}
	return l, nil
}

// NewTreeLoader creates a loader that resolves every import path to
// srcRoot/<path> when that directory exists — the layout analysistest-style
// golden tests use (testdata/src/<importpath>).
func NewTreeLoader(srcRoot string) *Loader {
	l := newLoader(true)
	l.resolve = func(importPath string) (string, bool) {
		dir := filepath.Join(srcRoot, filepath.FromSlash(importPath))
		if st, err := os.Stat(dir); err == nil && st.IsDir() {
			return dir, true
		}
		return "", false
	}
	return l
}

func newLoader(includeTests bool) *Loader {
	fset := token.NewFileSet()
	std, _ := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	return &Loader{
		fset:         fset,
		includeTests: includeTests,
		std:          std,
		pkgs:         map[string]*loadEntry{},
	}
}

// Fset returns the loader's file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Packages returns every in-tree package the loader has loaded so far —
// the requested packages and their transitive in-tree dependencies —
// sorted by import path. This is the natural Facts universe: helper
// functions live in dependencies that may not themselves be analyzed.
func (l *Loader) Packages() []*Package {
	var out []*Package
	for _, e := range l.pkgs {
		if e.pkg != nil {
			out = append(out, e.pkg)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// ModulePackages walks the module tree under root and returns the import
// paths of every package directory (skipping testdata, hidden directories
// and non-Go directories), relative to the module path.
func ModulePackages(root string) ([]string, error) {
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	var out []string
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor" || name == "scripts") {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		hasGo := false
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				hasGo = true
				break
			}
		}
		if !hasGo {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		if rel == "." {
			out = append(out, modPath)
		} else {
			out = append(out, modPath+"/"+filepath.ToSlash(rel))
		}
		return nil
	})
	sort.Strings(out)
	return out, err
}

// Load parses and type-checks the named import paths (and, transitively,
// their in-tree dependencies), returning them in dependency order.
// Directories that hold only excluded files (e.g. _test.go files when
// tests are off) are skipped silently.
func (l *Loader) Load(paths ...string) ([]*Package, error) {
	var out []*Package
	for _, p := range paths {
		pkg, err := l.load(p)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			out = append(out, pkg)
		}
	}
	return out, nil
}

func (l *Loader) load(path string) (*Package, error) {
	if e, ok := l.pkgs[path]; ok {
		if e.checking {
			return nil, fmt.Errorf("lint: import cycle through %s", path)
		}
		return e.pkg, nil
	}
	dir, ok := l.resolve(path)
	if !ok {
		return nil, fmt.Errorf("lint: cannot resolve import path %s", path)
	}
	entry := &loadEntry{checking: true}
	l.pkgs[path] = entry

	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		// Test-only directory with tests excluded: nothing to analyze.
		entry.checking = false
		return nil, nil
	}

	// Load in-tree dependencies first so type identity is shared.
	for _, f := range files {
		for _, imp := range f.Imports {
			ip := strings.Trim(imp.Path.Value, `"`)
			if _, inTree := l.resolve(ip); inTree && ip != path {
				if _, err := l.load(ip); err != nil {
					return nil, err
				}
			}
		}
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: &chainImporter{l: l, srcDir: dir},
		Error: func(err error) {
			typeErrs = append(typeErrs, err)
		},
	}
	tpkg, _ := conf.Check(path, l.fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("lint: type errors in %s: %v", path, typeErrs[0])
	}
	entry.pkg = &Package{Path: path, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, Info: info}
	entry.checking = false
	return entry.pkg, nil
}

func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") {
			continue
		}
		if !l.includeTests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	// External test packages (package foo_test) cannot be mixed into the
	// same type-check; keep only the majority (non-_test-suffixed) package.
	var kept []*ast.File
	for _, f := range files {
		if !strings.HasSuffix(f.Name.Name, "_test") {
			kept = append(kept, f)
		}
	}
	if len(kept) > 0 {
		return kept, nil
	}
	return files, nil
}

// chainImporter resolves in-tree imports from the loader and everything
// else (the standard library) from source under GOROOT.
type chainImporter struct {
	l      *Loader
	srcDir string
}

func (c *chainImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if _, ok := c.l.resolve(path); ok {
		pkg, err := c.l.load(path)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			return nil, fmt.Errorf("lint: import %s has no Go files", path)
		}
		return pkg.Types, nil
	}
	if c.l.std == nil {
		return nil, fmt.Errorf("lint: no standard-library importer for %s", path)
	}
	return c.l.std.ImportFrom(path, c.srcDir, 0)
}
