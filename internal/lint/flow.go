package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"mv2sim/internal/lint/cfg"
)

// This file holds the flow machinery shared by the ownership analyzers
// (allocfree, spanend) and by the cross-package Facts computation: an
// "obligation" (a local that must be released before the function exits)
// is propagated forward through the CFG; releases and escapes kill it,
// and obligations still live on some non-panicking path into Exit are
// the findings.

// An obligation is one tracked local with a release duty.
type obligation struct {
	obj types.Object
	// intro is the CFG node that brings the obligation to life (the
	// defining assignment). nil means live from function entry (used for
	// parameter facts).
	intro ast.Node
	// call is the defining call, used as the report anchor. May be nil.
	call *ast.CallExpr
	// pairedErr is the error object bound by the same `x, err := ...`
	// assignment, if any. A return statement that mentions it kills the
	// obligation: on that path the allocation failed and there is
	// nothing to release. (Limitation: Go reuses err objects across `:=`
	// assignments in one scope, so a later `return err` for an unrelated
	// failure also kills — the analysis is sound for the canonical
	// check-and-return pattern, not a proof.)
	pairedErr types.Object
}

// flowSurvivors solves the may-leak problem over g: which obligations
// are still live on some path into Exit. Paths into Panic are exempt —
// the engine turns panics into Run errors and the whole simulation is
// discarded, so release-on-panic is not required.
func flowSurvivors(g *cfg.Graph, info *types.Info, obls []obligation, rules useRules) []obligation {
	if len(obls) == 0 {
		return nil
	}
	p := &oblProblem{info: info, obls: obls, rules: rules}
	res := cfg.Forward[liveSet](g, p)
	var out []obligation
	for i, live := range res.In[g.Exit] {
		if live {
			out = append(out, obls[i])
		}
	}
	return out
}

// liveSet is the dataflow fact: liveSet[i] reports whether obligation i
// is live (unreleased) at a program point. Merge is union — a leak on
// any path is a leak.
type liveSet []bool

type oblProblem struct {
	info  *types.Info
	obls  []obligation
	rules useRules
}

func (p *oblProblem) Entry() liveSet {
	s := make(liveSet, len(p.obls))
	for i, o := range p.obls {
		s[i] = o.intro == nil
	}
	return s
}

func (p *oblProblem) Bottom() liveSet { return make(liveSet, len(p.obls)) }

func (p *oblProblem) Merge(a, b liveSet) liveSet {
	s := make(liveSet, len(a))
	for i := range a {
		s[i] = a[i] || b[i]
	}
	return s
}

func (p *oblProblem) Equal(a, b liveSet) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func (p *oblProblem) Transfer(b *cfg.Block, in liveSet) liveSet {
	out := make(liveSet, len(in))
	copy(out, in)
	for _, n := range b.Nodes {
		for i := range p.obls {
			o := &p.obls[i]
			if n == o.intro {
				out[i] = true // the defining assignment itself is not a use
				continue
			}
			if out[i] && nodeKills(p.info, n, o, p.rules) {
				out[i] = false
			}
		}
	}
	return out
}

// nodeKills reports whether executing node discharges or forfeits the
// obligation: a release (Free/End reached), an escape (ownership moved
// beyond this function's view), or a return on the obligation's paired
// error path (the allocation never happened).
func nodeKills(info *types.Info, node ast.Node, o *obligation, rules useRules) bool {
	// A RangeStmt node in a loop-head block stands for the range
	// expression evaluation only; its body executes in separate blocks.
	if rng, ok := node.(*ast.RangeStmt); ok {
		node = rng.X
	}
	if ret, ok := node.(*ast.ReturnStmt); ok && o.pairedErr != nil {
		// Deep mention on purpose: the canonical failure return wraps the
		// error in a call (`return 0, fmt.Errorf("...: %w", err)`).
		if mentionsObj(info, ret, o.pairedErr) {
			return true
		}
	}
	killed := false
	classifyUses(info, node, o.obj, rules, func(e useEffect) {
		if e != useNone {
			killed = true
		}
	})
	return killed
}

// functionBodies returns fn's own body plus the body of every function
// literal nested inside it. Each is analyzed as an independent flow
// unit: a closure has its own paths to its own exit, and a mention of an
// outer obligation inside a closure is an escape from the outer unit's
// point of view (the closure may run at any time, or never).
func functionBodies(fn *ast.FuncDecl) []*ast.BlockStmt {
	bodies := []*ast.BlockStmt{fn.Body}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			bodies = append(bodies, lit.Body)
		}
		return true
	})
	return bodies
}

// collectObligations finds the obligations introduced directly in body
// (not in nested function literals): assignments whose right-hand side is
// a call matched by isIntro. Both the single-value form (`p := Must(n)`)
// and the two-value form (`p, err := Alloc(n)`) are tracked; in the
// latter the bound error becomes the obligation's pairedErr, so paths
// that return the error after a failed call owe no release.
func collectObligations(info *types.Info, body *ast.BlockStmt, isIntro func(*ast.CallExpr) bool) []obligation {
	var obls []obligation
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // nested literals are their own flow unit
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		add := func(id *ast.Ident, call *ast.CallExpr, errObj types.Object) {
			obj := objOfIdent(info, id)
			if obj == nil {
				return
			}
			obls = append(obls, obligation{obj: obj, intro: as, call: call, pairedErr: errObj})
		}
		if len(as.Rhs) == 1 && len(as.Lhs) == 2 {
			if call, ok := as.Rhs[0].(*ast.CallExpr); ok && isIntro(call) {
				if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
					var errObj types.Object
					if eid, ok := as.Lhs[1].(*ast.Ident); ok && eid.Name != "_" {
						errObj = objOfIdent(info, eid)
					}
					add(id, call, errObj)
				}
			}
			return true
		}
		if len(as.Lhs) == len(as.Rhs) {
			for i, rhs := range as.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isIntro(call) {
					continue
				}
				if id, ok := as.Lhs[i].(*ast.Ident); ok && id.Name != "_" {
					add(id, call, nil)
				}
			}
		}
		return true
	})
	return obls
}

// ---------------------------------------------------------------------------
// Per-domain use rules

// ptrUseRules classifies uses of a device-memory pointer. Release =
// a call whose name contains "free", or an in-tree callee whose fact says
// it frees the corresponding parameter on every path. Borrow = simulator
// API (copies, kernel launches, sends) and in-tree callees with a Borrows
// fact. Everything else moves ownership.
type ptrUseRules struct{ facts *Facts }

func (r ptrUseRules) classifyCall(info *types.Info, call *ast.CallExpr, obj types.Object) useEffect {
	// A method invoked on the tracked pointer itself (p.Bytes(), p.Off())
	// borrows its receiver: mem.Ptr is a value handle.
	if recvIsObj(info, call, obj) {
		return useNone
	}
	if strings.Contains(strings.ToLower(calleeName(call)), "free") {
		return useRelease
	}
	if mi, ok := methodCall(info, call); ok && borrowingReceivers[[2]string{mi.pkgPath, mi.typeName}] {
		return useNone
	}
	if eff, ok := factEffect(info, call, obj, r.facts, func(fn *types.Func, i int) ParamFact {
		return r.facts.PtrParam(fn, i)
	}); ok {
		return eff
	}
	return useEscape
}

// spanUseRules classifies uses of an obs.Span. Release = Span.End on the
// span (directly, deferred, or as a method value handed to a callback
// — the ev.OnTrigger(sp.End) idiom), or an in-tree callee that ends its
// span parameter on every path. All obs package calls borrow span
// arguments (StartChild, DependsOn, Instant* take spans without consuming
// them). Everything else moves the span out of view.
type spanUseRules struct{ facts *Facts }

func (r spanUseRules) classifyCall(info *types.Info, call *ast.CallExpr, obj types.Object) useEffect {
	if mi, ok := methodCall(info, call); ok && mi.pkgPath == obsPath {
		if mi.typeName == "Span" && mi.method == "End" && recvIsObj(info, call, obj) {
			return useRelease
		}
		return useNone
	}
	// sp.End passed as a method value: the callee runs End later
	// (canonically from an event-trigger callback).
	for _, a := range call.Args {
		if sel, ok := a.(*ast.SelectorExpr); ok && sel.Sel.Name == "End" {
			if id, ok := sel.X.(*ast.Ident); ok && objOfIdent(info, id) == obj {
				return useRelease
			}
		}
	}
	if eff, ok := factEffect(info, call, obj, r.facts, func(fn *types.Func, i int) ParamFact {
		return r.facts.SpanParam(fn, i)
	}); ok {
		return eff
	}
	return useEscape
}

// recvIsObj reports whether call is a method call with obj as the
// receiver expression.
func recvIsObj(info *types.Info, call *ast.CallExpr, obj types.Object) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if _, isSel := info.Selections[sel]; !isSel {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && objOfIdent(info, id) == obj
}

// factEffect resolves call to an in-tree callee and combines the param
// facts of every argument position where obj appears: any Moves → escape,
// else any Releases → release, else borrow. ok is false when the callee
// is unknown or out of tree (the caller falls back to its default).
func factEffect(info *types.Info, call *ast.CallExpr, obj types.Object, facts *Facts,
	fact func(*types.Func, int) ParamFact) (useEffect, bool) {
	if facts == nil {
		return useNone, false
	}
	callee := calleeFunc(info, call)
	if callee == nil || !facts.hasDeclFor(callee) {
		return useNone, false
	}
	eff := useNone
	for ai, a := range call.Args {
		if !mentionsObjDirect(info, a, obj) {
			continue
		}
		pi := argParamIndex(callee, ai)
		if pi < 0 {
			return useEscape, true
		}
		switch fact(callee, pi) {
		case ParamReleases:
			if eff == useNone {
				eff = useRelease
			}
		case ParamBorrows:
			// keep current
		default:
			return useEscape, true
		}
	}
	return eff, true
}
