package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AllocFree enforces device-memory ownership discipline in library code.
//
// Check 1 (leaks): a mem.Ptr obtained from Device.Malloc/MustMalloc or
// Ctx.Malloc/MustMalloc in an internal/ package must either be freed in
// the same function (a call whose name contains "Free" receives it) or
// visibly transfer ownership: returned, stored into a field/slice/map, or
// passed to a function that may keep it. Simulator API calls (methods on
// cuda.Ctx, cuda.Stream, gpu.Device, mpi.Rank and mem.Ptr) borrow their
// pointer arguments and do not count as ownership transfer. An allocation
// with no Free and no transfer is a leak: simulated device memory is only
// reclaimed by the allocator, never by the garbage collector.
//
// Check 2 (error propagation): MustMalloc and panic(err) are conveniences
// for main packages and for simulation-process bodies, where the engine
// re-raises the panic to the Run caller. In exported library API outside
// a simulation context the error should propagate as a return value;
// panicking turns a recoverable out-of-memory or configuration problem
// into a crash. Functions named Must* are exempt: they are documented
// panic wrappers.
var AllocFree = &Analyzer{
	Name: "allocfree",
	Doc:  "flags leaked device allocations and panic-instead-of-error in library code",
	Run:  runAllocFree,
}

func runAllocFree(pass *Pass) error {
	internal := isInternalLib(pass.Pkg.Path())
	cmdLike := isCmdOrMain(pass.Pkg.Path(), pass.Pkg.Name())
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || isTestFile(pass.Fset, fn.Pos()) {
				continue
			}
			if internal {
				checkLeaks(pass, fn)
			}
			if !cmdLike {
				checkErrorPropagation(pass, fn)
			}
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Check 1: leaked allocations

// isAllocCall reports whether call allocates device memory.
func isAllocCall(info *types.Info, call *ast.CallExpr) bool {
	mi, ok := methodCall(info, call)
	if !ok || (mi.method != "Malloc" && mi.method != "MustMalloc") {
		return false
	}
	return (mi.pkgPath == gpuPath && mi.typeName == "Device") ||
		(mi.pkgPath == cudaPath && mi.typeName == "Ctx")
}

// borrowingReceivers are types whose methods borrow pointer arguments
// without taking ownership.
var borrowingReceivers = map[[2]string]bool{
	{cudaPath, "Ctx"}:    true,
	{cudaPath, "Stream"}: true,
	{gpuPath, "Device"}:  true,
	{mpiPath, "Rank"}:    true,
	{memPath, "Ptr"}:     true,
	{memPath, "Space"}:   true,
}

type allocState struct {
	obj   types.Object
	pos   ast.Node
	freed bool
	moved bool // ownership visibly transferred (or aliased: give up)
}

func checkLeaks(pass *Pass, fn *ast.FuncDecl) {
	info := pass.TypesInfo
	allocs := map[types.Object]*allocState{}

	// Collect locals whose value comes from a device allocation,
	// including conditional re-assignment of a pre-declared variable.
	ast.Inspect(fn, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			call, ok := as.Rhs[i].(*ast.CallExpr)
			if !ok || !isAllocCall(info, call) {
				continue
			}
			obj := objOfIdent(info, id)
			if obj == nil || allocs[obj] != nil {
				continue
			}
			allocs[obj] = &allocState{obj: obj, pos: call}
		}
		return true
	})
	if len(allocs) == 0 {
		return
	}

	ast.Inspect(fn, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.ReturnStmt:
			markMentionedAlloc(info, st, allocs, func(a *allocState) { a.moved = true })
			return false
		case *ast.CallExpr:
			classifyCallUse(info, st, allocs)
			return true
		case *ast.AssignStmt:
			// Copying the pointer into another variable, field, slice or
			// map transfers (or untrackably aliases) ownership. Pointers
			// that appear only as arguments of a call on the RHS are
			// classified by that call (classifyCallUse), not here.
			for _, rhs := range st.Rhs {
				if !mentionsAllocDirect(info, rhs, allocs) {
					continue
				}
				if call, ok := rhs.(*ast.CallExpr); ok && isAllocCall(info, call) {
					continue // the defining assignment itself
				}
				markMentionedAllocDirect(info, rhs, allocs, func(a *allocState) { a.moved = true })
			}
			return true
		case *ast.CompositeLit, *ast.UnaryExpr:
			if mentionsAllocDirect(info, n, allocs) {
				markMentionedAllocDirect(info, n, allocs, func(a *allocState) { a.moved = true })
			}
			return true
		}
		return true
	})

	for _, a := range allocs {
		if !a.freed && !a.moved {
			pass.Reportf(a.pos.Pos(),
				"device allocation assigned to %s is never freed and never escapes this function (missing Free)",
				a.obj.Name())
		}
	}
}

// classifyCallUse updates alloc states for pointers appearing directly in
// a call's arguments: freeing calls mark them freed, borrowing simulator
// calls leave them alone, anything else is treated as ownership transfer.
// Mentions inside nested calls are left to the nested call's own
// classification (`p.Wait(ctx.MemcpyAsync(p, dst, tbuf, ...))` classifies
// tbuf against MemcpyAsync, not Wait).
func classifyCallUse(info *types.Info, call *ast.CallExpr, allocs map[types.Object]*allocState) {
	mentioned := false
	for _, a := range call.Args {
		if mentionsAllocDirect(info, a, allocs) {
			mentioned = true
		}
	}
	if !mentioned {
		return
	}
	mark := func(f func(*allocState)) {
		for _, a := range call.Args {
			markMentionedAllocDirect(info, a, allocs, f)
		}
	}
	name := calleeName(call)
	if strings.Contains(strings.ToLower(name), "free") {
		mark(func(st *allocState) { st.freed = true })
		return
	}
	if mi, ok := methodCall(info, call); ok {
		if borrowingReceivers[[2]string{mi.pkgPath, mi.typeName}] {
			return
		}
	}
	mark(func(st *allocState) { st.moved = true })
}

// calleeName extracts the called function or method name.
func calleeName(call *ast.CallExpr) string {
	switch f := call.Fun.(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		return f.Sel.Name
	}
	return ""
}

func mentionsAlloc(info *types.Info, node ast.Node, allocs map[types.Object]*allocState) bool {
	found := false
	ast.Inspect(node, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && allocs[objOfIdent(info, id)] != nil {
			found = true
		}
		return !found
	})
	return found
}

// mentionsAllocDirect is mentionsAlloc restricted to direct mentions:
// uses hidden inside a nested call expression are classified against that
// call instead, and uses inside a function literal are classified by the
// statements of the literal body as the traversal reaches them.
func mentionsAllocDirect(info *types.Info, node ast.Node, allocs map[types.Object]*allocState) bool {
	found := false
	ast.Inspect(node, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.CallExpr, *ast.FuncLit:
			return false
		}
		if id, ok := n.(*ast.Ident); ok && allocs[objOfIdent(info, id)] != nil {
			found = true
		}
		return !found
	})
	return found
}

func markMentionedAllocDirect(info *types.Info, node ast.Node, allocs map[types.Object]*allocState, f func(*allocState)) {
	ast.Inspect(node, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.CallExpr, *ast.FuncLit:
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if st := allocs[objOfIdent(info, id)]; st != nil {
				f(st)
			}
		}
		return true
	})
}

func markMentionedAlloc(info *types.Info, node ast.Node, allocs map[types.Object]*allocState, f func(*allocState)) {
	ast.Inspect(node, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if st := allocs[objOfIdent(info, id)]; st != nil {
				f(st)
			}
		}
		return true
	})
}

// ---------------------------------------------------------------------------
// Check 2: MustMalloc / panic(err) where errors should propagate

func checkErrorPropagation(pass *Pass, fn *ast.FuncDecl) {
	info := pass.TypesInfo
	if strings.HasPrefix(fn.Name.Name, "Must") {
		return
	}
	exported := fn.Name.IsExported()
	errType := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

	ast.Inspect(fn, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}

		// MustMalloc outside a simulation context.
		if mi, ok2 := methodCall(info, call); ok2 && mi.method == "MustMalloc" &&
			((mi.pkgPath == gpuPath && mi.typeName == "Device") || (mi.pkgPath == cudaPath && mi.typeName == "Ctx")) {
			if !inSimContext(pass, call.Pos()) {
				pass.Reportf(call.Pos(),
					"MustMalloc panics on allocation failure; outside a simulation process the error should propagate (use Malloc and return the error)")
			}
			return true
		}

		// panic(err) in exported API outside a simulation context.
		if id, ok2 := call.Fun.(*ast.Ident); ok2 && id.Name == "panic" && len(call.Args) == 1 {
			tv, ok3 := info.Types[call.Args[0]]
			if ok3 && tv.Type != nil && types.Implements(tv.Type, errType) &&
				exported && !inSimContext(pass, call.Pos()) {
				pass.Reportf(call.Pos(),
					"%s panics with an error value; exported library API should return the error (wrap with %%w)", fn.Name.Name)
			}
		}
		return true
	})
}

// inSimContext reports whether pos sits inside a function node (a decl or
// a nested literal) that receives a *sim.Proc or *cluster.Node: those
// bodies run inside a simulation process, where panicking is the designed
// error channel (the engine re-raises it at the Run caller).
func inSimContext(pass *Pass, pos token.Pos) bool {
	file := fileOf(pass, pos)
	if file == nil {
		return false
	}
	for _, n := range enclosing(file, pos) {
		if funcTypeOf(n) != nil && simContext(pass.TypesInfo, n) {
			return true
		}
	}
	return false
}

func fileOf(pass *Pass, pos token.Pos) *ast.File {
	for _, f := range pass.Files {
		if f.Pos() <= pos && pos < f.End() {
			return f
		}
	}
	return nil
}
