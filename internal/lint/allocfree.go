package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"mv2sim/internal/lint/cfg"
)

// AllocFree enforces device-memory ownership discipline in library code.
//
// Check 1 (leaks, flow-sensitive): a mem.Ptr obtained from
// Device.Malloc/MustMalloc or Ctx.Malloc/MustMalloc in an internal/
// package must reach a release on EVERY non-panicking path to the
// function's exit: a call whose name contains "Free" (immediate or
// deferred), or a call to an in-tree helper whose cross-package fact says
// it frees that parameter on every path. Ownership may instead visibly
// transfer — returned, stored into a field/slice/map, captured by a
// closure, or passed to a function that may keep it (fact: Moves) — after
// which the function owes nothing. Borrowing uses (simulator copies,
// kernel launches, sends, and in-tree helpers with a Borrows fact) leave
// the obligation standing. For the two-value form `p, err := Malloc(n)`,
// paths that return the paired error owe no release: the allocation
// failed. The flow analysis catches the early-return leak the old
// syntactic check could not see: freed on the happy path, leaked on an
// error return between Malloc and Free.
//
// Check 2 (error propagation): MustMalloc and panic(err) are conveniences
// for main packages and for simulation-process bodies, where the engine
// re-raises the panic to the Run caller. In exported library API outside
// a simulation context the error should propagate as a return value;
// panicking turns a recoverable out-of-memory or configuration problem
// into a crash. Functions named Must* are exempt: they are documented
// panic wrappers.
var AllocFree = &Analyzer{
	Name: "allocfree",
	Doc:  "flags device allocations that miss a Free on some path, and panic-instead-of-error in library code",
	Run:  runAllocFree,
}

func runAllocFree(pass *Pass) error {
	internal := isInternalLib(pass.Pkg.Path())
	cmdLike := isCmdOrMain(pass.Pkg.Path(), pass.Pkg.Name())
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || isTestFile(pass.Fset, fn.Pos()) {
				continue
			}
			if internal {
				checkLeaks(pass, fn)
			}
			if !cmdLike {
				checkErrorPropagation(pass, fn)
			}
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Check 1: allocations must reach a Free on every path

// isAllocCall reports whether call allocates device memory.
func isAllocCall(info *types.Info, call *ast.CallExpr) bool {
	mi, ok := methodCall(info, call)
	if !ok || (mi.method != "Malloc" && mi.method != "MustMalloc") {
		return false
	}
	return (mi.pkgPath == gpuPath && mi.typeName == "Device") ||
		(mi.pkgPath == cudaPath && mi.typeName == "Ctx")
}

// borrowingReceivers are types whose methods borrow pointer arguments
// without taking ownership.
var borrowingReceivers = map[[2]string]bool{
	{cudaPath, "Ctx"}:    true,
	{cudaPath, "Stream"}: true,
	{gpuPath, "Device"}:  true,
	{mpiPath, "Rank"}:    true,
	{memPath, "Ptr"}:     true,
	{memPath, "Space"}:   true,
}

func checkLeaks(pass *Pass, fn *ast.FuncDecl) {
	info := pass.TypesInfo
	rules := ptrUseRules{facts: pass.Facts}
	for _, body := range functionBodies(fn) {
		obls := collectObligations(info, body, func(call *ast.CallExpr) bool {
			return isAllocCall(info, call)
		})
		if len(obls) == 0 {
			continue
		}
		g := cfg.New(body)
		for _, o := range flowSurvivors(g, info, obls, rules) {
			pass.Reportf(o.call.Pos(),
				"device allocation assigned to %s is not freed on every path through this function (missing Free on some path to return)",
				o.obj.Name())
		}
	}
}

// calleeName extracts the called function or method name.
func calleeName(call *ast.CallExpr) string {
	switch f := call.Fun.(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		return f.Sel.Name
	}
	return ""
}

// ---------------------------------------------------------------------------
// Check 2: MustMalloc / panic(err) where errors should propagate

func checkErrorPropagation(pass *Pass, fn *ast.FuncDecl) {
	info := pass.TypesInfo
	if strings.HasPrefix(fn.Name.Name, "Must") {
		return
	}
	exported := fn.Name.IsExported()
	errType := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

	ast.Inspect(fn, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}

		// MustMalloc outside a simulation context.
		if mi, ok2 := methodCall(info, call); ok2 && mi.method == "MustMalloc" &&
			((mi.pkgPath == gpuPath && mi.typeName == "Device") || (mi.pkgPath == cudaPath && mi.typeName == "Ctx")) {
			if !inSimContext(pass, call.Pos()) {
				pass.Reportf(call.Pos(),
					"MustMalloc panics on allocation failure; outside a simulation process the error should propagate (use Malloc and return the error)")
			}
			return true
		}

		// panic(err) in exported API outside a simulation context.
		if id, ok2 := call.Fun.(*ast.Ident); ok2 && id.Name == "panic" && len(call.Args) == 1 {
			tv, ok3 := info.Types[call.Args[0]]
			if ok3 && tv.Type != nil && types.Implements(tv.Type, errType) &&
				exported && !inSimContext(pass, call.Pos()) {
				pass.Reportf(call.Pos(),
					"%s panics with an error value; exported library API should return the error (wrap with %%w)", fn.Name.Name)
			}
		}
		return true
	})
}

// inSimContext reports whether pos sits inside a function node (a decl or
// a nested literal) that receives a *sim.Proc or *cluster.Node: those
// bodies run inside a simulation process, where panicking is the designed
// error channel (the engine re-raises it at the Run caller).
func inSimContext(pass *Pass, pos token.Pos) bool {
	file := fileOf(pass, pos)
	if file == nil {
		return false
	}
	for _, n := range enclosing(file, pos) {
		if funcTypeOf(n) != nil && simContext(pass.TypesInfo, n) {
			return true
		}
	}
	return false
}

func fileOf(pass *Pass, pos token.Pos) *ast.File {
	for _, f := range pass.Files {
		if f.Pos() <= pos && pos < f.End() {
			return f
		}
	}
	return nil
}
