package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// DetRand statically guards trace determinism: two runs of the simulator
// with the same configuration and seed must produce byte-identical
// traces, or the golden-trace gates and cross-run diffing fall apart.
// The analyzer flags the sources of run-to-run variation that Go makes
// easy to introduce by accident, in internal/ library code (cmd/ and
// examples may legitimately read the wall clock or print host state;
// _test.go files are exempt — tests seed their own randomness):
//
//  1. Map iteration that drives sim-visible work. Go randomizes map
//     iteration order per run, so a `for k := range m` whose body
//     (including one level of local closures) calls a sim-visible API —
//     engine scheduling, obs task/counter records, fabric posts, vbuf
//     pool accounting, trace breakdowns, printing; directly or
//     transitively through in-tree helpers (the SimVisible fact) —
//     reorders those effects every run.
//  2. Map iteration that accumulates into an outer slice without a later
//     sort.*/slices.* call on that slice in the same function: the
//     slice's element order is randomized even though nothing sim-visible
//     happens inside the loop.
//  3. Wall-clock reads (time.Now/Since/Until/Sleep/After/Tick/NewTimer/
//     NewTicker): simulated time comes from the engine, not the host.
//  4. Importing math/rand: randomness must be threaded from the run
//     configuration's seed, not package-global generators. One pattern is
//     sanctioned: a file whose every use of the package is confined to
//     constructing explicitly-seeded generators — rand.New,
//     rand.NewSource, rand.NewZipf and their types rand.Rand, rand.Source,
//     rand.Zipf — is deterministic by construction (the seed decides the
//     stream), so the import is not flagged. Any package-level draw
//     (rand.Int, rand.ExpFloat64, rand.Seed, ...) reads the process-global
//     generator and keeps the import a finding.
//  5. Raw `go` statements: goroutine interleaving is scheduled by the Go
//     runtime, not the engine; simulated concurrency uses Engine.Spawn.
var DetRand = &Analyzer{
	Name: "detrand",
	Doc:  "flags nondeterminism in simulator library code: map-order-dependent effects, wall-clock reads, math/rand, raw goroutines",
	Run:  runDetRand,
}

func runDetRand(pass *Pass) error {
	if !isInternalLib(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		if isTestFile(pass.Fset, file.Pos()) {
			continue
		}
		checkRandImports(pass, file)
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkHostEffects(pass, fn)
			checkMapRanges(pass, fn)
		}
	}
	return nil
}

// seededRandNames is the sanctioned subset of math/rand: explicit-seed
// constructors and the types they produce. Everything else at package
// level draws from (or reseeds) the shared global generator.
var seededRandNames = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"Rand": true, "Source": true, "Zipf": true,
}

// checkRandImports flags math/rand imports (rule 4), exempting files
// whose uses are confined to the seeded-constructor pattern.
func checkRandImports(pass *Pass, file *ast.File) {
	for _, imp := range file.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		if path != "math/rand" && path != "math/rand/v2" {
			continue
		}
		if uses, bad := randPackageUses(pass, file, path); uses > 0 && bad == "" {
			continue // sanctioned: only seeded constructors and their types
		}
		pass.Reportf(imp.Pos(),
			"%s in simulator library code makes runs nondeterministic; thread a seeded *rand.Rand from the run configuration instead (only the explicit-seed constructors rand.New/rand.NewSource are exempt)", path)
	}
}

// randPackageUses counts the file's selector uses of the given rand
// package and returns the first selector outside the sanctioned set.
func randPackageUses(pass *Pass, file *ast.File, path string) (uses int, bad string) {
	ast.Inspect(file, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pkg, ok := objOfIdent(pass.TypesInfo, id).(*types.PkgName)
		if !ok || pkg.Imported().Path() != path {
			return true
		}
		uses++
		if !seededRandNames[sel.Sel.Name] && bad == "" {
			bad = sel.Sel.Name
		}
		return true
	})
	return uses, bad
}

// wallClockFuncs are the time package entry points that read or wait on
// the host clock. Pure constructors and arithmetic (time.Duration,
// time.Unix, t.Add) are fine.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true,
}

// checkHostEffects flags wall-clock reads (rule 3) and raw goroutines
// (rule 5) anywhere in fn.
func checkHostEffects(pass *Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			pass.Reportf(n.Pos(),
				"go statement in simulator library code: goroutine interleaving is scheduled by the Go runtime, not the engine; use Engine.Spawn for simulated concurrency")
		case *ast.CallExpr:
			callee := calleeFunc(pass.TypesInfo, n)
			if callee != nil && callee.Pkg() != nil && callee.Pkg().Path() == "time" &&
				callee.Type().(*types.Signature).Recv() == nil && wallClockFuncs[callee.Name()] {
				pass.Reportf(n.Pos(),
					"time.%s reads the host clock in simulator library code; simulated time comes from the engine (Proc.Now / Engine.Now)", callee.Name())
			}
		}
		return true
	})
}

// checkMapRanges flags map iterations whose bodies have order-sensitive
// effects (rules 1 and 2).
func checkMapRanges(pass *Pass, fn *ast.FuncDecl) {
	info := pass.TypesInfo
	closures := localClosures(info, fn)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if t := info.TypeOf(rng.X); t == nil {
			return true
		} else if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}

		// Rule 1: sim-visible call reachable from the loop body.
		if why, found := findSimVisible(pass, rng.Body, closures); found {
			pass.Reportf(rng.Pos(),
				"map iteration order is randomized per run but this loop drives sim-visible work (%s); iterate sorted keys or a slice instead", why)
			return true
		}

		// Rule 2: appends to an outer slice with no later sort.
		for _, obj := range outerAppends(info, rng, closures) {
			if !sortedLater(info, fn, obj) {
				pass.Reportf(rng.Pos(),
					"map iteration appends to %s in randomized order and %s is never sorted afterwards; sort it or iterate sorted keys", obj.Name(), obj.Name())
			}
		}
		return true
	})
}

// localClosures maps local variables bound to function literals
// (`consider := func(...) {...}`) so map-range checks can look one level
// into helper closures called from the loop body.
func localClosures(info *types.Info, fn *ast.FuncDecl) map[types.Object]*ast.FuncLit {
	out := map[types.Object]*ast.FuncLit{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			if lit, ok := as.Rhs[i].(*ast.FuncLit); ok {
				if obj := objOfIdent(info, id); obj != nil {
					out[obj] = lit
				}
			}
		}
		return true
	})
	return out
}

// findSimVisible scans body (and one level of called local closures) for
// a call that transitively reaches sim-visible state.
func findSimVisible(pass *Pass, body ast.Node, closures map[types.Object]*ast.FuncLit) (string, bool) {
	why, found := "", false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if callee := calleeFunc(pass.TypesInfo, call); callee != nil {
			if v, w := pass.Facts.SimVisible(callee); v {
				why, found = w, true
				return false
			}
		}
		// A call to a local closure: look inside it (one level).
		if id, ok := call.Fun.(*ast.Ident); ok {
			if lit := closures[objOfIdent(pass.TypesInfo, id)]; lit != nil {
				if w, f := findSimVisible(pass, lit.Body, nil); f {
					why, found = id.Name+" → "+w, true
					return false
				}
			}
		}
		return true
	})
	return why, found
}

// outerAppends returns the objects of slices declared outside rng that
// the loop body (or a called local closure) appends to.
func outerAppends(info *types.Info, rng *ast.RangeStmt, closures map[types.Object]*ast.FuncLit) []types.Object {
	seen := map[types.Object]bool{}
	var out []types.Object
	var scan func(body ast.Node, inline bool)
	scan = func(body ast.Node, inline bool) {
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, rhs := range n.Rhs {
					call, ok := rhs.(*ast.CallExpr)
					if !ok || i >= len(n.Lhs) {
						continue
					}
					fun, ok := call.Fun.(*ast.Ident)
					if !ok || fun.Name != "append" {
						continue
					}
					id, ok := n.Lhs[i].(*ast.Ident)
					if !ok {
						continue
					}
					obj := objOfIdent(info, id)
					// Only slices that outlive the loop body matter; a
					// slice declared inside the loop is rebuilt per key.
					if obj != nil && !seen[obj] && obj.Pos() < rng.Pos() {
						seen[obj] = true
						out = append(out, obj)
					}
				}
			case *ast.CallExpr:
				if !inline {
					return true
				}
				if id, ok := n.Fun.(*ast.Ident); ok {
					if lit := closures[objOfIdent(info, id)]; lit != nil {
						scan(lit.Body, false)
					}
				}
			}
			return true
		})
	}
	scan(rng.Body, true)
	return out
}

// sortedLater reports whether fn contains a sort.* or slices.* call that
// mentions obj — the loop's randomized append order is repaired before
// the slice is consumed. The check is position-insensitive within fn:
// sorting before the loop would be pointless, so in practice a match is
// the post-loop sort.
func sortedLater(info *types.Info, fn *ast.FuncDecl, obj types.Object) bool {
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeFunc(info, call)
		if callee == nil || callee.Pkg() == nil {
			return true
		}
		if p := callee.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, a := range call.Args {
			if mentionsObj(info, a, obj) {
				found = true
			}
		}
		return !found
	})
	return found
}
