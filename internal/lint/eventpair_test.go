package lint

import "testing"

func TestEventPair(t *testing.T) {
	RunGolden(t, Testdata(), EventPair, "eventpair")
}
