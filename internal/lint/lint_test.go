package lint

import "testing"

// TestSuppression verifies //lint:ignore directives silence findings on
// the flagged line or the line directly above it.
func TestSuppression(t *testing.T) {
	loader := NewTreeLoader(Testdata())
	pkgs, err := loader.Load("suppress")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	diags, err := Run(pkgs, Analyzers())
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, d := range diags {
		t.Errorf("diagnostic not suppressed: %s", d)
	}

	// The same package must produce findings when suppression is ignored:
	// prove the directives are load-bearing, not that the code is clean.
	var raw int
	facts := NewFacts(loader.Packages())
	for _, a := range Analyzers() {
		pass := &Pass{Analyzer: a, Fset: pkgs[0].Fset, Files: pkgs[0].Files, Pkg: pkgs[0].Types, TypesInfo: pkgs[0].Info, Facts: facts}
		if err := a.Run(pass); err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
		raw += len(pass.diags)
	}
	if raw == 0 {
		t.Fatalf("suppress testdata produced no raw findings; directives are untested")
	}
}

// TestAnalyzerNames pins the analyzer set: scripts/check.sh and the docs
// reference these names.
func TestAnalyzerNames(t *testing.T) {
	want := []string{"procblock", "eventpair", "spanend", "allocfree", "errfree", "chunkconst", "detrand"}
	got := Analyzers()
	if len(got) != len(want) {
		t.Fatalf("got %d analyzers, want %d", len(got), len(want))
	}
	for i, a := range got {
		if a.Name != want[i] {
			t.Errorf("analyzer %d = %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" {
			t.Errorf("analyzer %s has no Doc", a.Name)
		}
	}
}
