package lint

import "testing"

func TestAllocFree(t *testing.T) {
	RunGolden(t, Testdata(), AllocFree, "allocfree/internal/liba")
}

// TestAllocFreeCmdExempt verifies main packages are out of scope: the cmd
// testdata uses MustMalloc and panic freely and must stay clean.
func TestAllocFreeCmdExempt(t *testing.T) {
	RunGolden(t, Testdata(), AllocFree, "allocfree/cmd/app")
}
