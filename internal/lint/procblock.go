package lint

import (
	"go/ast"
	"go/types"
)

// ProcBlock flags calls to blocking simulator APIs made without a
// simulation process to block: the deadlock-by-construction class of bug.
//
// Blocking operations (Stream.Synchronize, Event.Synchronize, Ctx.Memcpy/
// Memcpy2D/Memset, Proc.Wait/WaitAll/Sleep/Yield, Resource.Acquire,
// Queue.Get) hand the cooperative baton back to the engine; they may only
// run inside a *sim.Proc goroutine. The analyzer reports a call when
//
//   - the *sim.Proc argument is a nil literal (the async-issue convention
//     permits nil only for non-blocking calls), or
//   - the call sits inside an engine-context callback (a func literal
//     passed to Engine.CallAt/CallAfter or Event.OnTrigger), which the
//     engine runs to completion on its own goroutine and must never
//     block, or
//   - no enclosing function receives a *sim.Proc and the proc value is
//     not obtained locally (e.g. from rank.Proc()).
var ProcBlock = &Analyzer{
	Name: "procblock",
	Doc:  "flags blocking simulator calls made outside a *sim.Proc context",
	Run:  runProcBlock,
}

// blockingMethods maps (pkg, type, method) to the index of the *sim.Proc
// argument; -1 means the receiver itself is the process.
var blockingMethods = map[[3]string]int{
	{cudaPath, "Stream", "Synchronize"}: 0,
	{cudaPath, "Event", "Synchronize"}:  0,
	{cudaPath, "Ctx", "Memcpy"}:         0,
	{cudaPath, "Ctx", "Memcpy2D"}:       0,
	{cudaPath, "Ctx", "Memset"}:         0,
	{simPath, "Proc", "Wait"}:           -1,
	{simPath, "Proc", "WaitAll"}:        -1,
	{simPath, "Proc", "Sleep"}:          -1,
	{simPath, "Proc", "Yield"}:          -1,
	{simPath, "Resource", "Acquire"}:    0,
	{simPath, "Queue", "Get"}:           0,
}

// engineCallbacks are the methods whose func-literal argument runs in
// engine context and therefore must not block.
var engineCallbacks = map[[3]string]bool{
	{simPath, "Engine", "CallAt"}:    true,
	{simPath, "Engine", "CallAfter"}: true,
	{simPath, "Event", "OnTrigger"}:  true,
}

func runProcBlock(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			mi, ok := methodCall(pass.TypesInfo, call)
			if !ok {
				return true
			}
			argIdx, blocking := blockingMethods[[3]string{mi.pkgPath, mi.typeName, mi.method}]
			if !blocking {
				return true
			}
			label := mi.typeName + "." + mi.method

			var procExpr ast.Expr
			if argIdx == -1 {
				procExpr = mi.recv
			} else if argIdx < len(call.Args) {
				procExpr = call.Args[argIdx]
			}
			if procExpr == nil {
				return true
			}

			// Rule 1: a nil process can never block.
			if tv, ok := pass.TypesInfo.Types[procExpr]; ok && tv.IsNil() {
				pass.Reportf(call.Pos(), "blocking call %s with nil *sim.Proc", label)
				return true
			}

			// Rules 2 and 3: walk the enclosing function chain.
			path := enclosing(file, call.Pos())
			for i := len(path) - 1; i >= 0; i-- {
				switch fn := path[i].(type) {
				case *ast.FuncLit:
					if funcHasParam(pass.TypesInfo, fn.Type, simPath, "Proc") {
						return true // a process body encloses the call
					}
					if i > 0 && isEngineCallbackArg(pass.TypesInfo, path[i-1], fn) {
						pass.Reportf(call.Pos(),
							"blocking call %s inside an engine-context callback (CallAt/CallAfter/OnTrigger callbacks must not block)", label)
						return true
					}
				case *ast.FuncDecl:
					if funcHasParam(pass.TypesInfo, fn.Type, simPath, "Proc") {
						return true
					}
					if recvIs(pass.TypesInfo, fn, simPath, "Proc") {
						return true // a method on Proc is itself process context
					}
					if procObtainedLocally(pass.TypesInfo, fn, procExpr) {
						return true
					}
					pass.Reportf(call.Pos(),
						"blocking call %s in a function that does not receive a *sim.Proc", label)
					return true
				}
			}
			return true
		})
	}
	return nil
}

// recvIs reports whether fn is a method whose receiver (behind pointers)
// is the named type pkgPath.name.
func recvIs(info *types.Info, fn *ast.FuncDecl, pkgPath, name string) bool {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return false
	}
	t := info.TypeOf(fn.Recv.List[0].Type)
	return t != nil && typeIs(t, pkgPath, name)
}

// isEngineCallbackArg reports whether lit is an argument of a call to an
// engine-context callback registrar; parent is lit's parent node.
func isEngineCallbackArg(info *types.Info, parent ast.Node, lit *ast.FuncLit) bool {
	call, ok := parent.(*ast.CallExpr)
	if !ok {
		return false
	}
	isArg := false
	for _, a := range call.Args {
		if a == lit {
			isArg = true
		}
	}
	if !isArg {
		return false
	}
	mi, ok := methodCall(info, call)
	if !ok {
		return false
	}
	return engineCallbacks[[3]string{mi.pkgPath, mi.typeName, mi.method}]
}

// procObtainedLocally reports whether the proc expression is produced
// inside fn: a call (rank.Proc()), a field of a simulation object the
// function owns (r.proc), or a local variable assigned from a call.
func procObtainedLocally(info *types.Info, fn *ast.FuncDecl, procExpr ast.Expr) bool {
	switch e := procExpr.(type) {
	case *ast.CallExpr:
		return true
	case *ast.SelectorExpr:
		// A stored process field (e.g. rank.proc): the owning object
		// vouches for the process's validity.
		return true
	case *ast.Ident:
		obj := objOfIdent(info, e)
		if obj == nil {
			return false
		}
		found := false
		ast.Inspect(fn, func(n ast.Node) bool {
			if found {
				return false
			}
			switch st := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range st.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok || objOfIdent(info, id) != obj {
						continue
					}
					rhs := st.Rhs[0]
					if len(st.Rhs) == len(st.Lhs) {
						rhs = st.Rhs[i]
					}
					switch rhs.(type) {
					case *ast.CallExpr, *ast.SelectorExpr:
						found = true
					}
				}
			case *ast.ValueSpec:
				for i, id := range st.Names {
					if objOfIdent(info, id) != obj || i >= len(st.Values) {
						continue
					}
					switch st.Values[i].(type) {
					case *ast.CallExpr, *ast.SelectorExpr:
						found = true
					}
				}
			}
			return true
		})
		return found
	}
	return false
}
