package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"strings"
)

// This file is a miniature of golang.org/x/tools/go/analysis/analysistest:
// golden tests annotate testdata sources with expectations in trailing
// comments,
//
//	ctx.Memcpy(nil, dst, src, n) // want `blocking call .* nil`
//
// and RunGolden checks the analyzer's diagnostics against them: every
// `// want "regexp"` must be matched by a diagnostic on its line, and
// every diagnostic must be covered by a want comment. Test packages live
// under testdata/src/<importpath>, the same layout analysistest uses, so
// stubs of the simulator packages can be provided under their real import
// paths.

var wantRe = regexp.MustCompile("// want `([^`]*)`|// want \"([^\"]*)\"")

type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// GoldenResult is the outcome of one golden run, reported through t.
type testingT interface {
	Errorf(format string, args ...interface{})
	Fatalf(format string, args ...interface{})
	Helper()
}

// RunGolden loads testdata/src/<pkgPath> with the given tree loader and
// checks analyzer diagnostics against // want comments.
func RunGolden(t testingT, srcRoot string, a *Analyzer, pkgPath string) {
	t.Helper()
	loader := NewTreeLoader(srcRoot)
	pkgs, err := loader.Load(pkgPath)
	if err != nil {
		t.Fatalf("load %s: %v", pkgPath, err)
	}
	// The facts universe is everything the loader pulled in, so cross-
	// package facts about stub helpers resolve exactly as they do in the
	// real module.
	diags, err := RunWithUniverse(loader.Packages(), pkgs, []*Analyzer{a})
	if err != nil {
		t.Fatalf("run %s on %s: %v", a.Name, pkgPath, err)
	}

	expects := collectWants(pkgs[0].Fset, pkgs[0].Files)
	for _, d := range diags {
		covered := false
		for _, e := range expects {
			if e.file == d.Pos.Filename && e.line == d.Pos.Line && e.pattern.MatchString(d.Message) {
				e.matched = true
				covered = true
			}
		}
		if !covered {
			t.Errorf("%s: unexpected diagnostic: %s", a.Name, d)
		}
	}
	for _, e := range expects {
		if !e.matched {
			t.Errorf("%s: %s:%d: expected diagnostic matching %q, got none",
				a.Name, e.file, e.line, e.pattern)
		}
	}
}

func collectWants(fset *token.FileSet, files []*ast.File) []*expectation {
	var out []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
					pat := m[1]
					if pat == "" {
						pat = m[2]
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						panic(fmt.Sprintf("bad want pattern %q: %v", pat, err))
					}
					pos := fset.Position(c.Pos())
					out = append(out, &expectation{file: pos.Filename, line: pos.Line, pattern: re})
				}
			}
		}
	}
	return out
}

// Testdata returns the conventional testdata/src root next to the test.
func Testdata() string { return strings.Join([]string{"testdata", "src"}, "/") }
