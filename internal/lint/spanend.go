package lint

import (
	"go/ast"
	"go/types"
)

// SpanEnd flags obs.Span values that are started but never ended in the
// enclosing function.
//
// A task span opened with Hub.Start/StartTask/StartChild stays open until
// Span.End runs; a span that is never ended leaves a task permanently
// "in flight", which skews BusyTimeTracer utilization and drops the task
// from Chrome traces entirely (only TaskEnd emits an event). The analyzer
// tracks spans created locally in a function; if no End call on the same
// variable appears anywhere in the function — including inside closures,
// where pipeline code typically ends spans from OnTrigger callbacks — the
// start is reported. Spans that escape (returned, stored, passed to other
// calls, or whose End is passed as a method value) are assumed to be ended
// elsewhere.
var SpanEnd = &Analyzer{
	Name: "spanend",
	Doc:  "flags obs.Span starts with no End on any path in the function",
	Run:  runSpanEnd,
}

func runSpanEnd(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkSpanEnds(pass, fn)
		}
	}
	return nil
}

type spanState struct {
	obj     types.Object
	start   *ast.CallExpr // the Hub.Start* call that opened it
	ended   bool
	escaped bool
}

// isHubStart reports whether mi is a span-opening obs.Hub method. Matching
// by Start prefix keeps the analyzer aligned with future Start* variants.
func isHubStart(mi methodInfo) bool {
	return mi.pkgPath == obsPath && mi.typeName == "Hub" &&
		len(mi.method) >= 5 && mi.method[:5] == "Start"
}

func checkSpanEnds(pass *Pass, fn *ast.FuncDecl) {
	info := pass.TypesInfo
	spans := map[types.Object]*spanState{}

	// Collect locals created by Hub.Start/StartTask/StartChild.
	ast.Inspect(fn, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != len(as.Lhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			call, ok := as.Rhs[i].(*ast.CallExpr)
			if !ok {
				continue
			}
			mi, ok := methodCall(info, call)
			if !ok || !isHubStart(mi) {
				continue
			}
			if obj := objOfIdent(info, id); obj != nil {
				spans[obj] = &spanState{obj: obj, start: call}
			}
		}
		return true
	})
	if len(spans) == 0 {
		return
	}

	// Classify every use of each span object.
	escape := func(st *spanState) { st.escaped = true }
	ast.Inspect(fn, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			markSpansMentioned(info, n, spans, escape)
		case *ast.AssignStmt:
			// A span assigned onward (struct field or another variable)
			// escapes this analysis. Call RHSes are left to the CallExpr
			// case below, which knows obs's own methods don't consume the
			// span.
			for _, rhs := range n.Rhs {
				if _, ok := rhs.(*ast.CallExpr); ok {
					continue
				}
				markSpansMentioned(info, rhs, spans, escape)
			}
		case *ast.CallExpr:
			mi, ok := methodCall(info, n)
			if ok && mi.pkgPath == obsPath && mi.typeName == "Span" {
				if id, ok := mi.recv.(*ast.Ident); ok {
					if st := spans[objOfIdent(info, id)]; st != nil {
						if mi.method == "End" {
							st.ended = true
						}
						// Step/Active/Task are observations, not completions.
						return true
					}
				}
			}
			if ok && isHubStart(mi) {
				return true
			}
			// Any other call mentioning the span lets it escape: passing
			// sp.End as a method value (ev.OnTrigger(sp.End)), handing the
			// span to a helper, or capturing it in a closure argument.
			for _, a := range n.Args {
				markSpansMentioned(info, a, spans, escape)
			}
		}
		return true
	})

	for _, st := range spans {
		if st.ended || st.escaped {
			continue
		}
		pass.Reportf(st.start.Pos(),
			"span %s is started but never ended in this function (Span.End must run on every path)",
			st.obj.Name())
	}
}

// markSpansMentioned applies f to the state of every tracked span object
// referenced anywhere under node.
func markSpansMentioned(info *types.Info, node ast.Node, spans map[types.Object]*spanState, f func(*spanState)) {
	ast.Inspect(node, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if st := spans[objOfIdent(info, id)]; st != nil {
				f(st)
			}
		}
		return true
	})
}
