package lint

import (
	"go/ast"

	"mv2sim/internal/lint/cfg"
)

// SpanEnd flags obs.Span values that are not ended on every path through
// the function that started them.
//
// A task span opened with Hub.Start/StartTask/StartChild stays open until
// Span.End runs; a span that is never ended leaves a task permanently
// "in flight", which skews BusyTimeTracer utilization and drops the task
// from Chrome traces entirely (only TaskEnd emits an event). The analyzer
// propagates each locally-started span through the function's CFG: an
// End call (immediate, deferred, or handed off as a method value — the
// ev.OnTrigger(sp.End) idiom), a mention inside a closure, or a call to
// an in-tree helper whose fact says it ends its span parameter all
// discharge the obligation on that path; obs package calls (StartChild,
// DependsOn, Step, Instant*) merely borrow the span. A span still open
// on some path to a return — the classic early error return between
// Start and End — is reported at the Start call. Panicking paths are
// exempt: the engine turns them into Run errors and the trace is
// discarded.
var SpanEnd = &Analyzer{
	Name: "spanend",
	Doc:  "flags obs.Span starts whose End does not run on every path in the function",
	Run:  runSpanEnd,
}

func runSpanEnd(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkSpanEnds(pass, fn)
		}
	}
	return nil
}

// isHubStart reports whether mi is a span-opening obs.Hub method. Matching
// by Start prefix keeps the analyzer aligned with future Start* variants.
func isHubStart(mi methodInfo) bool {
	return mi.pkgPath == obsPath && mi.typeName == "Hub" &&
		len(mi.method) >= 5 && mi.method[:5] == "Start"
}

func checkSpanEnds(pass *Pass, fn *ast.FuncDecl) {
	info := pass.TypesInfo
	rules := spanUseRules{facts: pass.Facts}
	for _, body := range functionBodies(fn) {
		obls := collectObligations(info, body, func(call *ast.CallExpr) bool {
			mi, ok := methodCall(info, call)
			return ok && isHubStart(mi)
		})
		if len(obls) == 0 {
			continue
		}
		g := cfg.New(body)
		for _, o := range flowSurvivors(g, info, obls, rules) {
			pass.Reportf(o.call.Pos(),
				"span %s is not ended on every path through this function (Span.End must run before every return)",
				o.obj.Name())
		}
	}
}
