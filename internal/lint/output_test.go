package lint

import (
	"bytes"
	"encoding/json"
	"go/token"
	"strings"
	"testing"
)

func sampleDiags() []Diagnostic {
	return []Diagnostic{
		{
			Analyzer: "allocfree",
			Pos:      token.Position{Filename: "/repo/internal/osu/osu.go", Line: 94, Column: 14},
			Message:  "device allocation assigned to src is not freed on every path through this function (missing Free on some path to return)",
		},
		{
			Analyzer: "detrand",
			Pos:      token.Position{Filename: "/repo/internal/core/core.go", Line: 12, Column: 2},
			Message:  "line one\nline two: 100%",
		},
	}
}

func TestWriteJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, "/repo", sampleDiags()); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var got []struct {
		Analyzer string `json:"analyzer"`
		File     string `json:"file"`
		Line     int    `json:"line"`
		Column   int    `json:"column"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(got) != 2 {
		t.Fatalf("got %d findings, want 2", len(got))
	}
	if got[0].Analyzer != "allocfree" || got[0].File != "internal/osu/osu.go" ||
		got[0].Line != 94 || got[0].Column != 14 {
		t.Errorf("first finding mangled: %+v", got[0])
	}
	if got[1].Message != "line one\nline two: 100%" {
		t.Errorf("message not preserved: %q", got[1].Message)
	}
}

func TestWriteJSONEmpty(t *testing.T) {
	// CI consumes the report unconditionally: no findings must still be a
	// valid (empty) JSON array, not empty output.
	var buf bytes.Buffer
	if err := WriteJSON(&buf, "/repo", nil); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var got []json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("empty report is not a JSON array: %v\n%s", err, buf.String())
	}
	if len(got) != 0 {
		t.Errorf("empty report has %d entries", len(got))
	}
}

func TestWriteSARIF(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, "/repo", Analyzers(), sampleDiags()); err != nil {
		t.Fatalf("WriteSARIF: %v", err)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Level     string `json:"level"`
				Message   struct{ Text string }
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine   int `json:"startLine"`
							StartColumn int `json:"startColumn"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("output is not valid SARIF JSON: %v\n%s", err, buf.String())
	}
	if log.Version != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", log.Version)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "mv2lint" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}
	if len(run.Tool.Driver.Rules) != len(Analyzers()) {
		t.Errorf("got %d rules, want one per analyzer (%d)", len(run.Tool.Driver.Rules), len(Analyzers()))
	}
	if len(run.Results) != 2 {
		t.Fatalf("got %d results, want 2", len(run.Results))
	}
	r := run.Results[0]
	if r.RuleID != "allocfree" || r.Level != "error" {
		t.Errorf("result 0 ruleId/level = %q/%q", r.RuleID, r.Level)
	}
	loc := r.Locations[0].PhysicalLocation
	if loc.ArtifactLocation.URI != "internal/osu/osu.go" ||
		loc.Region.StartLine != 94 || loc.Region.StartColumn != 14 {
		t.Errorf("result 0 location mangled: %+v", loc)
	}
}

func TestWriteGitHub(t *testing.T) {
	var buf bytes.Buffer
	WriteGitHub(&buf, "/repo", sampleDiags())
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d annotation lines, want 2:\n%s", len(lines), buf.String())
	}
	want0 := "::error file=internal/osu/osu.go,line=94,col=14,title=mv2lint/allocfree::"
	if !strings.HasPrefix(lines[0], want0) {
		t.Errorf("line 0 = %q, want prefix %q", lines[0], want0)
	}
	// Newlines and percent signs must be percent-escaped or the workflow
	// command is truncated.
	if !strings.Contains(lines[1], "line one%0Aline two: 100%25") {
		t.Errorf("message not escaped: %q", lines[1])
	}
}

func TestRelPathOutsideRoot(t *testing.T) {
	// Files outside the root (stdlib, GOPATH) keep their absolute path
	// rather than acquiring a confusing ../.. prefix.
	if got := relPath("/repo", "/usr/lib/go/src/fmt/print.go"); strings.HasPrefix(got, "..") {
		t.Errorf("relPath escaped the root: %q", got)
	}
	if got := relPath("/repo", "/repo/internal/osu/osu.go"); got != "internal/osu/osu.go" {
		t.Errorf("relPath = %q", got)
	}
}
