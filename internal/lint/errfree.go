package lint

import (
	"go/ast"
)

// ErrFree flags discarded error results from Device.Free, Ctx.Free and
// Device.CheckAllocator.
//
// Free reports double-frees and frees of foreign pointers — the exact
// corruption modes a growing allocator-sharing codebase introduces — and
// CheckAllocator exists solely for its error. Dropping these results
// (calling them as a statement, assigning to _, or deferring them bare)
// silently converts allocator corruption into downstream mystery.
var ErrFree = &Analyzer{
	Name: "errfree",
	Doc:  "flags discarded error results of Device.Free, Ctx.Free and CheckAllocator",
	Run:  runErrFree,
}

// errCriticalMethods lists the calls whose error result must be consumed.
var errCriticalMethods = map[[3]string]bool{
	{gpuPath, "Device", "Free"}:           true,
	{gpuPath, "Device", "CheckAllocator"}: true,
	{cudaPath, "Ctx", "Free"}:             true,
}

func runErrFree(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var call *ast.CallExpr
			switch st := n.(type) {
			case *ast.ExprStmt:
				call, _ = st.X.(*ast.CallExpr)
			case *ast.DeferStmt:
				call = st.Call
			case *ast.GoStmt:
				call = st.Call
			case *ast.AssignStmt:
				// _ = x.Free(p) is as discarded as a bare statement.
				if len(st.Lhs) == 1 && len(st.Rhs) == 1 {
					if id, ok := st.Lhs[0].(*ast.Ident); ok && id.Name == "_" {
						call, _ = st.Rhs[0].(*ast.CallExpr)
					}
				}
			}
			if call == nil {
				return true
			}
			mi, ok := methodCall(pass.TypesInfo, call)
			if !ok || !errCriticalMethods[[3]string{mi.pkgPath, mi.typeName, mi.method}] {
				return true
			}
			pass.Reportf(call.Pos(),
				"error result of %s.%s is discarded (allocator corruption would go unnoticed)",
				mi.typeName, mi.method)
			return true
		})
	}
	return nil
}
