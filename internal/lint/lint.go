// Package lint implements mv2lint, a suite of static analyzers that
// machine-check the simulator's GPU/MPI invariants: the discipline the
// type system cannot see, but whose violation is how datatype-pipeline
// code actually breaks (blocking calls outside a simulation process,
// unrecorded events, leaked device allocations, swallowed Free errors,
// magic pipeline block sizes).
//
// The framework is a deliberately small, dependency-free re-implementation
// of the golang.org/x/tools/go/analysis surface this repository needs:
// an Analyzer runs once per type-checked package and reports position-
// anchored diagnostics. Packages are loaded and type-checked with the
// standard library only (go/parser + go/types, with a source importer for
// the standard library), so the linter builds in a hermetic environment.
//
// False positives are suppressed with a directive on the flagged line or
// the line directly above it:
//
//	//lint:ignore <analyzer> reason the code is actually fine
//
// where <analyzer> is one analyzer name, a comma-separated list, or "all".
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one invariant check.
type Analyzer struct {
	// Name identifies the analyzer in output and in //lint:ignore
	// directives.
	Name string
	// Doc is a one-paragraph description of the invariant the analyzer
	// encodes.
	Doc string
	// Run performs the check on one package, reporting findings through
	// the pass.
	Run func(*Pass) error
}

// A Pass is one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Facts answers cross-package questions about functions anywhere in
	// the loaded universe ("does this callee free its pointer param?"),
	// so analyzers can see through helpers instead of forcing
	// //lint:ignore suppressions at every call site.
	Facts *Facts

	diags []Diagnostic
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzers lists every analyzer in the suite, in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{ProcBlock, EventPair, SpanEnd, AllocFree, ErrFree, ChunkConst, DetRand}
}

// Run applies the analyzers to every package and returns the surviving
// diagnostics (after //lint:ignore suppression), sorted by position. The
// cross-package Facts universe is the analyzed packages themselves; use
// RunWithUniverse when helper packages outside the analyzed set should be
// visible to fact queries.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	return RunWithUniverse(pkgs, pkgs, analyzers)
}

// RunWithUniverse is Run with an explicit Facts universe: facts are
// computed over universe (typically every package the loader touched,
// including dependencies of the analyzed set), while diagnostics are
// produced only for pkgs.
func RunWithUniverse(universe, pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	facts := NewFacts(universe)
	var out []Diagnostic
	for _, pkg := range pkgs {
		ignores := collectIgnores(pkg.Fset, pkg.Files)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Facts:     facts,
			}
			if err := a.Run(pass); err != nil {
				return out, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
			for _, d := range pass.diags {
				if !ignores.suppressed(a.Name, d.Pos) {
					out = append(out, d)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	// De-duplicate identical findings: the same position can be analyzed
	// twice when a package is loaded both as itself and as the in-package
	// half of its test variant.
	dedup := out[:0]
	for i, d := range out {
		if i > 0 && d == out[i-1] {
			continue
		}
		dedup = append(dedup, d)
	}
	return dedup, nil
}

// ---------------------------------------------------------------------------
// //lint:ignore directives

type ignoreSet struct {
	// byFile maps filename -> line -> analyzer names (or "all").
	byFile map[string]map[int][]string
}

func collectIgnores(fset *token.FileSet, files []*ast.File) *ignoreSet {
	s := &ignoreSet{byFile: map[string]map[int][]string{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "lint:ignore") {
					continue
				}
				fields := strings.Fields(strings.TrimPrefix(text, "lint:ignore"))
				if len(fields) == 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				m := s.byFile[pos.Filename]
				if m == nil {
					m = map[int][]string{}
					s.byFile[pos.Filename] = m
				}
				names := strings.Split(fields[0], ",")
				m[pos.Line] = append(m[pos.Line], names...)
			}
		}
	}
	return s
}

// suppressed reports whether a directive on the diagnostic's line or the
// line directly above it names the analyzer.
func (s *ignoreSet) suppressed(analyzer string, pos token.Position) bool {
	m := s.byFile[pos.Filename]
	if m == nil {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, name := range m[line] {
			if name == analyzer || name == "all" {
				return true
			}
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// Shared type-matching helpers. Analyzers identify simulator API by
// (package path, type name, method name); testdata stubs are loaded under
// the same import paths so golden tests exercise identical matching.

// Import paths of the packages whose APIs the analyzers know.
const (
	simPath     = "mv2sim/internal/sim"
	cudaPath    = "mv2sim/internal/cuda"
	gpuPath     = "mv2sim/internal/gpu"
	memPath     = "mv2sim/internal/mem"
	mpiPath     = "mv2sim/internal/mpi"
	clusterPath = "mv2sim/internal/cluster"
	obsPath     = "mv2sim/internal/obs"
)

// namedOf unwraps pointers and generic instantiations down to the
// defining *types.Named, or nil.
func namedOf(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Named:
			return u
		default:
			return nil
		}
	}
}

// typeIs reports whether t (possibly behind pointers) is the named type
// pkgPath.name.
func typeIs(t types.Type, pkgPath, name string) bool {
	n := namedOf(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// methodCall resolves a call expression to (receiver type name info,
// method name). ok is false for non-method calls.
type methodInfo struct {
	pkgPath  string
	typeName string
	method   string
	recv     ast.Expr
}

func methodCall(info *types.Info, call *ast.CallExpr) (methodInfo, bool) {
	sel, _ := call.Fun.(*ast.SelectorExpr)
	if sel == nil {
		return methodInfo{}, false
	}
	selection, ok := info.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return methodInfo{}, false
	}
	n := namedOf(selection.Recv())
	if n == nil || n.Obj().Pkg() == nil {
		return methodInfo{}, false
	}
	return methodInfo{
		pkgPath:  n.Obj().Pkg().Path(),
		typeName: n.Obj().Name(),
		method:   sel.Sel.Name,
		recv:     sel.X,
	}, true
}

// enclosing returns the ancestor chain (outermost first) of nodes in file
// containing pos.
func enclosing(file *ast.File, pos token.Pos) []ast.Node {
	var path []ast.Node
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if n.Pos() <= pos && pos < n.End() {
			path = append(path, n)
			return true
		}
		return false
	})
	return path
}

// funcHasParam reports whether ft declares a parameter whose type matches
// pkgPath.name (behind any pointers).
func funcHasParam(info *types.Info, ft *ast.FuncType, pkgPath, name string) bool {
	if ft == nil || ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		if t := info.TypeOf(field.Type); t != nil && typeIs(t, pkgPath, name) {
			return true
		}
	}
	return false
}

// funcTypeOf extracts the *ast.FuncType from a FuncDecl or FuncLit node.
func funcTypeOf(n ast.Node) *ast.FuncType {
	switch f := n.(type) {
	case *ast.FuncDecl:
		return f.Type
	case *ast.FuncLit:
		return f.Type
	}
	return nil
}

// simContext reports whether the function node runs with a simulation
// process in hand: it receives a *sim.Proc directly, or a *cluster.Node
// (cluster.Run rank bodies execute inside a spawned process).
func simContext(info *types.Info, n ast.Node) bool {
	ft := funcTypeOf(n)
	return funcHasParam(info, ft, simPath, "Proc") || funcHasParam(info, ft, clusterPath, "Node")
}

// pkgClass classifies a package path for scoping rules.
func isCmdOrMain(pkgPath, pkgName string) bool {
	return pkgName == "main" || strings.Contains(pkgPath, "/cmd/") ||
		strings.HasPrefix(pkgPath, "cmd/") || strings.Contains(pkgPath, "/examples/")
}

func isInternalLib(pkgPath string) bool {
	return strings.Contains(pkgPath, "/internal/") || strings.HasPrefix(pkgPath, "internal/")
}

// isTestFile reports whether the position is inside a _test.go file.
func isTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// objOfIdent resolves an identifier to its object via Uses or Defs.
func objOfIdent(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}
