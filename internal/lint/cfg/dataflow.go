package cfg

// A Problem defines a forward dataflow analysis over a Graph. F is the
// fact lattice element; Merge must be commutative and associative with
// Bottom as identity, and Transfer must be monotone for the fixpoint
// iteration to terminate.
type Problem[F any] interface {
	// Entry is the boundary fact flowing into the Entry block.
	Entry() F
	// Bottom is the identity element for Merge, used to initialize
	// unvisited blocks (and blocks with no predecessors).
	Bottom() F
	// Merge joins the facts of two incoming edges.
	Merge(a, b F) F
	// Transfer pushes a fact through a block's nodes.
	Transfer(b *Block, in F) F
	// Equal reports whether two facts are the same (fixpoint test).
	Equal(a, b F) bool
}

// A Result holds the per-block fixpoint facts of a Forward solve.
type Result[F any] struct {
	In  map[*Block]F
	Out map[*Block]F
}

// Forward solves p over g with a worklist iteration and returns the
// per-block In/Out facts at the fixpoint.
func Forward[F any](g *Graph, p Problem[F]) Result[F] {
	in := make(map[*Block]F, len(g.Blocks))
	out := make(map[*Block]F, len(g.Blocks))
	for _, b := range g.Blocks {
		in[b] = p.Bottom()
		out[b] = p.Bottom()
	}

	work := make([]*Block, len(g.Blocks))
	copy(work, g.Blocks)
	queued := make([]bool, len(g.Blocks))
	for i := range queued {
		queued[i] = true
	}

	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		queued[b.Index] = false

		var newIn F
		if b == g.Entry {
			newIn = p.Entry()
		} else {
			newIn = p.Bottom()
			for _, pr := range b.Preds {
				newIn = p.Merge(newIn, out[pr])
			}
		}
		in[b] = newIn
		newOut := p.Transfer(b, newIn)
		if p.Equal(newOut, out[b]) {
			continue
		}
		out[b] = newOut
		for _, s := range b.Succs {
			if !queued[s.Index] {
				queued[s.Index] = true
				work = append(work, s)
			}
		}
	}
	return Result[F]{In: in, Out: out}
}
