package cfg

import "testing"

// boolProblem tracks one boolean fact: "a call to gen has executed".
// merge and bottom parameterize may- (OR, false) versus must- (AND, true)
// analyses, mirroring how the lint package uses the solver.
type boolProblem struct {
	gen    string
	merge  func(a, b bool) bool
	bottom bool
}

func (p *boolProblem) Entry() bool          { return false }
func (p *boolProblem) Bottom() bool         { return p.bottom }
func (p *boolProblem) Merge(a, b bool) bool { return p.merge(a, b) }
func (p *boolProblem) Equal(a, b bool) bool { return a == b }
func (p *boolProblem) Transfer(b *Block, in bool) bool {
	out := in
	for _, n := range b.Nodes {
		if nodeCalls(n, p.gen) {
			out = true
		}
	}
	return out
}

func may(gen string) *boolProblem {
	return &boolProblem{gen: gen, merge: func(a, b bool) bool { return a || b }, bottom: false}
}

func must(gen string) *boolProblem {
	return &boolProblem{gen: gen, merge: func(a, b bool) bool { return a && b }, bottom: true}
}

// TestMustMergeAtJoin: a release on only one branch is not a release on
// every path — the AND-merge at the join must lose the fact.
func TestMustMergeAtJoin(t *testing.T) {
	g := build(t, `
	if cond {
		release()
	}
	after()
`)
	res := Forward[bool](g, must("release"))
	if res.In[g.Exit] {
		t.Errorf("one-branch release survived an all-paths merge: %s", g)
	}

	both := build(t, `
	if cond {
		release()
	} else {
		release()
	}
	after()
`)
	res = Forward[bool](both, must("release"))
	if !res.In[both.Exit] {
		t.Errorf("release on both branches lost at the join: %s", both)
	}
}

// TestMayMergeAtJoin: the dual — a leak on any path is a leak.
func TestMayMergeAtJoin(t *testing.T) {
	g := build(t, `
	if cond {
		mark()
	}
	after()
`)
	res := Forward[bool](g, may("mark"))
	if !res.In[g.Exit] {
		t.Errorf("one-branch fact dropped by the union merge: %s", g)
	}
}

// TestLoopFixpoint: a fact generated inside a loop body must flow around
// the back edge into the loop head — the worklist has to re-process the
// head after the body's out-fact changes.
func TestLoopFixpoint(t *testing.T) {
	g := build(t, `
	for i := 0; i < n; i++ {
		mark()
	}
	after()
`)
	res := Forward[bool](g, may("mark"))
	var head *Block
	for _, b := range g.Blocks {
		if b.Kind == "for.head" {
			head = b
		}
	}
	if !res.In[head] {
		t.Errorf("back-edge fact never reached the loop head: %s", g)
	}
	if !res.In[g.Exit] {
		t.Errorf("loop fact lost on the exit path: %s", g)
	}
	// Zero-iteration path: the must-variant cannot prove the call ran.
	mres := Forward[bool](g, must("mark"))
	if mres.In[g.Exit] {
		t.Errorf("must-analysis claims a loop body always runs: %s", g)
	}
}

// TestEarlyReturnSplitsFacts: facts differ per program point — the early
// return path reaches Exit without the fact while the fallthrough path
// carries it.
func TestEarlyReturnSplitsFacts(t *testing.T) {
	g := build(t, `
	if cond {
		return
	}
	mark()
`)
	res := Forward[bool](g, may("mark"))
	if !res.In[g.Exit] {
		t.Errorf("fallthrough fact lost: %s", g)
	}
	mres := Forward[bool](g, must("mark"))
	if mres.In[g.Exit] {
		t.Errorf("must-analysis ignores the early return: %s", g)
	}
}
