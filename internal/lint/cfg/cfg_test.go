package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// build parses body as the body of a parameterless function and lowers it.
// Identifiers need not resolve: the builder is purely syntactic.
func build(t *testing.T, body string) *Graph {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}"
	f, err := parser.ParseFile(token.NewFileSet(), "f.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return New(f.Decls[0].(*ast.FuncDecl).Body)
}

// blockWith returns the first block containing a node matching pred.
func blockWith(t *testing.T, g *Graph, what string, pred func(ast.Node) bool) *Block {
	t.Helper()
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if pred(n) {
				return b
			}
		}
	}
	t.Fatalf("no block contains %s in graph %s", what, g)
	return nil
}

// blockCalling returns the block containing a call to the named function.
func blockCalling(t *testing.T, g *Graph, name string) *Block {
	t.Helper()
	return blockWith(t, g, "call to "+name, func(n ast.Node) bool { return nodeCalls(n, name) })
}

func nodeCalls(n ast.Node, name string) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if call, ok := m.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == name {
				found = true
			}
		}
		return !found
	})
	return found
}

// reaches reports whether to is reachable from from along Succs edges
// without passing through any block in avoid.
func reaches(from, to *Block, avoid ...*Block) bool {
	skip := map[*Block]bool{}
	for _, b := range avoid {
		skip[b] = true
	}
	seen := map[*Block]bool{}
	var dfs func(*Block) bool
	dfs = func(b *Block) bool {
		if b == to {
			return true
		}
		if seen[b] || skip[b] {
			return false
		}
		seen[b] = true
		for _, s := range b.Succs {
			if dfs(s) {
				return true
			}
		}
		return false
	}
	return dfs(from)
}

func TestLinear(t *testing.T) {
	g := build(t, `
	x()
	y()
`)
	b := blockCalling(t, g, "x")
	if b != blockCalling(t, g, "y") {
		t.Errorf("straight-line statements split across blocks: %s", g)
	}
	if len(b.Nodes) != 2 {
		t.Errorf("body block has %d nodes, want 2: %s", len(b.Nodes), g)
	}
	if !reaches(g.Entry, g.Exit) {
		t.Errorf("exit unreachable: %s", g)
	}
}

func TestIfEarlyReturn(t *testing.T) {
	g := build(t, `
	if cond {
		return
	}
	after()
`)
	afterBlk := blockCalling(t, g, "after")
	condBlk := blockWith(t, g, "the condition", func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		return ok && id.Name == "cond"
	})
	// Two ways out of the condition: into the then-branch (which
	// returns) and around it to the join.
	if len(condBlk.Succs) != 2 {
		t.Errorf("cond block has %d successors, want 2: %s", len(condBlk.Succs), g)
	}
	if !reaches(condBlk, g.Exit, afterBlk) {
		t.Errorf("early return does not bypass the join: %s", g)
	}
	if !reaches(g.Entry, afterBlk) {
		t.Errorf("fallthrough path lost: %s", g)
	}
}

func TestIfElseJoins(t *testing.T) {
	g := build(t, `
	if cond {
		a()
	} else {
		b()
	}
	after()
`)
	afterBlk := blockCalling(t, g, "after")
	for _, name := range []string{"a", "b"} {
		br := blockCalling(t, g, name)
		if !reaches(br, afterBlk) {
			t.Errorf("branch %s does not rejoin: %s", name, g)
		}
	}
	// With an else present there is no direct cond→join edge.
	condBlk := blockCalling(t, g, "a").Preds[0]
	for _, s := range condBlk.Succs {
		if s == afterBlk {
			t.Errorf("cond jumps straight to join despite else: %s", g)
		}
	}
}

func TestForLoop(t *testing.T) {
	g := build(t, `
	for i := 0; i < n; i++ {
		work()
	}
	after()
`)
	body := blockCalling(t, g, "work")
	var head *Block
	for _, b := range g.Blocks {
		if b.Kind == "for.head" {
			head = b
		}
	}
	if head == nil {
		t.Fatalf("no for.head block: %s", g)
	}
	// The back edge: body → post → head.
	if !reaches(body, head, g.Entry) {
		t.Errorf("no back edge from body to head: %s", g)
	}
	if !reaches(head, blockCalling(t, g, "after")) {
		t.Errorf("loop exit edge missing: %s", g)
	}
}

func TestForeverLoopHasNoExit(t *testing.T) {
	g := build(t, `
	for {
		work()
	}
`)
	if reaches(g.Entry, g.Exit) {
		t.Errorf("for{} without condition must not reach exit: %s", g)
	}
	if !reaches(g.Entry, blockCalling(t, g, "work")) {
		t.Errorf("loop body unreachable: %s", g)
	}
}

func TestRange(t *testing.T) {
	g := build(t, `
	for k := range m {
		use(k)
	}
	after()
`)
	head := blockWith(t, g, "the range statement", func(n ast.Node) bool {
		_, ok := n.(*ast.RangeStmt)
		return ok
	})
	// The loop statements live in their own body block: the head node
	// stands only for the X evaluation and per-iteration assignment.
	var body *Block
	for _, b := range g.Blocks {
		if b.Kind == "range.body" {
			body = b
		}
	}
	if body == nil || body == head || len(body.Nodes) != 1 {
		t.Fatalf("range body not lowered into its own block: %s", g)
	}
	if !reaches(body, head, g.Entry) {
		t.Errorf("no back edge from range body: %s", g)
	}
	if !reaches(head, blockCalling(t, g, "after")) {
		t.Errorf("zero-iteration path missing: %s", g)
	}
}

// TestDeferPosition pins the defer-at-registration model: a return before
// the defer statement is a path that never registers the cleanup.
func TestDeferPosition(t *testing.T) {
	late := build(t, `
	if cond {
		return
	}
	defer cleanup()
	work()
`)
	isDefer := func(n ast.Node) bool { _, ok := n.(*ast.DeferStmt); return ok }
	lateDefer := blockWith(t, late, "the defer", isDefer)
	if !reaches(late.Entry, late.Exit, lateDefer) {
		t.Errorf("expected a path to exit that skips the late defer: %s", late)
	}

	early := build(t, `
	defer cleanup()
	if cond {
		return
	}
	work()
`)
	earlyDefer := blockWith(t, early, "the defer", isDefer)
	if reaches(early.Entry, early.Exit, earlyDefer) {
		t.Errorf("every path must pass a first-statement defer: %s", early)
	}
}

func TestPanicPath(t *testing.T) {
	g := build(t, `
	if bad {
		panic("boom")
	}
	ok()
`)
	if !reaches(g.Entry, g.Panic) {
		t.Errorf("panic block unreachable: %s", g)
	}
	panicBlk := blockCalling(t, g, "panic")
	if !reaches(g.Entry, g.Exit, panicBlk) {
		t.Errorf("non-panicking path to exit lost: %s", g)
	}
	if reaches(panicBlk, g.Exit, g.Panic) {
		t.Errorf("panic block falls through to exit: %s", g)
	}
}

func TestSwitchFallthrough(t *testing.T) {
	g := build(t, `
	switch x {
	case 1:
		a()
		fallthrough
	case 2:
		b()
	default:
		c()
	}
	after()
`)
	caseA, caseB := blockCalling(t, g, "a"), blockCalling(t, g, "b")
	direct := false
	for _, s := range caseA.Succs {
		if s == caseB {
			direct = true
		}
	}
	if !direct {
		t.Errorf("fallthrough edge missing between clauses: %s", g)
	}
	// With a default clause, the head cannot skip every clause.
	head := blockWith(t, g, "the switch tag", func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		return ok && id.Name == "x"
	})
	if reaches(head, blockCalling(t, g, "after"), caseA, caseB, blockCalling(t, g, "c")) {
		t.Errorf("switch with default has a clause-skipping edge: %s", g)
	}
}

func TestSelectFanOut(t *testing.T) {
	g := build(t, `
	select {
	case <-ch:
		a()
	case ch <- v:
		b()
	}
	after()
`)
	afterBlk := blockCalling(t, g, "after")
	for _, name := range []string{"a", "b"} {
		if !reaches(blockCalling(t, g, name), afterBlk) {
			t.Errorf("select case %s does not rejoin: %s", name, g)
		}
	}
}

func TestLabeledBreak(t *testing.T) {
	g := build(t, `
outer:
	for {
		for {
			break outer
		}
	}
	after()
`)
	if !reaches(g.Entry, blockCalling(t, g, "after")) {
		t.Errorf("labeled break out of nested infinite loops lost: %s", g)
	}
}

func TestGotoBackEdge(t *testing.T) {
	g := build(t, `
	i := 0
loop:
	i++
	if i < 3 {
		goto loop
	}
	done()
`)
	var label *Block
	for _, b := range g.Blocks {
		if b.Kind == "label.loop" {
			label = b
		}
	}
	if label == nil {
		t.Fatalf("no label block: %s", g)
	}
	if len(label.Preds) < 2 {
		t.Errorf("label block has %d preds, want fall-in plus goto: %s", len(label.Preds), g)
	}
	if !reaches(g.Entry, blockCalling(t, g, "done")) {
		t.Errorf("loop exit lost: %s", g)
	}
}
