// Package cfg builds intraprocedural control-flow graphs over go/ast
// function bodies and solves forward dataflow problems over them.
//
// The graph is deliberately simple: a Block holds a straight-line run of
// "simple" nodes (assignments, expression statements, conditions, defers,
// returns) and edges to its successors. Compound statements are lowered
// during construction — an if contributes its init and condition to the
// current block and branches to then/else blocks; loops get head, body and
// post blocks with a back edge; switch/select clauses fan out of a head
// block and rejoin. Three distinguished blocks exist: Entry (no nodes),
// Exit (reached by every return and by falling off the end of the body)
// and Panic (reached by explicit panic(...) statements, so analyses can
// choose whether panicking paths must satisfy an invariant).
//
// Deferred calls are modeled at the point the defer statement executes:
// for a forward "must happen before exit" analysis this is exactly right —
// a path that passes a `defer release(x)` is guaranteed the release no
// matter how it later leaves the function, while a path that returns
// before registering the defer is not.
//
// The package is position-independent of go/types on purpose: clients
// bring their own *types.Info when classifying nodes.
package cfg

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// A Block is one basic block: Nodes execute in order, then control moves
// to one of Succs.
type Block struct {
	Index int    // position in Graph.Blocks, assigned at creation
	Kind  string // construction-site label ("entry", "if.then", ...), for debugging
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block
}

// A Graph is the control-flow graph of one function body.
type Graph struct {
	Entry  *Block // empty block before the first statement
	Exit   *Block // target of every return and of falling off the end
	Panic  *Block // target of explicit panic(...) statements
	Blocks []*Block
}

// New lowers body into a control-flow graph.
func New(body *ast.BlockStmt) *Graph {
	g := &Graph{}
	g.Entry = g.block("entry")
	g.Exit = g.block("exit")
	g.Panic = g.block("panic")
	b := &builder{g: g, labels: map[string]*labelInfo{}}
	b.cur = g.block("body")
	edge(g.Entry, b.cur)
	b.stmtList(body.List)
	edge(b.cur, g.Exit)
	return g
}

func (g *Graph) block(kind string) *Block {
	bl := &Block{Index: len(g.Blocks), Kind: kind}
	g.Blocks = append(g.Blocks, bl)
	return bl
}

func edge(from, to *Block) {
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// String renders the graph compactly for tests and debugging:
// "0:entry -> 3; 3:body[2] -> 1; ...", where [n] is the node count.
func (g *Graph) String() string {
	var parts []string
	for _, b := range g.Blocks {
		var succs []string
		for _, s := range b.Succs {
			succs = append(succs, fmt.Sprint(s.Index))
		}
		n := ""
		if len(b.Nodes) > 0 {
			n = fmt.Sprintf("[%d]", len(b.Nodes))
		}
		parts = append(parts, fmt.Sprintf("%d:%s%s -> %s", b.Index, b.Kind, n, strings.Join(succs, ",")))
	}
	return strings.Join(parts, "; ")
}

// ---------------------------------------------------------------------------
// Construction

// scope is one enclosing breakable/continuable statement.
type scope struct {
	label string
	brk   *Block // break target
	cont  *Block // continue target; nil for switch/select
}

type labelInfo struct {
	block *Block // goto target
}

type builder struct {
	g      *Graph
	cur    *Block
	scopes []scope
	labels map[string]*labelInfo
	// pendingLabel names the label attached to the next loop/switch
	// statement, so labeled break/continue can find it.
	pendingLabel string
}

// add appends a simple node to the current block.
func (b *builder) add(n ast.Node) {
	if n != nil {
		b.cur.Nodes = append(b.cur.Nodes, n)
	}
}

// unreachable starts a fresh block with no predecessors, used after a
// terminator (return, break, panic) so trailing dead code attaches to
// something without polluting live paths.
func (b *builder) unreachable() {
	b.cur = b.g.block("unreachable")
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// takeLabel consumes the pending label for the statement being built.
func (b *builder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *builder) push(sc scope) { b.scopes = append(b.scopes, sc) }
func (b *builder) pop()          { b.scopes = b.scopes[:len(b.scopes)-1] }
func (b *builder) find(label string, needCont bool) *scope {
	for i := len(b.scopes) - 1; i >= 0; i-- {
		sc := &b.scopes[i]
		if needCont && sc.cont == nil {
			continue
		}
		if label == "" || sc.label == label {
			return sc
		}
	}
	return nil
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.takeLabel()
		b.stmtList(s.List)

	case *ast.IfStmt:
		b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Cond)
		cond := b.cur
		done := b.g.block("if.done")
		then := b.g.block("if.then")
		edge(cond, then)
		b.cur = then
		b.stmt(s.Body)
		edge(b.cur, done)
		if s.Else != nil {
			els := b.g.block("if.else")
			edge(cond, els)
			b.cur = els
			b.stmt(s.Else)
			edge(b.cur, done)
		} else {
			edge(cond, done)
		}
		b.cur = done

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		head := b.g.block("for.head")
		edge(b.cur, head)
		if s.Cond != nil {
			head.Nodes = append(head.Nodes, s.Cond)
		}
		body := b.g.block("for.body")
		post := b.g.block("for.post")
		done := b.g.block("for.done")
		edge(head, body)
		if s.Cond != nil {
			edge(head, done)
		}
		b.push(scope{label: label, brk: done, cont: post})
		b.cur = body
		b.stmt(s.Body)
		edge(b.cur, post)
		b.pop()
		if s.Post != nil {
			post.Nodes = append(post.Nodes, s.Post)
		}
		edge(post, head)
		b.cur = done

	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.g.block("range.head")
		edge(b.cur, head)
		// The RangeStmt itself stands for the X evaluation and the
		// per-iteration key/value assignment.
		head.Nodes = append(head.Nodes, s)
		body := b.g.block("range.body")
		done := b.g.block("range.done")
		edge(head, body)
		edge(head, done)
		b.push(scope{label: label, brk: done, cont: head})
		b.cur = body
		b.stmt(s.Body)
		edge(b.cur, head)
		b.pop()
		b.cur = done

	case *ast.SwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.switchClauses(label, s.Body.List, func(cs ast.Stmt) ([]ast.Node, []ast.Stmt, bool) {
			cc := cs.(*ast.CaseClause)
			var exprs []ast.Node
			for _, e := range cc.List {
				exprs = append(exprs, e)
			}
			return exprs, cc.Body, cc.List == nil
		})

	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Assign)
		b.switchClauses(label, s.Body.List, func(cs ast.Stmt) ([]ast.Node, []ast.Stmt, bool) {
			cc := cs.(*ast.CaseClause)
			var exprs []ast.Node
			for _, e := range cc.List {
				exprs = append(exprs, e)
			}
			return exprs, cc.Body, cc.List == nil
		})

	case *ast.SelectStmt:
		label := b.takeLabel()
		head := b.cur
		done := b.g.block("select.done")
		b.push(scope{label: label, brk: done})
		hasDefault := false
		for _, cs := range s.Body.List {
			cc := cs.(*ast.CommClause)
			blk := b.g.block("select.case")
			edge(head, blk)
			if cc.Comm != nil {
				blk.Nodes = append(blk.Nodes, cc.Comm)
			} else {
				hasDefault = true
			}
			b.cur = blk
			b.stmtList(cc.Body)
			edge(b.cur, done)
		}
		_ = hasDefault // a select without default still joins at done
		b.pop()
		b.cur = done

	case *ast.LabeledStmt:
		// Record the label both as a goto target and for break/continue.
		li := b.labels[s.Label.Name]
		if li == nil {
			li = &labelInfo{block: b.g.block("label." + s.Label.Name)}
			b.labels[s.Label.Name] = li
		}
		edge(b.cur, li.block)
		b.cur = li.block
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.BranchStmt:
		b.takeLabel()
		label := ""
		if s.Label != nil {
			label = s.Label.Name
		}
		switch s.Tok {
		case token.BREAK:
			if sc := b.find(label, false); sc != nil {
				edge(b.cur, sc.brk)
			}
			b.unreachable()
		case token.CONTINUE:
			if sc := b.find(label, true); sc != nil {
				edge(b.cur, sc.cont)
			}
			b.unreachable()
		case token.GOTO:
			li := b.labels[label]
			if li == nil {
				li = &labelInfo{block: b.g.block("label." + label)}
				b.labels[label] = li
			}
			edge(b.cur, li.block)
			b.unreachable()
		case token.FALLTHROUGH:
			// Handled structurally in switchClauses.
		}

	case *ast.ReturnStmt:
		b.takeLabel()
		b.add(s)
		edge(b.cur, b.g.Exit)
		b.unreachable()

	case *ast.ExprStmt:
		b.takeLabel()
		b.add(s)
		if isPanicCall(s.X) {
			edge(b.cur, b.g.Panic)
			b.unreachable()
		}

	case nil:
		// Absent optional statement.

	default:
		// Assign, DeclStmt, IncDec, Send, Defer, Go, Empty, ...
		b.takeLabel()
		b.add(s)
	}
}

// switchClauses lowers the clause list shared by switch and type switch.
// decompose returns a clause's guard expressions, body, and whether it is
// the default clause.
func (b *builder) switchClauses(label string, clauses []ast.Stmt, decompose func(ast.Stmt) ([]ast.Node, []ast.Stmt, bool)) {
	head := b.cur
	done := b.g.block("switch.done")
	b.push(scope{label: label, brk: done})
	blocks := make([]*Block, len(clauses))
	bodies := make([][]ast.Stmt, len(clauses))
	hasDefault := false
	for i, cs := range clauses {
		exprs, body, isDefault := decompose(cs)
		blk := b.g.block("switch.case")
		edge(head, blk)
		blk.Nodes = append(blk.Nodes, exprs...)
		blocks[i] = blk
		bodies[i] = body
		if isDefault {
			hasDefault = true
		}
	}
	for i := range clauses {
		b.cur = blocks[i]
		b.stmtList(bodies[i])
		if endsInFallthrough(bodies[i]) && i+1 < len(blocks) {
			edge(b.cur, blocks[i+1])
		} else {
			edge(b.cur, done)
		}
	}
	if !hasDefault {
		edge(head, done)
	}
	b.pop()
	b.cur = done
}

func endsInFallthrough(body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	br, ok := body[len(body)-1].(*ast.BranchStmt)
	return ok && br.Tok == token.FALLTHROUGH
}

// isPanicCall reports whether e is a call to the predeclared panic. The
// check is syntactic (a local function named panic would fool it), which
// keeps the package independent of go/types; shadowing panic does not
// occur in this codebase.
func isPanicCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}
