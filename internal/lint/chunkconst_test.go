package lint

import "testing"

func TestChunkConst(t *testing.T) {
	RunGolden(t, Testdata(), ChunkConst, "chunkconst")
}
