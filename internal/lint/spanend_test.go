package lint

import "testing"

func TestSpanEnd(t *testing.T) {
	RunGolden(t, Testdata(), SpanEnd, "spanend")
}
