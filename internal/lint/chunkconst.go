package lint

import (
	"go/ast"
	"go/token"
)

// ChunkConst flags raw numeric literals used as pipeline tunables.
//
// The pipeline block size (the paper's §IV-B 64 KB result) and the eager
// limit are named, calibrated tunables: mpi.DefaultBlockSize and
// mpi.DefaultEagerLimit, re-exported by internal/core. Assigning a raw
// literal ("64 << 10") to a BlockSize or EagerLimit field scatters the
// calibration across the tree, so retuning the pipeline silently misses
// copies. Literals are permitted only inside const declarations — the one
// place the canonical value is defined. The HCA rail count joined the list
// with the multi-rail transport: a hard-coded "Rails: 2" pins a host-channel
// topology that belongs either to the calibrated default (mpi.DefaultRails)
// or to an explicit sweep variable. PackMode/UnpackMode joined with the
// pack-engine selector: the modes are named core constants
// (core.PackModeAuto / PackModeMemcpy2D / PackModeKernel / PackModeNic),
// and a raw "1" silently pins an engine choice nobody can grep for. The
// NIC SGE tunables (MaxSGEPerWQE and the two gather cost rates) joined
// with the nic pack engine: the three-way auto decision is calibrated
// against ib.Default*, so a raw "32" or "0.05" desynchronizes the
// heuristic from the hardware it models.
var ChunkConst = &Analyzer{
	Name: "chunkconst",
	Doc:  "flags raw numeric literals assigned to BlockSize/EagerLimit/Rails/PackMode/NIC-SGE tunables",
	Run:  runChunkConst,
}

// tunableNames maps each guarded field/variable name to the named
// tunables a diagnostic should steer the author toward.
var tunableNames = map[string]string{
	"BlockSize":             "mpi.DefaultBlockSize / core.DefaultBlockSize",
	"EagerLimit":            "mpi.DefaultEagerLimit / core.DefaultEagerLimit",
	"Rails":                 "mpi.DefaultRails / core.DefaultRails",
	"PackMode":              "core.PackModeAuto / PackModeMemcpy2D / PackModeKernel / PackModeNic",
	"UnpackMode":            "core.PackModeAuto / PackModeMemcpy2D / PackModeKernel / PackModeNic",
	"MaxSGEPerWQE":          "ib.DefaultMaxSGEPerWQE",
	"NicGatherNsPerSegment": "ib.DefaultNicGatherNsPerSegment",
	"NicGatherNsPerByte":    "ib.DefaultNicGatherNsPerByte",
}

func runChunkConst(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.GenDecl:
				if st.Tok == token.CONST {
					// Literals inside const blocks define the canonical
					// values; walk them without flagging.
					return false
				}
			case *ast.KeyValueExpr:
				if key, ok := st.Key.(*ast.Ident); ok && isRawNumber(st.Value) {
					if want, guarded := tunableNames[key.Name]; guarded {
						pass.Reportf(st.Value.Pos(),
							"raw literal used for %s; reference the named tunable (%s) instead",
							key.Name, want)
					}
				}
			case *ast.AssignStmt:
				for i, lhs := range st.Lhs {
					if i >= len(st.Rhs) {
						break
					}
					name := assignedName(lhs)
					if want, guarded := tunableNames[name]; guarded && isRawNumber(st.Rhs[i]) {
						pass.Reportf(st.Rhs[i].Pos(),
							"raw literal assigned to %s; reference the named tunable (%s) instead",
							name, want)
					}
				}
			}
			return true
		})
	}
	return nil
}

// assignedName extracts the terminal name of an assignment target.
func assignedName(lhs ast.Expr) string {
	switch e := lhs.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return e.Sel.Name
	}
	return ""
}

// isRawNumber reports whether e is a numeric literal or a constant
// expression built purely from literals (e.g. 64 << 10, 4*1024, 0.05).
// Floats joined with the NIC gather rates — the first float64 tunables.
func isRawNumber(e ast.Expr) bool {
	switch v := e.(type) {
	case *ast.BasicLit:
		return v.Kind == token.INT || v.Kind == token.FLOAT
	case *ast.BinaryExpr:
		return isRawNumber(v.X) && isRawNumber(v.Y)
	case *ast.ParenExpr:
		return isRawNumber(v.X)
	case *ast.UnaryExpr:
		return isRawNumber(v.X)
	}
	return false
}
