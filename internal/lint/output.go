package lint

import (
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
	"strings"
)

// This file renders a diagnostic list in machine-readable formats. All
// writers take the already-sorted output of Run/RunWithUniverse and a
// root directory against which file paths are relativized (slash-
// separated), so reports are stable across checkouts and CI runners.

// relPath rewrites filename relative to root with forward slashes, or
// returns it unchanged when it is not under root.
func relPath(root, filename string) string {
	if root == "" {
		return filepath.ToSlash(filename)
	}
	rel, err := filepath.Rel(root, filename)
	if err != nil || strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(filename)
	}
	return filepath.ToSlash(rel)
}

// jsonFinding is one diagnostic in the -json report.
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

// WriteJSON writes the diagnostics as a JSON array (one object per
// finding, sorted by position — the input order).
func WriteJSON(w io.Writer, root string, diags []Diagnostic) error {
	findings := make([]jsonFinding, 0, len(diags))
	for _, d := range diags {
		findings = append(findings, jsonFinding{
			Analyzer: d.Analyzer,
			File:     relPath(root, d.Pos.Filename),
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(findings)
}

// SARIF 2.1.0 minimal subset: one run, one rule per analyzer, one result
// per diagnostic. Enough for GitHub code scanning and SARIF viewers.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF writes the diagnostics as a SARIF 2.1.0 log. analyzers
// supplies the rule metadata; diagnostics referencing analyzers not in
// the list still get a bare ruleId.
func WriteSARIF(w io.Writer, root string, analyzers []*Analyzer, diags []Diagnostic) error {
	rules := make([]sarifRule, 0, len(analyzers))
	for _, a := range analyzers {
		rules = append(rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifMessage{Text: a.Doc},
		})
	}
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: relPath(root, d.Pos.Filename)},
					Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "mv2lint", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

// WriteGitHub writes the diagnostics as GitHub Actions workflow commands,
// which the runner turns into inline PR annotations.
func WriteGitHub(w io.Writer, root string, diags []Diagnostic) {
	for _, d := range diags {
		fmt.Fprintf(w, "::error file=%s,line=%d,col=%d,title=mv2lint/%s::%s\n",
			relPath(root, d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Analyzer,
			githubEscape(d.Message))
	}
}

// githubEscape encodes the characters the workflow-command grammar
// reserves in message data.
func githubEscape(s string) string {
	s = strings.ReplaceAll(s, "%", "%25")
	s = strings.ReplaceAll(s, "\r", "%0D")
	s = strings.ReplaceAll(s, "\n", "%0A")
	return s
}
