package lint

import (
	"bufio"
	"go/ast"
	"go/types"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// This file proves the acceptance criterion for the flow-sensitive
// rewrite: the golden packages contain seeded bugs (marked with a
// "seeded:flow-only" comment) that the pre-v2 syntactic analyzers
// demonstrably do NOT catch, while the dataflow versions do. The legacy
// analyzers below are faithful reimplementations of the shipped pre-v2
// checkLeaks/checkSpanEnds: one boolean per tracked object ("freed/ended
// somewhere?", "escaped somewhere?") with no path sensitivity.

func TestSeededFlowBugsEscapeLegacyAnalyzers(t *testing.T) {
	cases := []struct {
		path   string
		file   string
		legacy *Analyzer
		fresh  *Analyzer
	}{
		{"allocfree/internal/liba", "liba.go", legacyAllocFree, AllocFree},
		{"spanend", "spanend.go", legacySpanEnd, SpanEnd},
	}
	for _, tc := range cases {
		t.Run(tc.legacy.Name, func(t *testing.T) {
			src := filepath.Join(Testdata(), filepath.FromSlash(tc.path), tc.file)
			seeded := seededLines(t, src)
			if len(seeded) < 2 {
				t.Fatalf("%s: found %d seeded:flow-only bugs, want at least 2", tc.file, len(seeded))
			}

			loader := NewTreeLoader(Testdata())
			pkgs, err := loader.Load(tc.path)
			if err != nil {
				t.Fatalf("load %s: %v", tc.path, err)
			}
			legacyDiags, err := RunWithUniverse(loader.Packages(), pkgs, []*Analyzer{tc.legacy})
			if err != nil {
				t.Fatalf("legacy run: %v", err)
			}
			freshDiags, err := RunWithUniverse(loader.Packages(), pkgs, []*Analyzer{tc.fresh})
			if err != nil {
				t.Fatalf("fresh run: %v", err)
			}

			atLine := func(diags []Diagnostic, line int) bool {
				for _, d := range diags {
					if filepath.Base(d.Pos.Filename) == tc.file && d.Pos.Line == line {
						return true
					}
				}
				return false
			}
			for _, line := range seeded {
				if atLine(legacyDiags, line) {
					t.Errorf("%s:%d: seeded flow bug IS caught by the legacy syntactic analyzer; it does not demonstrate the flow-sensitive upgrade", tc.file, line)
				}
				if !atLine(freshDiags, line) {
					t.Errorf("%s:%d: seeded flow bug is NOT caught by the dataflow analyzer", tc.file, line)
				}
			}
		})
	}
}

// seededLines returns the 1-based line numbers of the `// want` markers
// that follow each "seeded:flow-only" doc comment in the file.
func seededLines(t *testing.T, path string) []int {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("open %s: %v", path, err)
	}
	defer f.Close()
	var lines []int
	pending := false
	n := 0
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		n++
		if strings.Contains(sc.Text(), "seeded:flow-only") {
			pending = true
			continue
		}
		if pending && strings.Contains(sc.Text(), "// want") {
			lines = append(lines, n)
			pending = false
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("scan %s: %v", path, err)
	}
	return lines
}

// ---------------------------------------------------------------------------
// Legacy allocfree (leak check only; the error-propagation check is
// unchanged in v2 and needs no comparison).

var legacyAllocFree = &Analyzer{
	Name: "legacy-allocfree",
	Doc:  "pre-v2 syntactic leak check: freed-anywhere / escaped-anywhere booleans",
	Run: func(pass *Pass) error {
		if !isInternalLib(pass.Pkg.Path()) {
			return nil
		}
		for _, file := range pass.Files {
			for _, decl := range file.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil || isTestFile(pass.Fset, fn.Pos()) {
					continue
				}
				legacyCheckLeaks(pass, fn)
			}
		}
		return nil
	},
}

type legacyAllocState struct {
	obj   types.Object
	pos   ast.Node
	freed bool
	moved bool
}

func legacyCheckLeaks(pass *Pass, fn *ast.FuncDecl) {
	info := pass.TypesInfo
	allocs := map[types.Object]*legacyAllocState{}

	ast.Inspect(fn, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			call, ok := as.Rhs[i].(*ast.CallExpr)
			if !ok || !isAllocCall(info, call) {
				continue
			}
			obj := objOfIdent(info, id)
			if obj == nil || allocs[obj] != nil {
				continue
			}
			allocs[obj] = &legacyAllocState{obj: obj, pos: call}
		}
		return true
	})
	if len(allocs) == 0 {
		return
	}

	ast.Inspect(fn, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.ReturnStmt:
			legacyMarkDeep(info, st, allocs, func(a *legacyAllocState) { a.moved = true })
			return false
		case *ast.CallExpr:
			legacyClassifyCallUse(info, st, allocs)
			return true
		case *ast.AssignStmt:
			for _, rhs := range st.Rhs {
				if !legacyMentionsDirect(info, rhs, allocs) {
					continue
				}
				if call, ok := rhs.(*ast.CallExpr); ok && isAllocCall(info, call) {
					continue
				}
				legacyMarkDirect(info, rhs, allocs, func(a *legacyAllocState) { a.moved = true })
			}
			return true
		case *ast.CompositeLit, *ast.UnaryExpr:
			if legacyMentionsDirect(info, n, allocs) {
				legacyMarkDirect(info, n, allocs, func(a *legacyAllocState) { a.moved = true })
			}
			return true
		}
		return true
	})

	for _, a := range allocs {
		if !a.freed && !a.moved {
			pass.Reportf(a.pos.Pos(),
				"device allocation assigned to %s is never freed and never escapes this function (missing Free)",
				a.obj.Name())
		}
	}
}

func legacyClassifyCallUse(info *types.Info, call *ast.CallExpr, allocs map[types.Object]*legacyAllocState) {
	mentioned := false
	for _, a := range call.Args {
		if legacyMentionsDirect(info, a, allocs) {
			mentioned = true
		}
	}
	if !mentioned {
		return
	}
	mark := func(f func(*legacyAllocState)) {
		for _, a := range call.Args {
			legacyMarkDirect(info, a, allocs, f)
		}
	}
	if strings.Contains(strings.ToLower(calleeName(call)), "free") {
		mark(func(st *legacyAllocState) { st.freed = true })
		return
	}
	if mi, ok := methodCall(info, call); ok && borrowingReceivers[[2]string{mi.pkgPath, mi.typeName}] {
		return
	}
	mark(func(st *legacyAllocState) { st.moved = true })
}

func legacyMentionsDirect(info *types.Info, node ast.Node, allocs map[types.Object]*legacyAllocState) bool {
	found := false
	ast.Inspect(node, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.CallExpr, *ast.FuncLit:
			return false
		}
		if id, ok := n.(*ast.Ident); ok && allocs[objOfIdent(info, id)] != nil {
			found = true
		}
		return !found
	})
	return found
}

func legacyMarkDirect(info *types.Info, node ast.Node, allocs map[types.Object]*legacyAllocState, f func(*legacyAllocState)) {
	ast.Inspect(node, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.CallExpr, *ast.FuncLit:
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if st := allocs[objOfIdent(info, id)]; st != nil {
				f(st)
			}
		}
		return true
	})
}

func legacyMarkDeep(info *types.Info, node ast.Node, allocs map[types.Object]*legacyAllocState, f func(*legacyAllocState)) {
	ast.Inspect(node, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if st := allocs[objOfIdent(info, id)]; st != nil {
				f(st)
			}
		}
		return true
	})
}

// ---------------------------------------------------------------------------
// Legacy spanend.

var legacySpanEnd = &Analyzer{
	Name: "legacy-spanend",
	Doc:  "pre-v2 syntactic span check: ended-anywhere / escaped-anywhere booleans",
	Run: func(pass *Pass) error {
		for _, file := range pass.Files {
			for _, decl := range file.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				legacyCheckSpanEnds(pass, fn)
			}
		}
		return nil
	},
}

type legacySpanState struct {
	obj     types.Object
	start   *ast.CallExpr
	ended   bool
	escaped bool
}

func legacyCheckSpanEnds(pass *Pass, fn *ast.FuncDecl) {
	info := pass.TypesInfo
	spans := map[types.Object]*legacySpanState{}

	ast.Inspect(fn, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != len(as.Lhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			call, ok := as.Rhs[i].(*ast.CallExpr)
			if !ok {
				continue
			}
			mi, ok := methodCall(info, call)
			if !ok || !isHubStart(mi) {
				continue
			}
			if obj := objOfIdent(info, id); obj != nil {
				spans[obj] = &legacySpanState{obj: obj, start: call}
			}
		}
		return true
	})
	if len(spans) == 0 {
		return
	}

	escape := func(st *legacySpanState) { st.escaped = true }
	markMentioned := func(node ast.Node, f func(*legacySpanState)) {
		ast.Inspect(node, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if st := spans[objOfIdent(info, id)]; st != nil {
					f(st)
				}
			}
			return true
		})
	}
	ast.Inspect(fn, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			markMentioned(n, escape)
		case *ast.AssignStmt:
			for _, rhs := range n.Rhs {
				if _, ok := rhs.(*ast.CallExpr); ok {
					continue
				}
				markMentioned(rhs, escape)
			}
		case *ast.CallExpr:
			mi, ok := methodCall(info, n)
			if ok && mi.pkgPath == obsPath && mi.typeName == "Span" {
				if id, ok := mi.recv.(*ast.Ident); ok {
					if st := spans[objOfIdent(info, id)]; st != nil {
						if mi.method == "End" {
							st.ended = true
						}
						return true
					}
				}
			}
			if ok && isHubStart(mi) {
				return true
			}
			for _, a := range n.Args {
				markMentioned(a, escape)
			}
		}
		return true
	})

	for _, st := range spans {
		if st.ended || st.escaped {
			continue
		}
		pass.Reportf(st.start.Pos(),
			"span %s is started but never ended in this function (Span.End must run on every path)",
			st.obj.Name())
	}
}
