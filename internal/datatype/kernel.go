// Lowering chunk plans to gather/scatter kernel launches. A KernelDesc is
// the device-side view of one chunk-aligned packed range: the simulated
// pack kernel's "arguments" (segment list, byte count) precomputed so the
// launch site derives nothing per chunk.
package datatype

import "mv2sim/internal/mem"

// KernelDesc describes one gather/scatter kernel lowered from a ChunkPlan:
// the packed byte range it covers and the plan whose precomputed segments
// the kernel walks. The zero value is an empty kernel.
type KernelDesc struct {
	p       *ChunkPlan
	packOff int
	n       int
}

// Kernel lowers the packed byte range [packOff, packOff+n) into a kernel
// descriptor. The range must be chunk-aligned per the PackRange contract.
func (p *ChunkPlan) Kernel(packOff, n int) KernelDesc {
	if n > 0 {
		p.checkAligned(packOff, n)
	}
	return KernelDesc{p: p, packOff: packOff, n: n}
}

// Bytes returns the packed bytes the kernel moves — its cell count under
// the gpu cost model's per-byte kernel rate.
func (d KernelDesc) Bytes() int { return d.n }

// Segments returns the number of contiguous pieces the kernel gathers or
// scatters.
func (d KernelDesc) Segments() int {
	if d.n == 0 {
		return 0
	}
	c0 := d.packOff / d.p.chunkBytes
	c1 := (d.packOff + d.n + d.p.chunkBytes - 1) / d.p.chunkBytes
	return d.p.index[c1] - d.p.index[c0]
}

// Pack applies the gather: dst addresses the packed range itself (byte 0
// of dst holds packed byte packOff), src is the typed buffer.
func (d KernelDesc) Pack(dst, src mem.Ptr) { d.p.PackRange(dst, src, d.packOff, d.n) }

// Unpack applies the scatter — the inverse of Pack.
func (d KernelDesc) Unpack(dst, src mem.Ptr) { d.p.UnpackRange(dst, src, d.packOff, d.n) }
