package datatype

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"mv2sim/internal/mem"
)

// packFixture builds a typed source buffer with recognizable contents and
// scratch space for packing.
type packFixture struct {
	src, packed, dst mem.Ptr
}

func newPackFixture(size int) packFixture {
	h := mem.NewHostSpace("h", 3*size)
	f := packFixture{
		src:    h.Base(),
		packed: h.Base().Add(size),
		dst:    h.Base().Add(2 * size),
	}
	mem.Fill(f.src, size, func(i int) byte { return byte(i*7 + 3) })
	return f
}

func TestVectorPackUnpackRoundTrip(t *testing.T) {
	v, _ := Vector(4, 2, 5, Float32)
	v.MustCommit()
	const count = 3
	span := v.Span(count)
	f := newPackFixture(span + 64)
	v.Pack(f.packed, f.src, count)
	v.Unpack(f.dst, f.packed, count)
	// Every byte the type touches must round-trip; untouched bytes stay 0.
	for _, s := range v.SegmentsOf(count) {
		if !mem.Equal(f.dst.Add(s.Off), f.src.Add(s.Off), s.Len) {
			t.Fatalf("segment %+v did not round-trip", s)
		}
	}
}

func TestPackGathersInTypeMapOrder(t *testing.T) {
	// Indexed with out-of-order displacements packs in map order, not
	// address order (MPI semantics).
	ix, _ := Indexed([]int{1, 1}, []int{2, 0}, Int32)
	ix.MustCommit()
	h := mem.NewHostSpace("h", 64)
	src := h.Base()
	mem.Fill(src, 16, func(i int) byte { return byte(i) })
	packed := h.Base().Add(32)
	ix.Pack(packed, src, 1)
	want := []byte{8, 9, 10, 11, 0, 1, 2, 3}
	if !reflect.DeepEqual(packed.Bytes(8), want) {
		t.Errorf("packed = %v, want %v", packed.Bytes(8), want)
	}
}

func TestStructPackRoundTrip(t *testing.T) {
	st, _ := Struct([]int{1, 2, 3}, []int{0, 8, 32}, []*Datatype{Int32, Float64, Byte})
	st.MustCommit()
	const count = 4
	f := newPackFixture(st.Span(count) + 64)
	st.Pack(f.packed, f.src, count)
	st.Unpack(f.dst, f.packed, count)
	for _, s := range st.SegmentsOf(count) {
		if !mem.Equal(f.dst.Add(s.Off), f.src.Add(s.Off), s.Len) {
			t.Fatalf("segment %+v did not round-trip", s)
		}
	}
}

func TestPackRangeMatchesFullPack(t *testing.T) {
	v, _ := Vector(8, 3, 7, Int32)
	v.MustCommit()
	const count = 5
	total := count * v.Size()
	f := newPackFixture(v.Span(count) + total + 64)
	full := mem.NewHostSpace("full", total)
	v.Pack(full.Base(), f.src, count)

	// Reassemble the packed stream from arbitrary chunk sizes.
	for _, chunk := range []int{1, 3, 16, 64, total} {
		got := mem.NewHostSpace("got", total)
		for off := 0; off < total; off += chunk {
			n := chunk
			if off+n > total {
				n = total - off
			}
			v.PackRange(got.Base().Add(off), f.src, count, off, n)
		}
		if !mem.Equal(got.Base(), full.Base(), total) {
			t.Errorf("chunk=%d: PackRange stream differs from full Pack", chunk)
		}
	}
}

func TestUnpackRangeMatchesFullUnpack(t *testing.T) {
	v, _ := Vector(6, 2, 4, Int32)
	v.MustCommit()
	const count = 4
	total := count * v.Size()
	span := v.Span(count)
	packed := mem.NewHostSpace("p", total)
	mem.Fill(packed.Base(), total, func(i int) byte { return byte(i ^ 0x3c) })

	want := mem.NewHostSpace("want", span+64)
	v.Unpack(want.Base(), packed.Base(), count)

	got := mem.NewHostSpace("got", span+64)
	for _, chunk := range []int{5, 32} {
		for i := range got.Base().Bytes(span + 64) {
			got.Base().Bytes(span + 64)[i] = 0
		}
		for off := 0; off < total; off += chunk {
			n := chunk
			if off+n > total {
				n = total - off
			}
			v.UnpackRange(got.Base(), packed.Base().Add(off), count, off, n)
		}
		if !mem.Equal(got.Base(), want.Base(), span) {
			t.Errorf("chunk=%d: UnpackRange result differs from full Unpack", chunk)
		}
	}
}

func TestPackRangeValidation(t *testing.T) {
	v, _ := Vector(2, 1, 2, Int32)
	v.MustCommit()
	h := mem.NewHostSpace("h", 256)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range PackRange did not panic")
		}
	}()
	v.PackRange(h.Base(), h.Base().Add(64), 1, 4, 8) // 4+8 > size 8
}

func TestPackRangeZeroLength(t *testing.T) {
	v, _ := Vector(2, 1, 2, Int32)
	v.MustCommit()
	h := mem.NewHostSpace("h", 256)
	v.PackRange(h.Base(), h.Base().Add(64), 1, 0, 0) // no-op
}

func TestUniform2DVector(t *testing.T) {
	v, _ := Vector(16, 1, 8, Float32)
	v.MustCommit()
	shape, ok := v.Uniform2D(1)
	if !ok {
		t.Fatal("vector not recognized as uniform 2D")
	}
	want := Shape2D{Width: 4, Pitch: 32, Rows: 16}
	if shape != want {
		t.Errorf("shape = %+v, want %+v", shape, want)
	}
}

func TestUniform2DMultiCount(t *testing.T) {
	// count=4 vector elements whose extent keeps the global stride uniform.
	// vector(4,1,2) of int32: segments every 8 bytes, extent 4+3*8=28...
	// use hvector to pin the extent so rows stay uniform across elements.
	hv, _ := Hvector(4, 4, 8, Byte)
	hv.MustCommit()
	rt, _ := Resized(hv, 0, 32)
	rt.MustCommit()
	shape, ok := rt.Uniform2D(3)
	if !ok {
		t.Fatal("resized hvector not uniform across elements")
	}
	want := Shape2D{Width: 4, Pitch: 8, Rows: 12}
	if shape != want {
		t.Errorf("shape = %+v, want %+v", shape, want)
	}
}

func TestUniform2DContiguous(t *testing.T) {
	ct, _ := Contiguous(64, Byte)
	ct.MustCommit()
	shape, ok := ct.Uniform2D(2)
	if !ok || shape.Rows != 1 || shape.Width != 128 {
		t.Errorf("shape = %+v ok=%v", shape, ok)
	}
}

func TestUniform2DRejectsIrregular(t *testing.T) {
	ix, _ := Indexed([]int{1, 2}, []int{0, 2}, Int32)
	ix.MustCommit()
	if _, ok := ix.Uniform2D(1); ok {
		t.Error("irregular indexed type reported uniform")
	}
	gaps, _ := Hindexed([]int{1, 1, 1}, []int{0, 8, 24}, Int32)
	gaps.MustCommit()
	if _, ok := gaps.Uniform2D(1); ok {
		t.Error("non-uniform stride reported uniform")
	}
}

func TestUniform2DRejectsOverlappingPitch(t *testing.T) {
	// Segments closer together than their width cannot be a 2D copy.
	// (Overlap is rejected at commit, so craft pitch < width via count>1
	// with extent smaller than size... which Resized permits.)
	hv, _ := Hvector(2, 8, 16, Byte)
	hv.MustCommit()
	rt, _ := Resized(hv, 0, 4) // elements overlap heavily
	rt.MustCommit()
	if _, ok := rt.Uniform2D(2); ok {
		t.Error("overlapping layout reported uniform")
	}
}

// randomType builds a random committed type over small parameters,
// avoiding overlap by construction (strictly increasing displacements).
func randomType(rng *rand.Rand) *Datatype {
	switch rng.Intn(4) {
	case 0:
		t, _ := Contiguous(1+rng.Intn(8), Int32)
		return t.MustCommit()
	case 1:
		blocklen := 1 + rng.Intn(4)
		stride := blocklen + rng.Intn(4)
		t, _ := Vector(1+rng.Intn(8), blocklen, stride, Int32)
		return t.MustCommit()
	case 2:
		n := 1 + rng.Intn(5)
		blocklens := make([]int, n)
		displs := make([]int, n)
		next := 0
		for i := 0; i < n; i++ {
			blocklens[i] = 1 + rng.Intn(3)
			displs[i] = next + rng.Intn(3)
			next = displs[i] + blocklens[i]
		}
		t, _ := Indexed(blocklens, displs, Int32)
		return t.MustCommit()
	default:
		inner, _ := Vector(1+rng.Intn(3), 1, 2, Int32)
		inner.MustCommit()
		t, _ := Hvector(1+rng.Intn(3), 1, inner.Span(1)+int(rng.Intn(16))*4, inner)
		return t.MustCommit()
	}
}

// Property: pack followed by unpack restores every touched byte, for random
// types, counts and contents.
func TestPropPackUnpackIdentity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dt := randomType(rng)
		count := 1 + rng.Intn(4)
		span := dt.Span(count)
		total := count * dt.Size()
		h := mem.NewHostSpace("h", 2*span+total+128)
		src := h.Base()
		packed := h.Base().Add(span + 32)
		dst := h.Base().Add(span + 32 + total + 32)
		mem.Fill(src, span, func(i int) byte { return byte(rng.Intn(256)) })
		dt.Pack(packed, src, count)
		dt.Unpack(dst, packed, count)
		for _, s := range dt.SegmentsOf(count) {
			if !mem.Equal(dst.Add(s.Off), src.Add(s.Off), s.Len) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: the IOV of a committed type covers exactly Size bytes with no
// overlap, and Size ≤ Span(1).
func TestPropIOVInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dt := randomType(rng)
		sum := 0
		for _, s := range dt.IOV() {
			if s.Len <= 0 {
				return false
			}
			sum += s.Len
		}
		if sum != dt.Size() {
			return false
		}
		if dt.Size() > dt.Span(1) {
			return false
		}
		// No pairwise overlap.
		iov := dt.IOV()
		for i := range iov {
			for j := 0; j < i; j++ {
				a, b := iov[i], iov[j]
				if a.Off < b.Off+b.Len && b.Off < a.Off+a.Len {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: PackRange over any partition of the packed stream equals the
// full Pack (the pipeline chunking correctness property).
func TestPropPackRangePartition(t *testing.T) {
	f := func(seed int64, cuts []uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		dt := randomType(rng)
		count := 1 + rng.Intn(3)
		total := count * dt.Size()
		if total == 0 {
			return true
		}
		span := dt.Span(count)
		h := mem.NewHostSpace("h", span+2*total+64)
		src := h.Base()
		mem.Fill(src, span, func(i int) byte { return byte(rng.Intn(256)) })
		full := h.Base().Add(span + 16)
		dt.Pack(full, src, count)
		got := h.Base().Add(span + 16 + total + 16)
		// Build a partition of [0,total) from the fuzz input.
		offsets := []int{0, total}
		for _, c := range cuts {
			offsets = append(offsets, int(c)%total)
		}
		sortInts(offsets)
		for i := 1; i < len(offsets); i++ {
			off, n := offsets[i-1], offsets[i]-offsets[i-1]
			dt.PackRange(got.Add(off), src, count, off, n)
		}
		return mem.Equal(got, full, total)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// Property: for types with a Uniform2D shape, packing via the shape (a 2D
// copy) gives identical bytes to the type-map Pack — the correctness
// guarantee behind offloading pack to cudaMemcpy2D.
func TestPropUniform2DEquivalentToPack(t *testing.T) {
	f := func(countRaw, blocklenRaw, strideRaw, nRaw uint8) bool {
		rows := 1 + int(countRaw%32)
		blocklen := 1 + int(blocklenRaw%4)
		stride := blocklen + 1 + int(strideRaw%4)
		count := 1 + int(nRaw%3)
		v, err := Vector(rows, blocklen, stride, Int32)
		if err != nil {
			return false
		}
		v.MustCommit()
		shape, ok := v.Uniform2D(count)
		if count > 1 {
			// Extent ends at the last block, so multi-count vectors are
			// uniform only if stride pattern continues; just skip those
			// the analyzer rejects (rejection is the safe direction).
			if !ok {
				return true
			}
		} else if !ok {
			return false
		}
		span := v.Span(count)
		total := count * v.Size()
		h := mem.NewHostSpace("h", span+2*total+32)
		src := h.Base()
		mem.Fill(src, span, func(i int) byte { return byte(i*11 + 1) })
		viaPack := h.Base().Add(span + 8)
		v.Pack(viaPack, src, count)
		via2D := h.Base().Add(span + 8 + total + 8)
		mem.Copy2D(via2D, shape.Width, src, shape.Pitch, shape.Width, shape.Rows)
		return mem.Equal(via2D, viaPack, total)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
