// Package datatype implements an MPI derived-datatype engine that operates
// on real bytes: type construction (contiguous, vector, hvector, indexed,
// hindexed, struct, subarray, resized), commit-time flattening to an
// I/O vector, full and partial pack/unpack, and shape analysis used by the
// GPU path to offload packing onto 2D copy engines.
//
// Semantics follow MPI-1.1/2.2: a datatype is a type map — a sequence of
// (displacement, basic type) pairs. Size is the number of real data bytes;
// extent is ub−lb, the stride applied between consecutive elements when
// count > 1. Lower bounds may be negative (as with MPI_Type_create_struct);
// callers must then point base past the front of their buffer, exactly as
// in MPI.
package datatype

import (
	"errors"
	"fmt"
	"sort"
)

// Kind identifies the constructor that built a type.
type Kind uint8

const (
	KindPredefined Kind = iota
	KindContiguous
	KindVector
	KindHvector
	KindIndexed
	KindHindexed
	KindStruct
	KindSubarray
	KindResized
)

func (k Kind) String() string {
	switch k {
	case KindPredefined:
		return "predefined"
	case KindContiguous:
		return "contiguous"
	case KindVector:
		return "vector"
	case KindHvector:
		return "hvector"
	case KindIndexed:
		return "indexed"
	case KindHindexed:
		return "hindexed"
	case KindStruct:
		return "struct"
	case KindSubarray:
		return "subarray"
	case KindResized:
		return "resized"
	default:
		return fmt.Sprintf("Kind(%d)", k)
	}
}

// Segment is one contiguous piece of a flattened type: Len bytes at byte
// displacement Off from the buffer base.
type Segment struct {
	Off int
	Len int
}

// Datatype is an immutable (after Commit) MPI datatype.
type Datatype struct {
	name string
	kind Kind
	size int // true data bytes per element
	lb   int // lowest displacement touched (or set by Resized)
	ub   int // highest displacement+len touched (or set by Resized)

	committed bool
	iov       []Segment // flattened type map of ONE element, coalesced
	prefix    []int     // prefix[i] = total packed bytes before iov[i]

	// Commit-time canonicalization: when the element's own type map is a
	// uniform row grid (equal widths, constant pitch), Uniform2D answers
	// analytically from these three fields instead of materializing
	// SegmentsOf(count). Only meaningful for len(iov) > 1; single-segment
	// and contiguous cases are derived directly from iov[0].
	elemUniform bool
	elemWidth   int
	elemPitch   int

	planCache // lazily built per-(count, chunkBytes) chunk plans
}

// Predefined basic types.
var (
	Byte    = predefined("MPI_BYTE", 1)
	Char    = predefined("MPI_CHAR", 1)
	Int32   = predefined("MPI_INT", 4)
	Int64   = predefined("MPI_LONG_LONG", 8)
	Float32 = predefined("MPI_FLOAT", 4)
	Float64 = predefined("MPI_DOUBLE", 8)
)

func predefined(name string, size int) *Datatype {
	t := &Datatype{name: name, kind: KindPredefined, size: size, lb: 0, ub: size}
	t.iov = []Segment{{0, size}}
	t.prefix = []int{0}
	t.committed = true
	return t
}

// Name returns a human-readable type name.
func (t *Datatype) Name() string { return t.name }

// Kind returns the constructor kind.
func (t *Datatype) Kind() Kind { return t.kind }

// Size returns the number of true data bytes in one element, like
// MPI_Type_size.
func (t *Datatype) Size() int { return t.size }

// Extent returns ub−lb, the element-to-element stride, like
// MPI_Type_get_extent.
func (t *Datatype) Extent() int { return t.ub - t.lb }

// LB and UB return the type bounds.
func (t *Datatype) LB() int { return t.lb }
func (t *Datatype) UB() int { return t.ub }

// Committed reports whether Commit has run.
func (t *Datatype) Committed() bool { return t.committed }

// String renders a short description.
func (t *Datatype) String() string {
	return fmt.Sprintf("%s(%s size=%d extent=%d)", t.name, t.kind, t.size, t.Extent())
}

var errUncommitted = errors.New("datatype: base type must be committed")

func checkBase(base *Datatype) error {
	if base == nil {
		return errors.New("datatype: nil base type")
	}
	if !base.committed {
		return errUncommitted
	}
	return nil
}

// Contiguous builds count consecutive copies of base
// (MPI_Type_contiguous).
func Contiguous(count int, base *Datatype) (*Datatype, error) {
	if err := checkBase(base); err != nil {
		return nil, err
	}
	if count < 0 {
		return nil, fmt.Errorf("datatype: negative count %d", count)
	}
	t := &Datatype{
		name: fmt.Sprintf("contig(%d,%s)", count, base.name),
		kind: KindContiguous,
		size: count * base.size,
	}
	t.boundsFromBlocks(blocksOf(count, 1, base.Extent(), base))
	t.iovFromBlocks(blocksOf(count, 1, base.Extent(), base))
	return t, nil
}

// Vector builds count blocks of blocklen base elements, with the starts of
// consecutive blocks stride base-extents apart (MPI_Type_vector).
func Vector(count, blocklen, stride int, base *Datatype) (*Datatype, error) {
	if err := checkBase(base); err != nil {
		return nil, err
	}
	if count < 0 || blocklen < 0 {
		return nil, fmt.Errorf("datatype: negative vector dimensions (%d,%d)", count, blocklen)
	}
	t := &Datatype{
		name: fmt.Sprintf("vector(%d,%d,%d,%s)", count, blocklen, stride, base.name),
		kind: KindVector,
		size: count * blocklen * base.size,
	}
	bl := blocksOf(count, blocklen, stride*base.Extent(), base)
	t.boundsFromBlocks(bl)
	t.iovFromBlocks(bl)
	return t, nil
}

// Hvector is Vector with the stride given in bytes
// (MPI_Type_create_hvector).
func Hvector(count, blocklen, strideBytes int, base *Datatype) (*Datatype, error) {
	if err := checkBase(base); err != nil {
		return nil, err
	}
	if count < 0 || blocklen < 0 {
		return nil, fmt.Errorf("datatype: negative hvector dimensions (%d,%d)", count, blocklen)
	}
	t := &Datatype{
		name: fmt.Sprintf("hvector(%d,%d,%dB,%s)", count, blocklen, strideBytes, base.name),
		kind: KindHvector,
		size: count * blocklen * base.size,
	}
	bl := blocksOf(count, blocklen, strideBytes, base)
	t.boundsFromBlocks(bl)
	t.iovFromBlocks(bl)
	return t, nil
}

// Indexed builds blocks of blocklens[i] base elements at displacements
// displs[i] measured in base extents (MPI_Type_indexed).
func Indexed(blocklens, displs []int, base *Datatype) (*Datatype, error) {
	if err := checkBase(base); err != nil {
		return nil, err
	}
	if len(blocklens) != len(displs) {
		return nil, fmt.Errorf("datatype: indexed lengths mismatch (%d vs %d)", len(blocklens), len(displs))
	}
	byteDispls := make([]int, len(displs))
	for i, d := range displs {
		byteDispls[i] = d * base.Extent()
	}
	t, err := hindexed(blocklens, byteDispls, base)
	if err != nil {
		return nil, err
	}
	t.kind = KindIndexed
	t.name = fmt.Sprintf("indexed(%d blocks,%s)", len(blocklens), base.name)
	return t, nil
}

// Hindexed is Indexed with displacements in bytes
// (MPI_Type_create_hindexed).
func Hindexed(blocklens, byteDispls []int, base *Datatype) (*Datatype, error) {
	if err := checkBase(base); err != nil {
		return nil, err
	}
	if len(blocklens) != len(byteDispls) {
		return nil, fmt.Errorf("datatype: hindexed lengths mismatch (%d vs %d)", len(blocklens), len(byteDispls))
	}
	t, err := hindexed(blocklens, byteDispls, base)
	if err != nil {
		return nil, err
	}
	t.name = fmt.Sprintf("hindexed(%d blocks,%s)", len(blocklens), base.name)
	return t, nil
}

func hindexed(blocklens, byteDispls []int, base *Datatype) (*Datatype, error) {
	var bl []block
	size := 0
	for i := range blocklens {
		if blocklens[i] < 0 {
			return nil, fmt.Errorf("datatype: negative block length %d", blocklens[i])
		}
		bl = append(bl, block{off: byteDispls[i], count: blocklens[i], base: base})
		size += blocklens[i] * base.size
	}
	t := &Datatype{kind: KindHindexed, size: size}
	t.boundsFromBlocks(bl)
	t.iovFromBlocks(bl)
	return t, nil
}

// Struct builds a heterogeneous sequence: blocklens[i] elements of
// types[i] at byte displacement byteDispls[i] (MPI_Type_create_struct).
func Struct(blocklens, byteDispls []int, types []*Datatype) (*Datatype, error) {
	if len(blocklens) != len(byteDispls) || len(blocklens) != len(types) {
		return nil, errors.New("datatype: struct argument lengths mismatch")
	}
	var bl []block
	size := 0
	for i := range blocklens {
		if err := checkBase(types[i]); err != nil {
			return nil, err
		}
		if blocklens[i] < 0 {
			return nil, fmt.Errorf("datatype: negative block length %d", blocklens[i])
		}
		bl = append(bl, block{off: byteDispls[i], count: blocklens[i], base: types[i]})
		size += blocklens[i] * types[i].size
	}
	t := &Datatype{
		name: fmt.Sprintf("struct(%d members)", len(blocklens)),
		kind: KindStruct,
		size: size,
	}
	t.boundsFromBlocks(bl)
	t.iovFromBlocks(bl)
	return t, nil
}

// Order selects array storage order for Subarray.
type Order uint8

const (
	// RowMajor is C order: the last dimension is contiguous.
	RowMajor Order = iota
	// ColMajor is Fortran order: the first dimension is contiguous.
	ColMajor
)

// Subarray selects a subsizes-shaped region starting at starts within a
// sizes-shaped array of base elements (MPI_Type_create_subarray).
func Subarray(sizes, subsizes, starts []int, order Order, base *Datatype) (*Datatype, error) {
	if err := checkBase(base); err != nil {
		return nil, err
	}
	n := len(sizes)
	if n == 0 || len(subsizes) != n || len(starts) != n {
		return nil, errors.New("datatype: subarray dimension mismatch")
	}
	for d := 0; d < n; d++ {
		if sizes[d] <= 0 || subsizes[d] <= 0 || starts[d] < 0 || starts[d]+subsizes[d] > sizes[d] {
			return nil, fmt.Errorf("datatype: subarray dim %d out of range (size=%d sub=%d start=%d)",
				d, sizes[d], subsizes[d], starts[d])
		}
	}
	// Normalize to row-major by reversing dimension order for ColMajor.
	sz, sub, st := sizes, subsizes, starts
	if order == ColMajor {
		sz, sub, st = reverse(sizes), reverse(subsizes), reverse(starts)
	}
	// Row-major strides in base elements.
	stride := make([]int, n)
	stride[n-1] = 1
	for d := n - 2; d >= 0; d-- {
		stride[d] = stride[d+1] * sz[d+1]
	}
	// Emit one block per contiguous run along the innermost dimension.
	var bl []block
	idx := make([]int, n-1)
	for {
		off := st[n-1] * stride[n-1]
		for d := 0; d < n-1; d++ {
			off += (st[d] + idx[d]) * stride[d]
		}
		bl = append(bl, block{off: off * base.Extent(), count: sub[n-1], base: base})
		// Advance the outer-dimension odometer.
		d := n - 2
		for ; d >= 0; d-- {
			idx[d]++
			if idx[d] < sub[d] {
				break
			}
			idx[d] = 0
		}
		if d < 0 {
			break
		}
	}
	size := base.size
	for d := 0; d < n; d++ {
		size *= subsizes[d]
	}
	t := &Datatype{
		name: fmt.Sprintf("subarray(%dd,%s)", n, base.name),
		kind: KindSubarray,
		size: size,
	}
	t.iovFromBlocks(bl)
	// Subarray extent spans the whole array, per the MPI standard.
	t.lb = 0
	full := base.Extent()
	for d := 0; d < n; d++ {
		full *= sizes[d]
	}
	t.ub = full
	return t, nil
}

func reverse(a []int) []int {
	out := make([]int, len(a))
	for i, v := range a {
		out[len(a)-1-i] = v
	}
	return out
}

// Resized overrides a type's lower bound and extent
// (MPI_Type_create_resized). The type map is unchanged.
func Resized(base *Datatype, lb, extent int) (*Datatype, error) {
	if err := checkBase(base); err != nil {
		return nil, err
	}
	if extent < 0 {
		return nil, fmt.Errorf("datatype: negative extent %d", extent)
	}
	t := &Datatype{
		name: fmt.Sprintf("resized(%s,lb=%d,ext=%d)", base.name, lb, extent),
		kind: KindResized,
		size: base.size,
		lb:   lb,
		ub:   lb + extent,
	}
	t.iov = append([]Segment(nil), base.iov...)
	return t, nil
}

// block is an intermediate flattening unit: count copies of base starting
// at byte offset off, laid out contiguously by base extent.
type block struct {
	off    int
	count  int
	base   *Datatype
	stride int // byte stride between copies; 0 means base extent
}

// blocksOf describes count blocks of blocklen base elements with the given
// byte stride between block starts.
func blocksOf(count, blocklen, strideBytes int, base *Datatype) []block {
	bl := make([]block, 0, count)
	for i := 0; i < count; i++ {
		bl = append(bl, block{off: i * strideBytes, count: blocklen, base: base})
	}
	return bl
}

// boundsFromBlocks computes lb/ub over the block list. An empty type map
// gets lb=ub=0.
func (t *Datatype) boundsFromBlocks(bl []block) {
	first := true
	for _, b := range bl {
		if b.count == 0 {
			continue
		}
		lo := b.off + b.base.lb
		hi := b.off + (b.count-1)*b.base.Extent() + b.base.ub
		if first {
			t.lb, t.ub = lo, hi
			first = false
			continue
		}
		if lo < t.lb {
			t.lb = lo
		}
		if hi > t.ub {
			t.ub = hi
		}
	}
}

// iovFromBlocks flattens the block list into t.iov with adjacent-segment
// coalescing.
func (t *Datatype) iovFromBlocks(bl []block) {
	var iov []Segment
	emit := func(off, n int) {
		if n == 0 {
			return
		}
		if len(iov) > 0 && iov[len(iov)-1].Off+iov[len(iov)-1].Len == off {
			iov[len(iov)-1].Len += n
			return
		}
		iov = append(iov, Segment{off, n})
	}
	for _, b := range bl {
		for i := 0; i < b.count; i++ {
			elemOff := b.off + i*b.base.Extent()
			for _, s := range b.base.iov {
				emit(elemOff+s.Off, s.Len)
			}
		}
	}
	t.iov = iov
}

// Commit finalizes the type for communication (MPI_Type_commit): it builds
// the packed-offset prefix table used by partial packing. Committing twice
// is a no-op.
func (t *Datatype) Commit() error {
	if t.committed {
		return nil
	}
	if t.overlaps() {
		return fmt.Errorf("datatype: %s has overlapping segments; packing would be ambiguous", t.name)
	}
	t.prefix = make([]int, len(t.iov))
	sum := 0
	for i, s := range t.iov {
		t.prefix[i] = sum
		sum += s.Len
	}
	if sum != t.size {
		return fmt.Errorf("datatype: internal error: iov covers %d bytes, size is %d", sum, t.size)
	}
	t.canonicalize()
	t.committed = true
	return nil
}

// canonicalize precomputes the per-element row shape the analytic
// Uniform2D fast path answers from. Committed type maps are coalesced and
// overlap-free, so a uniform element always has pitch > width; the guard
// also rejects unsorted (negative-pitch) struct layouts.
func (t *Datatype) canonicalize() {
	t.elemUniform = false
	m := len(t.iov)
	if m < 2 {
		return
	}
	w := t.iov[0].Len
	pitch := t.iov[1].Off - t.iov[0].Off
	if pitch <= w {
		return
	}
	for i := 1; i < m; i++ {
		if t.iov[i].Len != w || t.iov[i].Off-t.iov[i-1].Off != pitch {
			return
		}
	}
	t.elemUniform, t.elemWidth, t.elemPitch = true, w, pitch
}

// MustCommit commits or panics; for statically correct test/benchmark
// types.
func (t *Datatype) MustCommit() *Datatype {
	if err := t.Commit(); err != nil {
		panic(err)
	}
	return t
}

// overlaps reports whether any two segments of one element overlap.
// (Overlap across elements — extent smaller than the data span — is legal
// for sends in MPI; within one element it would make unpacking ambiguous,
// and MPI forbids it for receives. We reject it at commit for simplicity.)
// Segments are sorted by offset and checked pairwise-adjacent, so commit
// stays O(n log n) even for types with millions of segments.
func (t *Datatype) overlaps() bool {
	segs := append([]Segment(nil), t.iov...)
	sort.Slice(segs, func(i, j int) bool { return segs[i].Off < segs[j].Off })
	for i := 1; i < len(segs); i++ {
		if segs[i].Off < segs[i-1].Off+segs[i-1].Len {
			return true
		}
	}
	return false
}

// IOV returns the flattened segment list of one element. The slice is
// shared; callers must not mutate it.
func (t *Datatype) IOV() []Segment { return t.iov }

// IsContiguous reports whether count elements of t occupy one gap-free
// byte range starting at displacement 0 — the layout for which pack and
// unpack degenerate to a single memcpy.
func (t *Datatype) IsContiguous() bool {
	if len(t.iov) == 0 {
		return true
	}
	return len(t.iov) == 1 && t.iov[0].Off == 0 && t.iov[0].Len == t.size && t.size == t.Extent()
}

// SegmentCount returns the number of distinct contiguous pieces in count
// elements, after cross-element coalescing. It is the per-segment cost
// driver for host packing models.
func (t *Datatype) SegmentCount(count int) int {
	if count <= 0 {
		return 0
	}
	if t.IsContiguous() {
		return 1
	}
	return count * len(t.iov)
}

// SegmentsOf returns the absolute segments of `count` elements: element i
// contributes its IOV shifted by i*Extent().
func (t *Datatype) SegmentsOf(count int) []Segment {
	out := make([]Segment, 0, count*len(t.iov))
	for i := 0; i < count; i++ {
		base := i * t.Extent()
		for _, s := range t.iov {
			if len(out) > 0 && out[len(out)-1].Off+out[len(out)-1].Len == base+s.Off {
				out[len(out)-1].Len += s.Len
				continue
			}
			out = append(out, Segment{base + s.Off, s.Len})
		}
	}
	return out
}

// Span returns the number of buffer bytes touched by count elements,
// measured from base+lb: (count-1)*extent + (ub-lb) for count > 0.
func (t *Datatype) Span(count int) int {
	if count <= 0 {
		return 0
	}
	return (count-1)*t.Extent() + (t.ub - t.lb)
}
