package datatype

import (
	"math/rand"
	"testing"

	"mv2sim/internal/mem"
)

// planTestTypes builds a representative committed-type zoo: uniform
// vectors, contiguous runs, irregular indexed maps, structs, resized
// extents, and nested constructions.
func planTestTypes(t *testing.T) map[string]*Datatype {
	t.Helper()
	types := map[string]*Datatype{}
	add := func(name string, dt *Datatype, err error) {
		t.Helper()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		types[name] = dt.MustCommit()
	}
	types["byte"] = Byte
	types["double"] = Float64
	v1, err := Vector(16, 4, 8, Int32)
	add("vector", v1, err)
	v2, err := Vector(7, 1, 5, Float32)
	add("column", v2, err)
	c1, err := Contiguous(12, Float64)
	add("contig", c1, err)
	ix, err := Indexed([]int{3, 1, 5, 2}, []int{9, 0, 20, 3}, Int32)
	add("indexed", ix, err)
	st, err := Struct([]int{1, 2, 3}, []int{0, 8, 32}, []*Datatype{Int32, Float64, Byte})
	add("struct", st, err)
	hv, err := Hvector(5, 3, 40, Float64)
	add("hvector", hv, err)
	inner, err := Vector(3, 2, 4, Int32)
	if err != nil {
		t.Fatal(err)
	}
	nest, err := Contiguous(2, inner.MustCommit())
	add("nested", nest, err)
	rz, err := Resized(v1, -8, v1.Span(1)+24)
	add("resized", rz, err)
	sa, err := Subarray([]int{8, 8}, []int{4, 4}, []int{2, 2}, RowMajor, Float32)
	add("subarray", sa, err)
	return types
}

// TestUniform2DMatchesSlowPath pins the analytic commit-time Uniform2D
// against the original segment-expansion derivation for the whole type
// zoo and a spread of counts.
func TestUniform2DMatchesSlowPath(t *testing.T) {
	for name, dt := range planTestTypes(t) {
		for _, count := range []int{0, 1, 2, 3, 5, 17} {
			fast, okFast := dt.Uniform2D(count)
			slow, okSlow := dt.uniform2DSlow(count)
			if okFast != okSlow || (okFast && fast != slow) {
				t.Errorf("%s count=%d: analytic (%+v,%v) != slow (%+v,%v)",
					name, count, fast, okFast, slow, okSlow)
			}
		}
	}
}

// TestUniform2DResizedOverlap covers the extent-smaller-than-span corner:
// rows of consecutive elements overlap, so no 2D shape exists for
// count > 1 even though one element is a single segment.
func TestUniform2DResizedOverlap(t *testing.T) {
	base, err := Contiguous(4, Byte)
	if err != nil {
		t.Fatal(err)
	}
	rz, err := Resized(base.MustCommit(), 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	rz.MustCommit()
	if _, ok := rz.Uniform2D(1); !ok {
		t.Error("single element must still be a 1-row shape")
	}
	if sh, ok := rz.Uniform2D(3); ok {
		t.Errorf("overlapping rows reported uniform: %+v", sh)
	}
	if _, okSlow := rz.uniform2DSlow(3); okSlow {
		t.Error("slow path disagrees on overlap case")
	}
}

// TestChunkPlanMatchesPackRange checks that packing and unpacking through
// the cached plan is byte-identical to the uncached PackRange walk, over
// several chunk sizes including non-divisors of the total.
func TestChunkPlanMatchesPackRange(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for name, dt := range planTestTypes(t) {
		for _, count := range []int{1, 3, 8} {
			total := count * dt.Size()
			if total == 0 {
				continue
			}
			span := dt.Span(count)
			pad := 0
			if dt.LB() < 0 {
				pad = -dt.LB()
			}
			for _, chunkBytes := range []int{16, 64, 100, total, total + 99} {
				plan := dt.ChunkPlan(count, chunkBytes)
				if plan.Total() != total {
					t.Fatalf("%s: plan total %d != %d", name, plan.Total(), total)
				}
				if got, want := plan.Chunks(), (total+chunkBytes-1)/chunkBytes; got != want {
					t.Fatalf("%s: plan chunks %d != %d", name, got, want)
				}
				h := mem.NewHostSpace("h", pad+span+2*total+64)
				src := h.Base().Add(pad)
				mem.Fill(h.Base(), pad+span, func(i int) byte { return byte(rng.Intn(256)) })
				wantPacked := h.Base().Add(pad + span)
				gotPacked := h.Base().Add(pad + span + total)
				dt.PackRange(wantPacked, src, count, 0, total)
				sum := 0
				for c := 0; c < plan.Chunks(); c++ {
					n := plan.ChunkLen(c)
					sum += n
					plan.PackChunk(gotPacked.Add(c*chunkBytes), src, c)
					if plan.SegmentCount(c) <= 0 {
						t.Fatalf("%s: chunk %d has no segments", name, c)
					}
				}
				if sum != total {
					t.Fatalf("%s: chunk lengths sum to %d, want %d", name, sum, total)
				}
				if !mem.Equal(gotPacked, wantPacked, total) {
					t.Fatalf("%s count=%d chunk=%d: plan pack differs from PackRange",
						name, count, chunkBytes)
				}
				// Round-trip: scatter back into a zeroed buffer and compare
				// the touched bytes, chunk-run by chunk-run.
				h2 := mem.NewHostSpace("h2", pad+span)
				dst := h2.Base().Add(pad)
				for off := 0; off < total; {
					runChunks := 1 + rng.Intn(3)
					n := runChunks * chunkBytes
					if off+n > total {
						n = total - off
					}
					plan.UnpackRange(dst, gotPacked.Add(off), off, n)
					off += n
				}
				for _, s := range dt.SegmentsOf(count) {
					if !mem.Equal(dst.Add(s.Off), src.Add(s.Off), s.Len) {
						t.Fatalf("%s: segment %+v did not round-trip through plan", name, s)
					}
				}
			}
		}
	}
}

// TestChunkPlanCached checks the lazy cache returns the identical plan
// object for repeated geometry and distinct objects for distinct
// geometry.
func TestChunkPlanCached(t *testing.T) {
	v, _ := Vector(64, 4, 8, Int32)
	v.MustCommit()
	a := v.ChunkPlan(10, 256)
	if b := v.ChunkPlan(10, 256); a != b {
		t.Error("same geometry returned a rebuilt plan")
	}
	if c := v.ChunkPlan(10, 512); c == a {
		t.Error("different chunk size returned the cached plan")
	}
	if d := v.ChunkPlan(9, 256); d == a {
		t.Error("different count returned the cached plan")
	}
}

// TestChunkPlanSteadyStateAllocs pins the zero-allocation contract of the
// steady-state chunk path: after the plan is built, packing a chunk
// allocates nothing.
func TestChunkPlanSteadyStateAllocs(t *testing.T) {
	ix, _ := Indexed([]int{3, 1, 5, 2}, []int{9, 0, 20, 3}, Int32)
	ix.MustCommit()
	const count = 32
	total := count * ix.Size()
	h := mem.NewHostSpace("h", ix.Span(count)+total)
	src, packed := h.Base(), h.Base().Add(ix.Span(count))
	plan := ix.ChunkPlan(count, 64)
	c := 0
	if avg := testing.AllocsPerRun(200, func() {
		plan.PackChunk(packed.Add(c*64), src, c)
		c = (c + 1) % plan.Chunks()
	}); avg != 0 {
		t.Errorf("steady-state PackChunk allocates %.1f times per chunk, want 0", avg)
	}
	if avg := testing.AllocsPerRun(200, func() {
		_, _ = ix.Uniform2D(count)
	}); avg != 0 {
		t.Errorf("analytic Uniform2D allocates %.1f times per call, want 0", avg)
	}
}

// TestChunkPlanAlignment checks the chunk-alignment contract is enforced.
func TestChunkPlanAlignment(t *testing.T) {
	v, _ := Vector(8, 4, 8, Int32)
	v.MustCommit()
	plan := v.ChunkPlan(4, 32)
	h := mem.NewHostSpace("h", v.Span(4)+plan.Total())
	defer func() {
		if recover() == nil {
			t.Error("misaligned plan range did not panic")
		}
	}()
	plan.PackRange(h.Base().Add(v.Span(4)), h.Base(), 8, 16)
}
