package datatype

import "fmt"

// IndexedBlock builds blocks of equal length blocklen at displacements
// displs, measured in base extents (MPI_Type_create_indexed_block).
func IndexedBlock(blocklen int, displs []int, base *Datatype) (*Datatype, error) {
	if blocklen < 0 {
		return nil, fmt.Errorf("datatype: negative block length %d", blocklen)
	}
	blocklens := make([]int, len(displs))
	for i := range blocklens {
		blocklens[i] = blocklen
	}
	t, err := Indexed(blocklens, displs, base)
	if err != nil {
		return nil, err
	}
	t.name = fmt.Sprintf("indexedBlock(%d x %d,%s)", len(displs), blocklen, base.name)
	return t, nil
}

// PackSize returns the buffer space needed to pack count elements of t,
// like MPI_Pack_size (without the MPI header slack: exactly the data).
func (t *Datatype) PackSize(count int) int {
	return count * t.size
}

// Envelope describes how a type was constructed, in the spirit of
// MPI_Type_get_envelope: the constructor kind and its integer parameters.
type Envelope struct {
	Kind Kind
	// NumSegments is the flattened segment count of one element.
	NumSegments int
	// Size, Extent, LB, UB mirror the type queries.
	Size, Extent, LB, UB int
}

// GetEnvelope returns the constructor summary.
func (t *Datatype) GetEnvelope() Envelope {
	return Envelope{
		Kind:        t.kind,
		NumSegments: len(t.iov),
		Size:        t.size,
		Extent:      t.Extent(),
		LB:          t.lb,
		UB:          t.ub,
	}
}

// TrueExtent returns the actual span of data (min displacement and span
// covering all touched bytes), like MPI_Type_get_true_extent — unaffected
// by Resized bounds.
func (t *Datatype) TrueExtent() (trueLB, trueExtent int) {
	if len(t.iov) == 0 {
		return 0, 0
	}
	lo, hi := t.iov[0].Off, t.iov[0].Off+t.iov[0].Len
	for _, s := range t.iov[1:] {
		if s.Off < lo {
			lo = s.Off
		}
		if s.Off+s.Len > hi {
			hi = s.Off + s.Len
		}
	}
	return lo, hi - lo
}

// GetElements returns how many complete elements of t fit in nbytes of
// packed data, and whether nbytes is an exact multiple (MPI_Get_elements'
// common use).
func (t *Datatype) GetElements(nbytes int) (count int, exact bool) {
	if t.size == 0 {
		return 0, nbytes == 0
	}
	return nbytes / t.size, nbytes%t.size == 0
}
