package datatype

import (
	"reflect"
	"testing"

	"mv2sim/internal/mem"
)

func TestIndexedBlock(t *testing.T) {
	ib, err := IndexedBlock(2, []int{0, 4, 8}, Int32)
	if err != nil {
		t.Fatal(err)
	}
	ib.MustCommit()
	if ib.Size() != 24 {
		t.Errorf("size = %d", ib.Size())
	}
	want := []Segment{{0, 8}, {16, 8}, {32, 8}}
	if !reflect.DeepEqual(ib.IOV(), want) {
		t.Errorf("iov = %v, want %v", ib.IOV(), want)
	}
	if _, err := IndexedBlock(-1, []int{0}, Int32); err == nil {
		t.Error("negative blocklen accepted")
	}
}

func TestPackSize(t *testing.T) {
	v, _ := Vector(4, 2, 5, Float32)
	v.MustCommit()
	if v.PackSize(3) != 3*32 {
		t.Errorf("PackSize = %d", v.PackSize(3))
	}
}

func TestGetEnvelope(t *testing.T) {
	v, _ := Vector(3, 2, 5, Float32)
	v.MustCommit()
	env := v.GetEnvelope()
	if env.Kind != KindVector || env.NumSegments != 3 || env.Size != 24 || env.Extent != 48 {
		t.Errorf("envelope = %+v", env)
	}
}

func TestTrueExtent(t *testing.T) {
	// Resized changes Extent but not TrueExtent.
	hv, _ := Hvector(3, 4, 16, Byte)
	hv.MustCommit()
	rt, _ := Resized(hv, -100, 500)
	rt.MustCommit()
	lb, ext := rt.TrueExtent()
	if lb != 0 || ext != 36 {
		t.Errorf("true extent = (%d,%d), want (0,36)", lb, ext)
	}
	if rt.Extent() != 500 {
		t.Errorf("resized extent = %d", rt.Extent())
	}
	z, _ := Contiguous(0, Byte)
	z.MustCommit()
	if lb, ext := z.TrueExtent(); lb != 0 || ext != 0 {
		t.Errorf("empty true extent = (%d,%d)", lb, ext)
	}
}

func TestGetElements(t *testing.T) {
	v, _ := Vector(2, 1, 2, Int32) // size 8
	v.MustCommit()
	if n, exact := v.GetElements(24); n != 3 || !exact {
		t.Errorf("GetElements(24) = (%d,%v)", n, exact)
	}
	if n, exact := v.GetElements(20); n != 2 || exact {
		t.Errorf("GetElements(20) = (%d,%v)", n, exact)
	}
	z, _ := Contiguous(0, Byte)
	z.MustCommit()
	if n, exact := z.GetElements(0); n != 0 || !exact {
		t.Errorf("empty GetElements = (%d,%v)", n, exact)
	}
}

func TestIsContiguousAndSegmentCount(t *testing.T) {
	ct, _ := Contiguous(8, Int32)
	ct.MustCommit()
	if !ct.IsContiguous() || ct.SegmentCount(5) != 1 {
		t.Error("contiguous type misclassified")
	}
	v, _ := Vector(4, 1, 2, Int32)
	v.MustCommit()
	if v.IsContiguous() {
		t.Error("strided vector classified contiguous")
	}
	if v.SegmentCount(3) != 12 {
		t.Errorf("SegmentCount = %d, want 12", v.SegmentCount(3))
	}
	if v.SegmentCount(0) != 0 {
		t.Error("SegmentCount(0) != 0")
	}
	// A vector with blocklen == stride coalesces to contiguous.
	flat, _ := Vector(4, 3, 3, Int32)
	flat.MustCommit()
	if !flat.IsContiguous() {
		t.Error("degenerate vector not contiguous")
	}
}

func TestIndexedBlockRoundTrip(t *testing.T) {
	ib, _ := IndexedBlock(3, []int{1, 6, 11}, Int32)
	ib.MustCommit()
	// Buffers are addressed from the base pointer, so they must span
	// [0, UB), not just the lb..ub window Span reports.
	need := ib.UB()
	h := mem.NewHostSpace("h", 2*need+ib.Size())
	src := h.Base()
	mem.Fill(src, need, func(i int) byte { return byte(i + 1) })
	packed := h.Base().Add(need)
	dst := h.Base().Add(need + ib.Size())
	ib.Pack(packed, src, 1)
	ib.Unpack(dst, packed, 1)
	for _, s := range ib.SegmentsOf(1) {
		if !mem.Equal(dst.Add(s.Off), src.Add(s.Off), s.Len) {
			t.Fatalf("segment %+v mismatch", s)
		}
	}
}
