package datatype

import (
	"testing"

	"mv2sim/internal/mem"
)

// totalSegs sums the per-chunk segment counts — the whole-stream segment
// count a full-range descriptor must report.
func totalSegs(p *ChunkPlan) int {
	n := 0
	for c := 0; c < p.Chunks(); c++ {
		n += p.SegmentCount(c)
	}
	return n
}

// TestKernelDescRoundTrip lowers chunk-aligned ranges of the plan-test
// type zoo to kernel descriptors and checks the descriptor walk is
// byte-identical to the plan's own PackRange/UnpackRange.
func TestKernelDescRoundTrip(t *testing.T) {
	for name, dt := range planTestTypes(t) {
		const count = 6
		for _, chunkBytes := range []int{32, 128, 1 << 20} {
			plan := dt.ChunkPlan(count, chunkBytes)
			total := plan.Total()
			span := dt.Span(count)
			h := mem.NewHostSpace("h", 2*span+2*total)
			src := h.Base()
			mem.Fill(src, span, func(i int) byte { return byte(i*11 + 3) })
			want := src.Add(span)
			got := want.Add(total)
			back := got.Add(total)

			// Whole stream through one descriptor.
			d := plan.Kernel(0, total)
			if d.Bytes() != total {
				t.Fatalf("%s chunk=%d: Bytes = %d, want %d", name, chunkBytes, d.Bytes(), total)
			}
			if segs := d.Segments(); segs != totalSegs(plan) {
				t.Fatalf("%s chunk=%d: Segments = %d, want %d", name, chunkBytes, segs, totalSegs(plan))
			}
			plan.PackRange(want, src, 0, total)
			d.Pack(got, src)
			if !mem.Equal(got, want, total) {
				t.Fatalf("%s chunk=%d: descriptor pack differs from PackRange", name, chunkBytes)
			}
			d.Unpack(back, got)
			for _, s := range dt.SegmentsOf(count) {
				if !mem.Equal(back.Add(s.Off), src.Add(s.Off), s.Len) {
					t.Fatalf("%s chunk=%d: descriptor unpack corrupted segment %+v", name, chunkBytes, s)
				}
			}

			// Per-chunk descriptors cover the stream without overlap.
			segSum := 0
			for off := 0; off < total; off += chunkBytes {
				n := min(chunkBytes, total-off)
				dc := plan.Kernel(off, n)
				segSum += dc.Segments()
				dc.Pack(got.Add(off), src)
			}
			if segSum != totalSegs(plan) {
				t.Fatalf("%s chunk=%d: per-chunk segments sum %d, want %d", name, chunkBytes, segSum, totalSegs(plan))
			}
			if !mem.Equal(got, want, total) {
				t.Fatalf("%s chunk=%d: per-chunk descriptor pack differs from PackRange", name, chunkBytes)
			}
		}
	}
}

func TestKernelDescAlignment(t *testing.T) {
	v, _ := Vector(8, 4, 8, Byte)
	v.MustCommit()
	plan := v.ChunkPlan(4, 32)
	defer func() {
		if recover() == nil {
			t.Error("Kernel(8, 16) on a 32-byte-chunk plan should panic")
		}
	}()
	plan.Kernel(8, 16)
}

func TestKernelDescEmpty(t *testing.T) {
	v, _ := Vector(8, 4, 8, Byte)
	v.MustCommit()
	plan := v.ChunkPlan(4, 32)
	var zero KernelDesc
	if zero.Bytes() != 0 || zero.Segments() != 0 {
		t.Error("zero KernelDesc must be empty")
	}
	// n == 0 skips the alignment check (an empty tail chunk is legal at
	// any offset) and moves nothing.
	d := plan.Kernel(7, 0)
	if d.Bytes() != 0 || d.Segments() != 0 {
		t.Error("empty range descriptor must report zero bytes and segments")
	}
	h := mem.NewHostSpace("h", 64)
	d.Pack(h.Base(), h.Base().Add(32))
}
