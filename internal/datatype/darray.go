package datatype

import "fmt"

// Distribution selects how one dimension of a distributed array is divided
// among processes (MPI_Type_create_darray).
type Distribution uint8

const (
	// DistNone keeps the dimension undistributed: every process holds it
	// whole (MPI_DISTRIBUTE_NONE).
	DistNone Distribution = iota
	// DistBlock assigns each process one contiguous block
	// (MPI_DISTRIBUTE_BLOCK with the default block size).
	DistBlock
	// DistCyclic deals single elements round-robin
	// (MPI_DISTRIBUTE_CYCLIC with block size 1).
	DistCyclic
)

func (d Distribution) String() string {
	switch d {
	case DistNone:
		return "none"
	case DistBlock:
		return "block"
	case DistCyclic:
		return "cyclic"
	default:
		return fmt.Sprintf("Distribution(%d)", d)
	}
}

// Darray builds the datatype describing one process's share of a global
// n-dimensional array distributed over a process grid, in the spirit of
// MPI_Type_create_darray: given the global sizes, a per-dimension
// distribution, the process grid shape and this process's grid
// coordinates, the committed-to-be type selects exactly the elements this
// process owns, at their locations in the *global* row-major array.
//
// The type's extent spans the whole global array (like Subarray), so a
// file- or buffer-level view of the global matrix can be read or written
// with base pointing at its start. Block distributions use ceil-division
// block sizes, matching MPI's MPI_DISTRIBUTE_DFLT_DARG; trailing processes
// may own fewer (or zero) elements.
func Darray(gsizes []int, dists []Distribution, psizes []int, coords []int, order Order, base *Datatype) (*Datatype, error) {
	if err := checkBase(base); err != nil {
		return nil, err
	}
	n := len(gsizes)
	if n == 0 || len(dists) != n || len(psizes) != n || len(coords) != n {
		return nil, fmt.Errorf("datatype: darray dimension mismatch (%d/%d/%d/%d)",
			len(gsizes), len(dists), len(psizes), len(coords))
	}
	for d := 0; d < n; d++ {
		if gsizes[d] <= 0 || psizes[d] <= 0 || coords[d] < 0 || coords[d] >= psizes[d] {
			return nil, fmt.Errorf("datatype: darray dim %d out of range (g=%d p=%d c=%d)",
				d, gsizes[d], psizes[d], coords[d])
		}
		if dists[d] == DistNone && psizes[d] != 1 {
			return nil, fmt.Errorf("datatype: darray dim %d: DistNone requires a process grid of 1", d)
		}
	}
	gs, ds, ps, cs := gsizes, dists, psizes, coords
	if order == ColMajor {
		gs, ps, cs = reverse(gsizes), reverse(psizes), reverse(coords)
		ds = make([]Distribution, n)
		for i, v := range dists {
			ds[n-1-i] = v
		}
	}

	// ownedIndices lists the global indices this process owns along dim d,
	// in increasing order.
	ownedIndices := func(d int) []int {
		switch ds[d] {
		case DistNone:
			out := make([]int, gs[d])
			for i := range out {
				out[i] = i
			}
			return out
		case DistBlock:
			blk := (gs[d] + ps[d] - 1) / ps[d]
			lo := cs[d] * blk
			hi := min(lo+blk, gs[d])
			var out []int
			for i := lo; i < hi; i++ {
				out = append(out, i)
			}
			return out
		case DistCyclic:
			var out []int
			for i := cs[d]; i < gs[d]; i += ps[d] {
				out = append(out, i)
			}
			return out
		default:
			panic("datatype: unknown distribution")
		}
	}

	owned := make([][]int, n)
	size := base.size
	for d := 0; d < n; d++ {
		owned[d] = ownedIndices(d)
		size *= len(owned[d])
	}

	// Row-major strides in base elements.
	stride := make([]int, n)
	stride[n-1] = 1
	for d := n - 2; d >= 0; d-- {
		stride[d] = stride[d+1] * gs[d+1]
	}

	// Enumerate owned cells in global row-major order: an odometer over
	// the outer dimensions, with consecutive-index runs along the
	// innermost dimension coalesced into blocks.
	var bl []block
	if size > 0 {
		outer := make([]int, n-1)
		for {
			baseOff := 0
			for d := 0; d < n-1; d++ {
				baseOff += owned[d][outer[d]] * stride[d]
			}
			inner := owned[n-1]
			for i := 0; i < len(inner); {
				run := 1
				for i+run < len(inner) && inner[i+run] == inner[i]+run {
					run++
				}
				bl = append(bl, block{off: (baseOff + inner[i]) * base.Extent(), count: run, base: base})
				i += run
			}
			d := n - 2
			for ; d >= 0; d-- {
				outer[d]++
				if outer[d] < len(owned[d]) {
					break
				}
				outer[d] = 0
			}
			if d < 0 {
				break
			}
		}
	}

	t := &Datatype{
		name: fmt.Sprintf("darray(%dd,%s)", n, base.name),
		kind: KindSubarray,
		size: size,
	}
	t.iovFromBlocks(bl)
	t.lb = 0
	full := base.Extent()
	for d := 0; d < n; d++ {
		full *= gs[d]
	}
	t.ub = full
	return t, nil
}
