package datatype

import (
	"fmt"
	"sort"

	"mv2sim/internal/mem"
)

// mustCommitted panics on use of an uncommitted type in a communication
// path — the same contract violation MPI reports as MPI_ERR_TYPE.
func (t *Datatype) mustCommitted() {
	if !t.committed {
		panic("datatype: " + t.name + " used before Commit")
	}
}

// Pack gathers count elements described by t from the typed buffer at src
// into the contiguous destination dst. dst must have room for
// count*Size() bytes. Only bytes move; timing is modeled elsewhere.
func (t *Datatype) Pack(dst, src mem.Ptr, count int) {
	t.mustCommitted()
	if t.IsContiguous() {
		mem.Copy(dst, src, count*t.size)
		return
	}
	pos := 0
	for i := 0; i < count; i++ {
		elem := i * t.Extent()
		for _, s := range t.iov {
			mem.Copy(dst.Add(pos), src.Add(elem+s.Off), s.Len)
			pos += s.Len
		}
	}
}

// Unpack scatters count elements from the contiguous source src into the
// typed buffer at dst — the inverse of Pack.
func (t *Datatype) Unpack(dst, src mem.Ptr, count int) {
	t.mustCommitted()
	if t.IsContiguous() {
		mem.Copy(dst, src, count*t.size)
		return
	}
	pos := 0
	for i := 0; i < count; i++ {
		elem := i * t.Extent()
		for _, s := range t.iov {
			mem.Copy(dst.Add(elem+s.Off), src.Add(pos), s.Len)
			pos += s.Len
		}
	}
}

// PackBytes gathers count elements from the typed buffer at src into the
// plain byte slice dst, which must hold count*Size() bytes. It is used to
// build eager-protocol payloads that live outside any simulated address
// space.
func (t *Datatype) PackBytes(dst []byte, src mem.Ptr, count int) {
	t.mustCommitted()
	if len(dst) < count*t.size {
		panic(fmt.Sprintf("datatype: PackBytes destination too small (%d < %d)", len(dst), count*t.size))
	}
	if t.IsContiguous() {
		copy(dst[:count*t.size], src.Bytes(count*t.size))
		return
	}
	pos := 0
	for i := 0; i < count; i++ {
		elem := i * t.Extent()
		for _, s := range t.iov {
			copy(dst[pos:pos+s.Len], src.Add(elem+s.Off).Bytes(s.Len))
			pos += s.Len
		}
	}
}

// UnpackBytes scatters the packed byte slice src into the typed buffer at
// dst — the inverse of PackBytes.
func (t *Datatype) UnpackBytes(dst mem.Ptr, src []byte, count int) {
	t.mustCommitted()
	if len(src) < count*t.size {
		panic(fmt.Sprintf("datatype: UnpackBytes source too small (%d < %d)", len(src), count*t.size))
	}
	if t.IsContiguous() {
		copy(dst.Bytes(count*t.size), src[:count*t.size])
		return
	}
	pos := 0
	for i := 0; i < count; i++ {
		elem := i * t.Extent()
		for _, s := range t.iov {
			copy(dst.Add(elem+s.Off).Bytes(s.Len), src[pos:pos+s.Len])
			pos += s.Len
		}
	}
}

// locate maps a packed-stream offset to (element, segment index, offset
// within segment). packOff must lie in [0, count*size).
func (t *Datatype) locate(packOff int) (elem, segIdx, segOff int) {
	elem = packOff / t.size
	rem := packOff % t.size
	// prefix is sorted; find the last segment whose prefix ≤ rem.
	segIdx = sort.Search(len(t.prefix), func(i int) bool { return t.prefix[i] > rem }) - 1
	segOff = rem - t.prefix[segIdx]
	return
}

// PackRange gathers the byte range [packOff, packOff+n) of the packed
// representation of count elements into dst. It is the partial-pack
// primitive that lets the pipeline process a large non-contiguous message
// chunk by chunk without materializing the whole packed buffer.
func (t *Datatype) PackRange(dst, src mem.Ptr, count, packOff, n int) {
	t.copyRange(dst, src, count, packOff, n, true)
}

// UnpackRange scatters the byte range [packOff, packOff+n) of the packed
// stream from src into the typed buffer at dst — the inverse of PackRange.
func (t *Datatype) UnpackRange(dst, src mem.Ptr, count, packOff, n int) {
	t.copyRange(dst, src, count, packOff, n, false)
}

func (t *Datatype) copyRange(a, b mem.Ptr, count, packOff, n int, packing bool) {
	t.mustCommitted()
	if n == 0 {
		return
	}
	total := count * t.size
	if packOff < 0 || n < 0 || packOff+n > total {
		panic(fmt.Sprintf("datatype: range [%d,%d) outside packed size %d", packOff, packOff+n, total))
	}
	if t.size == 0 {
		return
	}
	if t.IsContiguous() {
		if packing {
			mem.Copy(a, b.Add(packOff), n)
		} else {
			mem.Copy(a.Add(packOff), b, n)
		}
		return
	}
	elem, segIdx, segOff := t.locate(packOff)
	pos := 0 // progress within the requested range
	for pos < n {
		seg := t.iov[segIdx]
		take := seg.Len - segOff
		if take > n-pos {
			take = n - pos
		}
		typedOff := elem*t.Extent() + seg.Off + segOff
		if packing {
			mem.Copy(a.Add(pos), b.Add(typedOff), take)
		} else {
			mem.Copy(a.Add(typedOff), b.Add(pos), take)
		}
		pos += take
		segOff += take
		if segOff == seg.Len {
			segOff = 0
			segIdx++
			if segIdx == len(t.iov) {
				segIdx = 0
				elem++
			}
		}
	}
}

// Shape2D describes a uniform strided layout equivalent to the type map of
// `count` elements: Rows rows of Width bytes, Pitch bytes apart. It is
// exactly the geometry cudaMemcpy2D accepts, so any type with a Shape2D
// can be packed by the GPU's copy engine in one operation — the offload
// the paper builds on.
type Shape2D struct {
	Off   int // byte offset of the first row from the buffer base
	Width int // bytes per row
	Pitch int // bytes between row starts
	Rows  int
}

// Uniform2D reports whether count elements of t form a uniform 2D shape,
// and returns it. Vectors of fixed-size blocks qualify; indexed or struct
// types with irregular gaps do not. A fully contiguous region qualifies
// with Rows == 1.
//
// The answer is computed in O(1) from the element shape canonicalized at
// Commit time — no segment list is materialized, so calling this per
// message (as the transport's planFor does) allocates nothing. The
// uncached uniform2DSlow derivation is kept for cross-validation.
func (t *Datatype) Uniform2D(count int) (Shape2D, bool) {
	t.mustCommitted()
	m := len(t.iov)
	if count <= 0 || m == 0 {
		return Shape2D{}, false
	}
	off := t.iov[0].Off
	if m == 1 {
		w := t.iov[0].Len
		if count == 1 {
			return Shape2D{Off: off, Width: w, Pitch: w, Rows: 1}, true
		}
		switch ext := t.Extent(); {
		case w == ext:
			// Consecutive elements butt together: one contiguous run.
			return Shape2D{Off: off, Width: count * w, Pitch: count * w, Rows: 1}, true
		case w < ext:
			// One row per element, extent apart.
			return Shape2D{Off: off, Width: w, Pitch: ext, Rows: count}, true
		default:
			// Extent shrunk below the data span (Resized): rows overlap.
			return Shape2D{}, false
		}
	}
	if !t.elemUniform {
		return Shape2D{}, false
	}
	if count == 1 {
		return Shape2D{Off: off, Width: t.elemWidth, Pitch: t.elemPitch, Rows: m}, true
	}
	// Across elements the grid continues only if the gap from the last row
	// of one element to the first row of the next equals the row pitch.
	if t.Extent()+off-t.iov[m-1].Off != t.elemPitch {
		return Shape2D{}, false
	}
	return Shape2D{Off: off, Width: t.elemWidth, Pitch: t.elemPitch, Rows: count * m}, true
}

// uniform2DSlow is the original derivation of Uniform2D: expand the full
// segment list and test it for uniformity. Retained as the ground truth
// the analytic fast path is validated against in tests.
func (t *Datatype) uniform2DSlow(count int) (Shape2D, bool) {
	t.mustCommitted()
	if count <= 0 || len(t.iov) == 0 {
		return Shape2D{}, false
	}
	segs := t.SegmentsOf(count)
	if len(segs) == 1 {
		return Shape2D{Off: segs[0].Off, Width: segs[0].Len, Pitch: segs[0].Len, Rows: 1}, true
	}
	width := segs[0].Len
	pitch := segs[1].Off - segs[0].Off
	if pitch < width {
		return Shape2D{}, false
	}
	for i, s := range segs {
		if s.Len != width {
			return Shape2D{}, false
		}
		if i > 0 && s.Off-segs[i-1].Off != pitch {
			return Shape2D{}, false
		}
	}
	return Shape2D{Off: segs[0].Off, Width: width, Pitch: pitch, Rows: len(segs)}, true
}
