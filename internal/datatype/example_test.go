package datatype_test

import (
	"fmt"

	"mv2sim/internal/datatype"
	"mv2sim/internal/mem"
)

// A matrix column as MPI_Type_vector, packed and unpacked — the layout at
// the heart of the paper's Stencil2D east/west halo exchange.
func ExampleVector() {
	// One column of an 8x8 float32 matrix: 8 elements, 1 float wide,
	// 8 floats apart.
	column, err := datatype.Vector(8, 1, 8, datatype.Float32)
	if err != nil {
		panic(err)
	}
	column.MustCommit()

	fmt.Printf("size=%d extent=%d segments=%d\n",
		column.Size(), column.Extent(), len(column.IOV()))

	// Pack it out of a matrix and scatter it into another.
	matrix := mem.NewHostSpace("matrix", 8*8*4)
	mem.Fill(matrix.Base(), 8*8*4, func(i int) byte { return byte(i) })
	packed := mem.NewHostSpace("packed", column.Size())
	column.Pack(packed.Base(), matrix.Base(), 1)

	dst := mem.NewHostSpace("dst", 8*8*4)
	column.Unpack(dst.Base(), packed.Base(), 1)
	fmt.Printf("first element round-tripped: %v\n",
		mem.Equal(dst.Base(), matrix.Base(), 4))
	// Output:
	// size=32 extent=228 segments=8
	// first element round-tripped: true
}

// Uniform2D is the analysis the GPU transport uses to decide whether a
// type can be packed by the device's 2D copy engine.
func ExampleDatatype_Uniform2D() {
	column, _ := datatype.Vector(1024, 1, 256, datatype.Float32)
	column.MustCommit()
	shape, ok := column.Uniform2D(1)
	fmt.Printf("offloadable=%v rows=%d width=%dB pitch=%dB\n",
		ok, shape.Rows, shape.Width, shape.Pitch)

	irregular, _ := datatype.Indexed([]int{1, 2}, []int{0, 3}, datatype.Int32)
	irregular.MustCommit()
	_, ok = irregular.Uniform2D(1)
	fmt.Printf("irregular offloadable=%v\n", ok)
	// Output:
	// offloadable=true rows=1024 width=4B pitch=1024B
	// irregular offloadable=false
}

// PackRange is the partial-pack primitive behind the paper's chunked
// pipeline: any byte range of the packed stream can be produced without
// materializing the rest.
func ExampleDatatype_PackRange() {
	v, _ := datatype.Vector(4, 2, 4, datatype.Byte)
	v.MustCommit()
	src := mem.NewHostSpace("src", v.Span(1))
	mem.Fill(src.Base(), v.Span(1), func(i int) byte { return byte(i) })

	chunk := mem.NewHostSpace("chunk", 4)
	v.PackRange(chunk.Base(), src.Base(), 1, 2, 4) // bytes [2,6) of the stream
	fmt.Println(chunk.Base().Bytes(4))
	// Output:
	// [4 5 8 9]
}
