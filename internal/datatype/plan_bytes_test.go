package datatype

import (
	"bytes"
	"math/rand"
	"testing"

	"mv2sim/internal/mem"
)

// TestPackRangeBytesMatchesPackBytes checks the byte-slice-side plan walk
// against the uncached PackBytes over the whole type zoo: gathering
// chunk-aligned runs through the plan must produce the same packed stream,
// and scattering it back must round-trip every typed segment.
func TestPackRangeBytesMatchesPackBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for name, dt := range planTestTypes(t) {
		for _, count := range []int{1, 3, 8} {
			total := count * dt.Size()
			if total == 0 {
				continue
			}
			span := dt.Span(count)
			pad := 0
			if dt.LB() < 0 {
				pad = -dt.LB()
			}
			for _, chunkBytes := range []int{16, 100, total, total + 99} {
				plan := dt.ChunkPlan(count, chunkBytes)
				h := mem.NewHostSpace("h", pad+span)
				src := h.Base().Add(pad)
				mem.Fill(h.Base(), pad+span, func(i int) byte { return byte(rng.Intn(256)) })
				want := make([]byte, total)
				dt.PackBytes(want, src, count)

				// Gather in random chunk-aligned runs; each call addresses
				// its own sub-slice (dst[0] holds packed byte packOff).
				got := make([]byte, total)
				for off := 0; off < total; {
					n := (1 + rng.Intn(3)) * chunkBytes
					if off+n > total {
						n = total - off
					}
					plan.PackRangeBytes(got[off:off+n], src, off, n)
					off += n
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("%s count=%d chunk=%d: PackRangeBytes differs from PackBytes",
						name, count, chunkBytes)
				}

				// Scatter the stream back into a zeroed typed buffer and
				// compare the touched segments.
				h2 := mem.NewHostSpace("h2", pad+span)
				dst := h2.Base().Add(pad)
				for off := 0; off < total; {
					n := (1 + rng.Intn(3)) * chunkBytes
					if off+n > total {
						n = total - off
					}
					plan.UnpackRangeBytes(dst, got[off:off+n], off, n)
					off += n
				}
				for _, s := range dt.SegmentsOf(count) {
					if !mem.Equal(dst.Add(s.Off), src.Add(s.Off), s.Len) {
						t.Fatalf("%s count=%d chunk=%d: segment %+v did not round-trip",
							name, count, chunkBytes, s)
					}
				}
			}
		}
	}
}

// TestRangeSegments checks the descriptor-lowering count: per-chunk ranges
// agree with SegmentCount, multi-chunk ranges telescope, the full range
// covers every segment exactly once, and a zero-length range is empty.
func TestRangeSegments(t *testing.T) {
	for name, dt := range planTestTypes(t) {
		total := 3 * dt.Size()
		if total == 0 {
			continue
		}
		for _, chunkBytes := range []int{16, 100, total + 99} {
			plan := dt.ChunkPlan(3, chunkBytes)
			sum := 0
			for c := 0; c < plan.Chunks(); c++ {
				n := plan.ChunkLen(c)
				got := plan.RangeSegments(c*chunkBytes, n)
				if want := plan.SegmentCount(c); got != want {
					t.Fatalf("%s chunk=%d: RangeSegments(chunk %d) = %d, want SegmentCount %d",
						name, chunkBytes, c, got, want)
				}
				sum += got
			}
			if got := plan.RangeSegments(0, total); got != sum {
				t.Errorf("%s chunk=%d: full-range segments %d != per-chunk sum %d",
					name, chunkBytes, got, sum)
			}
			if got := plan.RangeSegments(0, 0); got != 0 {
				t.Errorf("%s chunk=%d: empty range has %d segments", name, chunkBytes, got)
			}
		}
	}
}

// TestPackRangeBytesAlignment checks the chunk-alignment contract is
// enforced on the byte-slice side too.
func TestPackRangeBytesAlignment(t *testing.T) {
	v, _ := Vector(8, 4, 8, Int32)
	v.MustCommit()
	plan := v.ChunkPlan(4, 32)
	h := mem.NewHostSpace("h", v.Span(4))
	defer func() {
		if recover() == nil {
			t.Error("misaligned byte-side plan range did not panic")
		}
	}()
	plan.PackRangeBytes(make([]byte, 16), h.Base(), 8, 16)
}
