// Chunk-aligned pack plans. The pipeline moves a non-contiguous message
// as a sequence of fixed-size packed chunks; without a plan every chunk
// re-derives its segment list from the type map (a divide, a binary
// search, and per-segment bookkeeping in copyRange). A ChunkPlan does that
// derivation once per (count, chunkBytes) pair and caches the result on
// the datatype, so the steady-state chunk path is a straight walk over a
// precomputed []chunkSeg slice with zero allocations — the commit-time
// canonicalization real CUDA-aware MPI implementations use (TEMPI,
// arXiv:2012.14363).
package datatype

import (
	"fmt"
	"sync"

	"mv2sim/internal/mem"
)

// chunkSeg is one contiguous copy of a chunk plan: Len bytes at TypedOff
// in the typed buffer, landing at absolute offset PackOff in the packed
// stream. Segments never straddle a chunk boundary.
type chunkSeg struct {
	typedOff int
	packOff  int
	len      int
}

// ChunkPlan is the precomputed chunk-aligned pack plan for `count`
// elements of one datatype split into chunkBytes-sized packed chunks. It
// is immutable and safe for concurrent use.
type ChunkPlan struct {
	t          *Datatype
	count      int
	chunkBytes int
	total      int // count * size
	segs       []chunkSeg
	index      []int // segs[index[c]:index[c+1]] belong to chunk c
}

type planKey struct {
	count      int
	chunkBytes int
}

// ChunkPlan returns the (cached) plan for packing count elements of t in
// chunkBytes-sized chunks. The first call per (count, chunkBytes) builds
// the plan in one pass over the expanded type map; later calls are a map
// lookup. The cache lives on the committed type, which is otherwise
// immutable, so shared predefined types guard it with a mutex.
func (t *Datatype) ChunkPlan(count, chunkBytes int) *ChunkPlan {
	t.mustCommitted()
	if count < 0 || chunkBytes <= 0 {
		panic(fmt.Sprintf("datatype: invalid plan geometry (count=%d chunkBytes=%d)", count, chunkBytes))
	}
	key := planKey{count, chunkBytes}
	t.planMu.Lock()
	defer t.planMu.Unlock()
	if p, ok := t.plans[key]; ok {
		return p
	}
	p := t.buildPlan(count, chunkBytes)
	if t.plans == nil {
		t.plans = map[planKey]*ChunkPlan{}
	}
	t.plans[key] = p
	return p
}

// buildPlan walks the packed stream of count elements once, splitting the
// type map's segments at chunk boundaries and coalescing typed-contiguous
// neighbours within a chunk (cross-element coalescing included).
func (t *Datatype) buildPlan(count, chunkBytes int) *ChunkPlan {
	total := count * t.size
	chunks := (total + chunkBytes - 1) / chunkBytes
	p := &ChunkPlan{t: t, count: count, chunkBytes: chunkBytes, total: total}
	p.index = make([]int, chunks+1)
	if total == 0 {
		return p
	}
	packOff := 0
	emit := func(typedOff, n int) {
		for n > 0 {
			c := packOff / chunkBytes
			take := n
			if room := (c+1)*chunkBytes - packOff; take > room {
				take = room
			}
			if k := len(p.segs) - 1; k >= 0 &&
				p.segs[k].packOff+p.segs[k].len == packOff &&
				p.segs[k].typedOff+p.segs[k].len == typedOff &&
				p.segs[k].packOff/chunkBytes == c {
				p.segs[k].len += take
			} else {
				p.segs = append(p.segs, chunkSeg{typedOff: typedOff, packOff: packOff, len: take})
			}
			packOff += take
			typedOff += take
			n -= take
		}
	}
	for i := 0; i < count; i++ {
		base := i * t.Extent()
		for _, s := range t.iov {
			emit(base+s.Off, s.Len)
		}
	}
	k := 0
	for c := 0; c < chunks; c++ {
		p.index[c] = k
		end := (c + 1) * chunkBytes
		if end > total {
			end = total
		}
		for k < len(p.segs) && p.segs[k].packOff < end {
			k++
		}
	}
	p.index[chunks] = len(p.segs)
	return p
}

// Chunks returns the number of chunks in the plan.
func (p *ChunkPlan) Chunks() int { return len(p.index) - 1 }

// ChunkBytes returns the plan's chunk size.
func (p *ChunkPlan) ChunkBytes() int { return p.chunkBytes }

// Total returns the packed byte count covered by the plan.
func (p *ChunkPlan) Total() int { return p.total }

// ChunkLen returns the packed length of chunk c (only the final chunk may
// be short).
func (p *ChunkPlan) ChunkLen(c int) int {
	n := p.total - c*p.chunkBytes
	if n > p.chunkBytes {
		n = p.chunkBytes
	}
	return n
}

// SegmentCount returns the number of contiguous copies chunk c takes —
// the per-segment cost driver for pack-kernel models.
func (p *ChunkPlan) SegmentCount(c int) int { return p.index[c+1] - p.index[c] }

// checkAligned enforces the plan contract: ranges start on a chunk
// boundary and end on one (or at the end of the stream).
func (p *ChunkPlan) checkAligned(packOff, n int) {
	if packOff < 0 || n < 0 || packOff+n > p.total ||
		packOff%p.chunkBytes != 0 ||
		((packOff+n)%p.chunkBytes != 0 && packOff+n != p.total) {
		panic(fmt.Sprintf("datatype: plan range [%d,%d) not chunk-aligned (chunk=%d total=%d)",
			packOff, packOff+n, p.chunkBytes, p.total))
	}
}

// PackRange gathers the packed byte range [packOff, packOff+n) into dst,
// where dst addresses the range itself (dst byte 0 holds packed byte
// packOff). The range must be chunk-aligned per checkAligned. The walk
// touches only the precomputed segments and allocates nothing.
func (p *ChunkPlan) PackRange(dst, src mem.Ptr, packOff, n int) {
	p.copyRange(dst, src, packOff, n, true)
}

// UnpackRange scatters the packed byte range [packOff, packOff+n) from
// src into the typed buffer at dst — the inverse of PackRange.
func (p *ChunkPlan) UnpackRange(dst, src mem.Ptr, packOff, n int) {
	p.copyRange(dst, src, packOff, n, false)
}

// PackChunk gathers chunk c into dst (chunk-local addressing).
func (p *ChunkPlan) PackChunk(dst, src mem.Ptr, c int) {
	p.copyRange(dst, src, c*p.chunkBytes, p.ChunkLen(c), true)
}

// UnpackChunk scatters chunk c from src into the typed buffer at dst.
func (p *ChunkPlan) UnpackChunk(dst, src mem.Ptr, c int) {
	p.copyRange(dst, src, c*p.chunkBytes, p.ChunkLen(c), false)
}

func (p *ChunkPlan) copyRange(a, b mem.Ptr, packOff, n int, packing bool) {
	if n == 0 {
		return
	}
	p.checkAligned(packOff, n)
	c0 := packOff / p.chunkBytes
	c1 := (packOff + n + p.chunkBytes - 1) / p.chunkBytes
	for _, s := range p.segs[p.index[c0]:p.index[c1]] {
		rel := s.packOff - packOff
		if packing {
			mem.Copy(a.Add(rel), b.Add(s.typedOff), s.len)
		} else {
			mem.Copy(a.Add(s.typedOff), b.Add(rel), s.len)
		}
	}
}

// planCache holds the lazily built per-(count, chunkBytes) plans; see
// Datatype.ChunkPlan. Separated into its own struct so Datatype literals
// elsewhere in the package stay valid.
type planCache struct {
	planMu sync.Mutex
	plans  map[planKey]*ChunkPlan
}
