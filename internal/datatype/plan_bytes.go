// Byte-slice-side chunk plan walks. The NIC scatter/gather unit
// (internal/ib) moves packed data as wire payload byte slices rather than
// simulated memory, so the plan exposes the same chunk-aligned range
// copies as PackRange/UnpackRange with the packed side a []byte: the
// gather reads typed memory into the wire buffer, the scatter writes the
// wire buffer back into typed memory.
package datatype

import "mv2sim/internal/mem"

// PackRangeBytes gathers the packed byte range [packOff, packOff+n) from
// the typed buffer at src into dst, where dst addresses the range itself
// (dst[0] holds packed byte packOff). The range must be chunk-aligned per
// the PackRange contract; the walk allocates nothing.
func (p *ChunkPlan) PackRangeBytes(dst []byte, src mem.Ptr, packOff, n int) {
	p.copyRangeBytes(dst, src, packOff, n, true)
}

// UnpackRangeBytes scatters the packed byte range [packOff, packOff+n)
// from src into the typed buffer at dst — the inverse of PackRangeBytes.
func (p *ChunkPlan) UnpackRangeBytes(dst mem.Ptr, src []byte, packOff, n int) {
	p.copyRangeBytes(src, dst, packOff, n, false)
}

// RangeSegments returns the number of contiguous segments the
// chunk-aligned packed range [packOff, packOff+n) spans — the
// scatter/gather entry count when the range is lowered to a NIC
// descriptor, mirroring KernelDesc.Segments for kernel launches.
func (p *ChunkPlan) RangeSegments(packOff, n int) int {
	if n == 0 {
		return 0
	}
	p.checkAligned(packOff, n)
	c0 := packOff / p.chunkBytes
	c1 := (packOff + n + p.chunkBytes - 1) / p.chunkBytes
	return p.index[c1] - p.index[c0]
}

func (p *ChunkPlan) copyRangeBytes(b []byte, a mem.Ptr, packOff, n int, packing bool) {
	if n == 0 {
		return
	}
	p.checkAligned(packOff, n)
	c0 := packOff / p.chunkBytes
	c1 := (packOff + n + p.chunkBytes - 1) / p.chunkBytes
	for _, s := range p.segs[p.index[c0]:p.index[c1]] {
		rel := s.packOff - packOff
		if packing {
			copy(b[rel:rel+s.len], a.Add(s.typedOff).Bytes(s.len))
		} else {
			copy(a.Add(s.typedOff).Bytes(s.len), b[rel:rel+s.len])
		}
	}
}
