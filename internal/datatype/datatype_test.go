package datatype

import (
	"reflect"
	"strings"
	"testing"

	"mv2sim/internal/mem"
)

func TestPredefinedTypes(t *testing.T) {
	cases := []struct {
		dt   *Datatype
		size int
	}{
		{Byte, 1}, {Char, 1}, {Int32, 4}, {Int64, 8}, {Float32, 4}, {Float64, 8},
	}
	for _, c := range cases {
		if c.dt.Size() != c.size || c.dt.Extent() != c.size {
			t.Errorf("%s: size=%d extent=%d, want %d", c.dt.Name(), c.dt.Size(), c.dt.Extent(), c.size)
		}
		if !c.dt.Committed() {
			t.Errorf("%s not pre-committed", c.dt.Name())
		}
		if c.dt.LB() != 0 || c.dt.UB() != c.size {
			t.Errorf("%s bounds [%d,%d)", c.dt.Name(), c.dt.LB(), c.dt.UB())
		}
	}
}

func TestContiguous(t *testing.T) {
	ct, err := Contiguous(5, Float32)
	if err != nil {
		t.Fatal(err)
	}
	if err := ct.Commit(); err != nil {
		t.Fatal(err)
	}
	if ct.Size() != 20 || ct.Extent() != 20 {
		t.Errorf("size=%d extent=%d", ct.Size(), ct.Extent())
	}
	// Contiguous flattens to a single coalesced segment.
	if got := ct.IOV(); len(got) != 1 || got[0] != (Segment{0, 20}) {
		t.Errorf("iov = %v", got)
	}
}

func TestVectorLayout(t *testing.T) {
	// 3 blocks of 2 floats, stride 5 floats: offsets 0, 20, 40.
	v, err := Vector(3, 2, 5, Float32)
	if err != nil {
		t.Fatal(err)
	}
	v.MustCommit()
	if v.Size() != 24 {
		t.Errorf("size = %d, want 24", v.Size())
	}
	// Extent: lb=0, ub = 2*5*4 + 2*4 = 48.
	if v.Extent() != 48 {
		t.Errorf("extent = %d, want 48", v.Extent())
	}
	want := []Segment{{0, 8}, {20, 8}, {40, 8}}
	if !reflect.DeepEqual(v.IOV(), want) {
		t.Errorf("iov = %v, want %v", v.IOV(), want)
	}
}

func TestVectorDegeneratesToContiguous(t *testing.T) {
	// blocklen == stride: one coalesced segment.
	v, _ := Vector(4, 3, 3, Int32)
	v.MustCommit()
	if got := v.IOV(); len(got) != 1 || got[0] != (Segment{0, 48}) {
		t.Errorf("iov = %v, want single 48-byte segment", got)
	}
}

func TestHvector(t *testing.T) {
	hv, err := Hvector(3, 4, 100, Byte)
	if err != nil {
		t.Fatal(err)
	}
	hv.MustCommit()
	want := []Segment{{0, 4}, {100, 4}, {200, 4}}
	if !reflect.DeepEqual(hv.IOV(), want) {
		t.Errorf("iov = %v, want %v", hv.IOV(), want)
	}
	if hv.Extent() != 204 {
		t.Errorf("extent = %d, want 204", hv.Extent())
	}
}

func TestIndexed(t *testing.T) {
	// Two blocks: 3 ints at displacement 4 (ints), 1 int at displacement 0.
	ix, err := Indexed([]int{3, 1}, []int{4, 0}, Int32)
	if err != nil {
		t.Fatal(err)
	}
	ix.MustCommit()
	if ix.Size() != 16 {
		t.Errorf("size = %d", ix.Size())
	}
	want := []Segment{{16, 12}, {0, 4}}
	if !reflect.DeepEqual(ix.IOV(), want) {
		t.Errorf("iov = %v, want %v", ix.IOV(), want)
	}
	if ix.LB() != 0 || ix.UB() != 28 {
		t.Errorf("bounds [%d,%d), want [0,28)", ix.LB(), ix.UB())
	}
}

func TestIndexedAdjacentBlocksCoalesce(t *testing.T) {
	ix, _ := Indexed([]int{2, 2}, []int{0, 2}, Int32)
	ix.MustCommit()
	if got := ix.IOV(); len(got) != 1 || got[0] != (Segment{0, 16}) {
		t.Errorf("iov = %v, want single segment", got)
	}
}

func TestHindexed(t *testing.T) {
	hx, err := Hindexed([]int{1, 1}, []int{10, 0}, Int32)
	if err != nil {
		t.Fatal(err)
	}
	hx.MustCommit()
	want := []Segment{{10, 4}, {0, 4}}
	if !reflect.DeepEqual(hx.IOV(), want) {
		t.Errorf("iov = %v", hx.IOV())
	}
}

func TestStruct(t *testing.T) {
	// {int32 at 0, 2×float64 at 8}: a typical C struct.
	st, err := Struct([]int{1, 2}, []int{0, 8}, []*Datatype{Int32, Float64})
	if err != nil {
		t.Fatal(err)
	}
	st.MustCommit()
	if st.Size() != 20 {
		t.Errorf("size = %d, want 20", st.Size())
	}
	if st.LB() != 0 || st.UB() != 24 {
		t.Errorf("bounds [%d,%d)", st.LB(), st.UB())
	}
	want := []Segment{{0, 4}, {8, 16}}
	if !reflect.DeepEqual(st.IOV(), want) {
		t.Errorf("iov = %v, want %v", st.IOV(), want)
	}
}

func TestStructNegativeLB(t *testing.T) {
	st, err := Struct([]int{1, 1}, []int{-8, 0}, []*Datatype{Float64, Int32})
	if err != nil {
		t.Fatal(err)
	}
	st.MustCommit()
	if st.LB() != -8 || st.UB() != 4 {
		t.Errorf("bounds [%d,%d), want [-8,4)", st.LB(), st.UB())
	}
}

func TestNestedVectorOfVector(t *testing.T) {
	// Inner: 2 blocks of 1 int, stride 2 ints → covers 4 ints of which 2 real.
	inner, _ := Vector(2, 1, 2, Int32)
	inner.MustCommit()
	// Outer: 2 inner elements, byte stride 32.
	outer, err := Hvector(2, 1, 32, inner)
	if err != nil {
		t.Fatal(err)
	}
	outer.MustCommit()
	if outer.Size() != 16 {
		t.Errorf("size = %d, want 16", outer.Size())
	}
	want := []Segment{{0, 4}, {8, 4}, {32, 4}, {40, 4}}
	if !reflect.DeepEqual(outer.IOV(), want) {
		t.Errorf("iov = %v, want %v", outer.IOV(), want)
	}
}

func TestSubarrayRowMajor(t *testing.T) {
	// 4x6 int array, take the 2x3 region starting at (1,2).
	sa, err := Subarray([]int{4, 6}, []int{2, 3}, []int{1, 2}, RowMajor, Int32)
	if err != nil {
		t.Fatal(err)
	}
	sa.MustCommit()
	if sa.Size() != 24 {
		t.Errorf("size = %d, want 24", sa.Size())
	}
	// Rows at element offsets (1*6+2)=8 and (2*6+2)=14 → bytes 32 and 56.
	want := []Segment{{32, 12}, {56, 12}}
	if !reflect.DeepEqual(sa.IOV(), want) {
		t.Errorf("iov = %v, want %v", sa.IOV(), want)
	}
	// Extent spans the full array.
	if sa.Extent() != 4*6*4 {
		t.Errorf("extent = %d, want 96", sa.Extent())
	}
}

func TestSubarrayColMajor(t *testing.T) {
	// Same region expressed in Fortran order: sizes (6,4) cols-first.
	sa, err := Subarray([]int{6, 4}, []int{3, 2}, []int{2, 1}, ColMajor, Int32)
	if err != nil {
		t.Fatal(err)
	}
	sa.MustCommit()
	want := []Segment{{32, 12}, {56, 12}}
	if !reflect.DeepEqual(sa.IOV(), want) {
		t.Errorf("iov = %v, want %v", sa.IOV(), want)
	}
}

func TestSubarray3D(t *testing.T) {
	// 3x4x5 bytes, select 2x2x5 starting at (1,1,0): full innermost rows,
	// which coalesce pairwise along the middle dimension.
	sa, err := Subarray([]int{3, 4, 5}, []int{2, 2, 5}, []int{1, 1, 0}, RowMajor, Byte)
	if err != nil {
		t.Fatal(err)
	}
	sa.MustCommit()
	if sa.Size() != 20 {
		t.Errorf("size = %d", sa.Size())
	}
	want := []Segment{{25, 10}, {45, 10}}
	if !reflect.DeepEqual(sa.IOV(), want) {
		t.Errorf("iov = %v, want %v", sa.IOV(), want)
	}
}

func TestSubarrayValidation(t *testing.T) {
	if _, err := Subarray([]int{4}, []int{5}, []int{0}, RowMajor, Byte); err == nil {
		t.Error("oversized subregion accepted")
	}
	if _, err := Subarray([]int{4}, []int{2}, []int{3}, RowMajor, Byte); err == nil {
		t.Error("out-of-range start accepted")
	}
	if _, err := Subarray([]int{4, 4}, []int{2}, []int{0}, RowMajor, Byte); err == nil {
		t.Error("dimension mismatch accepted")
	}
	if _, err := Subarray(nil, nil, nil, RowMajor, Byte); err == nil {
		t.Error("zero dimensions accepted")
	}
}

func TestResized(t *testing.T) {
	rt, err := Resized(Int32, 0, 16)
	if err != nil {
		t.Fatal(err)
	}
	rt.MustCommit()
	if rt.Extent() != 16 || rt.Size() != 4 {
		t.Errorf("extent=%d size=%d", rt.Extent(), rt.Size())
	}
	// Packing 3 resized ints picks 4 bytes every 16.
	segs := rt.SegmentsOf(3)
	want := []Segment{{0, 4}, {16, 4}, {32, 4}}
	if !reflect.DeepEqual(segs, want) {
		t.Errorf("segments = %v, want %v", segs, want)
	}
}

func TestConstructorValidation(t *testing.T) {
	if _, err := Contiguous(-1, Byte); err == nil {
		t.Error("negative count accepted")
	}
	if _, err := Vector(2, -1, 4, Byte); err == nil {
		t.Error("negative blocklen accepted")
	}
	if _, err := Contiguous(2, nil); err == nil {
		t.Error("nil base accepted")
	}
	uncommitted, _ := Vector(2, 1, 2, Byte)
	if _, err := Contiguous(2, uncommitted); err == nil {
		t.Error("uncommitted base accepted")
	}
	if _, err := Indexed([]int{1}, []int{0, 1}, Byte); err == nil {
		t.Error("indexed length mismatch accepted")
	}
	if _, err := Hindexed([]int{-1}, []int{0}, Byte); err == nil {
		t.Error("negative hindexed blocklen accepted")
	}
	if _, err := Struct([]int{1}, []int{0}, []*Datatype{Int32, Byte}); err == nil {
		t.Error("struct arg mismatch accepted")
	}
	if _, err := Resized(Byte, 0, -4); err == nil {
		t.Error("negative extent accepted")
	}
}

func TestOverlapRejectedAtCommit(t *testing.T) {
	bad, err := Hindexed([]int{4, 4}, []int{0, 2}, Byte)
	if err != nil {
		t.Fatal(err)
	}
	if err := bad.Commit(); err == nil {
		t.Error("overlapping type committed")
	}
}

func TestCommitIdempotent(t *testing.T) {
	v, _ := Vector(2, 1, 2, Int32)
	if err := v.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := v.Commit(); err != nil {
		t.Errorf("second commit: %v", err)
	}
}

func TestUncommittedPackPanics(t *testing.T) {
	v, _ := Vector(2, 1, 2, Int32)
	h := mem.NewHostSpace("h", 64)
	defer func() {
		if recover() == nil {
			t.Error("pack of uncommitted type did not panic")
		}
	}()
	v.Pack(h.Base(), h.Base().Add(32), 1)
}

func TestSpan(t *testing.T) {
	v, _ := Vector(3, 2, 5, Float32)
	v.MustCommit()
	// extent 48, span(1) = 48, span(2) = 96.
	if v.Span(1) != 48 || v.Span(2) != 96 || v.Span(0) != 0 {
		t.Errorf("spans = %d,%d,%d", v.Span(1), v.Span(2), v.Span(0))
	}
}

func TestSegmentsOfCoalescesAcrossElements(t *testing.T) {
	// Element data fills the whole extent, so consecutive elements merge.
	ct, _ := Contiguous(4, Byte)
	ct.MustCommit()
	segs := ct.SegmentsOf(3)
	if len(segs) != 1 || segs[0] != (Segment{0, 12}) {
		t.Errorf("segments = %v", segs)
	}
}

func TestKindAndStrings(t *testing.T) {
	v, _ := Vector(2, 1, 2, Int32)
	if v.Kind() != KindVector {
		t.Errorf("kind = %v", v.Kind())
	}
	for k := KindPredefined; k <= KindResized; k++ {
		if strings.Contains(k.String(), "Kind(") {
			t.Errorf("missing name for kind %d", k)
		}
	}
	if !strings.Contains(v.String(), "vector") {
		t.Errorf("String = %q", v.String())
	}
}

func TestEmptyTypes(t *testing.T) {
	z, err := Contiguous(0, Int32)
	if err != nil {
		t.Fatal(err)
	}
	if err := z.Commit(); err != nil {
		t.Fatal(err)
	}
	if z.Size() != 0 || z.Extent() != 0 || len(z.IOV()) != 0 {
		t.Errorf("empty type: size=%d extent=%d iov=%v", z.Size(), z.Extent(), z.IOV())
	}
	h := mem.NewHostSpace("h", 16)
	z.Pack(h.Base(), h.Base(), 3) // must be a no-op, not a crash
}
