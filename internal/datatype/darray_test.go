package datatype

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"mv2sim/internal/mem"
)

func TestDarrayBlock1D(t *testing.T) {
	// 10 elements over 3 processes, block: blocks of ceil(10/3)=4: [0,4) [4,8) [8,10).
	sizes := []int{4, 4, 2}
	for p := 0; p < 3; p++ {
		dt, err := Darray([]int{10}, []Distribution{DistBlock}, []int{3}, []int{p}, RowMajor, Int32)
		if err != nil {
			t.Fatal(err)
		}
		dt.MustCommit()
		if dt.Size() != sizes[p]*4 {
			t.Errorf("proc %d: size = %d, want %d", p, dt.Size(), sizes[p]*4)
		}
		if dt.Extent() != 40 {
			t.Errorf("proc %d: extent = %d, want 40 (global span)", p, dt.Extent())
		}
		iov := dt.IOV()
		if len(iov) != 1 || iov[0].Off != p*16 {
			t.Errorf("proc %d: iov = %v", p, iov)
		}
	}
}

func TestDarrayCyclic1D(t *testing.T) {
	// 7 elements over 2 processes, cyclic: proc 0 gets 0,2,4,6; proc 1 gets 1,3,5.
	dt0, _ := Darray([]int{7}, []Distribution{DistCyclic}, []int{2}, []int{0}, RowMajor, Byte)
	dt0.MustCommit()
	want0 := []Segment{{0, 1}, {2, 1}, {4, 1}, {6, 1}}
	if !reflect.DeepEqual(dt0.IOV(), want0) {
		t.Errorf("proc 0 iov = %v, want %v", dt0.IOV(), want0)
	}
	dt1, _ := Darray([]int{7}, []Distribution{DistCyclic}, []int{2}, []int{1}, RowMajor, Byte)
	dt1.MustCommit()
	want1 := []Segment{{1, 1}, {3, 1}, {5, 1}}
	if !reflect.DeepEqual(dt1.IOV(), want1) {
		t.Errorf("proc 1 iov = %v, want %v", dt1.IOV(), want1)
	}
}

func TestDarray2DBlockBlock(t *testing.T) {
	// 4x6 bytes over a 2x2 grid: proc (1,0) owns rows 2-3, cols 0-2.
	dt, err := Darray([]int{4, 6}, []Distribution{DistBlock, DistBlock},
		[]int{2, 2}, []int{1, 0}, RowMajor, Byte)
	if err != nil {
		t.Fatal(err)
	}
	dt.MustCommit()
	want := []Segment{{12, 3}, {18, 3}}
	if !reflect.DeepEqual(dt.IOV(), want) {
		t.Errorf("iov = %v, want %v", dt.IOV(), want)
	}
}

func TestDarrayNoneDimension(t *testing.T) {
	// Distribute rows in blocks, keep columns whole.
	dt, err := Darray([]int{4, 5}, []Distribution{DistBlock, DistNone},
		[]int{2, 1}, []int{1, 0}, RowMajor, Byte)
	if err != nil {
		t.Fatal(err)
	}
	dt.MustCommit()
	// Rows 2-3, all 5 columns: one coalesced run of 10 bytes at offset 10.
	if got := dt.IOV(); len(got) != 1 || got[0] != (Segment{10, 10}) {
		t.Errorf("iov = %v", got)
	}
}

func TestDarrayColMajor(t *testing.T) {
	// Fortran order: distributing the FIRST dimension cyclically over 2
	// procs in a 3x2 col-major array = every other element of the fastest
	// dimension.
	dt, err := Darray([]int{3, 2}, []Distribution{DistCyclic, DistNone},
		[]int{2, 1}, []int{1, 0}, ColMajor, Byte)
	if err != nil {
		t.Fatal(err)
	}
	dt.MustCommit()
	// Col-major 3x2: memory index = row + col*3. Proc 1 owns rows 1 (of
	// 0..2 cyclic over 2 procs -> rows 1 only? rows 1 then 3 (oob): {1}).
	want := []Segment{{1, 1}, {4, 1}}
	if !reflect.DeepEqual(dt.IOV(), want) {
		t.Errorf("iov = %v, want %v", dt.IOV(), want)
	}
}

func TestDarrayValidation(t *testing.T) {
	if _, err := Darray([]int{4}, []Distribution{DistBlock}, []int{2}, []int{2}, RowMajor, Byte); err == nil {
		t.Error("out-of-range coord accepted")
	}
	if _, err := Darray([]int{4}, []Distribution{DistNone}, []int{2}, []int{0}, RowMajor, Byte); err == nil {
		t.Error("DistNone over >1 procs accepted")
	}
	if _, err := Darray([]int{4, 4}, []Distribution{DistBlock}, []int{2}, []int{0}, RowMajor, Byte); err == nil {
		t.Error("dimension mismatch accepted")
	}
	if _, err := Darray(nil, nil, nil, nil, RowMajor, Byte); err == nil {
		t.Error("empty dims accepted")
	}
}

func TestDarrayTrailingProcessMayOwnNothing(t *testing.T) {
	// 4 elements over 3 procs block: blocks of 2: proc 2 owns nothing.
	dt, err := Darray([]int{4}, []Distribution{DistBlock}, []int{3}, []int{2}, RowMajor, Int32)
	if err != nil {
		t.Fatal(err)
	}
	if err := dt.Commit(); err != nil {
		t.Fatal(err)
	}
	if dt.Size() != 0 || len(dt.IOV()) != 0 {
		t.Errorf("empty share: size=%d iov=%v", dt.Size(), dt.IOV())
	}
}

func TestDistributionString(t *testing.T) {
	for _, d := range []Distribution{DistNone, DistBlock, DistCyclic} {
		if strings.Contains(d.String(), "(") {
			t.Errorf("missing name for %d", d)
		}
	}
}

// Property: over any grid and distribution mix, the processes' darray
// types partition the global array exactly — every element owned by
// exactly one process.
func TestPropDarrayPartition(t *testing.T) {
	f := func(g1Raw, g2Raw, p1Raw, p2Raw, d1Raw, d2Raw uint8) bool {
		g1, g2 := 1+int(g1Raw%8), 1+int(g2Raw%8)
		p1, p2 := 1+int(p1Raw%3), 1+int(p2Raw%3)
		dists := []Distribution{DistBlock, DistCyclic}
		d1, d2 := dists[int(d1Raw)%2], dists[int(d2Raw)%2]
		total := g1 * g2
		coverage := make([]int, total)
		for c1 := 0; c1 < p1; c1++ {
			for c2 := 0; c2 < p2; c2++ {
				dt, err := Darray([]int{g1, g2}, []Distribution{d1, d2},
					[]int{p1, p2}, []int{c1, c2}, RowMajor, Byte)
				if err != nil {
					return false
				}
				if err := dt.Commit(); err != nil {
					return false
				}
				for _, s := range dt.IOV() {
					for i := 0; i < s.Len; i++ {
						if s.Off+i >= total {
							return false
						}
						coverage[s.Off+i]++
					}
				}
			}
		}
		for _, c := range coverage {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: pack/unpack through a darray type round-trips (it is a legal
// committed type like any other).
func TestDarrayPackRoundTrip(t *testing.T) {
	dt, _ := Darray([]int{6, 6}, []Distribution{DistCyclic, DistBlock},
		[]int{2, 3}, []int{1, 1}, RowMajor, Int32)
	dt.MustCommit()
	span := dt.UB()
	h := mem.NewHostSpace("h", 2*span+dt.Size())
	src := h.Base()
	mem.Fill(src, span, func(i int) byte { return byte(i*3 + 7) })
	packed := h.Base().Add(span)
	dst := h.Base().Add(span + dt.Size())
	dt.Pack(packed, src, 1)
	dt.Unpack(dst, packed, 1)
	for _, s := range dt.SegmentsOf(1) {
		if !mem.Equal(dst.Add(s.Off), src.Add(s.Off), s.Len) {
			t.Fatalf("segment %+v mismatch", s)
		}
	}
}
