// Package osu implements the OSU-micro-benchmark-style measurements the
// paper's evaluation uses:
//
//   - the non-contiguous pack-scheme comparison of Figure 2 (D2H nc2nc,
//     D2H nc2c, D2D2H nc2c2c), run against a single simulated device;
//   - the vector-latency comparison of Figure 5 across the three designs
//     of Figure 4 (blocking Cpy2D+Send, the hand-written
//     Cpy2DAsync+CpyAsync+Isend pipeline, and MV2-GPU-NC);
//   - the block-size sweep of section IV-B.
//
// All benchmarks run a fresh simulated cluster per measurement so results
// are independent and deterministic.
package osu

import (
	"fmt"

	"mv2sim/internal/cluster"
	"mv2sim/internal/cuda"
	"mv2sim/internal/datatype"
	"mv2sim/internal/gpu"
	"mv2sim/internal/mem"
	"mv2sim/internal/mpi"
	"mv2sim/internal/report"
	"mv2sim/internal/sim"
	"mv2sim/internal/trace"
)

// PackScheme is one of the staging strategies of Figure 1/Figure 2.
type PackScheme int

const (
	// PackD2HNC2NC copies the strided device data to an equally strided
	// host buffer with one cudaMemcpy2D (Figure 1(a)).
	PackD2HNC2NC PackScheme = iota
	// PackD2HNC2C gathers the strided device data into a contiguous host
	// buffer with one cudaMemcpy2D (Figure 1(b)).
	PackD2HNC2C
	// PackD2D2HNC2C2C packs on the device first, then moves the packed
	// buffer across PCIe (Figure 1(c)) — the scheme the paper adopts.
	PackD2D2HNC2C2C
)

// String returns the label used in Figure 2.
func (s PackScheme) String() string {
	switch s {
	case PackD2HNC2NC:
		return "D2H nc2nc"
	case PackD2HNC2C:
		return "D2H nc2c"
	case PackD2D2HNC2C2C:
		return "D2D2H nc2c2c"
	default:
		return fmt.Sprintf("PackScheme(%d)", s)
	}
}

// PackSchemes lists all schemes in figure order.
var PackSchemes = []PackScheme{PackD2HNC2C, PackD2HNC2NC, PackD2D2HNC2C2C}

// PackConfig parameterizes the pack benchmark.
type PackConfig struct {
	ElemBytes  int // bytes per vector element (paper: 4, a float)
	PitchBytes int // distance between consecutive elements in the matrix
	Iters      int // timing iterations; the median is reported
	Model      gpu.CostModel
}

func (c PackConfig) withDefaults() PackConfig {
	if c.ElemBytes == 0 {
		c.ElemBytes = 4
	}
	if c.PitchBytes == 0 {
		c.PitchBytes = 64
	}
	if c.Iters == 0 {
		c.Iters = 5
	}
	return c
}

// PackLatency measures the time to move one msgBytes vector from device to
// host under the given scheme (Figure 2's y-axis).
func PackLatency(scheme PackScheme, msgBytes int, cfg PackConfig) (sim.Time, error) {
	cfg = cfg.withDefaults()
	rows := msgBytes / cfg.ElemBytes
	if rows == 0 {
		rows = 1
	}
	e := sim.New()
	dev := gpu.New(e, 0, gpu.Config{MemBytes: 2*rows*cfg.PitchBytes + (1 << 20), Model: cfg.Model})
	ctx := cuda.NewCtx(e, dev)
	host := mem.NewHostSpace("host", rows*cfg.PitchBytes+msgBytes)
	src, err := dev.Malloc(rows * cfg.PitchBytes)
	if err != nil {
		return 0, fmt.Errorf("osu: pack source alloc: %w", err)
	}

	var samples []sim.Time
	e.Spawn("bench", func(p *sim.Proc) {
		for it := 0; it < cfg.Iters; it++ {
			t0 := p.Now()
			switch scheme {
			case PackD2HNC2NC:
				ctx.Memcpy2D(p, host.Base(), cfg.PitchBytes, src, cfg.PitchBytes, cfg.ElemBytes, rows)
			case PackD2HNC2C:
				ctx.Memcpy2D(p, host.Base(), cfg.ElemBytes, src, cfg.PitchBytes, cfg.ElemBytes, rows)
			case PackD2D2HNC2C2C:
				tbuf := ctx.MustMalloc(msgBytes)
				s := ctx.NewStream()
				packed := ctx.Memcpy2DAsync(p, tbuf, cfg.ElemBytes, src, cfg.PitchBytes, cfg.ElemBytes, rows, s)
				p.Wait(packed)
				p.Wait(ctx.MemcpyAsync(p, host.Base(), tbuf, msgBytes, s))
				if err := ctx.Free(tbuf); err != nil {
					panic(err)
				}
			}
			samples = append(samples, p.Now()-t0)
		}
	})
	// Free the source before acting on the run error: an early return on
	// a failed run must not strand the allocation (Shutdown is idempotent
	// and safe after a failed Run).
	runErr := e.Run()
	e.Shutdown()
	if err := dev.Free(src); err != nil {
		return 0, fmt.Errorf("osu: free pack source: %w", err)
	}
	if runErr != nil {
		return 0, fmt.Errorf("osu: pack benchmark (%v, %s): %w", scheme, report.ByteSize(msgBytes), runErr)
	}
	if err := checkDeviceClean(dev); err != nil {
		return 0, err
	}
	return trace.Median(samples), nil
}

// checkDeviceClean is the single-device leak gate: allocator invariants
// must hold and no allocation may outlive the benchmark.
func checkDeviceClean(dev *gpu.Device) error {
	if err := dev.CheckAllocator(); err != nil {
		return fmt.Errorf("osu: device allocator corrupt: %w", err)
	}
	if live := dev.LiveAllocs(); live != 0 {
		return fmt.Errorf("osu: benchmark leaks %d device allocations (%d bytes)", live, dev.MemInUse())
	}
	return nil
}

// RunFigure2 produces the pack-scheme latency figure over the given sizes.
func RunFigure2(title string, sizes []int, cfg PackConfig) (*report.Figure, error) {
	fig := report.NewFigure(title)
	for _, scheme := range PackSchemes {
		s := fig.NewSeries(scheme.String())
		for _, size := range sizes {
			lat, err := PackLatency(scheme, size, cfg)
			if err != nil {
				return nil, err
			}
			s.Add(size, lat)
		}
	}
	return fig, nil
}

// Design is one of the three application designs of Figure 4.
type Design int

const (
	// DesignCpy2DSend is Figure 4(a): blocking cudaMemcpy2D staging plus
	// blocking MPI from host buffers.
	DesignCpy2DSend Design = iota
	// DesignManualPipeline is Figure 4(b): a hand-written chunked pipeline
	// of async 2D packs, async D2H copies, and non-blocking MPI.
	DesignManualPipeline
	// DesignMV2GPUNC is Figure 4(c): device buffers handed directly to
	// MPI with a committed vector datatype.
	DesignMV2GPUNC
)

// String returns the label used in Figure 5.
func (d Design) String() string {
	switch d {
	case DesignCpy2DSend:
		return "Cpy2D+Send"
	case DesignManualPipeline:
		return "Cpy2DAsync+CpyAsync+Isend"
	case DesignMV2GPUNC:
		return "MV2-GPU-NC"
	default:
		return fmt.Sprintf("Design(%d)", d)
	}
}

// Designs lists all designs in figure order.
var Designs = []Design{DesignCpy2DSend, DesignManualPipeline, DesignMV2GPUNC}

// VectorConfig parameterizes the vector-latency benchmark.
type VectorConfig struct {
	ElemBytes  int // paper: 4 bytes (float)
	PitchBytes int // matrix row pitch the vector strides over
	Iters      int
	Cluster    cluster.Config
}

func (c VectorConfig) withDefaults(msgBytes int) VectorConfig {
	if c.ElemBytes == 0 {
		c.ElemBytes = 4
	}
	if c.PitchBytes == 0 {
		c.PitchBytes = 64
	}
	if c.Iters == 0 {
		c.Iters = 3
	}
	if c.Cluster.Nodes == 0 {
		c.Cluster.Nodes = 2
	}
	if c.Cluster.GPUMemBytes == 0 {
		span := msgBytes / c.ElemBytes * c.PitchBytes
		c.Cluster.GPUMemBytes = 2*span + 2*msgBytes + (8 << 20)
	}
	return c
}

// VectorLatency measures the one-way latency of transferring one msgBytes
// vector from rank 0's GPU to rank 1's GPU under the given design: the
// virtual time from the sender entering its transfer code until the data
// is fully unpacked in the receiver's device buffer. The median over
// cfg.Iters iterations is returned.
func VectorLatency(design Design, msgBytes int, cfg VectorConfig) (sim.Time, error) {
	cfg = cfg.withDefaults(msgBytes)
	rows := msgBytes / cfg.ElemBytes
	if rows == 0 {
		rows = 1
	}
	elem, pitch := cfg.ElemBytes, cfg.PitchBytes
	span := rows * pitch

	vec, err := datatype.Vector(rows, elem, pitch, datatype.Byte)
	if err != nil {
		return 0, fmt.Errorf("osu: vector datatype: %w", err)
	}
	if err := vec.Commit(); err != nil {
		return 0, fmt.Errorf("osu: commit vector datatype: %w", err)
	}

	cl := cluster.New(cfg.Cluster)
	var t0 sim.Time
	var samples []sim.Time
	runErr := cl.Run(func(n *cluster.Node) {
		r := n.Rank
		buf := n.Ctx.MustMalloc(span)
		defer freeOrPanic(n.Ctx, buf)
		hostStage := r.AllocHost(msgBytes)
		defer r.FreeHost(hostStage)
		blockSize := r.World().Config().BlockSize

		for it := 0; it < cfg.Iters; it++ {
			r.Barrier()
			switch design {
			case DesignCpy2DSend:
				if r.Rank() == 0 {
					t0 = r.Now()
					// Gather to host with one blocking 2D copy, then send.
					n.Ctx.Memcpy2D(r.Proc(), hostStage, elem, buf, pitch, elem, rows)
					r.Send(hostStage, msgBytes, datatype.Byte, 1, it)
				} else {
					r.Recv(hostStage, msgBytes, datatype.Byte, 0, it)
					n.Ctx.Memcpy2D(r.Proc(), buf, pitch, hostStage, elem, elem, rows)
					samples = append(samples, r.Now()-t0)
				}
			case DesignManualPipeline:
				manualPipeline(n, buf, hostStage, msgBytes, rows, elem, pitch, blockSize, it, &t0, &samples)
			case DesignMV2GPUNC:
				if r.Rank() == 0 {
					t0 = r.Now()
					r.Send(buf, 1, vec, 1, it)
				} else {
					r.Recv(buf, 1, vec, 0, it)
					samples = append(samples, r.Now()-t0)
				}
			}
		}
	})
	if runErr != nil {
		return 0, fmt.Errorf("osu: vector latency (%v, %s): %w", design, report.ByteSize(msgBytes), runErr)
	}
	if err := cl.CheckDeviceLeaks(); err != nil {
		return 0, err
	}
	return trace.Median(samples), nil
}

// freeOrPanic releases a device allocation from inside a simulation
// process, where a bad free is a programming error the engine surfaces at
// the Run caller.
func freeOrPanic(ctx *cuda.Ctx, p mem.Ptr) {
	if err := ctx.Free(p); err != nil {
		panic(err)
	}
}

// manualPipeline is the Figure 4(b) code pattern: the application itself
// offloads packing to the GPU with async 2D copies and overlaps chunked
// D2H staging with non-blocking MPI — good performance, low productivity.
func manualPipeline(n *cluster.Node, buf, hostStage mem.Ptr, msgBytes, rows, elem, pitch, blockSize, tag int, t0 *sim.Time, samples *[]sim.Time) {
	r := n.Rank
	p := r.Proc()
	rowsPerChunk := max(1, blockSize/elem)
	nchunks := (rows + rowsPerChunk - 1) / rowsPerChunk
	chunkRows := func(c int) int { return min(rowsPerChunk, rows-c*rowsPerChunk) }

	if r.Rank() == 0 {
		*t0 = r.Now()
		tbuf := n.Ctx.MustMalloc(msgBytes)
		packS, d2hS := n.Ctx.NewStream(), n.Ctx.NewStream()
		packEv := make([]*sim.Event, nchunks)
		for c := 0; c < nchunks; c++ {
			ro := c * rowsPerChunk
			packEv[c] = n.Ctx.Memcpy2DAsync(p, tbuf.Add(ro*elem), elem, buf.Add(ro*pitch), pitch, elem, chunkRows(c), packS)
		}
		reqs := make([]*mpi.Request, nchunks)
		d2hEv := make([]*sim.Event, nchunks)
		issued, sent := 0, 0
		// Interleave: issue D2H as packs complete, Isend as D2H completes —
		// the cudaStreamQuery polling loop of Figure 4(b), event-driven.
		for sent < nchunks {
			if issued < nchunks {
				p.Wait(packEv[issued])
				off := issued * rowsPerChunk * elem
				nb := chunkRows(issued) * elem
				d2hEv[issued] = n.Ctx.MemcpyAsync(p, hostStage.Add(off), tbuf.Add(off), nb, d2hS)
				issued++
			}
			for sent < issued && d2hEv[sent].Fired() {
				off := sent * rowsPerChunk * elem
				nb := chunkRows(sent) * elem
				reqs[sent] = r.Isend(hostStage.Add(off), nb, datatype.Byte, 1, tag*1000+sent)
				sent++
			}
			if issued == nchunks && sent < nchunks {
				p.Wait(d2hEv[sent])
			}
		}
		r.Waitall(reqs...)
		if err := n.Ctx.Free(tbuf); err != nil {
			panic(err)
		}
	} else {
		tbuf := n.Ctx.MustMalloc(msgBytes)
		h2dS, unpackS := n.Ctx.NewStream(), n.Ctx.NewStream()
		reqs := make([]*mpi.Request, nchunks)
		for c := 0; c < nchunks; c++ {
			off := c * rowsPerChunk * elem
			nb := chunkRows(c) * elem
			reqs[c] = r.Irecv(hostStage.Add(off), nb, datatype.Byte, 0, tag*1000+c)
		}
		var unpackEvs []*sim.Event
		for c := 0; c < nchunks; c++ {
			r.Wait(reqs[c])
			off := c * rowsPerChunk * elem
			nb := chunkRows(c) * elem
			h2d := n.Ctx.MemcpyAsync(p, tbuf.Add(off), hostStage.Add(off), nb, h2dS)
			p.Wait(h2d)
			ro := c * rowsPerChunk
			unpackEvs = append(unpackEvs,
				n.Ctx.Memcpy2DAsync(p, buf.Add(ro*pitch), pitch, tbuf.Add(ro*elem), elem, elem, chunkRows(c), unpackS))
		}
		p.WaitAll(unpackEvs...)
		*samples = append(*samples, r.Now()-*t0)
		if err := n.Ctx.Free(tbuf); err != nil {
			panic(err)
		}
	}
}

// RunFigure5 produces the vector-latency figure over the given sizes.
func RunFigure5(title string, sizes []int, cfg VectorConfig) (*report.Figure, error) {
	fig := report.NewFigure(title)
	for _, d := range Designs {
		s := fig.NewSeries(d.String())
		for _, size := range sizes {
			lat, err := VectorLatency(d, size, cfg)
			if err != nil {
				return nil, err
			}
			s.Add(size, lat)
		}
	}
	return fig, nil
}

// BlockSizeSweep measures MV2-GPU-NC latency for one message size across
// pipeline block sizes (the §IV-B tuning experiment that found 64 KB
// optimal).
func BlockSizeSweep(msgBytes int, blockSizes []int, cfg VectorConfig) (*report.Table, error) {
	t := report.NewTable(
		fmt.Sprintf("Pipeline block-size sweep, %s vector message", report.ByteSize(msgBytes)),
		"block size", "latency (us)")
	for _, bs := range blockSizes {
		c := cfg
		c.Cluster.MPI.BlockSize = bs
		lat, err := VectorLatency(DesignMV2GPUNC, msgBytes, c)
		if err != nil {
			return nil, err
		}
		t.Add(report.ByteSize(bs), fmt.Sprintf("%.1f", lat.Micros()))
	}
	return t, nil
}

// WidthSweep measures pack latency versus element width at a fixed packed
// size — the dimension the paper fixes at 4 bytes ("a constant chunk size
// of 4 bytes"). Wider elements mean fewer PCIe row transactions, so the
// direct D2H schemes improve steeply with width while the offloaded
// scheme barely moves; the offload advantage is largest exactly where the
// paper measures.
func WidthSweep(msgBytes int, widths []int, cfg PackConfig) (*report.Table, error) {
	t := report.NewTable(
		fmt.Sprintf("Pack latency vs element width, %s message (us)", report.ByteSize(msgBytes)),
		"width", "D2H nc2nc", "D2D2H nc2c2c", "offload speedup")
	for _, w := range widths {
		c := cfg
		c.ElemBytes = w
		if c.PitchBytes < 4*w {
			c.PitchBytes = 4 * w
		}
		direct, err := PackLatency(PackD2HNC2NC, msgBytes, c)
		if err != nil {
			return nil, err
		}
		offload, err := PackLatency(PackD2D2HNC2C2C, msgBytes, c)
		if err != nil {
			return nil, err
		}
		t.Add(fmt.Sprintf("%dB", w),
			fmt.Sprintf("%.1f", direct.Micros()),
			fmt.Sprintf("%.1f", offload.Micros()),
			fmt.Sprintf("%.1fx", float64(direct)/float64(offload)))
	}
	return t, nil
}
