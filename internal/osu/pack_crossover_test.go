package osu

import (
	"testing"

	"mv2sim/internal/gpu"
	"mv2sim/internal/ib"
)

// TestPackCrossoverSweep runs a reduced sweep grid and checks the
// acceptance properties of the auto heuristic against the measured
// engines: auto must match the measured-best engine at every point, the
// kernel must win the device-engine comparison beyond the per-width
// break-even (and lose below it), and the NIC gather must win a nonempty
// region (few coarse rows) while losing the many-fine-rows region.
func TestPackCrossoverSweep(t *testing.T) {
	res, err := PackCrossover(
		[]int{16, 64, 101, 256, 4096},
		[]int{4, 64, 1024, 4096},
		4, gpu.CostModel{}, ib.Model{})
	if err != nil {
		t.Fatal(err)
	}
	nicWins := 0
	for _, pt := range res.Grid {
		// The three-way pick mirrors the measured costs, so auto must
		// agree with the measured best exactly — not just within a band.
		if pt.Auto != pt.Best {
			t.Errorf("%dx%d: auto picked %s, measured best is %s (memcpy2d=%.3f kernel=%.3f nic=%.3f)",
				pt.Rows, pt.RowBytes, pt.Auto, pt.Best, pt.Memcpy2DUs, pt.KernelUs, pt.NicUs)
		}
		best := pt.Memcpy2DUs
		for _, e := range pt.engines() {
			if e.Us < best {
				best = e.Us
			}
		}
		if pt.AutoUs != best {
			t.Errorf("%dx%d: auto_us %.3f != best measured %.3f", pt.Rows, pt.RowBytes, pt.AutoUs, best)
		}
		if pt.Best == "nic" {
			nicWins++
		}
		// The break-even table stays a device-engine property: which of
		// copy and kernel wins, independent of the NIC column.
		devBest := "memcpy2d"
		if pt.KernelUs < pt.Memcpy2DUs {
			devBest = "kernel"
		}
		be := res.BreakEvenRows[pt.RowBytes]
		switch {
		case be < 0:
			if devBest != "memcpy2d" {
				t.Errorf("%dx%d: kernel measured faster but the model says it never wins", pt.Rows, pt.RowBytes)
			}
		case pt.Rows >= be:
			if devBest != "kernel" {
				t.Errorf("%dx%d: memcpy2d measured faster at/beyond break-even %d", pt.Rows, pt.RowBytes, be)
			}
		default:
			if devBest != "memcpy2d" {
				t.Errorf("%dx%d: kernel measured faster below break-even %d", pt.Rows, pt.RowBytes, be)
			}
		}
	}
	if nicWins == 0 {
		t.Error("NIC gather wins nowhere on the sweep grid; expected a nonempty few-coarse-rows region")
	}
	// Small chunks of few rows dodge the device engines' issue+launch
	// overhead entirely; big many-row chunks must stay on the device.
	byShape := map[[2]int]CrossoverPoint{}
	for _, pt := range res.Grid {
		byShape[[2]int{pt.Rows, pt.RowBytes}] = pt
	}
	if pt := byShape[[2]int{16, 4}]; pt.Best != "nic" {
		t.Errorf("16x4: best = %s, want nic", pt.Best)
	}
	if pt := byShape[[2]int{4096, 4}]; pt.Best == "nic" {
		t.Error("4096x4: NIC gather should lose to the device engines")
	}
	// The calibrated break-even for the paper's 4-byte elements: the
	// kernel's 1us launch gap divided by the ~9.94ns/row copy-engine
	// premium. Wide 4KB rows never cross.
	if be := res.BreakEvenRows[4]; be != 101 {
		t.Errorf("4-byte-row break-even = %d rows, want 101", be)
	}
	if be := res.BreakEvenRows[4096]; be != -1 {
		t.Errorf("4KB-row break-even = %d, want never (-1)", be)
	}
}
