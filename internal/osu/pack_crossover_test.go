package osu

import (
	"testing"

	"mv2sim/internal/gpu"
)

// TestPackCrossoverSweep runs a reduced sweep grid and checks the
// acceptance properties of the auto heuristic against the measured
// engines: the kernel must win beyond the per-width break-even (and lose
// below it), and the auto pick must stay within 5% of the per-shape best.
func TestPackCrossoverSweep(t *testing.T) {
	res, err := PackCrossover(
		[]int{16, 64, 101, 256, 4096},
		[]int{4, 64, 1024, 4096},
		4, gpu.CostModel{})
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range res.Grid {
		best := pt.Memcpy2DUs
		if pt.KernelUs < best {
			best = pt.KernelUs
		}
		if pt.AutoUs > best*1.05 {
			t.Errorf("%dx%d: auto picked %s (%.3fus), more than 5%% off the best %.3fus",
				pt.Rows, pt.RowBytes, pt.Auto, pt.AutoUs, best)
		}
		be := res.BreakEvenRows[pt.RowBytes]
		switch {
		case be < 0:
			if pt.Best != "memcpy2d" {
				t.Errorf("%dx%d: kernel measured faster but the model says it never wins", pt.Rows, pt.RowBytes)
			}
		case pt.Rows >= be:
			if pt.Best != "kernel" {
				t.Errorf("%dx%d: memcpy2d measured faster at/beyond break-even %d", pt.Rows, pt.RowBytes, be)
			}
		default:
			if pt.Best != "memcpy2d" {
				t.Errorf("%dx%d: kernel measured faster below break-even %d", pt.Rows, pt.RowBytes, be)
			}
		}
	}
	// The calibrated break-even for the paper's 4-byte elements: the
	// kernel's 1us launch gap divided by the ~9.94ns/row copy-engine
	// premium. Wide 4KB rows never cross.
	if be := res.BreakEvenRows[4]; be != 101 {
		t.Errorf("4-byte-row break-even = %d rows, want 101", be)
	}
	if be := res.BreakEvenRows[4096]; be != -1 {
		t.Errorf("4KB-row break-even = %d, want never (-1)", be)
	}
}
