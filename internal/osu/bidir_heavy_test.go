package osu

import (
	"fmt"
	"testing"
)

func TestBidirHeavyNoDeadlock(t *testing.T) {
	// The exact configuration that deadlocked the shared-pool design:
	// 16 concurrent 4 MB vector messages in each direction.
	bw, err := BidirBandwidth(4<<20, 16, VectorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	fmt.Printf("bidir 4MB x16: %.0f MB/s\n", bw)
	if bw <= 0 {
		t.Fatal("no progress")
	}
}
