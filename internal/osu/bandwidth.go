package osu

import (
	"fmt"

	"mv2sim/internal/cluster"
	"mv2sim/internal/datatype"
	"mv2sim/internal/mpi"
	"mv2sim/internal/report"
	"mv2sim/internal/sim"
)

// Bandwidth measures osu_bw-style streaming throughput for non-contiguous
// device vectors under MV2-GPU-NC: a window of back-to-back non-blocking
// sends, completed by a zero-byte acknowledgement. It extends the paper's
// latency-only evaluation in the direction its future work names.
//
// Returned value is MB/s (10^6 bytes per second) of packed payload.
func Bandwidth(msgBytes, window int, cfg VectorConfig) (float64, error) {
	cfg = cfg.withDefaults(msgBytes)
	rows := msgBytes / cfg.ElemBytes
	if rows == 0 {
		rows = 1
	}
	span := rows * cfg.PitchBytes
	// Device memory must hold the strided user buffer plus one packed tbuf
	// per in-flight message.
	if need := span + window*msgBytes + (32 << 20); cfg.Cluster.GPUMemBytes < need {
		cfg.Cluster.GPUMemBytes = need
	}
	vec, err := datatype.Vector(rows, cfg.ElemBytes, cfg.PitchBytes, datatype.Byte)
	if err != nil {
		return 0, fmt.Errorf("osu: bandwidth datatype: %w", err)
	}
	if err := vec.Commit(); err != nil {
		return 0, fmt.Errorf("osu: commit bandwidth datatype: %w", err)
	}

	cl := cluster.New(cfg.Cluster)
	var elapsed sim.Time
	runErr := cl.Run(func(n *cluster.Node) {
		r := n.Rank
		buf := n.Ctx.MustMalloc(span)
		defer freeOrPanic(n.Ctx, buf)
		switch r.Rank() {
		case 0:
			t0 := r.Now()
			reqs := make([]*mpi.Request, window)
			for i := 0; i < window; i++ {
				reqs[i] = r.Isend(buf, 1, vec, 1, i)
			}
			r.Waitall(reqs...)
			r.Recv(buf, 0, datatype.Byte, 1, 1<<20) // ack
			elapsed = r.Now() - t0
		case 1:
			reqs := make([]*mpi.Request, window)
			for i := 0; i < window; i++ {
				reqs[i] = r.Irecv(buf, 1, vec, 0, i)
			}
			r.Waitall(reqs...)
			r.Send(buf, 0, datatype.Byte, 0, 1<<20)
		}
	})
	if runErr != nil {
		return 0, fmt.Errorf("osu: bandwidth (%s, window %d): %w", report.ByteSize(msgBytes), window, runErr)
	}
	if err := cl.CheckDeviceLeaks(); err != nil {
		return 0, err
	}
	totalBytes := float64(window) * float64(msgBytes)
	return totalBytes / elapsed.Seconds() / 1e6, nil
}

// BidirBandwidth measures osu_bibw-style aggregate throughput: both ranks
// stream a window of vector messages at each other simultaneously.
func BidirBandwidth(msgBytes, window int, cfg VectorConfig) (float64, error) {
	cfg = cfg.withDefaults(msgBytes)
	rows := msgBytes / cfg.ElemBytes
	if rows == 0 {
		rows = 1
	}
	span := rows * cfg.PitchBytes
	// Two strided user buffers plus packed tbufs for every in-flight
	// message in both directions.
	if need := 2*span + 2*window*msgBytes + (32 << 20); cfg.Cluster.GPUMemBytes < need {
		cfg.Cluster.GPUMemBytes = need
	}
	vec, err := datatype.Vector(rows, cfg.ElemBytes, cfg.PitchBytes, datatype.Byte)
	if err != nil {
		return 0, fmt.Errorf("osu: bidir bandwidth datatype: %w", err)
	}
	if err := vec.Commit(); err != nil {
		return 0, fmt.Errorf("osu: commit bidir bandwidth datatype: %w", err)
	}

	cl := cluster.New(cfg.Cluster)
	var elapsed sim.Time
	runErr := cl.Run(func(n *cluster.Node) {
		r := n.Rank
		tx := n.Ctx.MustMalloc(span)
		defer freeOrPanic(n.Ctx, tx)
		rx := n.Ctx.MustMalloc(span)
		defer freeOrPanic(n.Ctx, rx)
		peer := 1 - r.Rank()
		t0 := r.Now()
		reqs := make([]*mpi.Request, 0, 2*window)
		for i := 0; i < window; i++ {
			reqs = append(reqs, r.Irecv(rx, 1, vec, peer, i))
		}
		for i := 0; i < window; i++ {
			reqs = append(reqs, r.Isend(tx, 1, vec, peer, i))
		}
		r.Waitall(reqs...)
		r.Barrier()
		if r.Rank() == 0 {
			elapsed = r.Now() - t0
		}
	})
	if runErr != nil {
		return 0, fmt.Errorf("osu: bidir bandwidth (%s, window %d): %w", report.ByteSize(msgBytes), window, runErr)
	}
	if err := cl.CheckDeviceLeaks(); err != nil {
		return 0, err
	}
	totalBytes := 2 * float64(window) * float64(msgBytes)
	return totalBytes / elapsed.Seconds() / 1e6, nil
}

// RunBandwidthTable sweeps message sizes and reports uni- and
// bidirectional streaming bandwidth of non-contiguous device vectors.
func RunBandwidthTable(sizes []int, window int, cfg VectorConfig) (*report.Table, error) {
	t := report.NewTable(
		fmt.Sprintf("Vector streaming bandwidth, window %d (MB/s)", window),
		"size", "unidirectional", "bidirectional")
	for _, size := range sizes {
		uni, err := Bandwidth(size, window, cfg)
		if err != nil {
			return nil, err
		}
		bidir, err := BidirBandwidth(size, window, cfg)
		if err != nil {
			return nil, err
		}
		t.Add(report.ByteSize(size),
			fmt.Sprintf("%.0f", uni),
			fmt.Sprintf("%.0f", bidir))
	}
	return t, nil
}

// RailsSweep measures unidirectional vector streaming bandwidth at a fixed
// message size across HCA rail counts — the multi-rail scaling view. Large
// messages should gain with rails until a non-wire stage (pack engine,
// PCIe) becomes the bottleneck; the speedup column is relative to the first
// entry.
func RailsSweep(msgBytes, window int, rails []int, cfg VectorConfig) (*report.Table, error) {
	t := report.NewTable(
		fmt.Sprintf("Multi-rail streaming bandwidth, %s vector message, window %d", report.ByteSize(msgBytes), window),
		"rails", "bandwidth (MB/s)", "speedup")
	var base float64
	for i, nr := range rails {
		c := cfg
		c.Cluster.Rails = nr
		bw, err := Bandwidth(msgBytes, window, c)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			base = bw
		}
		t.Add(fmt.Sprintf("%d", nr),
			fmt.Sprintf("%.0f", bw),
			fmt.Sprintf("%.2fx", bw/base))
	}
	return t, nil
}

// MultiPairLatency runs the vector latency measurement on `pairs` disjoint
// node pairs simultaneously (ranks 2i -> 2i+1) and returns the slowest
// pair's transfer time. On a non-blocking fabric like the paper's 8-node
// QDR cluster, disjoint pairs must not slow each other down.
func MultiPairLatency(msgBytes, pairs int, cfg VectorConfig) (sim.Time, error) {
	cfg = cfg.withDefaults(msgBytes)
	cfg.Cluster.Nodes = 2 * pairs
	rows := msgBytes / cfg.ElemBytes
	if rows == 0 {
		rows = 1
	}
	// Tight per-node memory: the footprint is 2*pairs nodes, so the
	// default 64 MB heaps would put a 64-pair sweep at 12 GB of host
	// allocation per run. The benchmark only needs the vector span on
	// device plus staging headroom; sizes here don't affect virtual time.
	span := rows * cfg.PitchBytes
	if cfg.Cluster.GPUMemBytes < span+(4<<20) {
		cfg.Cluster.GPUMemBytes = span + (8 << 20)
	}
	if cfg.Cluster.HostHeapBytes == 0 {
		cfg.Cluster.HostHeapBytes = 4 << 20
	}
	vec, err := datatype.Vector(rows, cfg.ElemBytes, cfg.PitchBytes, datatype.Byte)
	if err != nil {
		return 0, fmt.Errorf("osu: multi-pair datatype: %w", err)
	}
	if err := vec.Commit(); err != nil {
		return 0, fmt.Errorf("osu: commit multi-pair datatype: %w", err)
	}

	cl := cluster.New(cfg.Cluster)
	var worst sim.Time
	runErr := cl.Run(func(n *cluster.Node) {
		r := n.Rank
		buf := n.Ctx.MustMalloc(span)
		defer freeOrPanic(n.Ctx, buf)
		r.Barrier()
		t0 := r.Now()
		if r.Rank()%2 == 0 {
			r.Send(buf, 1, vec, r.Rank()+1, 0)
		} else {
			r.Recv(buf, 1, vec, r.Rank()-1, 0)
			if d := r.Now() - t0; d > worst {
				worst = d
			}
		}
	})
	if runErr != nil {
		return 0, fmt.Errorf("osu: multi-pair latency (%s, %d pairs): %w", report.ByteSize(msgBytes), pairs, runErr)
	}
	if err := cl.CheckDeviceLeaks(); err != nil {
		return 0, err
	}
	return worst, nil
}
