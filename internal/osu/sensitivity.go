package osu

import (
	"fmt"

	"mv2sim/internal/gpu"
	"mv2sim/internal/report"
)

// Sensitivity analysis: the simulator's absolute numbers depend on
// calibrated constants, so the scientific question is whether the paper's
// conclusions survive when those constants are wrong. SensitivitySweep
// re-derives the headline result — MV2-GPU-NC's improvement over the
// blocking Cpy2D+Send design — while scaling one cost-model parameter
// through a range of perturbation factors.

// SensitivityParam selects which constant is perturbed.
type SensitivityParam int

const (
	// SensPCIeRow scales the per-row cost of strided PCIe copies (the
	// constant behind Figure 2's D2H curves).
	SensPCIeRow SensitivityParam = iota
	// SensDevRow scales the per-row cost of device-internal strided
	// copies (the offload's own cost).
	SensDevRow
	// SensWire scales the InfiniBand bandwidth.
	SensWire
	// SensPCIeBW scales the contiguous PCIe bandwidth.
	SensPCIeBW
)

func (p SensitivityParam) String() string {
	switch p {
	case SensPCIeRow:
		return "PCIe per-row cost"
	case SensDevRow:
		return "device per-row cost"
	case SensWire:
		return "IB bandwidth"
	case SensPCIeBW:
		return "PCIe bandwidth"
	default:
		return fmt.Sprintf("SensitivityParam(%d)", p)
	}
}

// SensitivityPoint is one measurement of the sweep.
type SensitivityPoint struct {
	Param       SensitivityParam
	Factor      float64
	Improvement float64 // (blocking - nc) / blocking
}

// perturb returns the default GPU cost model with one parameter scaled.
func perturb(param SensitivityParam, factor float64) (gpu.CostModel, float64) {
	m := gpu.DefaultModel()
	ibBW := 0.0 // 0 = default
	switch param {
	case SensPCIeRow:
		m.PCIeRowNC2NC = scaleTime(m.PCIeRowNC2NC, factor)
		m.PCIeRowNC2C = scaleTime(m.PCIeRowNC2C, factor)
	case SensDevRow:
		m.DevRow = scaleTime(m.DevRow, factor)
	case SensWire:
		ibBW = 3.2e9 * factor
	case SensPCIeBW:
		m.PCIeBandwidth *= factor
	}
	return m, ibBW
}

func scaleTime[T ~int64](t T, f float64) T { return T(float64(t) * f) }

// SensitivitySweep measures the MV2-GPU-NC improvement over Cpy2D+Send for
// one message size across perturbation factors of one parameter.
func SensitivitySweep(param SensitivityParam, factors []float64, msgBytes int) ([]SensitivityPoint, error) {
	var out []SensitivityPoint
	for _, f := range factors {
		model, ibBW := perturb(param, f)
		cfg := VectorConfig{Iters: 1}
		cfg.Cluster.GPUModel = model
		if ibBW > 0 {
			cfg.Cluster.IBModel.Bandwidth = ibBW
		}
		blocking, err := VectorLatency(DesignCpy2DSend, msgBytes, cfg)
		if err != nil {
			return nil, fmt.Errorf("osu: sensitivity sweep (%v x%g): %w", param, f, err)
		}
		nc, err := VectorLatency(DesignMV2GPUNC, msgBytes, cfg)
		if err != nil {
			return nil, fmt.Errorf("osu: sensitivity sweep (%v x%g): %w", param, f, err)
		}
		out = append(out, SensitivityPoint{
			Param:       param,
			Factor:      f,
			Improvement: 1 - float64(nc)/float64(blocking),
		})
	}
	return out, nil
}

// SensitivityTable runs the sweep for every parameter and renders the
// improvement matrix.
func SensitivityTable(factors []float64, msgBytes int) (*report.Table, error) {
	headers := []string{"parameter"}
	for _, f := range factors {
		headers = append(headers, fmt.Sprintf("x%.2g", f))
	}
	t := report.NewTable(
		fmt.Sprintf("MV2-GPU-NC improvement over Cpy2D+Send (%s vector) under cost-model perturbation",
			report.ByteSize(msgBytes)),
		headers...)
	for _, p := range []SensitivityParam{SensPCIeRow, SensDevRow, SensWire, SensPCIeBW} {
		pts, err := SensitivitySweep(p, factors, msgBytes)
		if err != nil {
			return nil, err
		}
		row := []string{p.String()}
		for _, pt := range pts {
			row = append(row, fmt.Sprintf("%.0f%%", 100*pt.Improvement))
		}
		t.Add(row...)
	}
	return t, nil
}
