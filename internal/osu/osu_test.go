package osu

import (
	"strings"
	"testing"

	"mv2sim/internal/core"
	"mv2sim/internal/sim"
)

// packLat and friends fail the test on benchmark error (including the
// end-of-run device-leak gate) so assertions stay one-liners.
func packLat(t *testing.T, s PackScheme, msg int, cfg PackConfig) sim.Time {
	t.Helper()
	lat, err := PackLatency(s, msg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return lat
}

func vecLat(t *testing.T, d Design, msg int, cfg VectorConfig) sim.Time {
	t.Helper()
	lat, err := VectorLatency(d, msg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return lat
}

func bw(t *testing.T, msg, window int, cfg VectorConfig) float64 {
	t.Helper()
	v, err := Bandwidth(msg, window, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// Figure 2 / section I-A anchor: for a 4 KB vector the paper measures
// ~200 µs (nc2nc), ~281 µs (nc2c) and ~35 µs (nc2c2c) on a Tesla C2050.
func TestMotivationAnchors4KB(t *testing.T) {
	cfg := PackConfig{}
	nc2nc := packLat(t, PackD2HNC2NC, 4096, cfg)
	nc2c := packLat(t, PackD2HNC2C, 4096, cfg)
	nc2c2c := packLat(t, PackD2D2HNC2C2C, 4096, cfg)

	within := func(name string, got sim.Time, lo, hi float64) {
		if us := got.Micros(); us < lo || us > hi {
			t.Errorf("%s @4KB = %.1fus, want [%.0f,%.0f] (paper anchor)", name, us, lo, hi)
		}
	}
	within("D2H nc2nc", nc2nc, 150, 260)
	within("D2H nc2c", nc2c, 220, 340)
	within("D2D2H nc2c2c", nc2c2c, 15, 60)
	if !(nc2c2c < nc2nc && nc2nc < nc2c) {
		t.Errorf("ordering: nc2c2c=%v nc2nc=%v nc2c=%v", nc2c2c, nc2nc, nc2c)
	}
}

// Figure 2(b): at 4 MB the offloaded scheme is a few percent of nc2nc.
func TestPackLargeRatio(t *testing.T) {
	cfg := PackConfig{Iters: 1}
	nc2nc := packLat(t, PackD2HNC2NC, 4<<20, cfg)
	nc2c2c := packLat(t, PackD2D2HNC2C2C, 4<<20, cfg)
	if ratio := float64(nc2c2c) / float64(nc2nc); ratio > 0.12 {
		t.Errorf("nc2c2c/nc2nc @4MB = %.3f, want < 0.12 (paper: 0.048)", ratio)
	}
}

// Figure 2(a): below ~64 B the direct copy wins (offload overhead
// dominates); beyond a few hundred bytes the offload wins.
func TestPackCrossover(t *testing.T) {
	cfg := PackConfig{}
	if d, o := packLat(t, PackD2HNC2NC, 16, cfg), packLat(t, PackD2D2HNC2C2C, 16, cfg); d > o {
		t.Errorf("@16B: direct %v should beat offload %v", d, o)
	}
	if d, o := packLat(t, PackD2HNC2NC, 1024, cfg), packLat(t, PackD2D2HNC2C2C, 1024, cfg); o > d {
		t.Errorf("@1KB: offload %v should beat direct %v", o, d)
	}
}

// Figure 5(b): at 4 MB, MV2-GPU-NC achieves ~88% improvement over the
// blocking Cpy2D+Send design, and roughly matches the hand-written
// pipeline.
func TestFigure5LargeMessage(t *testing.T) {
	cfg := VectorConfig{Iters: 1}
	const msg = 4 << 20
	blocking := vecLat(t, DesignCpy2DSend, msg, cfg)
	manual := vecLat(t, DesignManualPipeline, msg, cfg)
	nc := vecLat(t, DesignMV2GPUNC, msg, cfg)

	impr := 1 - float64(nc)/float64(blocking)
	if impr < 0.70 {
		t.Errorf("MV2-GPU-NC improvement @4MB = %.0f%%, want ≥70%% (paper: 88%%)", 100*impr)
	}
	// The library path and the manual pipeline should be close (paper:
	// "similar performance"); allow 35% either way. The manual pipeline
	// packs with cudaMemcpy2DAsync, so the paper-parity comparison pins
	// the library to the same engine — the default auto mode packs these
	// 4-byte rows with the kernel and beats the manual code handily.
	cpCfg := cfg
	cpCfg.Cluster.Core.PackMode = core.PackModeMemcpy2D
	cpCfg.Cluster.Core.UnpackMode = core.PackModeMemcpy2D
	ncCopy := vecLat(t, DesignMV2GPUNC, msg, cpCfg)
	ratio := float64(ncCopy) / float64(manual)
	if ratio < 0.65 || ratio > 1.35 {
		t.Errorf("MV2-GPU-NC(memcpy2d)/manual @4MB = %.2f, want ~1.0", ratio)
	}
	// The auto default must not lose to the pinned copy-engine path.
	if nc > ncCopy {
		t.Errorf("auto pack mode %v slower than pinned memcpy2d %v @4MB", nc, ncCopy)
	}
}

// Figure 5(a): small messages still favour (or at least do not punish)
// the library path relative to blocking staging.
func TestFigure5SmallMessage(t *testing.T) {
	cfg := VectorConfig{}
	blocking := vecLat(t, DesignCpy2DSend, 4096, cfg)
	nc := vecLat(t, DesignMV2GPUNC, 4096, cfg)
	if nc > blocking {
		t.Errorf("@4KB MV2-GPU-NC %v slower than Cpy2D+Send %v", nc, blocking)
	}
}

// Latency must be monotone in message size for every design.
func TestLatencyMonotone(t *testing.T) {
	cfg := VectorConfig{Iters: 1}
	for _, d := range Designs {
		prev := sim.Time(0)
		for _, size := range []int{1 << 10, 64 << 10, 1 << 20} {
			lat := vecLat(t, d, size, cfg)
			if lat <= prev {
				t.Errorf("%v: latency(%d) = %v not > latency(prev) = %v", d, size, lat, prev)
			}
			prev = lat
		}
	}
}

// §IV-B: the block-size curve is U-shaped around 64 KB — too-small blocks
// pay per-chunk overhead, too-large blocks lose overlap.
func TestBlockSizeSweepShape(t *testing.T) {
	cfg := VectorConfig{Iters: 1}
	const msg = 4 << 20
	lat := func(bs int) sim.Time {
		c := cfg
		c.Cluster.MPI.BlockSize = bs
		return vecLat(t, DesignMV2GPUNC, msg, c)
	}
	tiny := lat(4 << 10)
	mid := lat(64 << 10)
	huge := lat(4 << 20) // single chunk: no pipelining at all
	if mid >= tiny {
		t.Errorf("64KB blocks (%v) not faster than 4KB blocks (%v)", mid, tiny)
	}
	if mid >= huge {
		t.Errorf("64KB blocks (%v) not faster than whole-message block (%v)", mid, huge)
	}
}

func TestRunFigureRendering(t *testing.T) {
	fig, err := RunFigure2("Fig2a", []int{16, 256}, PackConfig{Iters: 1})
	if err != nil {
		t.Fatal(err)
	}
	out := fig.String()
	for _, want := range []string{"Fig2a", "D2H nc2nc", "D2D2H nc2c2c", "256"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure missing %q:\n%s", want, out)
		}
	}
	if len(fig.Series) != 3 {
		t.Errorf("series = %d", len(fig.Series))
	}
}

func TestSchemeAndDesignStrings(t *testing.T) {
	for _, s := range PackSchemes {
		if strings.Contains(s.String(), "(") {
			t.Errorf("missing name for scheme %d", s)
		}
	}
	for _, d := range Designs {
		if strings.Contains(d.String(), "(") {
			t.Errorf("missing name for design %d", d)
		}
	}
}

func TestBlockSizeSweepTable(t *testing.T) {
	tbl, err := BlockSizeSweep(256<<10, []int{32 << 10, 64 << 10}, VectorConfig{Iters: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 || !strings.Contains(tbl.String(), "64K") {
		t.Errorf("table:\n%s", tbl.String())
	}
}

func TestBandwidthIncreasesWithSize(t *testing.T) {
	cfg := VectorConfig{}
	small := bw(t, 16<<10, 8, cfg)
	large := bw(t, 1<<20, 8, cfg)
	if small <= 0 || large <= 0 {
		t.Fatalf("bandwidths: %v, %v", small, large)
	}
	if large <= small {
		t.Errorf("bandwidth not increasing: %0.f MB/s @16KB vs %0.f MB/s @1MB", small, large)
	}
	// The pack engine bounds vector throughput well below the wire rate.
	if large > 3200 {
		t.Errorf("vector bandwidth %0.f MB/s exceeds the QDR wire", large)
	}
}

func TestBidirBandwidthExceedsUnidirectional(t *testing.T) {
	cfg := VectorConfig{}
	uni := bw(t, 256<<10, 8, cfg)
	bidir, err := BidirBandwidth(256<<10, 8, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if bidir <= uni {
		t.Errorf("bidirectional %0.f MB/s not above unidirectional %0.f MB/s", bidir, uni)
	}
}

func TestBandwidthTableRendering(t *testing.T) {
	tbl, err := RunBandwidthTable([]int{64 << 10}, 4, VectorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 1 || !strings.Contains(tbl.String(), "64K") {
		t.Errorf("table:\n%s", tbl.String())
	}
}

// Disjoint pairs on the 8-node fabric do not contend: four simultaneous
// transfers finish in (about) the time of one.
func TestMultiPairScaling(t *testing.T) {
	cfg := VectorConfig{}
	one, err := MultiPairLatency(256<<10, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	four, err := MultiPairLatency(256<<10, 4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if four > one*11/10 {
		t.Errorf("4 disjoint pairs took %v, single pair %v; fabric contention where none should exist", four, one)
	}
}

// The headline conclusion must be robust to calibration error: scaling
// any single cost constant by 1/4x..4x never flips the winner, and the
// improvement stays substantial.
func TestSensitivityRobustness(t *testing.T) {
	factors := []float64{0.25, 1, 4}
	for _, p := range []SensitivityParam{SensPCIeRow, SensDevRow, SensWire, SensPCIeBW} {
		pts, err := SensitivitySweep(p, factors, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		for _, pt := range pts {
			if pt.Improvement < 0.5 {
				t.Errorf("%v x%.2g: improvement %.0f%% below 50%% — conclusion not robust",
					pt.Param, pt.Factor, 100*pt.Improvement)
			}
		}
	}
}

func TestSensitivityTableRendering(t *testing.T) {
	tbl, err := SensitivityTable([]float64{0.5, 1}, 256<<10)
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.String()
	for _, want := range []string{"PCIe per-row", "IB bandwidth", "x0.5"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

// Element width controls the number of PCIe row transactions: the offload
// advantage must shrink monotonically as elements get wider (fewer rows).
func TestWidthSweepShape(t *testing.T) {
	cfg := PackConfig{Iters: 1}
	speedup := func(w int) float64 {
		c := cfg
		c.ElemBytes = w
		c.PitchBytes = 4 * w
		d := packLat(t, PackD2HNC2NC, 256<<10, c)
		o := packLat(t, PackD2D2HNC2C2C, 256<<10, c)
		return float64(d) / float64(o)
	}
	narrow, wide := speedup(4), speedup(256)
	if narrow <= wide {
		t.Errorf("offload speedup %0.1fx at 4B not above %0.1fx at 256B", narrow, wide)
	}
	if narrow < 5 {
		t.Errorf("offload speedup at 4B = %0.1fx, expected large", narrow)
	}
}
