// Pack-engine crossover sweep. Three engines compete to pack one
// pipeline-chunk-shaped (rows × rowBytes) strided block: the copy engine
// charges DevRow per row on top of byte bandwidth; the gather kernel
// charges a higher per-byte rate and a larger launch cost but no row
// term; the HCA's SGE unit charges per gathered segment plus a
// WQE-posting term, with no device involvement at all. This sweep
// measures all of them per grid cell and locates the kernel-vs-copy
// break-even row count per row width — the experimental basis of core's
// PackModeAuto heuristic, whose three-way pick must match the measured
// best at every point.
package osu

import (
	"fmt"

	"mv2sim/internal/core"
	"mv2sim/internal/cuda"
	"mv2sim/internal/datatype"
	"mv2sim/internal/gpu"
	"mv2sim/internal/ib"
	"mv2sim/internal/mem"
	"mv2sim/internal/report"
	"mv2sim/internal/sim"
)

// CrossoverPoint is one (rows, rowBytes) cell of the sweep grid.
type CrossoverPoint struct {
	Rows       int     `json:"rows"`
	RowBytes   int     `json:"row_bytes"`
	Memcpy2DUs float64 `json:"memcpy2d_us"`
	KernelUs   float64 `json:"kernel_us"`
	NicUs      float64 `json:"nic_us"`
	Auto       string  `json:"auto"`    // engine PackModeAuto would pick
	AutoUs     float64 `json:"auto_us"` // its measured time
	Best       string  `json:"best"`    // fastest engine, measured
}

// engines returns the point's measured engine table in tie-break order:
// earlier entries win ties, so a NIC gather exactly matching the copy
// engine still stays on the device.
func (pt CrossoverPoint) engines() []struct {
	Name string
	Us   float64
} {
	return []struct {
		Name string
		Us   float64
	}{
		{"memcpy2d", pt.Memcpy2DUs},
		{"kernel", pt.KernelUs},
		{"nic", pt.NicUs},
	}
}

// CrossoverResult is the full sweep: the measured grid plus the break-even
// row count per row width (the smallest row count at which the kernel
// wins; -1 when the copy engine wins at every row count).
type CrossoverResult struct {
	PitchFactor   int              `json:"pitch_factor"`
	Grid          []CrossoverPoint `json:"grid"`
	BreakEvenRows map[int]int      `json:"break_even_rows"`
}

// packPoint measures one grid cell: the device-side D2D pack of a
// rows × rowBytes strided block, once on the copy engine and once on the
// compute engine. Virtual time is deterministic, so one run per engine is
// exact.
func packPoint(rows, rowBytes, pitch int, model gpu.CostModel) (cpy, kern sim.Time, err error) {
	e := sim.New()
	dev := gpu.New(e, 0, gpu.Config{MemBytes: rows*pitch + rows*rowBytes + (1 << 20), Model: model})
	ctx := cuda.NewCtx(e, dev)
	src, err := ctx.Malloc(rows * pitch)
	if err != nil {
		return 0, 0, fmt.Errorf("osu: crossover source alloc: %w", err)
	}
	tbuf, err := ctx.Malloc(rows * rowBytes)
	if err != nil {
		return 0, 0, fmt.Errorf("osu: crossover tbuf alloc: %w", err)
	}
	e.Spawn("bench", func(p *sim.Proc) {
		s := ctx.NewStream()
		t0 := p.Now()
		p.Wait(ctx.Memcpy2DAsync(p, tbuf, rowBytes, src, pitch, rowBytes, rows, s))
		cpy = p.Now() - t0
		t0 = p.Now()
		p.Wait(ctx.LaunchKernel(p, s, rows*rowBytes, dev.Model().PackKernelRate(rows*rowBytes, rows), nil))
		kern = p.Now() - t0
	})
	// Free both buffers before acting on the run error — and free src even
	// when freeing tbuf failed — so no early return strands an allocation.
	runErr := e.Run()
	e.Shutdown()
	freeErr := ctx.Free(tbuf)
	if err := ctx.Free(src); err != nil && freeErr == nil {
		freeErr = err
	}
	if runErr != nil {
		return 0, 0, fmt.Errorf("osu: pack crossover (%dx%d): %w", rows, rowBytes, runErr)
	}
	if freeErr != nil {
		return 0, 0, freeErr
	}
	if err := checkDeviceClean(dev); err != nil {
		return 0, 0, err
	}
	return cpy, kern, nil
}

// nicPoint measures the same grid cell on the HCA's SGE unit: a one-chunk
// gather of the rows × rowBytes strided block, executed by a single-HCA
// fabric. Virtual time is deterministic, so the measured duration is the
// exact serialized engine occupancy of ib.Model.GatherCost.
func nicPoint(rows, rowBytes, pitch int, model ib.Model) (sim.Time, error) {
	e := sim.New()
	f := ib.NewFabric(e, model)
	h := f.NewHCA(0)
	dt, err := datatype.Hvector(rows, rowBytes, pitch, datatype.Byte)
	if err != nil {
		return 0, fmt.Errorf("osu: crossover gather type (%dx%d): %w", rows, rowBytes, err)
	}
	dt.MustCommit()
	src := mem.NewDeviceSpace("crossover.src", 0, rows*pitch)
	dst := make([]byte, rows*rowBytes)
	sg := ib.SGDesc{Plan: dt.ChunkPlan(1, rows*rowBytes), Buf: src.Base(), N: rows * rowBytes}
	var dur sim.Time
	e.Spawn("bench", func(p *sim.Proc) {
		t0 := p.Now()
		p.Wait(h.ExecuteGather(sg, dst))
		dur = p.Now() - t0
	})
	runErr := e.Run()
	e.Shutdown()
	if runErr != nil {
		return 0, fmt.Errorf("osu: nic gather crossover (%dx%d): %w", rows, rowBytes, runErr)
	}
	return dur, nil
}

// CrossoverBreakEven returns the smallest row count at which the kernel
// pack is modeled faster than the copy engine for the given row width, or
// -1 if the copy engine wins at every row count up to 1M rows.
func CrossoverBreakEven(rowBytes, pitch int, model *gpu.CostModel) int {
	const maxRows = 1 << 20
	if !model.KernelPackBeatsCopy(maxRows, rowBytes, pitch) {
		return -1
	}
	lo, hi := 1, maxRows
	for lo < hi {
		mid := (lo + hi) / 2
		if model.KernelPackBeatsCopy(mid, rowBytes, pitch) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// PackCrossover runs the sweep over the rows × rowBytes grid. Source rows
// are strided at pitchFactor × rowBytes, mirroring a vector type packed
// out of a wider matrix. The zero models mean the default calibrations.
func PackCrossover(rowsList, rowBytesList []int, pitchFactor int, model gpu.CostModel, ibModel ib.Model) (*CrossoverResult, error) {
	if pitchFactor < 2 {
		pitchFactor = 2
	}
	res := &CrossoverResult{PitchFactor: pitchFactor, BreakEvenRows: map[int]int{}}
	m := model
	if m.PCIeBandwidth == 0 {
		m = gpu.DefaultModel()
	}
	// Normalize the fabric model the same way ib.NewFabric will, so the
	// heuristic and the measurement see identical cost constants.
	ibm := ibModel
	if ibm.Bandwidth <= 0 {
		ibm = ib.DefaultModel()
	}
	for _, rowBytes := range rowBytesList {
		pitch := pitchFactor * rowBytes
		for _, rows := range rowsList {
			cpy, kern, err := packPoint(rows, rowBytes, pitch, model)
			if err != nil {
				return nil, err
			}
			nic, err := nicPoint(rows, rowBytes, pitch, ibModel)
			if err != nil {
				return nil, err
			}
			pt := CrossoverPoint{
				Rows:       rows,
				RowBytes:   rowBytes,
				Memcpy2DUs: cpy.Micros(),
				KernelUs:   kern.Micros(),
				NicUs:      nic.Micros(),
			}
			table := pt.engines()
			best := table[0]
			for _, e := range table[1:] {
				if e.Us < best.Us {
					best = e
				}
			}
			pt.Best = best.Name
			// The heuristic core's PackModeAuto applies on an idle engine.
			pt.Auto = core.ChoosePackEngine(&m, ibm, rows, rowBytes, pitch).String()
			for _, e := range table {
				if e.Name == pt.Auto {
					pt.AutoUs = e.Us
				}
			}
			res.Grid = append(res.Grid, pt)
		}
		res.BreakEvenRows[rowBytes] = CrossoverBreakEven(rowBytes, pitchFactor*rowBytes, &m)
	}
	return res, nil
}

// Table renders the sweep as rows×widths grids of per-engine times with
// the auto pick marked.
func (r *CrossoverResult) Table() *report.Table {
	t := report.NewTable("Pack crossover: memcpy2D vs kernel vs nic (us, * = auto pick)",
		"rows", "rowB", "memcpy2d", "kernel", "nic", "best", "break-even")
	for _, pt := range r.Grid {
		be := fmt.Sprint(r.BreakEvenRows[pt.RowBytes])
		if r.BreakEvenRows[pt.RowBytes] < 0 {
			be = "never"
		}
		row := []string{fmt.Sprint(pt.Rows), fmt.Sprint(pt.RowBytes)}
		for _, e := range pt.engines() {
			mark := " "
			if e.Name == pt.Auto {
				mark = "*"
			}
			row = append(row, fmt.Sprintf("%.3f%s", e.Us, mark))
		}
		t.Add(append(row, pt.Best, be)...)
	}
	return t
}
