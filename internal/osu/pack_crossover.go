// Kernel-vs-memcpy2D pack crossover sweep. The copy engine charges
// DevRow per row on top of byte bandwidth; the gather kernel charges a
// higher per-byte rate and a larger launch cost but no row term. This
// sweep measures both engines packing one pipeline-chunk-shaped
// (rows × rowBytes) strided block on the device and locates the break-even
// row count per row width — the experimental basis of core's
// PackModeAuto heuristic.
package osu

import (
	"fmt"

	"mv2sim/internal/cuda"
	"mv2sim/internal/gpu"
	"mv2sim/internal/report"
	"mv2sim/internal/sim"
)

// CrossoverPoint is one (rows, rowBytes) cell of the sweep grid.
type CrossoverPoint struct {
	Rows       int     `json:"rows"`
	RowBytes   int     `json:"row_bytes"`
	Memcpy2DUs float64 `json:"memcpy2d_us"`
	KernelUs   float64 `json:"kernel_us"`
	Auto       string  `json:"auto"`    // engine PackModeAuto would pick
	AutoUs     float64 `json:"auto_us"` // its measured time
	Best       string  `json:"best"`    // faster engine, measured
}

// CrossoverResult is the full sweep: the measured grid plus the break-even
// row count per row width (the smallest row count at which the kernel
// wins; -1 when the copy engine wins at every row count).
type CrossoverResult struct {
	PitchFactor   int              `json:"pitch_factor"`
	Grid          []CrossoverPoint `json:"grid"`
	BreakEvenRows map[int]int      `json:"break_even_rows"`
}

// packPoint measures one grid cell: the device-side D2D pack of a
// rows × rowBytes strided block, once on the copy engine and once on the
// compute engine. Virtual time is deterministic, so one run per engine is
// exact.
func packPoint(rows, rowBytes, pitch int, model gpu.CostModel) (cpy, kern sim.Time, err error) {
	e := sim.New()
	dev := gpu.New(e, 0, gpu.Config{MemBytes: rows*pitch + rows*rowBytes + (1 << 20), Model: model})
	ctx := cuda.NewCtx(e, dev)
	src, err := ctx.Malloc(rows * pitch)
	if err != nil {
		return 0, 0, fmt.Errorf("osu: crossover source alloc: %w", err)
	}
	tbuf, err := ctx.Malloc(rows * rowBytes)
	if err != nil {
		return 0, 0, fmt.Errorf("osu: crossover tbuf alloc: %w", err)
	}
	e.Spawn("bench", func(p *sim.Proc) {
		s := ctx.NewStream()
		t0 := p.Now()
		p.Wait(ctx.Memcpy2DAsync(p, tbuf, rowBytes, src, pitch, rowBytes, rows, s))
		cpy = p.Now() - t0
		t0 = p.Now()
		p.Wait(ctx.LaunchKernel(p, s, rows*rowBytes, dev.Model().PackKernelRate(rows*rowBytes, rows), nil))
		kern = p.Now() - t0
	})
	// Free both buffers before acting on the run error — and free src even
	// when freeing tbuf failed — so no early return strands an allocation.
	runErr := e.Run()
	e.Shutdown()
	freeErr := ctx.Free(tbuf)
	if err := ctx.Free(src); err != nil && freeErr == nil {
		freeErr = err
	}
	if runErr != nil {
		return 0, 0, fmt.Errorf("osu: pack crossover (%dx%d): %w", rows, rowBytes, runErr)
	}
	if freeErr != nil {
		return 0, 0, freeErr
	}
	if err := checkDeviceClean(dev); err != nil {
		return 0, 0, err
	}
	return cpy, kern, nil
}

// CrossoverBreakEven returns the smallest row count at which the kernel
// pack is modeled faster than the copy engine for the given row width, or
// -1 if the copy engine wins at every row count up to 1M rows.
func CrossoverBreakEven(rowBytes, pitch int, model *gpu.CostModel) int {
	const maxRows = 1 << 20
	if !model.KernelPackBeatsCopy(maxRows, rowBytes, pitch) {
		return -1
	}
	lo, hi := 1, maxRows
	for lo < hi {
		mid := (lo + hi) / 2
		if model.KernelPackBeatsCopy(mid, rowBytes, pitch) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// PackCrossover runs the sweep over the rows × rowBytes grid. Source rows
// are strided at pitchFactor × rowBytes, mirroring a vector type packed
// out of a wider matrix. The zero model means the default calibration.
func PackCrossover(rowsList, rowBytesList []int, pitchFactor int, model gpu.CostModel) (*CrossoverResult, error) {
	if pitchFactor < 2 {
		pitchFactor = 2
	}
	res := &CrossoverResult{PitchFactor: pitchFactor, BreakEvenRows: map[int]int{}}
	m := model
	if m.PCIeBandwidth == 0 {
		m = gpu.DefaultModel()
	}
	for _, rowBytes := range rowBytesList {
		pitch := pitchFactor * rowBytes
		for _, rows := range rowsList {
			cpy, kern, err := packPoint(rows, rowBytes, pitch, model)
			if err != nil {
				return nil, err
			}
			pt := CrossoverPoint{
				Rows:       rows,
				RowBytes:   rowBytes,
				Memcpy2DUs: cpy.Micros(),
				KernelUs:   kern.Micros(),
			}
			pt.Best = "memcpy2d"
			if kern < cpy {
				pt.Best = "kernel"
			}
			// The heuristic core's PackModeAuto applies on an idle engine.
			pt.Auto, pt.AutoUs = "memcpy2d", pt.Memcpy2DUs
			if m.KernelPackBeatsCopy(rows, rowBytes, pitch) {
				pt.Auto, pt.AutoUs = "kernel", pt.KernelUs
			}
			res.Grid = append(res.Grid, pt)
		}
		res.BreakEvenRows[rowBytes] = CrossoverBreakEven(rowBytes, pitchFactor*rowBytes, &m)
	}
	return res, nil
}

// Table renders the sweep as rows×widths grids of per-engine times with
// the auto pick marked.
func (r *CrossoverResult) Table() *report.Table {
	t := report.NewTable("Pack crossover: memcpy2D vs kernel (us, * = auto pick)",
		"rows", "rowB", "memcpy2d", "kernel", "best", "break-even")
	for _, pt := range r.Grid {
		c, k := " ", " "
		if pt.Auto == "memcpy2d" {
			c = "*"
		} else {
			k = "*"
		}
		be := fmt.Sprint(r.BreakEvenRows[pt.RowBytes])
		if r.BreakEvenRows[pt.RowBytes] < 0 {
			be = "never"
		}
		t.Add(fmt.Sprint(pt.Rows), fmt.Sprint(pt.RowBytes),
			fmt.Sprintf("%.3f%s", pt.Memcpy2DUs, c),
			fmt.Sprintf("%.3f%s", pt.KernelUs, k),
			pt.Best, be)
	}
	return t
}
