// Package shoc reimplements the SHOC benchmark suite's Stencil2D
// application (Danalis et al., GPGPU'10), the workload the paper's
// application-level evaluation is built on: a two-dimensional nine-point
// stencil over a block-decomposed matrix with halo exchange between
// neighbouring ranks every iteration.
//
// Two variants of the halo exchange are provided, mirroring the paper's
// section V-B:
//
//   - Stencil2D-Def (exchange_def.go): the original SHOC communication
//     pattern — cudaMemcpy/cudaMemcpy2D staging through host buffers plus
//     MPI on host memory (Figure 4(a) with MPI_Irecv);
//   - Stencil2D-MV2-GPU-NC (exchange_nc.go): device buffers and committed
//     MPI datatypes handed straight to MPI (Figure 4(c)).
//
// The stencil kernel itself executes as real arithmetic on the simulated
// device memory, so both variants are verified against a sequential
// reference computation; its virtual-time cost follows the device model.
package shoc

import (
	"encoding/binary"
	"fmt"
	"math"
	"runtime/debug"

	"mv2sim/internal/cluster"
	"mv2sim/internal/cuda"
	"mv2sim/internal/datatype"
	"mv2sim/internal/mem"
	"mv2sim/internal/sim"
	"mv2sim/internal/trace"
)

// Precision selects the element type, matching SHOC's -single/-double.
type Precision uint8

const (
	F32 Precision = iota
	F64
)

// Bytes returns the element size.
func (p Precision) Bytes() int {
	if p == F64 {
		return 8
	}
	return 4
}

// Elem returns the matching MPI datatype.
func (p Precision) Elem() *datatype.Datatype {
	if p == F64 {
		return datatype.Float64
	}
	return datatype.Float32
}

func (p Precision) String() string {
	if p == F64 {
		return "double"
	}
	return "single"
}

// Variant selects the halo-exchange implementation.
type Variant uint8

const (
	// Def is the original SHOC exchange: host staging + host MPI.
	Def Variant = iota
	// NC is the MV2-GPU-NC exchange: device buffers straight into MPI.
	NC
)

func (v Variant) String() string {
	if v == NC {
		return "Stencil2D-MV2-GPU-NC"
	}
	return "Stencil2D-Def"
}

// Stencil weights: a convex nine-point kernel (centre + 4 cardinal + 4
// diagonal), the SHOC Stencil2D shape.
const (
	wCenter   = 0.25
	wCardinal = 0.125
	wDiagonal = 0.0625
)

// Params configures one Stencil2D run.
type Params struct {
	GridRows, GridCols int // process grid (paper: 1x8, 8x1, 2x4, 4x2)
	Rows, Cols         int // local interior matrix per process
	Prec               Precision
	Iters              int // timed iterations (median reported)
	Warmup             int
	Variant            Variant

	// KernelNsPerCell is the modeled device time per cell update. Zero
	// selects the calibrated default for the precision (see DESIGN.md:
	// chosen so the communication/compute ratio at paper-scale geometry
	// reproduces the paper's improvement ordering).
	KernelNsPerCell float64

	// Validate compares the final field against a sequential reference
	// (use only at test-friendly sizes).
	Validate bool

	// Breakdown enables the Figure 6 instrumentation: dimension-wise
	// communication time at every rank, accumulated over all iterations.
	Breakdown bool

	// Cluster overrides testbed sizing; Nodes is forced to GridRows*GridCols.
	Cluster cluster.Config
}

// DefaultKernelNsPerCell returns the calibrated kernel cost.
func DefaultKernelNsPerCell(p Precision) float64 {
	if p == F64 {
		return 1.0
	}
	return 0.6
}

// Result is the outcome of one run.
type Result struct {
	Params     Params
	IterTimes  []sim.Time // per timed iteration (global: max across ranks)
	MedianIter sim.Time
	Breakdowns []*trace.Breakdown // per rank; nil unless Params.Breakdown
	Validated  bool
}

// rankGeom is one rank's position and neighbours in the process grid.
type rankGeom struct {
	pr, pc                   int // grid coordinates
	north, south, east, west int // neighbour ranks or -1
}

func geom(rank, gr, gc int) rankGeom {
	g := rankGeom{pr: rank / gc, pc: rank % gc, north: -1, south: -1, east: -1, west: -1}
	if g.pr > 0 {
		g.north = rank - gc
	}
	if g.pr < gr-1 {
		g.south = rank + gc
	}
	if g.pc > 0 {
		g.west = rank - 1
	}
	if g.pc < gc-1 {
		g.east = rank + 1
	}
	return g
}

// field is one rank's local state: double-buffered device matrices with a
// one-cell halo, plus the exchange resources of the active variant.
type field struct {
	p      Params
	g      rankGeom
	node   *cluster.Node
	rows   int // interior rows
	cols   int // interior cols
	pitchE int // elements per row including halo
	elemB  int
	in     mem.Ptr // device buffer (rows+2) x (cols+2)
	out    mem.Ptr

	// NC-variant datatypes.
	rowType *datatype.Datatype // one contiguous interior row
	colType *datatype.Datatype // one full-height column (rows+2 elements)

	// Def-variant host staging.
	hostRow mem.Ptr // 2 send + 2 recv interior rows
	hostCol mem.Ptr // 2 send + 2 recv full-height columns

	bd      *trace.Breakdown
	kstream *cuda.Stream
}

// idx returns the element index of (row, col) counted with halo.
func (f *field) idx(r, c int) int { return r*f.pitchE + c }

// off returns the byte offset of (row, col).
func (f *field) off(r, c int) int { return f.idx(r, c) * f.elemB }

func newField(p Params, node *cluster.Node, rank int) *field {
	f := &field{
		p:      p,
		g:      geom(rank, p.GridRows, p.GridCols),
		node:   node,
		rows:   p.Rows,
		cols:   p.Cols,
		pitchE: p.Cols + 2,
		elemB:  p.Prec.Bytes(),
	}
	bytes := (p.Rows + 2) * f.pitchE * f.elemB
	f.in = node.Ctx.MustMalloc(bytes)
	f.out = node.Ctx.MustMalloc(bytes)

	var err error
	f.rowType, err = datatype.Contiguous(f.cols, p.Prec.Elem())
	if err != nil {
		panic(err)
	}
	f.rowType.MustCommit()
	f.colType, err = datatype.Vector(f.rows+2, 1, f.pitchE, p.Prec.Elem())
	if err != nil {
		panic(err)
	}
	f.colType.MustCommit()

	rowB := f.cols * f.elemB
	colB := (f.rows + 2) * f.elemB
	f.hostRow = node.Rank.AllocHost(4 * rowB)
	f.hostCol = node.Rank.AllocHost(4 * colB)
	if p.Breakdown {
		f.bd = trace.NewBreakdown()
	}
	return f
}

// freeDevice returns the field's two device buffers to the allocator.
func (f *field) freeDevice() error {
	if err := f.node.Ctx.Free(f.in); err != nil {
		return fmt.Errorf("shoc: free field: %w", err)
	}
	if err := f.node.Ctx.Free(f.out); err != nil {
		return fmt.Errorf("shoc: free field: %w", err)
	}
	return nil
}

// loadF reads element idx as float64; storeF writes v rounded to the
// field's precision. All arithmetic is done in float64 with one rounding
// per store, which the sequential reference reproduces bit-for-bit.
func (f *field) loadF(buf mem.Ptr, idx int) float64 {
	if f.elemB == 8 {
		return math.Float64frombits(binary.LittleEndian.Uint64(buf.Add(idx * 8).Bytes(8)))
	}
	return float64(math.Float32frombits(binary.LittleEndian.Uint32(buf.Add(idx * 4).Bytes(4))))
}

func (f *field) storeF(buf mem.Ptr, idx int, v float64) {
	if f.elemB == 8 {
		binary.LittleEndian.PutUint64(buf.Add(idx*8).Bytes(8), math.Float64bits(v))
		return
	}
	binary.LittleEndian.PutUint32(buf.Add(idx*4).Bytes(4), math.Float32bits(float32(v)))
}

// initValue is the deterministic initial condition at global interior
// coordinates (gi, gj), 0-based over the global interior matrix.
func initValue(gi, gj int) float64 {
	return float64((gi*7+gj*13)%100) / 100.0
}

// initField writes the initial condition into both device buffers (halo
// cells stay zero; the global boundary is fixed at zero).
func (f *field) initField() {
	buf := f.in.Bytes((f.rows + 2) * f.pitchE * f.elemB)
	for i := range buf {
		buf[i] = 0
	}
	for r := 1; r <= f.rows; r++ {
		for c := 1; c <= f.cols; c++ {
			gi := f.g.pr*f.rows + r - 1
			gj := f.g.pc*f.cols + c - 1
			v := roundTo(f.p.Prec, initValue(gi, gj))
			f.storeF(f.in, f.idx(r, c), v)
			f.storeF(f.out, f.idx(r, c), v)
		}
	}
	// Zero the out-buffer halo too.
	outB := f.out.Bytes((f.rows + 2) * f.pitchE * f.elemB)
	for c := 0; c < f.pitchE; c++ {
		zero(outB, f.off(0, c), f.elemB)
		zero(outB, f.off(f.rows+1, c), f.elemB)
	}
	for r := 0; r < f.rows+2; r++ {
		zero(outB, f.off(r, 0), f.elemB)
		zero(outB, f.off(r, f.cols+1), f.elemB)
	}
}

func zero(b []byte, off, n int) {
	for i := 0; i < n; i++ {
		b[off+i] = 0
	}
}

func roundTo(p Precision, v float64) float64 {
	if p == F32 {
		return float64(float32(v))
	}
	return v
}

// kernelNs returns the effective kernel cost per cell.
func (p Params) kernelNs() float64 {
	if p.KernelNsPerCell > 0 {
		return p.KernelNsPerCell
	}
	return DefaultKernelNsPerCell(p.Prec)
}

// applyStencil computes one interior update from f.in into f.out. It is
// the kernel's real effect, executed at kernel-completion time. The inner
// loops run over raw row slices: at paper-scale geometry (67M cells per
// rank) per-access pointer arithmetic would dominate the harness's wall
// time.
func (f *field) applyStencil() {
	total := (f.rows + 2) * f.pitchE * f.elemB
	in := f.in.Bytes(total)
	out := f.out.Bytes(total)
	if f.elemB == 4 {
		f.stencilF32(in, out)
	} else {
		f.stencilF64(in, out)
	}
}

func (f *field) stencilF32(in, out []byte) {
	pb := f.pitchE * 4
	for r := 1; r <= f.rows; r++ {
		up := in[(r-1)*pb : r*pb]
		mid := in[r*pb : (r+1)*pb]
		down := in[(r+1)*pb : (r+2)*pb]
		dst := out[r*pb : (r+1)*pb]
		ld := func(row []byte, c int) float64 {
			return float64(math.Float32frombits(binary.LittleEndian.Uint32(row[c*4:])))
		}
		for c := 1; c <= f.cols; c++ {
			v := wCenter*ld(mid, c) +
				wCardinal*(ld(up, c)+ld(down, c)+ld(mid, c-1)+ld(mid, c+1)) +
				wDiagonal*(ld(up, c-1)+ld(up, c+1)+ld(down, c-1)+ld(down, c+1))
			binary.LittleEndian.PutUint32(dst[c*4:], math.Float32bits(float32(v)))
		}
	}
}

func (f *field) stencilF64(in, out []byte) {
	pb := f.pitchE * 8
	for r := 1; r <= f.rows; r++ {
		up := in[(r-1)*pb : r*pb]
		mid := in[r*pb : (r+1)*pb]
		down := in[(r+1)*pb : (r+2)*pb]
		dst := out[r*pb : (r+1)*pb]
		ld := func(row []byte, c int) float64 {
			return math.Float64frombits(binary.LittleEndian.Uint64(row[c*8:]))
		}
		for c := 1; c <= f.cols; c++ {
			v := wCenter*ld(mid, c) +
				wCardinal*(ld(up, c)+ld(down, c)+ld(mid, c-1)+ld(mid, c+1)) +
				wDiagonal*(ld(up, c-1)+ld(up, c+1)+ld(down, c-1)+ld(down, c+1))
			binary.LittleEndian.PutUint64(dst[c*8:], math.Float64bits(v))
		}
	}
}

// runKernel launches the stencil kernel on the device and waits for it.
func (f *field) runKernel() {
	r := f.node.Rank
	if f.kstream == nil {
		f.kstream = f.node.Ctx.NewStream()
	}
	done := f.node.Ctx.LaunchKernel(r.Proc(), f.kstream, f.rows*f.cols, f.p.kernelNs(), f.applyStencil)
	r.Proc().Wait(done)
}

// Run executes one Stencil2D configuration and returns its result.
func Run(p Params) (*Result, error) {
	if p.GridRows <= 0 || p.GridCols <= 0 || p.Rows <= 0 || p.Cols <= 0 {
		return nil, fmt.Errorf("shoc: bad geometry %dx%d grid, %dx%d local", p.GridRows, p.GridCols, p.Rows, p.Cols)
	}
	if p.Iters == 0 {
		p.Iters = 3
	}
	nodes := p.GridRows * p.GridCols
	ccfg := p.Cluster
	ccfg.Nodes = nodes
	if ccfg.GPUMemBytes == 0 {
		per := (p.Rows + 2) * (p.Cols + 2) * p.Prec.Bytes()
		ccfg.GPUMemBytes = 2*per + (p.Rows+2)*p.Prec.Bytes()*8 + (32 << 20)
	}
	if ccfg.GPUMemBytes > (128 << 20) {
		// Paper-scale geometry allocates ~5 GB of simulated device memory
		// per configuration. Reclaim the previous configuration's arenas
		// before building the next cluster, or back-to-back table rows
		// transiently double the footprint and risk the OOM killer.
		debug.FreeOSMemory()
	}
	if ccfg.HostHeapBytes == 0 {
		ccfg.HostHeapBytes = 8*(p.Rows+p.Cols+4)*p.Prec.Bytes() + (32 << 20)
	}
	cl := cluster.New(ccfg)

	res := &Result{Params: p}
	fields := make([]*field, nodes)
	iterStart := make([]sim.Time, p.Iters)
	iterEnd := make([]sim.Time, p.Iters)

	err := cl.Run(func(n *cluster.Node) {
		r := n.Rank
		f := newField(p, n, r.Rank())
		fields[r.Rank()] = f
		f.initField()
		r.Barrier()

		for it := 0; it < p.Warmup+p.Iters; it++ {
			timed := it >= p.Warmup
			ti := it - p.Warmup
			r.Barrier()
			if timed && r.Now() > iterStart[ti] {
				iterStart[ti] = r.Now()
			}
			if p.Variant == Def {
				if f.bd != nil {
					f.exchangeDefInstrumented()
				} else {
					f.exchangeDef()
				}
			} else {
				f.exchangeNC()
			}
			f.runKernel()
			f.in, f.out = f.out, f.in
			if timed && r.Now() > iterEnd[ti] {
				iterEnd[ti] = r.Now()
			}
		}
		r.Barrier()
	})
	if err != nil {
		return nil, err
	}
	for i := 0; i < p.Iters; i++ {
		res.IterTimes = append(res.IterTimes, iterEnd[i]-iterStart[i])
	}
	res.MedianIter = trace.Median(res.IterTimes)
	if p.Breakdown {
		for _, f := range fields {
			res.Breakdowns = append(res.Breakdowns, f.bd)
		}
	}
	if p.Validate {
		if err := validate(p, fields); err != nil {
			return nil, err
		}
		res.Validated = true
	}
	// Release device buffers only now: validation reads the simulated
	// device memory after the run. Free is pure allocator bookkeeping, so
	// it works after engine shutdown.
	for _, f := range fields {
		if err := f.freeDevice(); err != nil {
			return nil, err
		}
	}
	if err := cl.CheckDeviceLeaks(); err != nil {
		return nil, err
	}
	return res, nil
}
