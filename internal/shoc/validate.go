package shoc

import "fmt"

// validate recomputes the whole global stencil sequentially and compares
// every rank's final interior bit-for-bit. The kernel performs all
// arithmetic in float64 with exactly one rounding per store, and the
// reference does the same, so even the float32 runs must match exactly —
// any halo-exchange bug shows up as a hard mismatch.
func validate(p Params, fields []*field) error {
	gr, gc := p.GridRows*p.Rows, p.GridCols*p.Cols
	pitch := gc + 2
	cur := make([]float64, (gr+2)*pitch)
	next := make([]float64, (gr+2)*pitch)
	for i := 0; i < gr; i++ {
		for j := 0; j < gc; j++ {
			v := roundTo(p.Prec, initValue(i, j))
			cur[(i+1)*pitch+j+1] = v
			next[(i+1)*pitch+j+1] = v
		}
	}
	steps := p.Warmup + p.Iters
	for s := 0; s < steps; s++ {
		for i := 1; i <= gr; i++ {
			for j := 1; j <= gc; j++ {
				k := i*pitch + j
				v := wCenter*cur[k] +
					wCardinal*(cur[k-pitch]+cur[k+pitch]+cur[k-1]+cur[k+1]) +
					wDiagonal*(cur[k-pitch-1]+cur[k-pitch+1]+cur[k+pitch-1]+cur[k+pitch+1])
				next[k] = roundTo(p.Prec, v)
			}
		}
		cur, next = next, cur
	}
	for rank, f := range fields {
		for r := 1; r <= f.rows; r++ {
			for c := 1; c <= f.cols; c++ {
				gi := f.g.pr*f.rows + r // 1-based in the global array
				gj := f.g.pc*f.cols + c
				want := cur[gi*pitch+gj]
				got := f.loadF(f.in, f.idx(r, c))
				if got != want {
					return fmt.Errorf("shoc: rank %d cell (%d,%d): got %v, want %v (%s, %s, step %d)",
						rank, r, c, got, want, p.Variant, p.Prec, steps)
				}
			}
		}
	}
	return nil
}
