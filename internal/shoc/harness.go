package shoc

import (
	"fmt"

	"mv2sim/internal/report"
	"mv2sim/internal/trace"
)

// GridConfig is one row of the paper's Tables II/III: a process grid and
// the per-process matrix dimensions.
type GridConfig struct {
	Label      string
	GridRows   int
	GridCols   int
	Rows, Cols int // per process
}

// PaperGrids returns the paper's four configurations, scaled down by
// `scale` in each matrix dimension (scale=1 is the exact paper geometry:
// 64K×1K, 1K×64K and 8K×8K per process).
//
// Scaling note: halo traffic scales with the boundary (1/scale) while the
// kernel scales with the area (1/scale²). To preserve the paper's
// communication/compute ratio — and therefore its improvement percentages
// — harness runs at scale s must multiply KernelNsPerCell by s, which
// ScaledParams does.
func PaperGrids(scale int) []GridConfig {
	if scale < 1 {
		scale = 1
	}
	s := func(n int) int {
		if n/scale < 4 {
			return 4
		}
		return n / scale
	}
	return []GridConfig{
		{Label: "1x8 (64Kx1K)", GridRows: 1, GridCols: 8, Rows: s(64 << 10), Cols: s(1 << 10)},
		{Label: "8x1 (1Kx64K)", GridRows: 8, GridCols: 1, Rows: s(1 << 10), Cols: s(64 << 10)},
		{Label: "2x4 (8Kx8K)", GridRows: 2, GridCols: 4, Rows: s(8 << 10), Cols: s(8 << 10)},
		{Label: "4x2 (8Kx8K)", GridRows: 4, GridCols: 2, Rows: s(8 << 10), Cols: s(8 << 10)},
	}
}

// ScaledParams builds run parameters for one grid at the given scale,
// applying the ratio-preserving kernel-cost correction.
func ScaledParams(g GridConfig, prec Precision, variant Variant, scale, iters int) Params {
	if scale < 1 {
		scale = 1
	}
	return Params{
		GridRows: g.GridRows, GridCols: g.GridCols,
		Rows: g.Rows, Cols: g.Cols,
		Prec:  prec,
		Iters: iters,
		// No warmup: the simulator is deterministic, so every iteration
		// takes identical virtual time (verified by TestIterationTimes).
		Warmup:          0,
		Variant:         variant,
		KernelNsPerCell: DefaultKernelNsPerCell(prec) * float64(scale),
	}
}

// TableRow is one structured row of Table II/III: the median iteration
// time of both variants on one grid. Machine-readable counterpart of
// RunTable, consumed by cmd/repro's BENCH_repro.json.
type TableRow struct {
	Grid           string  `json:"grid"`
	DefSec         float64 `json:"def_sec"`
	NCSec          float64 `json:"nc_sec"`
	ImprovementPct float64 `json:"improvement_pct"`
}

// RunTableRows executes Table II/III and returns structured rows.
func RunTableRows(prec Precision, scale, iters int) ([]TableRow, error) {
	var rows []TableRow
	for _, g := range PaperGrids(scale) {
		def, err := Run(ScaledParams(g, prec, Def, scale, iters))
		if err != nil {
			return nil, fmt.Errorf("%s Def: %w", g.Label, err)
		}
		nc, err := Run(ScaledParams(g, prec, NC, scale, iters))
		if err != nil {
			return nil, fmt.Errorf("%s NC: %w", g.Label, err)
		}
		rows = append(rows, TableRow{
			Grid:           g.Label,
			DefSec:         def.MedianIter.Seconds(),
			NCSec:          nc.MedianIter.Seconds(),
			ImprovementPct: 100 * (1 - float64(nc.MedianIter)/float64(def.MedianIter)),
		})
	}
	return rows, nil
}

// RunTable executes the paper's Table II (single precision) or Table III
// (double precision): median iteration time of both Stencil2D variants on
// all four grids, with the improvement column.
func RunTable(prec Precision, scale, iters int) (*report.Table, error) {
	rows, err := RunTableRows(prec, scale, iters)
	if err != nil {
		return nil, err
	}
	return TableFromRows(prec, scale, rows), nil
}

// TableFromRows renders structured rows in the paper's table format.
func TableFromRows(prec Precision, scale int, rows []TableRow) *report.Table {
	title := "Table II: Stencil2D median iteration time, single precision (sec)"
	if prec == F64 {
		title = "Table III: Stencil2D median iteration time, double precision (sec)"
	}
	if scale > 1 {
		title += fmt.Sprintf(" [geometry 1/%d, ratio-preserving]", scale)
	}
	t := report.NewTable(title,
		"Process Grid (Matrix/Process)", "Stencil2D-Def", "Stencil2D-MV2-GPU-NC", "Improvement")
	for _, r := range rows {
		t.Add(r.Grid,
			fmt.Sprintf("%.6f", r.DefSec),
			fmt.Sprintf("%.6f", r.NCSec),
			fmt.Sprintf("%.0f%%", r.ImprovementPct))
	}
	return t
}

// RunBreakdown executes the Figure 6 experiment: Stencil2D-Def on the 2x4
// grid, single precision, and returns the dimension-wise communication
// breakdown at the paper's rank 1 (neighbours: south, west, east),
// accumulated over all timed iterations.
func RunBreakdown(scale, iters int) (*trace.Breakdown, error) {
	grids := PaperGrids(scale)
	g := grids[2] // 2x4
	p := ScaledParams(g, F32, Def, scale, iters)
	p.Breakdown = true
	res, err := Run(p)
	if err != nil {
		return nil, err
	}
	return res.Breakdowns[1], nil
}

// BreakdownTable renders a breakdown in the figure's key order.
func BreakdownTable(bd *trace.Breakdown) *report.Table {
	t := report.NewTable("Figure 6: dimension-wise communication breakdown, Stencil2D-Def 2x4, rank 1",
		"component", "time (us)")
	for _, key := range []string{"south_mpi", "west_mpi", "east_mpi", "south_cuda", "west_cuda", "east_cuda"} {
		t.Add(key, fmt.Sprintf("%.1f", bd.Get(key).Micros()))
	}
	return t
}
