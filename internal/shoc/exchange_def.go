package shoc

import "mv2sim/internal/mpi"

// Message tags for the two exchange phases.
const (
	tagNS = 100
	tagEW = 101
)

// exchangeDef is the original SHOC Stencil2D halo exchange, the pattern of
// Figure 4(a) with non-blocking receives: every boundary is staged through
// host memory with blocking CUDA copies, and MPI operates on host buffers.
//
// Phase 1 exchanges the contiguous north/south rows; phase 2 exchanges the
// full-height east/west columns (including the halo rows received in phase
// 1, which carries the diagonal-corner values).
//
// This function is the Def side of the paper's Table I code-complexity
// comparison; cmd/codecomplexity counts its calls and lines. Per main-loop
// pass it performs up to 4 MPI_Irecv, 4 MPI_Send, 2 MPI_Waitall,
// 4 cudaMemcpy and 4 cudaMemcpy2D — exactly the counts the paper reports
// for Stencil2D-Def.
func (f *field) exchangeDef() {
	r := f.node.Rank
	ctx := f.node.Ctx
	p := r.Proc()
	elem := f.p.Prec.Elem()
	rowB := f.cols * f.elemB
	colB := (f.rows + 2) * f.elemB
	pitchB := f.pitchE * f.elemB
	sendN, sendS := f.hostRow, f.hostRow.Add(rowB)
	recvN, recvS := f.hostRow.Add(2*rowB), f.hostRow.Add(3*rowB)
	sendW, sendE := f.hostCol, f.hostCol.Add(colB)
	recvW, recvE := f.hostCol.Add(2*colB), f.hostCol.Add(3*colB)

	// Phase 1: north/south interior rows (contiguous in device memory).
	var reqs []*mpi.Request
	if f.g.north >= 0 {
		reqs = append(reqs, r.Irecv(recvN, f.cols, elem, f.g.north, tagNS))
	}
	if f.g.south >= 0 {
		reqs = append(reqs, r.Irecv(recvS, f.cols, elem, f.g.south, tagNS))
	}
	if f.g.north >= 0 {
		ctx.Memcpy(p, sendN, f.in.Add(f.off(1, 1)), rowB)
		r.Send(sendN, f.cols, elem, f.g.north, tagNS)
	}
	if f.g.south >= 0 {
		ctx.Memcpy(p, sendS, f.in.Add(f.off(f.rows, 1)), rowB)
		r.Send(sendS, f.cols, elem, f.g.south, tagNS)
	}
	r.Waitall(reqs...)
	if f.g.north >= 0 {
		ctx.Memcpy(p, f.in.Add(f.off(0, 1)), recvN, rowB)
	}
	if f.g.south >= 0 {
		ctx.Memcpy(p, f.in.Add(f.off(f.rows+1, 1)), recvS, rowB)
	}

	// Phase 2: east/west full-height columns (strided in device memory):
	// gather with cudaMemcpy2D into contiguous host buffers, exchange,
	// scatter back.
	reqs = reqs[:0]
	if f.g.west >= 0 {
		reqs = append(reqs, r.Irecv(recvW, f.rows+2, elem, f.g.west, tagEW))
	}
	if f.g.east >= 0 {
		reqs = append(reqs, r.Irecv(recvE, f.rows+2, elem, f.g.east, tagEW))
	}
	if f.g.west >= 0 {
		ctx.Memcpy2D(p, sendW, f.elemB, f.in.Add(f.off(0, 1)), pitchB, f.elemB, f.rows+2)
		r.Send(sendW, f.rows+2, elem, f.g.west, tagEW)
	}
	if f.g.east >= 0 {
		ctx.Memcpy2D(p, sendE, f.elemB, f.in.Add(f.off(0, f.cols)), pitchB, f.elemB, f.rows+2)
		r.Send(sendE, f.rows+2, elem, f.g.east, tagEW)
	}
	r.Waitall(reqs...)
	if f.g.west >= 0 {
		ctx.Memcpy2D(p, f.in.Add(f.off(0, 0)), pitchB, recvW, f.elemB, f.elemB, f.rows+2)
	}
	if f.g.east >= 0 {
		ctx.Memcpy2D(p, f.in.Add(f.off(0, f.cols+1)), pitchB, recvE, f.elemB, f.elemB, f.rows+2)
	}
}
