package shoc

import (
	_ "embed"
	"strings"

	"mv2sim/internal/report"
)

// The two halo-exchange implementations, embedded at build time so the
// Table I analysis works on the exact shipped source.
//
//go:embed exchange_def.go
var defSource string

//go:embed exchange_nc.go
var ncSource string

// Complexity is the paper's Table I for one variant: main-loop
// communication call counts and lines of code.
type Complexity struct {
	Irecv, Send, Waitall int
	Memcpy, Memcpy2D     int
	LinesOfCode          int
}

// functionBody extracts the body of the first function in src whose name
// contains fnName.
func functionBody(src, fnName string) string {
	i := strings.Index(src, "func (f *field) "+fnName)
	if i < 0 {
		return ""
	}
	j := strings.Index(src[i:], "{")
	depth := 0
	for k := i + j; k < len(src); k++ {
		switch src[k] {
		case '{':
			depth++
		case '}':
			depth--
			if depth == 0 {
				return src[i+j+1 : k]
			}
		}
	}
	return ""
}

// countCalls counts occurrences of a call pattern in the body.
func countCalls(body, pattern string) int {
	return strings.Count(body, pattern)
}

// AnalyzeComplexity computes the Table I metrics for a variant's exchange
// function by scanning its source.
func AnalyzeComplexity(v Variant) Complexity {
	src, fn := defSource, "exchangeDef()"
	if v == NC {
		src, fn = ncSource, "exchangeNC()"
	}
	body := functionBody(src, strings.TrimSuffix(fn, "()"))
	loc := 0
	for _, line := range strings.Split(body, "\n") {
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "//") {
			continue
		}
		loc++
	}
	return Complexity{
		Irecv:       countCalls(body, "r.Irecv("),
		Send:        countCalls(body, "r.Send("),
		Waitall:     countCalls(body, "r.Waitall("),
		Memcpy:      countCalls(body, "ctx.Memcpy(p,"),
		Memcpy2D:    countCalls(body, "ctx.Memcpy2D(p,"),
		LinesOfCode: loc,
	}
}

// ComplexityTable renders the paper's Table I from the shipped sources.
func ComplexityTable() *report.Table {
	def := AnalyzeComplexity(Def)
	nc := AnalyzeComplexity(NC)
	t := report.NewTable("Table I: main-loop communication code complexity",
		"Metric", "Stencil2D-Def", "Stencil2D-MV2-GPU-NC")
	row := func(name string, a, b int) { t.Addf("%s|%d|%d", name, a, b) }
	row("MPI_Irecv calls", def.Irecv, nc.Irecv)
	row("MPI_Send calls", def.Send, nc.Send)
	row("MPI_Waitall calls", def.Waitall, nc.Waitall)
	row("cudaMemcpy calls", def.Memcpy, nc.Memcpy)
	row("cudaMemcpy2D calls", def.Memcpy2D, nc.Memcpy2D)
	row("Lines of code", def.LinesOfCode, nc.LinesOfCode)
	return t
}
