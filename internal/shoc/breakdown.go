package shoc

import "mv2sim/internal/mpi"

// exchangeDefInstrumented is the measurement build of exchangeDef used to
// regenerate Figure 6: the same staging and communication pattern, with
// each direction handled sequentially so its CUDA staging time and MPI
// time can be attributed separately. Keys follow the paper's figure:
// {north,south,west,east}_{mpi,cuda}.
//
// It intentionally duplicates exchangeDef rather than adding timing hooks
// to it: exchangeDef is also the artifact measured by the Table I code
// complexity comparison and must stay untouched by instrumentation.
func (f *field) exchangeDefInstrumented() {
	r := f.node.Rank
	ctx := f.node.Ctx
	p := r.Proc()
	elem := f.p.Prec.Elem()
	rowB := f.cols * f.elemB
	colB := (f.rows + 2) * f.elemB
	pitchB := f.pitchE * f.elemB
	sendN, sendS := f.hostRow, f.hostRow.Add(rowB)
	recvN, recvS := f.hostRow.Add(2*rowB), f.hostRow.Add(3*rowB)
	sendW, sendE := f.hostCol, f.hostCol.Add(colB)
	recvW, recvE := f.hostCol.Add(2*colB), f.hostCol.Add(3*colB)

	// Phase 1: north/south rows.
	var nReq, sReq *mpi.Request
	if f.g.north >= 0 {
		nReq = r.Irecv(recvN, f.cols, elem, f.g.north, tagNS)
	}
	if f.g.south >= 0 {
		sReq = r.Irecv(recvS, f.cols, elem, f.g.south, tagNS)
	}
	if f.g.north >= 0 {
		f.bd.Timed("north_cuda", r, func() { ctx.Memcpy(p, sendN, f.in.Add(f.off(1, 1)), rowB) })
		f.bd.Timed("north_mpi", r, func() { r.Send(sendN, f.cols, elem, f.g.north, tagNS) })
	}
	if f.g.south >= 0 {
		f.bd.Timed("south_cuda", r, func() { ctx.Memcpy(p, sendS, f.in.Add(f.off(f.rows, 1)), rowB) })
		f.bd.Timed("south_mpi", r, func() { r.Send(sendS, f.cols, elem, f.g.south, tagNS) })
	}
	if nReq != nil {
		f.bd.Timed("north_mpi", r, func() { r.Wait(nReq) })
		f.bd.Timed("north_cuda", r, func() { ctx.Memcpy(p, f.in.Add(f.off(0, 1)), recvN, rowB) })
	}
	if sReq != nil {
		f.bd.Timed("south_mpi", r, func() { r.Wait(sReq) })
		f.bd.Timed("south_cuda", r, func() { ctx.Memcpy(p, f.in.Add(f.off(f.rows+1, 1)), recvS, rowB) })
	}

	// Phase 2: east/west columns.
	var wReq, eReq *mpi.Request
	if f.g.west >= 0 {
		wReq = r.Irecv(recvW, f.rows+2, elem, f.g.west, tagEW)
	}
	if f.g.east >= 0 {
		eReq = r.Irecv(recvE, f.rows+2, elem, f.g.east, tagEW)
	}
	if f.g.west >= 0 {
		f.bd.Timed("west_cuda", r, func() {
			ctx.Memcpy2D(p, sendW, f.elemB, f.in.Add(f.off(0, 1)), pitchB, f.elemB, f.rows+2)
		})
		f.bd.Timed("west_mpi", r, func() { r.Send(sendW, f.rows+2, elem, f.g.west, tagEW) })
	}
	if f.g.east >= 0 {
		f.bd.Timed("east_cuda", r, func() {
			ctx.Memcpy2D(p, sendE, f.elemB, f.in.Add(f.off(0, f.cols)), pitchB, f.elemB, f.rows+2)
		})
		f.bd.Timed("east_mpi", r, func() { r.Send(sendE, f.rows+2, elem, f.g.east, tagEW) })
	}
	if wReq != nil {
		f.bd.Timed("west_mpi", r, func() { r.Wait(wReq) })
		f.bd.Timed("west_cuda", r, func() {
			ctx.Memcpy2D(p, f.in.Add(f.off(0, 0)), pitchB, recvW, f.elemB, f.elemB, f.rows+2)
		})
	}
	if eReq != nil {
		f.bd.Timed("east_mpi", r, func() { r.Wait(eReq) })
		f.bd.Timed("east_cuda", r, func() {
			ctx.Memcpy2D(p, f.in.Add(f.off(0, f.cols+1)), pitchB, recvE, f.elemB, f.elemB, f.rows+2)
		})
	}
}
