package shoc

import (
	"strings"
	"testing"

	"mv2sim/internal/sim"
)

// small returns test-friendly parameters.
func small(variant Variant, prec Precision, gr, gc int) Params {
	return Params{
		GridRows: gr, GridCols: gc,
		Rows: 12, Cols: 10,
		Prec: prec, Iters: 2, Warmup: 1,
		Variant: variant, Validate: true,
	}
}

func TestGeometry(t *testing.T) {
	// 2x4 grid, rank 1 is top row, second column: neighbours S, W, E only.
	g := geom(1, 2, 4)
	if g.north != -1 || g.south != 5 || g.west != 0 || g.east != 2 {
		t.Errorf("geom(1,2,4) = %+v", g)
	}
	// Corner rank 0.
	g = geom(0, 2, 4)
	if g.north != -1 || g.west != -1 || g.south != 4 || g.east != 1 {
		t.Errorf("geom(0,2,4) = %+v", g)
	}
	// 1x8: east/west only.
	g = geom(3, 1, 8)
	if g.north != -1 || g.south != -1 || g.west != 2 || g.east != 4 {
		t.Errorf("geom(3,1,8) = %+v", g)
	}
}

func TestPrecisionBasics(t *testing.T) {
	if F32.Bytes() != 4 || F64.Bytes() != 8 {
		t.Error("precision sizes")
	}
	if F32.String() != "single" || F64.String() != "double" {
		t.Error("precision names")
	}
	if Def.String() == NC.String() {
		t.Error("variant names")
	}
	if F32.Elem().Size() != 4 || F64.Elem().Size() != 8 {
		t.Error("element datatypes")
	}
}

// The central correctness claim: both exchange variants produce the exact
// same field as the sequential reference, in both precisions, on every
// paper grid shape (scaled down).
func TestStencilCorrectness(t *testing.T) {
	grids := []struct{ gr, gc int }{{1, 4}, {4, 1}, {2, 2}, {2, 4}}
	for _, variant := range []Variant{Def, NC} {
		for _, prec := range []Precision{F32, F64} {
			for _, g := range grids {
				res, err := Run(small(variant, prec, g.gr, g.gc))
				if err != nil {
					t.Fatalf("%v %v %dx%d: %v", variant, prec, g.gr, g.gc, err)
				}
				if !res.Validated {
					t.Fatalf("%v %v %dx%d: not validated", variant, prec, g.gr, g.gc)
				}
			}
		}
	}
}

func TestVariantsProduceIdenticalFields(t *testing.T) {
	// Def and NC validated against the same reference implies they agree
	// with each other; this asserts it directly through Run.
	for _, prec := range []Precision{F32, F64} {
		d, err := Run(small(Def, prec, 2, 2))
		if err != nil {
			t.Fatal(err)
		}
		n, err := Run(small(NC, prec, 2, 2))
		if err != nil {
			t.Fatal(err)
		}
		if d.MedianIter <= 0 || n.MedianIter <= 0 {
			t.Error("non-positive iteration times")
		}
	}
}

func TestSingleRankNoNeighbors(t *testing.T) {
	// A 1x1 grid has no communication at all; both variants must still
	// validate (pure kernel).
	for _, v := range []Variant{Def, NC} {
		res, err := Run(small(v, F32, 1, 1))
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if !res.Validated {
			t.Error("not validated")
		}
	}
}

func TestBadGeometryRejected(t *testing.T) {
	if _, err := Run(Params{GridRows: 0, GridCols: 2, Rows: 4, Cols: 4}); err == nil {
		t.Error("zero grid accepted")
	}
}

// NC must beat Def on every paper grid, with the improvement ordering the
// paper reports: 1x8 (all non-contiguous) > 2x4 > 4x2 > 8x1 (contiguous
// only). Run at reduced geometry with the ratio-preserving kernel scaling.
func TestPaperImprovementOrdering(t *testing.T) {
	const scale = 32
	improvements := map[string]float64{}
	var order []string
	for _, g := range PaperGrids(scale) {
		def, err := Run(ScaledParams(g, F32, Def, scale, 3))
		if err != nil {
			t.Fatal(err)
		}
		nc, err := Run(ScaledParams(g, F32, NC, scale, 3))
		if err != nil {
			t.Fatal(err)
		}
		impr := 1 - float64(nc.MedianIter)/float64(def.MedianIter)
		improvements[g.Label] = impr
		order = append(order, g.Label)
		if impr <= 0 {
			t.Errorf("%s: NC (%v) not faster than Def (%v)", g.Label, nc.MedianIter, def.MedianIter)
		}
	}
	i18, i81 := improvements[order[0]], improvements[order[1]]
	i24, i42 := improvements[order[2]], improvements[order[3]]
	if !(i18 > i24 && i24 > i42 && i42 > i81) {
		t.Errorf("improvement ordering broken: 1x8=%.1f%% 2x4=%.1f%% 4x2=%.1f%% 8x1=%.1f%%",
			100*i18, 100*i24, 100*i42, 100*i81)
	}
	// The headline case must be substantial (paper: 42%).
	if i18 < 0.25 {
		t.Errorf("1x8 improvement = %.1f%%, want ≥25%%", 100*i18)
	}
}

// Figure 6 shape: CUDA staging dominates MPI time for the non-contiguous
// east/west dimensions in the Def variant.
func TestBreakdownShape(t *testing.T) {
	bd, err := RunBreakdown(32, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"south_mpi", "west_mpi", "east_mpi", "south_cuda", "west_cuda", "east_cuda"} {
		if bd.Get(key) <= 0 {
			t.Errorf("breakdown key %s empty", key)
		}
	}
	if bd.Get("north_mpi") != 0 {
		t.Error("rank 1 on a 2x4 grid has no north neighbour")
	}
	if bd.Get("east_cuda") <= bd.Get("east_mpi") {
		t.Errorf("east: cuda (%v) should dominate mpi (%v)", bd.Get("east_cuda"), bd.Get("east_mpi"))
	}
	if bd.Get("west_cuda") <= bd.Get("west_mpi") {
		t.Errorf("west: cuda (%v) should dominate mpi (%v)", bd.Get("west_cuda"), bd.Get("west_mpi"))
	}
	// Non-contiguous east/west staging dwarfs the contiguous south staging.
	if bd.Get("east_cuda") <= bd.Get("south_cuda") {
		t.Errorf("east_cuda (%v) should exceed south_cuda (%v)", bd.Get("east_cuda"), bd.Get("south_cuda"))
	}
	tbl := BreakdownTable(bd)
	if !strings.Contains(tbl.String(), "east_cuda") {
		t.Error("breakdown table rendering")
	}
}

func TestRunTableRendering(t *testing.T) {
	tbl, err := RunTable(F32, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.String()
	for _, want := range []string{"Table II", "1x8", "8x1", "2x4", "4x2", "%"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	if len(tbl.Rows) != 4 {
		t.Errorf("rows = %d", len(tbl.Rows))
	}
}

func TestPaperGridsScaling(t *testing.T) {
	full := PaperGrids(1)
	if full[0].Rows != 64<<10 || full[0].Cols != 1<<10 {
		t.Errorf("full 1x8 geometry = %dx%d", full[0].Rows, full[0].Cols)
	}
	quarter := PaperGrids(4)
	if quarter[0].Rows != 16<<10 {
		t.Errorf("scaled rows = %d", quarter[0].Rows)
	}
	// Scaling floors at 4 cells.
	tiny := PaperGrids(1 << 20)
	if tiny[0].Rows != 4 {
		t.Errorf("floor = %d", tiny[0].Rows)
	}
	p := ScaledParams(full[0], F64, NC, 8, 2)
	if p.KernelNsPerCell != DefaultKernelNsPerCell(F64)*8 {
		t.Errorf("kernel scaling = %v", p.KernelNsPerCell)
	}
}

func TestIterationTimesPositiveAndStable(t *testing.T) {
	res, err := Run(small(NC, F32, 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IterTimes) != 2 {
		t.Fatalf("iter times = %v", res.IterTimes)
	}
	for _, it := range res.IterTimes {
		if it <= 0 {
			t.Errorf("non-positive iteration time %v", it)
		}
	}
	if res.MedianIter < res.IterTimes[0] && res.MedianIter < res.IterTimes[1] {
		t.Error("median outside sample range")
	}
	var _ sim.Time = res.MedianIter
}
