package shoc

import "mv2sim/internal/mpi"

// exchangeNC is the MV2-GPU-NC halo exchange, the pattern of Figure 4(c):
// device buffers and committed MPI datatypes are handed straight to the
// MPI library, which detects device memory and runs the GPU-offloaded
// chunked pipeline internally. No CUDA staging calls appear in the
// application at all.
//
// This function is the MV2-GPU-NC side of the paper's Table I comparison:
// per main-loop pass it performs up to 4 MPI_Irecv, 4 MPI_Send and
// 2 MPI_Waitall, and 0 cudaMemcpy / 0 cudaMemcpy2D.
func (f *field) exchangeNC() {
	r := f.node.Rank

	// Phase 1: north/south interior rows, directly between device buffers.
	var reqs []*mpi.Request
	if f.g.north >= 0 {
		reqs = append(reqs, r.Irecv(f.in.Add(f.off(0, 1)), 1, f.rowType, f.g.north, tagNS))
	}
	if f.g.south >= 0 {
		reqs = append(reqs, r.Irecv(f.in.Add(f.off(f.rows+1, 1)), 1, f.rowType, f.g.south, tagNS))
	}
	if f.g.north >= 0 {
		r.Send(f.in.Add(f.off(1, 1)), 1, f.rowType, f.g.north, tagNS)
	}
	if f.g.south >= 0 {
		r.Send(f.in.Add(f.off(f.rows, 1)), 1, f.rowType, f.g.south, tagNS)
	}
	r.Waitall(reqs...)

	// Phase 2: east/west full-height columns as vector datatypes in device
	// memory.
	reqs = reqs[:0]
	if f.g.west >= 0 {
		reqs = append(reqs, r.Irecv(f.in.Add(f.off(0, 0)), 1, f.colType, f.g.west, tagEW))
	}
	if f.g.east >= 0 {
		reqs = append(reqs, r.Irecv(f.in.Add(f.off(0, f.cols+1)), 1, f.colType, f.g.east, tagEW))
	}
	if f.g.west >= 0 {
		r.Send(f.in.Add(f.off(0, 1)), 1, f.colType, f.g.west, tagEW)
	}
	if f.g.east >= 0 {
		r.Send(f.in.Add(f.off(0, f.cols)), 1, f.colType, f.g.east, tagEW)
	}
	r.Waitall(reqs...)
}
