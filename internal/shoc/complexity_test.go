package shoc

import (
	"strings"
	"testing"
)

// Table I of the paper: the Def variant uses 4 Irecv, 4 Send, 2 Waitall,
// 4 cudaMemcpy and 4 cudaMemcpy2D in its main loop; the MV2-GPU-NC variant
// uses the same MPI calls and zero CUDA staging calls.
func TestTable1CallCounts(t *testing.T) {
	def := AnalyzeComplexity(Def)
	if def.Irecv != 4 || def.Send != 4 || def.Waitall != 2 {
		t.Errorf("Def MPI counts = %+v, want 4/4/2 (paper Table I)", def)
	}
	if def.Memcpy != 4 || def.Memcpy2D != 4 {
		t.Errorf("Def CUDA counts = %+v, want 4/4 (paper Table I)", def)
	}
	nc := AnalyzeComplexity(NC)
	if nc.Irecv != 4 || nc.Send != 4 || nc.Waitall != 2 {
		t.Errorf("NC MPI counts = %+v, want 4/4/2 (paper Table I)", nc)
	}
	if nc.Memcpy != 0 || nc.Memcpy2D != 0 {
		t.Errorf("NC CUDA counts = %+v, want 0/0 (paper Table I)", nc)
	}
}

// The paper reports a 36% reduction in main-loop lines of code; require a
// substantial reduction here too.
func TestTable1LinesOfCodeReduction(t *testing.T) {
	def := AnalyzeComplexity(Def)
	nc := AnalyzeComplexity(NC)
	if def.LinesOfCode == 0 || nc.LinesOfCode == 0 {
		t.Fatalf("source scan failed: def=%d nc=%d", def.LinesOfCode, nc.LinesOfCode)
	}
	reduction := 1 - float64(nc.LinesOfCode)/float64(def.LinesOfCode)
	if reduction < 0.25 {
		t.Errorf("LoC reduction = %.0f%% (def %d, nc %d), want ≥25%% (paper: 36%%)",
			100*reduction, def.LinesOfCode, nc.LinesOfCode)
	}
}

func TestComplexityTableRendering(t *testing.T) {
	out := ComplexityTable().String()
	for _, want := range []string{"Table I", "MPI_Irecv", "cudaMemcpy2D", "Lines of code"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

func TestFunctionBodyExtraction(t *testing.T) {
	src := "func (f *field) foo() {\n\ta := 1\n\tif a > 0 {\n\t\tb()\n\t}\n}\nfunc (f *field) bar() {}\n"
	body := functionBody(src, "foo")
	if !strings.Contains(body, "a := 1") || strings.Contains(body, "bar") {
		t.Errorf("body = %q", body)
	}
	if functionBody(src, "missing") != "" {
		t.Error("missing function returned non-empty body")
	}
}
