package load

import (
	"bytes"
	"testing"
	"testing/quick"

	"mv2sim/internal/obs"
	"mv2sim/internal/sim"
)

func TestScheduleDeterministic(t *testing.T) {
	cfg := Config{Seed: 7, Process: Bursty, OfferedMBs: 4000, Horizon: sim.Millisecond}
	a, b := Schedule(cfg, 1), Schedule(cfg, 1)
	if len(a) == 0 {
		t.Fatal("empty schedule")
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("item %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestSchedulePairsIndependent(t *testing.T) {
	cfg := Config{Seed: 7, Process: Poisson, OfferedMBs: 4000, Horizon: sim.Millisecond}
	a, b := Schedule(cfg, 0), Schedule(cfg, 1)
	same := len(a) == len(b)
	if same {
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("pairs 0 and 1 drew identical schedules")
	}
}

func TestScheduleShape(t *testing.T) {
	for _, proc := range Processes {
		cfg := Config{Seed: 3, Process: proc, Pairs: 2, OfferedMBs: 8000, Horizon: 2 * sim.Millisecond}
		cfg = cfg.withDefaults()
		items := Schedule(cfg, 0)
		if len(items) == 0 {
			t.Fatalf("%s: empty schedule", proc)
		}
		last := sim.Time(0)
		for i, it := range items {
			if it.At <= last {
				t.Fatalf("%s: item %d at %v not after %v", proc, i, it.At, last)
			}
			if it.At >= cfg.Horizon {
				t.Fatalf("%s: item %d at %v beyond horizon", proc, i, it.At)
			}
			if it.Bytes != cfg.Sizes[it.SizeIdx] {
				t.Fatalf("%s: item %d bytes %d != Sizes[%d]", proc, i, it.Bytes, it.SizeIdx)
			}
			last = it.At
		}
		// The long-run offered rate tracks the configured per-pair rate.
		// Bursty's two-state mix systematically under-offers (the cold
		// state lingers), so only bound it loosely from below.
		offered := float64(ScheduledBytes(items)) / cfg.Horizon.Seconds() / 1e6
		want := cfg.OfferedMBs / float64(cfg.Pairs)
		if offered > 2*want || offered < want/8 {
			t.Fatalf("%s: offered %.0f MB/s too far from configured %.0f", proc, offered, want)
		}
	}
}

func TestScheduleRejectsUnknownProcess(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown process did not panic")
		}
	}()
	Schedule(Config{Process: Process("bogus"), OfferedMBs: 100, Horizon: sim.Millisecond}, 0)
}

func TestParseProcess(t *testing.T) {
	for _, proc := range Processes {
		got, err := ParseProcess(string(proc))
		if err != nil || got != proc {
			t.Fatalf("ParseProcess(%q) = %v, %v", proc, got, err)
		}
	}
	if _, err := ParseProcess("uniform"); err == nil {
		t.Fatal("ParseProcess accepted an unknown name")
	}
}

func TestDetectKnee(t *testing.T) {
	pts := []Result{
		{OfferedMBs: 1000, GoodputMBs: 990},
		{OfferedMBs: 2000, GoodputMBs: 1950},
		{OfferedMBs: 4000, GoodputMBs: 3000}, // 0.75 < 0.9: saturated
		{OfferedMBs: 8000, GoodputMBs: 3100},
	}
	if k := DetectKnee(pts); k != 1 {
		t.Fatalf("knee = %d, want 1", k)
	}
	if k := DetectKnee(pts[2:]); k != -1 {
		t.Fatalf("all-saturated knee = %d, want -1", k)
	}
	c := NewCurve(Poisson, pts)
	if c.KneeOfferedMBs != 2000 || c.PeakGoodputMBs != 3100 {
		t.Fatalf("curve knee/peak = %.0f/%.0f", c.KneeOfferedMBs, c.PeakGoodputMBs)
	}
}

// smallConfig is a fast single-point configuration for harness tests.
func smallConfig(proc Process, engine string) Config {
	return Config{
		Seed:       11,
		Process:    proc,
		Pairs:      2,
		OfferedMBs: 4000,
		Horizon:    300 * sim.Microsecond,
		MaxPosted:  8,
		Engine:     engine,
	}
}

func TestRunSmoke(t *testing.T) {
	res, err := Run(smallConfig(Poisson, ""))
	if err != nil {
		t.Fatal(err)
	}
	if res.Transfers == 0 {
		t.Fatal("no transfers delivered")
	}
	if res.GoodputMBs <= 0 || res.OfferedMBs <= 0 {
		t.Fatalf("degenerate rates: %+v", res)
	}
	if res.P50Us <= 0 || res.P99Us < res.P50Us || res.MaxUs < res.P99Us {
		t.Fatalf("tail ordering broken: %+v", res)
	}
	if res.MakespanMs <= 0 {
		t.Fatalf("makespan %v", res.MakespanMs)
	}
}

// TestRunDeterministicAcrossEngines is the identical-seed property the
// issue demands: for every arrival process, the same seed produces a
// byte-identical event trace AND a byte-identical bench document under
// the serial and parallel engines.
func TestRunDeterministicAcrossEngines(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-engine sweep")
	}
	type run struct {
		trace []byte
		doc   []byte
	}
	once := func(proc Process, engine string, seed int64) run {
		chrome := obs.NewChromeTracer()
		cfg := smallConfig(proc, engine)
		cfg.Seed = seed
		cfg.Tracers = []obs.Tracer{chrome}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		doc, err := Doc{Schema: LoadSchema, Seed: seed, Pairs: cfg.Pairs, Engine: "x", Rails: 1,
			PackMode: "auto", HorizonMs: cfg.Horizon.Millis(),
			Curves: []Curve{NewCurve(proc, []Result{res})}}.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		return run{trace: []byte(chrome.JSON()), doc: doc}
	}
	seed := int64(0)
	prop := func(rawSeed uint8) bool {
		seed++ // quick's generator is arbitrary; a small rotating seed is enough
		_ = rawSeed
		for _, proc := range Processes {
			serial := once(proc, "serial", seed)
			parallel := once(proc, "parallel", seed)
			if !bytes.Equal(serial.trace, parallel.trace) {
				t.Logf("%s seed %d: traces differ (%d vs %d bytes)", proc, seed, len(serial.trace), len(parallel.trace))
				return false
			}
			if !bytes.Equal(serial.doc, parallel.doc) {
				t.Logf("%s seed %d: docs differ:\n%s\n%s", proc, seed, serial.doc, parallel.doc)
				return false
			}
			again := once(proc, "serial", seed)
			if !bytes.Equal(serial.trace, again.trace) || !bytes.Equal(serial.doc, again.doc) {
				t.Logf("%s seed %d: serial rerun differs", proc, seed)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2}); err != nil {
		t.Fatal(err)
	}
}

func TestDocMarshalRejectsWrongSchema(t *testing.T) {
	if _, err := (Doc{Schema: 99}).Marshal(); err == nil {
		t.Fatal("wrong schema accepted")
	}
}
