package load

import (
	"fmt"

	"mv2sim/internal/cluster"
	"mv2sim/internal/core"
	"mv2sim/internal/cuda"
	"mv2sim/internal/datatype"
	"mv2sim/internal/mem"
	"mv2sim/internal/mpi"
	"mv2sim/internal/obs"
	"mv2sim/internal/sim"
)

// KindSojourn is the synthetic task kind the harness feeds into its
// MetricsTracer: one task per delivered transfer, Start at the scheduled
// arrival, End at delivery — the open-loop sojourn time, which includes
// any backlog the transfer queued behind, not just its own service.
const KindSojourn = "load_sojourn"

// Config parameterizes one load point.
type Config struct {
	// Seed drives every arrival schedule; identical seeds give
	// byte-identical runs.
	Seed int64
	// Process selects the arrival process. Default Poisson.
	Process Process
	// Pairs is the number of disjoint sender→receiver rank pairs (the
	// cluster has 2*Pairs nodes; rank 2i sends to rank 2i+1). Default 4.
	Pairs int
	// OfferedMBs is the aggregate offered load across all pairs, in MB/s
	// (1e6 bytes per second) of packed payload.
	OfferedMBs float64
	// Horizon is the arrival window: arrivals stop here, the run drains
	// afterwards. Default 5ms.
	Horizon sim.Time
	// Sizes is the packed-message-size mix, drawn uniformly. The default
	// {4 KiB, 32 KiB, 64 KiB, 256 KiB} spans the eager path, the
	// single-chunk rendezvous and the multi-chunk pipeline.
	Sizes []int
	// ElemBytes and PitchBytes shape the non-contiguous vector datatype:
	// each message of s bytes is s/ElemBytes rows of ElemBytes, strided
	// PitchBytes apart. Defaults 8 and 32 (a quarter-dense column block).
	ElemBytes  int
	PitchBytes int
	// MaxPosted bounds each receiver's posted-receive window: receive i
	// reuses the device buffer of receive i-MaxPosted and is posted only
	// after that one delivers. Default 32.
	MaxPosted int
	// Engine, Rails, PackMode, VbufCount pass through to the cluster.
	Engine    string
	Rails     int
	PackMode  core.PackMode
	VbufCount int
	// Tracers attach to the cluster's hub (trace capture, series, ...).
	Tracers []obs.Tracer
}

func (c Config) withDefaults() Config {
	if c.Process == "" {
		c.Process = Poisson
	}
	if c.Pairs == 0 {
		c.Pairs = 4
	}
	if c.OfferedMBs == 0 {
		c.OfferedMBs = 1000
	}
	if c.Horizon == 0 {
		c.Horizon = 5 * sim.Millisecond
	}
	if len(c.Sizes) == 0 {
		c.Sizes = []int{4 << 10, 32 << 10, 64 << 10, 256 << 10}
	}
	if c.ElemBytes == 0 {
		c.ElemBytes = 8
	}
	if c.PitchBytes == 0 {
		c.PitchBytes = 32
	}
	if c.MaxPosted == 0 {
		c.MaxPosted = 32
	}
	return c
}

// Result is one measured load point.
type Result struct {
	// OfferedMBs is the actual offered load: scheduled bytes over the
	// horizon. It differs from Config.OfferedMBs by sampling noise (and
	// systematically for bursty arrivals, whose two-state mix offers
	// less than the nominal rate).
	OfferedMBs float64 `json:"offered_mbs"`
	// GoodputMBs is delivered bytes over the makespan (first arrival to
	// last delivery). Below saturation it tracks OfferedMBs; past the
	// knee it plateaus at the pipeline's service capacity.
	GoodputMBs float64 `json:"goodput_mbs"`
	// Transfers is the number of delivered messages.
	Transfers int `json:"transfers"`
	// Sojourn-time tail, in microseconds: scheduled arrival → delivery.
	P50Us  float64 `json:"p50_us"`
	P95Us  float64 `json:"p95_us"`
	P99Us  float64 `json:"p99_us"`
	P999Us float64 `json:"p999_us"`
	MaxUs  float64 `json:"max_us"`
	// MakespanMs is the full-drain wall clock in virtual milliseconds.
	MakespanMs float64 `json:"makespan_ms"`
	// VbufWaits sums pool-exhaustion events over every node and pool;
	// VbufMaxHeld is the deepest any single pool was dug into.
	VbufWaits   uint64 `json:"vbuf_waits"`
	VbufMaxHeld int    `json:"vbuf_max_held"`
}

// recorder accumulates delivery observations. Completion callbacks run
// inside the engine, which serializes tracer-visible state transitions
// identically under both engines, so no locking is needed and the
// resulting histogram is byte-deterministic.
type recorder struct {
	mt        *obs.MetricsTracer
	delivered int64
	makespan  sim.Time
	seq       uint64
}

func (rec *recorder) observe(it Item, now sim.Time, bytes int) {
	rec.seq++
	rec.mt.TaskEnd(obs.Task{
		ID: rec.seq, Kind: KindSojourn, Where: "load",
		Bytes: bytes, Chunk: -1, Start: it.At, End: now,
	})
	rec.delivered += int64(bytes)
	if now > rec.makespan {
		rec.makespan = now
	}
}

// Run executes one load point: generates every pair's schedule, drives
// the transfers through the pipeline open-loop, drains, and reports the
// sojourn tail and goodput. The run is deterministic in (Config) — the
// schedules come from the seed and the simulation is virtual-time.
func Run(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	if cfg.Pairs < 1 {
		return Result{}, fmt.Errorf("load: need at least one pair, got %d", cfg.Pairs)
	}

	schedules := make([][]Item, cfg.Pairs)
	var scheduled, maxPairBytes int64
	total := 0
	for p := range schedules {
		schedules[p] = Schedule(cfg, p)
		b := ScheduledBytes(schedules[p])
		scheduled += b
		if b > maxPairBytes {
			maxPairBytes = b
		}
		total += len(schedules[p])
	}
	if total == 0 {
		return Result{}, fmt.Errorf("load: empty schedule (offered %.0f MB/s over %v)", cfg.OfferedMBs, cfg.Horizon)
	}

	// One committed vector datatype per message size, shared by all pairs.
	dts := make([]*datatype.Datatype, len(cfg.Sizes))
	maxSpan := 0
	for i, s := range cfg.Sizes {
		rows := s / cfg.ElemBytes
		if rows == 0 {
			rows = 1
		}
		vec, err := datatype.Vector(rows, cfg.ElemBytes, cfg.PitchBytes, datatype.Byte)
		if err != nil {
			return Result{}, fmt.Errorf("load: datatype for %d bytes: %w", s, err)
		}
		if err := vec.Commit(); err != nil {
			return Result{}, fmt.Errorf("load: commit datatype for %d bytes: %w", s, err)
		}
		dts[i] = vec
		if span := rows * cfg.PitchBytes; span > maxSpan {
			maxSpan = span
		}
	}

	// Tight sizing, like osu.MultiPairLatency: virtual sizes don't affect
	// virtual time, but the backing bytes are real host RAM. A sender may
	// in the worst case have its whole schedule in flight as packed tbufs;
	// a receiver holds MaxPosted user buffers plus their tbufs.
	ccfg := cluster.Config{
		Nodes:     2 * cfg.Pairs,
		Engine:    cfg.Engine,
		Rails:     cfg.Rails,
		VbufCount: cfg.VbufCount,
		Core:      core.Config{PackMode: cfg.PackMode, UnpackMode: cfg.PackMode},
		Tracers:   cfg.Tracers,

		GPUMemBytes:   (cfg.MaxPosted+1)*maxSpan + int(maxPairBytes) + (32 << 20),
		HostHeapBytes: 4 << 20,
	}

	rec := &recorder{mt: obs.NewMetricsTracer()}
	cl := cluster.New(ccfg)
	runErr := cl.Run(func(n *cluster.Node) {
		pair := n.Rank.Rank() / 2
		items := schedules[pair]
		peer := n.Rank.Rank() ^ 1
		if n.Rank.Rank()%2 == 0 {
			runSender(n, items, dts, maxSpan, peer)
		} else {
			runReceiver(n, items, dts, maxSpan, peer, cfg.MaxPosted, rec)
		}
	})
	if runErr != nil {
		return Result{}, fmt.Errorf("load: %s at %.0f MB/s: %w", cfg.Process, cfg.OfferedMBs, runErr)
	}
	if err := cl.CheckDeviceLeaks(); err != nil {
		return Result{}, err
	}

	res := Result{
		OfferedMBs: float64(scheduled) / cfg.Horizon.Seconds() / 1e6,
		GoodputMBs: float64(rec.delivered) / rec.makespan.Seconds() / 1e6,
		Transfers:  total,
		MakespanMs: rec.makespan.Millis(),
	}
	quant := func(q float64) float64 {
		v, ok := rec.mt.Percentile(KindSojourn, q)
		if !ok {
			return 0
		}
		return v.Micros()
	}
	res.P50Us, res.P95Us, res.P99Us, res.P999Us = quant(0.50), quant(0.95), quant(0.99), quant(0.999)
	if h := rec.mt.Hist(KindSojourn); h != nil {
		res.MaxUs = h.Max().Micros()
	}
	for _, n := range cl.Nodes {
		for _, p := range []interface {
			Waits() uint64
			MaxHeld() int
		}{n.Pool, n.RecvPool} {
			res.VbufWaits += p.Waits()
			if p.MaxHeld() > res.VbufMaxHeld {
				res.VbufMaxHeld = p.MaxHeld()
			}
		}
	}
	return res, nil
}

// runSender replays the pair's schedule open-loop: sleep to each item's
// arrival time (never ahead of it, immediately if behind), issue the
// non-blocking send, and only at the end wait for everything — arrivals
// never throttle to the service rate.
func runSender(n *cluster.Node, items []Item, dts []*datatype.Datatype, maxSpan, peer int) {
	r, ctx := n.Rank, n.Ctx
	buf := ctx.MustMalloc(maxSpan)
	defer mustFree(ctx, buf)
	reqs := make([]*mpi.Request, len(items))
	for i, it := range items {
		if now := r.Now(); now < it.At {
			r.Proc().Sleep(it.At - now)
		}
		reqs[i] = r.Isend(buf, 1, dts[it.SizeIdx], peer, i)
	}
	r.Waitall(reqs...)
}

// runReceiver keeps a bounded posting window of rotating device buffers:
// receive i lands in buffer i mod maxPosted, posted once receive
// i-maxPosted has delivered, so no two in-flight unpacks ever share a
// buffer. Each delivery is timestamped against the item's scheduled
// arrival — the sojourn observation.
func runReceiver(n *cluster.Node, items []Item, dts []*datatype.Datatype,
	maxSpan, peer, maxPosted int, rec *recorder) {
	r, ctx := n.Rank, n.Ctx
	if maxPosted > len(items) {
		maxPosted = len(items)
	}
	bufs := make([]mem.Ptr, maxPosted)
	for i := range bufs {
		bufs[i] = ctx.MustMalloc(maxSpan)
	}
	defer func() {
		for _, b := range bufs {
			mustFree(ctx, b)
		}
	}()
	reqs := make([]*mpi.Request, len(items))
	for i, it := range items {
		if i >= maxPosted {
			r.Wait(reqs[i-maxPosted])
		}
		it := it
		q := r.Irecv(bufs[i%maxPosted], 1, dts[it.SizeIdx], peer, i)
		reqs[i] = q
		q.OnComplete(func() { rec.observe(it, r.Now(), it.Bytes) })
	}
	tail := len(items) - maxPosted
	if tail < 0 {
		tail = 0
	}
	r.Waitall(reqs[tail:]...)
}

func mustFree(ctx *cuda.Ctx, p mem.Ptr) {
	if err := ctx.Free(p); err != nil {
		panic(err)
	}
}
