// Package load is the open-loop load harness: seeded arrival-process
// generators drive many concurrent non-contiguous transfers across
// disjoint rank pairs through the full MV2-GPU-NC pipeline, and the
// harness reports tail-latency (sojourn time from scheduled arrival to
// delivery) and goodput per offered-load level. Sweeping the offered load
// produces the load–latency curve whose saturation knee cmd/loadgen
// detects and the perf store gates.
//
// Open-loop means arrivals do not wait for service: the schedule is fixed
// up front from the seed, so when the system saturates the backlog — and
// with it the sojourn tail — grows without bound instead of the arrival
// rate politely adapting. That is the behaviour closed-loop benchmarks
// (osu latency/bandwidth loops) structurally cannot show.
package load

import (
	"fmt"
	"math/rand"

	"mv2sim/internal/sim"
)

// Process names an arrival process.
type Process string

const (
	// Poisson arrivals: exponential gaps, the classic open-loop model.
	Poisson Process = "poisson"
	// Deterministic arrivals: fixed gaps at the offered rate, the
	// smoothest traffic a rate can be delivered at.
	Deterministic Process = "deterministic"
	// Bursty arrivals: a two-state Markov-modulated Poisson process that
	// alternates between a hot state (burstFactor times the offered rate)
	// and a cold state (the offered rate divided by burstFactor).
	Bursty Process = "bursty"
)

// Processes lists every arrival process, in sweep order.
var Processes = []Process{Deterministic, Poisson, Bursty}

// ParseProcess parses a -process flag value.
func ParseProcess(s string) (Process, error) {
	switch Process(s) {
	case Poisson, Deterministic, Bursty:
		return Process(s), nil
	}
	return "", fmt.Errorf("load: unknown arrival process %q (want poisson, deterministic or bursty)", s)
}

// Bursty-process shape: the hot state offers burstFactor times the mean
// rate, the cold state 1/burstFactor of it, and each arrival flips the
// state with probability switchProb.
const (
	burstFactor = 4.0
	switchProb  = 0.1
)

// Item is one scheduled transfer of a pair's workload: a message of Bytes
// packed bytes (drawn from Config.Sizes; SizeIdx indexes it) arriving at
// virtual time At.
type Item struct {
	At      sim.Time
	Bytes   int
	SizeIdx int
}

// Schedule generates the arrival schedule for one pair, deterministically
// from the seed: the same (Config, pair) always yields the same items, so
// sender and receiver derive identical schedules independently and the
// whole run is reproducible byte for byte. Arrivals stop at the horizon;
// message sizes are drawn uniformly from cfg.Sizes, and the gap after a
// message of s bytes averages s divided by the pair's offered byte rate,
// so the long-run offered load matches cfg.OfferedMBs divided over the
// pairs regardless of the size mix.
func Schedule(cfg Config, pair int) []Item {
	cfg = cfg.withDefaults()
	// A distinct, well-separated stream per pair: pairs must not see
	// shifted copies of each other's arrivals.
	rng := rand.New(rand.NewSource(cfg.Seed + int64(pair)*982451653))
	rate := cfg.OfferedMBs / float64(cfg.Pairs) * 1e6 / 1e9 // bytes per ns
	hot := rng.Intn(2) == 0
	var items []Item
	t := sim.Time(0)
	for {
		sizeIdx := rng.Intn(len(cfg.Sizes))
		s := cfg.Sizes[sizeIdx]
		mean := float64(s) / rate // ns
		var gap float64
		switch cfg.Process {
		case Deterministic:
			gap = mean
		case Poisson:
			gap = rng.ExpFloat64() * mean
		case Bursty:
			if rng.Float64() < switchProb {
				hot = !hot
			}
			if hot {
				gap = rng.ExpFloat64() * mean / burstFactor
			} else {
				gap = rng.ExpFloat64() * mean * burstFactor
			}
		default:
			panic(fmt.Sprintf("load: unknown arrival process %q", cfg.Process))
		}
		if gap < 1 {
			gap = 1
		}
		t += sim.Time(gap)
		if t >= cfg.Horizon {
			return items
		}
		items = append(items, Item{At: t, Bytes: s, SizeIdx: sizeIdx})
	}
}

// ScheduledBytes sums a schedule's packed payload.
func ScheduledBytes(items []Item) int64 {
	var n int64
	for _, it := range items {
		n += int64(it.Bytes)
	}
	return n
}
