package load

import (
	"encoding/json"
	"fmt"
)

// LoadSchema versions the BENCH_load.json document; the perf store's
// Extract sniffs this key to route the file to ExtractLoad.
const LoadSchema = 1

// KneeDeliveryRatio defines saturation: the knee is the highest offered
// load whose goodput still reaches this fraction of it. Below the knee
// the system keeps up; above it the open-loop backlog grows and goodput
// decouples from offered load.
const KneeDeliveryRatio = 0.9

// Curve is one arrival process's load–latency sweep, points in ascending
// offered load.
type Curve struct {
	Process Process  `json:"process"`
	Points  []Result `json:"points"`
	// KneeIndex locates the saturation knee in Points (-1 when even the
	// lowest point is saturated); KneeOfferedMBs is that point's offered
	// load, 0 when KneeIndex is -1. PeakGoodputMBs is the best goodput
	// seen anywhere on the curve — the service capacity estimate.
	KneeIndex      int     `json:"knee_index"`
	KneeOfferedMBs float64 `json:"knee_offered_mbs"`
	PeakGoodputMBs float64 `json:"peak_goodput_mbs"`
}

// Doc is the BENCH_load.json document.
type Doc struct {
	Schema    int     `json:"load_schema"`
	Seed      int64   `json:"seed"`
	Pairs     int     `json:"pairs"`
	Engine    string  `json:"engine"`
	Rails     int     `json:"rails"`
	PackMode  string  `json:"packmode"`
	HorizonMs float64 `json:"horizon_ms"`
	Curves    []Curve `json:"curves"`
}

// DetectKnee returns the index of the saturation knee: the highest point
// (in the given ascending-offered order) that still delivers
// KneeDeliveryRatio of its offered load, or -1 if none does.
func DetectKnee(points []Result) int {
	knee := -1
	for i, p := range points {
		if p.OfferedMBs > 0 && p.GoodputMBs >= KneeDeliveryRatio*p.OfferedMBs {
			knee = i
		}
	}
	return knee
}

// NewCurve assembles a Curve from sweep results, detecting the knee.
func NewCurve(proc Process, points []Result) Curve {
	c := Curve{Process: proc, Points: points, KneeIndex: DetectKnee(points)}
	if c.KneeIndex >= 0 {
		c.KneeOfferedMBs = points[c.KneeIndex].OfferedMBs
	}
	for _, p := range points {
		if p.GoodputMBs > c.PeakGoodputMBs {
			c.PeakGoodputMBs = p.GoodputMBs
		}
	}
	return c
}

// Marshal renders the document as stable, indented JSON (trailing
// newline), the committed BENCH_load.json format.
func (d Doc) Marshal() ([]byte, error) {
	if d.Schema != LoadSchema {
		return nil, fmt.Errorf("load: doc schema %d, want %d", d.Schema, LoadSchema)
	}
	out, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}
