// Package ib simulates an InfiniBand RDMA fabric at the level MVAPICH2's
// rendezvous protocol needs: reliable, ordered messaging between host
// channel adapters (HCAs), memory registration with rkeys, two-sided sends
// delivered to a receive handler, and one-sided RDMA writes that deposit
// bytes directly into registered remote host memory with no receiver
// involvement.
//
// The cost model follows a Mellanox QDR ConnectX-2 (the paper's testbed):
// ~3.2 GB/s effective unidirectional bandwidth, ~1.3 µs short-message
// latency, sub-microsecond posting overhead. Each HCA serializes egress on
// its send link and ingress on its receive link; transfers between
// different node pairs proceed concurrently, matching a non-blocking
// fat-tree at this scale (8 nodes).
//
// Ordering: operations posted from one HCA on one rail are wire-serialized
// in post order and delivered in order, so a send posted after an RDMA
// write on the same rail arrives after the write's bytes have landed — the
// invariant the paper's "RDMA write finish message" relies on. With
// Model.Rails > 1 each HCA exposes several independently-serialized rails
// (queue pairs striped across parallel link resources); the FIFO guarantee
// holds only per rail, never across rails, so protocols that need
// FIN-after-data must post both operations on the same rail.
package ib

import (
	"fmt"

	"mv2sim/internal/mem"
	"mv2sim/internal/obs"
	"mv2sim/internal/sim"
)

// Model holds the fabric cost constants.
type Model struct {
	// Bandwidth is the effective unidirectional link bandwidth in bytes/s.
	Bandwidth float64
	// Latency is the end-to-end wire+switch latency of the first byte.
	Latency sim.Time
	// PostOverhead is the host-side cost of posting one work request.
	PostOverhead sim.Time
	// Rails is the number of independently-serialized send/receive link
	// pairs (queue-pair rails) per HCA. Each rail runs the same per-link
	// bandwidth/latency model, so aggregate fabric bandwidth scales with
	// the rail count — the multi-rail striping configuration of
	// arXiv:1908.08590. Zero means 1 (the paper's single-rail testbed).
	Rails int
	// AllowDeviceRegistration lets HCAs pin GPU device memory for RDMA —
	// GPUDirect RDMA, which did not exist on the paper's 2011 testbed but
	// arrived in its successors (MVAPICH2-GDR). Off by default.
	AllowDeviceRegistration bool

	// MaxSGEPerWQE caps the scatter/gather entries one work request can
	// carry; a gather descriptor with more segments is split into
	// ceil(segments/MaxSGEPerWQE) WQEs, each paying PostOverhead. Zero
	// means DefaultMaxSGEPerWQE. See sg.go.
	MaxSGEPerWQE int
	// NicGatherNsPerSegment is the SGE unit's per-segment walk cost
	// (address generation, one DMA descriptor fetch per entry). Zero means
	// DefaultNicGatherNsPerSegment.
	NicGatherNsPerSegment float64
	// NicGatherNsPerByte is the SGE unit's streaming cost per gathered
	// byte, floored at the wire byte rate (the unit feeds the link and
	// cannot outrun it). Zero means DefaultNicGatherNsPerByte.
	NicGatherNsPerByte float64
}

// DefaultModel returns the QDR calibration used throughout the repository.
func DefaultModel() Model {
	return Model{
		Bandwidth:             3.2e9,
		Latency:               1300 * sim.Nanosecond,
		PostOverhead:          300 * sim.Nanosecond,
		MaxSGEPerWQE:          DefaultMaxSGEPerWQE,
		NicGatherNsPerSegment: DefaultNicGatherNsPerSegment,
		NicGatherNsPerByte:    DefaultNicGatherNsPerByte,
	}
}

// Message is an opaque protocol header carried by a two-sided send.
// The MPI layer defines the concrete types.
type Message interface{}

// Handler receives two-sided messages on an HCA. It runs in engine
// context at delivery-completion time and must not block; payload is the
// sender's snapshot of the inline data (nil for header-only messages) and
// must not be retained beyond the call without copying.
type Handler func(from int, msg Message, payload []byte)

// Fabric is the switch connecting all HCAs.
type Fabric struct {
	e     sim.Engine
	model Model
	hcas  map[int]*HCA
	hub   *obs.Hub
}

// SetHub attaches an observability hub: every wire operation becomes a
// task on the sending HCA's tx track and the receiving HCA's rx track,
// and cumulative per-HCA byte counters are sampled after each transfer.
func (f *Fabric) SetHub(h *obs.Hub) { f.hub = h }

// NewFabric creates an empty fabric.
func NewFabric(e sim.Engine, model Model) *Fabric {
	if model.Bandwidth <= 0 {
		allow, rails := model.AllowDeviceRegistration, model.Rails
		model = DefaultModel()
		model.AllowDeviceRegistration = allow
		model.Rails = rails
	}
	// minRails is the floor for an unset or nonsense rail count; the
	// calibrated default lives in mpi.DefaultRails (ib sits below mpi in
	// the dependency order, so it only clamps).
	const minRails = 1
	if model.Rails < minRails {
		model.Rails = minRails
	}
	return &Fabric{e: e, model: model, hcas: map[int]*HCA{}}
}

// Model returns the fabric's cost model.
func (f *Fabric) Model() Model { return f.model }

// Rails returns the number of rails each HCA exposes (always >= 1).
func (f *Fabric) Rails() int { return f.model.Rails }

// NewHCA attaches an adapter for the given node ID. Node IDs must be
// unique.
func (f *Fabric) NewHCA(node int) *HCA {
	if _, dup := f.hcas[node]; dup {
		panic(fmt.Sprintf("ib: duplicate HCA for node %d", node))
	}
	h := &HCA{
		f:        f,
		node:     node,
		txCtr:    fmt.Sprintf("hca%d.bytesTx", node),
		rxCtr:    fmt.Sprintf("hca%d.bytesRx", node),
		regions:  map[uint32]Region{},
		nextRkey: 1,
	}
	for i := 0; i < f.model.Rails; i++ {
		// Single-rail fabrics keep the historical "hcaN.tx"/"hcaN.rx"
		// resource and track names bit-for-bit; multi-rail fabrics suffix
		// every rail (including rail 0) so traces never mix a bare name
		// with rail-indexed siblings.
		txName := fmt.Sprintf("hca%d.tx", node)
		rxName := fmt.Sprintf("hca%d.rx", node)
		if f.model.Rails > 1 {
			txName = fmt.Sprintf("hca%d.tx.r%d", node, i)
			rxName = fmt.Sprintf("hca%d.rx.r%d", node, i)
		}
		// The scatter/gather unit is serialized per rail like the links:
		// one engine walks one descriptor at a time (sPIN-style handler
		// cores are few; see sg.go).
		sgeName := fmt.Sprintf("hca%d.nicEngine", node)
		if f.model.Rails > 1 {
			sgeName = fmt.Sprintf("hca%d.nicEngine.r%d", node, i)
		}
		h.rails = append(h.rails, &rail{
			sendLink: f.e.NewResource(txName, 1),
			recvLink: f.e.NewResource(rxName, 1),
			sgEngine: f.e.NewResource(sgeName, 1),
			txTrack:  txName,
			rxTrack:  rxName,
			sgeTrack: sgeName,
			qCtr:     txName + ".queue",
		})
	}
	f.hcas[node] = h
	return h
}

// HCA returns the adapter for a node, or nil.
func (f *Fabric) HCA(node int) *HCA { return f.hcas[node] }

// Region is a registered memory region addressable by remote RDMA. A
// region registered through RegisterScatterRegion additionally carries the
// scatter descriptor the SGE unit applies to arriving writes (see sg.go).
type Region struct {
	Rkey uint32
	ptr  mem.Ptr
	len  int
	sc   *scatterRegion
}

// Len returns the registered length.
func (r Region) Len() int { return r.len }

// Stats accumulates per-HCA counters.
type Stats struct {
	SendsPosted int
	RDMAWrites  int
	RDMAReads   int
	BytesTx     int64
	BytesRx     int64
}

// rail is one independently-serialized send/receive link pair of an HCA
// (one queue-pair rail). Each rail owns its own wire-order FIFO; nothing
// is ordered across rails.
type rail struct {
	sendLink *sim.Resource
	recvLink *sim.Resource
	// sgEngine is the rail's scatter/gather unit: it executes one gather
	// or scatter descriptor at a time (see sg.go).
	sgEngine *sim.Resource
	// precomputed obs track names
	txTrack, rxTrack, sgeTrack string
	// queued counts transfers posted to this rail that have not yet put
	// their last byte on the wire — the send-queue depth, sampled as the
	// "<txTrack>.queue" gauge. Under open-loop load its growth is the
	// first visible sign of saturation.
	queued int
	qCtr   string
}

// HCA is one node's adapter.
type HCA struct {
	f        *Fabric
	node     int
	rails    []*rail
	handler  Handler
	regions  map[uint32]Region
	nextRkey uint32
	stats    Stats
	seq      int

	// precomputed obs counter names
	txCtr, rxCtr string
}

// Node returns the node ID this HCA serves.
func (h *HCA) Node() int { return h.node }

// Model returns the fabric cost model this HCA operates under.
func (h *HCA) Model() Model { return h.f.model }

// Rails returns the number of rails this HCA exposes (always >= 1).
func (h *HCA) Rails() int { return len(h.rails) }

// railAt bounds-checks and fetches a rail.
func (h *HCA) railAt(i int) *rail {
	if i < 0 || i >= len(h.rails) {
		panic(fmt.Sprintf("ib: rail %d out of range (hca%d has %d rails)", i, h.node, len(h.rails)))
	}
	return h.rails[i]
}

// Stats returns a copy of the counters.
func (h *HCA) Stats() Stats { return h.stats }

// SetHandler installs the upcall for two-sided message delivery.
func (h *HCA) SetHandler(fn Handler) { h.handler = fn }

// Register pins a memory range for remote access and returns its region.
// Registering device memory panics unless the fabric model enables
// AllowDeviceRegistration: the simulated 2011-era HCA cannot DMA into GPU
// memory (no GPUDirect RDMA), which is precisely why the paper stages
// through host vbufs. The GPUDirect mode exists to quantify what its
// successors gained.
func (h *HCA) Register(p mem.Ptr, n int) Region {
	if p.IsDevice() && !h.f.model.AllowDeviceRegistration {
		panic("ib: cannot register device memory (no GPUDirect RDMA on this fabric)")
	}
	p.Bytes(n) // bounds-check the range now
	r := Region{Rkey: h.nextRkey, ptr: p, len: n}
	h.nextRkey++
	h.regions[r.Rkey] = r
	return r
}

// Deregister removes a region. RDMA writes targeting it afterwards panic.
func (h *HCA) Deregister(r Region) {
	if _, ok := h.regions[r.Rkey]; !ok {
		panic(fmt.Sprintf("ib: deregister of unknown rkey %d", r.Rkey))
	}
	delete(h.regions, r.Rkey)
}

// wireTime is the link occupancy of an n-byte transfer.
func (h *HCA) wireTime(n int) sim.Time {
	return h.f.model.PostOverhead + sim.DurationOf(n, h.f.model.Bandwidth)
}

// transmit implements the shared egress/ingress path: snapshot is the
// payload already captured at post time; deliver runs in engine context at
// the remote side once the bytes have fully arrived. kind classifies the
// operation for tracing. railIdx selects which of the sender's (and,
// symmetrically, the receiver's) rails the transfer serializes on.
//
// parent/chunk thread pipeline identity into the trace: the tx task is a
// child of parent (typically the sender's rdma stage span) tagged with the
// chunk index, and the rx task — which cannot be contained in the sender's
// span because it outlives local completion — carries the same chunk tag
// plus an explicit wire dependency edge back to the tx task, which is how
// the critical-path analyzer crosses ranks.
func (h *HCA) transmit(dst int, nbytes int, kind string, railIdx int, parent obs.Span, chunk int, deliver func(rx *HCA, wire obs.Task)) *sim.Event {
	rx := h.f.hcas[dst]
	if rx == nil {
		panic(fmt.Sprintf("ib: no HCA for destination node %d", dst))
	}
	if rx == h {
		panic("ib: loopback transfer; same-node communication does not use the fabric")
	}
	txRail, rxRail := h.railAt(railIdx), rx.railAt(railIdx)
	localDone := h.f.e.NewEvent(fmt.Sprintf("hca%d.tx.done", h.node))
	h.seq++
	txRail.queued++
	h.f.hub.Counter(txRail.qCtr, float64(txRail.queued))
	h.f.e.Spawn(fmt.Sprintf("hca%d->%d.%d", h.node, dst, h.seq), func(p *sim.Proc) {
		txRail.sendLink.Acquire(p)
		tx := h.f.hub.StartChild(parent, kind, txRail.txTrack, chunk, nbytes)
		p.Sleep(h.wireTime(nbytes))
		tx.End()
		txRail.sendLink.Release()
		txRail.queued--
		h.f.hub.Counter(txRail.qCtr, float64(txRail.queued))
		localDone.Trigger() // last byte has left the sender
		h.stats.BytesTx += int64(nbytes)
		h.f.hub.Counter(h.txCtr, float64(h.stats.BytesTx))
		p.Sleep(h.f.model.Latency)
		rxRail.recvLink.Acquire(p)
		// Ingress serialization: the receive link is occupied while the
		// payload streams in. Short control messages cost only their
		// header-size time.
		in := h.f.hub.Start(kind, rxRail.rxTrack, chunk, nbytes)
		in.DependsOnTask(tx.Task(), obs.DepWire)
		p.Sleep(sim.DurationOf(nbytes, h.f.model.Bandwidth) / 8)
		in.End()
		rxRail.recvLink.Release()
		rx.stats.BytesRx += int64(nbytes)
		h.f.hub.Counter(rx.rxCtr, float64(rx.stats.BytesRx))
		deliver(rx, in.Task())
	})
	return localDone
}

// headerBytes approximates the wire size of a header-only message.
const headerBytes = 64

// PostSend transmits a two-sided message carrying msg and an optional
// payload snapshot taken from payload at post time, on rail 0. The
// returned event fires at local completion (send buffer reusable). The
// remote handler is invoked when the message fully arrives.
func (h *HCA) PostSend(dst int, msg Message, payload []byte) *sim.Event {
	return h.PostSendRail(dst, msg, payload, 0)
}

// PostSendRail is PostSend on an explicit rail. Delivery order is
// guaranteed only relative to other operations on the same rail.
func (h *HCA) PostSendRail(dst int, msg Message, payload []byte, railIdx int) *sim.Event {
	var snap []byte
	if len(payload) > 0 {
		snap = append([]byte(nil), payload...)
	}
	h.stats.SendsPosted++
	return h.transmit(dst, headerBytes+len(snap), obs.KindSend, railIdx, obs.Span{}, -1, func(rx *HCA, _ obs.Task) {
		if rx.handler == nil {
			panic(fmt.Sprintf("ib: message for node %d dropped: no handler", rx.node))
		}
		rx.handler(h.node, msg, snap)
	})
}

// RDMAWrite transfers n bytes from local memory src into the remote region
// identified by rkey at byte offset roff on rail 0, with no receiver-side
// notification (a silent one-sided put). The source bytes are snapshotted
// at post time, modeling the HCA's DMA read; the returned event fires at
// local completion. The bytes become visible in remote memory at delivery
// time, strictly before any send posted afterwards on the same rail of
// this HCA is delivered.
func (h *HCA) RDMAWrite(dst int, src mem.Ptr, n int, rkey uint32, roff int) *sim.Event {
	return h.RDMAWriteRail(dst, src, n, rkey, roff, 0)
}

// RDMAWriteRail is RDMAWrite on an explicit rail. The FIN-after-data
// invariant holds only against sends posted on the same rail.
func (h *HCA) RDMAWriteRail(dst int, src mem.Ptr, n int, rkey uint32, roff, railIdx int) *sim.Event {
	return h.RDMAWriteRailTask(dst, src, n, rkey, roff, railIdx, obs.Span{}, -1)
}

// RDMAWriteRailTask is RDMAWriteRail with the wire tasks parented to an
// enclosing pipeline-stage span and tagged with a chunk index (see
// transmit). An inert parent and chunk -1 degrade to plain tracing.
func (h *HCA) RDMAWriteRailTask(dst int, src mem.Ptr, n int, rkey uint32, roff, railIdx int, parent obs.Span, chunk int) *sim.Event {
	// The HCA's DMA read of the source happens "at post time": the task is
	// due at the post instant, and the poster owns src until the local
	// completion event, so nothing rewrites it before the slot commits.
	snap := make([]byte, n)
	h.f.e.TaskAt(h.f.e.Now(), func() { copy(snap, src.Bytes(n)) })
	h.stats.RDMAWrites++
	return h.transmit(dst, n, obs.KindRDMA, railIdx, parent, chunk, func(rx *HCA, wire obs.Task) {
		rx.deposit(rkey, roff, snap, railIdx, wire)
	})
}

// deposit lands an arrived RDMA write payload in the target region: a
// plain region takes a direct memory copy at delivery time; a scatter
// region routes the payload through the receiving rail's SGE unit, which
// walks the registered descriptor (see sg.go). wire is the receive-side
// wire task, threaded through so the scatter task can record its stage
// dependency.
func (h *HCA) deposit(rkey uint32, roff int, snap []byte, railIdx int, wire obs.Task) {
	reg, ok := h.regions[rkey]
	if !ok {
		panic(fmt.Sprintf("ib: RDMA write to unknown rkey %d on node %d", rkey, h.node))
	}
	if roff < 0 || roff+len(snap) > reg.len {
		panic(fmt.Sprintf("ib: RDMA write [%d,%d) outside region of %d bytes", roff, roff+len(snap), reg.len))
	}
	if reg.sc != nil {
		h.scatterDeposit(reg, roff, snap, railIdx, wire)
		return
	}
	// Bytes land in remote memory at delivery time; the receiver only
	// looks after the FIN, which trails the data on the same rail.
	dst := reg.ptr.Add(roff).Bytes(len(snap))
	h.f.e.TaskAt(h.f.e.Now(), func() { copy(dst, snap) })
}

// RDMARead fetches n bytes from the remote region identified by rkey at
// byte offset roff on node `from` into local memory dst (a one-sided get).
// The returned event fires when the data has fully landed locally. The
// remote bytes are snapshotted when the responder begins streaming, after
// the request's wire trip; the responder's send link is occupied for the
// payload, mirroring real RC read responses.
func (h *HCA) RDMARead(dst mem.Ptr, from int, rkey uint32, roff, n int) *sim.Event {
	tx := h.f.hcas[from]
	if tx == nil {
		panic(fmt.Sprintf("ib: no HCA for read target node %d", from))
	}
	if tx == h {
		panic("ib: loopback read; same-node communication does not use the fabric")
	}
	done := h.f.e.NewEvent(fmt.Sprintf("hca%d.read.done", h.node))
	h.seq++
	h.stats.RDMAReads++
	reqRail, respRail := h.railAt(0), tx.railAt(0)
	h.f.e.Spawn(fmt.Sprintf("hca%d<-%d.%d", h.node, from, h.seq), func(p *sim.Proc) {
		// Request: a header-sized message out on our send link.
		reqRail.sendLink.Acquire(p)
		reqSp := h.f.hub.Start(obs.KindRDMARead, reqRail.txTrack, -1, headerBytes)
		p.Sleep(h.wireTime(headerBytes))
		reqSp.End()
		reqRail.sendLink.Release()
		p.Sleep(h.f.model.Latency)
		// Response: the target streams the payload from its link.
		reg, ok := tx.regions[rkey]
		if !ok {
			panic(fmt.Sprintf("ib: RDMA read of unknown rkey %d on node %d", rkey, tx.node))
		}
		if roff < 0 || roff+n > reg.len {
			panic(fmt.Sprintf("ib: RDMA read [%d,%d) outside region of %d bytes", roff, roff+n, reg.len))
		}
		respRail.sendLink.Acquire(p)
		respSp := h.f.hub.Start(obs.KindRDMARead, respRail.txTrack, -1, n)
		snap := append([]byte(nil), reg.ptr.Add(roff).Bytes(n)...)
		p.Sleep(tx.wireTime(n))
		respSp.End()
		respRail.sendLink.Release()
		tx.stats.BytesTx += int64(n)
		h.f.hub.Counter(tx.txCtr, float64(tx.stats.BytesTx))
		p.Sleep(h.f.model.Latency)
		reqRail.recvLink.Acquire(p)
		inSp := h.f.hub.Start(obs.KindRDMARead, reqRail.rxTrack, -1, n)
		p.Sleep(sim.DurationOf(n, h.f.model.Bandwidth) / 8)
		inSp.End()
		reqRail.recvLink.Release()
		h.stats.BytesRx += int64(n)
		h.f.hub.Counter(h.rxCtr, float64(h.stats.BytesRx))
		copy(dst.Bytes(n), snap)
		done.Trigger()
	})
	return done
}
