package ib

import (
	"fmt"
	"testing"
	"testing/quick"

	"mv2sim/internal/mem"
	"mv2sim/internal/sim"
)

type net struct {
	e    sim.Engine
	f    *Fabric
	hcas []*HCA
	host []*mem.Space
}

func newNet(n int) *net {
	e := sim.New()
	f := NewFabric(e, Model{})
	nw := &net{e: e, f: f}
	for i := 0; i < n; i++ {
		nw.hcas = append(nw.hcas, f.NewHCA(i))
		nw.host = append(nw.host, mem.NewHostSpace(fmt.Sprintf("host%d", i), 1<<20))
	}
	return nw
}

func TestPostSendDelivery(t *testing.T) {
	nw := newNet(2)
	type hello struct{ N int }
	var gotFrom, gotN int
	var gotPayload []byte
	var deliveredAt sim.Time
	nw.hcas[1].SetHandler(func(from int, msg Message, payload []byte) {
		gotFrom = from
		gotN = msg.(hello).N
		gotPayload = append([]byte(nil), payload...)
		deliveredAt = nw.e.Now()
	})
	nw.e.Spawn("sender", func(p *sim.Proc) {
		ev := nw.hcas[0].PostSend(1, hello{42}, []byte("abc"))
		p.Wait(ev)
	})
	if err := nw.e.Run(); err != nil {
		t.Fatal(err)
	}
	if gotFrom != 0 || gotN != 42 || string(gotPayload) != "abc" {
		t.Errorf("delivery = from %d msg %d payload %q", gotFrom, gotN, gotPayload)
	}
	m := nw.f.Model()
	if deliveredAt < m.Latency {
		t.Errorf("delivered at %v, before wire latency %v", deliveredAt, m.Latency)
	}
}

func TestPayloadSnapshotAtPostTime(t *testing.T) {
	nw := newNet(2)
	buf := []byte{1, 2, 3, 4}
	var got []byte
	nw.hcas[1].SetHandler(func(from int, msg Message, payload []byte) {
		got = append([]byte(nil), payload...)
	})
	nw.e.Spawn("sender", func(p *sim.Proc) {
		nw.hcas[0].PostSend(1, nil, buf)
		buf[0] = 99 // mutate after post; receiver must see the snapshot
	})
	if err := nw.e.Run(); err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 {
		t.Errorf("payload = %v, snapshot semantics violated", got)
	}
}

func TestRDMAWriteDepositsBytes(t *testing.T) {
	nw := newNet(2)
	nw.hcas[1].SetHandler(func(int, Message, []byte) {})
	dst := nw.host[1].Base().Add(128)
	reg := nw.hcas[1].Register(dst, 4096)
	src := nw.host[0].Base()
	mem.Fill(src, 4096, func(i int) byte { return byte(i * 13) })
	nw.e.Spawn("sender", func(p *sim.Proc) {
		ev := nw.hcas[0].RDMAWrite(1, src, 1024, reg.Rkey, 256)
		p.Wait(ev)
	})
	if err := nw.e.Run(); err != nil {
		t.Fatal(err)
	}
	if !mem.Equal(dst.Add(256), src, 1024) {
		t.Error("RDMA write did not deposit bytes at the right offset")
	}
	st0, st1 := nw.hcas[0].Stats(), nw.hcas[1].Stats()
	if st0.RDMAWrites != 1 || st0.BytesTx == 0 || st1.BytesRx == 0 {
		t.Errorf("stats: tx=%+v rx=%+v", st0, st1)
	}
}

func TestRDMAThenSendOrdering(t *testing.T) {
	// A send posted after an RDMA write must observe the written bytes on
	// the remote side — the FIN-message invariant of the paper's pipeline.
	nw := newNet(2)
	dst := nw.host[1].Base()
	reg := nw.hcas[1].Register(dst, 1<<16)
	src := nw.host[0].Base()
	mem.Fill(src, 1<<16, func(i int) byte { return 0x7E })
	sawData := false
	nw.hcas[1].SetHandler(func(from int, msg Message, payload []byte) {
		sawData = dst.Bytes(1 << 16)[65535] == 0x7E
	})
	nw.e.Spawn("sender", func(p *sim.Proc) {
		nw.hcas[0].RDMAWrite(1, src, 1<<16, reg.Rkey, 0)
		nw.hcas[0].PostSend(1, "fin", nil)
	})
	if err := nw.e.Run(); err != nil {
		t.Fatal(err)
	}
	if !sawData {
		t.Error("FIN delivered before RDMA data landed")
	}
}

func TestSendsFromOneHCASerialize(t *testing.T) {
	nw := newNet(3)
	const n = 1 << 20
	for _, h := range nw.hcas[1:] {
		h.SetHandler(func(int, Message, []byte) {})
	}
	var done1, done2 sim.Time
	nw.e.Spawn("sender", func(p *sim.Proc) {
		e1 := nw.hcas[0].PostSend(1, nil, make([]byte, n))
		e2 := nw.hcas[0].PostSend(2, nil, make([]byte, n))
		p.WaitAll(e1, e2)
		done1, done2 = e1.FiredAt(), e2.FiredAt()
	})
	if err := nw.e.Run(); err != nil {
		t.Fatal(err)
	}
	wire := sim.DurationOf(n, nw.f.Model().Bandwidth)
	if done2 < done1+wire {
		t.Errorf("egress did not serialize: %v then %v (wire %v)", done1, done2, wire)
	}
}

func TestDisjointPairsOverlap(t *testing.T) {
	nw := newNet(4)
	const n = 1 << 20
	for _, h := range nw.hcas {
		h.SetHandler(func(int, Message, []byte) {})
	}
	var end sim.Time
	nw.e.Spawn("main", func(p *sim.Proc) {
		e1 := nw.hcas[0].PostSend(1, nil, make([]byte, n))
		e2 := nw.hcas[2].PostSend(3, nil, make([]byte, n))
		p.WaitAll(e1, e2)
		end = p.Now()
	})
	if err := nw.e.Run(); err != nil {
		t.Fatal(err)
	}
	one := sim.DurationOf(n, nw.f.Model().Bandwidth)
	if end > one+one/2 {
		t.Errorf("disjoint pairs serialized: end=%v, single wire=%v", end, one)
	}
}

func TestRegisterDeviceMemoryPanics(t *testing.T) {
	nw := newNet(1)
	dev := mem.NewDeviceSpace("gpu", 0, 4096)
	defer func() {
		if recover() == nil {
			t.Error("registering device memory did not panic")
		}
	}()
	nw.hcas[0].Register(dev.Base(), 64)
}

func TestRDMAToUnknownRkeyPanics(t *testing.T) {
	nw := newNet(2)
	src := nw.host[0].Base()
	nw.e.Spawn("sender", func(p *sim.Proc) {
		nw.hcas[0].RDMAWrite(1, src, 16, 999, 0)
	})
	defer func() {
		if recover() == nil {
			t.Error("RDMA to unknown rkey did not panic")
		}
	}()
	_ = nw.e.Run()
}

func TestRDMAOutOfRegionPanics(t *testing.T) {
	nw := newNet(2)
	reg := nw.hcas[1].Register(nw.host[1].Base(), 128)
	nw.e.Spawn("sender", func(p *sim.Proc) {
		nw.hcas[0].RDMAWrite(1, nw.host[0].Base(), 100, reg.Rkey, 64)
	})
	defer func() {
		if recover() == nil {
			t.Error("RDMA past region end did not panic")
		}
	}()
	_ = nw.e.Run()
}

func TestDeregister(t *testing.T) {
	nw := newNet(1)
	reg := nw.hcas[0].Register(nw.host[0].Base(), 128)
	nw.hcas[0].Deregister(reg)
	defer func() {
		if recover() == nil {
			t.Error("double deregister did not panic")
		}
	}()
	nw.hcas[0].Deregister(reg)
}

func TestLoopbackPanics(t *testing.T) {
	nw := newNet(1)
	defer func() {
		if recover() == nil {
			t.Error("loopback send did not panic")
		}
	}()
	nw.hcas[0].PostSend(0, nil, nil)
}

func TestDuplicateHCAPanics(t *testing.T) {
	nw := newNet(1)
	defer func() {
		if recover() == nil {
			t.Error("duplicate HCA did not panic")
		}
	}()
	nw.f.NewHCA(0)
}

func TestMissingHandlerPanics(t *testing.T) {
	nw := newNet(2) // no handler installed on node 1
	nw.e.Spawn("sender", func(p *sim.Proc) {
		nw.hcas[0].PostSend(1, "x", nil)
	})
	defer func() {
		if recover() == nil {
			t.Error("delivery without handler did not panic")
		}
	}()
	_ = nw.e.Run()
}

// Property: messages between one ordered pair are delivered in post order
// regardless of size mix.
func TestPropPairwiseOrdering(t *testing.T) {
	f := func(sizes []uint16) bool {
		if len(sizes) == 0 || len(sizes) > 40 {
			return true
		}
		nw := newNet(2)
		var got []int
		nw.hcas[1].SetHandler(func(from int, msg Message, payload []byte) {
			got = append(got, msg.(int))
		})
		nw.e.Spawn("sender", func(p *sim.Proc) {
			for i, s := range sizes {
				nw.hcas[0].PostSend(1, i, make([]byte, int(s)))
			}
		})
		if err := nw.e.Run(); err != nil {
			return false
		}
		if len(got) != len(sizes) {
			return false
		}
		for i, v := range got {
			if v != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: any sequence of RDMA writes to disjoint offsets deposits
// exactly the posted bytes (no loss, no bleed between chunks) — the
// chunked-pipeline correctness base case.
func TestPropChunkedRDMAIntegrity(t *testing.T) {
	f := func(chunksRaw []uint8) bool {
		nchunks := 1 + len(chunksRaw)%16
		const chunk = 512
		nw := newNet(2)
		nw.hcas[1].SetHandler(func(int, Message, []byte) {})
		dst := nw.host[1].Base()
		reg := nw.hcas[1].Register(dst, nchunks*chunk)
		src := nw.host[0].Base()
		mem.Fill(src, nchunks*chunk, func(i int) byte { return byte(i*37 + 5) })
		nw.e.Spawn("sender", func(p *sim.Proc) {
			// Post chunks in reverse order; each targets its own slot.
			for i := nchunks - 1; i >= 0; i-- {
				nw.hcas[0].RDMAWrite(1, src.Add(i*chunk), chunk, reg.Rkey, i*chunk)
			}
		})
		if err := nw.e.Run(); err != nil {
			return false
		}
		return mem.Equal(dst, src, nchunks*chunk)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestWireTimeScalesWithSize(t *testing.T) {
	nw := newNet(2)
	nw.hcas[1].SetHandler(func(int, Message, []byte) {})
	var small, large sim.Time
	nw.e.Spawn("s", func(p *sim.Proc) {
		t0 := p.Now()
		p.Wait(nw.hcas[0].PostSend(1, nil, make([]byte, 64)))
		small = p.Now() - t0
		t0 = p.Now()
		p.Wait(nw.hcas[0].PostSend(1, nil, make([]byte, 1<<20)))
		large = p.Now() - t0
	})
	if err := nw.e.Run(); err != nil {
		t.Fatal(err)
	}
	if large < 100*small {
		t.Errorf("1MB local completion %v not ≫ 64B %v", large, small)
	}
}

func TestRDMAReadFetchesBytes(t *testing.T) {
	nw := newNet(2)
	src := nw.host[1].Base().Add(64)
	mem.Fill(src, 4096, func(i int) byte { return byte(i*5 + 1) })
	reg := nw.hcas[1].Register(src, 4096)
	dst := nw.host[0].Base()
	nw.e.Spawn("reader", func(p *sim.Proc) {
		ev := nw.hcas[0].RDMARead(dst, 1, reg.Rkey, 128, 1024)
		p.Wait(ev)
		if !mem.Equal(dst, src.Add(128), 1024) {
			t.Error("read returned wrong bytes")
		}
	})
	if err := nw.e.Run(); err != nil {
		t.Fatal(err)
	}
	if nw.hcas[0].Stats().RDMAReads != 1 {
		t.Error("read not counted")
	}
}

func TestRDMAReadCostsTwoTrips(t *testing.T) {
	// A read pays request latency + response stream; it must take longer
	// than a same-size write's local completion but in the same ballpark
	// as the write's delivery.
	nw := newNet(2)
	reg := nw.hcas[1].Register(nw.host[1].Base(), 1<<20)
	var readTime sim.Time
	nw.e.Spawn("reader", func(p *sim.Proc) {
		t0 := p.Now()
		p.Wait(nw.hcas[0].RDMARead(nw.host[0].Base(), 1, reg.Rkey, 0, 1<<20))
		readTime = p.Now() - t0
	})
	if err := nw.e.Run(); err != nil {
		t.Fatal(err)
	}
	wire := sim.DurationOf(1<<20, nw.f.Model().Bandwidth)
	if readTime < wire || readTime > 2*wire {
		t.Errorf("read time %v outside [1,2]x wire %v", readTime, wire)
	}
}

func TestRDMAReadUnknownRkeyPanics(t *testing.T) {
	nw := newNet(2)
	nw.e.Spawn("reader", func(p *sim.Proc) {
		nw.hcas[0].RDMARead(nw.host[0].Base(), 1, 777, 0, 16)
	})
	defer func() {
		if recover() == nil {
			t.Error("read of unknown rkey did not panic")
		}
	}()
	_ = nw.e.Run()
}
