// NIC-offloaded gather/scatter: the HCA's scatter/gather (SGE) unit.
//
// "Network-Accelerated Non-Contiguous Memory Transfers" (Di Girolamo et
// al., SC'19 / sPIN) shows the NIC itself can walk an MPI datatype: the
// send side posts work requests whose scatter/gather entries address the
// non-contiguous segments in place, and the receive side runs the inverse
// scatter as packets arrive — no GPU pack pass, no staging copy, the
// datatype walk overlapped with the wire.
//
// This file models that unit. An SGDesc lowers a cached
// datatype.ChunkPlan range into the descriptor one chunk's work requests
// carry; MaxSGEPerWQE caps the entries per work request, so descriptors
// with more segments split into several WQEs, each paying PostOverhead.
// A serialized per-rail engine (rail.sgEngine) executes descriptors one
// at a time at NicGatherNsPerSegment + NicGatherNsPerByte, the per-byte
// rate floored at the wire byte rate exactly like gpu.CostModel floors
// its pack-kernel rate at the copy engine's — the unit feeds the link and
// cannot outrun it. Executions appear on the per-rail "hcaN.nicEngine"
// obs track as KindNicGather / KindNicScatter tasks.
//
// The SGE unit addresses local memory through the HCA's own DMA path, so
// it reaches GPU device memory even on fabrics without GPUDirect RDMA
// (Model.AllowDeviceRegistration) — offload vendors ship exactly this
// asymmetry: the datatype engine has its own translation contexts, while
// plain remote-rkey registration of device memory remains the GPUDirect
// feature the 2011 testbed lacked. The Register gate is therefore NOT
// applied to scatter regions or gather sources.
package ib

import (
	"fmt"

	"mv2sim/internal/datatype"
	"mv2sim/internal/mem"
	"mv2sim/internal/obs"
	"mv2sim/internal/sim"
)

// Default calibration of the SGE unit. The per-segment walk cost sits
// between a ConnectX descriptor fetch and a sPIN handler invocation; the
// per-byte rate is below the QDR wire rate, so on the default fabric the
// bandwidth floor binds and segments are the cost driver — which is what
// makes the NIC engine win exactly the fine-grained shapes where kernel
// launch + staging overhead dominates.
const (
	// DefaultMaxSGEPerWQE is the scatter/gather entry cap per work
	// request (ConnectX-class HCAs advertise 32).
	DefaultMaxSGEPerWQE = 32
	// DefaultNicGatherNsPerSegment is the SGE unit's per-entry walk cost.
	DefaultNicGatherNsPerSegment = 20.0
	// DefaultNicGatherNsPerByte is the unit's raw streaming rate; the
	// QDR wire floor (1e9/Bandwidth = 0.3125 ns/B) binds above it.
	DefaultNicGatherNsPerByte = 0.05
)

// SGEPerWQE returns the model's scatter/gather entry cap, defaulted.
func (m Model) SGEPerWQE() int {
	if m.MaxSGEPerWQE > 0 {
		return m.MaxSGEPerWQE
	}
	return DefaultMaxSGEPerWQE
}

// GatherNsPerSegment returns the per-segment walk cost, defaulted.
func (m Model) GatherNsPerSegment() float64 {
	if m.NicGatherNsPerSegment > 0 {
		return m.NicGatherNsPerSegment
	}
	return DefaultNicGatherNsPerSegment
}

// NicGatherRate returns the SGE unit's effective per-byte cost: the
// configured streaming rate floored at the wire byte rate, mirroring
// gpu.CostModel.PackKernelRate's floor at the copy engine rate.
func (m Model) NicGatherRate() float64 {
	r := m.NicGatherNsPerByte
	if r <= 0 {
		r = DefaultNicGatherNsPerByte
	}
	if m.Bandwidth > 0 {
		if floor := 1e9 / m.Bandwidth; r < floor {
			r = floor
		}
	}
	return r
}

// GatherCost returns the modeled SGE engine occupancy of gathering (or
// scattering) `bytes` bytes spread over `segments` contiguous pieces:
// one PostOverhead per WQE — descriptors longer than SGEPerWQE entries
// split into several work requests — plus the per-segment walk and the
// floored per-byte streaming term.
func (m Model) GatherCost(bytes, segments int) sim.Time {
	wqes := (segments + m.SGEPerWQE() - 1) / m.SGEPerWQE()
	if wqes < 1 {
		wqes = 1
	}
	t := sim.Time(wqes) * m.PostOverhead
	t += sim.Time(float64(segments)*m.GatherNsPerSegment() + float64(bytes)*m.NicGatherRate())
	return t
}

// SGDesc is one gather/scatter descriptor: the packed byte range
// [Off, Off+N) of a chunk plan over the typed buffer at Buf, lowered to
// the entries the HCA's SGE unit walks. A nil Plan describes a single
// contiguous segment of N bytes at Buf.Add(Off) — the degenerate
// descriptor contiguous transfers and vbuf-staged gathers use.
type SGDesc struct {
	Plan *datatype.ChunkPlan
	Buf  mem.Ptr
	Off  int
	N    int
}

// Bytes returns the packed byte count the descriptor covers.
func (sg SGDesc) Bytes() int { return sg.N }

// Segments returns the number of scatter/gather entries the descriptor
// lowers to — the per-segment cost driver of GatherCost.
func (sg SGDesc) Segments() int {
	if sg.N == 0 {
		return 0
	}
	if sg.Plan == nil {
		return 1
	}
	return sg.Plan.RangeSegments(sg.Off, sg.N)
}

// sub narrows the descriptor to the packed sub-range [rel, rel+n) of its
// own range.
func (sg SGDesc) sub(rel, n int) SGDesc {
	return SGDesc{Plan: sg.Plan, Buf: sg.Buf, Off: sg.Off + rel, N: n}
}

// gather reads the descriptor's segments into dst (len(dst) == sg.N).
func (sg SGDesc) gather(dst []byte) {
	if sg.Plan == nil {
		copy(dst, sg.Buf.Add(sg.Off).Bytes(sg.N))
		return
	}
	sg.Plan.PackRangeBytes(dst, sg.Buf, sg.Off, sg.N)
}

// scatter writes src into the descriptor's segments — the inverse walk.
func (sg SGDesc) scatter(src []byte) {
	if sg.Plan == nil {
		copy(sg.Buf.Add(sg.Off).Bytes(len(src)), src)
		return
	}
	sg.Plan.UnpackRangeBytes(sg.Buf, src, sg.Off, len(src))
}

// scatterRegion is the receive-side state of a scatter-registered region:
// the descriptor covering the whole packed stream, the chunk geometry
// arriving writes are aligned to, and the per-chunk completion upcall.
type scatterRegion struct {
	sg         SGDesc
	chunkBytes int
	done       func(chunk int)
}

// RegisterScatterRegion registers the packed address space of a gather
// descriptor for remote RDMA: an arriving write at packed offset roff is
// not copied to memory at roff but scattered through the SGE unit into
// the descriptor's segments, and done(chunk) fires when chunk
// roff/chunkBytes has landed in the typed buffer. Arriving writes must be
// chunk-aligned sub-ranges of the registered stream.
//
// Unlike Register, device memory is always acceptable here: the SGE
// unit's own DMA path reaches it without GPUDirect (see the package
// comment). The region's registered length is the packed stream size.
func (h *HCA) RegisterScatterRegion(sg SGDesc, chunkBytes int, done func(chunk int)) Region {
	if chunkBytes <= 0 {
		panic(fmt.Sprintf("ib: scatter region chunk size %d", chunkBytes))
	}
	r := Region{
		Rkey: h.nextRkey,
		ptr:  sg.Buf,
		len:  sg.N,
		sc:   &scatterRegion{sg: sg, chunkBytes: chunkBytes, done: done},
	}
	h.nextRkey++
	h.regions[r.Rkey] = r
	return r
}

// scatterDeposit routes an arrived write through the receiving rail's SGE
// unit: acquire the engine, walk the chunk's descriptor for its modeled
// cost, land the bytes in the typed buffer, release, and report the chunk
// complete. The scatter task records a stage dependency on the receive
// wire task, so the critical-path analyzer sees arrival → scatter as one
// chain and attributes engine wait to the nic-queueing bucket.
func (h *HCA) scatterDeposit(reg Region, roff int, snap []byte, railIdx int, wire obs.Task) {
	sc := reg.sc
	chunk := roff / sc.chunkBytes
	rl := h.railAt(railIdx)
	h.seq++
	h.f.e.Spawn(fmt.Sprintf("hca%d.scatter.%d", h.node, h.seq), func(p *sim.Proc) {
		rl.sgEngine.Acquire(p)
		sub := sc.sg.sub(roff, len(snap))
		cost := h.f.model.GatherCost(sub.N, sub.Segments())
		sp := h.f.hub.Start(obs.KindNicScatter, rl.sgeTrack, chunk, sub.N)
		sp.DependsOnTask(wire, obs.DepStage)
		// The typed bytes are due when the scatter completes; snap is the
		// wire payload, never reused by the sender.
		h.f.e.TaskAt(h.f.e.Now()+cost, func() { sub.scatter(snap) })
		p.Sleep(cost)
		sp.End()
		rl.sgEngine.Release()
		if sc.done != nil {
			sc.done(chunk)
		}
	})
}

// RDMAWriteGatherRailTask is the NIC-offloaded counterpart of
// RDMAWriteRailTask: instead of snapshotting a contiguous source at post
// time, the rail's SGE unit first walks the gather descriptor (engine
// occupancy per GatherCost, traced as KindNicGather under parent), then
// the gathered payload goes to the wire. onWirePosted, when non-nil, runs
// synchronously right after the wire transfer has been posted — the hook
// protocol layers use to post the chunk's FIN behind the data on the same
// rail, preserving the FIN-after-data FIFO even though the gather delays
// the post. The returned event fires at local wire completion.
func (h *HCA) RDMAWriteGatherRailTask(dst int, sg SGDesc, rkey uint32, roff, railIdx int, parent obs.Span, chunk int, onWirePosted func()) *sim.Event {
	rl := h.railAt(railIdx)
	done := h.f.e.NewEvent(fmt.Sprintf("hca%d.gather.done", h.node))
	h.stats.RDMAWrites++
	h.seq++
	h.f.e.Spawn(fmt.Sprintf("hca%d.gather.%d", h.node, h.seq), func(p *sim.Proc) {
		rl.sgEngine.Acquire(p)
		cost := h.f.model.GatherCost(sg.N, sg.Segments())
		g := h.f.hub.StartChild(parent, obs.KindNicGather, rl.sgeTrack, chunk, sg.N)
		snap := make([]byte, sg.N)
		// The unit's DMA read of the segments is due at gather completion;
		// the poster owns the typed buffer until the transfer completes.
		h.f.e.TaskAt(h.f.e.Now()+cost, func() { sg.gather(snap) })
		p.Sleep(cost)
		g.End()
		rl.sgEngine.Release()
		ev := h.transmit(dst, sg.N, obs.KindRDMA, railIdx, parent, chunk, func(rx *HCA, wire obs.Task) {
			rx.deposit(rkey, roff, snap, railIdx, wire)
		})
		if onWirePosted != nil {
			onWirePosted()
		}
		ev.OnTrigger(done.Trigger)
	})
	return done
}

// ExecuteGather runs one descriptor through rail 0's SGE engine with no
// wire attached and returns the completion event; dst receives the
// gathered bytes at completion. This is the measurement entry point the
// pack-crossover sweep uses: the event's trigger time minus the post time
// is exactly GatherCost plus any engine queueing.
func (h *HCA) ExecuteGather(sg SGDesc, dst []byte) *sim.Event {
	rl := h.railAt(0)
	done := h.f.e.NewEvent(fmt.Sprintf("hca%d.gather.done", h.node))
	h.seq++
	h.f.e.Spawn(fmt.Sprintf("hca%d.gather.%d", h.node, h.seq), func(p *sim.Proc) {
		rl.sgEngine.Acquire(p)
		cost := h.f.model.GatherCost(sg.N, sg.Segments())
		sp := h.f.hub.Start(obs.KindNicGather, rl.sgeTrack, -1, sg.N)
		h.f.e.TaskAt(h.f.e.Now()+cost, func() { sg.gather(dst) })
		p.Sleep(cost)
		sp.End()
		rl.sgEngine.Release()
		done.Trigger()
	})
	return done
}
