package ib

import (
	"fmt"
	"testing"

	"mv2sim/internal/datatype"
	"mv2sim/internal/mem"
	"mv2sim/internal/obs"
	"mv2sim/internal/sim"
)

// vecPlan builds a committed rows×rowBytes hvector plan over a device
// space, filled with a deterministic pattern.
func vecPlan(t *testing.T, rows, rowBytes, pitch, chunkBytes int) (*datatype.ChunkPlan, mem.Ptr) {
	t.Helper()
	dt, err := datatype.Hvector(rows, rowBytes, pitch, datatype.Byte)
	if err != nil {
		t.Fatal(err)
	}
	dt.MustCommit()
	sp := mem.NewDeviceSpace("sgtest", 0, rows*pitch)
	buf := sp.Base()
	mem.Fill(buf, rows*pitch, func(i int) byte { return byte(i*7 + 3) })
	return dt.ChunkPlan(1, chunkBytes), buf
}

// TestGatherCostWQESplitting pins the WQE-splitting arithmetic: one
// PostOverhead per ceil(segments/MaxSGEPerWQE) work requests on top of
// the per-segment and per-byte terms, and a floor of one WQE for the
// contiguous single-segment descriptor.
func TestGatherCostWQESplitting(t *testing.T) {
	m := DefaultModel()
	perSeg := func(segs, bytes int) sim.Time {
		return sim.Time(float64(segs)*m.GatherNsPerSegment() + float64(bytes)*m.NicGatherRate())
	}
	cases := []struct {
		segs, bytes int
		wqes        int
	}{
		{1, 64, 1},
		{32, 1 << 10, 1}, // exactly one full WQE
		{33, 1 << 10, 2}, // one entry spills into a second WQE
		{64, 1 << 10, 2}, // two full WQEs
		{1000, 4 << 10, 32},
	}
	for _, c := range cases {
		want := sim.Time(c.wqes)*m.PostOverhead + perSeg(c.segs, c.bytes)
		if got := m.GatherCost(c.bytes, c.segs); got != want {
			t.Errorf("GatherCost(%dB, %d segs) = %v, want %v (%d WQEs)",
				c.bytes, c.segs, got, want, c.wqes)
		}
	}
}

// TestNicGatherRateFloor checks the bandwidth floor: on the default QDR
// fabric the configured 0.05 ns/B is below the 0.3125 ns/B wire rate, so
// the floor binds; a slower configured rate wins over the floor; and a
// zero-bandwidth model (no wire to floor against) uses the raw rate.
func TestNicGatherRateFloor(t *testing.T) {
	m := DefaultModel()
	if got, want := m.NicGatherRate(), 1e9/m.Bandwidth; got != want {
		t.Errorf("default rate %v, want wire floor %v", got, want)
	}
	m.NicGatherNsPerByte = 1.5
	if got := m.NicGatherRate(); got != 1.5 {
		t.Errorf("slow configured rate %v, want 1.5", got)
	}
	m.NicGatherNsPerByte = 0
	m.Bandwidth = 0
	if got := m.NicGatherRate(); got != DefaultNicGatherNsPerByte {
		t.Errorf("no-wire rate %v, want raw default %v", got, DefaultNicGatherNsPerByte)
	}
}

// TestGatherWriteScatterRoundTrip sends one chunk through the full
// offloaded path — SGE gather on HCA 0, RDMA write, SGE scatter on
// HCA 1 — and checks byte-exact delivery into the strided remote buffer
// plus the per-chunk done upcall.
func TestGatherWriteScatterRoundTrip(t *testing.T) {
	const rows, rowBytes, pitch = 48, 16, 40
	size := rows * rowBytes
	nw := newNet(2)
	srcPlan, src := vecPlan(t, rows, rowBytes, pitch, size)

	dstType, err := datatype.Hvector(rows, rowBytes, pitch, datatype.Byte)
	if err != nil {
		t.Fatal(err)
	}
	dstType.MustCommit()
	dstSpace := mem.NewDeviceSpace("sgtest.dst", 1, rows*pitch)
	dst := dstSpace.Base()

	doneChunks := []int{}
	region := nw.hcas[1].RegisterScatterRegion(
		SGDesc{Plan: dstType.ChunkPlan(1, size), Buf: dst, N: size}, size,
		func(chunk int) { doneChunks = append(doneChunks, chunk) })

	wirePosted := false
	nw.e.Spawn("sender", func(p *sim.Proc) {
		sg := SGDesc{Plan: srcPlan, Buf: src, Off: 0, N: size}
		p.Wait(nw.hcas[0].RDMAWriteGatherRailTask(1, sg, region.Rkey, 0, 0, obs.Span{}, 0,
			func() { wirePosted = true }))
	})
	if err := nw.e.Run(); err != nil {
		t.Fatal(err)
	}
	if !wirePosted {
		t.Error("onWirePosted never fired")
	}
	if len(doneChunks) != 1 || doneChunks[0] != 0 {
		t.Errorf("scatter done upcalls = %v, want [0]", doneChunks)
	}
	for r := 0; r < rows; r++ {
		got := dst.Add(r * pitch).Bytes(rowBytes)
		want := src.Add(r * pitch).Bytes(rowBytes)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("row %d byte %d: got %d, want %d", r, i, got[i], want[i])
			}
		}
	}
	// The inter-row gap bytes must stay untouched by the scatter.
	for r := 0; r < rows-1; r++ {
		gap := dst.Add(r*pitch + rowBytes).Bytes(pitch - rowBytes)
		for i, b := range gap {
			if b != 0 {
				t.Fatalf("row %d gap byte %d clobbered: %d", r, i, b)
			}
		}
	}
}

// TestGatherSerializesOnSGEngine checks the per-rail engine discipline:
// two gathers posted together on one rail execute back to back, each
// occupying the engine for exactly its GatherCost.
func TestGatherSerializesOnSGEngine(t *testing.T) {
	const rows, rowBytes, pitch = 8, 32, 64
	size := rows * rowBytes
	nw := newNet(2)
	plan, src := vecPlan(t, rows, rowBytes, pitch, size)
	host := nw.host[1]
	region := nw.hcas[1].Register(host.Base(), 2*size)

	var ends []sim.Time
	nw.e.Spawn("sender", func(p *sim.Proc) {
		sg := SGDesc{Plan: plan, Buf: src, Off: 0, N: size}
		a := nw.hcas[0].RDMAWriteGatherRailTask(1, sg, region.Rkey, 0, 0, obs.Span{}, 0, nil)
		b := nw.hcas[0].RDMAWriteGatherRailTask(1, sg, region.Rkey, size, 0, obs.Span{}, 1, nil)
		a.OnTrigger(func() { ends = append(ends, nw.e.Now()) })
		b.OnTrigger(func() { ends = append(ends, nw.e.Now()) })
		p.Wait(a)
		p.Wait(b)
	})
	if err := nw.e.Run(); err != nil {
		t.Fatal(err)
	}
	cost := nw.f.Model().GatherCost(size, rows)
	if len(ends) != 2 {
		t.Fatalf("completions = %d, want 2", len(ends))
	}
	// The second transfer's wire task cannot start before its gather,
	// which itself waits for the first gather on the serialized engine:
	// completions must be at least one gather cost apart.
	if gap := ends[1] - ends[0]; gap < cost {
		t.Errorf("completion gap %v < serialized gather cost %v", gap, cost)
	}
}

// TestExecuteGatherMatchesModel checks the standalone gather used by the
// crossover sweep: measured duration equals GatherCost exactly, and the
// gathered bytes match a plain CPU pack of the same plan.
func TestExecuteGatherMatchesModel(t *testing.T) {
	for _, rows := range []int{1, 16, 33, 256} {
		const rowBytes, pitch = 16, 48
		size := rows * rowBytes
		nw := newNet(1)
		plan, src := vecPlan(t, rows, rowBytes, pitch, size)
		got := make([]byte, size)
		var dur sim.Time
		nw.e.Spawn("bench", func(p *sim.Proc) {
			t0 := p.Now()
			p.Wait(nw.hcas[0].ExecuteGather(SGDesc{Plan: plan, Buf: src, N: size}, got))
			dur = p.Now() - t0
		})
		if err := nw.e.Run(); err != nil {
			t.Fatal(err)
		}
		if want := nw.f.Model().GatherCost(size, rows); dur != want {
			t.Errorf("rows=%d: ExecuteGather took %v, model says %v", rows, dur, want)
		}
		want := make([]byte, size)
		plan.PackRangeBytes(want, src, 0, size)
		if string(got) != string(want) {
			t.Errorf("rows=%d: gathered bytes differ from plan pack", rows)
		}
	}
}

// TestScatterRegionAcceptsDeviceMemory pins the registration asymmetry:
// plain Register of device memory panics without GPUDirect, but a
// scatter region over the same device buffer is accepted — the SGE
// unit's own DMA path (see the package comment in sg.go).
func TestScatterRegionAcceptsDeviceMemory(t *testing.T) {
	nw := newNet(1)
	sp := mem.NewDeviceSpace("dev", 0, 1<<10)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Register(device) did not panic without GPUDirect")
			}
		}()
		nw.hcas[0].Register(sp.Base(), 1<<10)
	}()
	region := nw.hcas[0].RegisterScatterRegion(
		SGDesc{Buf: sp.Base(), N: 1 << 10}, 1<<10, func(int) {})
	if region.Len() != 1<<10 {
		t.Errorf("scatter region length %d, want %d", region.Len(), 1<<10)
	}
	nw.hcas[0].Deregister(region)
}

// TestGatherDeterminism runs the same two-chunk offloaded transfer twice
// and requires identical completion timestamps — the property the
// check.sh nic byte-determinism gate enforces end to end.
func TestGatherDeterminism(t *testing.T) {
	run := func() []sim.Time {
		const rows, rowBytes, pitch = 64, 8, 24
		size := rows * rowBytes
		nw := newNet(2)
		plan, src := vecPlan(t, rows, rowBytes, pitch, size)
		region := nw.hcas[1].Register(nw.host[1].Base(), 2*size)
		var ends []sim.Time
		nw.e.Spawn("sender", func(p *sim.Proc) {
			for c := 0; c < 2; c++ {
				sg := SGDesc{Plan: plan, Buf: src, Off: 0, N: size}
				ev := nw.hcas[0].RDMAWriteGatherRailTask(1, sg, region.Rkey, c*size, 0, obs.Span{}, c, nil)
				ev.OnTrigger(func() { ends = append(ends, nw.e.Now()) })
				p.Wait(ev)
			}
		})
		if err := nw.e.Run(); err != nil {
			t.Fatal(err)
		}
		return ends
	}
	a, b := run(), run()
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Errorf("completion times differ across identical runs: %v vs %v", a, b)
	}
}
