package mem

import (
	"testing"
	"testing/quick"
)

func TestSpaceBasics(t *testing.T) {
	h := NewHostSpace("host0", 1024)
	d := NewDeviceSpace("gpu0", 0, 2048)
	if h.Kind() != Host || d.Kind() != Device {
		t.Error("kind mismatch")
	}
	if h.DeviceID() != -1 || d.DeviceID() != 0 {
		t.Error("device id mismatch")
	}
	if h.Size() != 1024 || d.Size() != 2048 {
		t.Error("size mismatch")
	}
	if Host.String() != "host" || Device.String() != "device" || Kind(9).String() == "" {
		t.Error("Kind.String")
	}
}

func TestPtrClassification(t *testing.T) {
	h := NewHostSpace("h", 16)
	d := NewDeviceSpace("d", 3, 16)
	if h.Base().IsDevice() {
		t.Error("host ptr classified as device")
	}
	if !d.Base().IsDevice() {
		t.Error("device ptr classified as host")
	}
	if d.Base().DeviceID() != 3 {
		t.Error("DeviceID")
	}
	if h.Base().SameSpace(d.Base()) {
		t.Error("different spaces reported same")
	}
	if !h.Base().Add(4).SameSpace(h.Base()) {
		t.Error("same space reported different")
	}
}

func TestNilPtr(t *testing.T) {
	var p Ptr
	if !p.IsNil() {
		t.Error("zero Ptr not nil")
	}
	if p.String() != "nil" {
		t.Errorf("String = %q", p.String())
	}
	defer func() {
		if recover() == nil {
			t.Error("deref of nil ptr did not panic")
		}
	}()
	p.Bytes(1)
}

func TestPtrAddBounds(t *testing.T) {
	s := NewHostSpace("h", 10)
	p := s.Base().Add(10) // one-past-end is legal
	_ = p
	for _, bad := range []int{-1, 11} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Add(%d) did not panic", bad)
				}
			}()
			s.Base().Add(bad)
		}()
	}
}

func TestBytesBounds(t *testing.T) {
	s := NewHostSpace("h", 10)
	b := s.Base().Add(2).Bytes(3)
	if len(b) != 3 || cap(b) != 3 {
		t.Errorf("len=%d cap=%d", len(b), cap(b))
	}
	b[0] = 7
	if s.Base().Bytes(10)[2] != 7 {
		t.Error("write not visible through space")
	}
	defer func() {
		if recover() == nil {
			t.Error("oversized Bytes did not panic")
		}
	}()
	s.Base().Add(8).Bytes(3)
}

func TestCopy(t *testing.T) {
	a := NewHostSpace("a", 32)
	b := NewDeviceSpace("b", 0, 32)
	Fill(a.Base(), 32, func(i int) byte { return byte(i) })
	Copy(b.Base().Add(4), a.Base().Add(8), 16)
	for i := 0; i < 16; i++ {
		if b.Base().Bytes(32)[4+i] != byte(8+i) {
			t.Fatalf("byte %d mismatch", i)
		}
	}
	if !Equal(b.Base().Add(4), a.Base().Add(8), 16) {
		t.Error("Equal = false after copy")
	}
	if Equal(b.Base(), a.Base(), 32) {
		t.Error("Equal = true on differing ranges")
	}
}

func TestCopyOverlap(t *testing.T) {
	s := NewHostSpace("s", 16)
	Fill(s.Base(), 16, func(i int) byte { return byte(i) })
	// Overlapping forward copy must behave like memmove.
	Copy(s.Base().Add(2), s.Base(), 8)
	want := []byte{0, 1, 0, 1, 2, 3, 4, 5, 6, 7}
	got := s.Base().Bytes(10)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("overlap copy: got %v, want %v", got, want)
		}
	}
}

func TestCopy2D(t *testing.T) {
	// Pack a 3-row × 4-byte column out of an 8-byte-pitch source.
	src := NewDeviceSpace("src", 0, 64)
	dst := NewHostSpace("dst", 64)
	Fill(src.Base(), 64, func(i int) byte { return byte(i) })
	Copy2D(dst.Base(), 4, src.Base().Add(2), 8, 4, 3)
	want := []byte{2, 3, 4, 5, 10, 11, 12, 13, 18, 19, 20, 21}
	got := dst.Base().Bytes(12)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Copy2D: got %v, want %v", got, want)
		}
	}
}

func TestCopy2DPitchValidation(t *testing.T) {
	s := NewHostSpace("s", 64)
	defer func() {
		if recover() == nil {
			t.Error("pitch < width did not panic")
		}
	}()
	Copy2D(s.Base(), 2, s.Base(), 8, 4, 2)
}

func TestCopy2DNegativeDims(t *testing.T) {
	s := NewHostSpace("s", 64)
	defer func() {
		if recover() == nil {
			t.Error("negative height did not panic")
		}
	}()
	Copy2D(s.Base(), 8, s.Base(), 8, 4, -1)
}

func TestCopy2DZeroRows(t *testing.T) {
	s := NewHostSpace("s", 8)
	Copy2D(s.Base(), 8, s.Base(), 8, 4, 0) // no-op, must not panic
}

// Property: Copy2D into a contiguous destination followed by Copy2D back
// into a strided buffer restores the original strided contents (the
// pack/unpack identity the whole datatype path relies on).
func TestPropCopy2DRoundTrip(t *testing.T) {
	f := func(widthRaw, heightRaw, padRaw uint8) bool {
		width := 1 + int(widthRaw%16)
		height := 1 + int(heightRaw%16)
		pitch := width + int(padRaw%8)
		src := NewDeviceSpace("src", 0, pitch*height+16)
		packed := NewHostSpace("packed", width*height)
		back := NewDeviceSpace("back", 0, pitch*height+16)
		Fill(src.Base(), src.Size(), func(i int) byte { return byte(i * 31) })
		Copy2D(packed.Base(), width, src.Base(), pitch, width, height)
		Copy2D(back.Base(), pitch, packed.Base(), width, width, height)
		for r := 0; r < height; r++ {
			if !Equal(back.Base().Add(r*pitch), src.Base().Add(r*pitch), width) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPtrString(t *testing.T) {
	s := NewHostSpace("hostA", 64)
	if got := s.Base().Add(16).String(); got != "hostA+0x10" {
		t.Errorf("String = %q", got)
	}
}
