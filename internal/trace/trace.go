// Package trace provides the lightweight instrumentation the benchmarks
// use: named time accumulators for dimension-wise communication breakdowns
// (Figure 6 of the paper) and simple timing helpers over virtual time.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"mv2sim/internal/sim"
)

// Clock is anything that can report the current virtual time; both
// sim.Engine and mpi.Rank satisfy it.
type Clock interface {
	Now() sim.Time
}

// Breakdown accumulates named durations in insertion order.
type Breakdown struct {
	keys []string
	vals map[string]sim.Time
}

// NewBreakdown creates an empty accumulator.
func NewBreakdown() *Breakdown {
	return &Breakdown{vals: map[string]sim.Time{}}
}

// Add accumulates d under key, registering the key on first use.
func (b *Breakdown) Add(key string, d sim.Time) {
	if _, ok := b.vals[key]; !ok {
		b.keys = append(b.keys, key)
	}
	b.vals[key] += d
}

// Timed runs fn and accumulates its elapsed virtual time under key.
func (b *Breakdown) Timed(key string, c Clock, fn func()) {
	t0 := c.Now()
	fn()
	b.Add(key, c.Now()-t0)
}

// Get returns the accumulated time for key (zero if never added).
func (b *Breakdown) Get(key string) sim.Time { return b.vals[key] }

// Keys returns the keys in first-use order.
func (b *Breakdown) Keys() []string { return append([]string(nil), b.keys...) }

// Total returns the sum over all keys. Like Keys and String it walks the
// keys in insertion order, so any rounding in downstream arithmetic is
// deterministic run to run.
func (b *Breakdown) Total() sim.Time {
	var t sim.Time
	for _, k := range b.keys {
		t += b.vals[k]
	}
	return t
}

// Merge adds every entry of other into b.
func (b *Breakdown) Merge(other *Breakdown) {
	for _, k := range other.keys {
		b.Add(k, other.vals[k])
	}
}

// Scale multiplies every accumulated value by factor, e.g. 1/iterations to
// turn a whole-run accumulation into a per-iteration breakdown.
func (b *Breakdown) Scale(factor float64) {
	for _, k := range b.keys {
		b.vals[k] = sim.Time(float64(b.vals[k]) * factor)
	}
}

// Sub subtracts other's entries from b, registering keys b has not seen.
// Together with Scale it supports differential breakdowns ("this run minus
// baseline").
func (b *Breakdown) Sub(other *Breakdown) {
	for _, k := range other.keys {
		b.Add(k, -other.vals[k])
	}
}

// String renders one line per key, aligned, in insertion order.
func (b *Breakdown) String() string {
	var sb strings.Builder
	width := 0
	for _, k := range b.keys {
		if len(k) > width {
			width = len(k)
		}
	}
	for _, k := range b.keys {
		fmt.Fprintf(&sb, "%-*s %12.1f us\n", width+1, k, b.vals[k].Micros())
	}
	return sb.String()
}

// Sorted returns (key, value) pairs ordered by descending value.
func (b *Breakdown) Sorted() []struct {
	Key string
	Val sim.Time
} {
	out := make([]struct {
		Key string
		Val sim.Time
	}, 0, len(b.keys))
	for _, k := range b.keys {
		out = append(out, struct {
			Key string
			Val sim.Time
		}{k, b.vals[k]})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Val > out[j].Val })
	return out
}

// Median returns the median of a sample of durations; it is the statistic
// the paper reports for Stencil2D iteration times. The input is not
// modified. Median of an empty sample is 0.
func Median(samples []sim.Time) sim.Time {
	if len(samples) == 0 {
		return 0
	}
	cp := append([]sim.Time(nil), samples...)
	sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
	n := len(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}
