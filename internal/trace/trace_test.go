package trace

import (
	"strings"
	"testing"

	"mv2sim/internal/sim"
)

func TestBreakdownAccumulates(t *testing.T) {
	b := NewBreakdown()
	b.Add("east_cuda", 5*sim.Microsecond)
	b.Add("east_mpi", 2*sim.Microsecond)
	b.Add("east_cuda", 3*sim.Microsecond)
	if got := b.Get("east_cuda"); got != 8*sim.Microsecond {
		t.Errorf("east_cuda = %v", got)
	}
	if got := b.Keys(); len(got) != 2 || got[0] != "east_cuda" || got[1] != "east_mpi" {
		t.Errorf("keys = %v", got)
	}
	if b.Total() != 10*sim.Microsecond {
		t.Errorf("total = %v", b.Total())
	}
}

func TestBreakdownTimed(t *testing.T) {
	e := sim.New()
	b := NewBreakdown()
	e.Spawn("p", func(p *sim.Proc) {
		b.Timed("work", e, func() { p.Sleep(7 * sim.Microsecond) })
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if b.Get("work") != 7*sim.Microsecond {
		t.Errorf("timed = %v", b.Get("work"))
	}
}

func TestBreakdownMergeAndSorted(t *testing.T) {
	a, b := NewBreakdown(), NewBreakdown()
	a.Add("x", 1)
	b.Add("x", 2)
	b.Add("y", 10)
	a.Merge(b)
	if a.Get("x") != 3 || a.Get("y") != 10 {
		t.Errorf("merge: x=%v y=%v", a.Get("x"), a.Get("y"))
	}
	s := a.Sorted()
	if s[0].Key != "y" || s[1].Key != "x" {
		t.Errorf("sorted = %v", s)
	}
}

func TestBreakdownTotalInsertionOrder(t *testing.T) {
	// Total must walk keys in insertion order (same order as Keys), not
	// map-iteration order, so derived arithmetic is deterministic.
	b := NewBreakdown()
	keys := []string{"pack", "d2h", "rdma", "h2d", "unpack", "sync", "wait"}
	var want sim.Time
	for i, k := range keys {
		d := sim.Time(i+1) * sim.Microsecond
		b.Add(k, d)
		want += d
	}
	for trial := 0; trial < 50; trial++ {
		if got := b.Total(); got != want {
			t.Fatalf("Total = %v, want %v", got, want)
		}
	}
	if got := b.Keys(); len(got) != len(keys) || got[0] != "pack" || got[6] != "wait" {
		t.Errorf("keys = %v", got)
	}
}

func TestBreakdownScale(t *testing.T) {
	b := NewBreakdown()
	b.Add("x", 10*sim.Microsecond)
	b.Add("y", 4*sim.Microsecond)
	b.Scale(0.5)
	if b.Get("x") != 5*sim.Microsecond || b.Get("y") != 2*sim.Microsecond {
		t.Errorf("scaled: x=%v y=%v", b.Get("x"), b.Get("y"))
	}
	if b.Total() != 7*sim.Microsecond {
		t.Errorf("total = %v", b.Total())
	}
}

func TestBreakdownSub(t *testing.T) {
	run, base := NewBreakdown(), NewBreakdown()
	run.Add("cuda", 9*sim.Microsecond)
	run.Add("mpi", 5*sim.Microsecond)
	base.Add("cuda", 4*sim.Microsecond)
	base.Add("idle", 1*sim.Microsecond)
	run.Sub(base)
	if run.Get("cuda") != 5*sim.Microsecond {
		t.Errorf("cuda = %v", run.Get("cuda"))
	}
	if run.Get("mpi") != 5*sim.Microsecond {
		t.Errorf("mpi = %v", run.Get("mpi"))
	}
	if run.Get("idle") != -1*sim.Microsecond {
		t.Errorf("idle = %v", run.Get("idle"))
	}
	if got := run.Keys(); len(got) != 3 || got[2] != "idle" {
		t.Errorf("keys = %v", got)
	}
}

func TestBreakdownString(t *testing.T) {
	b := NewBreakdown()
	b.Add("south_mpi", 1500*sim.Nanosecond)
	if !strings.Contains(b.String(), "south_mpi") || !strings.Contains(b.String(), "1.5 us") {
		t.Errorf("String = %q", b.String())
	}
}

func TestMedian(t *testing.T) {
	cases := []struct {
		in   []sim.Time
		want sim.Time
	}{
		{nil, 0},
		{[]sim.Time{5}, 5},
		{[]sim.Time{3, 1, 2}, 2},
		{[]sim.Time{4, 1, 3, 2}, 2}, // (2+3)/2 truncated
	}
	for _, c := range cases {
		if got := Median(c.in); got != c.want {
			t.Errorf("Median(%v) = %v, want %v", c.in, got, c.want)
		}
	}
	// Input must not be reordered.
	in := []sim.Time{9, 1, 5}
	Median(in)
	if in[0] != 9 || in[1] != 1 || in[2] != 5 {
		t.Error("Median mutated its input")
	}
}
