package trace

import (
	"strings"
	"testing"

	"mv2sim/internal/sim"
)

func TestBreakdownAccumulates(t *testing.T) {
	b := NewBreakdown()
	b.Add("east_cuda", 5*sim.Microsecond)
	b.Add("east_mpi", 2*sim.Microsecond)
	b.Add("east_cuda", 3*sim.Microsecond)
	if got := b.Get("east_cuda"); got != 8*sim.Microsecond {
		t.Errorf("east_cuda = %v", got)
	}
	if got := b.Keys(); len(got) != 2 || got[0] != "east_cuda" || got[1] != "east_mpi" {
		t.Errorf("keys = %v", got)
	}
	if b.Total() != 10*sim.Microsecond {
		t.Errorf("total = %v", b.Total())
	}
}

func TestBreakdownTimed(t *testing.T) {
	e := sim.New()
	b := NewBreakdown()
	e.Spawn("p", func(p *sim.Proc) {
		b.Timed("work", e, func() { p.Sleep(7 * sim.Microsecond) })
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if b.Get("work") != 7*sim.Microsecond {
		t.Errorf("timed = %v", b.Get("work"))
	}
}

func TestBreakdownMergeAndSorted(t *testing.T) {
	a, b := NewBreakdown(), NewBreakdown()
	a.Add("x", 1)
	b.Add("x", 2)
	b.Add("y", 10)
	a.Merge(b)
	if a.Get("x") != 3 || a.Get("y") != 10 {
		t.Errorf("merge: x=%v y=%v", a.Get("x"), a.Get("y"))
	}
	s := a.Sorted()
	if s[0].Key != "y" || s[1].Key != "x" {
		t.Errorf("sorted = %v", s)
	}
}

func TestBreakdownString(t *testing.T) {
	b := NewBreakdown()
	b.Add("south_mpi", 1500*sim.Nanosecond)
	if !strings.Contains(b.String(), "south_mpi") || !strings.Contains(b.String(), "1.5 us") {
		t.Errorf("String = %q", b.String())
	}
}

func TestMedian(t *testing.T) {
	cases := []struct {
		in   []sim.Time
		want sim.Time
	}{
		{nil, 0},
		{[]sim.Time{5}, 5},
		{[]sim.Time{3, 1, 2}, 2},
		{[]sim.Time{4, 1, 3, 2}, 2}, // (2+3)/2 truncated
	}
	for _, c := range cases {
		if got := Median(c.in); got != c.want {
			t.Errorf("Median(%v) = %v, want %v", c.in, got, c.want)
		}
	}
	// Input must not be reordered.
	in := []sim.Time{9, 1, 5}
	Median(in)
	if in[0] != 9 || in[1] != 1 || in[2] != 5 {
		t.Error("Median mutated its input")
	}
}
