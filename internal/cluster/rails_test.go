package cluster

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"mv2sim/internal/datatype"
	"mv2sim/internal/mem"
	"mv2sim/internal/mpi"
)

// TestRailsTransferProperties drives randomized end-to-end transfers across
// message sizes, pipeline block sizes and rail counts 1-4 and checks the
// invariants the multi-rail pipeline must preserve:
//
//   - byte-exact delivery into the strided receive buffer;
//   - MPI non-overtaking: several messages on one (source, tag, comm)
//     triple match posted receives in send order, even when their chunks
//     stripe across rails and FINs overtake each other;
//   - every vbuf is back in its pool when the run ends (no leaked holds on
//     any rail).
func TestRailsTransferProperties(t *testing.T) {
	const nmsg = 3
	prop := func(rails, blockSize, sizeKB, elem int) bool {
		rows := max(1, sizeKB<<10/elem)
		pitch := 2 * elem
		size := rows * elem
		vec, err := datatype.Vector(rows, elem, pitch, datatype.Byte)
		if err != nil {
			t.Logf("vector(%d,%d,%d): %v", rows, elem, pitch, err)
			return false
		}
		vec.MustCommit()

		cl := New(Config{Rails: rails, MPI: mpi.Config{BlockSize: blockSize}})
		pattern := func(m, i int) byte { return byte(i*7 + m*31) }
		ok := true
		runErr := cl.Run(func(n *Node) {
			r := n.Rank
			var bufs [nmsg]mem.Ptr
			for m := 0; m < nmsg; m++ {
				bufs[m] = n.Ctx.MustMalloc(vec.Span(1))
				defer func(p mem.Ptr) {
					if err := n.Ctx.Free(p); err != nil {
						panic(err)
					}
				}(bufs[m])
			}
			if r.Rank() == 0 {
				for m := 0; m < nmsg; m++ {
					mem.Fill(bufs[m], vec.Span(1), func(i int) byte { return pattern(m, i) })
				}
				for m := 0; m < nmsg; m++ {
					r.Send(bufs[m], 1, vec, 1, 5)
				}
			} else {
				for m := 0; m < nmsg; m++ {
					r.Recv(bufs[m], 1, vec, 0, 5)
				}
				for m := 0; m < nmsg; m++ {
					for _, s := range vec.SegmentsOf(1) {
						b := bufs[m].Add(s.Off).Bytes(s.Len)
						for i := range b {
							if b[i] != pattern(m, s.Off+i) {
								t.Logf("rails=%d block=%d size=%d: msg %d corrupt at byte %d",
									rails, blockSize, size, m, s.Off+i)
								ok = false
								return
							}
						}
					}
				}
			}
		})
		if runErr != nil {
			t.Logf("rails=%d block=%d size=%d: %v", rails, blockSize, size, runErr)
			return false
		}
		if err := cl.CheckDeviceLeaks(); err != nil {
			t.Logf("rails=%d block=%d size=%d: %v", rails, blockSize, size, err)
			return false
		}
		for i, n := range cl.Nodes {
			if n.Pool.Free() != n.Pool.Count() || n.RecvPool.Free() != n.RecvPool.Count() {
				t.Logf("rails=%d block=%d size=%d: node %d vbufs leaked (tx %d/%d, rx %d/%d)",
					rails, blockSize, size, i,
					n.Pool.Free(), n.Pool.Count(), n.RecvPool.Free(), n.RecvPool.Count())
				return false
			}
		}
		return ok
	}

	cfg := &quick.Config{
		MaxCount: 10,
		Rand:     rand.New(rand.NewSource(20260806)),
		Values: func(args []reflect.Value, r *rand.Rand) {
			args[0] = reflect.ValueOf(1 + r.Intn(4))           // rails 1..4
			args[1] = reflect.ValueOf((4 + r.Intn(125)) << 10) // block size 4K..128K
			args[2] = reflect.ValueOf(1 + r.Intn(768))         // packed size 1K..768K
			args[3] = reflect.ValueOf(4 << r.Intn(7))          // element width 4..256
		},
	}
	if testing.Short() {
		cfg.MaxCount = 4
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}
