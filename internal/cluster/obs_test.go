package cluster

import (
	"strings"
	"testing"

	"mv2sim/internal/core"
	"mv2sim/internal/datatype"
	"mv2sim/internal/mem"
	"mv2sim/internal/obs"
)

// tracedVectorSend runs one two-rank non-contiguous device send large
// enough to engage the full five-stage rendezvous pipeline, with the given
// tracers attached, and returns the cluster.
func tracedVectorSend(t *testing.T, tracers ...obs.Tracer) *Cluster {
	t.Helper()
	cl := New(Config{Nodes: 2, GPUMemBytes: 8 << 20, Tracers: tracers})
	v, _ := datatype.Vector(16384, 16, 32, datatype.Byte)
	v.MustCommit()
	err := cl.Run(func(n *Node) {
		r := n.Rank
		buf := n.Ctx.MustMalloc(v.Span(1))
		defer func() {
			if err := n.Ctx.Free(buf); err != nil {
				t.Error(err)
			}
		}()
		if r.Rank() == 0 {
			mem.Fill(buf, v.Span(1), func(i int) byte { return byte(i) })
			r.Send(buf, 1, v, 1, 0)
		} else {
			r.Recv(buf, 1, v, 0, 0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

// TestTraceDeterminism pins the byte-for-byte reproducibility guarantee:
// two identical runs must serialize to identical Chrome JSON.
func TestTraceDeterminism(t *testing.T) {
	run := func() string {
		c := obs.NewChromeTracer()
		tracedVectorSend(t, c)
		return c.JSON()
	}
	a, b := run(), run()
	if a != b {
		t.Fatal("two identical runs produced different trace bytes")
	}
}

// TestTraceCoversAllLayers checks one traced run surfaces every
// instrumented layer: the five pipeline-stage tracks, both HCA link
// tracks, MPI rank tracks, and the vbuf pool occupancy counters.
func TestTraceCoversAllLayers(t *testing.T) {
	c := obs.NewChromeTracer()
	busy := obs.NewBusyTimeTracer()
	stats := obs.NewStatsTracer()
	cl := tracedVectorSend(t, c, busy, stats)
	if cl.Obs == nil {
		t.Fatal("cluster built no hub despite tracers")
	}

	tracks := map[string]bool{}
	for _, w := range c.Tracks() {
		tracks[w] = true
	}
	for _, want := range []string{
		"rank0.pack", "rank0.d2h", "rank0.rdma", "rank1.h2d", "rank1.unpack",
		"hca0.tx", "hca1.rx", "rank0.mpi", "rank1.mpi",
		"gpu0.d2hEngine", "gpu1.h2dEngine", "node0.txvbufs", "node1.rxvbufs",
	} {
		if !tracks[want] {
			t.Errorf("missing track %q (have %v)", want, c.Tracks())
		}
	}
	out := c.JSON()
	for _, want := range []string{"node0.txvbufs.free", "hca0.bytesTx", "hca1.bytesRx"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing counter %q in trace", want)
		}
	}

	// The pipeline keeps its resources genuinely busy.
	for _, where := range []string{"gpu0.d2hEngine", "hca0.tx", "rank0.d2h"} {
		if busy.Busy(where) <= 0 {
			t.Errorf("%s shows no busy time", where)
		}
	}
	from, to := busy.Window()
	if u := busy.Utilization("hca0.tx", from, to); u <= 0 || u > 1 {
		t.Errorf("hca0.tx utilization = %v", u)
	}

	// Stage tasks parent to the MPI request spans.
	for _, kind := range []string{obs.KindPack, obs.KindD2H, obs.KindRDMA, obs.KindH2D, obs.KindUnpack, obs.KindSendRndv, obs.KindRecv, obs.KindVbuf} {
		if stats.Count(kind) == 0 {
			t.Errorf("no %q tasks recorded", kind)
		}
	}
	// Stages that move whole chunks agree on the chunk count. (KindRDMA
	// is excluded: the ib layer reuses it for its per-link tasks.)
	if got, want := stats.Count(obs.KindPack), stats.Count(obs.KindD2H); got != want {
		t.Errorf("pack tasks = %d, d2h tasks = %d; want equal chunk counts", got, want)
	}
}

// TestPipelineTraceViaTracers checks the PipelineTrace adapter works when
// attached through Config.Tracers (not just Config.Core.Trace).
func TestPipelineTraceViaTracers(t *testing.T) {
	pt := &core.PipelineTrace{}
	tracedVectorSend(t, pt)
	if len(pt.Events) == 0 {
		t.Fatal("adapter recorded no stage events")
	}
	stages := map[string]bool{}
	for _, ev := range pt.Events {
		stages[ev.Stage] = true
	}
	for _, s := range []string{"pack", "d2h", "rdma", "h2d", "unpack"} {
		if !stages[s] {
			t.Errorf("missing stage %q", s)
		}
	}
}
