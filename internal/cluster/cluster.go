// Package cluster assembles the full simulated testbed of the paper: N
// nodes, each with a host CPU and memory, one Fermi-class GPU, and one QDR
// InfiniBand HCA, wired to an MPI world with the MV2-GPU-NC transport
// installed. It is the single entry point benchmarks, examples and tests
// use to get a ready-to-run system.
package cluster

import (
	"fmt"
	"os"

	"mv2sim/internal/core"
	"mv2sim/internal/cuda"
	"mv2sim/internal/gpu"
	"mv2sim/internal/hostmem"
	"mv2sim/internal/ib"
	"mv2sim/internal/mem"
	"mv2sim/internal/mpi"
	"mv2sim/internal/obs"
	"mv2sim/internal/sim"
)

// Config sizes the cluster. Zero fields take defaults chosen to match the
// paper's testbed shape at test-friendly memory sizes; experiments that
// need the full 3 GB Tesla C2050 device memory set GPUMemBytes explicitly.
type Config struct {
	// Nodes is the number of cluster nodes (one MPI rank, one GPU each).
	Nodes int
	// GPUMemBytes is each GPU's global memory. Default 64 MiB.
	GPUMemBytes int
	// HostHeapBytes is each node's host heap for application and library
	// allocations. Default 64 MiB.
	HostHeapBytes int
	// Engine selects the discrete-event scheduler: "serial" (default) for
	// the cooperative single-executor engine, "parallel" for the
	// worker-pool engine with byte-identical traces. Empty falls back to
	// the MV2SIM_ENGINE environment variable, then to serial — so one env
	// toggle runs the whole test suite under either engine.
	Engine string
	// Rails is the number of independently-serialized HCA rails per node
	// (MV2_NUM_RAILS): the fabric model and the MPI/transport layers are
	// configured together so rendezvous chunks stripe round-robin over R
	// full-bandwidth links. Default 1 (the paper's single-rail testbed).
	// Setting IBModel.Rails or MPI.Rails individually is rejected: the knob
	// must stay consistent across layers.
	Rails int
	// VbufCount is the number of registered staging chunks per node in
	// EACH of the two pools (one for the send side, one for the receive
	// side — separate pools make the pipeline deadlock-free even when
	// many large transfers cross in both directions, the same reason
	// MVAPICH2 partitions its vbuf credits). Default 64. Each chunk is
	// MPI.BlockSize bytes.
	VbufCount int
	// GPUModel overrides the GPU cost model (zero value = calibrated
	// defaults).
	GPUModel gpu.CostModel
	// IBModel overrides the fabric cost model.
	IBModel ib.Model
	// MPI carries the MPI-layer tunables (eager limit, block size, ...).
	MPI mpi.Config
	// Core carries the GPU-transport tunables.
	Core core.Config
	// NoGPU builds host-only nodes (no device, no transport); used to test
	// the plain MPI path in isolation.
	NoGPU bool
	// GPUDirect enables GPUDirect RDMA end to end: the fabric accepts
	// device-memory registration and the transport skips host staging.
	// Not available on the paper's 2011 testbed; see internal/core.
	GPUDirect bool
	// Tracers receive task records from every instrumented layer (CUDA
	// streams, IB links, vbuf pools, MPI protocol phases, pipeline stages).
	// Empty means tracing is off and the hot paths take their
	// zero-allocation fast path. Core.Trace, when set, is appended
	// automatically so the two options compose.
	Tracers []obs.Tracer
	// TraceEngine additionally records every simulation process's lifetime
	// and counts fired events via an obs.EngineTracer hook. Verbose; only
	// meaningful when Tracers is non-empty.
	TraceEngine bool
}

func (c Config) withDefaults() Config {
	if c.Nodes == 0 {
		c.Nodes = 2
	}
	if c.GPUMemBytes == 0 {
		c.GPUMemBytes = 64 << 20
	}
	if c.HostHeapBytes == 0 {
		c.HostHeapBytes = 64 << 20
	}
	if c.VbufCount == 0 {
		c.VbufCount = 64
	}
	if c.Rails == 0 {
		c.Rails = mpi.DefaultRails
	}
	if c.Rails < 1 {
		panic(fmt.Sprintf("cluster: Rails must be >= 1, got %d", c.Rails))
	}
	if (c.IBModel.Rails != 0 && c.IBModel.Rails != c.Rails) ||
		(c.MPI.Rails != 0 && c.MPI.Rails != c.Rails) {
		panic("cluster: set Config.Rails, not IBModel.Rails/MPI.Rails")
	}
	c.IBModel.Rails = c.Rails
	c.MPI.Rails = c.Rails
	return c
}

// Node is one assembled cluster node.
type Node struct {
	Rank *mpi.Rank
	Dev  *gpu.Device
	Ctx  *cuda.Ctx
	// Pool is the send-side staging pool; RecvPool the receive side.
	Pool     *hostmem.Pool
	RecvPool *hostmem.Pool
}

// Cluster is the assembled testbed.
type Cluster struct {
	Engine    sim.Engine
	Fabric    *ib.Fabric
	World     *mpi.World
	Transport *core.Transport
	Nodes     []*Node
	// Obs is the tracing hub all layers publish to; nil when Config.Tracers
	// is empty (and Core.Trace unset), i.e. when tracing is off.
	Obs *obs.Hub
}

// New builds a cluster per cfg.
func New(cfg Config) *Cluster {
	cfg = cfg.withDefaults()
	name := cfg.Engine
	if name == "" {
		name = os.Getenv("MV2SIM_ENGINE")
	}
	e, err := sim.NewByName(name)
	if err != nil {
		panic("cluster: " + err.Error())
	}
	if cfg.GPUDirect {
		cfg.IBModel.AllowDeviceRegistration = true
		cfg.Core.GPUDirect = true
	}
	fabric := ib.NewFabric(e, cfg.IBModel)
	world := mpi.NewWorld(e, cfg.MPI)
	cl := &Cluster{Engine: e, Fabric: fabric, World: world}

	tracers := append([]obs.Tracer(nil), cfg.Tracers...)
	if cfg.Core.Trace != nil {
		tracers = append(tracers, cfg.Core.Trace)
	}
	if len(tracers) > 0 {
		cl.Obs = obs.NewHub(e, tracers...)
		fabric.SetHub(cl.Obs)
		world.SetHub(cl.Obs)
		if cfg.TraceEngine {
			e.SetHook(obs.NewEngineTracer(cl.Obs))
		}
	}

	if !cfg.NoGPU {
		cl.Transport = core.New(cfg.Core)
		cl.Transport.SetHub(cl.Obs)
		world.SetGPUTransport(cl.Transport)
	}

	blockSize := world.Config().BlockSize
	for i := 0; i < cfg.Nodes; i++ {
		hca := fabric.NewHCA(i)
		heap := mem.NewHostSpace(fmt.Sprintf("node%d.heap", i), cfg.HostHeapBytes)
		rank := world.AddRank(hca, heap)
		node := &Node{Rank: rank}
		if !cfg.NoGPU {
			node.Dev = gpu.New(e, i, gpu.Config{MemBytes: cfg.GPUMemBytes, Model: cfg.GPUModel})
			node.Ctx = cuda.NewCtx(e, node.Dev)
			pinned := mem.NewHostSpace(fmt.Sprintf("node%d.pinned", i), 2*cfg.VbufCount*blockSize)
			node.Pool = hostmem.NewPool(e, fmt.Sprintf("node%d.txvbufs", i), hca, pinned.Base(), blockSize, cfg.VbufCount)
			node.RecvPool = hostmem.NewPool(e, fmt.Sprintf("node%d.rxvbufs", i), hca,
				pinned.Base().Add(cfg.VbufCount*blockSize), blockSize, cfg.VbufCount)
			if cl.Obs != nil {
				node.Dev.SetHub(cl.Obs)
				node.Ctx.SetHub(cl.Obs)
				node.Pool.SetHub(cl.Obs)
				node.RecvPool.SetHub(cl.Obs)
			}
			cl.Transport.Attach(rank, node.Ctx, node.Pool, node.RecvPool)
		}
		cl.Nodes = append(cl.Nodes, node)
	}
	return cl
}

// Run launches fn on every rank and executes the simulation to completion.
// When the simulation finishes, the engine is shut down: daemon processes
// (CUDA stream workers, service loops) are terminated so a discarded
// cluster's gigabytes of simulated memory become collectable. The cluster's
// state (memories, statistics) remains readable, but no further simulation
// can run on it.
func (cl *Cluster) Run(fn func(n *Node)) error {
	byRank := map[*mpi.Rank]*Node{}
	for _, n := range cl.Nodes {
		byRank[n.Rank] = n
	}
	cl.World.Launch(func(r *mpi.Rank) { fn(byRank[r]) })
	err := cl.Engine.Run()
	cl.Engine.Shutdown()
	return err
}

// CheckDeviceLeaks is the end-of-run leak gate: it validates every device
// allocator's invariants and reports any allocation still live. Benchmarks
// call it after Run, once all device buffers have been freed — Free is pure
// allocator bookkeeping, so it works after engine shutdown and costs no
// virtual time.
func (cl *Cluster) CheckDeviceLeaks() error {
	for i, n := range cl.Nodes {
		if n.Dev == nil {
			continue
		}
		if err := n.Dev.CheckAllocator(); err != nil {
			return fmt.Errorf("cluster: node %d allocator corrupt: %w", i, err)
		}
		if live := n.Dev.LiveAllocs(); live != 0 {
			return fmt.Errorf("cluster: node %d leaks %d device allocations (%d bytes in use)",
				i, live, n.Dev.MemInUse())
		}
	}
	return nil
}
