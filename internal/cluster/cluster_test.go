package cluster

import (
	"testing"

	"mv2sim/internal/datatype"
	"mv2sim/internal/mem"
)

func TestDefaultsApplied(t *testing.T) {
	cl := New(Config{})
	if len(cl.Nodes) != 2 {
		t.Fatalf("nodes = %d, want default 2", len(cl.Nodes))
	}
	if cl.World.Size() != 2 || cl.Transport == nil {
		t.Error("world/transport not wired")
	}
	for i, n := range cl.Nodes {
		if n.Dev == nil || n.Ctx == nil || n.Pool == nil || n.Rank == nil {
			t.Fatalf("node %d incomplete", i)
		}
		if n.Rank.Rank() != i || n.Dev.ID() != i {
			t.Errorf("node %d identity mismatch", i)
		}
		if n.Pool.ChunkSize() != cl.World.Config().BlockSize {
			t.Errorf("vbuf size %d != block size %d", n.Pool.ChunkSize(), cl.World.Config().BlockSize)
		}
	}
}

func TestNoGPUCluster(t *testing.T) {
	cl := New(Config{Nodes: 3, NoGPU: true})
	if cl.Transport != nil {
		t.Error("NoGPU cluster has a transport")
	}
	for _, n := range cl.Nodes {
		if n.Dev != nil || n.Pool != nil {
			t.Error("NoGPU node has GPU resources")
		}
	}
	// Host-only MPI still works end to end.
	err := cl.Run(func(n *Node) {
		r := n.Rank
		buf := r.AllocHost(128)
		next, prev := (r.Rank()+1)%3, (r.Rank()+2)%3
		mem.Fill(buf, 128, func(i int) byte { return byte(r.Rank()) })
		r.Sendrecv(buf, 128, datatype.Byte, next, 0, buf, 128, datatype.Byte, prev, 0)
		if buf.Bytes(1)[0] != byte(prev) {
			t.Errorf("rank %d ring exchange wrong", r.Rank())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunDeliversMatchingNode(t *testing.T) {
	cl := New(Config{Nodes: 4})
	seen := map[int]bool{}
	err := cl.Run(func(n *Node) {
		if n.Rank == nil || n.Dev.ID() != n.Rank.Rank() {
			t.Error("node/rank mismatch inside Run")
		}
		seen[n.Rank.Rank()] = true
		n.Rank.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 4 {
		t.Errorf("ranks run = %d", len(seen))
	}
}

func TestEndToEndDeviceMessage(t *testing.T) {
	cl := New(Config{Nodes: 2, GPUMemBytes: 8 << 20})
	v, _ := datatype.Vector(512, 4, 8, datatype.Byte)
	v.MustCommit()
	err := cl.Run(func(n *Node) {
		r := n.Rank
		buf := n.Ctx.MustMalloc(v.Span(1))
		if r.Rank() == 0 {
			mem.Fill(buf, v.Span(1), func(i int) byte { return byte(i * 3) })
			r.Send(buf, 1, v, 1, 0)
		} else {
			r.Recv(buf, 1, v, 0, 0)
			for _, s := range v.SegmentsOf(1) {
				if !mem.Equal(buf.Add(s.Off), buf.Add(s.Off), s.Len) {
					t.Error("unreachable") // placeholder comparison below
				}
				b := buf.Add(s.Off).Bytes(s.Len)
				for i := range b {
					if b[i] != byte((s.Off+i)*3) {
						t.Fatalf("corrupt byte at %d", s.Off+i)
					}
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
