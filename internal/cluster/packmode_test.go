package cluster

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"mv2sim/internal/core"
	"mv2sim/internal/datatype"
	"mv2sim/internal/mem"
	"mv2sim/internal/mpi"
)

// TestPackModeTransferProperties drives randomized end-to-end vector
// transfers across all four PackModes on each side independently — every
// sender/receiver engine mix, including mixes where one side gathers on
// the NIC's SGE unit and the other unpacks with the copy engine — over
// random shapes, counts, rail counts and chunk boundaries, and checks:
//
//   - byte-exact delivery into the strided receive buffer under every mix;
//   - every vbuf returned to its pool at the end of the run;
//   - no leaked device allocations (tbufs freed on all paths).
func TestPackModeTransferProperties(t *testing.T) {
	modes := []core.PackMode{core.PackModeAuto, core.PackModeMemcpy2D, core.PackModeKernel, core.PackModeNic}
	prop := func(packMode, unpackMode core.PackMode, blockSize, sizeKB, elem, count, rails int) bool {
		rows := max(1, sizeKB<<10/elem/count)
		pitch := 2 * elem
		size := rows * elem * count
		vec, err := datatype.Vector(rows, elem, pitch, datatype.Byte)
		if err != nil {
			t.Logf("vector(%d,%d,%d): %v", rows, elem, pitch, err)
			return false
		}
		vec.MustCommit()

		cfg := Config{MPI: mpi.Config{BlockSize: blockSize}, Rails: rails}
		cfg.Core.PackMode = packMode
		cfg.Core.UnpackMode = unpackMode
		cl := New(cfg)
		pattern := func(i int) byte { return byte(i*13 + 5) }
		ok := true
		runErr := cl.Run(func(n *Node) {
			r := n.Rank
			buf := n.Ctx.MustMalloc(vec.Span(count))
			defer func() {
				if err := n.Ctx.Free(buf); err != nil {
					panic(err)
				}
			}()
			if r.Rank() == 0 {
				mem.Fill(buf, vec.Span(count), func(i int) byte { return pattern(i) })
				r.Send(buf, count, vec, 1, 9)
			} else {
				r.Recv(buf, count, vec, 0, 9)
				for _, s := range vec.SegmentsOf(count) {
					b := buf.Add(s.Off).Bytes(s.Len)
					for i := range b {
						if b[i] != pattern(s.Off+i) {
							t.Logf("pack=%v unpack=%v block=%d size=%d count=%d: corrupt at byte %d",
								packMode, unpackMode, blockSize, size, count, s.Off+i)
							ok = false
							return
						}
					}
				}
			}
		})
		if runErr != nil {
			t.Logf("pack=%v unpack=%v block=%d size=%d: %v", packMode, unpackMode, blockSize, size, runErr)
			return false
		}
		if err := cl.CheckDeviceLeaks(); err != nil {
			t.Logf("pack=%v unpack=%v block=%d size=%d: %v", packMode, unpackMode, blockSize, size, err)
			return false
		}
		for i, n := range cl.Nodes {
			if n.Pool.Free() != n.Pool.Count() || n.RecvPool.Free() != n.RecvPool.Count() {
				t.Logf("pack=%v unpack=%v block=%d size=%d: node %d vbufs leaked (tx %d/%d, rx %d/%d)",
					packMode, unpackMode, blockSize, size, i,
					n.Pool.Free(), n.Pool.Count(), n.RecvPool.Free(), n.RecvPool.Count())
				return false
			}
		}
		return ok
	}

	cfg := &quick.Config{
		MaxCount: 12,
		Rand:     rand.New(rand.NewSource(20260807)),
		Values: func(args []reflect.Value, r *rand.Rand) {
			args[0] = reflect.ValueOf(modes[r.Intn(len(modes))])
			args[1] = reflect.ValueOf(modes[r.Intn(len(modes))])
			args[2] = reflect.ValueOf((4 + r.Intn(125)) << 10) // block size 4K..128K
			args[3] = reflect.ValueOf(1 + r.Intn(512))         // packed size 1K..512K
			args[4] = reflect.ValueOf(4 << r.Intn(7))          // element width 4..256
			args[5] = reflect.ValueOf(1 + r.Intn(3))           // datatype count 1..3
			args[6] = reflect.ValueOf(1 + r.Intn(2))           // rails 1..2
		},
	}
	if testing.Short() {
		cfg.MaxCount = 5
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}

	// The sixteen mode pairs are also covered deterministically at one
	// fixed geometry that exercises eager (small) and rendezvous (large)
	// sizes on both rail counts, so a regression in a rare pair cannot
	// hide behind the random draw.
	for _, pm := range modes {
		for _, um := range modes {
			for _, sizeKB := range []int{2, 192} {
				for rails := 1; rails <= 2; rails++ {
					if !prop(pm, um, 64<<10, sizeKB, 4, 1, rails) {
						t.Fatalf("pack=%v unpack=%v sizeKB=%d rails=%d failed", pm, um, sizeKB, rails)
					}
				}
			}
		}
	}
}
