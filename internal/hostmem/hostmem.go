// Package hostmem manages the pinned (registered) host staging memory
// MVAPICH2 uses for GPU communication: a pool of fixed-size "vbuf" chunks,
// pre-registered with the HCA so that RDMA operations can target them
// directly, handed out to in-flight pipeline stages and recycled on
// completion.
//
// The pool is a hard resource: when every vbuf is in flight, requesters
// block until one is returned. That back-pressure bounds pipeline depth,
// which is exactly the behaviour the vbuf-pool ablation benchmark
// measures.
package hostmem

import (
	"fmt"

	"mv2sim/internal/ib"
	"mv2sim/internal/mem"
	"mv2sim/internal/obs"
	"mv2sim/internal/sim"
)

// Vbuf is one registered staging chunk.
type Vbuf struct {
	// Ptr addresses the chunk's bytes in host memory.
	Ptr mem.Ptr
	// Region is the chunk's RDMA registration with the owning node's HCA.
	Region ib.Region
	// Index is the chunk's position in the pool, for diagnostics.
	Index int

	pool *Pool
	free bool
	span obs.Span // open while the vbuf is held
}

// Pool is a fixed set of vbufs carved from one pinned host allocation.
type Pool struct {
	e         *sim.Engine
	name      string
	chunkSize int
	bufs      []*Vbuf
	freeList  []*Vbuf
	waiters   []*sim.Event

	gets, puts uint64
	minFree    int

	hub     *obs.Hub
	freeCtr string // occupancy gauge name
}

// NewPool carves count chunks of chunkSize bytes out of host space at base
// and registers each with hca. The range base..base+count*chunkSize must
// be valid host memory.
func NewPool(e *sim.Engine, name string, hca *ib.HCA, base mem.Ptr, chunkSize, count int) *Pool {
	if chunkSize <= 0 || count <= 0 {
		panic("hostmem: pool dimensions must be positive")
	}
	if base.IsDevice() {
		panic("hostmem: vbuf pool must live in host memory")
	}
	p := &Pool{e: e, name: name, chunkSize: chunkSize, minFree: count, freeCtr: name + ".free"}
	for i := 0; i < count; i++ {
		ptr := base.Add(i * chunkSize)
		v := &Vbuf{Ptr: ptr, Region: hca.Register(ptr, chunkSize), Index: i, pool: p, free: true}
		p.bufs = append(p.bufs, v)
		p.freeList = append(p.freeList, v)
	}
	return p
}

// SetHub attaches an observability hub: each vbuf hold (Get→Put) becomes
// a task on the pool's track, and the free count is sampled as a gauge
// ("<pool>.free") on every state change — the pool-occupancy view of how
// deep the pipeline runs.
func (p *Pool) SetHub(h *obs.Hub) { p.hub = h }

// ChunkSize returns the size of each vbuf in bytes.
func (p *Pool) ChunkSize() int { return p.chunkSize }

// Count returns the total number of vbufs.
func (p *Pool) Count() int { return len(p.bufs) }

// Free returns the number of currently available vbufs.
func (p *Pool) Free() int { return len(p.freeList) }

// MinFree returns the low-water mark of available vbufs over the run,
// i.e. how deep the pipeline actually dug into the pool.
func (p *Pool) MinFree() int { return p.minFree }

// Get blocks until a vbuf is available and returns it.
func (p *Pool) Get(proc *sim.Proc) *Vbuf {
	for len(p.freeList) == 0 {
		ev := p.e.NewEvent(p.name + ".vbuf")
		p.waiters = append(p.waiters, ev)
		proc.Wait(ev)
	}
	return p.take()
}

// TryGet returns a vbuf if one is immediately available.
func (p *Pool) TryGet() (*Vbuf, bool) {
	if len(p.freeList) == 0 {
		return nil, false
	}
	return p.take(), true
}

func (p *Pool) take() *Vbuf {
	v := p.freeList[len(p.freeList)-1]
	p.freeList = p.freeList[:len(p.freeList)-1]
	v.free = false
	p.gets++
	if len(p.freeList) < p.minFree {
		p.minFree = len(p.freeList)
	}
	v.span = p.hub.Start(obs.KindVbuf, p.name, v.Index, p.chunkSize)
	p.hub.Counter(p.freeCtr, float64(len(p.freeList)))
	return v
}

// Put returns a vbuf to the pool, waking one blocked Get if any. Returning
// a vbuf twice or returning a foreign vbuf panics: both are protocol bugs
// in the pipeline.
func (p *Pool) Put(v *Vbuf) {
	if v.pool != p {
		panic(fmt.Sprintf("hostmem: vbuf %d returned to wrong pool %s", v.Index, p.name))
	}
	if v.free {
		panic(fmt.Sprintf("hostmem: double return of vbuf %d to %s", v.Index, p.name))
	}
	v.free = true
	v.span.End()
	v.span = obs.Span{}
	p.freeList = append(p.freeList, v)
	p.puts++
	p.hub.Counter(p.freeCtr, float64(len(p.freeList)))
	if len(p.waiters) > 0 {
		head := p.waiters[0]
		p.waiters = p.waiters[1:]
		head.Trigger()
	}
}

// Stats returns a one-line summary.
func (p *Pool) Stats() string {
	return fmt.Sprintf("%s: %d x %dB, gets=%d puts=%d minFree=%d",
		p.name, len(p.bufs), p.chunkSize, p.gets, p.puts, p.minFree)
}
