// Package hostmem manages the pinned (registered) host staging memory
// MVAPICH2 uses for GPU communication: a pool of fixed-size "vbuf" chunks,
// pre-registered with the HCA so that RDMA operations can target them
// directly, handed out to in-flight pipeline stages and recycled on
// completion.
//
// The pool is a hard resource: when every vbuf is in flight, requesters
// block until one is returned. That back-pressure bounds pipeline depth,
// which is exactly the behaviour the vbuf-pool ablation benchmark
// measures.
package hostmem

import (
	"fmt"

	"mv2sim/internal/ib"
	"mv2sim/internal/mem"
	"mv2sim/internal/obs"
	"mv2sim/internal/sim"
)

// Vbuf is one registered staging chunk.
type Vbuf struct {
	// Ptr addresses the chunk's bytes in host memory.
	Ptr mem.Ptr
	// Region is the chunk's RDMA registration with the owning node's HCA.
	Region ib.Region
	// Index is the chunk's position in the pool, for diagnostics.
	Index int

	pool *Pool
	free bool
	rail int      // rail the current hold is accounted to
	span obs.Span // open while the vbuf is held
}

// Pool is a fixed set of vbufs carved from one pinned host allocation.
type Pool struct {
	e         sim.Engine
	name      string
	chunkSize int
	bufs      []*Vbuf
	freeList  []*Vbuf
	waiters   []*sim.Event

	gets, puts uint64
	minFree    int

	// held counts vbufs currently out of the pool; maxHeld is its
	// high-water mark over the run — how deep the pipeline dug into the
	// pool at its most concurrent. waits counts exhaustion events: Get
	// calls that found the pool empty and had to block.
	held, maxHeld int
	waits         uint64

	// Per-rail accounting for multi-rail pipelines: railGets[r] counts
	// vbufs handed out to rail r's chunk stream, railHeld[r] how many it
	// holds right now, railMaxHeld[r] its high-water mark. Slices grow
	// lazily with the highest rail index seen, so single-rail runs pay
	// one entry.
	railGets    []uint64
	railHeld    []int
	railMaxHeld []int

	hub       *obs.Hub
	freeCtr   string // occupancy gauge name
	waitsCtr  string // cumulative exhaustion-wait gauge name
	waitTrack string // track for pool-exhaustion wait tasks
}

// NewPool carves count chunks of chunkSize bytes out of host space at base
// and registers each with hca. The range base..base+count*chunkSize must
// be valid host memory.
func NewPool(e sim.Engine, name string, hca *ib.HCA, base mem.Ptr, chunkSize, count int) *Pool {
	if chunkSize <= 0 || count <= 0 {
		panic("hostmem: pool dimensions must be positive")
	}
	if base.IsDevice() {
		panic("hostmem: vbuf pool must live in host memory")
	}
	p := &Pool{e: e, name: name, chunkSize: chunkSize, minFree: count,
		freeCtr: name + ".free", waitsCtr: name + ".waits", waitTrack: name + ".wait"}
	for i := 0; i < count; i++ {
		ptr := base.Add(i * chunkSize)
		v := &Vbuf{Ptr: ptr, Region: hca.Register(ptr, chunkSize), Index: i, pool: p, free: true}
		p.bufs = append(p.bufs, v)
		p.freeList = append(p.freeList, v)
	}
	return p
}

// SetHub attaches an observability hub: each vbuf hold (Get→Put) becomes
// a task on the pool's track, and the free count is sampled as a gauge
// ("<pool>.free") on every state change — the pool-occupancy view of how
// deep the pipeline runs.
func (p *Pool) SetHub(h *obs.Hub) { p.hub = h }

// ChunkSize returns the size of each vbuf in bytes.
func (p *Pool) ChunkSize() int { return p.chunkSize }

// Count returns the total number of vbufs.
func (p *Pool) Count() int { return len(p.bufs) }

// Free returns the number of currently available vbufs.
func (p *Pool) Free() int { return len(p.freeList) }

// MinFree returns the low-water mark of available vbufs over the run,
// i.e. how deep the pipeline actually dug into the pool.
func (p *Pool) MinFree() int { return p.minFree }

// Get blocks until a vbuf is available and returns it, accounted to
// rail 0.
func (p *Pool) Get(proc *sim.Proc) *Vbuf {
	return p.GetRail(proc, 0)
}

// GetRail is Get with the hold accounted to the given pipeline rail. When
// the pool is exhausted, the blocked interval is traced as a vbuf_wait
// task on "<pool>.wait", and the eventual hold records an explicit
// dependency edge on it — the signal the critical-path analyzer uses to
// attribute pipeline stall to pool back-pressure rather than handshaking.
func (p *Pool) GetRail(proc *sim.Proc, rail int) *Vbuf {
	var waitSp obs.Span
	blocked := false
	for len(p.freeList) == 0 {
		if !blocked {
			// One exhaustion event per blocked Get, however many times the
			// pool drains again before this requester wins a vbuf.
			blocked = true
			p.waits++
			p.hub.Counter(p.waitsCtr, float64(p.waits))
		}
		if !waitSp.Active() {
			waitSp = p.hub.Start(obs.KindVbufWait, p.waitTrack, -1, p.chunkSize)
		}
		ev := p.e.NewEvent(p.name + ".vbuf")
		p.waiters = append(p.waiters, ev)
		proc.Wait(ev)
	}
	v := p.take(rail)
	// End unconditionally: End on a never-started span is a no-op, and
	// this way the wait span closes on every path out of the loop.
	waitSp.End()
	if waitSp.Active() {
		v.span.DependsOn(waitSp, obs.DepVbufWait)
	}
	return v
}

// TryGet returns a vbuf if one is immediately available, accounted to
// rail 0.
func (p *Pool) TryGet() (*Vbuf, bool) {
	return p.TryGetRail(0)
}

// TryGetRail is TryGet with the hold accounted to the given rail.
func (p *Pool) TryGetRail(rail int) (*Vbuf, bool) {
	if len(p.freeList) == 0 {
		return nil, false
	}
	return p.take(rail), true
}

func (p *Pool) take(rail int) *Vbuf {
	if rail < 0 {
		panic(fmt.Sprintf("hostmem: negative rail %d on pool %s", rail, p.name))
	}
	v := p.freeList[len(p.freeList)-1]
	p.freeList = p.freeList[:len(p.freeList)-1]
	v.free = false
	v.rail = rail
	p.gets++
	p.held++
	if p.held > p.maxHeld {
		p.maxHeld = p.held
	}
	for len(p.railGets) <= rail {
		p.railGets = append(p.railGets, 0)
		p.railHeld = append(p.railHeld, 0)
		p.railMaxHeld = append(p.railMaxHeld, 0)
	}
	p.railGets[rail]++
	p.railHeld[rail]++
	if p.railHeld[rail] > p.railMaxHeld[rail] {
		p.railMaxHeld[rail] = p.railHeld[rail]
	}
	if len(p.freeList) < p.minFree {
		p.minFree = len(p.freeList)
	}
	v.span = p.hub.Start(obs.KindVbuf, p.name, v.Index, p.chunkSize)
	p.hub.Counter(p.freeCtr, float64(len(p.freeList)))
	return v
}

// Put returns a vbuf to the pool, waking one blocked Get if any. Returning
// a vbuf twice or returning a foreign vbuf panics: both are protocol bugs
// in the pipeline.
func (p *Pool) Put(v *Vbuf) {
	if v.pool != p {
		panic(fmt.Sprintf("hostmem: vbuf %d returned to wrong pool %s", v.Index, p.name))
	}
	if v.free {
		panic(fmt.Sprintf("hostmem: double return of vbuf %d to %s", v.Index, p.name))
	}
	v.free = true
	v.span.End()
	v.span = obs.Span{}
	p.held--
	p.railHeld[v.rail]--
	p.freeList = append(p.freeList, v)
	p.puts++
	p.hub.Counter(p.freeCtr, float64(len(p.freeList)))
	if len(p.waiters) > 0 {
		head := p.waiters[0]
		p.waiters = p.waiters[1:]
		head.Trigger()
	}
}

// MaxHeld returns the pool-wide concurrent-hold high-water mark: the most
// vbufs that were simultaneously out of the pool over the run.
func (p *Pool) MaxHeld() int { return p.maxHeld }

// Waits returns the number of exhaustion events: Get calls that found the
// pool empty and blocked until a vbuf came back. Each event is also
// sampled as the cumulative "<pool>.waits" gauge, so time-series tracers
// see when the pressure happened, not only how often.
func (p *Pool) Waits() uint64 { return p.waits }

// Rails returns the number of rails the pool has seen holds for (at
// least 1 once any vbuf was taken).
func (p *Pool) Rails() int { return len(p.railGets) }

// RailGets returns the number of vbufs handed out to the given rail.
func (p *Pool) RailGets(rail int) uint64 {
	if rail < 0 || rail >= len(p.railGets) {
		return 0
	}
	return p.railGets[rail]
}

// RailHeld returns how many vbufs the given rail holds right now.
func (p *Pool) RailHeld(rail int) int {
	if rail < 0 || rail >= len(p.railHeld) {
		return 0
	}
	return p.railHeld[rail]
}

// RailMaxHeld returns the given rail's concurrent-hold high-water mark —
// how many vbufs that rail's chunk stream had in flight at once.
func (p *Pool) RailMaxHeld(rail int) int {
	if rail < 0 || rail >= len(p.railMaxHeld) {
		return 0
	}
	return p.railMaxHeld[rail]
}

// Stats returns a one-line summary; multi-rail pools append the per-rail
// get counts.
func (p *Pool) Stats() string {
	s := fmt.Sprintf("%s: %d x %dB, gets=%d puts=%d minFree=%d",
		p.name, len(p.bufs), p.chunkSize, p.gets, p.puts, p.minFree)
	if len(p.railGets) > 1 {
		s += " railGets="
		for r, g := range p.railGets {
			if r > 0 {
				s += "/"
			}
			s += fmt.Sprintf("%d", g)
		}
	}
	return s
}
