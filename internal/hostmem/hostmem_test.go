package hostmem

import (
	"strings"
	"testing"
	"testing/quick"

	"mv2sim/internal/ib"
	"mv2sim/internal/mem"
	"mv2sim/internal/obs"
	"mv2sim/internal/sim"
)

type fixture struct {
	e    sim.Engine
	hca  *ib.HCA
	host *mem.Space
}

func newFixture() *fixture {
	e := sim.New()
	f := ib.NewFabric(e, ib.Model{})
	return &fixture{e: e, hca: f.NewHCA(0), host: mem.NewHostSpace("host", 1<<20)}
}

func TestPoolBasics(t *testing.T) {
	fx := newFixture()
	p := NewPool(fx.e, "pool", fx.hca, fx.host.Base(), 4096, 8)
	if p.Count() != 8 || p.Free() != 8 || p.ChunkSize() != 4096 {
		t.Fatalf("pool shape: count=%d free=%d chunk=%d", p.Count(), p.Free(), p.ChunkSize())
	}
	v, ok := p.TryGet()
	if !ok {
		t.Fatal("TryGet failed on fresh pool")
	}
	if p.Free() != 7 {
		t.Errorf("free = %d after get", p.Free())
	}
	// vbufs are distinct, aligned on chunk boundaries, registered.
	if v.Region.Len() != 4096 {
		t.Errorf("region len = %d", v.Region.Len())
	}
	p.Put(v)
	if p.Free() != 8 {
		t.Errorf("free = %d after put", p.Free())
	}
	if !strings.Contains(p.Stats(), "gets=1") {
		t.Errorf("stats = %q", p.Stats())
	}
}

func TestVbufsAreDisjoint(t *testing.T) {
	fx := newFixture()
	p := NewPool(fx.e, "pool", fx.hca, fx.host.Base(), 256, 16)
	seen := map[int]bool{}
	for {
		v, ok := p.TryGet()
		if !ok {
			break
		}
		off := v.Ptr.Offset()
		if off%256 != 0 || seen[off] {
			t.Fatalf("vbuf at offset %d overlaps or misaligned", off)
		}
		seen[off] = true
	}
	if len(seen) != 16 {
		t.Errorf("distinct vbufs = %d, want 16", len(seen))
	}
}

func TestGetBlocksUntilPut(t *testing.T) {
	fx := newFixture()
	p := NewPool(fx.e, "pool", fx.hca, fx.host.Base(), 64, 1)
	var acquiredAt sim.Time
	fx.e.Spawn("holder", func(proc *sim.Proc) {
		v := p.Get(proc)
		proc.Sleep(100)
		p.Put(v)
	})
	fx.e.Spawn("waiter", func(proc *sim.Proc) {
		v := p.Get(proc)
		acquiredAt = proc.Now()
		p.Put(v)
	})
	if err := fx.e.Run(); err != nil {
		t.Fatal(err)
	}
	if acquiredAt != 100 {
		t.Errorf("waiter acquired at %v, want 100", acquiredAt)
	}
	if p.MinFree() != 0 {
		t.Errorf("minFree = %d, want 0", p.MinFree())
	}
}

func TestWaitersServedFIFO(t *testing.T) {
	fx := newFixture()
	p := NewPool(fx.e, "pool", fx.hca, fx.host.Base(), 64, 1)
	var order []string
	fx.e.Spawn("holder", func(proc *sim.Proc) {
		v := p.Get(proc)
		proc.Sleep(10)
		p.Put(v)
	})
	for _, name := range []string{"w1", "w2", "w3"} {
		name := name
		fx.e.SpawnAt(1, name, func(proc *sim.Proc) {
			v := p.Get(proc)
			order = append(order, name)
			proc.Sleep(1)
			p.Put(v)
		})
	}
	if err := fx.e.Run(); err != nil {
		t.Fatal(err)
	}
	want := "w1,w2,w3"
	if got := strings.Join(order, ","); got != want {
		t.Errorf("service order %s, want %s", got, want)
	}
}

func TestDoublePutPanics(t *testing.T) {
	fx := newFixture()
	p := NewPool(fx.e, "pool", fx.hca, fx.host.Base(), 64, 2)
	v, _ := p.TryGet()
	p.Put(v)
	defer func() {
		if recover() == nil {
			t.Error("double put did not panic")
		}
	}()
	p.Put(v)
}

func TestForeignPutPanics(t *testing.T) {
	fx := newFixture()
	p1 := NewPool(fx.e, "p1", fx.hca, fx.host.Base(), 64, 2)
	p2 := NewPool(fx.e, "p2", fx.hca, fx.host.Base().Add(1024), 64, 2)
	v, _ := p1.TryGet()
	defer func() {
		if recover() == nil {
			t.Error("foreign put did not panic")
		}
	}()
	p2.Put(v)
}

func TestDevicePoolPanics(t *testing.T) {
	fx := newFixture()
	dev := mem.NewDeviceSpace("gpu", 0, 4096)
	defer func() {
		if recover() == nil {
			t.Error("device-memory pool did not panic")
		}
	}()
	NewPool(fx.e, "bad", fx.hca, dev.Base(), 64, 2)
}

func TestZeroDimensionsPanic(t *testing.T) {
	fx := newFixture()
	defer func() {
		if recover() == nil {
			t.Error("zero-count pool did not panic")
		}
	}()
	NewPool(fx.e, "bad", fx.hca, fx.host.Base(), 64, 0)
}

// Property: any interleaving of gets and puts conserves vbufs — after
// returning everything taken, the pool is full again and every index is
// present exactly once.
func TestPropPoolConservation(t *testing.T) {
	f := func(ops []bool) bool {
		fx := newFixture()
		p := NewPool(fx.e, "pool", fx.hca, fx.host.Base(), 64, 8)
		var held []*Vbuf
		for _, isGet := range ops {
			if isGet {
				if v, ok := p.TryGet(); ok {
					held = append(held, v)
				}
			} else if len(held) > 0 {
				p.Put(held[len(held)-1])
				held = held[:len(held)-1]
			}
			if p.Free()+len(held) != 8 {
				return false
			}
		}
		for _, v := range held {
			p.Put(v)
		}
		return p.Free() == 8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestHighWaterAndWaits pins the load-telemetry gauges: MaxHeld is the
// concurrent-hold high-water mark, and Waits counts Get calls that found
// the pool empty — each sampled onto the hub as "<pool>.waits".
func TestHighWaterAndWaits(t *testing.T) {
	fx := newFixture()
	p := NewPool(fx.e, "pool", fx.hca, fx.host.Base(), 64, 2)
	series := obs.NewSeriesTracer()
	p.SetHub(obs.NewHub(fx.e, series))

	// Drain the pool, then two more takers must block (two exhaustion
	// events) while high-water stays at the pool size.
	fx.e.Spawn("holder", func(proc *sim.Proc) {
		a, b := p.Get(proc), p.Get(proc)
		proc.Sleep(100)
		p.Put(a)
		proc.Sleep(100)
		p.Put(b)
	})
	for i := 0; i < 2; i++ {
		fx.e.SpawnAt(1, "blocked", func(proc *sim.Proc) {
			p.Put(p.GetRail(proc, 0))
		})
	}
	if err := fx.e.Run(); err != nil {
		t.Fatal(err)
	}
	if p.MaxHeld() != 2 {
		t.Errorf("MaxHeld = %d, want 2", p.MaxHeld())
	}
	if p.Waits() != 2 {
		t.Errorf("Waits = %d, want 2", p.Waits())
	}
	pts := series.Points("pool.waits")
	if len(pts) != 2 || pts[len(pts)-1].Value != 2 {
		t.Errorf("pool.waits samples = %+v, want cumulative count ending at 2", pts)
	}
}

// TestTryGetDoesNotCountAsWait pins that only blocking Gets are
// exhaustion events: a failed TryGet is back-pressure the caller handles
// itself (the eager path's double-buffer fallback), not a stall.
func TestTryGetDoesNotCountAsWait(t *testing.T) {
	fx := newFixture()
	p := NewPool(fx.e, "pool", fx.hca, fx.host.Base(), 64, 1)
	v, _ := p.TryGet()
	if _, ok := p.TryGet(); ok {
		t.Fatal("TryGet succeeded on an empty pool")
	}
	p.Put(v)
	if p.Waits() != 0 {
		t.Errorf("Waits = %d after failed TryGet, want 0", p.Waits())
	}
	if p.MaxHeld() != 1 {
		t.Errorf("MaxHeld = %d, want 1", p.MaxHeld())
	}
}
