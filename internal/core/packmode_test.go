package core_test

import (
	"testing"

	"mv2sim/internal/cluster"
	"mv2sim/internal/core"
	"mv2sim/internal/datatype"
	"mv2sim/internal/mem"
	"mv2sim/internal/sim"
)

func TestPackModeStringParseRoundTrip(t *testing.T) {
	for _, m := range []core.PackMode{core.PackModeAuto, core.PackModeMemcpy2D, core.PackModeKernel} {
		got, err := core.ParsePackMode(m.String())
		if err != nil || got != m {
			t.Errorf("ParsePackMode(%q) = %v, %v; want %v", m.String(), got, err, m)
		}
	}
	if _, err := core.ParsePackMode("dma"); err == nil {
		t.Error("ParsePackMode must reject unknown modes")
	}
	if s := core.PackMode(9).String(); s != "packmode(9)" {
		t.Errorf("out-of-range String() = %q", s)
	}
}

// shortRowLatency runs one 1 MB transfer of 4-byte rows — deep inside the
// kernel-wins regime — under the given sender pack mode (unpack pinned to
// memcpy2D so only the pack side varies) and returns the sender's
// measured latency plus the sender device's kernel count. busyFor > 0
// occupies the sender's compute engine with an application kernel of that
// duration before the send is posted.
func shortRowLatency(t *testing.T, mode core.PackMode, busyFor sim.Time) (sim.Time, int) {
	t.Helper()
	v, _ := datatype.Vector(1<<18, 4, 16, datatype.Byte) // 1 MB packed
	v.MustCommit()
	var elapsed sim.Time
	cfg := cluster.Config{GPUMemBytes: 64 << 20}
	cfg.Core.PackMode = mode
	cfg.Core.UnpackMode = core.PackModeMemcpy2D
	cl := runPair(t, cfg, func(n *cluster.Node) {
		r := n.Rank
		buf := n.Ctx.MustMalloc(v.Span(1))
		switch r.Rank() {
		case 0:
			if busyFor > 0 {
				nsPerCell := float64(busyFor / sim.Nanosecond)
				n.Ctx.LaunchKernel(r.Proc(), n.Ctx.NewStream(), 1, nsPerCell, nil)
			}
			t0 := r.Now()
			r.Send(buf, 1, v, 1, 0)
			r.Recv(buf, 0, datatype.Byte, 1, 1) // ack
			elapsed = r.Now() - t0
		case 1:
			r.Recv(buf, 1, v, 0, 0)
			r.Send(buf, 0, datatype.Byte, 0, 1)
		}
	})
	return elapsed, cl.Nodes[0].Dev.Stats().Kernels
}

// TestAutoPicksKernelForShortRows: for a shape past the modeled
// crossover, PackModeAuto must run pack kernels and beat the pinned
// copy-engine pipeline end to end.
func TestAutoPicksKernelForShortRows(t *testing.T) {
	auto, autoKernels := shortRowLatency(t, core.PackModeAuto, 0)
	copyT, copyKernels := shortRowLatency(t, core.PackModeMemcpy2D, 0)
	if autoKernels == 0 {
		t.Error("auto mode launched no pack kernels for 4-byte rows")
	}
	if copyKernels != 0 {
		t.Errorf("pinned memcpy2d mode launched %d kernels", copyKernels)
	}
	if auto >= copyT {
		t.Errorf("auto latency %v not below memcpy2d latency %v for short rows", auto, copyT)
	}
	kern, _ := shortRowLatency(t, core.PackModeKernel, 0)
	if auto != kern {
		t.Errorf("auto latency %v differs from pinned kernel latency %v on an idle engine", auto, kern)
	}
}

// TestAutoFallsBackUnderApplicationKernel: with an application kernel
// holding the compute engine for longer than the whole transfer, auto
// must route the pack to the idle copy engine — same schedule as pinned
// memcpy2D — instead of serializing behind compute.
func TestAutoFallsBackUnderApplicationKernel(t *testing.T) {
	const busy = 100 * sim.Millisecond
	busyAuto, busyKernels := shortRowLatency(t, core.PackModeAuto, busy)
	copyT, _ := shortRowLatency(t, core.PackModeMemcpy2D, 0)
	if busyKernels != 1 { // the application kernel only
		t.Errorf("busy-engine auto launched %d kernels, want only the application's 1", busyKernels)
	}
	if busyAuto != copyT {
		t.Errorf("busy-engine auto latency %v, want the copy-engine schedule %v", busyAuto, copyT)
	}
	// Pinning the kernel mode under the same load serializes behind the
	// application kernel — the cost auto just avoided.
	busyKern, _ := shortRowLatency(t, core.PackModeKernel, busy)
	if busyKern <= busy {
		t.Errorf("pinned kernel mode under load finished in %v, expected to serialize past %v", busyKern, busy)
	}
}

// tailTransfer runs a kernel-pinned rendezvous transfer of `rows` 4-byte
// rows (pitch 16) and returns each side's device kernel count, verifying
// the receiver's typed segments against the sender's fill on the way.
func tailTransfer(t *testing.T, rows int) (packKernels, unpackKernels int) {
	t.Helper()
	v, err := datatype.Vector(rows, 4, 16, datatype.Byte)
	if err != nil {
		t.Fatal(err)
	}
	v.MustCommit()
	cfg := cluster.Config{GPUMemBytes: 64 << 20}
	cfg.Core.PackMode = core.PackModeKernel
	cfg.Core.UnpackMode = core.PackModeKernel
	var rbuf mem.Ptr
	cl := runPair(t, cfg, func(n *cluster.Node) {
		r := n.Rank
		buf := n.Ctx.MustMalloc(v.Span(1))
		if r.Rank() == 0 {
			fillDev(buf, v.Span(1), 3)
			r.Send(buf, 1, v, 1, 0)
		} else {
			rbuf = buf
			r.Recv(buf, 1, v, 0, 0)
		}
	})
	checkTyped(t, v, 1, rbuf, 3, "tail transfer")
	return cl.Nodes[0].Dev.Stats().Kernels, cl.Nodes[1].Dev.Stats().Kernels
}

// TestKernelModeTailFallsBackToCopyEngine: a pinned-kernel transfer of
// 2 full 64 KiB chunks plus a 100-row tail — one row below the measured
// 101-row crossover — must pack/unpack the two full chunks by kernel and
// the tail by memcpy2D: 2 kernels per side, not 3. One more row of tail
// crosses the break-even and the tail stays on the kernel.
func TestKernelModeTailFallsBackToCopyEngine(t *testing.T) {
	const chunkRows = (64 << 10) / 4
	shortK, shortU := tailTransfer(t, 2*chunkRows+100)
	if shortK != 2 || shortU != 2 {
		t.Errorf("100-row tail: %d pack / %d unpack kernels, want 2/2 (tail on the copy engine)", shortK, shortU)
	}
	deepK, deepU := tailTransfer(t, 2*chunkRows+101)
	if deepK != 3 || deepU != 3 {
		t.Errorf("101-row tail: %d pack / %d unpack kernels, want 3/3 (tail past break-even stays on the kernel)", deepK, deepU)
	}
}
