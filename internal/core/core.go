// Package core implements MV2-GPU-NC, the paper's contribution: transparent
// high-performance MPI communication of non-contiguous datatypes whose
// buffers live in GPU device memory.
//
// The design follows section IV of the paper:
//
//  1. Datatype processing is offloaded to the GPU. Non-contiguous data is
//     packed inside device memory into a contiguous temporary buffer
//     ("tbuf") using the device's copy engine — cudaMemcpy2DAsync for
//     vector-shaped types, a pack kernel for irregular ones — instead of
//     letting the host gather it row-by-row across PCIe.
//
//  2. The transfer is a five-stage pipeline chunked at a configurable
//     block size (64 KB optimal on the paper's cluster):
//     D2D nc2c pack → D2H stage into a registered host vbuf → RDMA write
//     into the receiver's vbuf → H2D stage into the receiver's tbuf →
//     D2D c2nc unpack into the user buffer. Chunks flow through all five
//     stages concurrently; the RTS is sent while packing is already in
//     progress, overlapping the rendezvous handshake with datatype
//     processing.
//
//  3. The programming model is unchanged: applications pass device
//     pointers and committed MPI datatypes straight to Send/Recv; the
//     library detects device memory (UVA classification on mem.Ptr) and
//     routes the transfer here.
//
// Fully contiguous device transfers skip the pack/unpack stages and
// pipeline directly between the user buffer and the staging vbufs — the
// behaviour of the earlier MVAPICH2-GPU design the paper extends.
package core

import (
	"fmt"

	"mv2sim/internal/cuda"
	"mv2sim/internal/datatype"
	"mv2sim/internal/gpu"
	"mv2sim/internal/hostmem"
	"mv2sim/internal/ib"
	"mv2sim/internal/mem"
	"mv2sim/internal/mpi"
	"mv2sim/internal/obs"
	"mv2sim/internal/sim"
)

// Config holds the transport tunables.
type Config struct {
	// PackMode selects the engine for the sender's stage-1 pack of
	// uniform 2D types; UnpackMode selects it for the receiver's stage-5
	// unpack. The two sides are independent — a transfer may pack with
	// the kernel and unpack with the copy engine. The zero value is
	// PackModeAuto; see packmode.go. The per-byte kernel rate lives in
	// gpu.CostModel.PackKernelNsPerByte.
	PackMode   PackMode
	UnpackMode PackMode

	// HostStagedPack disables the paper's GPU offload for rendezvous
	// transfers of uniform 2D types: data is gathered straight across
	// PCIe with strided D2H copies ("D2H nc2c", the scheme section IV-A
	// rejects) instead of being packed on the device first. An ablation
	// knob; see internal/core/ablation.go.
	HostStagedPack bool

	// Trace, when non-nil, records per-chunk stage completions of every
	// rendezvous transfer routed through this transport — the executable
	// Figure 3. Intended for single-transfer diagnostics.
	Trace *PipelineTrace

	// GPUDirect removes both host-staging stages: the HCA reads and
	// writes registered device memory directly (GPUDirect RDMA, which the
	// paper's 2011 testbed lacked). The fabric must allow device-memory
	// registration (cluster.Config.GPUDirect sets both).
	GPUDirect bool
}

// DefaultConfig returns the default transport configuration: automatic
// pack-engine selection, ablations off.
func DefaultConfig() Config {
	return Config{}
}

// NodeGPU bundles one rank's GPU-side resources: its CUDA context, its
// registered staging pools, and the four streams the pipeline stages run
// on. Send and receive sides stage through SEPARATE vbuf pools: a sender's
// vbufs recycle on local RDMA completion (no remote dependency), so
// senders always make progress and the receiver-holds/sender-needs
// circular wait that a shared pool allows under heavy bidirectional load
// cannot form.
type NodeGPU struct {
	Ctx      *cuda.Ctx
	Pool     *hostmem.Pool // send-side staging
	RecvPool *hostmem.Pool // receive-side landing slots

	// rails is the stripe width: rendezvous chunk c runs its D2H/H2D on
	// stream pair c%rails and its RDMA+FIN on HCA rail c%rails.
	rails        int
	packStream   *cuda.Stream
	d2hStreams   []*cuda.Stream // one per rail
	h2dStreams   []*cuda.Stream // one per rail
	unpackStream *cuda.Stream

	// kernOps counts this transport's pack/unpack kernels in flight on
	// the device (issued, not yet complete). The auto heuristic uses it to
	// tell its own kernel traffic apart from application compute when it
	// samples EngineKernel occupancy: only foreign work forces the
	// copy-engine fallback. Updated in simulation order, so no locking.
	kernOps int

	tracks stageTracks
}

// stageTracks holds the precomputed per-rank tracing track names — one per
// pipeline stage, and one per rail for the striped middle stages — so the
// traced hot path never formats strings.
type stageTracks struct {
	pack, unpack   string
	d2h, rdma, h2d []string // indexed by rail
}

// railTracks expands a stage's track name per rail. Single-rail keeps the
// historical bare name; multi-rail suffixes every rail (including rail 0)
// so traces never mix a bare track with rail-indexed siblings.
func railTracks(base string, rails int) []string {
	if rails == 1 {
		return []string{base}
	}
	out := make([]string, rails)
	for i := range out {
		out[i] = fmt.Sprintf("%s.r%d", base, i)
	}
	return out
}

// Transport implements mpi.GPUTransport.
type Transport struct {
	cfg   Config
	nodes map[*mpi.Rank]*NodeGPU
	hub   *obs.Hub
}

// SetHub attaches an observability hub: every pipeline stage of every
// chunk becomes a task on its rank's per-stage track ("rank0.pack",
// "rank0.d2h", ..., "rank1.unpack"), parented to the MPI request task.
// cluster.New wires this; direct Transport users without a hub still get
// Config.Trace served through a lazily created internal hub.
func (t *Transport) SetHub(h *obs.Hub) { t.hub = h }

// obsHub returns the tracing hub for transfers. When no cluster-level
// hub was installed but the legacy Config.Trace sink is set, a private
// hub wrapping it is created on first use so PipelineTrace keeps working
// for direct Transport users.
func (t *Transport) obsHub(e sim.Engine) *obs.Hub {
	if t.hub == nil && t.cfg.Trace != nil {
		t.hub = obs.NewHub(e, t.cfg.Trace)
	}
	return t.hub
}

// New creates an empty transport; attach per-rank GPU resources with
// Attach, then install it with World.SetGPUTransport.
func New(cfg Config) *Transport {
	return &Transport{cfg: cfg, nodes: map[*mpi.Rank]*NodeGPU{}}
}

// Attach binds a rank's CUDA context and staging pools to the transport.
// The rail count comes from the world's MPI config; streams are created in
// pack, d2h(s), h2d(s), unpack order so single-rail clusters get exactly
// the historical stream IDs.
func (t *Transport) Attach(r *mpi.Rank, ctx *cuda.Ctx, sendPool, recvPool *hostmem.Pool) *NodeGPU {
	rails := r.World().Config().Rails
	if rails < 1 {
		rails = 1
	}
	n := &NodeGPU{
		Ctx:        ctx,
		Pool:       sendPool,
		RecvPool:   recvPool,
		rails:      rails,
		packStream: ctx.NewStream(),
		tracks: stageTracks{
			pack:   fmt.Sprintf("rank%d.pack", r.Rank()),
			d2h:    railTracks(fmt.Sprintf("rank%d.d2h", r.Rank()), rails),
			rdma:   railTracks(fmt.Sprintf("rank%d.rdma", r.Rank()), rails),
			h2d:    railTracks(fmt.Sprintf("rank%d.h2d", r.Rank()), rails),
			unpack: fmt.Sprintf("rank%d.unpack", r.Rank()),
		},
	}
	for i := 0; i < rails; i++ {
		n.d2hStreams = append(n.d2hStreams, ctx.NewStream())
	}
	for i := 0; i < rails; i++ {
		n.h2dStreams = append(n.h2dStreams, ctx.NewStream())
	}
	n.unpackStream = ctx.NewStream()
	t.nodes[r] = n
	return n
}

// Node returns the GPU state for a rank.
func (t *Transport) Node(r *mpi.Rank) *NodeGPU {
	n := t.nodes[r]
	if n == nil {
		panic(fmt.Sprintf("core: rank %d has a device buffer but no attached GPU", r.Rank()))
	}
	return n
}

// planFor analyzes the request's datatype once: either a uniform 2D shape
// (answered analytically from the shape canonicalized at Commit) or the
// generic kernel path, which fetches the datatype's cached chunk-aligned
// plan so per-chunk packing re-derives nothing. For uniform shapes it also
// resolves each side's PackMode into a concrete engine choice — made once
// per transfer, before any stage is issued, so the whole pipeline sees one
// consistent decision.
type plan struct {
	size        int
	shape       datatype.Shape2D
	uniform     bool
	contig      bool       // single contiguous region: no pack/unpack stage at all
	packEng     packEngine // stage-1 pipeline engine (engineNic skips the stage)
	unpackEng   packEngine // stage-5 pipeline engine
	packDev     packEngine // device fallback where engineNic has no wire (eager, self-send)
	unpackDev   packEngine
	packTailCut int                 // packed offset where the pack side's tail falls back to memcpy2D (0: never)
	unpackTail  int                 // same for the unpack side
	cp          *datatype.ChunkPlan // set whenever either side leaves the copy engine
}

// packChunkEngine is the device engine packChunk actually runs: the
// pipeline engine, with engineNic resolved to its device fallback —
// packChunk only runs where there is no wire to offload to.
func (pl plan) packChunkEngine() packEngine {
	if pl.packEng == engineNic {
		return pl.packDev
	}
	return pl.packEng
}

func (pl plan) unpackChunkEngine() packEngine {
	if pl.unpackEng == engineNic {
		return pl.unpackDev
	}
	return pl.unpackEng
}

// sgRange lowers the packed byte range [off, off+n) of the request's
// buffer to the NIC gather/scatter descriptor covering it.
func (pl plan) sgRange(req *mpi.Request, off, n int) ib.SGDesc {
	if pl.contig {
		return ib.SGDesc{Buf: req.Buf().Add(pl.shape.Off + off), N: n}
	}
	return ib.SGDesc{Plan: pl.cp, Buf: req.Buf(), Off: off, N: n}
}

func (t *Transport) planFor(req *mpi.Request) plan {
	dt, count := req.Datatype(), req.Count()
	shape, uniform := dt.Uniform2D(count)
	pl := plan{
		size:    req.Size(),
		shape:   shape,
		uniform: uniform,
		contig:  uniform && shape.Rows == 1,
	}
	if pl.size == 0 {
		return pl
	}
	if pl.contig {
		// No pack/unpack stage exists; the engines matter only for an
		// explicit nic pin, which routes the contiguous chunks through
		// the SGE unit as one-entry descriptors. Auto never picks the
		// NIC here — there is nothing to gather.
		if t.cfg.PackMode == PackModeNic {
			pl.packEng, pl.packDev = engineNic, engineCopy
		}
		if t.cfg.UnpackMode == PackModeNic {
			pl.unpackEng, pl.unpackDev = engineNic, engineCopy
		}
		return pl
	}
	blockSize := req.Rank().World().Config().BlockSize
	n1 := t.Node(req.Rank())
	ibm := req.Rank().HCA().Model()
	if !uniform {
		// Irregular types have no 2D shape the copy engine could express:
		// each side packs by kernel or on the NIC.
		pl.cp = dt.ChunkPlan(count, blockSize)
		pl.packEng = t.irregularEngine(t.cfg.PackMode, n1, ibm, pl.cp)
		pl.unpackEng = t.irregularEngine(t.cfg.UnpackMode, n1, ibm, pl.cp)
		pl.packDev, pl.unpackDev = engineKernel, engineKernel
		return pl
	}
	pl.packEng, pl.packDev = t.resolveEngine(t.cfg.PackMode, n1, ibm, shape, pl.size, blockSize)
	pl.unpackEng, pl.unpackDev = t.resolveEngine(t.cfg.UnpackMode, n1, ibm, shape, pl.size, blockSize)
	if pl.packEng != engineCopy || pl.unpackEng != engineCopy {
		pl.cp = dt.ChunkPlan(count, blockSize)
		cut := kernelTailCut(n1.Ctx.Model(), shape, pl.size, blockSize)
		if pl.packChunkEngine() == engineKernel {
			pl.packTailCut = cut
		}
		if pl.unpackChunkEngine() == engineKernel {
			pl.unpackTail = cut
		}
	}
	return pl
}

// kernelTailCut returns the packed-byte offset at which a kernel-packed
// uniform transfer's final short chunk should fall back to the copy
// engine, or 0 to keep every chunk on the kernel. Steady-state chunks
// carry blockSize/width rows — deep enough past the measured crossover
// to amortize the kernel's launch premium — but the tail chunk carries
// only size%blockSize bytes, which can land below the break-even row
// count where memcpy2D wins. The split is only legal when chunk
// boundaries are row-aligned (blockSize a multiple of the row width),
// because the copy-engine path requires row-aligned ranges; irregular
// types never reach here.
func kernelTailCut(m *gpu.CostModel, shape datatype.Shape2D, size, blockSize int) int {
	if size <= blockSize || blockSize%shape.Width != 0 {
		return 0
	}
	tail := size % blockSize
	tailRows := tail / shape.Width
	if tailRows == 0 {
		return 0
	}
	if m.KernelPackBeatsCopy(tailRows, shape.Width, shape.Pitch) {
		return 0
	}
	return size - tail
}

// packChunk enqueues the device-side pack of packed-byte range
// [off, off+n) from the user buffer into dst (contiguous device memory) and
// returns the completion event. p may be nil in engine context. sp is the
// enclosing stage span and chunk the pipeline chunk index; kernel-path ops
// are traced under them.
func (t *Transport) packChunk(p *sim.Proc, n1 *NodeGPU, pl plan, req *mpi.Request, sp obs.Span, chunk int, dst mem.Ptr, off, n int) *sim.Event {
	src := req.Buf()
	if pl.uniform && (pl.packChunkEngine() != engineKernel || (pl.packTailCut > 0 && off >= pl.packTailCut)) {
		// Row-aligned 2D copy: callers align off and n to row boundaries.
		// A kernel-mode transfer still lands here for its final short
		// chunk when that tail is below the kernel/memcpy2D crossover.
		w := pl.shape.Width
		if off%w != 0 || n%w != 0 {
			panic(fmt.Sprintf("core: pack range [%d,%d) not row-aligned (width %d)", off, off+n, w))
		}
		return n1.Ctx.Memcpy2DAsyncTask(p, dst, w, src.Add(pl.shape.Off+off/w*pl.shape.Pitch), pl.shape.Pitch, w, n/w, n1.packStream, sp, chunk)
	}
	// Kernel path: a gather kernel walks the cached chunk plan's segments
	// on the compute engine (callers keep off/n chunk-aligned).
	d := pl.cp.Kernel(off, n)
	n1.kernOps++
	ev := n1.Ctx.LaunchKernelTask(p, n1.packStream, sp, chunk, d.Bytes(), n1.Ctx.Model().PackKernelRate(d.Bytes(), d.Segments()), func() {
		d.Pack(dst, src)
	})
	ev.OnTrigger(func() { n1.kernOps-- })
	return ev
}

// unpackChunk is the inverse: scatter packed range [off, off+n) from src
// (contiguous device memory) into the user buffer.
func (t *Transport) unpackChunk(p *sim.Proc, n1 *NodeGPU, pl plan, req *mpi.Request, sp obs.Span, chunk int, src mem.Ptr, off, n int) *sim.Event {
	dst := req.Buf()
	if pl.uniform && (pl.unpackChunkEngine() != engineKernel || (pl.unpackTail > 0 && off >= pl.unpackTail)) {
		w := pl.shape.Width
		if off%w != 0 || n%w != 0 {
			panic(fmt.Sprintf("core: unpack range [%d,%d) not row-aligned (width %d)", off, off+n, w))
		}
		return n1.Ctx.Memcpy2DAsyncTask(p, dst.Add(pl.shape.Off+off/w*pl.shape.Pitch), pl.shape.Pitch, src, w, w, n/w, n1.unpackStream, sp, chunk)
	}
	d := pl.cp.Kernel(off, n)
	n1.kernOps++
	ev := n1.Ctx.LaunchKernelTask(p, n1.unpackStream, sp, chunk, d.Bytes(), n1.Ctx.Model().PackKernelRate(d.Bytes(), d.Segments()), func() {
		d.Unpack(dst, src)
	})
	ev.OnTrigger(func() { n1.kernOps-- })
	return ev
}

// ---------------------------------------------------------------------------
// Eager path (and self-sends of any size)

// StageToHost packs the device buffer and stages it into host bytes:
// D2D pack into tbuf, then chunk-sized D2H copies double-buffered through
// two vbufs, so the host memcpy draining chunk i overlaps chunk i+1's D2H.
// The second vbuf is best-effort (TryGet): a drained pool degrades to the
// serial single-vbuf path instead of risking deadlock.
func (t *Transport) StageToHost(req *mpi.Request, deliver func(packed []byte)) {
	r := req.Rank()
	n1 := t.Node(r)
	pl := t.planFor(req)
	e := r.World().Engine()
	e.Spawn(fmt.Sprintf("rank%d.gpustage", r.Rank()), func(p *sim.Proc) {
		size := pl.size
		packed := make([]byte, size)
		var tbuf mem.Ptr
		if !pl.contig {
			tbuf = n1.Ctx.MustMalloc(size)
			p.Wait(t.packChunk(p, n1, pl, req, req.ObsSpan(), -1, tbuf, 0, size))
		} else {
			tbuf = req.Buf().Add(pl.shape.Off)
		}
		chunk := n1.Pool.ChunkSize()
		var bufs [2]*hostmem.Vbuf
		bufs[0] = n1.Pool.Get(p)
		nbuf := 1
		if size > chunk {
			if v, ok := n1.Pool.TryGet(); ok {
				bufs[1] = v
				nbuf = 2
			}
		}
		var evs [2]*sim.Event
		issue := func(b, off int) {
			n := min(chunk, size-off)
			evs[b] = n1.Ctx.MemcpyAsyncTask(p, bufs[b].Ptr, tbuf.Add(off), n, n1.d2hStreams[0], req.ObsSpan(), -1)
		}
		issue(0, 0)
		b := 0
		for off := 0; off < size; off += chunk {
			n := min(chunk, size-off)
			p.Wait(evs[b])
			next := off + chunk
			if next < size && nbuf == 2 {
				issue(1-b, next)
			}
			// The drain memcpy's bytes are due when the modeled host copy
			// ends; the vbuf is not re-filled before then and packed is only
			// read by deliver after the loop.
			hc := r.HostCopyCost(n)
			dst, src := packed[off:off+n], bufs[b].Ptr.Bytes(n)
			e.TaskAt(p.Now()+hc, func() { copy(dst, src) })
			p.Sleep(hc)
			if next < size && nbuf == 1 {
				issue(0, next)
			}
			if nbuf == 2 {
				b = 1 - b
			}
		}
		n1.Pool.Put(bufs[0])
		if bufs[1] != nil {
			n1.Pool.Put(bufs[1])
		}
		if !pl.contig {
			mustFree(n1.Ctx, tbuf)
		}
		deliver(packed)
	})
}

// DeliverFromHost unpacks eager payload bytes into the device buffer:
// host copy into a vbuf, H2D into tbuf, D2D unpack, complete. The host
// copies and H2D transfers are double-buffered across two vbufs (when the
// pool allows): the H2D of chunk i runs while the host fills chunk i+1.
func (t *Transport) DeliverFromHost(req *mpi.Request, packed []byte) {
	r := req.Rank()
	n1 := t.Node(r)
	pl := t.planFor(req)
	e := r.World().Engine()
	e.Spawn(fmt.Sprintf("rank%d.gpudeliver", r.Rank()), func(p *sim.Proc) {
		size := len(packed)
		var tbuf mem.Ptr
		if pl.contig {
			tbuf = req.Buf().Add(pl.shape.Off)
		} else {
			//lint:ignore allocfree freed below under the same !pl.contig guard that allocated it; the guard is immutable but the flow analysis is path-insensitive and cannot correlate the branches
			tbuf = n1.Ctx.MustMalloc(size)
		}
		chunk := n1.Pool.ChunkSize()
		var bufs [2]*hostmem.Vbuf
		bufs[0] = n1.RecvPool.Get(p)
		nbuf := 1
		if size > chunk {
			if v, ok := n1.RecvPool.TryGet(); ok {
				bufs[1] = v
				nbuf = 2
			}
		}
		var evs [2]*sim.Event
		b := 0
		for off := 0; off < size; off += chunk {
			n := min(chunk, size-off)
			if evs[b] != nil {
				p.Wait(evs[b]) // vbuf b's previous H2D must have drained it
			}
			// The fill memcpy's bytes are due when the modeled host copy
			// ends; the H2D that reads the vbuf is issued after the sleep,
			// i.e. after this task's slot commits.
			hc := r.HostCopyCost(n)
			dst, src := bufs[b].Ptr.Bytes(n), packed[off:off+n]
			e.TaskAt(p.Now()+hc, func() { copy(dst, src) })
			p.Sleep(hc)
			evs[b] = n1.Ctx.MemcpyAsyncTask(p, tbuf.Add(off), bufs[b].Ptr, n, n1.h2dStreams[0], req.ObsSpan(), -1)
			if nbuf == 2 {
				b = 1 - b
			}
		}
		for i := 0; i < nbuf; i++ {
			if evs[i] != nil {
				p.Wait(evs[i])
			}
		}
		n1.RecvPool.Put(bufs[0])
		if bufs[1] != nil {
			n1.RecvPool.Put(bufs[1])
		}
		if !pl.contig {
			p.Wait(t.unpackChunk(p, n1, pl, req, req.ObsSpan(), -1, tbuf, 0, size))
			mustFree(n1.Ctx, tbuf)
		}
		req.CompleteRecv()
	})
}

// ---------------------------------------------------------------------------
// Rendezvous sender: the five-stage pipeline, stages 1-3.

// StartRendezvousSend sends the RTS immediately and starts packing before
// the CTS arrives, overlapping the handshake with datatype processing.
func (t *Transport) StartRendezvousSend(req *mpi.Request) {
	r := req.Rank()
	n1 := t.Node(r)
	pl := t.planFor(req)
	r.SendRTS(req)
	e := r.World().Engine()
	e.Spawn(fmt.Sprintf("rank%d.gpusend", r.Rank()), func(p *sim.Proc) {
		h := t.obsHub(e)
		parent := req.ObsSpan()
		size := pl.size
		blockSize := r.World().Config().BlockSize
		// Dispatch: GPUDirect removes the staging stages unless the nic
		// engine owns the pack (the SGE unit already reads device memory
		// in place, staging-free); host-staged keeps its vbuf pipeline and
		// lets the nic engine gather from the vbuf; a nic pack otherwise
		// takes the shortened gather pipeline.
		if t.cfg.GPUDirect && pl.packEng != engineNic {
			t.sendGDR(p, n1, pl, req)
			return
		}
		if hostStagedApplies(t, pl, blockSize) {
			t.sendHostStaged(p, n1, pl, req)
			return
		}
		if pl.packEng == engineNic {
			t.sendNic(p, n1, pl, req)
			return
		}

		// Stage 1: issue all device-side packs up front (row-aligned groups
		// close to the block size for the copy engine, chunk-aligned blocks
		// for the pack kernel), building a contiguous packed tbuf.
		var tbuf mem.Ptr
		var packDone []*sim.Event // packDone[i] covers packed bytes up to packCut[i]
		var packCut []int
		var packSpans []obs.Span // packSpans[i] is packDone[i]'s stage task, for dep edges
		if pl.contig {
			tbuf = req.Buf().Add(pl.shape.Off) // stage straight out of the user buffer
		} else {
			//lint:ignore allocfree freed at the end of this function under the same !pl.contig guard that allocated it; the flow analysis is path-insensitive and cannot correlate the branches
			tbuf = n1.Ctx.MustMalloc(size)
			step := size
			if pl.uniform && pl.packChunkEngine() != engineKernel {
				rows := max(1, blockSize/pl.shape.Width)
				step = rows * pl.shape.Width
			} else if size > blockSize {
				step = blockSize
			}
			for off := 0; off < size; off += step {
				n := min(step, size-off)
				idx := len(packDone)
				sp := h.StartChild(parent, obs.KindPack, n1.tracks.pack, idx, n)
				ev := t.packChunk(p, n1, pl, req, sp, idx, tbuf.Add(off), off, n)
				packDone = append(packDone, ev)
				packCut = append(packCut, off+n)
				packSpans = append(packSpans, sp)
				if sp.Active() {
					ev.OnTrigger(sp.End)
				}
			}
		}
		// packIdx returns the index of the pack whose completion covers all
		// packed bytes below throughByte, or -1 when there is no pack stage.
		packIdx := func(throughByte int) int {
			if pl.contig {
				return -1
			}
			for i, cut := range packCut {
				if cut >= throughByte {
					return i
				}
			}
			return len(packDone) - 1
		}

		// Rendezvous handshake: by now the RTS is long gone; wait for the
		// receiver's chunk geometry.
		total, chunkBytes := req.AwaitCTS(p)
		if chunkBytes != blockSize {
			panic(fmt.Sprintf("core: receiver chunk size %d != configured block size %d", chunkBytes, blockSize))
		}
		if want := (size + chunkBytes - 1) / chunkBytes; total != want {
			panic(fmt.Sprintf("core: receiver announced %d chunks, want %d", total, want))
		}

		// Stages 2-3 per chunk: D2H into a vbuf, RDMA write + FIN, recycle
		// the vbuf at local completion. Chained via completion callbacks so
		// chunk i's RDMA overlaps chunk i+1's D2H and later packs. Chunks
		// stripe round-robin: chunk c stages on D2H stream c%rails and
		// flies on HCA rail c%rails, so with R rails up to R chunks occupy
		// PCIe queues and wires concurrently.
		chunkSent := make([]*sim.Event, total)
		for c := 0; c < total; c++ {
			c := c
			rail := c % n1.rails
			off := c * chunkBytes
			n := min(chunkBytes, size-off)
			slot := req.AwaitSlot(p, c)
			pi := packIdx(off + n)
			if pi >= 0 {
				p.Wait(packDone[pi])
			}
			vbuf := n1.Pool.GetRail(p, rail)
			sent := e.NewEvent(fmt.Sprintf("rank%d.chunk%d.sent", r.Rank(), c))
			chunkSent[c] = sent
			d2hSp := h.StartChild(parent, obs.KindD2H, n1.tracks.d2h[rail], c, n)
			if pi >= 0 {
				d2hSp.DependsOn(packSpans[pi], obs.DepPack)
			}
			d2h := n1.Ctx.MemcpyAsyncTask(p, vbuf.Ptr, tbuf.Add(off), n, n1.d2hStreams[rail], d2hSp, c)
			d2h.OnTrigger(func() {
				d2hSp.End()
				rdmaSp := h.StartChild(parent, obs.KindRDMA, n1.tracks.rdma[rail], c, n)
				rdmaSp.DependsOn(d2hSp, obs.DepStage)
				rdma := r.RDMAChunkRailSpan(req, slot, vbuf.Ptr, n, rail, rdmaSp)
				rdma.OnTrigger(func() {
					rdmaSp.End()
					n1.Pool.Put(vbuf)
					sent.Trigger()
				})
			})
		}
		p.WaitAll(chunkSent...)
		if !pl.contig {
			mustFree(n1.Ctx, tbuf)
		}
		req.CompleteSend()
	})
}

// ---------------------------------------------------------------------------
// Rendezvous receiver: stages 4-5.

// StartRendezvousRecv announces vbuf landing slots (in batches bounded by
// pool availability), then per arriving chunk stages H2D into tbuf and
// unpacks row-aligned groups as their bytes land.
func (t *Transport) StartRendezvousRecv(req *mpi.Request) {
	r := req.Rank()
	n1 := t.Node(r)
	pl := t.planFor(req)
	e := r.World().Engine()
	e.Spawn(fmt.Sprintf("rank%d.gpurecv", r.Rank()), func(p *sim.Proc) {
		h := t.obsHub(e)
		parent := req.ObsSpan()
		size := req.Size()
		total, chunkBytes := r.World().ChunkGeometry(size)
		if t.cfg.GPUDirect && pl.unpackEng != engineNic {
			t.recvGDR(p, n1, pl, req)
			return
		}
		if hostStagedApplies(t, pl, chunkBytes) {
			t.recvHostStaged(p, n1, pl, req)
			return
		}
		if pl.unpackEng == engineNic {
			t.recvNic(p, n1, pl, req)
			return
		}
		if chunkBytes != n1.RecvPool.ChunkSize() {
			panic(fmt.Sprintf("core: block size %d != vbuf size %d", chunkBytes, n1.RecvPool.ChunkSize()))
		}

		var tbuf mem.Ptr
		if pl.contig {
			tbuf = req.Buf().Add(pl.shape.Off) // land H2D chunks straight in the user buffer
		} else {
			tbuf = n1.Ctx.MustMalloc(size)
		}

		chunkLen := func(c int) int { return min(chunkBytes, size-c*chunkBytes) }

		// Progressive unpack state: rows are unpacked as soon as all their
		// packed bytes have arrived on the device.
		arrived := 0
		unpackedThrough := 0
		var unpackEvs []*sim.Event
		advanceUnpack := func(trigger obs.Span) {
			if pl.contig {
				return
			}
			// The copy engine unpacks whole rows; the kernel path keeps
			// chunk alignment (arrived only moves in whole chunks), which
			// is what its plan ranges require.
			var cut int
			if pl.uniform && pl.unpackChunkEngine() != engineKernel {
				cut = arrived / pl.shape.Width * pl.shape.Width
			} else {
				cut = arrived
			}
			if cut > unpackedThrough {
				idx := len(unpackEvs)
				sp := h.StartChild(parent, obs.KindUnpack, n1.tracks.unpack, idx, cut-unpackedThrough)
				sp.DependsOn(trigger, obs.DepStage)
				ev := t.unpackChunk(nil, n1, pl, req, sp, idx, tbuf.Add(unpackedThrough), unpackedThrough, cut-unpackedThrough)
				unpackEvs = append(unpackEvs, ev)
				if sp.Active() {
					ev.OnTrigger(sp.End)
				}
				unpackedThrough = cut
			}
		}

		slotVbuf := make([]*hostmem.Vbuf, total)
		announced := 0
		announce := func() {
			// Grab every immediately free receive vbuf (at least one,
			// blocking) and announce the batch in one CTS. Receive vbufs
			// recycle as soon as their chunk's H2D completes, and those
			// H2Ds depend only on remote senders — which stage through
			// their own pool — so this blocking Get always unblocks.
			var slots []mpi.Slot
			v := n1.RecvPool.Get(p)
			for {
				c := announced
				slotVbuf[c] = v
				slots = append(slots, mpi.Slot{Chunk: c, Rkey: v.Region.Rkey, Off: 0, Len: chunkLen(c)})
				announced++
				if announced == total {
					break
				}
				var ok bool
				v, ok = n1.RecvPool.TryGet()
				if !ok {
					break
				}
			}
			r.SendCTS(req, total, chunkBytes, slots)
		}

		// FINs from different rails may overtake each other, so chunks are
		// processed in arrival order; the progressive unpack only advances
		// over the contiguous prefix of landed chunks.
		h2dDone := make([]*sim.Event, total)
		arrivedChunks := make([]bool, total)
		prefixChunks := 0
		for done := 0; done < total; done++ {
			for announced <= done {
				announce()
			}
			c := req.AwaitFin(p)
			if c < 0 || c >= total || h2dDone[c] != nil {
				panic(fmt.Sprintf("core: bogus FIN for chunk %d", c))
			}
			vbuf := slotVbuf[c]
			n := chunkLen(c)
			off := c * chunkBytes
			rail := c % n1.rails
			h2dSp := h.StartChild(parent, obs.KindH2D, n1.tracks.h2d[rail], c, n)
			ev := n1.Ctx.MemcpyAsyncTask(p, tbuf.Add(off), vbuf.Ptr, n, n1.h2dStreams[rail], h2dSp, c)
			h2dDone[c] = ev
			ev.OnTrigger(func() {
				h2dSp.End()
				n1.RecvPool.Put(vbuf)
				arrivedChunks[c] = true
				for prefixChunks < total && arrivedChunks[prefixChunks] {
					prefixChunks++
				}
				arrived = min(prefixChunks*chunkBytes, size)
				advanceUnpack(h2dSp)
			})
		}
		p.WaitAll(h2dDone...)
		// All bytes are on the device; flush any unpack tail and wait.
		arrived = size
		if !pl.contig {
			if unpackedThrough < size {
				idx := len(unpackEvs)
				sp := h.StartChild(parent, obs.KindUnpack, n1.tracks.unpack, idx, size-unpackedThrough)
				ev := t.unpackChunk(p, n1, pl, req, sp, idx, tbuf.Add(unpackedThrough), unpackedThrough, size-unpackedThrough)
				unpackEvs = append(unpackEvs, ev)
				if sp.Active() {
					ev.OnTrigger(sp.End)
				}
				unpackedThrough = size
			}
			p.WaitAll(unpackEvs...)
			mustFree(n1.Ctx, tbuf)
		}
		req.CompleteRecv()
	})
}

func mustFree(ctx *cuda.Ctx, p mem.Ptr) {
	if err := ctx.Free(p); err != nil {
		panic(err)
	}
}
