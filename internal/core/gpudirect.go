package core

import (
	"fmt"

	"mv2sim/internal/mpi"
	"mv2sim/internal/obs"
	"mv2sim/internal/sim"
)

// This file implements the GPUDirect-RDMA mode: the pipeline with both
// host-staging stages removed. The HCA reads packed chunks straight out of
// the sender's device tbuf and deposits them straight into the receiver's
// registered device tbuf; what remains is pack → RDMA → unpack.
//
// The paper's 2011 testbed had no GPUDirect RDMA — that is exactly why its
// design stages through pinned host vbufs. The mode exists to quantify, on
// the same simulated testbed, how much of the remaining transfer cost the
// staging was responsible for, i.e. what the paper's successors
// (MVAPICH2-GDR) stood to gain. Enable it with cluster.Config.GPUDirect,
// which also tells the fabric to accept device-memory registration.

// sendGDR is the sender pipeline without stage 2 (D2H): chunks RDMA out
// of the packed device tbuf directly.
func (t *Transport) sendGDR(p *sim.Proc, n1 *NodeGPU, pl plan, req *mpi.Request) {
	r := req.Rank()
	e := r.World().Engine()
	h := t.obsHub(e)
	parent := req.ObsSpan()
	size := pl.size
	blockSize := r.World().Config().BlockSize

	tbuf := req.Buf()
	var packDone []*sim.Event
	var packCut []int
	var packSpans []obs.Span
	if pl.contig {
		tbuf = req.Buf().Add(pl.shape.Off)
	} else {
		//lint:ignore allocfree freed after the chunk loop under the same !pl.contig guard that allocated it; the flow analysis is path-insensitive and cannot correlate the branches
		tbuf = n1.Ctx.MustMalloc(size)
		step := size
		if pl.uniform && pl.packChunkEngine() != engineKernel {
			rows := max(1, blockSize/pl.shape.Width)
			step = rows * pl.shape.Width
		} else if size > blockSize {
			step = blockSize
		}
		for off := 0; off < size; off += step {
			n := min(step, size-off)
			idx := len(packDone)
			sp := h.StartChild(parent, obs.KindPack, n1.tracks.pack, idx, n)
			ev := t.packChunk(p, n1, pl, req, sp, idx, tbuf.Add(off), off, n)
			packDone = append(packDone, ev)
			packCut = append(packCut, off+n)
			packSpans = append(packSpans, sp)
			if sp.Active() {
				ev.OnTrigger(sp.End)
			}
		}
	}
	packIdx := func(throughByte int) int {
		if pl.contig {
			return -1
		}
		for i, cut := range packCut {
			if cut >= throughByte {
				return i
			}
		}
		return len(packDone) - 1
	}

	total, chunkBytes := req.AwaitCTS(p)
	if chunkBytes != blockSize {
		panic(fmt.Sprintf("core: receiver chunk size %d != block size %d", chunkBytes, blockSize))
	}
	chunkSent := make([]*sim.Event, total)
	for c := 0; c < total; c++ {
		rail := c % n1.rails
		off := c * chunkBytes
		n := min(chunkBytes, size-off)
		slot := req.AwaitSlot(p, c)
		pi := packIdx(off + n)
		if pi >= 0 {
			p.Wait(packDone[pi])
		}
		sent := e.NewEvent(fmt.Sprintf("rank%d.gdrchunk%d", r.Rank(), c))
		chunkSent[c] = sent
		sp := h.StartChild(parent, obs.KindRDMA, n1.tracks.rdma[rail], c, n)
		if pi >= 0 {
			sp.DependsOn(packSpans[pi], obs.DepPack)
		}
		rdma := r.RDMAChunkRailSpan(req, slot, tbuf.Add(off), n, rail, sp)
		if sp.Active() {
			rdma.OnTrigger(sp.End)
		}
		rdma.OnTrigger(sent.Trigger)
	}
	p.WaitAll(chunkSent...)
	if !pl.contig {
		mustFree(n1.Ctx, tbuf)
	}
	req.CompleteSend()
}

// recvGDR is the receiver pipeline without stage 4 (H2D): the whole device
// tbuf (or the contiguous user buffer) is registered with the HCA and
// announced in one CTS; arriving chunks are unpacked as their bytes land.
func (t *Transport) recvGDR(p *sim.Proc, n1 *NodeGPU, pl plan, req *mpi.Request) {
	r := req.Rank()
	h := t.obsHub(r.World().Engine())
	parent := req.ObsSpan()
	size := req.Size()
	total, chunkBytes := r.World().ChunkGeometry(size)
	chunkLen := func(c int) int { return min(chunkBytes, size-c*chunkBytes) }

	tbuf := req.Buf()
	if pl.contig {
		tbuf = req.Buf().Add(pl.shape.Off)
	} else {
		tbuf = n1.Ctx.MustMalloc(size)
	}
	region := r.HCA().Register(tbuf, size)

	slots := make([]mpi.Slot, total)
	for c := 0; c < total; c++ {
		slots[c] = mpi.Slot{Chunk: c, Rkey: region.Rkey, Off: c * chunkBytes, Len: chunkLen(c)}
	}
	r.SendCTS(req, total, chunkBytes, slots)

	// Chunks land straight in device memory, so a FIN is all there is to a
	// chunk here; FINs from different rails may overtake each other, and the
	// progressive unpack follows the contiguous prefix of landed chunks.
	arrived := 0
	unpackedThrough := 0
	var unpackEvs []*sim.Event
	arrivedChunks := make([]bool, total)
	prefixChunks := 0
	for done := 0; done < total; done++ {
		c := req.AwaitFin(p)
		if c < 0 || c >= total || arrivedChunks[c] {
			panic(fmt.Sprintf("core: bogus FIN for chunk %d", c))
		}
		arrivedChunks[c] = true
		for prefixChunks < total && arrivedChunks[prefixChunks] {
			prefixChunks++
		}
		arrived = min(prefixChunks*chunkBytes, size)
		if pl.contig {
			continue
		}
		var cut int
		if pl.uniform && pl.unpackChunkEngine() != engineKernel {
			cut = arrived / pl.shape.Width * pl.shape.Width
		} else {
			cut = arrived
		}
		if cut > unpackedThrough {
			idx := len(unpackEvs)
			sp := h.StartChild(parent, obs.KindUnpack, n1.tracks.unpack, idx, cut-unpackedThrough)
			ev := t.unpackChunk(nil, n1, pl, req, sp, idx, tbuf.Add(unpackedThrough), unpackedThrough, cut-unpackedThrough)
			unpackEvs = append(unpackEvs, ev)
			unpackedThrough = cut
			if sp.Active() {
				ev.OnTrigger(sp.End)
			}
		}
	}
	r.HCA().Deregister(region)
	if !pl.contig {
		if unpackedThrough < size {
			idx := len(unpackEvs)
			sp := h.StartChild(parent, obs.KindUnpack, n1.tracks.unpack, idx, size-unpackedThrough)
			ev := t.unpackChunk(p, n1, pl, req, sp, idx, tbuf.Add(unpackedThrough), unpackedThrough, size-unpackedThrough)
			unpackEvs = append(unpackEvs, ev)
			if sp.Active() {
				ev.OnTrigger(sp.End)
			}
		}
		p.WaitAll(unpackEvs...)
		mustFree(n1.Ctx, tbuf)
	}
	req.CompleteRecv()
}
