package core

import "mv2sim/internal/mpi"

// The paper's two sweep knobs, re-exported so transport-level code and
// benchmarks can name them without reaching into mpi. The chunkconst
// analyzer rejects raw literals for these tunables anywhere outside the
// defining const blocks.
const (
	// DefaultBlockSize is the pipeline chunk size (MV2_CUDA_BLOCK_SIZE).
	DefaultBlockSize = mpi.DefaultBlockSize
	// DefaultEagerLimit is the eager/rendezvous threshold
	// (MV2_IBA_EAGER_THRESHOLD).
	DefaultEagerLimit = mpi.DefaultEagerLimit
	// DefaultRails is the number of HCA rails rendezvous chunks stripe
	// across (MV2_NUM_RAILS).
	DefaultRails = mpi.DefaultRails
)
