package core

import (
	"fmt"

	"mv2sim/internal/hostmem"
	"mv2sim/internal/ib"
	"mv2sim/internal/mpi"
	"mv2sim/internal/obs"
	"mv2sim/internal/sim"
)

// This file implements the HostStagedPack ablation: the same rendezvous
// pipeline with GPU offload *disabled*. Non-contiguous data is gathered
// straight across PCIe with strided cudaMemcpy2DAsync into the staging
// vbufs ("D2H nc2c", Figure 1(b)) and scattered with strided H2D copies on
// the receiving side — the strategy the paper rejects in section IV-A.
// Keeping it selectable turns Figure 2's microbenchmark argument into a
// library-level A/B experiment.

// hostStagedApplies reports whether the ablation path can serve the
// request: it needs a uniform 2D shape whose rows tile the pipeline block.
func hostStagedApplies(t *Transport, pl plan, blockSize int) bool {
	return t.cfg.HostStagedPack && pl.uniform && !pl.contig && blockSize%pl.shape.Width == 0
}

// sendHostStaged is the sender pipeline without stage 1: strided D2H
// directly from the user buffer into each vbuf.
func (t *Transport) sendHostStaged(p *sim.Proc, n1 *NodeGPU, pl plan, req *mpi.Request) {
	r := req.Rank()
	e := r.World().Engine()
	h := t.obsHub(e)
	parent := req.ObsSpan()
	size := pl.size
	blockSize := r.World().Config().BlockSize
	rowsPerChunk := blockSize / pl.shape.Width

	total, chunkBytes := req.AwaitCTS(p)
	if chunkBytes != blockSize {
		panic(fmt.Sprintf("core: receiver chunk size %d != block size %d", chunkBytes, blockSize))
	}
	chunkSent := make([]*sim.Event, total)
	for c := 0; c < total; c++ {
		rail := c % n1.rails
		off := c * chunkBytes
		n := min(chunkBytes, size-off)
		slot := req.AwaitSlot(p, c)
		vbuf := n1.Pool.GetRail(p, rail)
		sent := e.NewEvent(fmt.Sprintf("rank%d.hschunk%d", r.Rank(), c))
		chunkSent[c] = sent
		startRow := c * rowsPerChunk
		d2hSp := h.StartChild(parent, obs.KindD2H, n1.tracks.d2h[rail], c, n)
		d2h := n1.Ctx.Memcpy2DAsyncTask(p,
			vbuf.Ptr, pl.shape.Width,
			req.Buf().Add(pl.shape.Off+startRow*pl.shape.Pitch), pl.shape.Pitch,
			pl.shape.Width, n/pl.shape.Width, n1.d2hStreams[rail], d2hSp, c)
		d2h.OnTrigger(func() {
			d2hSp.End()
			rdmaSp := h.StartChild(parent, obs.KindRDMA, n1.tracks.rdma[rail], c, n)
			rdmaSp.DependsOn(d2hSp, obs.DepStage)
			// Under a nic pack the HCA still offloads what it can: the
			// vbuf holds host-contiguous bytes, so the gather degrades to
			// a one-entry descriptor read straight from the vbuf.
			var rdma *sim.Event
			if pl.packEng == engineNic {
				rdma = r.RDMANicChunkRailSpan(req, slot, ib.SGDesc{Buf: vbuf.Ptr, N: n}, rail, rdmaSp)
			} else {
				rdma = r.RDMAChunkRailSpan(req, slot, vbuf.Ptr, n, rail, rdmaSp)
			}
			rdma.OnTrigger(func() {
				rdmaSp.End()
				n1.Pool.Put(vbuf)
				sent.Trigger()
			})
		})
	}
	p.WaitAll(chunkSent...)
	req.CompleteSend()
}

// recvHostStaged is the receiver pipeline without stage 5: strided H2D
// from each vbuf straight into the user buffer.
func (t *Transport) recvHostStaged(p *sim.Proc, n1 *NodeGPU, pl plan, req *mpi.Request) {
	r := req.Rank()
	h := t.obsHub(r.World().Engine())
	parent := req.ObsSpan()
	size := req.Size()
	total, chunkBytes := r.World().ChunkGeometry(size)
	rowsPerChunk := chunkBytes / pl.shape.Width
	chunkLen := func(c int) int { return min(chunkBytes, size-c*chunkBytes) }

	slotVbuf := make([]*hostmem.Vbuf, total)
	announced := 0
	announce := func() {
		var slots []mpi.Slot
		v := n1.RecvPool.Get(p)
		for {
			c := announced
			slotVbuf[c] = v
			slots = append(slots, mpi.Slot{Chunk: c, Rkey: v.Region.Rkey, Off: 0, Len: chunkLen(c)})
			announced++
			if announced == total {
				break
			}
			var ok bool
			v, ok = n1.RecvPool.TryGet()
			if !ok {
				break
			}
		}
		r.SendCTS(req, total, chunkBytes, slots)
	}

	// Strided H2D scatters are independent per chunk, so FINs arriving out
	// of order across rails are simply processed in arrival order.
	h2dDone := make([]*sim.Event, total)
	for done := 0; done < total; done++ {
		for announced <= done {
			announce()
		}
		c := req.AwaitFin(p)
		if c < 0 || c >= total || h2dDone[c] != nil {
			panic(fmt.Sprintf("core: bogus FIN for chunk %d", c))
		}
		rail := c % n1.rails
		vbuf := slotVbuf[c]
		n := chunkLen(c)
		startRow := c * rowsPerChunk
		h2dSp := h.StartChild(parent, obs.KindH2D, n1.tracks.h2d[rail], c, n)
		ev := n1.Ctx.Memcpy2DAsyncTask(p,
			req.Buf().Add(pl.shape.Off+startRow*pl.shape.Pitch), pl.shape.Pitch,
			vbuf.Ptr, pl.shape.Width,
			pl.shape.Width, n/pl.shape.Width, n1.h2dStreams[rail], h2dSp, c)
		h2dDone[c] = ev
		ev.OnTrigger(func() {
			h2dSp.End()
			n1.RecvPool.Put(vbuf)
		})
	}
	p.WaitAll(h2dDone...)
	req.CompleteRecv()
}
