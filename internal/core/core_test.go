package core_test

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"strings"

	"mv2sim/internal/cluster"
	"mv2sim/internal/core"
	"mv2sim/internal/datatype"
	"mv2sim/internal/gpu"
	"mv2sim/internal/mem"
	"mv2sim/internal/mpi"
	"mv2sim/internal/sim"
)

// devFixture runs fn on a 2-node GPU cluster.
func runPair(t *testing.T, cfg cluster.Config, fn func(n *cluster.Node)) *cluster.Cluster {
	t.Helper()
	if cfg.Nodes == 0 {
		cfg.Nodes = 2
	}
	cl := cluster.New(cfg)
	if err := cl.Run(fn); err != nil {
		t.Fatalf("simulation did not drain: %v", err)
	}
	return cl
}

func fillDev(p mem.Ptr, n int, seed byte) {
	mem.Fill(p, n, func(i int) byte { return byte(i)*7 + seed })
}

// checkVector verifies every touched segment of a typed buffer against the
// sender's fill pattern.
func checkTyped(t *testing.T, dt *datatype.Datatype, count int, buf mem.Ptr, seed byte, what string) {
	t.Helper()
	for _, s := range dt.SegmentsOf(count) {
		b := buf.Add(s.Off).Bytes(s.Len)
		for i := range b {
			if b[i] != byte(s.Off+i)*7+seed {
				t.Fatalf("%s: segment %+v byte %d = %d, want %d", what, s, i, b[i], byte(s.Off+i)*7+seed)
			}
		}
	}
}

func TestDeviceVectorEager(t *testing.T) {
	// Small vector: travels on the eager path with GPU staging both ways.
	v, _ := datatype.Vector(256, 4, 16, datatype.Byte) // 1 KB packed
	v.MustCommit()
	runPair(t, cluster.Config{}, func(n *cluster.Node) {
		r := n.Rank
		buf := n.Ctx.MustMalloc(v.Span(1))
		switch r.Rank() {
		case 0:
			fillDev(buf, v.Span(1), 5)
			r.Send(buf, 1, v, 1, 0)
		case 1:
			st := r.Recv(buf, 1, v, 0, 0)
			if st.Bytes != v.Size() {
				t.Errorf("bytes = %d, want %d", st.Bytes, v.Size())
			}
			checkTyped(t, v, 1, buf, 5, "eager device vector")
		}
	})
}

func TestDeviceVectorRendezvousPipeline(t *testing.T) {
	// 4 MB vector of 4-byte elements: the paper's headline case. Exercises
	// the full five-stage chunked pipeline.
	v, _ := datatype.Vector(1<<20, 4, 16, datatype.Byte) // 4 MB packed
	v.MustCommit()
	cl := runPair(t, cluster.Config{GPUMemBytes: 96 << 20}, func(n *cluster.Node) {
		r := n.Rank
		buf := n.Ctx.MustMalloc(v.Span(1))
		switch r.Rank() {
		case 0:
			fillDev(buf, v.Span(1), 3)
			r.Send(buf, 1, v, 1, 0)
		case 1:
			r.Recv(buf, 1, v, 0, 0)
			checkTyped(t, v, 1, buf, 3, "rendezvous device vector")
		}
	})
	// The pipeline must have used both devices' engines and returned every
	// vbuf in both pools.
	for i, n := range cl.Nodes {
		if n.Pool.Free() != n.Pool.Count() {
			t.Errorf("node %d: %d send vbufs leaked", i, n.Pool.Count()-n.Pool.Free())
		}
		if n.RecvPool.Free() != n.RecvPool.Count() {
			t.Errorf("node %d: %d recv vbufs leaked", i, n.RecvPool.Count()-n.RecvPool.Free())
		}
		if n.Dev.LiveAllocs() != 1 { // only the user buffer remains
			t.Errorf("node %d: %d device allocations leaked", i, n.Dev.LiveAllocs()-1)
		}
	}
}

func TestDeviceContiguousTransferSkipsPacking(t *testing.T) {
	const n = 1 << 20
	cl := runPair(t, cluster.Config{GPUMemBytes: 16 << 20}, func(nd *cluster.Node) {
		r := nd.Rank
		buf := nd.Ctx.MustMalloc(n)
		switch r.Rank() {
		case 0:
			fillDev(buf, n, 9)
			r.Send(buf, n, datatype.Byte, 1, 0)
		case 1:
			r.Recv(buf, n, datatype.Byte, 0, 0)
			b := buf.Bytes(n)
			for i := range b {
				if b[i] != byte(i)*7+9 {
					t.Fatalf("byte %d corrupted", i)
				}
			}
		}
	})
	// Contiguous transfers use no D2D copies (no pack/unpack stage).
	for i, nd := range cl.Nodes {
		st := nd.Dev.Stats()
		if st.Copies[2] != 0 { // gpu.D2D
			t.Errorf("node %d: %d D2D copies on a contiguous transfer", i, st.Copies[2])
		}
	}
}

func TestDeviceToHostMixedTransfer(t *testing.T) {
	// Sender in device memory, receiver in host memory: the transport
	// drives the send side; the host path receives.
	v, _ := datatype.Vector(65536, 4, 8, datatype.Byte) // 256 KB packed
	v.MustCommit()
	runPair(t, cluster.Config{GPUMemBytes: 16 << 20}, func(n *cluster.Node) {
		r := n.Rank
		switch r.Rank() {
		case 0:
			buf := n.Ctx.MustMalloc(v.Span(1))
			fillDev(buf, v.Span(1), 1)
			r.Send(buf, 1, v, 1, 0)
		case 1:
			buf := r.AllocHost(v.Span(1))
			r.Recv(buf, 1, v, 0, 0)
			checkTyped(t, v, 1, buf, 1, "device->host")
		}
	})
}

func TestHostToDeviceMixedTransfer(t *testing.T) {
	v, _ := datatype.Vector(65536, 4, 8, datatype.Byte)
	v.MustCommit()
	runPair(t, cluster.Config{GPUMemBytes: 16 << 20}, func(n *cluster.Node) {
		r := n.Rank
		switch r.Rank() {
		case 0:
			buf := r.AllocHost(v.Span(1))
			fillDev(buf, v.Span(1), 2)
			r.Send(buf, 1, v, 1, 0)
		case 1:
			buf := n.Ctx.MustMalloc(v.Span(1))
			r.Recv(buf, 1, v, 0, 0)
			checkTyped(t, v, 1, buf, 2, "host->device")
		}
	})
}

func TestIrregularDatatypeUsesPackKernel(t *testing.T) {
	// An indexed type with irregular gaps cannot use the 2D copy engine;
	// the transport falls back to pack/unpack kernels. Data must still be
	// intact and the device must have executed kernels.
	ix, _ := datatype.Indexed(
		[]int{3, 1, 5, 2, 8},
		[]int{0, 7, 11, 40, 50},
		datatype.Int32,
	)
	ix.MustCommit()
	const count = 2048 // ~152 KB packed: rendezvous
	cl := runPair(t, cluster.Config{GPUMemBytes: 32 << 20}, func(n *cluster.Node) {
		r := n.Rank
		buf := n.Ctx.MustMalloc(ix.Span(count))
		switch r.Rank() {
		case 0:
			fillDev(buf, ix.Span(count), 8)
			r.Send(buf, count, ix, 1, 0)
		case 1:
			r.Recv(buf, count, ix, 0, 0)
			checkTyped(t, ix, count, buf, 8, "irregular type")
		}
	})
	if k := cl.Nodes[0].Dev.Stats().Kernels; k == 0 {
		t.Error("sender executed no pack kernels for an irregular type")
	}
	if k := cl.Nodes[1].Dev.Stats().Kernels; k == 0 {
		t.Error("receiver executed no unpack kernels for an irregular type")
	}
}

func TestDeviceSelfSend(t *testing.T) {
	v, _ := datatype.Vector(4096, 4, 8, datatype.Byte)
	v.MustCommit()
	runPair(t, cluster.Config{Nodes: 1, GPUMemBytes: 16 << 20}, func(n *cluster.Node) {
		r := n.Rank
		tx := n.Ctx.MustMalloc(v.Span(1))
		rx := n.Ctx.MustMalloc(v.Span(1))
		fillDev(tx, v.Span(1), 4)
		q := r.Irecv(rx, 1, v, 0, 0)
		r.Send(tx, 1, v, 0, 0)
		r.Wait(q)
		checkTyped(t, v, 1, rx, 4, "device self-send")
	})
}

func TestSmallVbufPoolStillCorrect(t *testing.T) {
	// With only 3 vbufs per node the pipeline must batch CTS announcements
	// and recycle staging buffers, but data integrity holds.
	v, _ := datatype.Vector(1<<18, 4, 8, datatype.Byte) // 1 MB packed, 16 chunks
	v.MustCommit()
	cl := runPair(t, cluster.Config{GPUMemBytes: 32 << 20, VbufCount: 3}, func(n *cluster.Node) {
		r := n.Rank
		buf := n.Ctx.MustMalloc(v.Span(1))
		switch r.Rank() {
		case 0:
			fillDev(buf, v.Span(1), 6)
			r.Send(buf, 1, v, 1, 0)
		case 1:
			r.Recv(buf, 1, v, 0, 0)
			checkTyped(t, v, 1, buf, 6, "small pool")
		}
	})
	// The receiver must have drained its pool, proving CTS batching was
	// exercised.
	if mf := cl.Nodes[1].RecvPool.MinFree(); mf > 0 {
		t.Errorf("small recv pool never stressed (minFree=%d); test is not exercising batching", mf)
	}
}

func TestBidirectionalDeviceExchange(t *testing.T) {
	// Simultaneous large sends in both directions (the stencil pattern).
	v, _ := datatype.Vector(1<<17, 4, 8, datatype.Byte) // 512 KB packed
	v.MustCommit()
	runPair(t, cluster.Config{GPUMemBytes: 32 << 20}, func(n *cluster.Node) {
		r := n.Rank
		peer := 1 - r.Rank()
		tx := n.Ctx.MustMalloc(v.Span(1))
		rx := n.Ctx.MustMalloc(v.Span(1))
		fillDev(tx, v.Span(1), byte(10+r.Rank()))
		rq := r.Irecv(rx, 1, v, peer, 0)
		sq := r.Isend(tx, 1, v, peer, 0)
		r.Waitall(rq, sq)
		checkTyped(t, v, 1, rx, byte(10+peer), "bidirectional")
	})
}

func TestBidirectionalUnderPoolPressure(t *testing.T) {
	// Both directions large with a tiny pool: the leave-one-vbuf rule must
	// prevent the receiver sides from starving the sender sides.
	v, _ := datatype.Vector(1<<17, 4, 8, datatype.Byte)
	v.MustCommit()
	runPair(t, cluster.Config{GPUMemBytes: 32 << 20, VbufCount: 2}, func(n *cluster.Node) {
		r := n.Rank
		peer := 1 - r.Rank()
		tx := n.Ctx.MustMalloc(v.Span(1))
		rx := n.Ctx.MustMalloc(v.Span(1))
		fillDev(tx, v.Span(1), byte(20+r.Rank()))
		rq := r.Irecv(rx, 1, v, peer, 0)
		sq := r.Isend(tx, 1, v, peer, 0)
		r.Waitall(rq, sq)
		checkTyped(t, v, 1, rx, byte(20+peer), "pool pressure")
	})
}

// The paper's performance claims as executable checks.

// latencyFor measures one-way latency of a vector transfer using design d.
// Pack modes are pinned to the copy engine: the §IV-B assertions below
// compare against the memcpy2D stage costs.
func pipelinedLatency(t *testing.T, rows int) sim.Time {
	t.Helper()
	v, _ := datatype.Vector(rows, 4, 16, datatype.Byte)
	v.MustCommit()
	var elapsed sim.Time
	cfg := cluster.Config{GPUMemBytes: 128 << 20}
	cfg.Core.PackMode = core.PackModeMemcpy2D
	cfg.Core.UnpackMode = core.PackModeMemcpy2D
	runPair(t, cfg, func(n *cluster.Node) {
		r := n.Rank
		buf := n.Ctx.MustMalloc(v.Span(1))
		switch r.Rank() {
		case 0:
			t0 := r.Now()
			r.Send(buf, 1, v, 1, 0)
			r.Recv(buf, 0, datatype.Byte, 1, 1) // ack
			elapsed = r.Now() - t0
		case 1:
			r.Recv(buf, 1, v, 0, 0)
			r.Send(buf, 0, datatype.Byte, 0, 1)
		}
	})
	return elapsed
}

func TestPipelineOverlapBeatsSerialStages(t *testing.T) {
	// For a 4 MB vector, the pipelined transfer must take far less than
	// the sum of its serial stage costs. Section IV-B models the pipelined
	// latency as (n+2)*T_pack(N/n) ≈ T_pack(N) for large n, so the
	// five-stage serial sum (≈ pack + D2H + wire + H2D + unpack) should be
	// beaten decisively.
	const rows = 1 << 20 // 4 MB of 4-byte elements
	got := pipelinedLatency(t, rows)

	m := gpu.DefaultModel()
	packShape := gpu.CopyShape{Width: 4, Height: rows, DPitch: 4, SPitch: 16}
	serial := m.CopyCost(gpu.D2D, packShape) + // pack
		m.CopyCost(gpu.D2H, gpu.Shape1D(4*rows)) + // stage out
		sim.DurationOf(4*rows, 3.2e9) + // wire
		m.CopyCost(gpu.H2D, gpu.Shape1D(4*rows)) + // stage in
		m.CopyCost(gpu.D2D, packShape) // unpack
	if got >= serial*7/10 {
		t.Errorf("pipelined 4MB latency %v not < 70%% of serial stage sum %v", got, serial)
	}
	// And it must not be faster than the slowest single stage (sanity).
	if got < m.CopyCost(gpu.D2D, packShape) {
		t.Errorf("pipelined latency %v below the pack stage alone — model inconsistency", got)
	}
}

// Property: random vector geometries and sizes transfer intact between
// device buffers across the eager/rendezvous boundary.
func TestPropDeviceVectorIntegrity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		blocklen := 1 + rng.Intn(8)
		stride := blocklen + 1 + rng.Intn(8)
		rows := 1 + rng.Intn(20000)
		v, err := datatype.Vector(rows, blocklen, stride, datatype.Int32)
		if err != nil {
			return false
		}
		v.MustCommit()
		span := v.Span(1)
		ok := true
		cl := cluster.New(cluster.Config{GPUMemBytes: 2*span + (16 << 20)})
		err = cl.Run(func(n *cluster.Node) {
			r := n.Rank
			buf := n.Ctx.MustMalloc(span)
			switch r.Rank() {
			case 0:
				fillDev(buf, span, byte(seed))
				r.Send(buf, 1, v, 1, 0)
			case 1:
				r.Recv(buf, 1, v, 0, 0)
				for _, s := range v.SegmentsOf(1) {
					b := buf.Add(s.Off).Bytes(s.Len)
					for i := range b {
						if b[i] != byte(s.Off+i)*7+byte(seed) {
							ok = false
							return
						}
					}
				}
			}
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestManyMessagesStress(t *testing.T) {
	// A burst of mixed-size device messages with distinct tags all arrive.
	sizes := []int{64, 4096, 70000, 300000}
	v := map[int]*datatype.Datatype{}
	for i, n := range sizes {
		dt, _ := datatype.Vector(n/4, 4, 8, datatype.Byte)
		dt.MustCommit()
		v[i] = dt
	}
	runPair(t, cluster.Config{GPUMemBytes: 64 << 20}, func(n *cluster.Node) {
		r := n.Rank
		switch r.Rank() {
		case 0:
			for i, dt := range v {
				buf := n.Ctx.MustMalloc(dt.Span(1))
				fillDev(buf, dt.Span(1), byte(i))
				r.Send(buf, 1, dt, 1, i)
			}
		case 1:
			var reqs []*mpi.Request
			bufs := map[int]mem.Ptr{}
			for i, dt := range v {
				bufs[i] = n.Ctx.MustMalloc(dt.Span(1))
				reqs = append(reqs, r.Irecv(bufs[i], 1, dt, 0, i))
			}
			r.Waitall(reqs...)
			for i, dt := range v {
				checkTyped(t, dt, 1, bufs[i], byte(i), fmt.Sprintf("msg %d", i))
			}
		}
	})
}

// The HostStagedPack ablation: same protocol, no GPU offload. Data must
// stay correct, and the offloaded default must be decisively faster — the
// paper's section IV-A argument at library level.
func TestHostStagedPackAblation(t *testing.T) {
	v, _ := datatype.Vector(1<<18, 4, 16, datatype.Byte) // 1 MB packed
	v.MustCommit()
	runOne := func(hostStaged bool) sim.Time {
		cfg := cluster.Config{GPUMemBytes: 64 << 20}
		cfg.Core.HostStagedPack = hostStaged
		cl := cluster.New(cfg)
		var elapsed sim.Time
		err := cl.Run(func(n *cluster.Node) {
			r := n.Rank
			buf := n.Ctx.MustMalloc(v.Span(1))
			switch r.Rank() {
			case 0:
				fillDev(buf, v.Span(1), 9)
				t0 := r.Now()
				r.Send(buf, 1, v, 1, 0)
				r.Recv(buf, 0, datatype.Byte, 1, 1)
				elapsed = r.Now() - t0
			case 1:
				r.Recv(buf, 1, v, 0, 0)
				checkTyped(t, v, 1, buf, 9, "host-staged ablation")
				r.Send(buf, 0, datatype.Byte, 0, 1)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return elapsed
	}
	offloaded := runOne(false)
	staged := runOne(true)
	if staged < 4*offloaded {
		t.Errorf("host-staged %v not ≫ offloaded %v; ablation shows no offload benefit", staged, offloaded)
	}
}

// The pipeline trace is the executable Figure 3: it must show all five
// stages per chunk and true overlap (packing still running after the
// first chunk is already on the wire).
func TestPipelineTraceShowsOverlap(t *testing.T) {
	v, _ := datatype.Vector(1<<19, 4, 16, datatype.Byte) // 2 MB, 32 chunks
	v.MustCommit()
	trace := &core.PipelineTrace{}
	cfg := cluster.Config{GPUMemBytes: 64 << 20}
	cfg.Core.Trace = trace
	cl := cluster.New(cfg)
	err := cl.Run(func(n *cluster.Node) {
		r := n.Rank
		buf := n.Ctx.MustMalloc(v.Span(1))
		switch r.Rank() {
		case 0:
			fillDev(buf, v.Span(1), 2)
			r.Send(buf, 1, v, 1, 0)
		case 1:
			r.Recv(buf, 1, v, 0, 0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, stage := range []string{"pack", "d2h", "rdma", "h2d", "unpack"} {
		if len(trace.Completions(stage)) == 0 {
			t.Errorf("stage %q missing from trace", stage)
		}
	}
	if got := len(trace.Completions("rdma")); got != 32 {
		t.Errorf("rdma completions = %d, want 32 chunks", got)
	}
	if !trace.Overlapped() {
		t.Error("trace shows no overlap between packing and RDMA")
	}
	// Per chunk, stages complete in data-flow order.
	d2h, rdma, h2d := trace.Completions("d2h"), trace.Completions("rdma"), trace.Completions("h2d")
	for c, at := range rdma {
		if at < d2h[c] {
			t.Errorf("chunk %d: rdma (%v) before d2h (%v)", c, at, d2h[c])
		}
		if h2d[c] < at {
			t.Errorf("chunk %d: h2d (%v) before rdma local completion is plausible but h2d before rdma=%v means data raced", c, h2d[c], at)
		}
	}
	if !strings.Contains(trace.String(), "unpack") {
		t.Error("trace rendering")
	}
}

// GPUDirect mode: identical data, fewer stages. It must beat the staged
// default for large vectors (no PCIe staging hops) while the default stays
// correct on a fabric that forbids device registration.
func TestGPUDirectMode(t *testing.T) {
	v, _ := datatype.Vector(1<<19, 4, 16, datatype.Byte) // 2 MB packed
	v.MustCommit()
	runOne := func(gdr bool) sim.Time {
		cfg := cluster.Config{GPUMemBytes: 64 << 20, GPUDirect: gdr}
		cl := cluster.New(cfg)
		var elapsed sim.Time
		err := cl.Run(func(n *cluster.Node) {
			r := n.Rank
			buf := n.Ctx.MustMalloc(v.Span(1))
			switch r.Rank() {
			case 0:
				fillDev(buf, v.Span(1), 11)
				t0 := r.Now()
				r.Send(buf, 1, v, 1, 0)
				r.Recv(buf, 0, datatype.Byte, 1, 1)
				elapsed = r.Now() - t0
			case 1:
				r.Recv(buf, 1, v, 0, 0)
				checkTyped(t, v, 1, buf, 11, "gpudirect")
				r.Send(buf, 0, datatype.Byte, 0, 1)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return elapsed
	}
	staged := runOne(false)
	gdr := runOne(true)
	if gdr >= staged {
		t.Errorf("GPUDirect %v not faster than staged %v", gdr, staged)
	}
}

// GPUDirect with a contiguous buffer is fully zero-copy: no device-side
// pack, no staging — only the wire. Latency approaches the raw RDMA time.
func TestGPUDirectContiguousZeroCopy(t *testing.T) {
	const n = 1 << 20
	cfg := cluster.Config{GPUMemBytes: 32 << 20, GPUDirect: true}
	cl := cluster.New(cfg)
	var elapsed sim.Time
	err := cl.Run(func(nd *cluster.Node) {
		r := nd.Rank
		buf := nd.Ctx.MustMalloc(n)
		switch r.Rank() {
		case 0:
			fillDev(buf, n, 3)
			t0 := r.Now()
			r.Send(buf, n, datatype.Byte, 1, 0)
			r.Recv(buf, 0, datatype.Byte, 1, 1)
			elapsed = r.Now() - t0
		case 1:
			r.Recv(buf, n, datatype.Byte, 0, 0)
			b := buf.Bytes(n)
			for i := range b {
				if b[i] != byte(i)*7+3 {
					t.Fatalf("byte %d corrupted", i)
				}
			}
			r.Send(buf, 0, datatype.Byte, 0, 1)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	wire := sim.DurationOf(n, 3.2e9)
	if elapsed > wire*3/2 {
		t.Errorf("zero-copy GDR latency %v exceeds 1.5x wire time %v", elapsed, wire)
	}
	// No copies at all should have hit the devices' PCIe engines.
	for i, nd := range cl.Nodes {
		st := nd.Dev.Stats()
		if st.Bytes[1] != 0 || st.Bytes[0] != 0 { // gpu.D2H, gpu.H2D
			t.Errorf("node %d: PCIe staging traffic in zero-copy mode: %+v", i, st.Bytes)
		}
	}
}

// A host sender running the get protocol can still deliver into a device
// receiver: the receiver pulls into staging and reuses the GPU delivery
// path.
func TestGetProtocolIntoDeviceBuffer(t *testing.T) {
	v, _ := datatype.Vector(32768, 4, 8, datatype.Byte) // 128 KB packed
	v.MustCommit()
	cfg := cluster.Config{GPUMemBytes: 16 << 20}
	cfg.MPI.Rendezvous = mpi.RendezvousGet
	cl := cluster.New(cfg)
	err := cl.Run(func(n *cluster.Node) {
		r := n.Rank
		switch r.Rank() {
		case 0:
			buf := r.AllocHost(v.Span(1))
			fillDev(buf, v.Span(1), 6)
			r.Send(buf, 1, v, 1, 0)
		case 1:
			buf := n.Ctx.MustMalloc(v.Span(1))
			r.Recv(buf, 1, v, 0, 0)
			checkTyped(t, v, 1, buf, 6, "get into device")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
