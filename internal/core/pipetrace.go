package core

import (
	"fmt"
	"sort"
	"strings"

	"mv2sim/internal/obs"
	"mv2sim/internal/sim"
)

// PipelineTrace records per-chunk stage completions of one rendezvous
// transfer — the executable form of the paper's Figure 3 pipeline diagram.
// Install one via Config.Trace before a transfer; each stage that finishes
// appends an event.
//
// PipelineTrace is a thin obs.Tracer: it listens for the five
// pipeline-stage task kinds emitted by the transport and ignores
// everything else, so it can also be added to any obs.Hub directly.
//
// Stages, in data-flow order:
//
//	pack    D2D nc2c   (sender device copy engine)
//	d2h     D2H c2c    (sender PCIe)
//	rdma    RDMA write (wire, local completion)
//	h2d     H2D c2c    (receiver PCIe)
//	unpack  D2D c2nc   (receiver device copy engine)
type PipelineTrace struct {
	Events []StageEvent
}

// StageEvent is one stage completion.
type StageEvent struct {
	Stage string
	Chunk int
	At    sim.Time
}

// stageOfKind maps the transport's task kinds to the trace's stage names.
var stageOfKind = map[string]string{
	obs.KindPack:   "pack",
	obs.KindD2H:    "d2h",
	obs.KindRDMA:   "rdma",
	obs.KindH2D:    "h2d",
	obs.KindUnpack: "unpack",
}

// TaskStart implements obs.Tracer; stage completions are what matter.
func (t *PipelineTrace) TaskStart(obs.Task) {}

// TaskStep implements obs.Tracer.
func (t *PipelineTrace) TaskStep(obs.Task, string) {}

// TaskEnd records the completion of a pipeline-stage task. Only the five
// chunked stage kinds on rank-owned tracks are kept: the ib layer reuses
// the rdma_write kind for its own link tasks (on "hcaN.*" tracks, now
// chunk-tagged for the critical-path analyzer), so the track prefix is the
// transport-task discriminator.
func (t *PipelineTrace) TaskEnd(task obs.Task) {
	if t == nil {
		return
	}
	if stage, ok := stageOfKind[task.Kind]; ok && task.Chunk >= 0 && strings.HasPrefix(task.Where, "rank") {
		t.Events = append(t.Events, StageEvent{stage, task.Chunk, task.End})
	}
}

// CounterSample implements obs.Tracer.
func (t *PipelineTrace) CounterSample(string, sim.Time, float64) {}

// Completions returns the completion times of one stage indexed by chunk.
func (t *PipelineTrace) Completions(stage string) map[int]sim.Time {
	out := map[int]sim.Time{}
	for _, ev := range t.Events {
		if ev.Stage == stage {
			out[ev.Chunk] = ev.At
		}
	}
	return out
}

// Overlapped reports whether the trace shows true pipelining: some chunk's
// later stage completed while an earlier stage of a later chunk was still
// to come — concretely, the last pack completion is later than the first
// RDMA completion (packing continued while data was already on the wire).
func (t *PipelineTrace) Overlapped() bool {
	packs := t.Completions("pack")
	rdmas := t.Completions("rdma")
	if len(packs) < 2 || len(rdmas) == 0 {
		return false
	}
	var lastPack, firstRDMA sim.Time
	first := true
	for _, at := range packs {
		if at > lastPack {
			lastPack = at
		}
	}
	for _, at := range rdmas {
		if first || at < firstRDMA {
			firstRDMA = at
			first = false
		}
	}
	return lastPack > firstRDMA
}

// String renders the trace as a per-chunk table of stage completion times
// in microseconds — a textual Figure 3.
func (t *PipelineTrace) String() string {
	stages := []string{"pack", "d2h", "rdma", "h2d", "unpack"}
	byStage := map[string]map[int]sim.Time{}
	chunkSet := map[int]bool{}
	for _, s := range stages {
		byStage[s] = t.Completions(s)
		for c := range byStage[s] {
			chunkSet[c] = true
		}
	}
	chunks := make([]int, 0, len(chunkSet))
	for c := range chunkSet {
		chunks = append(chunks, c)
	}
	sort.Ints(chunks)

	var sb strings.Builder
	fmt.Fprintf(&sb, "%-6s", "chunk")
	for _, s := range stages {
		fmt.Fprintf(&sb, "%12s", s)
	}
	sb.WriteByte('\n')
	for _, c := range chunks {
		fmt.Fprintf(&sb, "%-6d", c)
		for _, s := range stages {
			if at, ok := byStage[s][c]; ok {
				fmt.Fprintf(&sb, "%10.1fus", at.Micros())
			} else {
				fmt.Fprintf(&sb, "%12s", "-")
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
