package core

import (
	"testing"

	"mv2sim/internal/cuda"
	"mv2sim/internal/datatype"
	"mv2sim/internal/gpu"
	"mv2sim/internal/sim"
)

// measureTailEngines runs the tail chunk's geometry (tailRows rows of
// rowBytes read at pitch) once on each device engine — the same
// measurement cmd/packbench makes for full grid cells — and returns both
// durations. Virtual time is deterministic, so one run per engine is
// exact.
func measureTailEngines(t *testing.T, tailRows, rowBytes, pitch int) (cpy, kern sim.Time) {
	t.Helper()
	e := sim.New()
	dev := gpu.New(e, 0, gpu.Config{MemBytes: tailRows*pitch + tailRows*rowBytes + (1 << 20)})
	ctx := cuda.NewCtx(e, dev)
	src := ctx.MustMalloc(tailRows * pitch)
	dst := ctx.MustMalloc(tailRows * rowBytes)
	e.Spawn("tailbench", func(p *sim.Proc) {
		s := ctx.NewStream()
		t0 := p.Now()
		p.Wait(ctx.Memcpy2DAsync(p, dst, rowBytes, src, pitch, rowBytes, tailRows, s))
		cpy = p.Now() - t0
		t0 = p.Now()
		p.Wait(ctx.LaunchKernel(p, s, tailRows*rowBytes,
			dev.Model().PackKernelRate(tailRows*rowBytes, tailRows), nil))
		kern = p.Now() - t0
	})
	if err := e.Run(); err != nil {
		t.Fatalf("tail measurement run: %v", err)
	}
	e.Shutdown()
	return cpy, kern
}

// TestKernelTailCutMatchesMeasuredBest pins the tail-fallback heuristic
// to measurement: for each candidate tail depth, kernelTailCut must send
// the tail to whichever engine a direct timing of that exact geometry
// shows to be faster (ties to the copy engine, matching the strict
// less-than in KernelPackBeatsCopy).
func TestKernelTailCutMatchesMeasuredBest(t *testing.T) {
	m := gpu.DefaultModel()
	const width, blockSize = 4, 64 << 10
	pitch := 4 * width
	for _, tailRows := range []int{1, 50, 100, 101, 500, blockSize / width / 2} {
		tail := tailRows * width
		size := 2*blockSize + tail
		shape := datatype.Shape2D{Width: width, Pitch: pitch, Rows: size / width}
		cut := kernelTailCut(&m, shape, size, blockSize)
		cpy, kern := measureTailEngines(t, tailRows, width, pitch)
		wantCut := 0
		if cpy <= kern {
			wantCut = size - tail
		}
		if cut != wantCut {
			t.Errorf("tailRows=%d: kernelTailCut = %d, want %d (measured memcpy2d %v vs kernel %v)",
				tailRows, cut, wantCut, cpy, kern)
		}
	}
}

// TestKernelTailCutLegality: no split without a tail, and none when chunk
// boundaries are not row-aligned — the memcpy2D path needs row-aligned
// ranges, so an unaligned geometry must stay on the kernel throughout.
func TestKernelTailCutLegality(t *testing.T) {
	m := gpu.DefaultModel()
	const blockSize = 64 << 10
	aligned := datatype.Shape2D{Width: 4, Pitch: 16, Rows: blockSize / 2}
	if cut := kernelTailCut(&m, aligned, blockSize*2, blockSize); cut != 0 {
		t.Errorf("exact multiple of blockSize: cut = %d, want 0", cut)
	}
	if cut := kernelTailCut(&m, aligned, blockSize/2, blockSize); cut != 0 {
		t.Errorf("single-chunk transfer: cut = %d, want 0", cut)
	}
	// Width 24 does not divide 64 KiB: chunk boundaries split rows, so the
	// copy engine is ineligible for the tail no matter how shallow it is.
	odd := datatype.Shape2D{Width: 24, Pitch: 96, Rows: (2*blockSize + 48) / 24}
	if cut := kernelTailCut(&m, odd, 2*blockSize+48, blockSize); cut != 0 {
		t.Errorf("row-unaligned chunking: cut = %d, want 0", cut)
	}
}
