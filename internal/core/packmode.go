package core

import (
	"fmt"

	"mv2sim/internal/datatype"
	"mv2sim/internal/gpu"
	"mv2sim/internal/ib"
)

// PackMode selects the engine a transfer's stage-1 pack (or stage-5
// unpack) runs on. Three engines compete: the D2D copy engine via
// cudaMemcpy2DAsync (per-row charge, CostModel.DevRow), the GPU compute
// engine via a gather/scatter pack kernel (per-byte rate plus launch
// premium, no row charge), and the HCA's scatter/gather unit, which walks
// the datatype on the NIC itself — no device pack pass and no staging
// copy at all, at a per-segment walk cost (ib.Model, sg.go). Many short
// rows favor the kernel over the copy engine; few enough rows that kernel
// launch + staging overhead dominates favor the NIC. Irregular types
// never use the copy engine — it cannot express them.
//
// The sender's pack and the receiver's unpack are selected independently
// (Config.PackMode / Config.UnpackMode), so a transfer may pack with one
// engine and unpack with another.
type PackMode uint8

const (
	// PackModeAuto compares the three modeled costs for the transfer's
	// steady-state chunk shape and picks the cheapest engine, falling
	// back from the kernel when the compute engine is already occupied
	// by application kernels. The default.
	PackModeAuto PackMode = iota
	// PackModeMemcpy2D pins the copy-engine path (the paper's original
	// design; byte-identical to the pre-PackMode pipeline).
	PackModeMemcpy2D
	// PackModeKernel pins the gather/scatter pack kernel.
	PackModeKernel
	// PackModeNic pins the NIC-offloaded path: the HCA's SGE unit
	// gathers (sender) or scatters (receiver) the datatype directly,
	// skipping that side's pack stage and tbuf staging entirely. Paths
	// with no wire to offload to (eager sends, self-sends) degrade to
	// the modeled-cheaper device engine.
	PackModeNic
)

func (m PackMode) String() string {
	switch m {
	case PackModeAuto:
		return "auto"
	case PackModeMemcpy2D:
		return "memcpy2d"
	case PackModeKernel:
		return "kernel"
	case PackModeNic:
		return "nic"
	default:
		return fmt.Sprintf("packmode(%d)", uint8(m))
	}
}

// ParsePackMode parses a -packmode flag value.
func ParsePackMode(s string) (PackMode, error) {
	switch s {
	case "auto":
		return PackModeAuto, nil
	case "memcpy2d":
		return PackModeMemcpy2D, nil
	case "kernel":
		return PackModeKernel, nil
	case "nic":
		return PackModeNic, nil
	}
	return PackModeAuto, fmt.Errorf("core: unknown pack mode %q (want auto, memcpy2d, kernel or nic)", s)
}

// packEngine is one side's resolved engine choice. plan carries two per
// side: the pipeline engine (which may be engineNic) and the device
// fallback used wherever there is no wire to offload to.
type packEngine uint8

const (
	engineCopy packEngine = iota
	engineKernel
	engineNic
)

// ChoosePackEngine returns the modeled-cheapest engine for packing a
// steady-state chunk of `rows` rows of `rowBytes` bytes read at the given
// pitch. The candidates mirror what packbench -crossover measures per
// point: issue + copy-engine time, issue + pack-kernel time, and the SGE
// engine's gather time (whose posting overhead lives inside GatherCost's
// WQE term, so no separate issue charge applies). Ties break toward the
// earlier engine in memcpy2d < kernel < nic order, matching the sweep's
// best-column computation, so auto agrees with the measured best at
// every grid point by construction.
func ChoosePackEngine(m *gpu.CostModel, ibm ib.Model, rows, rowBytes, pitch int) PackMode {
	bytes := rows * rowBytes
	shape := gpu.CopyShape{Width: rowBytes, Height: rows, DPitch: rowBytes, SPitch: pitch}
	copyCost := m.AsyncIssue + m.CopyCost(gpu.D2D, shape)
	kernCost := m.AsyncIssue + m.PackKernelCost(bytes, rows)
	nicCost := ibm.GatherCost(bytes, rows)
	best, bestCost := PackModeMemcpy2D, copyCost
	if kernCost < bestCost {
		best, bestCost = PackModeKernel, kernCost
	}
	if nicCost < bestCost {
		best = PackModeNic
	}
	return best
}

// resolveEngine resolves one side's PackMode for a uniform 2D transfer
// into the pipeline engine and the device fallback. Auto decides per
// transfer, before any stage is issued, from the three-way modeled cost
// comparison and the compute engine's occupancy at decision time: pack
// kernels share EngineKernel with application compute (e.g. stencil
// interior kernels), so a busy or queued engine strikes the kernel from
// the comparison rather than serializing the pipeline behind compute.
// The fallback is always a device engine — the cheaper of copy and
// kernel under the same contention rule — because the paths that use it
// (eager staging, self-sends, kernel-tail routing) have no wire for the
// NIC to overlap with.
func (t *Transport) resolveEngine(mode PackMode, n1 *NodeGPU, ibm ib.Model, shape datatype.Shape2D, size, blockSize int) (eng, dev packEngine) {
	switch mode {
	case PackModeMemcpy2D:
		return engineCopy, engineCopy
	case PackModeKernel:
		return engineKernel, engineKernel
	}
	// Foreign occupancy only: the transport's own pack kernels in flight
	// (n1.kernOps) mean the engine business is pipeline traffic — e.g. the
	// reverse direction of a bidirectional exchange — which interleaves
	// fine at microsecond granularity. Application kernels, by contrast,
	// hold the engine for whole compute phases.
	ke := n1.Ctx.Device().Engine(gpu.EngineKernel)
	foreign := n1.kernOps == 0 && (ke.InUse() > 0 || ke.QueueLen() > 0)
	chunk := min(blockSize, size)
	rows := max(1, chunk/shape.Width)
	m := n1.Ctx.Model()
	dev = engineCopy
	if !foreign && m.KernelPackBeatsCopy(rows, shape.Width, shape.Pitch) {
		dev = engineKernel
	}
	if mode == PackModeNic {
		return engineNic, dev
	}
	choice := ChoosePackEngine(m, ibm, rows, shape.Width, shape.Pitch)
	if foreign && choice == PackModeKernel {
		// Kernel struck by contention: rerun the comparison over the
		// remaining two engines, same tie-break order.
		bytes := rows * shape.Width
		cs := gpu.CopyShape{Width: shape.Width, Height: rows, DPitch: shape.Width, SPitch: shape.Pitch}
		choice = PackModeMemcpy2D
		if ibm.GatherCost(bytes, rows) < m.AsyncIssue+m.CopyCost(gpu.D2D, cs) {
			choice = PackModeNic
		}
	}
	switch choice {
	case PackModeKernel:
		return engineKernel, dev
	case PackModeNic:
		return engineNic, dev
	default:
		return engineCopy, dev
	}
}

// irregularEngine resolves one side's engine for a type with no uniform
// 2D shape: the copy engine cannot express it, so the choice is kernel
// vs. NIC, compared under auto on the steady-state chunk's segment count
// from the cached plan.
func (t *Transport) irregularEngine(mode PackMode, n1 *NodeGPU, ibm ib.Model, cp *datatype.ChunkPlan) packEngine {
	switch mode {
	case PackModeNic:
		return engineNic
	case PackModeAuto:
		bytes, segs := cp.ChunkLen(0), cp.SegmentCount(0)
		m := n1.Ctx.Model()
		if ibm.GatherCost(bytes, segs) < m.AsyncIssue+m.PackKernelCost(bytes, segs) {
			return engineNic
		}
	}
	return engineKernel
}
