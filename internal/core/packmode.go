package core

import (
	"fmt"

	"mv2sim/internal/datatype"
	"mv2sim/internal/gpu"
)

// PackMode selects the device engine a uniform 2D type's stage-1 pack (or
// stage-5 unpack) runs on: the D2D copy engine via cudaMemcpy2DAsync, or
// the compute engine via a gather/scatter pack kernel. The copy engine
// pays a per-row charge (CostModel.DevRow); the kernel pays a higher
// per-byte rate but no row charge, so many short rows favor the kernel
// and few long rows favor the engine. Irregular types always use the
// kernel — the copy engine cannot express them.
//
// The sender's pack and the receiver's unpack are selected independently
// (Config.PackMode / Config.UnpackMode), so a transfer may pack with one
// engine and unpack with the other.
type PackMode uint8

const (
	// PackModeAuto compares the two modeled costs for the transfer's
	// steady-state chunk shape and picks the cheaper engine, falling back
	// to the copy engine when the compute engine is already occupied by
	// application kernels. The default.
	PackModeAuto PackMode = iota
	// PackModeMemcpy2D pins the copy-engine path (the paper's original
	// design; byte-identical to the pre-PackMode pipeline).
	PackModeMemcpy2D
	// PackModeKernel pins the gather/scatter pack kernel.
	PackModeKernel
)

func (m PackMode) String() string {
	switch m {
	case PackModeAuto:
		return "auto"
	case PackModeMemcpy2D:
		return "memcpy2d"
	case PackModeKernel:
		return "kernel"
	default:
		return fmt.Sprintf("packmode(%d)", uint8(m))
	}
}

// ParsePackMode parses a -packmode flag value.
func ParsePackMode(s string) (PackMode, error) {
	switch s {
	case "auto":
		return PackModeAuto, nil
	case "memcpy2d":
		return PackModeMemcpy2D, nil
	case "kernel":
		return PackModeKernel, nil
	}
	return PackModeAuto, fmt.Errorf("core: unknown pack mode %q (want auto, memcpy2d or kernel)", s)
}

// useKernel resolves one side's engine choice for a uniform 2D transfer.
// Auto decides per transfer, before any stage is issued, from two inputs:
// the modeled cost crossover for the steady-state chunk shape, and the
// compute engine's occupancy at decision time — pack kernels share
// EngineKernel with application compute (e.g. stencil interior kernels),
// so a busy or queued engine sends the pack to the otherwise-idle copy
// engine rather than serializing behind compute.
func (t *Transport) useKernel(mode PackMode, n1 *NodeGPU, shape datatype.Shape2D, size, blockSize int) bool {
	switch mode {
	case PackModeMemcpy2D:
		return false
	case PackModeKernel:
		return true
	}
	// Foreign occupancy only: the transport's own pack kernels in flight
	// (n1.kernOps) mean the engine business is pipeline traffic — e.g. the
	// reverse direction of a bidirectional exchange — which interleaves
	// fine at microsecond granularity. Application kernels, by contrast,
	// hold the engine for whole compute phases.
	eng := n1.Ctx.Device().Engine(gpu.EngineKernel)
	if n1.kernOps == 0 && (eng.InUse() > 0 || eng.QueueLen() > 0) {
		return false
	}
	chunk := min(blockSize, size)
	rows := max(1, chunk/shape.Width)
	return n1.Ctx.Model().KernelPackBeatsCopy(rows, shape.Width, shape.Pitch)
}
