package core

import (
	"fmt"

	"mv2sim/internal/mpi"
	"mv2sim/internal/obs"
	"mv2sim/internal/sim"
)

// This file implements the NIC-offloaded rendezvous pipeline
// (PackMode/UnpackMode = nic): the HCA's scatter/gather unit walks the
// datatype itself, so the offloaded side runs neither a device pack pass
// nor a staging copy — no tbuf, no vbuf, no D2H/H2D stage. What remains
// of the five-stage pipeline on a both-sides-nic transfer is gather →
// wire → scatter, the shape of "Network-Accelerated Non-Contiguous
// Memory Transfers" (Di Girolamo et al.). The SGE unit reaches device
// memory through its own DMA path, so this works on the default
// (non-GPUDirect) fabric; see internal/ib/sg.go.
//
// The two sides are independent: a nic-pack sender interoperates with
// any unpack engine (the wire carries the same packed chunk stream), and
// a nic-unpack receiver accepts chunks from any sender, including host
// ranks.

// sendNic is the sender pipeline with stages 1-2 offloaded: per chunk,
// the HCA gathers the datatype segments in place and streams them to the
// announced slot. Each chunk's rdma-stage span contains its gather task
// (KindNicGather on the rail's nicEngine track) followed by the wire
// task, so critpath can split engine queueing from wire time.
func (t *Transport) sendNic(p *sim.Proc, n1 *NodeGPU, pl plan, req *mpi.Request) {
	r := req.Rank()
	e := r.World().Engine()
	h := t.obsHub(e)
	parent := req.ObsSpan()
	size := pl.size
	blockSize := r.World().Config().BlockSize

	total, chunkBytes := req.AwaitCTS(p)
	if chunkBytes != blockSize {
		panic(fmt.Sprintf("core: receiver chunk size %d != block size %d", chunkBytes, blockSize))
	}
	chunkSent := make([]*sim.Event, total)
	for c := 0; c < total; c++ {
		rail := c % n1.rails
		off := c * chunkBytes
		n := min(chunkBytes, size-off)
		slot := req.AwaitSlot(p, c)
		sent := e.NewEvent(fmt.Sprintf("rank%d.nicchunk%d", r.Rank(), c))
		chunkSent[c] = sent
		sp := h.StartChild(parent, obs.KindRDMA, n1.tracks.rdma[rail], c, n)
		rdma := r.RDMANicChunkRailSpan(req, slot, pl.sgRange(req, off, n), rail, sp)
		if sp.Active() {
			rdma.OnTrigger(sp.End)
		}
		rdma.OnTrigger(sent.Trigger)
	}
	p.WaitAll(chunkSent...)
	req.CompleteSend()
}

// recvNic is the receiver pipeline with stages 4-5 offloaded: the whole
// packed stream's scatter descriptor is registered with the HCA and
// announced in one CTS, and the SGE unit lands each arriving chunk's
// bytes directly in the typed user buffer (KindNicScatter on the rail's
// nicEngine track). A FIN here only drains the protocol — data
// completion is the scatter engine's per-chunk upcall.
func (t *Transport) recvNic(p *sim.Proc, n1 *NodeGPU, pl plan, req *mpi.Request) {
	r := req.Rank()
	e := r.World().Engine()
	size := req.Size()
	total, chunkBytes := r.World().ChunkGeometry(size)
	chunkLen := func(c int) int { return min(chunkBytes, size-c*chunkBytes) }

	scatterDone := make([]*sim.Event, total)
	for c := range scatterDone {
		scatterDone[c] = e.NewEvent(fmt.Sprintf("rank%d.nicscatter%d", r.Rank(), c))
	}
	region := r.HCA().RegisterScatterRegion(pl.sgRange(req, 0, size), chunkBytes, func(chunk int) {
		scatterDone[chunk].Trigger()
	})

	slots := make([]mpi.Slot, total)
	for c := 0; c < total; c++ {
		slots[c] = mpi.Slot{Chunk: c, Rkey: region.Rkey, Off: c * chunkBytes, Len: chunkLen(c)}
	}
	r.SendCTS(req, total, chunkBytes, slots)

	seen := make([]bool, total)
	for done := 0; done < total; done++ {
		c := req.AwaitFin(p)
		if c < 0 || c >= total || seen[c] {
			panic(fmt.Sprintf("core: bogus FIN for chunk %d", c))
		}
		seen[c] = true
	}
	p.WaitAll(scatterDone...)
	r.HCA().Deregister(region)
	req.CompleteRecv()
}
