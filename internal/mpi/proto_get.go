package mpi

import (
	"fmt"

	"mv2sim/internal/mem"
	"mv2sim/internal/sim"
)

// Get-based (receiver-driven) rendezvous, the RGET protocol MVAPICH2
// offers alongside the put-based default. The sender packs and registers
// its data and advertises the rkey in the RTS; the receiver pulls the
// chunks with RDMA reads at its own pace and acknowledges with a DONE
// message. One handshake hop shorter than RTS/CTS/write/FIN, at the cost
// of the sender packing eagerly (no overlap with the handshake).
//
// Host-memory transfers honour Config.Rendezvous; device-buffer transfers
// always use the GPU transport's put pipeline (as in MVAPICH2, where the
// CUDA path is put-based), except that a device-buffer *receiver* matched
// by a get-RTS pulls into host staging and reuses the eager delivery path.

// RendezvousMode selects the large-message protocol for host buffers.
type RendezvousMode uint8

const (
	// RendezvousPut is RTS → CTS(slots) → RDMA writes → FIN (the default,
	// and the paper's protocol).
	RendezvousPut RendezvousMode = iota
	// RendezvousGet is RTS(rkey) → RDMA reads ← DONE.
	RendezvousGet
)

// Wire messages of the get protocol.
type rtsGetMsg struct {
	Src, Tag, Ctx, Size, SendID int
	Rkey                        uint32
}

type doneMsg struct {
	SendID int
}

// sendHostGet runs the sender side: pack (if needed), register, advertise.
// Completion arrives with the DONE message; cleanup runs in its handler.
func (r *Rank) sendHostGet(q *Request) {
	p := r.Proc()
	var packed mem.Ptr
	temp := false
	segs := q.dt.SegmentsOf(q.count)
	if len(segs) == 1 && segs[0].Off == 0 {
		packed = q.buf // zero-copy: expose the user buffer
	} else {
		packed = r.AllocHost(q.size)
		temp = true
		p.Sleep(r.hostPackCost(q.dt, q.count))
		q.dt.Pack(packed, q.buf, q.count)
	}
	region := r.hca.Register(packed, q.size)
	q.onDone = func() {
		r.hca.Deregister(region)
		if temp {
			r.FreeHost(packed)
		}
		q.CompleteSend()
	}
	r.hca.PostSend(q.peer, rtsGetMsg{r.rank, q.tag, q.ctx, q.size, q.id, region.Rkey}, nil)
}

// recvHostGet pulls the advertised data chunk by chunk. Reads are issued
// back to back; they serialize on the sender's response link, giving the
// same wire utilization as the put pipeline.
func (r *Rank) recvHostGet(p *sim.Proc, q *Request) {
	size := q.matchedSize
	total, chunkBytes := r.w.ChunkGeometry(size)

	var landing mem.Ptr
	temp := false
	segs := q.dt.SegmentsOf(q.count)
	if len(segs) == 1 && segs[0].Off == 0 {
		landing = q.buf
	} else {
		landing = r.AllocHost(size)
		temp = true
	}
	reads := make([]*sim.Event, 0, total)
	for c := 0; c < total; c++ {
		off := c * chunkBytes
		n := chunkBytes
		if off+n > size {
			n = size - off
		}
		reads = append(reads, r.hca.RDMARead(landing.Add(off), q.peer, q.srcRkey, off, n))
	}
	p.WaitAll(reads...)
	r.hca.PostSend(q.peer, doneMsg{q.peerID}, nil)
	if temp {
		p.Sleep(r.hostPackCost(q.dt, q.count))
		q.dt.Unpack(q.buf, landing, size/q.dt.Size())
		r.FreeHost(landing)
	}
	q.CompleteRecv()
}

// recvDeviceGet serves a get-RTS whose receive buffer lives in device
// memory: pull into pinned host staging, then hand the packed bytes to the
// GPU transport's delivery path (which unpacks on the device and
// completes the request).
func (r *Rank) recvDeviceGet(p *sim.Proc, q *Request) {
	size := q.matchedSize
	staging := r.AllocHost(size)
	total, chunkBytes := r.w.ChunkGeometry(size)
	reads := make([]*sim.Event, 0, total)
	for c := 0; c < total; c++ {
		off := c * chunkBytes
		n := chunkBytes
		if off+n > size {
			n = size - off
		}
		reads = append(reads, r.hca.RDMARead(staging.Add(off), q.peer, q.srcRkey, off, n))
	}
	p.WaitAll(reads...)
	r.hca.PostSend(q.peer, doneMsg{q.peerID}, nil)
	packed := append([]byte(nil), staging.Bytes(size)...)
	r.FreeHost(staging)
	r.transport().DeliverFromHost(q, packed)
}

// startRecvGet launches the receiver for a matched get-RTS.
func (r *Rank) startRecvGet(q *Request, from, tag, size, sendID int, rkey uint32) {
	q.setMatched(from, tag, size)
	q.peer = from
	q.peerID = sendID
	q.srcRkey = rkey
	r.w.e.Spawn(fmt.Sprintf("rank%d.getrecv%d", r.rank, q.id), func(p *sim.Proc) {
		if q.buf.IsDevice() {
			r.recvDeviceGet(p, q)
		} else {
			r.recvHostGet(p, q)
		}
	})
}

// dispatchRTSGet handles an arriving get-RTS: match or queue unexpected.
func (r *Rank) dispatchRTSGet(m rtsGetMsg) {
	r.stats.RndvRecvd++
	if q := r.matchPosted(m.Src, m.Tag, m.Ctx); q != nil {
		r.startRecvGet(q, m.Src, m.Tag, m.Size, m.SendID, m.Rkey)
		return
	}
	r.stats.Unexpected++
	r.unexpected = append(r.unexpected, &inbound{
		from: m.Src, tag: m.Tag, ctx: m.Ctx, size: m.Size,
		sendID: m.SendID, isRts: true, isGet: true, rkey: m.Rkey,
	})
	r.notifyArrival()
}
