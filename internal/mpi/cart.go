package mpi

import "fmt"

// ProcNull is MPI_PROC_NULL: communication with it completes immediately
// and moves no data. Shift returns it at non-periodic grid boundaries, so
// stencil codes need no edge special-casing.
const ProcNull = -2

// CartComm is a communicator with Cartesian process topology
// (MPI_Cart_create), the natural structure for the paper's Stencil2D
// process grids.
type CartComm struct {
	*Comm
	dims    []int
	periods []bool
}

// CartCreate builds a Cartesian topology over this communicator's members
// in rank order (row-major, like MPI with reorder=false). The product of
// dims must equal the communicator size.
func (c *Comm) CartCreate(dims []int, periods []bool) *CartComm {
	if len(dims) == 0 || len(dims) != len(periods) {
		panic("mpi: CartCreate dims/periods mismatch")
	}
	n := 1
	for _, d := range dims {
		if d <= 0 {
			panic("mpi: CartCreate with non-positive dimension")
		}
		n *= d
	}
	if n != c.Size() {
		panic(fmt.Sprintf("mpi: Cartesian grid %v has %d cells, communicator has %d ranks", dims, n, c.Size()))
	}
	return &CartComm{
		Comm:    c,
		dims:    append([]int(nil), dims...),
		periods: append([]bool(nil), periods...),
	}
}

// Dims returns the grid dimensions.
func (cc *CartComm) Dims() []int { return append([]int(nil), cc.dims...) }

// Coords returns the Cartesian coordinates of a communicator rank
// (MPI_Cart_coords).
func (cc *CartComm) Coords(rank int) []int {
	if rank < 0 || rank >= cc.Size() {
		panic(fmt.Sprintf("mpi: Coords of rank %d outside grid", rank))
	}
	coords := make([]int, len(cc.dims))
	for d := len(cc.dims) - 1; d >= 0; d-- {
		coords[d] = rank % cc.dims[d]
		rank /= cc.dims[d]
	}
	return coords
}

// CartRank returns the communicator rank at the given coordinates
// (MPI_Cart_rank). Coordinates out of range on a periodic dimension wrap;
// on a non-periodic dimension they panic.
func (cc *CartComm) CartRank(coords []int) int {
	if len(coords) != len(cc.dims) {
		panic("mpi: CartRank coordinate arity mismatch")
	}
	rank := 0
	for d, x := range coords {
		if x < 0 || x >= cc.dims[d] {
			if !cc.periods[d] {
				panic(fmt.Sprintf("mpi: coordinate %d out of range on non-periodic dim %d", x, d))
			}
			x = ((x % cc.dims[d]) + cc.dims[d]) % cc.dims[d]
		}
		rank = rank*cc.dims[d] + x
	}
	return rank
}

// Shift returns the source and destination ranks for a shift of disp along
// dim (MPI_Cart_shift): src is the rank that would send to this process,
// dst is the rank this process would send to. At a non-periodic boundary
// the corresponding value is ProcNull.
func (cc *CartComm) Shift(dim, disp int) (src, dst int) {
	if dim < 0 || dim >= len(cc.dims) {
		panic(fmt.Sprintf("mpi: Shift on dimension %d of %d-d grid", dim, len(cc.dims)))
	}
	me := cc.Coords(cc.Rank())
	neighbor := func(d int) int {
		c := append([]int(nil), me...)
		c[dim] += d
		if c[dim] < 0 || c[dim] >= cc.dims[dim] {
			if !cc.periods[dim] {
				return ProcNull
			}
		}
		return cc.CartRank(c)
	}
	return neighbor(-disp), neighbor(disp)
}
