package mpi

import (
	"mv2sim/internal/datatype"
	"mv2sim/internal/mem"
)

// PRequest is a persistent communication request (MPI_Send_init /
// MPI_Recv_init): the communication parameters are bound once, and each
// Start fires one operation with them. Stencil codes use persistent
// requests to avoid re-validating arguments every iteration.
type PRequest struct {
	r     *Rank
	kind  ReqKind
	buf   mem.Ptr
	dt    *datatype.Datatype
	count int
	peer  int
	tag   int
	cur   *Request // the active operation, nil when inactive
}

// SendInit creates an inactive persistent send (MPI_Send_init).
func (r *Rank) SendInit(buf mem.Ptr, count int, dt *datatype.Datatype, dest, tag int) *PRequest {
	checkType(dt, count)
	return &PRequest{r: r, kind: SendReq, buf: buf, dt: dt, count: count, peer: dest, tag: tag}
}

// RecvInit creates an inactive persistent receive (MPI_Recv_init).
func (r *Rank) RecvInit(buf mem.Ptr, count int, dt *datatype.Datatype, source, tag int) *PRequest {
	checkType(dt, count)
	return &PRequest{r: r, kind: RecvReq, buf: buf, dt: dt, count: count, peer: source, tag: tag}
}

// Start activates the request (MPI_Start). Starting an already-active
// request panics, as in MPI.
func (pq *PRequest) Start() {
	if pq.cur != nil && !pq.cur.Done() {
		panic("mpi: Start on an active persistent request")
	}
	if pq.kind == SendReq {
		pq.cur = pq.r.Isend(pq.buf, pq.count, pq.dt, pq.peer, pq.tag)
	} else {
		pq.cur = pq.r.Irecv(pq.buf, pq.count, pq.dt, pq.peer, pq.tag)
	}
}

// Startall activates a set of persistent requests (MPI_Startall).
func Startall(pqs ...*PRequest) {
	for _, pq := range pqs {
		pq.Start()
	}
}

// Wait blocks until the active operation completes and deactivates the
// request, returning the receive status (zero Status for sends).
func (pq *PRequest) Wait() Status {
	if pq.cur == nil {
		panic("mpi: Wait on an inactive persistent request")
	}
	st := pq.r.Wait(pq.cur)
	return st
}

// Test reports whether the active operation has completed.
func (pq *PRequest) Test() (bool, Status) {
	if pq.cur == nil {
		panic("mpi: Test on an inactive persistent request")
	}
	return pq.r.Test(pq.cur)
}

// Waitall waits for a set of persistent requests.
func (r *Rank) WaitallPersistent(pqs ...*PRequest) {
	for _, pq := range pqs {
		pq.Wait()
	}
}
