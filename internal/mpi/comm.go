package mpi

import (
	"fmt"
	"sort"

	"mv2sim/internal/datatype"
	"mv2sim/internal/mem"
)

// Comm is a communicator: an ordered group of ranks with an isolated
// matching context, like MPI_Comm. Each member holds its own *Comm value
// (communicators are process-local handles in MPI too).
//
// Point-to-point and collective traffic on different communicators can
// never match each other: each communicator owns two context IDs, one for
// application point-to-point traffic and one for its collectives.
type Comm struct {
	r       *Rank
	ctxP2P  int
	ctxColl int
	members []int // world ranks, indexed by communicator rank
	myRank  int   // this process's rank within the communicator
}

// Comm returns this process's handle for MPI_COMM_WORLD.
func (r *Rank) Comm() *Comm {
	members := make([]int, len(r.w.ranks))
	for i := range members {
		members[i] = i
	}
	return &Comm{r: r, ctxP2P: ctxPt2pt, ctxColl: ctxColl, members: members, myRank: r.rank}
}

// Rank returns the calling process's rank within the communicator.
func (c *Comm) Rank() int { return c.myRank }

// Size returns the number of members.
func (c *Comm) Size() int { return len(c.members) }

// WorldRank translates a communicator rank to a world rank.
func (c *Comm) WorldRank(commRank int) int {
	if commRank < 0 || commRank >= len(c.members) {
		panic(fmt.Sprintf("mpi: rank %d outside communicator of size %d", commRank, len(c.members)))
	}
	return c.members[commRank]
}

// commRankOf translates a world rank to a communicator rank (-1 if not a
// member).
func (c *Comm) commRankOf(world int) int {
	for i, w := range c.members {
		if w == world {
			return i
		}
	}
	return -1
}

// ---------------------------------------------------------------------------
// Point-to-point on a communicator

// Send is MPI_Send on this communicator; dest is a communicator rank.
func (c *Comm) Send(buf mem.Ptr, count int, dt *datatype.Datatype, dest, tag int) {
	q := c.Isend(buf, count, dt, dest, tag)
	c.r.Proc().Wait(q.done)
}

// Recv is MPI_Recv on this communicator; source may be AnySource.
func (c *Comm) Recv(buf mem.Ptr, count int, dt *datatype.Datatype, source, tag int) Status {
	q := c.Irecv(buf, count, dt, source, tag)
	c.r.Proc().Wait(q.done)
	return q.status
}

// Isend is MPI_Isend on this communicator. dest may be ProcNull.
func (c *Comm) Isend(buf mem.Ptr, count int, dt *datatype.Datatype, dest, tag int) *Request {
	if dest == ProcNull {
		return c.r.nullRequest(SendReq)
	}
	return c.r.isend(buf, count, dt, c.WorldRank(dest), tag, c.ctxP2P)
}

// Irecv is MPI_Irecv on this communicator. source may be ProcNull or
// AnySource.
func (c *Comm) Irecv(buf mem.Ptr, count int, dt *datatype.Datatype, source, tag int) *Request {
	if source == ProcNull {
		return c.r.nullRequest(RecvReq)
	}
	src := AnySource
	if source != AnySource {
		src = c.WorldRank(source)
	}
	return c.r.irecv(buf, count, dt, src, tag, c.ctxP2P)
}

// Sendrecv is MPI_Sendrecv on this communicator.
func (c *Comm) Sendrecv(
	sendBuf mem.Ptr, sendCount int, sendType *datatype.Datatype, dest, sendTag int,
	recvBuf mem.Ptr, recvCount int, recvType *datatype.Datatype, source, recvTag int,
) Status {
	rq := c.Irecv(recvBuf, recvCount, recvType, source, recvTag)
	sq := c.Isend(sendBuf, sendCount, sendType, dest, sendTag)
	c.r.Proc().Wait(sq.done)
	c.r.Proc().Wait(rq.done)
	return rq.status
}

// ---------------------------------------------------------------------------
// Split

// Split partitions the communicator (MPI_Comm_split): members with equal
// color form a new communicator, ordered by (key, old rank). color < 0
// (MPI_UNDEFINED) yields a nil communicator for that caller.
//
// Split is collective: every member must call it. Rank 0 of the parent
// gathers (color, key) pairs, assigns fresh context IDs, and broadcasts
// the assignment, so all members agree on membership and contexts.
func (c *Comm) Split(color, key int) *Comm {
	n := c.Size()
	me := c.Rank()
	// Gather (color, key) to parent rank 0 over the collective context.
	pairs := make([][2]int, n)
	if me == 0 {
		pairs[0] = [2]int{color, key}
		buf := c.r.AllocHost(16)
		for src := 1; src < n; src++ {
			st := c.r.recvColl(buf, 16, c, AnySource, collTagBase+10)
			from := c.commRankOf(st.Source)
			pairs[from] = [2]int{readInt(buf, 0), readInt(buf, 8)}
		}
		c.r.FreeHost(buf)
	} else {
		buf := c.r.AllocHost(16)
		writeInt(buf, 0, color)
		writeInt(buf, 8, key)
		c.r.sendColl(buf, 16, c, 0, collTagBase+10)
		c.r.FreeHost(buf)
	}

	// Rank 0 computes groups and context IDs, then broadcasts:
	// layout per member: [newCtxP2P, newCtxColl, newSize, members...].
	const maxGroup = 1024
	plan := c.r.AllocHost((3 + maxGroup) * 8)
	defer c.r.FreeHost(plan)
	var newComm *Comm
	if me == 0 {
		// Group members by color, order by (key, old rank).
		groups := map[int][]int{}
		for oldRank, p := range pairs {
			if p[0] < 0 {
				continue
			}
			groups[p[0]] = append(groups[p[0]], oldRank)
		}
		colors := make([]int, 0, len(groups))
		for col := range groups {
			colors = append(colors, col)
		}
		sort.Ints(colors)
		ctxByColor := map[int][2]int{}
		for _, col := range colors {
			g := groups[col]
			sort.SliceStable(g, func(i, j int) bool {
				if pairs[g[i]][1] != pairs[g[j]][1] {
					return pairs[g[i]][1] < pairs[g[j]][1]
				}
				return g[i] < g[j]
			})
			groups[col] = g
			ctxByColor[col] = [2]int{c.r.w.allocCtx(), c.r.w.allocCtx()}
		}
		// Send each member its plan (and build rank 0's own).
		for oldRank := n - 1; oldRank >= 0; oldRank-- {
			p := pairs[oldRank]
			var group []int
			var ctxs [2]int
			if p[0] >= 0 {
				group = groups[p[0]]
				ctxs = ctxByColor[p[0]]
			}
			if len(group) > maxGroup {
				panic("mpi: Split group exceeds plan buffer")
			}
			writeInt(plan, 0, ctxs[0])
			writeInt(plan, 8, ctxs[1])
			writeInt(plan, 16, len(group))
			for i, g := range group {
				writeInt(plan, 24+8*i, c.members[g]) // world ranks
			}
			if oldRank == 0 {
				newComm = c.buildFromPlan(plan)
				continue
			}
			c.r.sendColl(plan, (3+len(group))*8, c, oldRank, collTagBase+11)
		}
	} else {
		c.r.recvColl(plan, (3+maxGroup)*8, c, 0, collTagBase+11)
		newComm = c.buildFromPlan(plan)
	}
	return newComm
}

// buildFromPlan decodes a Split plan buffer into this process's handle.
func (c *Comm) buildFromPlan(plan mem.Ptr) *Comm {
	size := readInt(plan, 16)
	if size == 0 {
		return nil // MPI_COMM_NULL
	}
	nc := &Comm{
		r:       c.r,
		ctxP2P:  readInt(plan, 0),
		ctxColl: readInt(plan, 8),
		members: make([]int, size),
		myRank:  -1,
	}
	for i := 0; i < size; i++ {
		nc.members[i] = readInt(plan, 24+8*i)
		if nc.members[i] == c.r.rank {
			nc.myRank = i
		}
	}
	if nc.myRank < 0 {
		panic("mpi: Split plan does not contain the caller")
	}
	return nc
}

// Dup duplicates the communicator with fresh contexts (MPI_Comm_dup).
// Collective over the members.
func (c *Comm) Dup() *Comm {
	return c.Split(0, c.Rank())
}

// allocCtx hands out a fresh context ID pair element. Only called by the
// Split root, which distributes the result, so all members stay agreed.
func (w *World) allocCtx() int {
	if w.nextCtx == 0 {
		w.nextCtx = 2 // 0 and 1 are the world contexts
	}
	w.nextCtx++
	return w.nextCtx
}

// sendColl/recvColl are internal fixed-size byte exchanges on a
// communicator's collective context.
func (r *Rank) sendColl(buf mem.Ptr, n int, c *Comm, dest, tag int) {
	q := r.isend(buf, n, datatype.Byte, c.WorldRank(dest), tag, c.ctxColl)
	r.Proc().Wait(q.done)
}

func (r *Rank) recvColl(buf mem.Ptr, n int, c *Comm, source, tag int) Status {
	src := source
	if source != AnySource {
		src = c.WorldRank(source)
	}
	q := r.irecv(buf, n, datatype.Byte, src, tag, c.ctxColl)
	r.Proc().Wait(q.done)
	return q.status
}

func readInt(p mem.Ptr, off int) int {
	b := p.Add(off).Bytes(8)
	v := uint64(0)
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return int(int64(v))
}

func writeInt(p mem.Ptr, off, v int) {
	b := p.Add(off).Bytes(8)
	u := uint64(int64(v))
	for i := 0; i < 8; i++ {
		b[i] = byte(u >> (8 * i))
	}
}
