package mpi

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"mv2sim/internal/datatype"
	"mv2sim/internal/ib"
	"mv2sim/internal/mem"
	"mv2sim/internal/sim"
)

// testWorld assembles n host-only ranks on one fabric.
func testWorld(n int) (sim.Engine, *World) {
	e := sim.New()
	fabric := ib.NewFabric(e, ib.Model{})
	w := NewWorld(e, Config{})
	for i := 0; i < n; i++ {
		w.AddRank(fabric.NewHCA(i), mem.NewHostSpace(fmt.Sprintf("host%d", i), 64<<20))
	}
	return e, w
}

// run launches fn on all ranks and executes to completion.
func run(t *testing.T, n int, fn func(r *Rank)) *World {
	t.Helper()
	e, w := testWorld(n)
	w.Launch(fn)
	if err := e.Run(); err != nil {
		t.Fatalf("simulation did not drain: %v", err)
	}
	return w
}

func fillPattern(p mem.Ptr, n int, seed byte) {
	mem.Fill(p, n, func(i int) byte { return byte(i)*3 + seed })
}

func checkPattern(t *testing.T, p mem.Ptr, n int, seed byte, what string) {
	t.Helper()
	b := p.Bytes(n)
	for i := 0; i < n; i++ {
		if b[i] != byte(i)*3+seed {
			t.Fatalf("%s: byte %d = %d, want %d", what, i, b[i], byte(i)*3+seed)
		}
	}
}

func TestEagerSendRecv(t *testing.T) {
	const n = 1024 // well under the eager limit
	run(t, 2, func(r *Rank) {
		buf := r.AllocHost(n)
		switch r.Rank() {
		case 0:
			fillPattern(buf, n, 7)
			r.Send(buf, n, datatype.Byte, 1, 42)
		case 1:
			st := r.Recv(buf, n, datatype.Byte, 0, 42)
			if st.Source != 0 || st.Tag != 42 || st.Bytes != n {
				t.Errorf("status = %+v", st)
			}
			checkPattern(t, buf, n, 7, "eager recv")
		}
	})
}

func TestRendezvousSendRecv(t *testing.T) {
	const n = 1 << 20 // rendezvous
	w := run(t, 2, func(r *Rank) {
		buf := r.AllocHost(n)
		switch r.Rank() {
		case 0:
			fillPattern(buf, n, 9)
			r.Send(buf, n, datatype.Byte, 1, 5)
		case 1:
			st := r.Recv(buf, n, datatype.Byte, 0, 5)
			if st.Bytes != n {
				t.Errorf("bytes = %d", st.Bytes)
			}
			checkPattern(t, buf, n, 9, "rendezvous recv")
		}
	})
	if st := w.Rank(0).Stats(); st.RndvSent != 1 {
		t.Errorf("sender stats = %+v, want one rendezvous", st)
	}
}

func TestRendezvousTakesLongerThanEager(t *testing.T) {
	timeFor := func(n int) sim.Time {
		e, w := testWorld(2)
		var elapsed sim.Time
		w.Launch(func(r *Rank) {
			buf := r.AllocHost(n)
			if r.Rank() == 0 {
				t0 := r.Now()
				r.Send(buf, n, datatype.Byte, 1, 0)
				r.Recv(buf, 1, datatype.Byte, 1, 1)
				elapsed = r.Now() - t0
			} else {
				r.Recv(buf, n, datatype.Byte, 0, 0)
				r.Send(buf, 1, datatype.Byte, 0, 1)
			}
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return elapsed
	}
	small, large := timeFor(1024), timeFor(1<<22)
	if large < 10*small {
		t.Errorf("4MB round trip %v not ≫ 1KB %v", large, small)
	}
}

func TestVectorDatatypeTransfer(t *testing.T) {
	// Send a strided column, receive into a different stride.
	vsend, _ := datatype.Vector(64, 4, 16, datatype.Byte)
	vsend.MustCommit()
	vrecv, _ := datatype.Vector(64, 4, 32, datatype.Byte)
	vrecv.MustCommit()
	run(t, 2, func(r *Rank) {
		switch r.Rank() {
		case 0:
			buf := r.AllocHost(vsend.Span(1))
			fillPattern(buf, vsend.Span(1), 1)
			r.Send(buf, 1, vsend, 1, 0)
		case 1:
			buf := r.AllocHost(vrecv.Span(1))
			r.Recv(buf, 1, vrecv, 0, 0)
			// Verify pack-equivalence: packed(recv) == packed(send pattern).
			got := make([]byte, vrecv.Size())
			vrecv.PackBytes(got, buf, 1)
			want := make([]byte, vsend.Size())
			src := mem.NewHostSpace("ref", vsend.Span(1))
			fillPattern(src.Base(), vsend.Span(1), 1)
			vsend.PackBytes(want, src.Base(), 1)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("typed transfer byte %d: got %d want %d", i, got[i], want[i])
				}
			}
		}
	})
}

func TestLargeNonContiguousRendezvous(t *testing.T) {
	// Non-contiguous on both sides, above the eager limit: exercises the
	// temp-buffer pack path and the chunked CTS.
	v, _ := datatype.Vector(32768, 4, 8, datatype.Byte) // 128 KB packed
	v.MustCommit()
	run(t, 2, func(r *Rank) {
		buf := r.AllocHost(v.Span(1))
		switch r.Rank() {
		case 0:
			fillPattern(buf, v.Span(1), 3)
			r.Send(buf, 1, v, 1, 0)
		case 1:
			r.Recv(buf, 1, v, 0, 0)
			for _, s := range v.SegmentsOf(1) {
				b := buf.Add(s.Off).Bytes(s.Len)
				for i := range b {
					if b[i] != byte(s.Off+i)*3+3 {
						t.Fatalf("segment %+v byte %d wrong", s, i)
					}
				}
			}
		}
	})
}

func TestUnexpectedMessageQueue(t *testing.T) {
	// Receiver posts late: the message waits in the unexpected queue.
	w := run(t, 2, func(r *Rank) {
		buf := r.AllocHost(4096)
		switch r.Rank() {
		case 0:
			fillPattern(buf, 4096, 2)
			r.Send(buf, 4096, datatype.Byte, 1, 8)
		case 1:
			r.Proc().Sleep(10 * sim.Millisecond)
			r.Recv(buf, 4096, datatype.Byte, 0, 8)
			checkPattern(t, buf, 4096, 2, "late recv")
		}
	})
	if st := w.Rank(1).Stats(); st.Unexpected != 1 {
		t.Errorf("unexpected count = %d, want 1", st.Unexpected)
	}
}

func TestUnexpectedRendezvous(t *testing.T) {
	// RTS arrives before the receive is posted.
	const n = 1 << 18
	run(t, 2, func(r *Rank) {
		buf := r.AllocHost(n)
		switch r.Rank() {
		case 0:
			fillPattern(buf, n, 4)
			r.Send(buf, n, datatype.Byte, 1, 0)
		case 1:
			r.Proc().Sleep(20 * sim.Millisecond)
			r.Recv(buf, n, datatype.Byte, 0, 0)
			checkPattern(t, buf, n, 4, "late rendezvous")
		}
	})
}

func TestMessageOrderingSameTag(t *testing.T) {
	// MPI non-overtaking: two messages with the same envelope arrive in
	// send order.
	run(t, 2, func(r *Rank) {
		a, b := r.AllocHost(64), r.AllocHost(64)
		switch r.Rank() {
		case 0:
			fillPattern(a, 64, 10)
			fillPattern(b, 64, 20)
			r.Send(a, 64, datatype.Byte, 1, 0)
			r.Send(b, 64, datatype.Byte, 1, 0)
		case 1:
			r.Recv(a, 64, datatype.Byte, 0, 0)
			r.Recv(b, 64, datatype.Byte, 0, 0)
			checkPattern(t, a, 64, 10, "first")
			checkPattern(t, b, 64, 20, "second")
		}
	})
}

func TestTagSelectivity(t *testing.T) {
	run(t, 2, func(r *Rank) {
		a, b := r.AllocHost(64), r.AllocHost(64)
		switch r.Rank() {
		case 0:
			fillPattern(a, 64, 10)
			fillPattern(b, 64, 20)
			r.Send(a, 64, datatype.Byte, 1, 111)
			r.Send(b, 64, datatype.Byte, 1, 222)
		case 1:
			// Receive them in reverse tag order.
			r.Recv(b, 64, datatype.Byte, 0, 222)
			r.Recv(a, 64, datatype.Byte, 0, 111)
			checkPattern(t, a, 64, 10, "tag111")
			checkPattern(t, b, 64, 20, "tag222")
		}
	})
}

func TestAnySourceAnyTag(t *testing.T) {
	run(t, 3, func(r *Rank) {
		buf := r.AllocHost(64)
		switch r.Rank() {
		case 0:
			fillPattern(buf, 64, 1)
			r.Send(buf, 64, datatype.Byte, 2, 7)
		case 1:
			fillPattern(buf, 64, 2)
			r.Proc().Sleep(sim.Millisecond)
			r.Send(buf, 64, datatype.Byte, 2, 9)
		case 2:
			st1 := r.Recv(buf, 64, datatype.Byte, AnySource, AnyTag)
			st2 := r.Recv(buf, 64, datatype.Byte, AnySource, AnyTag)
			if st1.Source == st2.Source {
				t.Errorf("same source twice: %+v %+v", st1, st2)
			}
			got := map[int]int{st1.Source: st1.Tag, st2.Source: st2.Tag}
			if got[0] != 7 || got[1] != 9 {
				t.Errorf("statuses: %+v %+v", st1, st2)
			}
		}
	})
}

func TestIsendIrecvOverlap(t *testing.T) {
	// Both directions in flight simultaneously complete without deadlock.
	const n = 1 << 20
	run(t, 2, func(r *Rank) {
		tx, rx := r.AllocHost(n), r.AllocHost(n)
		peer := 1 - r.Rank()
		fillPattern(tx, n, byte(10*r.Rank()))
		rq := r.Irecv(rx, n, datatype.Byte, peer, 0)
		sq := r.Isend(tx, n, datatype.Byte, peer, 0)
		r.Waitall(rq, sq)
		checkPattern(t, rx, n, byte(10*peer), "exchange")
	})
}

func TestTestPolling(t *testing.T) {
	run(t, 2, func(r *Rank) {
		buf := r.AllocHost(1 << 20)
		switch r.Rank() {
		case 0:
			r.Proc().Sleep(sim.Millisecond)
			r.Send(buf, 1<<20, datatype.Byte, 1, 0)
		case 1:
			q := r.Irecv(buf, 1<<20, datatype.Byte, 0, 0)
			polls := 0
			for {
				ok, st := r.Test(q)
				if ok {
					if st.Bytes != 1<<20 {
						t.Errorf("status = %+v", st)
					}
					break
				}
				polls++
				r.Proc().Sleep(100 * sim.Microsecond)
			}
			if polls == 0 {
				t.Error("Test returned true immediately for an in-flight rendezvous")
			}
		}
	})
}

func TestSendrecvExchange(t *testing.T) {
	run(t, 2, func(r *Rank) {
		tx, rx := r.AllocHost(4096), r.AllocHost(4096)
		peer := 1 - r.Rank()
		fillPattern(tx, 4096, byte(5+r.Rank()))
		st := r.Sendrecv(tx, 4096, datatype.Byte, peer, 3, rx, 4096, datatype.Byte, peer, 3)
		if st.Source != peer {
			t.Errorf("status = %+v", st)
		}
		checkPattern(t, rx, 4096, byte(5+peer), "sendrecv")
	})
}

func TestSelfSend(t *testing.T) {
	for _, n := range []int{64, 1 << 20} {
		n := n
		run(t, 1, func(r *Rank) {
			tx, rx := r.AllocHost(n), r.AllocHost(n)
			fillPattern(tx, n, 6)
			q := r.Irecv(rx, n, datatype.Byte, 0, 1)
			r.Send(tx, n, datatype.Byte, 0, 1)
			r.Wait(q)
			checkPattern(t, rx, n, 6, fmt.Sprintf("self %dB", n))
		})
	}
}

func TestZeroByteMessage(t *testing.T) {
	run(t, 2, func(r *Rank) {
		buf := r.AllocHost(64)
		switch r.Rank() {
		case 0:
			r.Send(buf, 0, datatype.Byte, 1, 0)
		case 1:
			st := r.Recv(buf, 0, datatype.Byte, 0, 0)
			if st.Bytes != 0 {
				t.Errorf("bytes = %d", st.Bytes)
			}
		}
	})
}

func TestPartialReceive(t *testing.T) {
	// Receiving fewer bytes than the posted capacity is legal.
	run(t, 2, func(r *Rank) {
		buf := r.AllocHost(1024)
		switch r.Rank() {
		case 0:
			fillPattern(buf, 100, 3)
			r.Send(buf, 100, datatype.Byte, 1, 0)
		case 1:
			st := r.Recv(buf, 1024, datatype.Byte, 0, 0)
			if st.Bytes != 100 {
				t.Errorf("bytes = %d, want 100", st.Bytes)
			}
			checkPattern(t, buf, 100, 3, "partial")
		}
	})
}

func TestTruncationPanics(t *testing.T) {
	e, w := testWorld(2)
	w.Launch(func(r *Rank) {
		buf := r.AllocHost(1024)
		switch r.Rank() {
		case 0:
			r.Send(buf, 512, datatype.Byte, 1, 0)
		case 1:
			r.Recv(buf, 64, datatype.Byte, 0, 0)
		}
	})
	defer func() {
		if recover() == nil {
			t.Error("truncation did not panic")
		}
	}()
	_ = e.Run()
}

func TestDeviceBufferWithoutTransportPanics(t *testing.T) {
	e, w := testWorld(2)
	dev := mem.NewDeviceSpace("gpu0", 0, 4096)
	w.Launch(func(r *Rank) {
		if r.Rank() == 0 {
			r.Send(dev.Base(), 64, datatype.Byte, 1, 0)
		}
	})
	defer func() {
		if recover() == nil {
			t.Error("device buffer without transport did not panic")
		}
	}()
	_ = e.Run()
}

func TestUncommittedTypePanics(t *testing.T) {
	e, w := testWorld(2)
	v, _ := datatype.Vector(2, 1, 2, datatype.Byte)
	w.Launch(func(r *Rank) {
		if r.Rank() == 0 {
			r.Send(r.AllocHost(64), 1, v, 1, 0)
		}
	})
	defer func() {
		if recover() == nil {
			t.Error("uncommitted type did not panic")
		}
	}()
	_ = e.Run()
}

func TestBarrierSynchronizes(t *testing.T) {
	for _, n := range []int{2, 3, 8} {
		n := n
		var exitTimes []sim.Time
		var minArrival sim.Time
		run(t, n, func(r *Rank) {
			// Stagger arrivals; nobody may leave before the last arrives.
			arrival := sim.Time(r.Rank()) * sim.Millisecond
			r.Proc().Sleep(arrival)
			if arrival > minArrival {
				minArrival = arrival
			}
			r.Barrier()
			exitTimes = append(exitTimes, r.Now())
		})
		for _, et := range exitTimes {
			if et < minArrival {
				t.Errorf("n=%d: rank left barrier at %v before last arrival %v", n, et, minArrival)
			}
		}
		if len(exitTimes) != n {
			t.Errorf("n=%d: %d ranks completed", n, len(exitTimes))
		}
	}
}

func TestBcast(t *testing.T) {
	for _, root := range []int{0, 2} {
		root := root
		run(t, 5, func(r *Rank) {
			buf := r.AllocHost(4096)
			if r.Rank() == root {
				fillPattern(buf, 4096, 9)
			}
			r.Bcast(buf, 4096, datatype.Byte, root)
			checkPattern(t, buf, 4096, 9, fmt.Sprintf("bcast root %d rank %d", root, r.Rank()))
		})
	}
}

func TestReduceSum(t *testing.T) {
	const count = 16
	run(t, 4, func(r *Rank) {
		in, out := r.AllocHost(count*8), r.AllocHost(count*8)
		vals := make([]float64, count)
		for i := range vals {
			vals[i] = float64(r.Rank()+1) * float64(i+1)
		}
		writeF64(in, vals)
		r.Reduce(in, out, count, OpSum, 0)
		if r.Rank() == 0 {
			got := make([]float64, count)
			readF64(out, got)
			for i := range got {
				want := float64(1+2+3+4) * float64(i+1)
				if got[i] != want {
					t.Errorf("reduce[%d] = %v, want %v", i, got[i], want)
				}
			}
		}
	})
}

func TestAllreduceMax(t *testing.T) {
	run(t, 6, func(r *Rank) {
		in, out := r.AllocHost(8), r.AllocHost(8)
		writeF64(in, []float64{float64(r.Rank() * 10)})
		r.Allreduce(in, out, 1, OpMax)
		got := make([]float64, 1)
		readF64(out, got)
		if got[0] != 50 {
			t.Errorf("rank %d allreduce = %v, want 50", r.Rank(), got[0])
		}
	})
}

func TestGather(t *testing.T) {
	const count = 8
	run(t, 4, func(r *Rank) {
		in := r.AllocHost(count)
		mem.Fill(in, count, func(i int) byte { return byte(r.Rank()*100 + i) })
		var out mem.Ptr
		if r.Rank() == 1 {
			out = r.AllocHost(4 * count)
		}
		r.Gather(in, count, datatype.Byte, out, 1)
		if r.Rank() == 1 {
			for src := 0; src < 4; src++ {
				b := out.Add(src * count).Bytes(count)
				for i := range b {
					if b[i] != byte(src*100+i) {
						t.Fatalf("gather[%d][%d] = %d", src, i, b[i])
					}
				}
			}
		}
	})
}

func TestWtimeAdvances(t *testing.T) {
	run(t, 1, func(r *Rank) {
		t0 := r.Wtime()
		r.Proc().Sleep(sim.Second)
		if dt := r.Wtime() - t0; dt < 0.99 || dt > 1.01 {
			t.Errorf("Wtime delta = %v, want 1s", dt)
		}
	})
}

func TestHostHeapAllocFree(t *testing.T) {
	run(t, 1, func(r *Rank) {
		a := r.AllocHost(1024)
		b := r.AllocHost(1024)
		if a.Offset() == b.Offset() {
			t.Error("overlapping heap allocations")
		}
		r.FreeHost(a)
		r.FreeHost(b)
	})
}

func TestZeroCopyContiguousRendezvous(t *testing.T) {
	// A contiguous host receive should not allocate a temp buffer: the
	// heap in-use watermark stays flat during the transfer.
	const n = 1 << 20
	run(t, 2, func(r *Rank) {
		buf := r.AllocHost(n)
		switch r.Rank() {
		case 0:
			fillPattern(buf, n, 1)
			r.Send(buf, n, datatype.Byte, 1, 0)
		case 1:
			before := r.heap.PeakInUse()
			r.Recv(buf, n, datatype.Byte, 0, 0)
			if after := r.heap.PeakInUse(); after != before {
				t.Errorf("contiguous recv allocated temp memory (%d -> %d)", before, after)
			}
		}
	})
}

// Property: an arbitrary random traffic pattern (sizes spanning eager and
// rendezvous, mixed tags) delivers every message intact, exactly once.
func TestPropRandomTraffic(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nranks := 2 + rng.Intn(3)
		nmsgs := 1 + rng.Intn(6)
		type msgSpec struct {
			src, dst, tag, size int
			seed                byte
		}
		var specs []msgSpec
		for i := 0; i < nmsgs; i++ {
			src := rng.Intn(nranks)
			dst := rng.Intn(nranks)
			for dst == src {
				dst = rng.Intn(nranks)
			}
			sizes := []int{0, 17, 4096, 100_000, 1 << 20}
			specs = append(specs, msgSpec{src, dst, i, sizes[rng.Intn(len(sizes))], byte(i + 1)})
		}
		e, w := testWorld(nranks)
		ok := true
		w.Launch(func(r *Rank) {
			var reqs []*Request
			var bufs []mem.Ptr
			var checks []msgSpec
			for _, s := range specs {
				if s.dst == r.Rank() {
					buf := r.AllocHost(s.size + 1)
					reqs = append(reqs, r.Irecv(buf, s.size, datatype.Byte, s.src, s.tag))
					bufs = append(bufs, buf)
					checks = append(checks, s)
				}
			}
			for _, s := range specs {
				if s.src == r.Rank() {
					buf := r.AllocHost(s.size + 1)
					mem.Fill(buf, s.size, func(i int) byte { return byte(i)*5 + s.seed })
					r.Send(buf, s.size, datatype.Byte, s.dst, s.tag)
				}
			}
			r.Waitall(reqs...)
			for i, s := range checks {
				b := bufs[i].Bytes(s.size)
				for j := range b {
					if b[j] != byte(j)*5+s.seed {
						ok = false
					}
				}
			}
		})
		if err := e.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: collectives agree with their sequential definitions for random
// world sizes and values.
func TestPropAllreduceCorrect(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(7)
		count := 1 + rng.Intn(16)
		contrib := make([][]float64, n)
		expect := make([]float64, count)
		for i := 0; i < n; i++ {
			contrib[i] = make([]float64, count)
			for j := range contrib[i] {
				contrib[i][j] = float64(rng.Intn(1000))
				expect[j] += contrib[i][j]
			}
		}
		e, w := testWorld(n)
		ok := true
		w.Launch(func(r *Rank) {
			in, out := r.AllocHost(count*8), r.AllocHost(count*8)
			writeF64(in, contrib[r.Rank()])
			r.Allreduce(in, out, count, OpSum)
			got := make([]float64, count)
			readF64(out, got)
			for j := range got {
				if got[j] != expect[j] {
					ok = false
				}
			}
		})
		if err := e.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
