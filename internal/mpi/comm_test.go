package mpi

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"mv2sim/internal/datatype"
	"mv2sim/internal/ib"
	"mv2sim/internal/mem"
	"mv2sim/internal/sim"
)

func TestWorldComm(t *testing.T) {
	run(t, 3, func(r *Rank) {
		c := r.Comm()
		if c.Size() != 3 || c.Rank() != r.Rank() {
			t.Errorf("world comm shape: size=%d rank=%d", c.Size(), c.Rank())
		}
		if c.WorldRank(2) != 2 {
			t.Error("world comm rank translation")
		}
	})
}

func TestCommSendRecv(t *testing.T) {
	run(t, 2, func(r *Rank) {
		c := r.Comm()
		buf := r.AllocHost(256)
		switch c.Rank() {
		case 0:
			fillPattern(buf, 256, 3)
			c.Send(buf, 256, datatype.Byte, 1, 9)
		case 1:
			st := c.Recv(buf, 256, datatype.Byte, 0, 9)
			if st.Source != 0 || st.Bytes != 256 {
				t.Errorf("status = %+v", st)
			}
			checkPattern(t, buf, 256, 3, "comm recv")
		}
	})
}

func TestSplitByParity(t *testing.T) {
	// 6 ranks split into even/odd groups; each group runs its own
	// collective without interference.
	run(t, 6, func(r *Rank) {
		sub := r.Comm().Split(r.Rank()%2, r.Rank())
		if sub == nil {
			t.Fatalf("rank %d got nil comm", r.Rank())
		}
		if sub.Size() != 3 {
			t.Errorf("rank %d: sub size = %d", r.Rank(), sub.Size())
		}
		if want := r.Rank() / 2; sub.Rank() != want {
			t.Errorf("rank %d: sub rank = %d, want %d", r.Rank(), sub.Rank(), want)
		}
		// Group allreduce: sums of even vs odd world ranks.
		in, out := r.AllocHost(8), r.AllocHost(8)
		writeF64(in, []float64{float64(r.Rank())})
		sub.Allreduce(in, out, 1, OpSum)
		got := make([]float64, 1)
		readF64(out, got)
		want := 0.0 + 2 + 4
		if r.Rank()%2 == 1 {
			want = 1 + 3 + 5
		}
		if got[0] != want {
			t.Errorf("rank %d: group sum = %v, want %v", r.Rank(), got[0], want)
		}
	})
}

func TestSplitUndefinedColor(t *testing.T) {
	run(t, 4, func(r *Rank) {
		color := 0
		if r.Rank() == 3 {
			color = -1 // MPI_UNDEFINED
		}
		sub := r.Comm().Split(color, 0)
		if r.Rank() == 3 {
			if sub != nil {
				t.Error("undefined color returned a communicator")
			}
			return
		}
		if sub == nil || sub.Size() != 3 {
			t.Errorf("rank %d: sub = %v", r.Rank(), sub)
		}
	})
}

func TestSplitKeyOrdering(t *testing.T) {
	run(t, 4, func(r *Rank) {
		// Reverse rank order via descending keys.
		sub := r.Comm().Split(0, -r.Rank())
		if want := 3 - r.Rank(); sub.Rank() != want {
			t.Errorf("rank %d: sub rank = %d, want %d", r.Rank(), sub.Rank(), want)
		}
	})
}

func TestDupIsolation(t *testing.T) {
	// A message sent on the dup must not match a receive on the world comm.
	run(t, 2, func(r *Rank) {
		dup := r.Comm().Dup()
		buf := r.AllocHost(64)
		switch r.Rank() {
		case 0:
			fillPattern(buf, 64, 1)
			dup.Send(buf, 64, datatype.Byte, 1, 0)
			fillPattern(buf, 64, 2)
			r.Send(buf, 64, datatype.Byte, 1, 0) // world comm, same tag
		case 1:
			// Receive in the opposite order: world first, then dup.
			r.Recv(buf, 64, datatype.Byte, 0, 0)
			checkPattern(t, buf, 64, 2, "world message")
			dup.Recv(buf, 64, datatype.Byte, 0, 0)
			checkPattern(t, buf, 64, 1, "dup message")
		}
	})
}

func TestScatterGatherRoundTrip(t *testing.T) {
	const per = 16
	run(t, 4, func(r *Rank) {
		c := r.Comm()
		var root, out mem.Ptr
		if r.Rank() == 2 {
			root = r.AllocHost(4 * per)
			mem.Fill(root, 4*per, func(i int) byte { return byte(i * 3) })
			out = r.AllocHost(4 * per)
		}
		mine := r.AllocHost(per)
		c.Scatter(root, per, datatype.Byte, mine, 2)
		for i := 0; i < per; i++ {
			if mine.Bytes(per)[i] != byte((r.Rank()*per+i)*3) {
				t.Fatalf("rank %d scatter byte %d wrong", r.Rank(), i)
			}
		}
		c.Gather(mine, per, datatype.Byte, out, 2)
		if r.Rank() == 2 && !mem.Equal(out, root, 4*per) {
			t.Error("gather(scatter(x)) != x")
		}
	})
}

func TestAllgather(t *testing.T) {
	const per = 8
	for _, n := range []int{2, 3, 5} {
		n := n
		run(t, n, func(r *Rank) {
			c := r.Comm()
			in := r.AllocHost(per)
			mem.Fill(in, per, func(i int) byte { return byte(r.Rank()*100 + i) })
			out := r.AllocHost(n * per)
			c.Allgather(in, per, datatype.Byte, out)
			for src := 0; src < n; src++ {
				b := out.Add(src * per).Bytes(per)
				for i := range b {
					if b[i] != byte(src*100+i) {
						t.Fatalf("n=%d rank %d: allgather[%d][%d] = %d", n, r.Rank(), src, i, b[i])
					}
				}
			}
		})
	}
}

func TestAlltoall(t *testing.T) {
	const per = 4
	run(t, 4, func(r *Rank) {
		c := r.Comm()
		in := r.AllocHost(4 * per)
		out := r.AllocHost(4 * per)
		// Block j carries (me, j) markers.
		for j := 0; j < 4; j++ {
			mem.Fill(in.Add(j*per), per, func(i int) byte { return byte(r.Rank()*16 + j) })
		}
		c.Alltoall(in, per, datatype.Byte, out)
		// Slot i must hold (i, me).
		for i := 0; i < 4; i++ {
			b := out.Add(i * per).Bytes(per)
			for k := range b {
				if b[k] != byte(i*16+r.Rank()) {
					t.Fatalf("rank %d: alltoall slot %d = %d, want %d", r.Rank(), i, b[k], i*16+r.Rank())
				}
			}
		}
	})
}

func TestCartTopology(t *testing.T) {
	run(t, 8, func(r *Rank) {
		cart := r.Comm().CartCreate([]int{2, 4}, []bool{false, false})
		coords := cart.Coords(cart.Rank())
		if want := []int{r.Rank() / 4, r.Rank() % 4}; !reflect.DeepEqual(coords, want) {
			t.Errorf("rank %d coords = %v, want %v", r.Rank(), coords, want)
		}
		if cart.CartRank(coords) != cart.Rank() {
			t.Error("CartRank(Coords) != rank")
		}
		// Shifts at rank 1 (row 0, col 1): north none, south 5, west 0, east 2.
		if r.Rank() == 1 {
			srcNS, dstNS := cart.Shift(0, 1) // dim 0 = rows: dst is south
			if srcNS != ProcNull || dstNS != 5 {
				t.Errorf("row shift = (%d,%d), want (ProcNull,5)", srcNS, dstNS)
			}
			srcEW, dstEW := cart.Shift(1, 1)
			if srcEW != 0 || dstEW != 2 {
				t.Errorf("col shift = (%d,%d), want (0,2)", srcEW, dstEW)
			}
		}
	})
}

func TestCartPeriodicWrap(t *testing.T) {
	run(t, 4, func(r *Rank) {
		ring := r.Comm().CartCreate([]int{4}, []bool{true})
		src, dst := ring.Shift(0, 1)
		if src != (r.Rank()+3)%4 || dst != (r.Rank()+1)%4 {
			t.Errorf("rank %d: ring shift = (%d,%d)", r.Rank(), src, dst)
		}
		// A full ring rotation through Sendrecv with wrap.
		buf, got := r.AllocHost(8), r.AllocHost(8)
		writeF64(buf, []float64{float64(r.Rank())})
		ring.Sendrecv(buf, 1, datatype.Float64, dst, 0, got, 1, datatype.Float64, src, 0)
		v := make([]float64, 1)
		readF64(got, v)
		if v[0] != float64(src) {
			t.Errorf("rank %d received %v from %d", r.Rank(), v[0], src)
		}
	})
}

func TestCartValidation(t *testing.T) {
	run(t, 4, func(r *Rank) {
		c := r.Comm()
		for _, bad := range []func(){
			func() { c.CartCreate([]int{3}, []bool{false}) },                    // wrong product
			func() { c.CartCreate([]int{2, 2}, []bool{false}) },                 // arity mismatch
			func() { c.CartCreate([]int{0, 4}, []bool{false, false}) },          // zero dim
			func() { c.CartCreate([]int{4}, []bool{false}).Shift(1, 1) },        // bad dim
			func() { c.CartCreate([]int{4}, []bool{false}).CartRank([]int{9}) }, // out of range
		} {
			func() {
				defer func() {
					if recover() == nil {
						t.Error("invalid cartesian call did not panic")
					}
				}()
				bad()
			}()
		}
	})
}

func TestProcNullCommunication(t *testing.T) {
	run(t, 2, func(r *Rank) {
		buf := r.AllocHost(64)
		// Blocking ops with ProcNull complete instantly and move nothing.
		t0 := r.Now()
		r.Send(buf, 64, datatype.Byte, ProcNull, 0)
		st := r.Recv(buf, 64, datatype.Byte, ProcNull, 0)
		if st.Source != ProcNull || st.Bytes != 0 {
			t.Errorf("ProcNull status = %+v", st)
		}
		if r.Now()-t0 > 2*sim.Microsecond {
			t.Errorf("ProcNull ops took %v", r.Now()-t0)
		}
	})
}

func TestProbeBlocking(t *testing.T) {
	run(t, 2, func(r *Rank) {
		buf := r.AllocHost(512)
		switch r.Rank() {
		case 0:
			r.Proc().Sleep(5 * sim.Millisecond)
			fillPattern(buf, 512, 7)
			r.Send(buf, 512, datatype.Byte, 1, 4)
		case 1:
			st := r.Probe(0, 4)
			if st.Bytes != 512 || st.Source != 0 || st.Tag != 4 {
				t.Errorf("probe status = %+v", st)
			}
			if r.Now() < 5*sim.Millisecond {
				t.Error("probe returned before the message was sent")
			}
			// The message is still receivable.
			r.Recv(buf, st.Bytes, datatype.Byte, st.Source, st.Tag)
			checkPattern(t, buf, 512, 7, "post-probe recv")
		}
	})
}

func TestIprobe(t *testing.T) {
	run(t, 2, func(r *Rank) {
		buf := r.AllocHost(64)
		switch r.Rank() {
		case 0:
			r.Send(buf, 64, datatype.Byte, 1, 1)
		case 1:
			if ok, _ := r.Iprobe(0, 99); ok {
				t.Error("Iprobe matched wrong tag")
			}
			for {
				ok, st := r.Iprobe(0, 1)
				if ok {
					if st.Bytes != 64 {
						t.Errorf("status = %+v", st)
					}
					break
				}
				r.Proc().Sleep(10 * sim.Microsecond)
			}
			r.Recv(buf, 64, datatype.Byte, 0, 1)
		}
	})
}

func TestSsendWaitsForMatch(t *testing.T) {
	run(t, 2, func(r *Rank) {
		buf := r.AllocHost(256)
		switch r.Rank() {
		case 0:
			fillPattern(buf, 256, 2)
			t0 := r.Now()
			r.Ssend(buf, 256, datatype.Byte, 1, 0)
			// The receiver posts at 10ms; a synchronous send cannot
			// complete before that.
			if r.Now()-t0 < 9*sim.Millisecond {
				t.Errorf("Ssend completed at %v, before the receive was posted", r.Now()-t0)
			}
		case 1:
			r.Proc().Sleep(10 * sim.Millisecond)
			r.Recv(buf, 256, datatype.Byte, 0, 0)
			checkPattern(t, buf, 256, 2, "ssend recv")
		}
	})
}

func TestWaitany(t *testing.T) {
	run(t, 3, func(r *Rank) {
		buf1, buf2 := r.AllocHost(64), r.AllocHost(64)
		switch r.Rank() {
		case 0:
			r.Proc().Sleep(20 * sim.Millisecond)
			r.Send(buf1, 64, datatype.Byte, 2, 1)
		case 1:
			r.Proc().Sleep(5 * sim.Millisecond)
			r.Send(buf2, 64, datatype.Byte, 2, 2)
		case 2:
			q1 := r.Irecv(buf1, 64, datatype.Byte, 0, 1)
			q2 := r.Irecv(buf2, 64, datatype.Byte, 1, 2)
			idx, st := r.Waitany(q1, q2)
			if idx != 1 || st.Source != 1 {
				t.Errorf("Waitany = (%d, %+v), want rank 1 first", idx, st)
			}
			r.Waitall(q1, q2)
		}
	})
}

func TestOpProd(t *testing.T) {
	run(t, 3, func(r *Rank) {
		in, out := r.AllocHost(8), r.AllocHost(8)
		writeF64(in, []float64{float64(r.Rank() + 2)}) // 2,3,4
		r.Allreduce(in, out, 1, OpProd)
		got := make([]float64, 1)
		readF64(out, got)
		if got[0] != 24 {
			t.Errorf("prod = %v, want 24", got[0])
		}
	})
}

func TestSplitSubCommunicatorsConcurrently(t *testing.T) {
	// Two sub-communicators exchange simultaneously with the same tags;
	// context isolation keeps the traffic apart.
	run(t, 4, func(r *Rank) {
		sub := r.Comm().Split(r.Rank()%2, 0)
		buf := r.AllocHost(1 << 16)
		peer := 1 - sub.Rank()
		fillPattern(buf, 1<<16, byte(10+r.Rank()))
		rx := r.AllocHost(1 << 16)
		rq := sub.Irecv(rx, 1<<16, datatype.Byte, peer, 0)
		sq := sub.Isend(buf, 1<<16, datatype.Byte, peer, 0)
		r.Waitall(rq, sq)
		expectedWorldPeer := sub.WorldRank(peer)
		checkPattern(t, rx, 1<<16, byte(10+expectedWorldPeer), fmt.Sprintf("rank %d", r.Rank()))
	})
}

func TestPersistentRequests(t *testing.T) {
	// The classic persistent-request stencil pattern: bind once, Start
	// every iteration.
	run(t, 2, func(r *Rank) {
		const n = 4096
		buf := r.AllocHost(n)
		peer := 1 - r.Rank()
		var send, recv *PRequest
		if r.Rank() == 0 {
			send = r.SendInit(buf, n, datatype.Byte, peer, 0)
		} else {
			recv = r.RecvInit(buf, n, datatype.Byte, peer, 0)
		}
		for it := 0; it < 3; it++ {
			if r.Rank() == 0 {
				fillPattern(buf, n, byte(it))
				send.Start()
				send.Wait()
			} else {
				recv.Start()
				st := recv.Wait()
				if st.Bytes != n {
					t.Errorf("iter %d: bytes = %d", it, st.Bytes)
				}
				checkPattern(t, buf, n, byte(it), fmt.Sprintf("iter %d", it))
			}
			r.Barrier()
		}
	})
}

func TestPersistentStartall(t *testing.T) {
	run(t, 2, func(r *Rank) {
		tx, rx := r.AllocHost(256), r.AllocHost(256)
		peer := 1 - r.Rank()
		send := r.SendInit(tx, 256, datatype.Byte, peer, 0)
		recv := r.RecvInit(rx, 256, datatype.Byte, peer, 0)
		fillPattern(tx, 256, byte(40+r.Rank()))
		Startall(recv, send)
		r.WaitallPersistent(recv, send)
		checkPattern(t, rx, 256, byte(40+peer), "startall")
	})
}

func TestPersistentMisusePanics(t *testing.T) {
	run(t, 1, func(r *Rank) {
		buf := r.AllocHost(8)
		pq := r.RecvInit(buf, 8, datatype.Byte, 0, 0)
		func() {
			defer func() {
				if recover() == nil {
					t.Error("Wait on inactive persistent request did not panic")
				}
			}()
			pq.Wait()
		}()
	})
}

// getWorld builds a world running the get-based rendezvous protocol.
func runGet(t *testing.T, n int, fn func(r *Rank)) *World {
	t.Helper()
	e := sim.New()
	fabric := ib.NewFabric(e, ib.Model{})
	w := NewWorld(e, Config{Rendezvous: RendezvousGet})
	for i := 0; i < n; i++ {
		w.AddRank(fabric.NewHCA(i), mem.NewHostSpace(fmt.Sprintf("host%d", i), 64<<20))
	}
	w.Launch(fn)
	if err := e.Run(); err != nil {
		t.Fatalf("simulation did not drain: %v", err)
	}
	return w
}

func TestGetRendezvousContiguous(t *testing.T) {
	const n = 1 << 20
	runGet(t, 2, func(r *Rank) {
		buf := r.AllocHost(n)
		switch r.Rank() {
		case 0:
			fillPattern(buf, n, 5)
			r.Send(buf, n, datatype.Byte, 1, 0)
		case 1:
			st := r.Recv(buf, n, datatype.Byte, 0, 0)
			if st.Bytes != n {
				t.Errorf("bytes = %d", st.Bytes)
			}
			checkPattern(t, buf, n, 5, "get rendezvous")
		}
	})
}

func TestGetRendezvousNonContiguous(t *testing.T) {
	v, _ := datatype.Vector(32768, 4, 8, datatype.Byte) // 128 KB packed
	v.MustCommit()
	runGet(t, 2, func(r *Rank) {
		buf := r.AllocHost(v.Span(1))
		switch r.Rank() {
		case 0:
			fillPattern(buf, v.Span(1), 9)
			r.Send(buf, 1, v, 1, 0)
		case 1:
			r.Recv(buf, 1, v, 0, 0)
			for _, s := range v.SegmentsOf(1) {
				b := buf.Add(s.Off).Bytes(s.Len)
				for i := range b {
					if b[i] != byte(s.Off+i)*3+9 {
						t.Fatalf("segment %+v byte %d wrong", s, i)
					}
				}
			}
		}
	})
}

func TestGetRendezvousUnexpected(t *testing.T) {
	// Get-RTS arrives before the receive is posted.
	const n = 1 << 18
	runGet(t, 2, func(r *Rank) {
		buf := r.AllocHost(n)
		switch r.Rank() {
		case 0:
			fillPattern(buf, n, 2)
			r.Send(buf, n, datatype.Byte, 1, 0)
		case 1:
			r.Proc().Sleep(10 * sim.Millisecond)
			r.Recv(buf, n, datatype.Byte, 0, 0)
			checkPattern(t, buf, n, 2, "unexpected get")
		}
	})
}

func TestGetRendezvousSenderHeapClean(t *testing.T) {
	// The sender's temp/registration must be released after DONE.
	v, _ := datatype.Vector(32768, 4, 8, datatype.Byte)
	v.MustCommit()
	w := runGet(t, 2, func(r *Rank) {
		buf := r.AllocHost(v.Span(1))
		switch r.Rank() {
		case 0:
			r.Send(buf, 1, v, 1, 0)
		case 1:
			r.Recv(buf, 1, v, 0, 0)
		}
	})
	// Only the application buffer remains on the sender heap.
	if live := w.Rank(0).heap.LiveCount(); live != 1 {
		t.Errorf("sender heap live allocations = %d, want 1", live)
	}
}

// Property: random strided datatypes on both sides of a transfer (packed
// sizes spanning eager and rendezvous, both protocols) deliver exactly the
// type-map-ordered bytes.
func TestPropTypedTrafficBothProtocols(t *testing.T) {
	f := func(seed int64, useGet bool) bool {
		rng := rand.New(rand.NewSource(seed))
		mkType := func() *datatype.Datatype {
			blocklen := 1 + rng.Intn(6)
			stride := blocklen + rng.Intn(6)
			count := 1 + rng.Intn(20000)
			v, err := datatype.Vector(count, blocklen, stride, datatype.Byte)
			if err != nil {
				return nil
			}
			return v.MustCommit()
		}
		sendT := mkType()
		// The receive side uses its own independent layout with the same
		// packed size.
		recvStride := 1 + rng.Intn(8)
		recvT, err := datatype.Vector(sendT.Size(), 1, 1+recvStride, datatype.Byte)
		if err != nil {
			return false
		}
		recvT.MustCommit()

		cfg := Config{}
		if useGet {
			cfg.Rendezvous = RendezvousGet
		}
		e := sim.New()
		fabric := ib.NewFabric(e, ib.Model{})
		w := NewWorld(e, cfg)
		for i := 0; i < 2; i++ {
			w.AddRank(fabric.NewHCA(i), mem.NewHostSpace(fmt.Sprintf("host%d", i), 64<<20))
		}
		ok := true
		w.Launch(func(r *Rank) {
			switch r.Rank() {
			case 0:
				buf := r.AllocHost(sendT.Span(1))
				mem.Fill(buf, sendT.Span(1), func(i int) byte { return byte(i*13 + 1) })
				r.Send(buf, 1, sendT, 1, 0)
			case 1:
				buf := r.AllocHost(recvT.Span(1))
				r.Recv(buf, 1, recvT, 0, 0)
				// Packed(recv layout) must equal packed(send layout).
				got := make([]byte, recvT.Size())
				recvT.PackBytes(got, buf, 1)
				ref := mem.NewHostSpace("ref", sendT.Span(1))
				mem.Fill(ref.Base(), sendT.Span(1), func(i int) byte { return byte(i*13 + 1) })
				want := make([]byte, sendT.Size())
				sendT.PackBytes(want, ref.Base(), 1)
				for i := range want {
					if got[i] != want[i] {
						ok = false
						return
					}
				}
			}
		})
		if err := e.Run(); err != nil {
			return false
		}
		e.Shutdown()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
