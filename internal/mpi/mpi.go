// Package mpi implements the MPI point-to-point and collective subset the
// paper's evaluation exercises, running on the simulated cluster: tag/source
// message matching with MPI non-overtaking semantics, an eager protocol for
// small messages, an RDMA rendezvous protocol (RTS/CTS/chunked writes/FIN)
// for large ones, non-blocking requests, and binomial-tree collectives.
//
// The package is structured like an MPICH-family library:
//
//   - matching (posted-receive queue + unexpected-message queue) is owned
//     here and is common to all transports;
//   - the host-memory data path (pack → RDMA → unpack) is implemented here;
//   - buffers detected to live in GPU device memory are delegated to a
//     pluggable GPUTransport — internal/core provides the paper's
//     MV2-GPU-NC implementation, and a World without a transport rejects
//     device buffers exactly like a non-CUDA-aware MPI.
//
// Every rank runs as one simulation process; blocking calls (Send, Recv,
// Wait, Barrier) suspend that process in virtual time while the protocol
// progresses through engine-context handlers driven by the InfiniBand
// fabric model.
package mpi

import (
	"fmt"

	"mv2sim/internal/alloc"
	"mv2sim/internal/datatype"
	"mv2sim/internal/ib"
	"mv2sim/internal/mem"
	"mv2sim/internal/obs"
	"mv2sim/internal/sim"
)

// Wildcards for Recv matching.
const (
	AnySource = -1
	AnyTag    = -1
)

// context IDs: user point-to-point traffic vs internal collectives.
const (
	ctxPt2pt = 0
	ctxColl  = 1
)

// Named defaults for the two tunables the paper sweeps. All non-test code
// must reference these (or a Config field) instead of raw literals; the
// chunkconst analyzer enforces it.
const (
	// DefaultEagerLimit is the eager/rendezvous switch point
	// (MV2_IBA_EAGER_THRESHOLD).
	DefaultEagerLimit = 16 << 10
	// DefaultBlockSize is the GPU pipeline chunk size
	// (MV2_CUDA_BLOCK_SIZE); the paper finds 64 KiB optimal.
	DefaultBlockSize = 64 << 10
	// DefaultRails is the number of independently-serialized HCA rails the
	// rendezvous pipeline stripes chunks across (MV2_NUM_RAILS). The
	// paper's testbed is single-rail.
	DefaultRails = 1
)

// Config holds library tunables, the knobs MVAPICH2 exposes through its
// environment variables.
type Config struct {
	// EagerLimit is the largest packed payload sent eagerly
	// (MV2_IBA_EAGER_THRESHOLD). Default 16 KiB.
	EagerLimit int
	// BlockSize is the pipeline chunk size for GPU rendezvous transfers
	// (MV2_CUDA_BLOCK_SIZE). The paper finds 64 KiB optimal. Default 64 KiB.
	BlockSize int
	// Rails is the number of HCA rails rendezvous chunks stripe across
	// (MV2_NUM_RAILS); it must match the fabric's ib.Model.Rails.
	// Control traffic (eager, RTS, CTS) stays on rail 0 so MPI message
	// ordering is unaffected. Default 1.
	Rails int
	// CallOverhead is the fixed host cost of entering an MPI call.
	CallOverhead sim.Time
	// HostCopyBandwidth and HostCopyBase model CPU memcpy/pack speed.
	HostCopyBandwidth float64
	HostCopyBase      sim.Time
	// HostCopySegment is the extra per-IOV-segment cost of packing
	// non-contiguous host data.
	HostCopySegment sim.Time
	// Rendezvous selects the large-message protocol for host buffers:
	// put-based RTS/CTS/write/FIN (default, the paper's protocol) or the
	// get-based RGET alternative (see proto_get.go).
	Rendezvous RendezvousMode
}

// DefaultConfig returns the Westmere-class host calibration.
func DefaultConfig() Config {
	return Config{
		EagerLimit:        DefaultEagerLimit,
		BlockSize:         DefaultBlockSize,
		Rails:             DefaultRails,
		CallOverhead:      200 * sim.Nanosecond,
		HostCopyBandwidth: 6e9,
		HostCopyBase:      300 * sim.Nanosecond,
		HostCopySegment:   50 * sim.Nanosecond,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.EagerLimit == 0 {
		c.EagerLimit = d.EagerLimit
	}
	if c.BlockSize == 0 {
		c.BlockSize = d.BlockSize
	}
	if c.Rails == 0 {
		c.Rails = DefaultRails
	}
	if c.CallOverhead == 0 {
		c.CallOverhead = d.CallOverhead
	}
	if c.HostCopyBandwidth == 0 {
		c.HostCopyBandwidth = d.HostCopyBandwidth
	}
	if c.HostCopyBase == 0 {
		c.HostCopyBase = d.HostCopyBase
	}
	if c.HostCopySegment == 0 {
		c.HostCopySegment = d.HostCopySegment
	}
	return c
}

// World is the set of communicating ranks (MPI_COMM_WORLD).
type World struct {
	e         sim.Engine
	cfg       Config
	ranks     []*Rank
	transport GPUTransport
	nextCtx   int // context-ID allocator for Comm.Split (root-driven)
	hub       *obs.Hub
}

// SetHub attaches an observability hub: every request's lifetime becomes
// a task on its rank's "rankN.mpi" track (eager/rendezvous/self kinds),
// and the rendezvous control messages (RTS/CTS/FIN) appear as instant
// markers. Install before communication starts.
func (w *World) SetHub(h *obs.Hub) { w.hub = h }

// Hub returns the attached observability hub (nil when tracing is off).
// GPU transports use it to parent their pipeline-stage tasks to the
// request tasks recorded here.
func (w *World) Hub() *obs.Hub { return w.hub }

// NewWorld creates an empty world; attach ranks with AddRank.
func NewWorld(e sim.Engine, cfg Config) *World {
	return &World{e: e, cfg: cfg.withDefaults()}
}

// Engine returns the simulation engine.
func (w *World) Engine() sim.Engine { return w.e }

// Config returns the library configuration.
func (w *World) Config() Config { return w.cfg }

// Size returns the number of ranks.
func (w *World) Size() int { return len(w.ranks) }

// Rank returns rank i.
func (w *World) Rank(i int) *Rank { return w.ranks[i] }

// SetGPUTransport installs the device-buffer transport (the paper's
// MV2-GPU-NC engine). Without one, passing a device pointer to a
// communication call panics, mirroring a non-CUDA-aware MPI crashing on a
// device pointer.
func (w *World) SetGPUTransport(t GPUTransport) { w.transport = t }

// GPUTransport returns the installed transport, or nil.
func (w *World) GPUTransport() GPUTransport { return w.transport }

// AddRank attaches the next rank, bound to an HCA and a host memory space
// used both for application allocations and the library's internal staging
// buffers. The HCA's node ID must equal the new rank's index.
func (w *World) AddRank(hca *ib.HCA, host *mem.Space) *Rank {
	r := &Rank{
		w:           w,
		rank:        len(w.ranks),
		hca:         hca,
		host:        host,
		heap:        alloc.New(host.Size(), 64),
		reqs:        map[int]*Request{},
		stats:       &RankStats{},
		obsTrack:    fmt.Sprintf("rank%d.mpi", len(w.ranks)),
		inflightCtr: fmt.Sprintf("rank%d.inflight", len(w.ranks)),
	}
	if hca.Node() != r.rank {
		panic(fmt.Sprintf("mpi: HCA node %d attached as rank %d", hca.Node(), r.rank))
	}
	hca.SetHandler(r.handleMessage)
	w.ranks = append(w.ranks, r)
	return r
}

// Launch spawns fn as the main program of every rank and returns the procs.
// Call e.Run() afterwards to execute the program.
func (w *World) Launch(fn func(r *Rank)) []*sim.Proc {
	procs := make([]*sim.Proc, len(w.ranks))
	for i, r := range w.ranks {
		r := r
		procs[i] = w.e.Spawn(fmt.Sprintf("rank%d", i), func(p *sim.Proc) {
			r.proc = p
			fn(r)
		})
	}
	return procs
}

// RankStats counts per-rank protocol activity.
type RankStats struct {
	EagerSent, EagerRecvd int
	RndvSent, RndvRecvd   int
	BytesSent             int64
	Unexpected            int
}

// Rank is one MPI process.
type Rank struct {
	w     *World
	rank  int
	hca   *ib.HCA
	host  *mem.Space
	heap  *alloc.Allocator
	proc  *sim.Proc
	stats *RankStats

	posted         []*Request   // posted receives, in post order
	unexpected     []*inbound   // arrived unmatched, in arrival order
	arrivalWaiters []*sim.Event // blocked Probe calls

	nextID      int
	reqs        map[int]*Request // in-flight rendezvous requests by ID
	obsTrack    string           // tracing track name, "rankN.mpi"
	inflightCtr string           // in-flight request gauge, "rankN.inflight"
}

// Rank returns this process's rank index.
func (r *Rank) Rank() int { return r.rank }

// Size returns the world size.
func (r *Rank) Size() int { return len(r.w.ranks) }

// World returns the owning world.
func (r *Rank) World() *World { return r.w }

// HCA returns the rank's adapter (used by GPU transports).
func (r *Rank) HCA() *ib.HCA { return r.hca }

// Proc returns the rank's main simulation process. MPI is used
// single-threaded: all blocking calls must come from this process.
func (r *Rank) Proc() *sim.Proc {
	if r.proc == nil {
		panic("mpi: rank used before Launch")
	}
	return r.proc
}

// Stats returns the rank's protocol counters.
func (r *Rank) Stats() RankStats { return *r.stats }

// Wtime returns the current virtual time in seconds (MPI_Wtime).
func (r *Rank) Wtime() float64 { return r.w.e.Now().Seconds() }

// Now returns the current virtual time.
func (r *Rank) Now() sim.Time { return r.w.e.Now() }

// AllocHost carves n bytes from the rank's host heap. It panics on
// exhaustion: host memory sizing is a configuration decision.
func (r *Rank) AllocHost(n int) mem.Ptr {
	off, err := r.heap.Alloc(n)
	if err != nil {
		panic(fmt.Sprintf("mpi rank %d: %v", r.rank, err))
	}
	return r.host.Base().Add(off)
}

// FreeHost returns memory obtained from AllocHost.
func (r *Rank) FreeHost(p mem.Ptr) {
	if err := r.heap.Free(p.Offset()); err != nil {
		panic(fmt.Sprintf("mpi rank %d: %v", r.rank, err))
	}
}

// callOverhead charges the fixed MPI call entry cost.
func (r *Rank) callOverhead() { r.Proc().Sleep(r.w.cfg.CallOverhead) }

// hostPackCost models CPU gather/scatter of count elements of dt: a base
// cost, per-byte bandwidth, and a per-segment penalty for non-contiguous
// layouts (contiguous types coalesce to a single segment, like a memcpy).
func (r *Rank) hostPackCost(dt *datatype.Datatype, count int) sim.Time {
	bytes := count * dt.Size()
	nseg := dt.SegmentCount(count)
	return r.w.cfg.HostCopyBase +
		sim.Time(int64(nseg)*int64(r.w.cfg.HostCopySegment)) +
		sim.DurationOf(bytes, r.w.cfg.HostCopyBandwidth)
}

// hostCopyCost models one contiguous host memcpy of n bytes.
func (r *Rank) hostCopyCost(n int) sim.Time {
	return r.w.cfg.HostCopyBase + sim.DurationOf(n, r.w.cfg.HostCopyBandwidth)
}

// HostCopyCost exposes the host memcpy cost model to GPU transports, which
// charge it when shuffling packed bytes between pinned staging buffers.
func (r *Rank) HostCopyCost(n int) sim.Time { return r.hostCopyCost(n) }
