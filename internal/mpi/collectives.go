package mpi

import (
	"encoding/binary"
	"math"

	"mv2sim/internal/datatype"
	"mv2sim/internal/mem"
)

// Collective operations run on each communicator's reserved collective
// context so their traffic can never match application point-to-point
// receives. All collectives are implemented over the same eager/rendezvous
// machinery as user messages, with binomial-tree topologies for rooted
// operations (the algorithms MVAPICH2 uses at these scales) and
// ring/pairwise patterns for the all-to-all family.
//
// The Rank-level methods operate on MPI_COMM_WORLD and delegate to the
// Comm implementations.

// collective tags: tag = collTagBase + operation offset (+ round).
const collTagBase = 1 << 20

// Barrier blocks until every member has entered it (MPI_Barrier), using
// the dissemination algorithm: ceil(log2 n) rounds of zero-byte exchanges.
func (c *Comm) Barrier() {
	n := c.Size()
	if n == 1 {
		c.r.callOverhead()
		return
	}
	empty := c.r.host.Base() // 0-byte transfers never dereference
	round := 0
	for mask := 1; mask < n; mask <<= 1 {
		dst := (c.Rank() + mask) % n
		src := (c.Rank() - mask + n) % n
		rq := c.r.irecv(empty, 0, datatype.Byte, c.WorldRank(src), collTagBase+round, c.ctxColl)
		sq := c.r.isend(empty, 0, datatype.Byte, c.WorldRank(dst), collTagBase+round, c.ctxColl)
		c.r.Proc().Wait(sq.done)
		c.r.Proc().Wait(rq.done)
		round++
	}
}

// Bcast broadcasts count elements of dt at buf from root to every member
// (MPI_Bcast) along a binomial tree: receive once from the parent at the
// level of the lowest set bit, then fan out to children at lower levels.
func (c *Comm) Bcast(buf mem.Ptr, count int, dt *datatype.Datatype, root int) {
	n := c.Size()
	if n == 1 {
		c.r.callOverhead()
		return
	}
	vrank := (c.Rank() - root + n) % n
	mask := 1
	for mask < n {
		if vrank&mask != 0 {
			parent := (vrank - mask + root) % n
			q := c.r.irecv(buf, count, dt, c.WorldRank(parent), collTagBase+20, c.ctxColl)
			c.r.Proc().Wait(q.done)
			break
		}
		mask <<= 1
	}
	for mask >>= 1; mask > 0; mask >>= 1 {
		if vrank+mask < n {
			child := (vrank + mask + root) % n
			c.sendCollBlocking(buf, count, dt, child, collTagBase+20)
		}
	}
}

// sendCollBlocking sends on the collective context and waits for local
// completion, so the caller may reuse buf immediately after.
func (c *Comm) sendCollBlocking(buf mem.Ptr, count int, dt *datatype.Datatype, dest, tag int) {
	q := c.r.isend(buf, count, dt, c.WorldRank(dest), tag, c.ctxColl)
	c.r.Proc().Wait(q.done)
}

// Op is a reduction operator over float64.
type Op func(a, b float64) float64

// Built-in reduction operators (MPI_SUM, MPI_MAX, MPI_MIN, MPI_PROD).
var (
	OpSum  Op = func(a, b float64) float64 { return a + b }
	OpMax  Op = func(a, b float64) float64 { return math.Max(a, b) }
	OpMin  Op = func(a, b float64) float64 { return math.Min(a, b) }
	OpProd Op = func(a, b float64) float64 { return a * b }
)

// Reduce combines count float64 values from every member's sendBuf into
// root's recvBuf using op (MPI_Reduce over MPI_DOUBLE) along a binomial
// tree. recvBuf is only accessed on root. Buffers must be host memory.
func (c *Comm) Reduce(sendBuf, recvBuf mem.Ptr, count int, op Op, root int) {
	n := c.Size()
	nbytes := count * 8
	acc := make([]float64, count)
	readF64(sendBuf, acc)

	vrank := (c.Rank() - root + n) % n
	scratch := make([]float64, count)
	tmp := c.r.AllocHost(maxInt(nbytes, 8))
	defer c.r.FreeHost(tmp)

	for mask := 1; mask < n; mask <<= 1 {
		if vrank&mask != 0 {
			parent := (vrank&^mask + root) % n
			writeF64(tmp, acc)
			c.sendCollBlocking(tmp, count, datatype.Float64, parent, collTagBase+21)
			break
		}
		peer := vrank | mask
		if peer >= n {
			continue
		}
		q := c.r.irecv(tmp, count, datatype.Float64, c.WorldRank((peer+root)%n), collTagBase+21, c.ctxColl)
		c.r.Proc().Wait(q.done)
		readF64(tmp, scratch)
		for i := range acc {
			acc[i] = op(acc[i], scratch[i])
		}
	}
	if c.Rank() == root {
		writeF64(recvBuf, acc)
	}
}

// Allreduce is Reduce followed by Bcast (MPI_Allreduce over MPI_DOUBLE).
func (c *Comm) Allreduce(sendBuf, recvBuf mem.Ptr, count int, op Op) {
	c.Reduce(sendBuf, recvBuf, count, op, 0)
	c.Bcast(recvBuf, count, datatype.Float64, 0)
}

// Gather collects count elements of dt from every member into root's
// recvBuf, laid out by communicator rank (MPI_Gather). Linear algorithm.
func (c *Comm) Gather(sendBuf mem.Ptr, count int, dt *datatype.Datatype, recvBuf mem.Ptr, root int) {
	if c.Rank() != root {
		c.sendCollBlocking(sendBuf, count, dt, root, collTagBase+22)
		return
	}
	for src := 0; src < c.Size(); src++ {
		dst := recvBuf.Add(src * count * dt.Extent())
		if src == root {
			localTypedCopy(dst, sendBuf, count, dt)
			continue
		}
		q := c.r.irecv(dst, count, dt, c.WorldRank(src), collTagBase+22, c.ctxColl)
		c.r.Proc().Wait(q.done)
	}
}

// Scatter distributes count elements of dt per member from root's sendBuf
// (laid out by communicator rank) into each member's recvBuf (MPI_Scatter).
func (c *Comm) Scatter(sendBuf mem.Ptr, count int, dt *datatype.Datatype, recvBuf mem.Ptr, root int) {
	if c.Rank() != root {
		q := c.r.irecv(recvBuf, count, dt, c.WorldRank(root), collTagBase+23, c.ctxColl)
		c.r.Proc().Wait(q.done)
		return
	}
	for dst := 0; dst < c.Size(); dst++ {
		src := sendBuf.Add(dst * count * dt.Extent())
		if dst == root {
			localTypedCopy(recvBuf, src, count, dt)
			continue
		}
		c.sendCollBlocking(src, count, dt, dst, collTagBase+23)
	}
}

// Allgather gathers count elements from every member into every member's
// recvBuf, laid out by communicator rank (MPI_Allgather), using the ring
// algorithm: n-1 steps, each member forwarding the block it received last.
func (c *Comm) Allgather(sendBuf mem.Ptr, count int, dt *datatype.Datatype, recvBuf mem.Ptr) {
	n := c.Size()
	me := c.Rank()
	block := count * dt.Extent()
	localTypedCopy(recvBuf.Add(me*block), sendBuf, count, dt)
	if n == 1 {
		return
	}
	right := (me + 1) % n
	left := (me - 1 + n) % n
	for step := 0; step < n-1; step++ {
		sendIdx := (me - step + n) % n
		recvIdx := (me - step - 1 + n) % n
		c.Sendrecv(
			recvBuf.Add(sendIdx*block), count, dt, right, collTagBase+24,
			recvBuf.Add(recvIdx*block), count, dt, left, collTagBase+24)
	}
}

// Alltoall exchanges count elements of dt between every pair of members
// (MPI_Alltoall): member i's block j lands in member j's slot i. Pairwise
// exchange algorithm: n rounds with partner me XOR-shifted.
func (c *Comm) Alltoall(sendBuf mem.Ptr, count int, dt *datatype.Datatype, recvBuf mem.Ptr) {
	n := c.Size()
	me := c.Rank()
	block := count * dt.Extent()
	localTypedCopy(recvBuf.Add(me*block), sendBuf.Add(me*block), count, dt)
	for step := 1; step < n; step++ {
		partner := (me + step) % n
		from := (me - step + n) % n
		c.Sendrecv(
			sendBuf.Add(partner*block), count, dt, partner, collTagBase+25,
			recvBuf.Add(from*block), count, dt, from, collTagBase+25)
	}
}

// localTypedCopy moves count typed elements within this process via the
// pack/unpack identity (no wire traffic).
func localTypedCopy(dst, src mem.Ptr, count int, dt *datatype.Datatype) {
	tmp := make([]byte, count*dt.Size())
	dt.PackBytes(tmp, src, count)
	dt.UnpackBytes(dst, tmp, count)
}

// ---------------------------------------------------------------------------
// World-communicator convenience wrappers on Rank.

// Barrier is MPI_Barrier on MPI_COMM_WORLD.
func (r *Rank) Barrier() { r.Comm().Barrier() }

// Bcast is MPI_Bcast on MPI_COMM_WORLD.
func (r *Rank) Bcast(buf mem.Ptr, count int, dt *datatype.Datatype, root int) {
	r.Comm().Bcast(buf, count, dt, root)
}

// Reduce is MPI_Reduce on MPI_COMM_WORLD.
func (r *Rank) Reduce(sendBuf, recvBuf mem.Ptr, count int, op Op, root int) {
	r.Comm().Reduce(sendBuf, recvBuf, count, op, root)
}

// Allreduce is MPI_Allreduce on MPI_COMM_WORLD.
func (r *Rank) Allreduce(sendBuf, recvBuf mem.Ptr, count int, op Op) {
	r.Comm().Allreduce(sendBuf, recvBuf, count, op)
}

// Gather is MPI_Gather on MPI_COMM_WORLD.
func (r *Rank) Gather(sendBuf mem.Ptr, count int, dt *datatype.Datatype, recvBuf mem.Ptr, root int) {
	r.Comm().Gather(sendBuf, count, dt, recvBuf, root)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// readF64 and writeF64 convert between simulated memory and Go float64
// slices using the cluster's little-endian layout.
func readF64(p mem.Ptr, out []float64) {
	b := p.Bytes(len(out) * 8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
}

func writeF64(p mem.Ptr, in []float64) {
	b := p.Bytes(len(in) * 8)
	for i, v := range in {
		binary.LittleEndian.PutUint64(b[i*8:], math.Float64bits(v))
	}
}
