package mpi

import (
	"fmt"

	"mv2sim/internal/datatype"
	"mv2sim/internal/ib"
	"mv2sim/internal/mem"
	"mv2sim/internal/obs"
	"mv2sim/internal/sim"
)

// Wire messages. All protocol headers travel as two-sided ib sends; bulk
// data travels as eager payload or one-sided RDMA writes into announced
// slots.

type eagerMsg struct {
	Src, Tag, Ctx, Size int
}

type rtsMsg struct {
	Src, Tag, Ctx, Size, SendID int
}

// Slot is one chunk's landing area announced in a CTS: chunk index,
// rkey of the registered region and the byte offset/length within it.
// Chunk i of the packed stream covers bytes [i*ChunkBytes, i*ChunkBytes+Len).
type Slot struct {
	Chunk int
	Rkey  uint32
	Off   int
	Len   int
}

type ctsMsg struct {
	SendID, RecvID          int
	TotalChunks, ChunkBytes int
	Slots                   []Slot
}

type finMsg struct {
	RecvID, Chunk int
}

// inbound is an arrived-but-unmatched message.
type inbound struct {
	from, tag, ctx, size int
	payload              []byte // eager data (copied); nil for rendezvous
	sendID               int    // rendezvous only
	isRts                bool
	isGet                bool   // rendezvous RTS advertises an rkey to read
	rkey                 uint32 // get protocol only
}

// GPUTransport is the extension point for device-memory buffers. The
// implementation (internal/core) owns all GPU-side staging; the matching,
// wire protocol and completion plumbing stay in this package. All methods
// are invoked in engine context or from a rank process and must not block
// the caller: long-running work is done in processes the transport spawns.
type GPUTransport interface {
	// StageToHost packs the request's device buffer into host bytes and
	// invokes deliver when the packed data is ready. Used for eager-size
	// sends and for self-sends.
	StageToHost(req *Request, deliver func(packed []byte))
	// DeliverFromHost unpacks packed bytes into the request's device
	// buffer and calls req.CompleteRecv when done. Used for eager-size
	// receives and self-receives.
	DeliverFromHost(req *Request, packed []byte)
	// StartRendezvousSend drives the sender side of a large transfer from
	// device memory: it must send the RTS via req.Rank().SendRTS, produce
	// packed chunks, place them with req.Rank().RDMAChunk, and finally
	// call req.CompleteSend.
	StartRendezvousSend(req *Request)
	// StartRendezvousRecv drives the receiver side of a large transfer
	// into device memory: it must announce landing slots via
	// req.Rank().SendCTS, consume req.AwaitFin per chunk, move the data
	// into the device buffer, and finally call req.CompleteRecv.
	StartRendezvousRecv(req *Request)
}

func (r *Rank) transport() GPUTransport {
	t := r.w.transport
	if t == nil {
		panic(fmt.Sprintf("mpi rank %d: device buffer passed to a world without a GPU transport "+
			"(a non-CUDA-aware MPI cannot dereference device pointers)", r.rank))
	}
	return t
}

// checkType validates a buffer/type/count triple at the API boundary.
func checkType(dt *datatype.Datatype, count int) {
	if dt == nil {
		panic("mpi: nil datatype")
	}
	if !dt.Committed() {
		panic("mpi: datatype " + dt.Name() + " used before Commit (MPI_ERR_TYPE)")
	}
	if count < 0 {
		panic("mpi: negative count")
	}
}

// ---------------------------------------------------------------------------
// Send side

// Isend starts a non-blocking send of count elements of dt at buf to
// (dest, tag) and returns the request (MPI_Isend).
func (r *Rank) Isend(buf mem.Ptr, count int, dt *datatype.Datatype, dest, tag int) *Request {
	return r.isend(buf, count, dt, dest, tag, ctxPt2pt)
}

// Send is the blocking form (MPI_Send): it returns when the send buffer is
// reusable (eager: buffered on the wire; rendezvous: fully transferred).
func (r *Rank) Send(buf mem.Ptr, count int, dt *datatype.Datatype, dest, tag int) {
	q := r.Isend(buf, count, dt, dest, tag)
	r.Proc().Wait(q.done)
}

func (r *Rank) isend(buf mem.Ptr, count int, dt *datatype.Datatype, dest, tag, ctx int) *Request {
	r.callOverhead()
	checkType(dt, count)
	if dest == ProcNull {
		return r.nullRequest(SendReq)
	}
	if dest < 0 || dest >= len(r.w.ranks) {
		panic(fmt.Sprintf("mpi rank %d: send to invalid rank %d", r.rank, dest))
	}
	q := r.newRequest(SendReq, buf, dt, count, dest, tag, ctx)
	r.stats.BytesSent += int64(q.size)
	q.span = r.w.hub.Start(sendKind(r, q), r.obsTrack, -1, q.size)

	switch {
	case dest == r.rank:
		r.selfSend(q)
	case q.size == 0:
		// Zero-byte messages always travel eagerly, device or host.
		ev := r.hca.PostSend(dest, eagerMsg{r.rank, tag, ctx, 0}, nil)
		ev.OnTrigger(q.CompleteSend)
		r.stats.EagerSent++
	case buf.IsDevice():
		t := r.transport()
		if q.size <= r.w.cfg.EagerLimit {
			t.StageToHost(q, func(packed []byte) {
				ev := r.hca.PostSend(dest, eagerMsg{r.rank, tag, ctx, q.size}, packed)
				ev.OnTrigger(q.CompleteSend)
			})
			r.stats.EagerSent++
		} else {
			t.StartRendezvousSend(q)
			r.stats.RndvSent++
		}
	case q.size <= r.w.cfg.EagerLimit:
		r.Proc().Sleep(r.hostPackCost(dt, count))
		payload := make([]byte, q.size)
		dt.PackBytes(payload, buf, count)
		ev := r.hca.PostSend(dest, eagerMsg{r.rank, tag, ctx, q.size}, payload)
		ev.OnTrigger(q.CompleteSend)
		r.stats.EagerSent++
	default:
		r.startHostRendezvous(q)
		r.stats.RndvSent++
	}
	return q
}

// sendKind classifies a send request for tracing.
func sendKind(r *Rank, q *Request) string {
	switch {
	case q.peer == r.rank:
		return obs.KindSendSelf
	case q.size > r.w.cfg.EagerLimit:
		return obs.KindSendRndv
	default:
		return obs.KindSendEager
	}
}

// startHostRendezvous dispatches a large host-buffer send onto the
// configured protocol.
func (r *Rank) startHostRendezvous(q *Request) {
	if r.w.cfg.Rendezvous == RendezvousGet {
		r.sendHostGet(q)
		return
	}
	r.SendRTS(q)
	r.w.e.Spawn(fmt.Sprintf("rank%d.hostsend%d", r.rank, q.id), func(p *sim.Proc) {
		r.sendHostData(p, q)
	})
}

// selfSend delivers a message to this same rank without touching the
// fabric: the packed bytes are matched through the normal queues.
func (r *Rank) selfSend(q *Request) {
	deliver := func(packed []byte) {
		r.dispatchEager(r.rank, q.tag, q.ctx, q.size, packed)
		q.CompleteSend()
	}
	if q.size == 0 {
		deliver(nil)
		return
	}
	if q.buf.IsDevice() {
		r.transport().StageToHost(q, deliver)
		return
	}
	r.Proc().Sleep(r.hostPackCost(q.dt, q.count))
	payload := make([]byte, q.size)
	q.dt.PackBytes(payload, q.buf, q.count)
	deliver(payload)
}

// SendRTS posts the rendezvous request-to-send for a send request. GPU
// transports call this before (or while) packing begins, so the handshake
// overlaps datatype processing as in the paper's design.
func (r *Rank) SendRTS(q *Request) {
	r.w.hub.Instant(obs.KindRTS, r.obsTrack, -1, q.size)
	r.hca.PostSend(q.peer, rtsMsg{r.rank, q.tag, q.ctx, q.size, q.id}, nil)
}

// AwaitCTS blocks until the first CTS for this send arrives and returns
// the transfer geometry the receiver chose.
func (q *Request) AwaitCTS(p *sim.Proc) (totalChunks, chunkBytes int) {
	for q.totalChunks == 0 {
		q.waitSlotEvent(p)
	}
	return q.totalChunks, q.chunkBytes
}

// AwaitSlot blocks until the landing slot for the given chunk has been
// announced.
func (q *Request) AwaitSlot(p *sim.Proc, chunk int) Slot {
	for {
		if s, ok := q.slots[chunk]; ok {
			return s
		}
		q.waitSlotEvent(p)
	}
}

func (q *Request) waitSlotEvent(p *sim.Proc) {
	if q.slotEv == nil {
		q.slotEv = q.r.w.e.NewEvent(fmt.Sprintf("rank%d.req%d.cts", q.r.rank, q.id))
	}
	p.Wait(q.slotEv)
}

// RDMAChunk places one packed chunk into its announced slot on rail 0 and
// posts the chunk's FIN message behind it (ordered delivery makes the FIN
// arrive after the data). It returns the local completion event, after
// which the source buffer is reusable.
func (r *Rank) RDMAChunk(q *Request, s Slot, src mem.Ptr, n int) *sim.Event {
	return r.RDMAChunkRail(q, s, src, n, 0)
}

// RDMAChunkRail is RDMAChunk on an explicit HCA rail. The data write and
// its FIN travel on the same rail — wire FIFO ordering holds only per
// rail, so posting them on different rails would let the FIN overtake its
// data. FINs from different rails may arrive in any interleaving; the
// receiver must not assume chunk order.
func (r *Rank) RDMAChunkRail(q *Request, s Slot, src mem.Ptr, n, rail int) *sim.Event {
	return r.RDMAChunkRailSpan(q, s, src, n, rail, obs.Span{})
}

// RDMAChunkRailSpan is RDMAChunkRail with the chunk's wire tasks and FIN
// marker parented under the sender's rdma stage span, so the critical-path
// analyzer can follow chunk identity across the fabric. An inert span
// degrades to plain tracing.
func (r *Rank) RDMAChunkRailSpan(q *Request, s Slot, src mem.Ptr, n, rail int, sp obs.Span) *sim.Event {
	if n != s.Len {
		panic(fmt.Sprintf("mpi: chunk %d length %d does not match slot length %d", s.Chunk, n, s.Len))
	}
	ev := r.hca.RDMAWriteRailTask(q.peer, src, n, s.Rkey, s.Off, rail, sp, s.Chunk)
	r.w.hub.InstantChild(sp, obs.KindFIN, r.obsTrack, s.Chunk, n)
	r.hca.PostSendRail(q.peer, finMsg{q.peerID, s.Chunk}, nil, rail)
	return ev
}

// RDMANicChunkRailSpan places one chunk into its announced slot with the
// HCA's scatter/gather unit walking the datatype in place of a packed
// source buffer (ib.RDMAWriteGatherRailTask). The gather delays the wire
// post by the SGE engine time, so the FIN cannot be posted here at call
// time — it would overtake the data on the rail FIFO. Instead it rides
// the onWirePosted hook, which the HCA invokes synchronously right after
// posting the data transfer, restoring the exact post order
// RDMAChunkRailSpan gets for free.
func (r *Rank) RDMANicChunkRailSpan(q *Request, s Slot, sg ib.SGDesc, rail int, sp obs.Span) *sim.Event {
	if sg.N != s.Len {
		panic(fmt.Sprintf("mpi: chunk %d length %d does not match slot length %d", s.Chunk, sg.N, s.Len))
	}
	return r.hca.RDMAWriteGatherRailTask(q.peer, sg, s.Rkey, s.Off, rail, sp, s.Chunk, func() {
		r.w.hub.InstantChild(sp, obs.KindFIN, r.obsTrack, s.Chunk, sg.N)
		r.hca.PostSendRail(q.peer, finMsg{q.peerID, s.Chunk}, nil, rail)
	})
}

// sendHostData is the host-memory rendezvous sender: pack each chunk on
// the CPU and place it. Chunks are processed in order; each chunk's pack
// overlaps the previous chunk's wire time through the async RDMA post.
// Packing indexes the datatype's cached chunk plan, so the per-chunk walk
// re-derives nothing.
func (r *Rank) sendHostData(p *sim.Proc, q *Request) {
	total, chunkBytes := q.AwaitCTS(p)
	plan := q.dt.ChunkPlan(q.count, chunkBytes)
	staging := r.AllocHost(chunkBytes)
	defer r.FreeHost(staging)
	var lastEv *sim.Event
	for c := 0; c < total; c++ {
		s := q.AwaitSlot(p, c)
		off := c * chunkBytes
		p.Sleep(r.hostCopyCost(s.Len))
		plan.PackRange(staging, q.buf, off, s.Len)
		lastEv = r.RDMAChunk(q, s, staging, s.Len)
		// The staging buffer is reused next iteration, so wait for the
		// HCA to have read it (local completion).
		p.Wait(lastEv)
	}
	if lastEv != nil {
		p.Wait(lastEv)
	}
	q.CompleteSend()
}

// ---------------------------------------------------------------------------
// Receive side

// Irecv posts a non-blocking receive (MPI_Irecv). source may be AnySource
// and tag may be AnyTag.
func (r *Rank) Irecv(buf mem.Ptr, count int, dt *datatype.Datatype, source, tag int) *Request {
	return r.irecv(buf, count, dt, source, tag, ctxPt2pt)
}

// Recv is the blocking form (MPI_Recv).
func (r *Rank) Recv(buf mem.Ptr, count int, dt *datatype.Datatype, source, tag int) Status {
	q := r.Irecv(buf, count, dt, source, tag)
	r.Proc().Wait(q.done)
	return q.status
}

func (r *Rank) irecv(buf mem.Ptr, count int, dt *datatype.Datatype, source, tag, ctx int) *Request {
	r.callOverhead()
	checkType(dt, count)
	if source == ProcNull {
		return r.nullRequest(RecvReq)
	}
	q := r.newRequest(RecvReq, buf, dt, count, source, tag, ctx)
	q.span = r.w.hub.Start(obs.KindRecv, r.obsTrack, -1, q.size)

	// Try the unexpected queue first, in arrival order.
	for i, in := range r.unexpected {
		if !matches(source, tag, ctx, in.from, in.tag, in.ctx) {
			continue
		}
		r.unexpected = append(r.unexpected[:i], r.unexpected[i+1:]...)
		switch {
		case in.isRts && in.isGet:
			r.startRecvGet(q, in.from, in.tag, in.size, in.sendID, in.rkey)
		case in.isRts:
			r.startRecvData(q, in.from, in.tag, in.size, in.sendID)
		default:
			r.deliverEager(q, in.from, in.tag, in.size, in.payload)
		}
		return q
	}
	r.posted = append(r.posted, q)
	return q
}

// matches applies MPI matching rules: context must agree; source and tag
// match directly or through wildcards on the posted side.
func matches(wantSrc, wantTag, wantCtx, from, tag, ctx int) bool {
	if wantCtx != ctx {
		return false
	}
	if wantSrc != AnySource && wantSrc != from {
		return false
	}
	if wantTag != AnyTag && wantTag != tag {
		return false
	}
	return true
}

// handleMessage is the HCA upcall: it runs in engine context on every
// arriving protocol message.
func (r *Rank) handleMessage(from int, msg ib.Message, payload []byte) {
	switch m := msg.(type) {
	case eagerMsg:
		r.dispatchEager(m.Src, m.Tag, m.Ctx, m.Size, payload)
	case rtsMsg:
		r.dispatchRTS(m)
	case rtsGetMsg:
		r.dispatchRTSGet(m)
	case doneMsg:
		q := r.reqs[m.SendID]
		if q == nil {
			panic(fmt.Sprintf("mpi rank %d: DONE for unknown send %d", r.rank, m.SendID))
		}
		q.onDone()
	case ctsMsg:
		q := r.reqs[m.SendID]
		if q == nil {
			panic(fmt.Sprintf("mpi rank %d: CTS for unknown send %d", r.rank, m.SendID))
		}
		q.peerID = m.RecvID
		q.totalChunks = m.TotalChunks
		q.chunkBytes = m.ChunkBytes
		if q.slots == nil {
			q.slots = map[int]Slot{}
		}
		for _, s := range m.Slots {
			q.slots[s.Chunk] = s
		}
		if q.slotEv != nil {
			q.slotEv.Trigger()
			q.slotEv = nil
		}
	case finMsg:
		q := r.reqs[m.RecvID]
		if q == nil {
			panic(fmt.Sprintf("mpi rank %d: FIN for unknown recv %d", r.rank, m.RecvID))
		}
		q.finQ.Put(m.Chunk)
	default:
		panic(fmt.Sprintf("mpi rank %d: unknown message %T", r.rank, msg))
	}
}

func (r *Rank) dispatchEager(from, tag, ctx, size int, payload []byte) {
	r.stats.EagerRecvd++
	if q := r.matchPosted(from, tag, ctx); q != nil {
		r.deliverEager(q, from, tag, size, payload)
		return
	}
	r.stats.Unexpected++
	r.unexpected = append(r.unexpected, &inbound{
		from: from, tag: tag, ctx: ctx, size: size,
		payload: append([]byte(nil), payload...),
	})
	r.notifyArrival()
}

func (r *Rank) dispatchRTS(m rtsMsg) {
	r.stats.RndvRecvd++
	if q := r.matchPosted(m.Src, m.Tag, m.Ctx); q != nil {
		r.startRecvData(q, m.Src, m.Tag, m.Size, m.SendID)
		return
	}
	r.stats.Unexpected++
	r.unexpected = append(r.unexpected, &inbound{
		from: m.Src, tag: m.Tag, ctx: m.Ctx, size: m.Size,
		sendID: m.SendID, isRts: true,
	})
	r.notifyArrival()
}

// matchPosted removes and returns the first posted receive matching the
// arrival, or nil.
func (r *Rank) matchPosted(from, tag, ctx int) *Request {
	for i, q := range r.posted {
		if matches(q.peer, q.tag, q.ctx, from, tag, ctx) {
			r.posted = append(r.posted[:i], r.posted[i+1:]...)
			return q
		}
	}
	return nil
}

// checkTruncation panics when the incoming message exceeds the posted
// buffer, MPI's MPI_ERR_TRUNCATE condition.
func (q *Request) checkTruncation(size int) {
	if size > q.size {
		panic(fmt.Sprintf("mpi rank %d: message truncation: incoming %d bytes, posted %d (MPI_ERR_TRUNCATE)",
			q.r.rank, size, q.size))
	}
}

// deliverEager completes a matched eager receive. Runs in engine or
// process context.
func (q *Request) setMatched(from, tag, size int) {
	q.status = Status{Source: from, Tag: tag, Bytes: size}
	q.matchedSize = size
	q.checkTruncation(size)
}

func (r *Rank) deliverEager(q *Request, from, tag, size int, payload []byte) {
	q.setMatched(from, tag, size)
	if size == 0 {
		q.CompleteRecv()
		return
	}
	if q.buf.IsDevice() {
		r.transport().DeliverFromHost(q, append([]byte(nil), payload...))
		return
	}
	if size%q.dt.Size() != 0 {
		panic(fmt.Sprintf("mpi rank %d: received %d bytes, not a multiple of element size %d",
			r.rank, size, q.dt.Size()))
	}
	elems := size / q.dt.Size()
	data := append([]byte(nil), payload...)
	// The scatter costs host copy time; completion is deferred by it.
	r.w.e.CallAfter(r.hostPackCost(q.dt, elems), func() {
		q.dt.UnpackBytes(q.buf, data, elems)
		q.CompleteRecv()
	})
}

// startRecvData launches the rendezvous receiver for a matched RTS.
func (r *Rank) startRecvData(q *Request, from, tag, size, sendID int) {
	q.setMatched(from, tag, size)
	q.peer = from // resolve AnySource for the data phase
	q.peerID = sendID
	q.finQ = sim.NewQueue[int](r.w.e, fmt.Sprintf("rank%d.req%d.fin", r.rank, q.id))
	if q.buf.IsDevice() {
		r.transport().StartRendezvousRecv(q)
		return
	}
	r.w.e.Spawn(fmt.Sprintf("rank%d.hostrecv%d", r.rank, q.id), func(p *sim.Proc) {
		r.recvHostData(p, q)
	})
}

// SendCTS announces landing slots to the sender. GPU transports may call
// it several times with successive batches when staging memory is scarce.
func (r *Rank) SendCTS(q *Request, totalChunks, chunkBytes int, slots []Slot) {
	r.w.hub.Instant(obs.KindCTS, r.obsTrack, -1, len(slots)*chunkBytes)
	r.hca.PostSend(q.peer, ctsMsg{
		SendID: q.peerID, RecvID: q.id,
		TotalChunks: totalChunks, ChunkBytes: chunkBytes,
		Slots: slots,
	}, nil)
}

// AwaitFin blocks until a chunk FIN arrives and returns the chunk index.
func (q *Request) AwaitFin(p *sim.Proc) int {
	return q.finQ.Get(p)
}

// ChunkGeometry returns the pipeline chunking for a transfer of size bytes
// under the world's configured block size.
func (w *World) ChunkGeometry(size int) (totalChunks, chunkBytes int) {
	chunkBytes = w.cfg.BlockSize
	totalChunks = (size + chunkBytes - 1) / chunkBytes
	if totalChunks == 0 {
		totalChunks = 1
	}
	return
}

// recvHostData is the host-memory rendezvous receiver. A receive into a
// single-segment (fully contiguous) host buffer is zero-copy: the user
// buffer itself is registered and announced. Otherwise the data lands in a
// temporary packed buffer and is scattered once all chunks arrive.
func (r *Rank) recvHostData(p *sim.Proc, q *Request) {
	size := q.matchedSize
	total, chunkBytes := r.w.ChunkGeometry(size)

	var landing mem.Ptr
	temp := false
	segs := q.dt.SegmentsOf(q.count)
	if len(segs) == 1 && segs[0].Off == 0 {
		landing = q.buf
	} else {
		landing = r.AllocHost(size)
		temp = true
	}
	region := r.hca.Register(landing, size)

	slots := make([]Slot, total)
	for c := 0; c < total; c++ {
		n := chunkBytes
		if off := c * chunkBytes; off+n > size {
			n = size - off
		}
		slots[c] = Slot{Chunk: c, Rkey: region.Rkey, Off: c * chunkBytes, Len: n}
	}
	r.SendCTS(q, total, chunkBytes, slots)

	for got := 0; got < total; got++ {
		q.AwaitFin(p)
	}
	r.hca.Deregister(region)
	if temp {
		p.Sleep(r.hostPackCost(q.dt, q.count))
		elems := size / q.dt.Size()
		q.dt.Unpack(q.buf, landing, elems)
		r.FreeHost(landing)
	}
	q.CompleteRecv()
}

// ---------------------------------------------------------------------------

// Sendrecv executes a combined send and receive (MPI_Sendrecv), safe
// against the head-to-head deadlock two blocking calls would risk.
func (r *Rank) Sendrecv(
	sendBuf mem.Ptr, sendCount int, sendType *datatype.Datatype, dest, sendTag int,
	recvBuf mem.Ptr, recvCount int, recvType *datatype.Datatype, source, recvTag int,
) Status {
	rq := r.Irecv(recvBuf, recvCount, recvType, source, recvTag)
	sq := r.Isend(sendBuf, sendCount, sendType, dest, sendTag)
	r.Proc().Wait(sq.done)
	r.Proc().Wait(rq.done)
	return rq.status
}
