package mpi

import (
	"fmt"

	"mv2sim/internal/datatype"
	"mv2sim/internal/mem"
)

// Iprobe checks for a matching incoming message without receiving it
// (MPI_Iprobe). It inspects the unexpected queue only — any message that
// has arrived but not been matched. source/tag accept wildcards.
func (r *Rank) Iprobe(source, tag int) (bool, Status) {
	r.callOverhead()
	return r.iprobe(source, tag, ctxPt2pt)
}

func (r *Rank) iprobe(source, tag, ctx int) (bool, Status) {
	for _, in := range r.unexpected {
		if matches(source, tag, ctx, in.from, in.tag, in.ctx) {
			return true, Status{Source: in.from, Tag: in.tag, Bytes: in.size}
		}
	}
	return false, Status{}
}

// Probe blocks until a matching message has arrived (MPI_Probe) and
// returns its envelope; the message stays queued for a later Recv.
func (r *Rank) Probe(source, tag int) Status {
	r.callOverhead()
	for {
		if ok, st := r.iprobe(source, tag, ctxPt2pt); ok {
			return st
		}
		ev := r.w.e.NewEvent(fmt.Sprintf("rank%d.probe", r.rank))
		r.arrivalWaiters = append(r.arrivalWaiters, ev)
		r.Proc().Wait(ev)
	}
}

// notifyArrival wakes all blocked Probe calls; invoked whenever a message
// joins the unexpected queue.
func (r *Rank) notifyArrival() {
	ws := r.arrivalWaiters
	r.arrivalWaiters = nil
	for _, ev := range ws {
		ev.Trigger()
	}
}

// Ssend is the synchronous send (MPI_Ssend): it returns only after the
// receiver has matched the message. It always uses the rendezvous
// protocol, whose CTS is exactly the required matching acknowledgement —
// the same strategy MPICH-family libraries use.
func (r *Rank) Ssend(buf mem.Ptr, count int, dt *datatype.Datatype, dest, tag int) {
	q := r.Issend(buf, count, dt, dest, tag)
	r.Proc().Wait(q.done)
}

// Issend is the non-blocking synchronous send (MPI_Issend).
func (r *Rank) Issend(buf mem.Ptr, count int, dt *datatype.Datatype, dest, tag int) *Request {
	r.callOverhead()
	checkType(dt, count)
	if dest == r.rank {
		// Synchronous self-send: deliver through the local queues; the
		// send completes when the matching receive exists. With a single
		// process per rank the blocking form requires the receive to be
		// pre-posted, as in MPI.
		q := r.newRequest(SendReq, buf, dt, count, dest, tag, ctxPt2pt)
		r.selfSend(q)
		return q
	}
	q := r.newRequest(SendReq, buf, dt, count, dest, tag, ctxPt2pt)
	r.stats.BytesSent += int64(q.size)
	r.stats.RndvSent++
	if buf.IsDevice() && q.size > 0 {
		r.transport().StartRendezvousSend(q)
		return q
	}
	r.startHostRendezvous(q)
	return q
}
