package mpi

import (
	"fmt"

	"mv2sim/internal/datatype"
	"mv2sim/internal/mem"
	"mv2sim/internal/obs"
	"mv2sim/internal/sim"
)

// ReqKind discriminates send and receive requests.
type ReqKind uint8

const (
	SendReq ReqKind = iota
	RecvReq
)

// Status reports the outcome of a completed receive (MPI_Status).
type Status struct {
	Source int
	Tag    int
	// Bytes is the packed size of the received message.
	Bytes int
}

// Request is a non-blocking communication handle (MPI_Request).
type Request struct {
	r     *Rank
	kind  ReqKind
	buf   mem.Ptr
	dt    *datatype.Datatype
	count int
	peer  int // destination (send) or source filter (recv; may be AnySource)
	tag   int // tag (recv side may be AnyTag)
	ctx   int
	size  int // packed bytes: send size, or recv capacity until matched

	done   *sim.Event
	status Status

	// rendezvous state
	id          int             // sendID (sender) or recvID (receiver)
	peerID      int             // the other side's request ID
	totalChunks int             // set by the first CTS (sender) or at match (receiver)
	chunkBytes  int             // pipeline granularity for this transfer
	slots       map[int]Slot    // sender: chunk -> landing slot
	slotEv      *sim.Event      // sender: refreshed "new CTS batch arrived"
	finQ        *sim.Queue[int] // receiver: arrived chunk indices
	matchedSize int             // receiver: actual incoming packed bytes

	// get-protocol state
	srcRkey uint32 // receiver: sender's advertised region
	onDone  func() // sender: cleanup + completion when DONE arrives

	span obs.Span // open over the request's lifetime when tracing
}

// Accessors used by GPU transports.

// Rank returns the owning rank.
func (q *Request) Rank() *Rank { return q.r }

// Kind returns whether this is a send or a receive.
func (q *Request) Kind() ReqKind { return q.kind }

// Buf returns the user buffer.
func (q *Request) Buf() mem.Ptr { return q.buf }

// Datatype returns the element type.
func (q *Request) Datatype() *datatype.Datatype { return q.dt }

// Count returns the element count.
func (q *Request) Count() int { return q.count }

// Peer returns the destination (send) or matched source (recv).
func (q *Request) Peer() int { return q.peer }

// Tag returns the message tag.
func (q *Request) Tag() int { return q.tag }

// Size returns the packed byte size of the transfer. For receives it is
// the actual incoming size once matched.
func (q *Request) Size() int {
	if q.kind == RecvReq && q.matchedSize > 0 {
		return q.matchedSize
	}
	return q.size
}

// Done reports whether the request has completed.
func (q *Request) Done() bool { return q.done.Fired() }

// OnComplete registers fn to run when the request completes; it runs
// immediately if the request is already done. Open-loop load generators
// use it to timestamp completions without dedicating a waiter proc per
// outstanding request.
func (q *Request) OnComplete(fn func()) { q.done.OnTrigger(fn) }

// ObsSpan returns the request's tracing span (inert when tracing is off).
// GPU transports parent their pipeline-stage tasks to it.
func (q *Request) ObsSpan() obs.Span { return q.span }

// newRequest assigns an ID and registers the request for protocol lookup.
func (r *Rank) newRequest(kind ReqKind, buf mem.Ptr, dt *datatype.Datatype, count, peer, tag, ctx int) *Request {
	dtSize := count * dt.Size()
	r.nextID++
	q := &Request{
		r: r, kind: kind, buf: buf, dt: dt, count: count,
		peer: peer, tag: tag, ctx: ctx, size: dtSize,
		id:   r.nextID,
		done: r.w.e.NewEvent(fmt.Sprintf("rank%d.req%d", r.rank, r.nextID)),
	}
	r.reqs[q.id] = q
	r.w.hub.Counter(r.inflightCtr, float64(len(r.reqs)))
	return q
}

// nullRequest returns an already-completed request for communication with
// ProcNull: no data moves, and the status reports ProcNull/AnyTag/0 bytes
// as the MPI standard specifies.
func (r *Rank) nullRequest(kind ReqKind) *Request {
	q := &Request{
		r: r, kind: kind, peer: ProcNull, tag: AnyTag,
		dt:     datatype.Byte,
		done:   r.w.e.NewEvent("procnull"),
		status: Status{Source: ProcNull, Tag: AnyTag, Bytes: 0},
	}
	q.done.Trigger()
	return q
}

// complete finalizes the request.
func (q *Request) complete() {
	delete(q.r.reqs, q.id)
	q.r.w.hub.Counter(q.r.inflightCtr, float64(len(q.r.reqs)))
	q.span.End()
	q.done.Trigger()
}

// CompleteSend is called by transports when the sender side has finished.
func (q *Request) CompleteSend() {
	if q.kind != SendReq {
		panic("mpi: CompleteSend on a receive request")
	}
	q.complete()
}

// CompleteRecv is called by transports when the data is fully in the user
// buffer. It fills in the status from the matched message.
func (q *Request) CompleteRecv() {
	if q.kind != RecvReq {
		panic("mpi: CompleteRecv on a send request")
	}
	q.complete()
}

// Wait blocks until the request completes and returns its status
// (MPI_Wait).
func (r *Rank) Wait(q *Request) Status {
	r.callOverhead()
	r.Proc().Wait(q.done)
	return q.status
}

// Waitall blocks until every request completes (MPI_Waitall).
func (r *Rank) Waitall(qs ...*Request) {
	r.callOverhead()
	for _, q := range qs {
		r.Proc().Wait(q.done)
	}
}

// Waitany blocks until at least one of the requests completes and returns
// its index and status (MPI_Waitany). Panics on an empty list.
func (r *Rank) Waitany(qs ...*Request) (int, Status) {
	r.callOverhead()
	if len(qs) == 0 {
		panic("mpi: Waitany with no requests")
	}
	events := make([]*sim.Event, len(qs))
	for i, q := range qs {
		events[i] = q.done
	}
	idx := r.Proc().WaitAny(events...)
	return idx, qs[idx].status
}

// Test reports whether the request has completed without blocking
// (MPI_Test).
func (r *Rank) Test(q *Request) (bool, Status) {
	r.callOverhead()
	if q.done.Fired() {
		return true, q.status
	}
	return false, Status{}
}
