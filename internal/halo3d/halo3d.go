// Package halo3d implements a 3D 7-point stencil with halo exchange over
// a 3D process decomposition — the "more applications" extension the
// paper's future work names. It exercises the datatype/GPU path beyond
// Stencil2D's vectors: every face of the local brick is described by an
// MPI subarray datatype over the device-resident field.
//
//   - Z faces are contiguous planes (the fast path, no packing at all);
//   - Y faces are uniform 2D shapes (rows of X elements at plane pitch)
//     that the transport offloads to the device 2D copy engine;
//   - X faces have single-element rows whose spacing jumps at every plane
//     boundary of the halo-padded brick — not a uniform 2D shape, so the
//     transport's generic pack/unpack kernels carry them. One application,
//     all three GPU datatype paths.
//
// A 7-point stencil needs no diagonal neighbours, so the three face
// exchanges are independent. The field is float64 and every run can be
// validated bit-for-bit against a sequential reference.
package halo3d

import (
	"encoding/binary"
	"fmt"
	"math"

	"mv2sim/internal/cluster"
	"mv2sim/internal/cuda"
	"mv2sim/internal/datatype"
	"mv2sim/internal/mem"
	"mv2sim/internal/mpi"
	"mv2sim/internal/sim"
	"mv2sim/internal/trace"
)

// Params configures a run.
type Params struct {
	// PZ, PY, PX is the 3D process grid.
	PZ, PY, PX int
	// NZ, NY, NX is the local interior brick per process.
	NZ, NY, NX int
	Iters      int
	// KernelNsPerCell models the device stencil kernel cost.
	KernelNsPerCell float64
	Validate        bool
	Cluster         cluster.Config
}

// Result reports a run's timing.
type Result struct {
	MedianIter sim.Time
	IterTimes  []sim.Time
	Validated  bool
}

// 7-point weights (convex).
const (
	w3Center = 0.4
	w3Axis   = 0.1
)

// brick is one rank's local state.
type brick struct {
	p          Params
	node       *cluster.Node
	cart       *mpi.CartComm
	cz, cy, cx int // grid coordinates
	// Extents including halo.
	sz, sy, sx int
	in, out    mem.Ptr

	faceLoZ, faceHiZ *datatype.Datatype // send types (interior boundary planes)
	haloLoZ, haloHiZ *datatype.Datatype // recv types (halo planes)
	faceLoY, faceHiY *datatype.Datatype
	haloLoY, haloHiY *datatype.Datatype
	faceLoX, faceHiX *datatype.Datatype
	haloLoX, haloHiX *datatype.Datatype

	kstream *cuda.Stream
}

// idx returns the element index of (z,y,x) counted with halo.
func (b *brick) idx(z, y, x int) int { return (z*b.sy+y)*b.sx + x }

// sub builds a committed subarray type over the halo-extended brick.
func (b *brick) sub(subsizes, starts [3]int) *datatype.Datatype {
	t, err := datatype.Subarray(
		[]int{b.sz, b.sy, b.sx},
		subsizes[:], starts[:],
		datatype.RowMajor, datatype.Float64)
	if err != nil {
		panic(err)
	}
	return t.MustCommit()
}

func newBrick(p Params, node *cluster.Node, cart *mpi.CartComm) *brick {
	coords := cart.Coords(cart.Rank())
	b := &brick{
		p: p, node: node, cart: cart,
		cz: coords[0], cy: coords[1], cx: coords[2],
		sz: p.NZ + 2, sy: p.NY + 2, sx: p.NX + 2,
	}
	bytes := b.sz * b.sy * b.sx * 8
	b.in = node.Ctx.MustMalloc(bytes)
	b.out = node.Ctx.MustMalloc(bytes)

	nz, ny, nx := p.NZ, p.NY, p.NX
	// Z faces: whole interior XY planes.
	b.faceLoZ = b.sub([3]int{1, ny, nx}, [3]int{1, 1, 1})
	b.faceHiZ = b.sub([3]int{1, ny, nx}, [3]int{nz, 1, 1})
	b.haloLoZ = b.sub([3]int{1, ny, nx}, [3]int{0, 1, 1})
	b.haloHiZ = b.sub([3]int{1, ny, nx}, [3]int{nz + 1, 1, 1})
	// Y faces: XZ planes.
	b.faceLoY = b.sub([3]int{nz, 1, nx}, [3]int{1, 1, 1})
	b.faceHiY = b.sub([3]int{nz, 1, nx}, [3]int{1, ny, 1})
	b.haloLoY = b.sub([3]int{nz, 1, nx}, [3]int{1, 0, 1})
	b.haloHiY = b.sub([3]int{nz, 1, nx}, [3]int{1, ny + 1, 1})
	// X faces: YZ planes (single-element rows).
	b.faceLoX = b.sub([3]int{nz, ny, 1}, [3]int{1, 1, 1})
	b.faceHiX = b.sub([3]int{nz, ny, 1}, [3]int{1, 1, nx})
	b.haloLoX = b.sub([3]int{nz, ny, 1}, [3]int{1, 1, 0})
	b.haloHiX = b.sub([3]int{nz, ny, 1}, [3]int{1, 1, nx + 1})
	return b
}

// initValue is the deterministic initial condition at global coordinates.
func initValue(gz, gy, gx int) float64 {
	return float64((gz*5+gy*11+gx*17)%97) / 97.0
}

func (b *brick) initField() {
	total := b.sz * b.sy * b.sx * 8
	buf := b.in.Bytes(total)
	for i := range buf {
		buf[i] = 0
	}
	out := b.out.Bytes(total)
	for i := range out {
		out[i] = 0
	}
	for z := 1; z <= b.p.NZ; z++ {
		for y := 1; y <= b.p.NY; y++ {
			for x := 1; x <= b.p.NX; x++ {
				v := initValue(b.cz*b.p.NZ+z-1, b.cy*b.p.NY+y-1, b.cx*b.p.NX+x-1)
				binary.LittleEndian.PutUint64(buf[b.idx(z, y, x)*8:], math.Float64bits(v))
			}
		}
	}
}

// exchange swaps all six faces with the Cartesian neighbours, device
// buffers and subarray datatypes straight into MPI — the paper's
// programming model in three dimensions. ProcNull at domain boundaries
// makes the code uniform.
func (b *brick) exchange() {
	r := b.node.Rank
	type dir struct {
		dim        int
		face, halo *datatype.Datatype // send low face, recv low halo
		face2      *datatype.Datatype // send high face
		halo2      *datatype.Datatype // recv high halo
	}
	dirs := []dir{
		{0, b.faceLoZ, b.haloLoZ, b.faceHiZ, b.haloHiZ},
		{1, b.faceLoY, b.haloLoY, b.faceHiY, b.haloHiY},
		{2, b.faceLoX, b.haloLoX, b.faceHiX, b.haloHiX},
	}
	for _, d := range dirs {
		lo, hi := b.cart.Shift(d.dim, 1) // lo: sends to us from below; hi: our +1 neighbour
		reqs := []*mpi.Request{
			b.cart.Irecv(b.in, 1, d.halo, lo, 10+d.dim),
			b.cart.Irecv(b.in, 1, d.halo2, hi, 20+d.dim),
		}
		b.cart.Send(b.in, 1, d.face, lo, 20+d.dim)  // our low face is their high halo
		b.cart.Send(b.in, 1, d.face2, hi, 10+d.dim) // our high face is their low halo
		r.Waitall(reqs...)
	}
}

// applyStencil runs the 7-point update in.in -> b.out on raw slices.
func (b *brick) applyStencil() {
	total := b.sz * b.sy * b.sx * 8
	in := b.in.Bytes(total)
	out := b.out.Bytes(total)
	ld := func(i int) float64 { return math.Float64frombits(binary.LittleEndian.Uint64(in[i*8:])) }
	planeE := b.sy * b.sx
	for z := 1; z <= b.p.NZ; z++ {
		for y := 1; y <= b.p.NY; y++ {
			base := (z*b.sy + y) * b.sx
			for x := 1; x <= b.p.NX; x++ {
				i := base + x
				v := w3Center*ld(i) + w3Axis*(ld(i-1)+ld(i+1)+ld(i-b.sx)+ld(i+b.sx)+ld(i-planeE)+ld(i+planeE))
				binary.LittleEndian.PutUint64(out[i*8:], math.Float64bits(v))
			}
		}
	}
}

// Run executes the 3D halo benchmark.
func Run(p Params) (*Result, error) {
	if p.PZ <= 0 || p.PY <= 0 || p.PX <= 0 || p.NZ <= 0 || p.NY <= 0 || p.NX <= 0 {
		return nil, fmt.Errorf("halo3d: bad geometry %dx%dx%d grid, %dx%dx%d local", p.PZ, p.PY, p.PX, p.NZ, p.NY, p.NX)
	}
	if p.Iters == 0 {
		p.Iters = 2
	}
	if p.KernelNsPerCell == 0 {
		p.KernelNsPerCell = 1.0
	}
	nodes := p.PZ * p.PY * p.PX
	ccfg := p.Cluster
	ccfg.Nodes = nodes
	if ccfg.GPUMemBytes == 0 {
		per := (p.NZ + 2) * (p.NY + 2) * (p.NX + 2) * 8
		ccfg.GPUMemBytes = 2*per + (32 << 20)
	}
	cl := cluster.New(ccfg)

	bricks := make([]*brick, nodes)
	iterStart := make([]sim.Time, p.Iters)
	iterEnd := make([]sim.Time, p.Iters)
	err := cl.Run(func(n *cluster.Node) {
		r := n.Rank
		cart := r.Comm().CartCreate([]int{p.PZ, p.PY, p.PX}, []bool{false, false, false})
		b := newBrick(p, n, cart)
		bricks[r.Rank()] = b
		b.initField()
		r.Barrier()
		for it := 0; it < p.Iters; it++ {
			r.Barrier()
			if r.Now() > iterStart[it] {
				iterStart[it] = r.Now()
			}
			b.exchange()
			if b.kstream == nil {
				b.kstream = n.Ctx.NewStream()
			}
			done := n.Ctx.LaunchKernel(r.Proc(), b.kstream, p.NZ*p.NY*p.NX, p.KernelNsPerCell, b.applyStencil)
			r.Proc().Wait(done)
			b.in, b.out = b.out, b.in
			if r.Now() > iterEnd[it] {
				iterEnd[it] = r.Now()
			}
		}
		r.Barrier()
	})
	if err != nil {
		return nil, err
	}
	res := &Result{}
	for i := 0; i < p.Iters; i++ {
		res.IterTimes = append(res.IterTimes, iterEnd[i]-iterStart[i])
	}
	res.MedianIter = trace.Median(res.IterTimes)
	if p.Validate {
		if err := validate(p, bricks); err != nil {
			return nil, err
		}
		res.Validated = true
	}
	// Release device buffers only after validation has read the simulated
	// memory; Free is pure allocator bookkeeping and works post-shutdown.
	for _, b := range bricks {
		if err := b.node.Ctx.Free(b.in); err != nil {
			return nil, fmt.Errorf("halo3d: free brick: %w", err)
		}
		if err := b.node.Ctx.Free(b.out); err != nil {
			return nil, fmt.Errorf("halo3d: free brick: %w", err)
		}
	}
	if err := cl.CheckDeviceLeaks(); err != nil {
		return nil, err
	}
	return res, nil
}
