package halo3d

import (
	"testing"

	"mv2sim/internal/datatype"
)

func TestCorrectnessAcrossDecompositions(t *testing.T) {
	grids := []struct{ pz, py, px int }{
		{1, 1, 1}, // no communication
		{2, 1, 1}, // Z faces only (contiguous)
		{1, 2, 1}, // Y faces only (uniform 2D)
		{1, 1, 2}, // X faces only (pack kernel)
		{2, 2, 2}, // everything at once
	}
	for _, g := range grids {
		res, err := Run(Params{
			PZ: g.pz, PY: g.py, PX: g.px,
			NZ: 6, NY: 7, NX: 5,
			Iters: 3, Validate: true,
		})
		if err != nil {
			t.Fatalf("%dx%dx%d: %v", g.pz, g.py, g.px, err)
		}
		if !res.Validated {
			t.Fatalf("%dx%dx%d: not validated", g.pz, g.py, g.px)
		}
		if res.MedianIter <= 0 {
			t.Errorf("%dx%dx%d: non-positive iteration time", g.pz, g.py, g.px)
		}
	}
}

func TestLargeFacesUseRendezvous(t *testing.T) {
	// Faces big enough to exceed the eager limit exercise the full chunked
	// pipeline through subarray types.
	res, err := Run(Params{
		PZ: 1, PY: 1, PX: 2,
		NZ: 48, NY: 48, NX: 16,
		Iters: 2, Validate: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Validated {
		t.Fatal("not validated")
	}
}

func TestFaceTypeShapes(t *testing.T) {
	// Verify the shape analysis assumptions documented in the package
	// comment: Z contiguous, Y uniform 2D, X non-uniform.
	mk := func(sub, start [3]int) *datatype.Datatype {
		dt, err := datatype.Subarray([]int{8, 9, 10}, sub[:], start[:], datatype.RowMajor, datatype.Float64)
		if err != nil {
			t.Fatal(err)
		}
		return dt.MustCommit()
	}
	zface := mk([3]int{1, 7, 8}, [3]int{1, 1, 1})
	if sh, ok := zface.Uniform2D(1); !ok || sh.Rows != 7 {
		t.Errorf("Z face shape = %+v ok=%v, want 7 contiguous rows", sh, ok)
	}
	yface := mk([3]int{6, 1, 8}, [3]int{1, 1, 1})
	if sh, ok := yface.Uniform2D(1); !ok || sh.Rows != 6 || sh.Pitch != 9*10*8 {
		t.Errorf("Y face shape = %+v ok=%v", sh, ok)
	}
	xface := mk([3]int{6, 7, 1}, [3]int{1, 1, 1})
	if _, ok := xface.Uniform2D(1); ok {
		t.Error("X face unexpectedly uniform (plane-boundary jumps should break it)")
	}
}

func TestBadGeometryRejected(t *testing.T) {
	if _, err := Run(Params{PZ: 0, PY: 1, PX: 1, NZ: 4, NY: 4, NX: 4}); err == nil {
		t.Error("zero grid accepted")
	}
}
