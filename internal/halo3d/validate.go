package halo3d

import (
	"encoding/binary"
	"fmt"
	"math"
)

// validate recomputes the global 3D stencil sequentially and compares
// every rank's final interior bit-for-bit (float64 arithmetic matches the
// kernel exactly).
func validate(p Params, bricks []*brick) error {
	gz, gy, gx := p.PZ*p.NZ, p.PY*p.NY, p.PX*p.NX
	sy, sx := gy+2, gx+2
	idx := func(z, y, x int) int { return (z*sy+y)*sx + x }
	cur := make([]float64, (gz+2)*sy*sx)
	next := make([]float64, len(cur))
	for z := 0; z < gz; z++ {
		for y := 0; y < gy; y++ {
			for x := 0; x < gx; x++ {
				cur[idx(z+1, y+1, x+1)] = initValue(z, y, x)
			}
		}
	}
	plane := sy * sx
	for s := 0; s < p.Iters; s++ {
		for z := 1; z <= gz; z++ {
			for y := 1; y <= gy; y++ {
				for x := 1; x <= gx; x++ {
					i := idx(z, y, x)
					next[i] = w3Center*cur[i] + w3Axis*(cur[i-1]+cur[i+1]+cur[i-sx]+cur[i+sx]+cur[i-plane]+cur[i+plane])
				}
			}
		}
		cur, next = next, cur
	}
	for rank, b := range bricks {
		total := b.sz * b.sy * b.sx * 8
		buf := b.in.Bytes(total)
		for z := 1; z <= p.NZ; z++ {
			for y := 1; y <= p.NY; y++ {
				for x := 1; x <= p.NX; x++ {
					want := cur[idx(b.cz*p.NZ+z, b.cy*p.NY+y, b.cx*p.NX+x)]
					got := math.Float64frombits(binary.LittleEndian.Uint64(buf[b.idx(z, y, x)*8:]))
					if got != want {
						return fmt.Errorf("halo3d: rank %d cell (%d,%d,%d): got %v, want %v", rank, z, y, x, got, want)
					}
				}
			}
		}
	}
	return nil
}
