package report

import (
	"strings"
	"testing"

	"mv2sim/internal/sim"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("Table I", "Metric", "Def", "NC")
	tb.Add("MPI_Irecv", "4", "4")
	tb.Add("cudaMemcpy2D", "4", "0")
	out := tb.String()
	if !strings.Contains(out, "Table I") || !strings.Contains(out, "cudaMemcpy2D") {
		t.Errorf("render:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Errorf("line count = %d:\n%s", len(lines), out)
	}
}

func TestTableCellCountMismatchPanics(t *testing.T) {
	tb := NewTable("x", "a", "b")
	defer func() {
		if recover() == nil {
			t.Error("mismatched row did not panic")
		}
	}()
	tb.Add("only-one")
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("t", "a", "b")
	tb.Add("x,y", `quo"te`)
	csv := tb.CSV()
	if !strings.Contains(csv, `"x,y"`) || !strings.Contains(csv, `"quo""te"`) {
		t.Errorf("csv = %q", csv)
	}
	if !strings.HasPrefix(csv, "a,b\n") {
		t.Errorf("csv header = %q", csv)
	}
}

func TestTableAddf(t *testing.T) {
	tb := NewTable("t", "size", "lat")
	tb.Addf("%d|%0.1f", 4096, 12.5)
	if tb.Rows[0][0] != "4096" || tb.Rows[0][1] != "12.5" {
		t.Errorf("row = %v", tb.Rows[0])
	}
}

func TestFigure(t *testing.T) {
	f := NewFigure("Fig 5(a)")
	s1 := f.NewSeries("Cpy2D+Send")
	s2 := f.NewSeries("MV2-GPU-NC")
	for _, size := range []int{16, 1024, 4096} {
		s1.Add(size, sim.Time(size)*sim.Microsecond)
		s2.Add(size, sim.Time(size/2)*sim.Microsecond)
	}
	out := f.String()
	for _, want := range []string{"Fig 5(a)", "Cpy2D+Send", "MV2-GPU-NC", "4K", "16"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(NewFigure("e").String(), "empty") {
		t.Error("empty figure rendering")
	}
}

func TestByteSize(t *testing.T) {
	cases := map[int]string{
		16:      "16",
		1 << 10: "1K",
		4 << 10: "4K",
		1 << 20: "1M",
		4 << 20: "4M",
		1000:    "1000",
	}
	for n, want := range cases {
		if got := ByteSize(n); got != want {
			t.Errorf("ByteSize(%d) = %q, want %q", n, got, want)
		}
	}
}

func TestImprovement(t *testing.T) {
	if got := Improvement(100*sim.Microsecond, 58*sim.Microsecond); got != "42%" {
		t.Errorf("Improvement = %q", got)
	}
	if got := Improvement(0, 5); got != "n/a" {
		t.Errorf("Improvement(0,.) = %q", got)
	}
}

func TestSeconds(t *testing.T) {
	if got := Seconds(1500 * sim.Millisecond); got != "1.500000" {
		t.Errorf("Seconds = %q", got)
	}
}
