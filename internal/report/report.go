// Package report renders the benchmark harness output: aligned ASCII
// tables shaped like the paper's tables, latency series shaped like its
// figures, and CSV export for external plotting.
package report

import (
	"fmt"
	"strings"

	"mv2sim/internal/sim"
)

// Table is a titled grid with a header row.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// Add appends a row; the cell count must match the header count.
func (t *Table) Add(cells ...string) {
	if len(cells) != len(t.Headers) {
		panic(fmt.Sprintf("report: row has %d cells, table has %d columns", len(cells), len(t.Headers)))
	}
	t.Rows = append(t.Rows, cells)
}

// Addf appends a row of formatted values.
func (t *Table) Addf(format string, args ...interface{}) {
	t.Add(strings.Split(fmt.Sprintf(format, args...), "|")...)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&sb, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	line(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	sb.WriteString(strings.Repeat("-", total-2) + "\n")
	for _, row := range t.Rows {
		line(row)
	}
	return sb.String()
}

// CSV renders the table as comma-separated values (headers first).
func (t *Table) CSV() string {
	var sb strings.Builder
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	write := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(esc(c))
		}
		sb.WriteByte('\n')
	}
	write(t.Headers)
	for _, row := range t.Rows {
		write(row)
	}
	return sb.String()
}

// Series is one curve of a latency figure: a name and (size, latency)
// points.
type Series struct {
	Name   string
	Sizes  []int
	Values []sim.Time
}

// Add appends one point.
func (s *Series) Add(size int, v sim.Time) {
	s.Sizes = append(s.Sizes, size)
	s.Values = append(s.Values, v)
}

// Figure is a set of series over the same size axis, rendered as a table
// with one column per series (the textual equivalent of the paper's
// latency plots).
type Figure struct {
	Title  string
	Series []*Series
}

// NewFigure creates a figure.
func NewFigure(title string) *Figure { return &Figure{Title: title} }

// NewSeries adds and returns a named series.
func (f *Figure) NewSeries(name string) *Series {
	s := &Series{Name: name}
	f.Series = append(f.Series, s)
	return s
}

// String renders the figure as an aligned table of microseconds.
func (f *Figure) String() string {
	if len(f.Series) == 0 {
		return f.Title + "\n(empty)\n"
	}
	t := NewTable(f.Title, append([]string{"size"}, names(f.Series)...)...)
	for i, size := range f.Series[0].Sizes {
		row := []string{ByteSize(size)}
		for _, s := range f.Series {
			if i < len(s.Values) {
				row = append(row, fmt.Sprintf("%.1f us", s.Values[i].Micros()))
			} else {
				row = append(row, "-")
			}
		}
		t.Add(row...)
	}
	return t.String()
}

func names(ss []*Series) []string {
	out := make([]string, len(ss))
	for i, s := range ss {
		out[i] = s.Name
	}
	return out
}

// ByteSize formats a byte count the way the paper's axes do (16, 1K, 4M).
func ByteSize(n int) string {
	switch {
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dM", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dK", n>>10)
	default:
		return fmt.Sprintf("%d", n)
	}
}

// Improvement formats the paper's improvement metric: (def-opt)/def.
func Improvement(def, opt sim.Time) string {
	if def == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.0f%%", 100*float64(def-opt)/float64(def))
}

// Seconds formats a virtual duration in seconds with paper-style precision.
func Seconds(t sim.Time) string { return fmt.Sprintf("%.6f", t.Seconds()) }
