package obs

import (
	"strings"
	"testing"

	"mv2sim/internal/sim"
)

// feedStats drives one fixed task stream — two rail lanes of a striped
// D2H engine plus a bare HCA link — through a fresh StatsTracer.
func feedStats() *StatsTracer {
	s := NewStatsTracer()
	emit := func(kind, where string, start, end sim.Time, bytes int) {
		s.TaskEnd(Task{ID: 1, Kind: kind, What: kind, Where: where,
			Chunk: 0, Bytes: bytes, Start: start, End: end})
	}
	emit(KindCopyD2H, "gpu0.d2hEngine.r0", 0, 100, 1024)
	emit(KindCopyD2H, "gpu0.d2hEngine.r1", 50, 250, 2048)
	emit(KindRDMA, "hca0.tx", 100, 400, 3072)
	emit(KindCopyD2H, "gpu0.d2hEngine.r0", 300, 350, 512)
	return s
}

func TestResourceTableDeterministic(t *testing.T) {
	// The same task stream must render byte-identical tables, run after
	// run — the property the dashboard's golden-tested endpoints rest on.
	want := feedStats().ResourceTable("resources").String()
	for i := 0; i < 10; i++ {
		if got := feedStats().ResourceTable("resources").String(); got != want {
			t.Fatalf("run %d drifted:\n%s\nwant\n%s", i, got, want)
		}
	}
}

func TestResourceTableRailAggregation(t *testing.T) {
	tbl := feedStats().ResourceTable("resources")
	// Aggregated row first: base name, lane count, summed count/total/bytes.
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 (aggregate + 2 lanes + bare hca):\n%s", len(tbl.Rows), tbl)
	}
	agg := tbl.Rows[0]
	if agg[0] != "gpu0.d2hEngine" || agg[1] != "2" || agg[2] != "3" || agg[4] != "3584" {
		t.Fatalf("aggregate row = %v", agg)
	}
	// Split rows follow in rail order, indented, with blank lane counts.
	if tbl.Rows[1][0] != "  gpu0.d2hEngine.r0" || tbl.Rows[2][0] != "  gpu0.d2hEngine.r1" {
		t.Fatalf("split rows out of rail order: %v / %v", tbl.Rows[1], tbl.Rows[2])
	}
	if tbl.Rows[1][1] != "" || tbl.Rows[2][1] != "" {
		t.Fatalf("split rows carry a lane count: %v / %v", tbl.Rows[1], tbl.Rows[2])
	}
	// Bare single-lane resources get one row, no split.
	if tbl.Rows[3][0] != "hca0.tx" || tbl.Rows[3][1] != "1" {
		t.Fatalf("bare resource row = %v", tbl.Rows[3])
	}
}

func TestResourceTableRailOrderIndependent(t *testing.T) {
	// Rail lanes first seen out of order (r1 before r0) must still
	// aggregate under the base and split in rail order.
	s := NewStatsTracer()
	s.TaskEnd(Task{ID: 1, Kind: KindCopyD2H, Where: "gpu0.d2hEngine.r1", Start: 0, End: 10, Bytes: 1})
	s.TaskEnd(Task{ID: 2, Kind: KindCopyD2H, Where: "gpu0.d2hEngine.r0", Start: 5, End: 20, Bytes: 2})
	tbl := s.ResourceTable("resources")
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d:\n%s", len(tbl.Rows), tbl)
	}
	if tbl.Rows[1][0] != "  gpu0.d2hEngine.r0" || tbl.Rows[2][0] != "  gpu0.d2hEngine.r1" {
		t.Fatalf("lanes not in rail order:\n%s", tbl)
	}
}

func TestGroupRailsDeterministicOverRepeats(t *testing.T) {
	in := []string{"hca0.tx.r0", "rank0.pack", "hca0.tx.r1", "gpu1.h2dEngine", "hca1.rx.r1", "hca1.rx.r0"}
	want := GroupRails(in)
	for i := 0; i < 10; i++ {
		got := GroupRails(in)
		if len(got) != len(want) {
			t.Fatalf("group count drifted: %d vs %d", len(got), len(want))
		}
		for j := range got {
			if got[j].Base != want[j].Base || strings.Join(got[j].Tracks, ",") != strings.Join(want[j].Tracks, ",") {
				t.Fatalf("run %d group %d drifted: %+v vs %+v", i, j, got[j], want[j])
			}
		}
	}
}
