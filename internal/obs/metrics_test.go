package obs

import (
	"strings"
	"testing"

	"mv2sim/internal/sim"
)

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Sum() != 0 || h.Min() != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Fatalf("empty histogram not zeroed: %+v", h)
	}
	if q := h.Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %d, want 0", q)
	}
}

func TestHistogramMoments(t *testing.T) {
	h := NewHistogram()
	for _, d := range []sim.Time{100, 200, 300, 400} {
		h.Observe(d)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Sum() != 1000 {
		t.Fatalf("sum = %d", h.Sum())
	}
	if h.Min() != 100 || h.Max() != 400 {
		t.Fatalf("min/max = %d/%d", h.Min(), h.Max())
	}
	if h.Mean() != 250 {
		t.Fatalf("mean = %d", h.Mean())
	}
}

func TestHistogramQuantileBounds(t *testing.T) {
	h := NewHistogram()
	for i := sim.Time(1); i <= 1000; i++ {
		h.Observe(i * 100)
	}
	if got := h.Quantile(0); got != h.Min() {
		t.Fatalf("q0 = %d, want min %d", got, h.Min())
	}
	if got := h.Quantile(1); got != h.Max() {
		t.Fatalf("q1 = %d, want max %d", got, h.Max())
	}
	// Power-of-two buckets guarantee a factor-of-two bound on interior
	// quantiles; the true p50 of this uniform distribution is 50_050ns.
	p50 := h.Quantile(0.5)
	if p50 < 25_000 || p50 > 100_100 {
		t.Fatalf("p50 = %d outside the factor-2 band of 50050", p50)
	}
	for _, q := range []float64{0.25, 0.5, 0.95, 0.99} {
		if v := h.Quantile(q); v < h.Min() || v > h.Max() {
			t.Fatalf("q%.2f = %d outside [min,max]", q, v)
		}
	}
}

func TestHistogramQuantileNarrow(t *testing.T) {
	// A distribution narrower than one bucket is reported exactly.
	h := NewHistogram()
	for i := 0; i < 10; i++ {
		h.Observe(12_345)
	}
	for _, q := range []float64{0.01, 0.5, 0.99} {
		if got := h.Quantile(q); got != 12_345 {
			t.Fatalf("q%.2f = %d, want 12345", q, got)
		}
	}
}

func TestHistogramExtremeDurations(t *testing.T) {
	h := NewHistogram()
	h.Observe(-5) // clamps to zero
	h.Observe(0)
	h.Observe(sim.Time(1) << 62)
	if h.Min() != 0 || h.Max() != sim.Time(1)<<62 {
		t.Fatalf("min/max = %d/%d", h.Min(), h.Max())
	}
	if v := h.Quantile(0.99); v < 0 || v > h.Max() {
		t.Fatalf("q99 = %d out of range", v)
	}
}

func TestHistogramBucketsAtPowerOfTwoEdges(t *testing.T) {
	h := NewHistogram()
	// Exactly at bucket edges: 2^k lands in [2^k, 2^(k+1)), 2^k-1 in the
	// bucket below. 0 and 1 share the first cell [0, 2).
	for _, d := range []sim.Time{0, 1, 2, 3, 4, 1024, 1023, 1025, 2048} {
		h.Observe(d)
	}
	want := []Bucket{
		{Lo: 0, Hi: 2, Count: 2},       // 0, 1
		{Lo: 2, Hi: 4, Count: 2},       // 2, 3
		{Lo: 4, Hi: 8, Count: 1},       // 4
		{Lo: 512, Hi: 1024, Count: 1},  // 1023
		{Lo: 1024, Hi: 2048, Count: 2}, // 1024, 1025
		{Lo: 2048, Hi: 4096, Count: 1}, // 2048
	}
	got := h.Buckets()
	if len(got) != len(want) {
		t.Fatalf("buckets = %+v, want %+v", got, want)
	}
	var total uint64
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket %d = %+v, want %+v", i, got[i], want[i])
		}
		total += got[i].Count
	}
	if total != h.Count() {
		t.Fatalf("bucket counts sum to %d, want %d", total, h.Count())
	}
}

func TestHistogramBucketsTopCellClamped(t *testing.T) {
	h := NewHistogram()
	h.Observe(sim.Time(1<<63 - 1))
	bs := h.Buckets()
	if len(bs) != 1 {
		t.Fatalf("buckets = %+v", bs)
	}
	if bs[0].Lo != sim.Time(1)<<62 || bs[0].Hi != sim.Time(1<<63-1) {
		t.Fatalf("top bucket [%d, %d) not clamped to the int64 range", bs[0].Lo, bs[0].Hi)
	}
}

func TestHistogramP999(t *testing.T) {
	// 999 fast observations and one slow outlier: p99.9 must leave the
	// fast bucket and land within [min, max], strictly above p50.
	h := NewHistogram()
	for i := 0; i < 999; i++ {
		h.Observe(1000)
	}
	h.Observe(1 << 20)
	p50, p999 := h.Quantile(0.5), h.Quantile(0.999)
	if p50 != 1000 {
		t.Fatalf("p50 = %d, want 1000", p50)
	}
	if p999 <= p50 || p999 > h.Max() {
		t.Fatalf("p99.9 = %d, want in (%d, %d]", p999, p50, h.Max())
	}
}

func TestHistogramObserveAllocatesNothing(t *testing.T) {
	h := NewHistogram()
	allocs := testing.AllocsPerRun(100, func() {
		h.Observe(4096)
		_ = h.Quantile(0.95)
	})
	if allocs != 0 {
		t.Errorf("Observe+Quantile: %v allocs/op, want 0", allocs)
	}
}

func TestMetricsTracerPerKind(t *testing.T) {
	clk := &fakeClock{}
	m := NewMetricsTracer()
	h := NewHub(clk, m)

	for i := 0; i < 3; i++ {
		clk.t = sim.Time(i * 1000)
		sp := h.Start(KindD2H, "rank0.d2h", i, 65536)
		clk.t += 500
		sp.End()
	}
	clk.t = 10_000
	h.Instant(KindFIN, "rank0.mpi", 0, 0) // instants carry no duration

	if got := m.Kinds(); len(got) != 1 || got[0] != KindD2H {
		t.Fatalf("kinds = %v", got)
	}
	d2h := m.Hist(KindD2H)
	if d2h == nil || d2h.Count() != 3 {
		t.Fatalf("d2h hist = %+v", d2h)
	}
	if d2h.Min() != 500 || d2h.Max() != 500 {
		t.Fatalf("d2h min/max = %d/%d, want 500", d2h.Min(), d2h.Max())
	}
	if m.Hist(KindFIN) != nil {
		t.Fatal("instant task grew a histogram")
	}
	tbl := m.Table("stages").String()
	if !strings.Contains(tbl, KindD2H) || !strings.Contains(tbl, "p95") {
		t.Fatalf("table missing content:\n%s", tbl)
	}
}

func TestPercentileGuards(t *testing.T) {
	clk := &fakeClock{}
	m := NewMetricsTracer()
	h := NewHub(clk, m)

	// Unobserved kind: 0, not ok.
	if v, ok := m.Percentile(KindPack, 0.5); v != 0 || ok {
		t.Fatalf("Percentile(unobserved) = %d, %v; want 0, false", v, ok)
	}

	// One sample: degenerate quantile, still not ok.
	sp := h.Start(KindPack, "gpu0.d2dEngine", 0, 1<<16)
	clk.t = 700
	sp.End()
	if v, ok := m.Percentile(KindPack, 0.99); v != 0 || ok {
		t.Fatalf("Percentile(one sample) = %d, %v; want 0, false", v, ok)
	}
	if tbl := m.Table("t").String(); !strings.Contains(tbl, "-") {
		t.Fatalf("one-sample kind did not render '-' quantiles:\n%s", tbl)
	}

	// Two samples: quantiles are meaningful and reported ok.
	clk.t = 1000
	sp = h.Start(KindPack, "gpu0.d2dEngine", 1, 1<<16)
	clk.t = 1300
	sp.End()
	v, ok := m.Percentile(KindPack, 0.5)
	if !ok {
		t.Fatal("Percentile(two samples) not ok")
	}
	if v < 300 || v > 700 {
		t.Fatalf("p50 of {700, 300} = %d, outside [300, 700]", v)
	}
}

func TestPercentileEmptyTracerTable(t *testing.T) {
	m := NewMetricsTracer()
	// An empty registry renders a header-only table without panicking.
	if tbl := m.Table("empty").String(); !strings.Contains(tbl, "kind") {
		t.Fatalf("empty table malformed:\n%s", tbl)
	}
}
