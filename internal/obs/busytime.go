package obs

import (
	"sort"

	"mv2sim/internal/sim"
)

// BusyTimeTracer measures how long each resource track (a DMA engine, an
// HCA link, a vbuf pool, a CUDA stream) was busy — the union of its task
// intervals, so overlapping holds on the same track are not double
// counted. Utilization over any window follows directly. Modeled on
// Akita's BusyTimeTracer.
type BusyTimeTracer struct {
	ivals  map[string][]interval
	merged map[string]bool
	order  []string

	winSet   bool
	from, to sim.Time
}

type interval struct{ from, to sim.Time }

// NewBusyTimeTracer creates an empty busy-time collector.
func NewBusyTimeTracer() *BusyTimeTracer {
	return &BusyTimeTracer{ivals: map[string][]interval{}, merged: map[string]bool{}}
}

// TaskStart extends the observed window to the task's start.
func (b *BusyTimeTracer) TaskStart(t Task) { b.observe(t.Start) }

// TaskStep is ignored: milestones do not change busy time.
func (b *BusyTimeTracer) TaskStep(Task, string) {}

// TaskEnd records the task's interval on its track. Instant tasks only
// extend the window.
func (b *BusyTimeTracer) TaskEnd(t Task) {
	b.observe(t.Start)
	b.observe(t.End)
	if t.Instant() {
		return
	}
	if _, ok := b.ivals[t.Where]; !ok {
		b.order = append(b.order, t.Where)
	}
	b.ivals[t.Where] = append(b.ivals[t.Where], interval{t.Start, t.End})
	b.merged[t.Where] = false
}

// CounterSample extends the observed window only.
func (b *BusyTimeTracer) CounterSample(_ string, at sim.Time, _ float64) { b.observe(at) }

func (b *BusyTimeTracer) observe(t sim.Time) {
	if !b.winSet {
		b.winSet, b.from, b.to = true, t, t
		return
	}
	if t < b.from {
		b.from = t
	}
	if t > b.to {
		b.to = t
	}
}

// Window returns the [from, to] span of all observed activity.
func (b *BusyTimeTracer) Window() (from, to sim.Time) { return b.from, b.to }

// Wheres returns the tracked resource names in first-seen order.
func (b *BusyTimeTracer) Wheres() []string { return append([]string(nil), b.order...) }

// normalize sorts and unions the track's intervals in place.
func (b *BusyTimeTracer) normalize(where string) []interval {
	ivs := b.ivals[where]
	if b.merged[where] || len(ivs) == 0 {
		return ivs
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].from < ivs[j].from })
	out := ivs[:1]
	for _, iv := range ivs[1:] {
		last := &out[len(out)-1]
		if iv.from <= last.to {
			if iv.to > last.to {
				last.to = iv.to
			}
			continue
		}
		out = append(out, iv)
	}
	b.ivals[where] = out
	b.merged[where] = true
	return out
}

// Busy returns the total busy time of a track over the whole run.
func (b *BusyTimeTracer) Busy(where string) sim.Time {
	var total sim.Time
	for _, iv := range b.normalize(where) {
		total += iv.to - iv.from
	}
	return total
}

// BusyBetween returns the busy time of a track clipped to [from, to].
func (b *BusyTimeTracer) BusyBetween(where string, from, to sim.Time) sim.Time {
	var total sim.Time
	for _, iv := range b.normalize(where) {
		lo, hi := iv.from, iv.to
		if lo < from {
			lo = from
		}
		if hi > to {
			hi = to
		}
		if hi > lo {
			total += hi - lo
		}
	}
	return total
}

// Utilization returns the track's busy fraction of [from, to]; zero for
// an empty window.
func (b *BusyTimeTracer) Utilization(where string, from, to sim.Time) float64 {
	if to <= from {
		return 0
	}
	return float64(b.BusyBetween(where, from, to)) / float64(to-from)
}
