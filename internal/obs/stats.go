package obs

import (
	"fmt"

	"mv2sim/internal/report"
	"mv2sim/internal/sim"
	"mv2sim/internal/trace"
)

// StatsTracer aggregates per-kind counts, durations and byte volumes — a
// paper-style summary table of everything that happened in a run. It also
// aggregates per resource track (Where), with rail-suffixed tracks
// reported both split and summed under their base resource, so rails>1
// runs don't present each rail as an independent resource.
type StatsTracer struct {
	order      []string
	kinds      map[string]*kindStats
	whereOrder []string
	wheres     map[string]*kindStats
}

type kindStats struct {
	count int
	total sim.Time
	bytes int64
	durs  []sim.Time
}

// NewStatsTracer creates an empty aggregator.
func NewStatsTracer() *StatsTracer {
	return &StatsTracer{kinds: map[string]*kindStats{}, wheres: map[string]*kindStats{}}
}

// TaskStart is a no-op; durations are known at TaskEnd.
func (s *StatsTracer) TaskStart(Task) {}

// TaskStep is a no-op.
func (s *StatsTracer) TaskStep(Task, string) {}

// TaskEnd accumulates the task under its kind and its resource track.
func (s *StatsTracer) TaskEnd(t Task) {
	ks := s.kinds[t.Kind]
	if ks == nil {
		ks = &kindStats{}
		s.kinds[t.Kind] = ks
		s.order = append(s.order, t.Kind)
	}
	ks.count++
	ks.total += t.End - t.Start
	ks.bytes += int64(t.Bytes)
	ks.durs = append(ks.durs, t.End-t.Start)

	ws := s.wheres[t.Where]
	if ws == nil {
		ws = &kindStats{}
		s.wheres[t.Where] = ws
		s.whereOrder = append(s.whereOrder, t.Where)
	}
	ws.count++
	ws.total += t.End - t.Start
	ws.bytes += int64(t.Bytes)
}

// CounterSample is a no-op: gauges carry no duration.
func (s *StatsTracer) CounterSample(string, sim.Time, float64) {}

// Kinds returns the observed task kinds in first-seen order.
func (s *StatsTracer) Kinds() []string { return append([]string(nil), s.order...) }

// Count returns the number of tasks of a kind.
func (s *StatsTracer) Count(kind string) int {
	if ks := s.kinds[kind]; ks != nil {
		return ks.count
	}
	return 0
}

// Total returns the summed duration of a kind.
func (s *StatsTracer) Total(kind string) sim.Time {
	if ks := s.kinds[kind]; ks != nil {
		return ks.total
	}
	return 0
}

// Bytes returns the summed byte volume of a kind.
func (s *StatsTracer) Bytes(kind string) int64 {
	if ks := s.kinds[kind]; ks != nil {
		return ks.bytes
	}
	return 0
}

// Avg returns the mean duration of a kind (zero when unobserved).
func (s *StatsTracer) Avg(kind string) sim.Time {
	ks := s.kinds[kind]
	if ks == nil || ks.count == 0 {
		return 0
	}
	return ks.total / sim.Time(ks.count)
}

// Median returns the median duration of a kind.
func (s *StatsTracer) Median(kind string) sim.Time {
	if ks := s.kinds[kind]; ks != nil {
		return trace.Median(ks.durs)
	}
	return 0
}

// Breakdown returns the per-kind total durations as a trace.Breakdown in
// first-seen order.
func (s *StatsTracer) Breakdown() *trace.Breakdown {
	b := trace.NewBreakdown()
	for _, k := range s.order {
		b.Add(k, s.kinds[k].total)
	}
	return b
}

// Wheres returns the observed resource tracks in first-seen order.
func (s *StatsTracer) Wheres() []string { return append([]string(nil), s.whereOrder...) }

// WhereCount returns the number of tasks recorded on a track.
func (s *StatsTracer) WhereCount(where string) int {
	if ws := s.wheres[where]; ws != nil {
		return ws.count
	}
	return 0
}

// WhereTotal returns the summed task duration recorded on a track.
func (s *StatsTracer) WhereTotal(where string) sim.Time {
	if ws := s.wheres[where]; ws != nil {
		return ws.total
	}
	return 0
}

// WhereBytes returns the summed byte volume recorded on a track.
func (s *StatsTracer) WhereBytes(where string) int64 {
	if ws := s.wheres[where]; ws != nil {
		return ws.bytes
	}
	return 0
}

// ResourceTable renders per-resource statistics: one aggregated row per
// logical resource (rail-suffixed tracks summed under their base name,
// with the lane count shown), followed by the per-rail split rows for
// multi-rail resources.
func (s *StatsTracer) ResourceTable(title string) *report.Table {
	t := report.NewTable(title, "resource", "rails", "count", "total (us)", "bytes")
	for _, g := range GroupRails(s.whereOrder) {
		var count int
		var total sim.Time
		var bytes int64
		for _, tr := range g.Tracks {
			count += s.WhereCount(tr)
			total += s.WhereTotal(tr)
			bytes += s.WhereBytes(tr)
		}
		t.Add(g.Base,
			fmt.Sprintf("%d", len(g.Tracks)),
			fmt.Sprintf("%d", count),
			fmt.Sprintf("%.1f", total.Micros()),
			fmt.Sprintf("%d", bytes))
		if len(g.Tracks) > 1 {
			for _, tr := range g.Tracks {
				t.Add("  "+tr, "",
					fmt.Sprintf("%d", s.WhereCount(tr)),
					fmt.Sprintf("%.1f", s.WhereTotal(tr).Micros()),
					fmt.Sprintf("%d", s.WhereBytes(tr)))
			}
		}
	}
	return t
}

// Table renders the per-kind statistics as a report table.
func (s *StatsTracer) Table(title string) *report.Table {
	t := report.NewTable(title, "kind", "count", "total (us)", "avg (us)", "median (us)", "bytes")
	for _, k := range s.order {
		ks := s.kinds[k]
		t.Add(k,
			fmt.Sprintf("%d", ks.count),
			fmt.Sprintf("%.1f", ks.total.Micros()),
			fmt.Sprintf("%.1f", s.Avg(k).Micros()),
			fmt.Sprintf("%.1f", s.Median(k).Micros()),
			fmt.Sprintf("%d", ks.bytes))
	}
	return t
}
