package dash_test

import (
	"bytes"
	"flag"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mv2sim/internal/cluster"
	"mv2sim/internal/core"
	"mv2sim/internal/datatype"
	"mv2sim/internal/load"
	"mv2sim/internal/mem"
	"mv2sim/internal/obs"
	"mv2sim/internal/obs/critpath"
	"mv2sim/internal/obs/dash"
	"mv2sim/internal/obs/store"
)

var update = flag.Bool("update", false, "rewrite golden endpoint payloads")

// runDash drives the pinned pipetrace configuration (1 MB vector, pitch
// 4, memcpy2d — the same run the committed trace golden pins) with the
// full dashboard bundle attached and returns the bundle plus the Chrome
// trace document.
func runDash(t testing.TB, msg, rails int, mode core.PackMode) (dash.Bundle, []byte) {
	t.Helper()
	rows := msg / 4
	vec, err := datatype.Vector(rows, 1, 4, datatype.Float32)
	if err != nil {
		t.Fatal(err)
	}
	vec.MustCommit()

	b := dash.NewBundle()
	chrome := obs.NewChromeTracer()
	cfg := cluster.Config{
		GPUMemBytes: 2*rows*16 + (64 << 20),
		Rails:       rails,
		Tracers:     append(b.Tracers(), chrome),
	}
	cfg.Core.PackMode = mode
	cfg.Core.UnpackMode = mode
	cl := cluster.New(cfg)
	err = cl.Run(func(n *cluster.Node) {
		r := n.Rank
		buf := n.Ctx.MustMalloc(vec.Span(1))
		if r.Rank() == 0 {
			mem.Fill(buf, vec.Span(1), func(i int) byte { return byte(i) })
			r.Send(buf, 1, vec, 1, 0)
		} else {
			r.Recv(buf, 1, vec, 0, 0)
		}
		if err := n.Ctx.Free(buf); err != nil {
			panic(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := chrome.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return b, buf.Bytes()
}

// fixtureStore seeds a small deterministic trajectory store.
func fixtureStore(t testing.TB) *store.Store {
	t.Helper()
	st, err := store.Open(filepath.Join(t.TempDir(), "store.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	err = st.Seed([]store.Record{
		{Commit: "aaaa111", Source: "critpath", Metric: "critpath.msg1M_rails1_memcpy2d.wall_us",
			Unit: "us", Better: store.BetterLower, Value: 2950.0},
		{Commit: "bbbb222", Source: "critpath", Metric: "critpath.msg1M_rails1_memcpy2d.wall_us",
			Unit: "us", Better: store.BetterLower, Value: 2931.5},
		{Commit: "aaaa111", Source: "wallclock", Metric: "wallclock.rails_bandwidth_mbs.rails2",
			Unit: "MB/s", Better: store.BetterHigher, Value: 11900},
	})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestEndpointGoldens pins every JSON endpoint's byte output for the
// standard pinned run. Regenerate with `go test ./internal/obs/dash
// -run Goldens -update` after an intentional payload change.
func TestEndpointGoldens(t *testing.T) {
	b, trace := runDash(t, 1<<20, 1, core.PackModeMemcpy2D)
	srv := dash.New("pipetrace_1M_memcpy2d", b, trace, fixtureStore(t))

	dir := t.TempDir()
	if err := srv.Snapshot(dir); err != nil {
		t.Fatal(err)
	}
	names, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(names) == 0 {
		t.Fatalf("snapshot wrote nothing: %v", err)
	}
	for _, name := range names {
		base := filepath.Base(name)
		got, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		golden := filepath.Join("testdata", base)
		if *update {
			if err := os.MkdirAll("testdata", 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(golden, got, 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(golden)
		if err != nil {
			t.Fatalf("missing golden %s (run with -update): %v", golden, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s drifted from golden:\n--- got\n%s\n--- want\n%s", base, got, want)
		}
	}
}

// TestSnapshotDeterministic asserts two independent runs snapshot
// byte-identically — the property the check.sh dashboard gate rests on.
func TestSnapshotDeterministic(t *testing.T) {
	dirs := [2]string{}
	for i := range dirs {
		b, trace := runDash(t, 256<<10, 2, core.PackModeKernel)
		srv := dash.New("det", b, trace, nil)
		dirs[i] = t.TempDir()
		if err := srv.Snapshot(dirs[i]); err != nil {
			t.Fatal(err)
		}
	}
	names, _ := filepath.Glob(filepath.Join(dirs[0], "*.json"))
	for _, name := range names {
		a, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		bb, err := os.ReadFile(filepath.Join(dirs[1], filepath.Base(name)))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, bb) {
			t.Errorf("%s differs between identical runs:\n%s\nvs\n%s", filepath.Base(name), a, bb)
		}
	}
}

// TestReplayMatchesLive asserts a dashboard rebuilt from the Chrome
// trace (the -trace flag's path) serves the same bytes as the live run.
func TestReplayMatchesLive(t *testing.T) {
	b, trace := runDash(t, 1<<20, 2, core.PackModeKernel)
	col, err := critpath.Ingest(bytes.NewReader(trace))
	if err != nil {
		t.Fatal(err)
	}
	live := dash.New("x", b, trace, nil)
	replay := dash.New("x", dash.Replay(col), trace, nil)

	liveDir, replayDir := t.TempDir(), t.TempDir()
	if err := live.Snapshot(liveDir); err != nil {
		t.Fatal(err)
	}
	if err := replay.Snapshot(replayDir); err != nil {
		t.Fatal(err)
	}
	names, _ := filepath.Glob(filepath.Join(liveDir, "*.json"))
	for _, name := range names {
		a, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		bb, err := os.ReadFile(filepath.Join(replayDir, filepath.Base(name)))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, bb) {
			t.Errorf("%s: replayed dashboard differs from live:\n--- live\n%s\n--- replay\n%s",
				filepath.Base(name), a, bb)
		}
	}
}

// TestHandler exercises the HTTP layer: every endpoint serves its
// payload bytes, the trace downloads, and the embedded page is at /.
func TestHandler(t *testing.T) {
	b, trace := runDash(t, 64<<10, 1, core.PackModeMemcpy2D)
	srv := dash.New("http", b, trace, fixtureStore(t))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	get := func(path string) (int, []byte) {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, body
	}

	dir := t.TempDir()
	if err := srv.Snapshot(dir); err != nil {
		t.Fatal(err)
	}
	for _, ep := range []string{"meta", "resources", "stats", "percentiles", "critpath", "trajectory", "series", "load"} {
		code, body := get("/api/" + ep)
		if code != 200 {
			t.Fatalf("/api/%s = %d", ep, code)
		}
		want, err := os.ReadFile(filepath.Join(dir, ep+".json"))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(body, want) {
			t.Errorf("/api/%s served bytes differ from snapshot", ep)
		}
	}

	if code, body := get("/api/trace"); code != 200 || !bytes.Equal(body, trace) {
		t.Errorf("/api/trace = %d, %d bytes (want 200 with the trace document)", code, len(body))
	}
	if code, body := get("/"); code != 200 || !strings.Contains(string(body), "mv2sim pipeline dashboard") {
		t.Errorf("/ = %d, missing embedded page", code)
	}

	// Attaching a load sweep flips /api/load from a stub to the document.
	doc := &load.Doc{Schema: load.LoadSchema, Seed: 1, Pairs: 4, Engine: "serial",
		Rails: 1, PackMode: "auto", HorizonMs: 2,
		Curves: []load.Curve{load.NewCurve(load.Poisson, []load.Result{
			{OfferedMBs: 1000, GoodputMBs: 990, Transfers: 10, P50Us: 50, P99Us: 90, MaxUs: 120, MakespanMs: 1.5},
		})}}
	srv.SetLoad(doc)
	if code, body := get("/api/load"); code != 200 ||
		!strings.Contains(string(body), `"available": true`) ||
		!strings.Contains(string(body), `"knee_offered_mbs": 1000`) {
		t.Errorf("/api/load with sweep = %d:\n%s", code, body)
	}

	// A traceless server 404s the download rather than serving empty JSON.
	bare := dash.New("bare", dash.NewBundle(), nil, nil)
	ts2 := httptest.NewServer(bare.Handler())
	defer ts2.Close()
	resp, err := ts2.Client().Get(ts2.URL + "/api/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Errorf("traceless /api/trace = %d, want 404", resp.StatusCode)
	}
}
