// Package dash is the live pipeline dashboard: an net/http server over
// one observed simulation run (live tracers or an ingested Chrome trace)
// plus the append-only perf store. It follows the shape of Akita's daisen
// trace-exploration server — a handful of JSON endpoints over a small
// embedded static UI — scaled down to this repo's task stream.
//
// Endpoints (all GET, all byte-deterministic for a given run):
//
//	/api/meta         run label, observed window, transfer/task counts
//	/api/resources    per-resource busy time and utilization, rail lanes
//	                  aggregated under their base resource (sorted by name)
//	/api/stats        per-kind task statistics (count/total/avg/median/bytes)
//	/api/percentiles  per-kind p50/p95/p99 latency (ok=false under 2 samples)
//	/api/critpath     per-transfer stall attribution and model check
//	/api/trajectory   the perf store's recorded metric series
//	/api/series       counter gauges and windowed busy fractions over time
//	/api/load         the attached load–latency sweep (BENCH_load.json)
//	/api/trace        the Chrome trace document (Perfetto-loadable)
//	/                 embedded static page rendering the above
//
// Determinism is a contract, not an accident: every list is explicitly
// ordered (sorted resource names and metric keys, start-ordered
// transfers), all JSON is rendered through one marshaller, and check.sh
// diffs a -snapshot of every endpoint against committed goldens.
package dash

import (
	"embed"
	"encoding/json"
	"fmt"
	"io/fs"
	"net/http"
	"os"
	"path/filepath"
	"sort"

	"mv2sim/internal/load"
	"mv2sim/internal/obs"
	"mv2sim/internal/obs/critpath"
	"mv2sim/internal/obs/store"
	"mv2sim/internal/report"
	"mv2sim/internal/sim"
)

//go:embed static
var staticFS embed.FS

// PayloadSchema versions the endpoint JSON shapes; bump it when a
// breaking field change would invalidate committed goldens or external
// consumers.
const PayloadSchema = 1

// Bundle is the set of tracers a dashboard serves from. Attach all five
// to a live cluster run, or build them from an ingested trace with
// Replay.
type Bundle struct {
	Busy    *obs.BusyTimeTracer
	Stats   *obs.StatsTracer
	Metrics *obs.MetricsTracer
	Series  *obs.SeriesTracer
	Col     *critpath.Collector
}

// NewBundle creates empty tracers ready to attach to a cluster config.
func NewBundle() Bundle {
	return Bundle{
		Busy:    obs.NewBusyTimeTracer(),
		Stats:   obs.NewStatsTracer(),
		Metrics: obs.NewMetricsTracer(),
		Series:  obs.NewSeriesTracer(),
		Col:     critpath.NewCollector(),
	}
}

// Tracers returns the bundle as a cluster-attachable tracer list.
func (b Bundle) Tracers() []obs.Tracer {
	return []obs.Tracer{b.Busy, b.Stats, b.Metrics, b.Series, b.Col}
}

// Replay rebuilds a bundle from an already-collected task stream (e.g. a
// critpath.Ingest of a Chrome trace file): tasks and counter samples are
// fed to the busy, stats, metrics and series tracers in recorded order,
// so the result is deterministic for a given trace document — and
// byte-identical to the live run (the series tracer derives busy windows
// from TaskEnd alone for exactly this reason).
func Replay(col *critpath.Collector) Bundle {
	b := NewBundle()
	b.Col = col
	for _, c := range col.Counters() {
		b.Series.CounterSample(c.Name, c.At, c.Value)
	}
	for _, t := range col.Tasks() {
		b.Busy.TaskEnd(t)
		b.Stats.TaskEnd(t)
		b.Metrics.TaskEnd(t)
		b.Series.TaskEnd(t)
	}
	return b
}

// Server renders one observed run plus the perf store.
type Server struct {
	label   string
	b       Bundle
	trace   []byte       // Chrome trace document served at /api/trace
	st      *store.Store // nil when no store is attached
	loadDoc *load.Doc    // nil when no load sweep is attached
}

// New creates a dashboard server. trace may be nil (the /api/trace
// endpoint then 404s); st may be nil (the trajectory endpoint serves an
// empty series list).
func New(label string, b Bundle, trace []byte, st *store.Store) *Server {
	return &Server{label: label, b: b, trace: trace, st: st}
}

// SetLoad attaches a load–latency sweep document (a parsed
// BENCH_load.json) to the /api/load endpoint. nil detaches it; the
// endpoint then reports available=false.
func (s *Server) SetLoad(doc *load.Doc) { s.loadDoc = doc }

// endpoints lists the JSON endpoint names in serving order — the
// contract /api/meta advertises and Snapshot materializes.
var endpoints = []string{"meta", "resources", "stats", "percentiles", "critpath", "trajectory", "series", "load"}

// marshal is the single JSON renderer every endpoint goes through:
// two-space indent, trailing newline, HTML escaping off so byte output
// matches what encoding/json produces for Go strings verbatim.
func marshal(v any) ([]byte, error) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// Meta is the /api/meta payload.
type Meta struct {
	Schema       int      `json:"schema"`
	Label        string   `json:"label"`
	WindowFromNs int64    `json:"window_from_ns"`
	WindowToNs   int64    `json:"window_to_ns"`
	Tasks        int      `json:"tasks"`
	Transfers    int      `json:"transfers"`
	StoreMetrics int      `json:"store_metrics"`
	HasTrace     bool     `json:"has_trace"`
	Endpoints    []string `json:"endpoints"`
}

// Lane is one rail lane of a resource.
type Lane struct {
	Track       string  `json:"track"`
	BusyUs      float64 `json:"busy_us"`
	Utilization float64 `json:"utilization"`
	Count       int     `json:"count"`
	Bytes       int64   `json:"bytes"`
}

// Resource is one aggregated row of /api/resources.
type Resource struct {
	Resource    string  `json:"resource"`
	Rails       int     `json:"rails"`
	BusyUs      float64 `json:"busy_us"`
	Utilization float64 `json:"utilization"` // per-lane: busy / (window * lanes)
	Count       int     `json:"count"`
	Bytes       int64   `json:"bytes"`
	Lanes       []Lane  `json:"lanes,omitempty"` // only for multi-rail resources
}

// KindStat is one row of /api/stats.
type KindStat struct {
	Kind     string  `json:"kind"`
	Count    int     `json:"count"`
	TotalUs  float64 `json:"total_us"`
	AvgUs    float64 `json:"avg_us"`
	MedianUs float64 `json:"median_us"`
	Bytes    int64   `json:"bytes"`
}

// Percentile is one row of /api/percentiles. OK is false when the kind
// has fewer than two samples; the quantile fields are then zero.
type Percentile struct {
	Kind   string  `json:"kind"`
	Count  uint64  `json:"count"`
	OK     bool    `json:"ok"`
	P50Us  float64 `json:"p50_us"`
	P95Us  float64 `json:"p95_us"`
	P99Us  float64 `json:"p99_us"`
	P999Us float64 `json:"p999_us"`
	MaxUs  float64 `json:"max_us"`
}

// BucketShare is one stall bucket of a transfer.
type BucketShare struct {
	Bucket string  `json:"bucket"`
	Us     float64 `json:"us"`
	Share  float64 `json:"share"`
}

// ModelInfo is the (n+2)*T(N/n) check of a chunked transfer.
type ModelInfo struct {
	Bottleneck    string  `json:"bottleneck"`
	PredictedUs   float64 `json:"predicted_us"`
	MeasuredUs    float64 `json:"measured_us"`
	DivergencePct float64 `json:"divergence_pct"`
	Flagged       bool    `json:"flagged"`
	Responsible   string  `json:"responsible,omitempty"`
	Verdict       string  `json:"verdict"`
	Recommend     string  `json:"recommend"`
}

// TransferInfo is one transfer's stall attribution in /api/critpath.
type TransferInfo struct {
	Index     int           `json:"index"`
	Label     string        `json:"label"`
	Bytes     int           `json:"bytes"`
	WallUs    float64       `json:"wall_us"`
	Chunks    int           `json:"chunks"`
	Rails     int           `json:"rails"`
	SumsExact bool          `json:"sums_exact"`
	Buckets   []BucketShare `json:"buckets"`
	Model     *ModelInfo    `json:"model,omitempty"`
}

// SeriesSample is one point of a time series in /api/series.
type SeriesSample struct {
	AtNs  int64   `json:"at_ns"`
	Value float64 `json:"value"`
}

// SeriesInfo is one gauge or busy-fraction series in /api/series.
type SeriesInfo struct {
	Name    string         `json:"name"`
	Count   int            `json:"count"`
	Dropped int            `json:"dropped"`
	Points  []SeriesSample `json:"points"`
}

// SeriesDoc is the /api/series payload.
type SeriesDoc struct {
	Schema       int          `json:"schema"`
	BusyWindowNs int64        `json:"busy_window_ns"`
	Series       []SeriesInfo `json:"series"`
}

// LoadDoc is the /api/load payload. Available is false when no sweep is
// attached; Doc is then omitted.
type LoadDoc struct {
	Schema    int       `json:"schema"`
	Available bool      `json:"available"`
	Doc       *load.Doc `json:"doc,omitempty"`
}

// TrajPoint is one record of a metric's trajectory.
type TrajPoint struct {
	Seq    int     `json:"seq"`
	Commit string  `json:"commit,omitempty"`
	Value  float64 `json:"value"`
}

// Trajectory is one metric's series in /api/trajectory.
type Trajectory struct {
	Metric string      `json:"metric"`
	Source string      `json:"source"`
	Unit   string      `json:"unit,omitempty"`
	Better string      `json:"better,omitempty"`
	Latest float64     `json:"latest"`
	Best   float64     `json:"best"`
	Points []TrajPoint `json:"points"`
}

// Meta builds the /api/meta payload.
func (s *Server) Meta() Meta {
	from, to := s.b.Busy.Window()
	storeMetrics := 0
	if s.st != nil {
		storeMetrics = len(s.st.Metrics())
	}
	return Meta{
		Schema:       PayloadSchema,
		Label:        s.label,
		WindowFromNs: int64(from),
		WindowToNs:   int64(to),
		Tasks:        len(s.b.Col.Tasks()),
		Transfers:    len(s.b.Col.Transfers()),
		StoreMetrics: storeMetrics,
		HasTrace:     len(s.trace) > 0,
		Endpoints:    endpoints,
	}
}

// Resources builds the /api/resources payload: rail lanes grouped under
// their base resource, groups sorted by base name.
func (s *Server) Resources() []Resource {
	from, to := s.b.Busy.Window()
	window := to - from
	groups := obs.GroupRails(s.b.Busy.Wheres())
	sort.Slice(groups, func(i, j int) bool { return groups[i].Base < groups[j].Base })
	out := make([]Resource, 0, len(groups))
	for _, g := range groups {
		r := Resource{Resource: g.Base, Rails: len(g.Tracks)}
		var busy sim.Time
		for _, tr := range g.Tracks {
			lb := s.b.Busy.Busy(tr)
			busy += lb
			if len(g.Tracks) > 1 {
				lane := Lane{
					Track:  tr,
					BusyUs: lb.Micros(),
					Count:  s.b.Stats.WhereCount(tr),
					Bytes:  s.b.Stats.WhereBytes(tr),
				}
				if window > 0 {
					lane.Utilization = float64(lb) / float64(window)
				}
				r.Lanes = append(r.Lanes, lane)
			}
			r.Count += s.b.Stats.WhereCount(tr)
			r.Bytes += s.b.Stats.WhereBytes(tr)
		}
		r.BusyUs = busy.Micros()
		if window > 0 {
			r.Utilization = float64(busy) / float64(window*sim.Time(len(g.Tracks)))
		}
		out = append(out, r)
	}
	return out
}

// Stats builds the /api/stats payload, kinds sorted by name.
func (s *Server) Stats() []KindStat {
	kinds := s.b.Stats.Kinds()
	sort.Strings(kinds)
	out := make([]KindStat, 0, len(kinds))
	for _, k := range kinds {
		out = append(out, KindStat{
			Kind:     k,
			Count:    s.b.Stats.Count(k),
			TotalUs:  s.b.Stats.Total(k).Micros(),
			AvgUs:    s.b.Stats.Avg(k).Micros(),
			MedianUs: s.b.Stats.Median(k).Micros(),
			Bytes:    s.b.Stats.Bytes(k),
		})
	}
	return out
}

// Percentiles builds the /api/percentiles payload, kinds sorted by name.
func (s *Server) Percentiles() []Percentile {
	kinds := s.b.Metrics.Kinds()
	sort.Strings(kinds)
	out := make([]Percentile, 0, len(kinds))
	for _, k := range kinds {
		h := s.b.Metrics.Hist(k)
		p := Percentile{Kind: k, Count: h.Count(), MaxUs: h.Max().Micros()}
		if p50, ok := s.b.Metrics.Percentile(k, 0.50); ok {
			p.OK = true
			p.P50Us = p50.Micros()
			p95, _ := s.b.Metrics.Percentile(k, 0.95)
			p99, _ := s.b.Metrics.Percentile(k, 0.99)
			p999, _ := s.b.Metrics.Percentile(k, 0.999)
			p.P95Us = p95.Micros()
			p.P99Us = p99.Micros()
			p.P999Us = p999.Micros()
		}
		out = append(out, p)
	}
	return out
}

// Critpath builds the /api/critpath payload: one entry per paired
// transfer, in the collector's deterministic start order.
func (s *Server) Critpath() []TransferInfo {
	analyses := s.b.Col.Analyze()
	out := make([]TransferInfo, 0, len(analyses))
	for i, a := range analyses {
		ti := TransferInfo{
			Index:     i,
			Label:     fmt.Sprintf("transfer%d_%s", i, report.ByteSize(a.Transfer.Send.Bytes)),
			Bytes:     a.Transfer.Send.Bytes,
			WallUs:    a.Wall().Micros(),
			Chunks:    a.Chunks,
			Rails:     a.Rails,
			SumsExact: a.Exact(),
		}
		wall := a.Wall()
		for _, b := range critpath.BucketOrder {
			v, ok := a.Buckets[b]
			if !ok {
				continue
			}
			bs := BucketShare{Bucket: b, Us: v.Micros()}
			if wall > 0 {
				bs.Share = float64(v) / float64(wall)
			}
			ti.Buckets = append(ti.Buckets, bs)
		}
		if m, ok := a.Model(); ok {
			ti.Model = &ModelInfo{
				Bottleneck:    m.Bottleneck,
				PredictedUs:   m.Predicted.Micros(),
				MeasuredUs:    m.Measured.Micros(),
				DivergencePct: 100 * m.Divergence,
				Flagged:       m.Flagged,
				Responsible:   m.Responsible,
				Verdict:       m.Verdict,
				Recommend:     m.Recommend,
			}
		}
		out = append(out, ti)
	}
	return out
}

// Trajectories builds the /api/trajectory payload: every stored metric's
// series, sorted by metric key. Without a store it returns an empty
// (non-nil) slice so the endpoint stays a JSON array.
func (s *Server) Trajectories() []Trajectory {
	out := []Trajectory{}
	if s.st == nil {
		return out
	}
	for _, m := range s.st.Metrics() {
		recs := s.st.Trajectory(m)
		tr := Trajectory{Metric: m}
		for _, r := range recs {
			tr.Source, tr.Unit, tr.Better = r.Source, r.Unit, r.Better
			tr.Points = append(tr.Points, TrajPoint{Seq: r.Seq, Commit: r.Commit, Value: r.Value})
		}
		if latest, ok := s.st.Latest(m); ok {
			tr.Latest = latest.Value
		}
		if best, ok := s.st.Best(m); ok {
			tr.Best = best.Value
		}
		out = append(out, tr)
	}
	return out
}

// Series builds the /api/series payload: every gauge and busy-fraction
// series the run recorded, in the tracer's sorted name order.
func (s *Server) Series() SeriesDoc {
	doc := SeriesDoc{Schema: PayloadSchema, Series: []SeriesInfo{}}
	if s.b.Series == nil {
		return doc
	}
	doc.BusyWindowNs = int64(s.b.Series.Window())
	for _, name := range s.b.Series.Names() {
		pts := s.b.Series.Points(name)
		si := SeriesInfo{Name: name, Count: len(pts), Dropped: s.b.Series.Dropped(name), Points: []SeriesSample{}}
		for _, p := range pts {
			si.Points = append(si.Points, SeriesSample{AtNs: int64(p.At), Value: p.Value})
		}
		doc.Series = append(doc.Series, si)
	}
	return doc
}

// Load builds the /api/load payload.
func (s *Server) Load() LoadDoc {
	return LoadDoc{Schema: PayloadSchema, Available: s.loadDoc != nil, Doc: s.loadDoc}
}

// payload renders one named endpoint's JSON document.
func (s *Server) payload(name string) ([]byte, error) {
	switch name {
	case "meta":
		return marshal(s.Meta())
	case "resources":
		return marshal(s.Resources())
	case "stats":
		return marshal(s.Stats())
	case "percentiles":
		return marshal(s.Percentiles())
	case "critpath":
		return marshal(s.Critpath())
	case "trajectory":
		return marshal(s.Trajectories())
	case "series":
		return marshal(s.Series())
	case "load":
		return marshal(s.Load())
	}
	return nil, fmt.Errorf("dash: unknown endpoint %q", name)
}

// Handler returns the dashboard's HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	for _, name := range endpoints {
		name := name
		mux.HandleFunc("/api/"+name, func(w http.ResponseWriter, r *http.Request) {
			data, err := s.payload(name)
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			w.Write(data)
		})
	}
	mux.HandleFunc("/api/trace", func(w http.ResponseWriter, r *http.Request) {
		if len(s.trace) == 0 {
			http.Error(w, "no trace attached to this run", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		w.Header().Set("Content-Disposition", `attachment; filename="trace.json"`)
		w.Write(s.trace)
	})
	// The embed layout is fixed at build time, so Sub cannot fail; if it
	// somehow does, serve the unrooted FS (pages at /static/) rather
	// than panicking out of an exported API.
	if static, err := fs.Sub(staticFS, "static"); err == nil {
		mux.Handle("/", http.FileServer(http.FS(static)))
	} else {
		mux.Handle("/", http.FileServer(http.FS(staticFS)))
	}
	return mux
}

// Snapshot writes every JSON endpoint's exact byte output into dir as
// <endpoint>.json — the goldens check.sh diffs, and a network-free way
// to inspect a run.
func (s *Server) Snapshot(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("dash: snapshot: %w", err)
	}
	for _, name := range endpoints {
		data, err := s.payload(name)
		if err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(dir, name+".json"), data, 0o644); err != nil {
			return fmt.Errorf("dash: snapshot %s: %w", name, err)
		}
	}
	return nil
}
