package obs

import (
	"encoding/json"
	"strings"
	"testing"

	"mv2sim/internal/sim"
)

// fakeClock is a settable Clock for driving tracers by hand.
type fakeClock struct{ t sim.Time }

func (c *fakeClock) Now() sim.Time { return c.t }

func TestNilHubIsInert(t *testing.T) {
	var h *Hub
	if h.Enabled() {
		t.Fatal("nil hub reports enabled")
	}
	sp := h.Start(KindD2H, "rank0.d2h", 0, 65536)
	if sp.Active() {
		t.Fatal("span from nil hub is active")
	}
	sp.Step("x")
	sp.End()
	h.Instant(KindRTS, "rank0.mpi", -1, 0)
	h.Counter("ctr", 1)
}

func TestEmptyHubIsInert(t *testing.T) {
	h := NewHub(&fakeClock{})
	if h.Enabled() {
		t.Fatal("tracerless hub reports enabled")
	}
	if sp := h.Start(KindD2H, "rank0.d2h", 0, 65536); sp.Active() {
		t.Fatal("span from tracerless hub is active")
	}
}

// TestDisabledPathAllocatesNothing pins the zero-allocation guarantee the
// package doc makes: with tracing off, the instrumented hot paths (cuda
// copies, ib RDMA writes, mpi sends) pay no heap traffic for their spans.
func TestDisabledPathAllocatesNothing(t *testing.T) {
	var nilHub *Hub
	empty := NewHub(&fakeClock{})
	for _, tc := range []struct {
		name string
		hub  *Hub
	}{
		{"nil", nilHub},
		{"no-tracers", empty},
	} {
		allocs := testing.AllocsPerRun(100, func() {
			sp := tc.hub.Start(KindRDMA, "hca0.tx", 3, 65536)
			sp.Step("posted")
			sp.End()
			tc.hub.Instant(KindFIN, "rank0.mpi", 3, 65536)
			tc.hub.Counter("node0.txvbufs.free", 63)
			child := tc.hub.StartChild(sp, KindD2H, "rank0.d2h", 3, 65536)
			child.End()
		})
		if allocs != 0 {
			t.Errorf("%s hub: %v allocs/op on the disabled path, want 0", tc.name, allocs)
		}
	}
}

func TestSpanLifecycle(t *testing.T) {
	clk := &fakeClock{}
	rec := NewStatsTracer()
	h := NewHub(clk, rec)
	clk.t = 100
	sp := h.Start(KindPack, "rank0.pack", 0, 4096)
	if !sp.Active() {
		t.Fatal("span inactive on enabled hub")
	}
	if got := sp.Task(); got.Kind != KindPack || got.Start != 100 || got.Chunk != 0 {
		t.Fatalf("task = %+v", got)
	}
	clk.t = 250
	sp.End()
	if rec.Count(KindPack) != 1 || rec.Total(KindPack) != 150 {
		t.Fatalf("stats: count=%d total=%v", rec.Count(KindPack), rec.Total(KindPack))
	}
}

func TestStartChildParents(t *testing.T) {
	clk := &fakeClock{}
	h := NewHub(clk, NewStatsTracer())
	parent := h.Start(KindSendRndv, "rank0.mpi", -1, 1<<20)
	child := h.StartChild(parent, KindPack, "rank0.pack", 0, 65536)
	if child.Task().ParentID != parent.Task().ID {
		t.Fatalf("child parent = %d, want %d", child.Task().ParentID, parent.Task().ID)
	}
	inert := Span{}
	top := h.StartChild(inert, KindPack, "rank0.pack", 1, 65536)
	if top.Task().ParentID != 0 {
		t.Fatalf("child of inert parent has ParentID %d", top.Task().ParentID)
	}
	child.End()
	top.End()
	parent.End()
}

func TestChromeTracerOutput(t *testing.T) {
	clk := &fakeClock{}
	c := NewChromeTracer()
	h := NewHub(clk, c)

	clk.t = 1000
	sp := h.Start(KindD2H, "gpu0.d2hEngine", 0, 65536)
	clk.t = 3500
	sp.End()
	h.Instant(KindFIN, "rank0.mpi", 0, 65536)
	h.Counter("node0.txvbufs.free", 63)

	// Counters plot by name, not by thread track: two tracks, not three.
	if got := c.Tracks(); len(got) != 2 {
		t.Fatalf("tracks = %v", got)
	}
	out := c.JSON()
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Ph   string  `json:"ph"`
			Name string  `json:"name"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out)
	}
	var complete, instant, counter, meta int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			complete++
			if ev.Ts != 1.0 || ev.Dur != 2.5 {
				t.Errorf("complete event ts=%v dur=%v, want 1.0/2.5 us", ev.Ts, ev.Dur)
			}
		case "i":
			instant++
		case "C":
			counter++
		case "M":
			meta++
		}
	}
	if complete != 1 || instant != 1 || counter != 1 || meta != 2 {
		t.Fatalf("events: X=%d i=%d C=%d M=%d\n%s", complete, instant, counter, meta, out)
	}
}

func TestChromeTracerDeterministicBytes(t *testing.T) {
	emit := func() string {
		clk := &fakeClock{}
		c := NewChromeTracer()
		h := NewHub(clk, c)
		for i := 0; i < 5; i++ {
			clk.t = sim.Time(i * 1000)
			sp := h.Start(KindRDMA, "hca0.tx", i, 65536)
			clk.t += 700
			sp.End()
			h.Counter("hca0.bytesTx", float64((i+1)*65536))
		}
		return c.JSON()
	}
	a, b := emit(), emit()
	if a != b {
		t.Fatal("identical task streams produced different JSON bytes")
	}
}

// TestBusyTimeTwoChunkPipeline hand-computes utilization for a two-chunk
// pipeline where the D2H engine runs [0,40) and [50,90) and the HCA
// overlaps at [40,70) and [90,120).
func TestBusyTimeTwoChunkPipeline(t *testing.T) {
	clk := &fakeClock{}
	b := NewBusyTimeTracer()
	h := NewHub(clk, b)

	span := func(where string, from, to sim.Time) {
		clk.t = from
		sp := h.Start(KindD2H, where, 0, 0)
		clk.t = to
		sp.End()
	}
	span("gpu0.d2hEngine", 0, 40)
	span("hca0.tx", 40, 70)
	span("gpu0.d2hEngine", 50, 90)
	span("hca0.tx", 90, 120)

	if from, to := b.Window(); from != 0 || to != 120 {
		t.Fatalf("window = [%v, %v]", from, to)
	}
	if got := b.Busy("gpu0.d2hEngine"); got != 80 {
		t.Errorf("d2h busy = %v, want 80", got)
	}
	if got := b.Busy("hca0.tx"); got != 60 {
		t.Errorf("hca busy = %v, want 60", got)
	}
	if got := b.Utilization("gpu0.d2hEngine", 0, 120); got != 80.0/120 {
		t.Errorf("d2h utilization = %v", got)
	}
	// Clipping: only [30,60) — d2h contributes [30,40)+[50,60) = 20.
	if got := b.BusyBetween("gpu0.d2hEngine", 30, 60); got != 20 {
		t.Errorf("clipped busy = %v, want 20", got)
	}
	if got := b.Busy("no-such-track"); got != 0 {
		t.Errorf("unknown track busy = %v", got)
	}
}

func TestBusyTimeMergesOverlaps(t *testing.T) {
	clk := &fakeClock{}
	b := NewBusyTimeTracer()
	h := NewHub(clk, b)
	// Two overlapping tasks on one track: [0,10) and [5,15) → busy 15.
	clk.t = 0
	s1 := h.Start(KindKernel, "gpu0.kernelEngine", -1, 0)
	clk.t = 5
	s2 := h.Start(KindKernel, "gpu0.kernelEngine", -1, 0)
	clk.t = 10
	s1.End()
	clk.t = 15
	s2.End()
	if got := b.Busy("gpu0.kernelEngine"); got != 15 {
		t.Fatalf("busy = %v, want 15", got)
	}
}

func TestStatsTracer(t *testing.T) {
	clk := &fakeClock{}
	s := NewStatsTracer()
	h := NewHub(clk, s)
	durations := []sim.Time{300, 100, 200}
	for i, d := range durations {
		clk.t = sim.Time(i * 1000)
		sp := h.Start(KindPack, "rank0.pack", i, 4096)
		clk.t += d
		sp.End()
	}
	if got := s.Count(KindPack); got != 3 {
		t.Errorf("count = %d", got)
	}
	if got := s.Total(KindPack); got != 600 {
		t.Errorf("total = %v", got)
	}
	if got := s.Avg(KindPack); got != 200 {
		t.Errorf("avg = %v", got)
	}
	if got := s.Median(KindPack); got != 200 {
		t.Errorf("median = %v", got)
	}
	if got := s.Bytes(KindPack); got != 3*4096 {
		t.Errorf("bytes = %d", got)
	}
	bd := s.Breakdown()
	if bd.Get(KindPack) != 600 || bd.Total() != 600 {
		t.Errorf("breakdown = %v", bd)
	}
	tbl := s.Table("per-kind")
	if tbl == nil || !strings.Contains(tbl.String(), KindPack) {
		t.Error("table missing kind row")
	}
}

func TestEngineTracerTracksProcs(t *testing.T) {
	e := sim.New()
	s := NewStatsTracer()
	h := NewHub(e, s)
	et := NewEngineTracer(h)
	e.SetHook(et)
	e.Spawn("worker", func(p *sim.Proc) {
		ev := e.NewEvent("tick")
		e.CallAfter(5*sim.Microsecond, ev.Trigger)
		p.Wait(ev)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got := s.Count(KindProc); got != 1 {
		t.Errorf("proc tasks = %d, want 1", got)
	}
	if got := s.Total(KindProc); got != 5*sim.Microsecond {
		t.Errorf("proc total = %v, want 5us", got)
	}
	if et.EventsFired() == 0 {
		t.Error("no events counted")
	}
}
