// Package obs is the task-based tracing and metrics layer for the whole
// simulated stack — the observability counterpart of the paper's Figure 3.
//
// The model follows Akita's tracing package: every interesting activity is
// a Task with a kind (what protocol/pipeline step it is), a location (which
// resource track it ran on), a chunk index, a byte count and virtual
// start/end times. Components emit tasks through a Hub; pluggable Tracer
// implementations consume them:
//
//	ChromeTracer   — Chrome trace_event JSON, one track per stream /
//	                 engine / HCA link / rank, loadable in Perfetto;
//	                 the executable Figure 3.
//	BusyTimeTracer — per-resource busy time and utilization over any
//	                 window (DMA engines, HCA links, vbuf pool).
//	StatsTracer    — count/total/avg/median per task kind, renderable
//	                 as a paper-style table via internal/report.
//
// Tracing is strictly opt-in. A nil *Hub (or a hub with no tracers) is
// fully functional: Start returns an inert Span and every operation on it
// is a no-op that performs zero heap allocations, so instrumented hot
// paths cost nothing when observability is off. All timestamps are virtual
// (sim.Time), so traces are byte-for-byte deterministic across runs.
package obs

import "mv2sim/internal/sim"

// Task kinds emitted by the instrumented stack. The five pipeline-stage
// kinds use the paper's stage names (section IV); protocol kinds mirror
// the rendezvous wire messages.
const (
	// Five-stage GPU pipeline (internal/core).
	KindPack   = "d2d_nc2c"   // stage 1: device-side pack into tbuf
	KindD2H    = "d2h_c2c"    // stage 2: stage into a registered host vbuf
	KindRDMA   = "rdma_write" // stage 3: one-sided write (also ib-level ops)
	KindH2D    = "h2d_c2c"    // stage 4: stage into the receiver tbuf
	KindUnpack = "d2d_c2nc"   // stage 5: device-side unpack into user buffer

	// Rendezvous protocol phases (internal/mpi).
	KindRTS       = "rts"
	KindCTS       = "cts"
	KindFIN       = "fin"
	KindSendEager = "send_eager"
	KindSendRndv  = "send_rndv"
	KindSendSelf  = "send_self"
	KindRecv      = "recv"

	// Device activity (internal/cuda, internal/gpu).
	KindKernel   = "kernel"
	KindMemset   = "memset"
	KindCopyH2D  = "h2d"
	KindCopyD2H  = "d2h"
	KindCopyD2D  = "d2d"
	KindCopyH2H  = "h2h"
	KindStreamOp = "stream_op"

	// Fabric activity (internal/ib).
	KindSend     = "send"
	KindRDMARead = "rdma_read"

	// NIC scatter/gather unit (internal/ib/sg.go): the HCA walking a
	// datatype descriptor on its per-rail SGE engine — the send-side
	// gather feeding the wire and the receive-side scatter landing
	// arrived chunks in the typed buffer.
	KindNicGather  = "nic_gather"
	KindNicScatter = "nic_scatter"

	// Staging pool (internal/hostmem): one task per vbuf hold, plus one
	// task per interval a requester spent blocked on an empty pool.
	KindVbuf     = "vbuf"
	KindVbufWait = "vbuf_wait"

	// Engine process lifetime (internal/sim hook).
	KindProc = "proc"
)

// Dependency-edge labels recorded through Span.DependsOn. The critical-path
// analyzer (internal/obs/critpath) keys its gap classification on them.
const (
	// DepPack: a D2H stage could not start before this pack task finished.
	DepPack = "pack"
	// DepStage: the next pipeline stage of the same chunk (d2h→rdma,
	// h2d→unpack).
	DepStage = "stage"
	// DepWire: the receive-side wire task of a transfer depends on its
	// transmit-side task (internal/ib).
	DepWire = "wire"
	// DepSerial: FIFO serialization behind the previous task on the same
	// stream, link or engine (internal/cuda stream order).
	DepSerial = "serial"
	// DepVbufWait: the holder of a staging vbuf had to wait for the pool
	// to refill first (internal/hostmem).
	DepVbufWait = "vbuf_wait"
)

// Clock reports the current virtual time; sim.Engine satisfies it.
type Clock interface {
	Now() sim.Time
}

// Task is one traced activity. ID is unique within a Hub; ParentID is zero
// for top-level tasks. Kind classifies the activity (see the Kind
// constants), What names this particular task (often equal to Kind), and
// Where names the resource track it ran on ("gpu0.d2hEngine", "hca1.rx",
// "rank0.pack", ...). Chunk is the pipeline chunk index, or -1 when the
// task is not chunked. An instant task has Start == End.
type Task struct {
	ID       uint64
	ParentID uint64
	Kind     string
	What     string
	Where    string
	Chunk    int
	Bytes    int
	Start    sim.Time
	End      sim.Time
}

// Instant reports whether the task is a zero-duration marker.
func (t Task) Instant() bool { return t.Start == t.End }

// Tracer consumes task records. TaskStart fires when a span is opened;
// TaskStep when an intermediate milestone is recorded; TaskEnd when the
// span closes (task.End is then set). Instant tasks arrive as a single
// TaskEnd with Start == End and no matching TaskStart. CounterSample
// reports a gauge value (e.g. vbuf-pool free count, HCA bytes moved).
//
// All calls happen in simulation order on the engine goroutine (or a
// process holding the baton), so implementations need no locking.
type Tracer interface {
	TaskStart(t Task)
	TaskStep(t Task, what string)
	TaskEnd(t Task)
	CounterSample(name string, at sim.Time, value float64)
}

// DepTracer is the optional Tracer extension receiving explicit dependency
// edges: task t could not proceed before the task with ID onID completed.
// Edges arrive while t is still open (t.End unset) and reference tasks by
// ID only; implementations resolve times from their own task tables.
// Tracers that don't implement it simply never see the edges.
type DepTracer interface {
	TaskDepends(t Task, onID uint64, label string)
}

// Hub fans task records out to the registered tracers and allocates task
// IDs. A nil *Hub is valid and inert; so is a hub with no tracers. The
// hot-path methods are written so that the disabled case allocates
// nothing.
type Hub struct {
	clock   Clock
	tracers []Tracer
	nextID  uint64
}

// NewHub creates a hub reading virtual time from clock. With no tracers
// the hub is permanently inert.
func NewHub(clock Clock, tracers ...Tracer) *Hub {
	return &Hub{clock: clock, tracers: tracers}
}

// Enabled reports whether any tracer is attached. Instrumentation sites
// may use it to skip work (closure construction, name formatting) that
// only matters when tracing.
func (h *Hub) Enabled() bool { return h != nil && len(h.tracers) > 0 }

// Start opens a span whose What equals its kind. Chunk is -1 for
// non-chunked tasks.
func (h *Hub) Start(kind, where string, chunk, bytes int) Span {
	return h.StartTask(kind, kind, where, chunk, bytes)
}

// StartTask opens a span with an explicit task name (What). The returned
// Span must be closed with End on every path, or handed off to code that
// does — the spanend analyzer enforces this.
func (h *Hub) StartTask(kind, what, where string, chunk, bytes int) Span {
	if !h.Enabled() {
		return Span{}
	}
	return h.start(0, kind, what, where, chunk, bytes)
}

// StartChild opens a span parented to another span, typically an MPI
// request span enclosing its pipeline stages. An inert parent yields a
// top-level span.
func (h *Hub) StartChild(parent Span, kind, where string, chunk, bytes int) Span {
	if !h.Enabled() {
		return Span{}
	}
	return h.start(parent.task.ID, kind, kind, where, chunk, bytes)
}

func (h *Hub) start(parentID uint64, kind, what, where string, chunk, bytes int) Span {
	h.nextID++
	t := Task{
		ID: h.nextID, ParentID: parentID,
		Kind: kind, What: what, Where: where,
		Chunk: chunk, Bytes: bytes,
		Start: h.clock.Now(),
	}
	for _, tr := range h.tracers {
		tr.TaskStart(t)
	}
	return Span{hub: h, task: t}
}

// Instant records a zero-duration marker task (protocol control messages:
// RTS, CTS, FIN). Tracers see it as a single TaskEnd with Start == End.
func (h *Hub) Instant(kind, where string, chunk, bytes int) {
	h.InstantChild(Span{}, kind, where, chunk, bytes)
}

// InstantChild records an instant marker parented to an open span (e.g. a
// chunk's FIN under its RDMA stage), and returns the marker's task record
// so callers can reference it in dependency edges. An inert parent yields a
// top-level marker; a disabled hub returns the zero Task.
func (h *Hub) InstantChild(parent Span, kind, where string, chunk, bytes int) Task {
	if !h.Enabled() {
		return Task{}
	}
	h.nextID++
	now := h.clock.Now()
	t := Task{ID: h.nextID, ParentID: parent.task.ID, Kind: kind, What: kind, Where: where, Chunk: chunk, Bytes: bytes, Start: now, End: now}
	for _, tr := range h.tracers {
		tr.TaskEnd(t)
	}
	return t
}

// depends fans a dependency edge out to the tracers that care.
func (h *Hub) depends(t Task, onID uint64, label string) {
	for _, tr := range h.tracers {
		if d, ok := tr.(DepTracer); ok {
			d.TaskDepends(t, onID, label)
		}
	}
}

// Counter records the current value of a named gauge.
func (h *Hub) Counter(name string, value float64) {
	if !h.Enabled() {
		return
	}
	now := h.clock.Now()
	for _, tr := range h.tracers {
		tr.CounterSample(name, now, value)
	}
}

// Span is an open task. Spans are small values: store them in structs,
// pass them to completion callbacks, close them with End. The zero Span
// (from a disabled hub) is inert and safe to End.
type Span struct {
	hub  *Hub
	task Task
}

// Active reports whether the span belongs to an enabled hub. Sites that
// would allocate to arrange a deferred End (e.g. registering an event
// callback) should guard on it.
func (s Span) Active() bool { return s.hub != nil }

// Task returns the span's task record (End unset until the span closes).
func (s Span) Task() Task { return s.task }

// DependsOn records that this span could not proceed before `on`
// completed. Either side being inert makes it a no-op, so instrumentation
// sites need no guards.
func (s Span) DependsOn(on Span, label string) {
	s.DependsOnTask(on.task, label)
}

// DependsOnTask is DependsOn against a task record (e.g. one returned by
// InstantChild, or a task that has already ended).
func (s Span) DependsOnTask(on Task, label string) {
	if s.hub == nil || on.ID == 0 {
		return
	}
	s.hub.depends(s.task, on.ID, label)
}

// Step records an intermediate milestone on the open span.
func (s Span) Step(what string) {
	if s.hub == nil {
		return
	}
	t := s.task
	t.End = s.hub.clock.Now()
	for _, tr := range s.hub.tracers {
		tr.TaskStep(t, what)
	}
}

// End closes the span at the current virtual time.
func (s Span) End() {
	if s.hub == nil {
		return
	}
	s.task.End = s.hub.clock.Now()
	for _, tr := range s.hub.tracers {
		tr.TaskEnd(s.task)
	}
}
