package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"mv2sim/internal/sim"
)

// ChromeTracer renders tasks in Chrome's trace_event JSON format —
// loadable in Perfetto (https://ui.perfetto.dev) or chrome://tracing.
// Every distinct Where becomes its own named thread track; counters
// become "C" events plotted as graphs. Because all timestamps are
// virtual and events are emitted in simulation order, the output is
// byte-for-byte identical across runs of the same program.
type ChromeTracer struct {
	tids  map[string]int
	order []string
	lines []string
}

// NewChromeTracer creates an empty Chrome trace collector.
func NewChromeTracer() *ChromeTracer {
	return &ChromeTracer{tids: map[string]int{}}
}

// chromePid is the single process all tracks live under; the simulation
// is one address space, so one pid keeps the Perfetto UI flat.
const chromePid = 1

// tid returns the stable track ID for a location, emitting the
// thread_name metadata event the first time the track is seen.
func (c *ChromeTracer) tid(where string) int {
	if id, ok := c.tids[where]; ok {
		return id
	}
	id := len(c.tids) + 1
	c.tids[where] = id
	c.order = append(c.order, where)
	c.lines = append(c.lines, fmt.Sprintf(
		`{"ph":"M","pid":%d,"tid":%d,"name":"thread_name","args":{"name":%s}}`,
		chromePid, id, quote(where)))
	return id
}

// tsMicros renders a virtual time as microseconds with nanosecond
// precision, the unit trace_event expects.
func tsMicros(t sim.Time) string {
	return strconv.FormatFloat(float64(t)/1e3, 'f', 3, 64)
}

func quote(s string) string { return strconv.Quote(s) }

// TaskStart is a no-op: complete ("X") events are emitted at TaskEnd,
// when the duration is known.
func (c *ChromeTracer) TaskStart(Task) {}

// TaskStep emits a thread-scoped instant event at the milestone time.
func (c *ChromeTracer) TaskStep(t Task, what string) {
	c.lines = append(c.lines, fmt.Sprintf(
		`{"ph":"i","pid":%d,"tid":%d,"name":%s,"cat":%s,"ts":%s,"s":"t","args":{"id":%d}}`,
		chromePid, c.tid(t.Where), quote(what), quote(t.Kind), tsMicros(t.End), t.ID))
}

// TaskEnd emits the task: a complete ("X") event for spans, an instant
// ("i") event for zero-duration markers.
func (c *ChromeTracer) TaskEnd(t Task) {
	tid := c.tid(t.Where)
	var args strings.Builder
	fmt.Fprintf(&args, `"id":%d`, t.ID)
	if t.ParentID != 0 {
		fmt.Fprintf(&args, `,"parent":%d`, t.ParentID)
	}
	if t.Chunk >= 0 {
		fmt.Fprintf(&args, `,"chunk":%d`, t.Chunk)
	}
	if t.Bytes > 0 {
		fmt.Fprintf(&args, `,"bytes":%d`, t.Bytes)
	}
	if t.Instant() {
		c.lines = append(c.lines, fmt.Sprintf(
			`{"ph":"i","pid":%d,"tid":%d,"name":%s,"cat":%s,"ts":%s,"s":"t","args":{%s}}`,
			chromePid, tid, quote(t.What), quote(t.Kind), tsMicros(t.Start), args.String()))
		return
	}
	dur := strconv.FormatFloat(float64(t.End-t.Start)/1e3, 'f', 3, 64)
	c.lines = append(c.lines, fmt.Sprintf(
		`{"ph":"X","pid":%d,"tid":%d,"name":%s,"cat":%s,"ts":%s,"dur":%s,"args":{%s}}`,
		chromePid, tid, quote(t.What), quote(t.Kind), tsMicros(t.Start), dur, args.String()))
}

// TaskDepends serializes a dependency edge as a thread-scoped instant in
// category "dep" with args {task, on}: task t could not proceed before
// task `on` completed. Perfetto shows them as markers on the dependent
// task's track; cmd/pipedoctor re-ingests them to rebuild the transfer
// DAG from a trace file.
func (c *ChromeTracer) TaskDepends(t Task, onID uint64, label string) {
	c.lines = append(c.lines, fmt.Sprintf(
		`{"ph":"i","pid":%d,"tid":%d,"name":%s,"cat":"dep","ts":%s,"s":"t","args":{"task":%d,"on":%d}}`,
		chromePid, c.tid(t.Where), quote(label), tsMicros(t.Start), t.ID, onID))
}

// CounterSample emits a "C" counter event; Perfetto plots each counter
// name as a graph track.
func (c *ChromeTracer) CounterSample(name string, at sim.Time, value float64) {
	c.lines = append(c.lines, fmt.Sprintf(
		`{"ph":"C","pid":%d,"name":%s,"ts":%s,"args":{"value":%s}}`,
		chromePid, quote(name), tsMicros(at), strconv.FormatFloat(value, 'g', -1, 64)))
}

// Tracks returns the track names in first-seen order.
func (c *ChromeTracer) Tracks() []string { return append([]string(nil), c.order...) }

// Events returns the number of emitted trace events (excluding track
// metadata).
func (c *ChromeTracer) Events() int { return len(c.lines) - len(c.order) }

// WriteTo writes the complete trace JSON document.
func (c *ChromeTracer) WriteTo(w io.Writer) (int64, error) {
	n, err := io.WriteString(w, c.JSON())
	return int64(n), err
}

// JSON returns the complete trace document as a string.
func (c *ChromeTracer) JSON() string {
	var sb strings.Builder
	sb.WriteString("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n")
	for i, l := range c.lines {
		sb.WriteString(l)
		if i != len(c.lines)-1 {
			sb.WriteByte(',')
		}
		sb.WriteByte('\n')
	}
	sb.WriteString("]}\n")
	return sb.String()
}
