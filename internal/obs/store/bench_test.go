package store

import (
	"reflect"
	"testing"
)

const reproDoc = `{
  "scale": 16,
  "figure5b_latency_us": {
    "MV2-GPU-NC": {"4194304": 1465.986, "4096": 35.004},
    "Cpy2D+Send": {"4194304": 559435.906, "4096": 571.62}
  },
  "stencil2d_median_sec": {
    "f32": [{"grid": "1x8 (64Kx1K)", "def_sec": 0.006949, "nc_sec": 0.002588}]
  },
  "pipedoctor_4mb": {"label": "figure5b_4M_rails1_auto", "wall_us": 1465.986}
}`

const packDoc = `{
  "pitch_factor": 4,
  "grid": [
    {"rows": 16, "row_bytes": 4, "memcpy2d_us": 5.16, "kernel_us": 6.0, "auto": "memcpy2d", "auto_us": 5.16, "best": "memcpy2d"},
    {"rows": 128, "row_bytes": 4, "memcpy2d_us": 6.285, "kernel_us": 6.012, "auto": "memcpy2d", "auto_us": 6.285, "best": "kernel"}
  ],
  "break_even_rows": {"4": 101}
}`

const critpathDoc = `{
  "results": [
    {"label": "msg4M_rails1_memcpy2d", "msg_bytes": 4194304, "wall_us": 11019.2, "divergence": 0.031, "flagged": false}
  ]
}`

const wallclockDoc = `{
  "gomaxprocs": 8,
  "engine_event_ns": 350.1,
  "packplan_cached_ns_per_chunk": 38.4,
  "packplan_uncached_ns_per_chunk": 44.3,
  "rails_bandwidth_mbs": {"rails1": 3087.0, "rails2": 4355.0}
}`

func TestExtractDetectsFormats(t *testing.T) {
	for _, tc := range []struct {
		doc, source string
	}{
		{reproDoc, "repro"},
		{packDoc, "pack"},
		{critpathDoc, "critpath"},
		{wallclockDoc, "wallclock"},
	} {
		source, recs, err := Extract([]byte(tc.doc))
		if err != nil {
			t.Fatalf("%s: %v", tc.source, err)
		}
		if source != tc.source {
			t.Fatalf("detected %q, want %q", source, tc.source)
		}
		if len(recs) == 0 {
			t.Fatalf("%s: no records extracted", tc.source)
		}
		for _, r := range recs {
			if r.Source != tc.source || r.Metric == "" {
				t.Fatalf("%s: malformed record %+v", tc.source, r)
			}
		}
	}
	if _, _, err := Extract([]byte(`{"mystery": 1}`)); err == nil {
		t.Fatal("unrecognized bench file extracted without error")
	}
}

func TestExtractReproMetrics(t *testing.T) {
	_, recs, err := Extract([]byte(reproDoc))
	if err != nil {
		t.Fatal(err)
	}
	byMetric := map[string]Record{}
	for _, r := range recs {
		byMetric[r.Metric] = r
	}
	want := map[string]float64{
		"repro.figure5b.MV2-GPU-NC.4194304_us": 1465.986,
		"repro.figure5b.Cpy2D+Send.4096_us":    571.62,
		"repro.stencil2d.f32.1x8.nc_sec":       0.002588,
		"repro.pipedoctor_4mb.wall_us":         1465.986,
	}
	for m, v := range want {
		r, ok := byMetric[m]
		if !ok {
			t.Fatalf("metric %s missing; have %v", m, sortedKeys(byMetric))
		}
		if r.Value != v || r.Better != BetterLower {
			t.Fatalf("metric %s = %+v, want value %g lower-better", m, r, v)
		}
	}
}

func TestExtractPackCountsMismatches(t *testing.T) {
	_, recs, err := Extract([]byte(packDoc))
	if err != nil {
		t.Fatal(err)
	}
	var mismatches, breakEven *Record
	for i, r := range recs {
		switch r.Metric {
		case "pack.crossover.auto_mismatches":
			mismatches = &recs[i]
		case "pack.crossover.break_even_rows.4":
			breakEven = &recs[i]
		}
	}
	if mismatches == nil || mismatches.Value != 1 || mismatches.Better != BetterLower {
		t.Fatalf("auto_mismatches = %+v", mismatches)
	}
	if breakEven == nil || breakEven.Value != 101 || breakEven.Better != "" {
		t.Fatalf("break_even_rows.4 = %+v (must be informational)", breakEven)
	}
}

func TestExtractWallclockDirections(t *testing.T) {
	_, recs, err := Extract([]byte(wallclockDoc))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		switch r.Metric {
		case "wallclock.rails_bandwidth_mbs.rails1", "wallclock.rails_bandwidth_mbs.rails2":
			if r.Better != BetterHigher {
				t.Fatalf("virtual bandwidth %s not higher-better: %+v", r.Metric, r)
			}
		default:
			if r.Better != "" {
				t.Fatalf("host-time metric %s must be informational: %+v", r.Metric, r)
			}
		}
	}
}

func TestExtractIsDeterministic(t *testing.T) {
	for _, doc := range []string{reproDoc, packDoc, critpathDoc, wallclockDoc, loadDoc} {
		_, a, err := Extract([]byte(doc))
		if err != nil {
			t.Fatal(err)
		}
		_, b, err := Extract([]byte(doc))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("extraction order not deterministic:\n%+v\nvs\n%+v", a, b)
		}
	}
}

const loadDoc = `{
  "load_schema": 1,
  "seed": 1,
  "pairs": 4,
  "curves": [
    {
      "process": "poisson",
      "points": [
        {"offered_mbs": 2000, "goodput_mbs": 1950, "p50_us": 150, "p99_us": 300},
        {"offered_mbs": 8000, "goodput_mbs": 7500, "p50_us": 180, "p99_us": 400},
        {"offered_mbs": 16000, "goodput_mbs": 10400, "p50_us": 900, "p99_us": 2500}
      ],
      "knee_index": 1,
      "knee_offered_mbs": 8000,
      "peak_goodput_mbs": 10400
    }
  ]
}`

func TestExtractLoadDirections(t *testing.T) {
	source, recs, err := Extract([]byte(loadDoc))
	if err != nil {
		t.Fatal(err)
	}
	if source != "load" {
		t.Fatalf("detected %q, want load", source)
	}
	byMetric := map[string]Record{}
	for _, r := range recs {
		byMetric[r.Metric] = r
	}
	for metric, want := range map[string]struct {
		value  float64
		better string
	}{
		"load.poisson.knee_offered_mbs": {8000, BetterHigher},
		"load.poisson.peak_goodput_mbs": {10400, BetterHigher},
		"load.poisson.pt0.goodput_mbs":  {1950, BetterHigher},
		"load.poisson.pt1.p99_us":       {400, BetterLower}, // at the knee: gated
		"load.poisson.pt2.p99_us":       {2500, ""},         // past the knee: informational
		"load.poisson.pt2.offered_mbs":  {16000, ""},        // stimulus: informational
		"load.poisson.pt2.goodput_mbs":  {10400, BetterHigher},
	} {
		r, ok := byMetric[metric]
		if !ok {
			t.Fatalf("metric %s missing; have %v", metric, sortedKeys(byMetric))
		}
		if r.Value != want.value || r.Better != want.better {
			t.Fatalf("metric %s = %+v, want value %g better %q", metric, r, want.value, want.better)
		}
	}
}

func TestExtractLoadRejectsFutureSchema(t *testing.T) {
	if _, _, err := Extract([]byte(`{"load_schema": 2, "curves": []}`)); err == nil {
		t.Fatal("future load schema extracted without error")
	}
}
