// Package store is the append-only perf-regression store: one JSON-lines
// file holding every benchmark metric the repo has ever recorded, one
// record per metric per PR/commit. It is the persistent counterpart of
// the BENCH_*.json snapshots — where a BENCH file is "what this run
// measured", the store is "what every run so far measured", so
// scripts/check.sh can gate on the recorded trajectory instead of
// hand-pinned constants, and cmd/dashboard can plot the series.
//
// The format is deliberately boring: schema-versioned JSON objects, one
// per line, appended and never rewritten (Seed is the only operation
// that truncates, used to regenerate the committed seed from the
// committed BENCH files). Records carry no wall-clock timestamps — the
// same inputs must produce the same bytes, so seeding is reproducible
// and the dashboard's trajectory endpoint is golden-testable.
package store

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// SchemaVersion is the record schema this package writes. Readers accept
// any record whose Schema is <= SchemaVersion and reject newer ones, so
// an old binary fails loudly on a store from the future instead of
// silently mis-gating.
const SchemaVersion = 1

// Better* are the allowed values of Record.Better.
const (
	BetterLower  = "lower"  // latency-like: smaller is an improvement
	BetterHigher = "higher" // bandwidth-like: larger is an improvement
	// An empty Better marks an informational metric (host wall-clock
	// noise, configuration echoes): tracked and plotted, never gated.
)

// Record is one stored measurement of one metric.
type Record struct {
	Schema int    `json:"schema"`
	Seq    int    `json:"seq"`              // 1-based append order, assigned by the store
	Commit string `json:"commit,omitempty"` // PR / commit label the value was measured at
	Source string `json:"source"`           // producing bench: repro, pack, critpath, wallclock
	Metric string `json:"metric"`           // dotted key, e.g. "critpath.msg4M_rails1_memcpy2d.wall_us"
	Unit   string `json:"unit,omitempty"`   // us, ns, MB/s, points
	Better string `json:"better,omitempty"` // BetterLower, BetterHigher or "" (informational)

	Value float64 `json:"value"`
}

// Store is an in-memory view of one JSON-lines file plus the append
// handle to extend it.
type Store struct {
	path string
	recs []Record
}

// Open loads the store at path. A missing file yields an empty store
// whose first Append creates it.
func Open(path string) (*Store, error) {
	s := &Store{path: path}
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return s, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: open %s: %w", path, err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var r Record
		if err := json.Unmarshal(raw, &r); err != nil {
			return nil, fmt.Errorf("store: %s:%d: %w", path, line, err)
		}
		if r.Schema > SchemaVersion {
			return nil, fmt.Errorf("store: %s:%d: schema %d is newer than supported %d",
				path, line, r.Schema, SchemaVersion)
		}
		if r.Metric == "" {
			return nil, fmt.Errorf("store: %s:%d: record has no metric key", path, line)
		}
		s.recs = append(s.recs, r)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("store: read %s: %w", path, err)
	}
	return s, nil
}

// Path returns the backing file path.
func (s *Store) Path() string { return s.path }

// Len returns the number of loaded records.
func (s *Store) Len() int { return len(s.recs) }

// Records returns all records in append order.
func (s *Store) Records() []Record { return append([]Record(nil), s.recs...) }

// encode renders one record as its canonical store line.
func encode(r Record) ([]byte, error) {
	data, err := json.Marshal(r)
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// Append stamps schema and sequence numbers onto the records and appends
// them to both the file and the in-memory view. The write is a single
// O_APPEND operation, so concurrent appenders from separate bench
// commands interleave at record granularity, never inside one.
func (s *Store) Append(recs ...Record) error {
	if len(recs) == 0 {
		return nil
	}
	next := 0
	for _, r := range s.recs {
		if r.Seq > next {
			next = r.Seq
		}
	}
	var buf []byte
	stamped := make([]Record, 0, len(recs))
	for _, r := range recs {
		next++
		r.Schema = SchemaVersion
		r.Seq = next
		line, err := encode(r)
		if err != nil {
			return fmt.Errorf("store: encode %s: %w", r.Metric, err)
		}
		buf = append(buf, line...)
		stamped = append(stamped, r)
	}
	if err := ensureDir(s.path); err != nil {
		return fmt.Errorf("store: append %s: %w", s.path, err)
	}
	f, err := os.OpenFile(s.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: append %s: %w", s.path, err)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return fmt.Errorf("store: append %s: %w", s.path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: append %s: %w", s.path, err)
	}
	s.recs = append(s.recs, stamped...)
	return nil
}

// Seed truncates the file and writes the records fresh with sequence
// numbers starting at 1 — the one non-append operation, used to
// regenerate the committed seed store from committed BENCH files.
func (s *Store) Seed(recs []Record) error {
	if err := ensureDir(s.path); err != nil {
		return fmt.Errorf("store: seed %s: %w", s.path, err)
	}
	if err := os.WriteFile(s.path, nil, 0o644); err != nil {
		return fmt.Errorf("store: seed %s: %w", s.path, err)
	}
	s.recs = nil
	return s.Append(recs...)
}

// ensureDir creates the store file's parent directory if needed.
func ensureDir(path string) error {
	dir := filepath.Dir(path)
	if dir == "." || dir == "" {
		return nil
	}
	return os.MkdirAll(dir, 0o755)
}

// Metrics returns the distinct metric keys, sorted.
func (s *Store) Metrics() []string {
	seen := map[string]bool{}
	var out []string
	for _, r := range s.recs {
		if !seen[r.Metric] {
			seen[r.Metric] = true
			out = append(out, r.Metric)
		}
	}
	sort.Strings(out)
	return out
}

// Trajectory returns the metric's records in append (Seq) order.
func (s *Store) Trajectory(metric string) []Record {
	var out []Record
	for _, r := range s.recs {
		if r.Metric == metric {
			out = append(out, r)
		}
	}
	return out
}

// Latest returns the most recently appended record for the metric.
func (s *Store) Latest(metric string) (Record, bool) {
	tr := s.Trajectory(metric)
	if len(tr) == 0 {
		return Record{}, false
	}
	return tr[len(tr)-1], true
}

// Best returns the best-so-far record for the metric under its Better
// direction. For informational metrics (no direction) it returns the
// latest record.
func (s *Store) Best(metric string) (Record, bool) {
	tr := s.Trajectory(metric)
	if len(tr) == 0 {
		return Record{}, false
	}
	best := tr[0]
	for _, r := range tr[1:] {
		if improves(r, best) {
			best = r
		}
	}
	if best.Better == "" {
		return tr[len(tr)-1], true
	}
	return best, true
}

// improves reports whether r beats cur under r's direction.
func improves(r, cur Record) bool {
	switch r.Better {
	case BetterLower:
		return r.Value < cur.Value
	case BetterHigher:
		return r.Value > cur.Value
	}
	return false
}

// GateResult is the verdict of one trajectory gate check.
type GateResult struct {
	Metric        string  `json:"metric"`
	Value         float64 `json:"value"`
	Baseline      float64 `json:"baseline"`       // best-so-far the value was held against
	BaselineSeq   int     `json:"baseline_seq"`   // Seq of the baseline record (0 = none)
	RegressionPct float64 `json:"regression_pct"` // positive = worse than baseline
	TolerancePct  float64 `json:"tolerance_pct"`
	OK            bool    `json:"ok"`
	Reason        string  `json:"reason"`
}

// Gate checks a candidate value for a metric against the recorded
// trajectory: it fails when the value is more than tolerancePct percent
// worse than the best-so-far record, under the direction stored with the
// trajectory. Metrics with no history, or whose trajectory is
// informational (no direction), pass with an explanatory reason — a
// brand-new metric must be appendable before it can be gated.
func (s *Store) Gate(metric string, value, tolerancePct float64) GateResult {
	g := GateResult{Metric: metric, Value: value, TolerancePct: tolerancePct, OK: true}
	best, ok := s.Best(metric)
	if !ok {
		g.Reason = "no recorded history"
		return g
	}
	g.Baseline = best.Value
	g.BaselineSeq = best.Seq
	if best.Better == "" {
		g.Reason = "informational metric (no direction)"
		return g
	}
	g.RegressionPct = regressionPct(best.Better, value, best.Value)
	if g.RegressionPct > tolerancePct {
		g.OK = false
		g.Reason = fmt.Sprintf("%.2f%% worse than best-so-far %g (seq %d), tolerance %g%%",
			g.RegressionPct, best.Value, best.Seq, tolerancePct)
		return g
	}
	g.Reason = fmt.Sprintf("within %g%% of best-so-far %g (seq %d)", tolerancePct, best.Value, best.Seq)
	return g
}

// GateTail gates each metric's latest record against the best of its
// earlier records — the self-check that catches a regression already
// appended to the store. Metrics with fewer than two records pass.
func (s *Store) GateTail(tolerancePct float64) []GateResult {
	var out []GateResult
	for _, m := range s.Metrics() {
		tr := s.Trajectory(m)
		last := tr[len(tr)-1]
		g := GateResult{Metric: m, Value: last.Value, TolerancePct: tolerancePct, OK: true}
		if len(tr) < 2 {
			g.Reason = "single record, nothing earlier to gate against"
			out = append(out, g)
			continue
		}
		if last.Better == "" {
			g.Reason = "informational metric (no direction)"
			out = append(out, g)
			continue
		}
		best := tr[0]
		for _, r := range tr[1 : len(tr)-1] {
			if improves(r, best) {
				best = r
			}
		}
		g.Baseline = best.Value
		g.BaselineSeq = best.Seq
		g.RegressionPct = regressionPct(last.Better, last.Value, best.Value)
		if g.RegressionPct > tolerancePct {
			g.OK = false
			g.Reason = fmt.Sprintf("latest (seq %d) is %.2f%% worse than best-so-far %g (seq %d), tolerance %g%%",
				last.Seq, g.RegressionPct, best.Value, best.Seq, tolerancePct)
		} else {
			g.Reason = fmt.Sprintf("within %g%% of best-so-far %g (seq %d)", tolerancePct, best.Value, best.Seq)
		}
		out = append(out, g)
	}
	return out
}

// regressionPct computes how much worse value is than baseline, in
// percent, under the given direction. Negative values are improvements.
func regressionPct(better string, value, baseline float64) float64 {
	if baseline == 0 {
		return 0
	}
	switch better {
	case BetterLower:
		return 100 * (value - baseline) / baseline
	case BetterHigher:
		return 100 * (baseline - value) / baseline
	}
	return 0
}
