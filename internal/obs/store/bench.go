package store

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// This file flattens the repo's BENCH_*.json snapshot formats into store
// records, one record per metric. Virtual-time metrics (simulated
// latencies, virtual bandwidths) get a direction and are gate-able; host
// wall-clock metrics are recorded as informational — they ride along in
// the trajectory plots but a noisy CI machine can never fail the gate.

// Extract sniffs which BENCH format the document is and flattens it.
// The returned source is one of "repro", "pack", "critpath", "wallclock",
// "load". Records come back sorted by metric key, so extraction is
// deterministic regardless of JSON map order.
func Extract(data []byte) (source string, recs []Record, err error) {
	var probe map[string]json.RawMessage
	if err := json.Unmarshal(data, &probe); err != nil {
		return "", nil, fmt.Errorf("store: parse bench file: %w", err)
	}
	switch {
	case probe["figure5b_latency_us"] != nil:
		recs, err = ExtractRepro(data)
		source = "repro"
	case probe["pitch_factor"] != nil && probe["grid"] != nil:
		recs, err = ExtractPack(data)
		source = "pack"
	case probe["results"] != nil:
		recs, err = ExtractCritpath(data)
		source = "critpath"
	case probe["engine_event_ns"] != nil:
		recs, err = ExtractWallclock(data)
		source = "wallclock"
	case probe["load_schema"] != nil:
		recs, err = ExtractLoad(data)
		source = "load"
	default:
		return "", nil, fmt.Errorf("store: unrecognized bench file (keys: %s)", strings.Join(sortedKeys(probe), ", "))
	}
	if err != nil {
		return "", nil, err
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].Metric < recs[j].Metric })
	return source, recs, nil
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// reproBench mirrors the subset of cmd/repro's BENCH_repro.json the store
// tracks.
type reproBench struct {
	Figure5bLatencyUs  map[string]map[string]float64 `json:"figure5b_latency_us"`
	Stencil2DMedianSec map[string][]struct {
		Grid  string  `json:"grid"`
		NCSec float64 `json:"nc_sec"`
	} `json:"stencil2d_median_sec"`
	Pipedoctor4MB struct {
		WallUs float64 `json:"wall_us"`
	} `json:"pipedoctor_4mb"`
}

// ExtractRepro flattens BENCH_repro.json: the Figure 5(b) virtual latency
// curves, the Stencil2D NC medians and the 4 MB pipedoctor wall clock —
// all virtual times, all gate-able lower-is-better.
func ExtractRepro(data []byte) ([]Record, error) {
	var b reproBench
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("store: parse repro bench: %w", err)
	}
	var recs []Record
	for _, series := range sortedKeys(b.Figure5bLatencyUs) {
		pts := b.Figure5bLatencyUs[series]
		for _, size := range sortedKeys(pts) {
			recs = append(recs, Record{
				Source: "repro",
				Metric: fmt.Sprintf("repro.figure5b.%s.%s_us", series, size),
				Unit:   "us", Better: BetterLower, Value: pts[size],
			})
		}
	}
	for _, prec := range sortedKeys(b.Stencil2DMedianSec) {
		for _, row := range b.Stencil2DMedianSec[prec] {
			grid := row.Grid
			if i := strings.IndexByte(grid, ' '); i > 0 {
				grid = grid[:i] // "1x8 (64Kx1K)" -> "1x8"
			}
			recs = append(recs, Record{
				Source: "repro",
				Metric: fmt.Sprintf("repro.stencil2d.%s.%s.nc_sec", prec, grid),
				Unit:   "s", Better: BetterLower, Value: row.NCSec,
			})
		}
	}
	if b.Pipedoctor4MB.WallUs > 0 {
		recs = append(recs, Record{
			Source: "repro",
			Metric: "repro.pipedoctor_4mb.wall_us",
			Unit:   "us", Better: BetterLower, Value: b.Pipedoctor4MB.WallUs,
		})
	}
	return recs, nil
}

// packBench mirrors osu.CrossoverResult.
type packBench struct {
	Grid []struct {
		Rows     int     `json:"rows"`
		RowBytes int     `json:"row_bytes"`
		AutoUs   float64 `json:"auto_us"`
		Auto     string  `json:"auto"`
		Best     string  `json:"best"`
	} `json:"grid"`
	BreakEvenRows map[string]float64 `json:"break_even_rows"`
}

// ExtractPack flattens BENCH_pack.json: the auto-engine latency of every
// crossover grid point (lower-better, virtual), the count of points where
// auto picked the slower engine (lower-better), and the per-width
// break-even rows as informational context.
func ExtractPack(data []byte) ([]Record, error) {
	var b packBench
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("store: parse pack bench: %w", err)
	}
	var recs []Record
	mismatches := 0
	for _, pt := range b.Grid {
		recs = append(recs, Record{
			Source: "pack",
			Metric: fmt.Sprintf("pack.crossover.%dx%d.auto_us", pt.Rows, pt.RowBytes),
			Unit:   "us", Better: BetterLower, Value: pt.AutoUs,
		})
		if pt.Auto != pt.Best {
			mismatches++
		}
	}
	recs = append(recs, Record{
		Source: "pack",
		Metric: "pack.crossover.auto_mismatches",
		Unit:   "points", Better: BetterLower, Value: float64(mismatches),
	})
	for _, w := range sortedKeys(b.BreakEvenRows) {
		recs = append(recs, Record{
			Source: "pack",
			Metric: fmt.Sprintf("pack.crossover.break_even_rows.%s", w),
			Unit:   "rows", Value: b.BreakEvenRows[w], // informational
		})
	}
	return recs, nil
}

// critpathBench mirrors cmd/pipedoctor's benchFile.
type critpathBench struct {
	Results []struct {
		Label      string  `json:"label"`
		WallUs     float64 `json:"wall_us"`
		Divergence float64 `json:"divergence"`
	} `json:"results"`
}

// ExtractCritpath flattens BENCH_critpath.json: the virtual wall clock of
// every analyzed configuration (lower-better) plus the model divergence
// as informational context.
func ExtractCritpath(data []byte) ([]Record, error) {
	var b critpathBench
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("store: parse critpath bench: %w", err)
	}
	var recs []Record
	for _, r := range b.Results {
		recs = append(recs,
			Record{
				Source: "critpath",
				Metric: fmt.Sprintf("critpath.%s.wall_us", r.Label),
				Unit:   "us", Better: BetterLower, Value: r.WallUs,
			},
			Record{
				Source: "critpath",
				Metric: fmt.Sprintf("critpath.%s.divergence_pct", r.Label),
				Unit:   "%", Value: 100 * r.Divergence, // informational
			})
	}
	return recs, nil
}

// wallclockBench mirrors cmd/repro's wallclockResults.
type wallclockBench struct {
	EngineEventNs           float64            `json:"engine_event_ns"`
	PackPlanCachedNsChunk   float64            `json:"packplan_cached_ns_per_chunk"`
	PackPlanUncachedNsChunk float64            `json:"packplan_uncached_ns_per_chunk"`
	RailsBandwidthMBs       map[string]float64 `json:"rails_bandwidth_mbs"`
	EnginePairs             int                `json:"engine_pairs"`
	SerialPairsWallMs       float64            `json:"engine_serial_pairs_wall_ms"`
	ParallelPairsWallMs     float64            `json:"engine_parallel_pairs_wall_ms"`
	ParallelSpeedup         float64            `json:"engine_parallel_speedup"`
}

// ExtractWallclock flattens BENCH_wallclock.json. The rails bandwidth
// points are virtual numbers (a determinism pin) and gate higher-better;
// the host-time microbenchmarks are informational — real machines are
// too noisy for a 5% wall-clock gate in CI.
func ExtractWallclock(data []byte) ([]Record, error) {
	var b wallclockBench
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("store: parse wallclock bench: %w", err)
	}
	recs := []Record{
		{Source: "wallclock", Metric: "wallclock.engine_event_ns", Unit: "ns", Value: b.EngineEventNs},
		{Source: "wallclock", Metric: "wallclock.packplan_cached_ns_per_chunk", Unit: "ns", Value: b.PackPlanCachedNsChunk},
		{Source: "wallclock", Metric: "wallclock.packplan_uncached_ns_per_chunk", Unit: "ns", Value: b.PackPlanUncachedNsChunk},
	}
	for _, k := range sortedKeys(b.RailsBandwidthMBs) {
		recs = append(recs, Record{
			Source: "wallclock",
			Metric: fmt.Sprintf("wallclock.rails_bandwidth_mbs.%s", k),
			Unit:   "MB/s", Better: BetterHigher, Value: b.RailsBandwidthMBs[k],
		})
	}
	if b.EnginePairs > 0 {
		// Host wall clock of the -pairs engine comparison: informational,
		// like every other host-time metric — and on a GOMAXPROCS=1 runner
		// the parallel engine legitimately sits at ~1x.
		p := fmt.Sprintf("wallclock.engine_pairs%d", b.EnginePairs)
		recs = append(recs,
			Record{Source: "wallclock", Metric: p + ".serial_wall_ms", Unit: "ms", Value: b.SerialPairsWallMs},
			Record{Source: "wallclock", Metric: p + ".parallel_wall_ms", Unit: "ms", Value: b.ParallelPairsWallMs},
			Record{Source: "wallclock", Metric: p + ".parallel_speedup", Unit: "x", Value: b.ParallelSpeedup},
		)
	}
	return recs, nil
}

// loadBench mirrors load.Doc; kept structural so the store does not
// import the harness.
type loadBench struct {
	LoadSchema int `json:"load_schema"`
	Curves     []struct {
		Process string `json:"process"`
		Points  []struct {
			OfferedMBs float64 `json:"offered_mbs"`
			GoodputMBs float64 `json:"goodput_mbs"`
			P50Us      float64 `json:"p50_us"`
			P99Us      float64 `json:"p99_us"`
		} `json:"points"`
		KneeIndex      int     `json:"knee_index"`
		KneeOfferedMBs float64 `json:"knee_offered_mbs"`
		PeakGoodputMBs float64 `json:"peak_goodput_mbs"`
	} `json:"curves"`
}

// ExtractLoad flattens BENCH_load.json. Per arrival process, the knee
// offered load and peak goodput gate higher-better — a regression that
// saturates the pipeline earlier or caps it lower fails the trajectory
// gate. Per-point goodput gates higher-better too, and the p50/p99
// sojourn tails gate lower-better up to the knee; past it the open-loop
// backlog makes tails a property of the sweep's overload depth rather
// than the pipeline, so they ride along as informational.
func ExtractLoad(data []byte) ([]Record, error) {
	var b loadBench
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("store: parse load bench: %w", err)
	}
	if b.LoadSchema != 1 {
		return nil, fmt.Errorf("store: load bench schema %d unsupported", b.LoadSchema)
	}
	var recs []Record
	for _, c := range b.Curves {
		prefix := fmt.Sprintf("load.%s", c.Process)
		recs = append(recs,
			Record{
				Source: "load", Metric: prefix + ".knee_offered_mbs",
				Unit: "MB/s", Better: BetterHigher, Value: c.KneeOfferedMBs,
			},
			Record{
				Source: "load", Metric: prefix + ".peak_goodput_mbs",
				Unit: "MB/s", Better: BetterHigher, Value: c.PeakGoodputMBs,
			})
		for i, pt := range c.Points {
			tailBetter := BetterLower
			if c.KneeIndex < 0 || i > c.KneeIndex {
				tailBetter = "" // saturated point: tails informational
			}
			recs = append(recs,
				Record{
					Source: "load", Metric: fmt.Sprintf("%s.pt%d.goodput_mbs", prefix, i),
					Unit: "MB/s", Better: BetterHigher, Value: pt.GoodputMBs,
				},
				Record{
					Source: "load", Metric: fmt.Sprintf("%s.pt%d.offered_mbs", prefix, i),
					Unit: "MB/s", Value: pt.OfferedMBs, // informational: the stimulus
				},
				Record{
					Source: "load", Metric: fmt.Sprintf("%s.pt%d.p50_us", prefix, i),
					Unit: "us", Better: tailBetter, Value: pt.P50Us,
				},
				Record{
					Source: "load", Metric: fmt.Sprintf("%s.pt%d.p99_us", prefix, i),
					Unit: "us", Better: tailBetter, Value: pt.P99Us,
				})
		}
	}
	return recs, nil
}
