package store

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func tmpStore(t *testing.T) *Store {
	t.Helper()
	s, err := Open(filepath.Join(t.TempDir(), "store.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestAppendReloadRoundTrip(t *testing.T) {
	s := tmpStore(t)
	recs := []Record{
		{Source: "critpath", Metric: "critpath.a.wall_us", Unit: "us", Better: BetterLower, Value: 100},
		{Source: "critpath", Metric: "critpath.b.wall_us", Unit: "us", Better: BetterLower, Value: 200},
	}
	if err := s.Append(recs...); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(Record{Source: "critpath", Metric: "critpath.a.wall_us", Unit: "us", Better: BetterLower, Value: 95, Commit: "pr8"}); err != nil {
		t.Fatal(err)
	}

	re, err := Open(s.Path())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(re.Records(), s.Records()) {
		t.Fatalf("reload drifted:\n%+v\nwant\n%+v", re.Records(), s.Records())
	}
	traj := re.Trajectory("critpath.a.wall_us")
	if len(traj) != 2 || traj[0].Value != 100 || traj[1].Value != 95 {
		t.Fatalf("trajectory = %+v", traj)
	}
	if traj[0].Seq != 1 || traj[1].Seq != 3 {
		t.Fatalf("seq numbers = %d, %d; want 1, 3", traj[0].Seq, traj[1].Seq)
	}
	// A second reload must produce byte-identical trajectory content.
	re2, err := Open(s.Path())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(re2.Trajectory("critpath.a.wall_us"), traj) {
		t.Fatal("trajectory not stable across reloads")
	}
}

func TestSeedIsReproducible(t *testing.T) {
	s := tmpStore(t)
	recs := []Record{
		{Source: "pack", Metric: "pack.x", Unit: "us", Better: BetterLower, Value: 7, Commit: "seed"},
		{Source: "pack", Metric: "pack.y", Unit: "us", Better: BetterLower, Value: 9, Commit: "seed"},
	}
	if err := s.Seed(recs); err != nil {
		t.Fatal(err)
	}
	first, err := os.ReadFile(s.Path())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Seed(recs); err != nil {
		t.Fatal(err)
	}
	second, err := os.ReadFile(s.Path())
	if err != nil {
		t.Fatal(err)
	}
	if string(first) != string(second) {
		t.Fatalf("seed not byte-deterministic:\n%s\nvs\n%s", first, second)
	}
}

func TestLatestAndBest(t *testing.T) {
	s := tmpStore(t)
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(s.Append(Record{Metric: "lat", Better: BetterLower, Value: 100}))
	must(s.Append(Record{Metric: "lat", Better: BetterLower, Value: 80}))
	must(s.Append(Record{Metric: "lat", Better: BetterLower, Value: 90}))
	must(s.Append(Record{Metric: "bw", Better: BetterHigher, Value: 3000}))
	must(s.Append(Record{Metric: "bw", Better: BetterHigher, Value: 4300}))
	must(s.Append(Record{Metric: "info", Value: 1}))
	must(s.Append(Record{Metric: "info", Value: 5}))

	if l, ok := s.Latest("lat"); !ok || l.Value != 90 {
		t.Fatalf("Latest(lat) = %+v, %v", l, ok)
	}
	if b, ok := s.Best("lat"); !ok || b.Value != 80 {
		t.Fatalf("Best(lat) = %+v, %v", b, ok)
	}
	if b, ok := s.Best("bw"); !ok || b.Value != 4300 {
		t.Fatalf("Best(bw) = %+v, %v", b, ok)
	}
	// Informational metrics have no "best"; the latest stands in.
	if b, ok := s.Best("info"); !ok || b.Value != 5 {
		t.Fatalf("Best(info) = %+v, %v", b, ok)
	}
	if _, ok := s.Latest("absent"); ok {
		t.Fatal("Latest on an absent metric reported ok")
	}
	if got := s.Metrics(); !reflect.DeepEqual(got, []string{"bw", "info", "lat"}) {
		t.Fatalf("Metrics() = %v", got)
	}
}

func TestGate(t *testing.T) {
	s := tmpStore(t)
	if err := s.Append(
		Record{Metric: "lat", Better: BetterLower, Value: 100},
		Record{Metric: "lat", Better: BetterLower, Value: 110},
		Record{Metric: "bw", Better: BetterHigher, Value: 1000},
		Record{Metric: "host_ns", Value: 42},
	); err != nil {
		t.Fatal(err)
	}

	// Within tolerance of the best-so-far (100): passes.
	if g := s.Gate("lat", 104, 5); !g.OK {
		t.Fatalf("gate 104 vs best 100 at 5%% failed: %+v", g)
	}
	// >5% regression against best-so-far: fails even though it beats the
	// latest record.
	if g := s.Gate("lat", 106, 5); g.OK {
		t.Fatalf("gate 106 vs best 100 at 5%% passed: %+v", g)
	}
	// Improvements always pass.
	if g := s.Gate("lat", 50, 5); !g.OK || g.RegressionPct >= 0 {
		t.Fatalf("gate on an improvement failed: %+v", g)
	}
	// Higher-better metrics regress downward.
	if g := s.Gate("bw", 940, 5); g.OK {
		t.Fatalf("gate 940 vs best bw 1000 at 5%% passed: %+v", g)
	}
	if g := s.Gate("bw", 960, 5); !g.OK {
		t.Fatalf("gate 960 vs best bw 1000 at 5%% failed: %+v", g)
	}
	// No history and informational metrics pass with a reason.
	if g := s.Gate("brand_new", 1, 5); !g.OK || g.Reason == "" {
		t.Fatalf("gate on unknown metric: %+v", g)
	}
	if g := s.Gate("host_ns", 1e9, 5); !g.OK {
		t.Fatalf("gate on informational metric failed: %+v", g)
	}
}

func TestGateTailCatchesAppendedRegression(t *testing.T) {
	s := tmpStore(t)
	if err := s.Append(
		Record{Metric: "lat", Better: BetterLower, Value: 100},
		Record{Metric: "lat", Better: BetterLower, Value: 98},
	); err != nil {
		t.Fatal(err)
	}
	for _, g := range s.GateTail(5) {
		if !g.OK {
			t.Fatalf("clean trajectory failed the tail gate: %+v", g)
		}
	}
	// Append a synthetic >5% regression: the self-check must now fail.
	if err := s.Append(Record{Metric: "lat", Better: BetterLower, Value: 120, Commit: "synthetic"}); err != nil {
		t.Fatal(err)
	}
	failed := false
	for _, g := range s.GateTail(5) {
		if g.Metric == "lat" && !g.OK {
			failed = true
		}
	}
	if !failed {
		t.Fatal("tail gate passed a 20% appended regression")
	}
}

func TestOpenRejectsFutureSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.jsonl")
	line := `{"schema":99,"seq":1,"source":"x","metric":"m","value":1}` + "\n"
	if err := os.WriteFile(path, []byte(line), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Fatal("opened a store from the future")
	}
}

func TestOpenMissingFileIsEmpty(t *testing.T) {
	s, err := Open(filepath.Join(t.TempDir(), "nope.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 {
		t.Fatalf("missing file loaded %d records", s.Len())
	}
}
