package critpath

import (
	"fmt"

	"mv2sim/internal/sim"
)

// DivergenceThreshold is the fraction beyond which the measured critical
// path is flagged as diverging from the analytic pipeline model — the 10%
// band the acceptance experiments allow before declaring the pipeline is
// not behaving like the paper's Figure 3.
const DivergenceThreshold = 0.10

// shallowPipelineChunks is the depth below which chunking, not any single
// stage, limits the transfer: with so few chunks the fill/drain phases
// dominate and the right knob is the block size.
const shallowPipelineChunks = 2

// ModelCheck compares a transfer's measured wall clock against the
// paper's pipeline model: a transfer of N bytes in n chunks through a
// pipeline whose slowest stage takes T(N/n) per chunk needs
// (n+2)*T(N/n) — fill, n-1 bottleneck slots, drain (section V-B).
type ModelCheck struct {
	Chunks int
	Rails  int
	// PerChunk is the measured mean per-chunk time of each stage, with
	// wire time divided by the rail count (rails drain chunks in
	// parallel; the GPU engines do not).
	PerChunk map[string]sim.Time
	// Bottleneck names the slowest stage; BottleneckTime is its T(N/n).
	Bottleneck     string
	BottleneckTime sim.Time
	// Predicted is (n+2)*T(N/n); Measured the transfer wall clock.
	Predicted sim.Time
	Measured  sim.Time
	// Divergence is (Measured-Predicted)/Predicted; Flagged when its
	// magnitude exceeds DivergenceThreshold, with Responsible naming the
	// non-work bucket holding the most wall clock.
	Divergence  float64
	Flagged     bool
	Responsible string
	// Verdict is "<stage>-bound"; Recommend names the tunable most likely
	// to move the bottleneck.
	Verdict   string
	Recommend string
}

// stageOrder is the pipeline order for deterministic bottleneck
// tie-breaking and report layout.
var stageOrder = []string{BucketPack, BucketD2H, BucketWire, BucketH2D, BucketUnpack}

// Model evaluates the analytic pipeline model against the analysis. It
// returns ok=false for transfers without a traced pipeline (eager path,
// host rendezvous), which have no chunk structure to model.
func (a *Analysis) Model() (*ModelCheck, bool) {
	if a.Chunks == 0 {
		return nil, false
	}
	m := &ModelCheck{
		Chunks:   a.Chunks,
		Rails:    a.Rails,
		PerChunk: map[string]sim.Time{},
		Measured: a.Wall(),
	}
	n := sim.Time(a.Chunks)
	for _, st := range stageOrder {
		tot, ok := a.StageTotals[st]
		if !ok {
			continue
		}
		per := tot / n
		if st == BucketWire && a.Rails > 1 {
			per /= sim.Time(a.Rails)
		}
		m.PerChunk[st] = per
		if per > m.BottleneckTime {
			m.BottleneckTime = per
			m.Bottleneck = st
		}
	}
	if m.BottleneckTime == 0 {
		return nil, false
	}
	m.Predicted = sim.Time(a.Chunks+2) * m.BottleneckTime
	m.Divergence = float64(m.Measured-m.Predicted) / float64(m.Predicted)
	m.Flagged = m.Divergence > DivergenceThreshold || m.Divergence < -DivergenceThreshold
	if m.Flagged {
		m.Responsible = a.dominantStall()
	}
	m.Verdict = m.Bottleneck + "-bound"
	m.Recommend = recommend(m)
	return m, true
}

// dominantStall returns the non-work bucket holding the most wall clock —
// where the time the model did not predict actually went.
func (a *Analysis) dominantStall() string {
	stalls := []string{
		BucketCopyQueue, BucketKernelQueue, BucketRailQueue, BucketNicQueue,
		BucketVbufWait, BucketHandshake, BucketFIN,
	}
	best, bestV := "none", sim.Time(0)
	for _, b := range stalls {
		if v := a.Buckets[b]; v > bestV {
			best, bestV = b, v
		}
	}
	return best
}

// recommend maps the limiting stage to the tunable most likely to help.
func recommend(m *ModelCheck) string {
	if m.Chunks <= shallowPipelineChunks {
		return "BlockSize (pipeline too shallow to overlap stages)"
	}
	switch m.Bottleneck {
	case BucketPack, BucketUnpack:
		return "PackMode (datatype processing limits the pipeline)"
	case BucketWire:
		return "Rails (wire bandwidth limits the pipeline)"
	default:
		return "BlockSize (PCIe staging limits the pipeline)"
	}
}

// String renders a one-line summary.
func (m *ModelCheck) String() string {
	flag := ""
	if m.Flagged {
		flag = fmt.Sprintf(" FLAGGED (stall: %s)", m.Responsible)
	}
	return fmt.Sprintf("%s: n=%d T=%.1fus predicted=%.1fus measured=%.1fus divergence=%+.1f%%%s",
		m.Verdict, m.Chunks, m.BottleneckTime.Micros(),
		m.Predicted.Micros(), m.Measured.Micros(), 100*m.Divergence, flag)
}

// SortedPerChunk returns the per-chunk stage times in pipeline order.
func (m *ModelCheck) SortedPerChunk() []string {
	var keys []string
	for _, st := range stageOrder {
		if _, ok := m.PerChunk[st]; ok {
			keys = append(keys, st)
		}
	}
	return keys
}
