// Package critpath is the critical-path and stall-attribution engine over
// the obs task stream: it rebuilds each transfer's dependency DAG from the
// tasks and explicit dependency edges the instrumented stack emits,
// extracts the binding chain of stage tasks (the critical path), and
// attributes every nanosecond of the transfer's wall clock to exactly one
// bucket — stage work (pack/D2H/wire/H2D/unpack), resource queueing
// (copy engine, kernel engine, rail, vbuf pool) or protocol control
// (handshake, FIN). The attribution telescopes over the walk, so the
// bucket sum equals the wall clock exactly, by construction.
//
// The DAG edges come from three sources:
//
//   - explicit obs.DepTracer edges (pack→D2H, D2H→RDMA, tx→rx wire,
//     H2D→unpack, vbuf-wait→hold, stream FIFO order);
//   - parent containment (a stage span's stream op and its engine task);
//   - chunk identity across ranks (the receiver's H2D of chunk c follows
//     the rx wire task of chunk c).
//
// cmd/pipedoctor drives it live or from a ChromeTracer JSON file.
package critpath

import (
	"sort"
	"strings"

	"mv2sim/internal/obs"
	"mv2sim/internal/sim"
)

// Edge is one recorded dependency: the owning task could not proceed
// before task On completed. Label is one of the obs.Dep* constants.
type Edge struct {
	On    uint64
	Label string
}

// Collector gathers the task stream for offline analysis. It implements
// obs.Tracer and obs.DepTracer, so it plugs straight into a cluster's
// Tracers list; Ingest builds one from a ChromeTracer JSON file instead.
type Collector struct {
	tasks    []obs.Task
	byID     map[uint64]obs.Task
	children map[uint64][]uint64
	deps     map[uint64][]Edge
	rdeps    map[uint64][]uint64 // reverse: task IDs depending on key
	counters []CounterPoint
}

// CounterPoint is one gauge sample preserved from the task stream, so a
// replayed trace keeps its time-series view (dashboard /api/series)
// alongside the dependency structure.
type CounterPoint struct {
	Name  string
	At    sim.Time
	Value float64
}

// NewCollector creates an empty collector.
func NewCollector() *Collector {
	return &Collector{
		byID:     map[uint64]obs.Task{},
		children: map[uint64][]uint64{},
		deps:     map[uint64][]Edge{},
		rdeps:    map[uint64][]uint64{},
	}
}

// TaskStart is a no-op; tasks are recorded complete at TaskEnd.
func (c *Collector) TaskStart(obs.Task) {}

// TaskStep is a no-op.
func (c *Collector) TaskStep(obs.Task, string) {}

// TaskEnd records a completed task.
func (c *Collector) TaskEnd(t obs.Task) { c.AddTask(t) }

// CounterSample records the gauge sample; gauges carry no dependency
// structure but are kept for series replay.
func (c *Collector) CounterSample(name string, at sim.Time, value float64) {
	c.AddCounter(name, at, value)
}

// AddCounter records a gauge sample (ingestion entry point).
func (c *Collector) AddCounter(name string, at sim.Time, value float64) {
	c.counters = append(c.counters, CounterPoint{Name: name, At: at, Value: value})
}

// Counters returns the recorded gauge samples in arrival order.
func (c *Collector) Counters() []CounterPoint { return c.counters }

// TaskDepends records an explicit dependency edge.
func (c *Collector) TaskDepends(t obs.Task, onID uint64, label string) {
	c.AddDep(t.ID, onID, label)
}

// AddTask records a completed task (ingestion entry point).
func (c *Collector) AddTask(t obs.Task) {
	c.tasks = append(c.tasks, t)
	c.byID[t.ID] = t
	if t.ParentID != 0 {
		c.children[t.ParentID] = append(c.children[t.ParentID], t.ID)
	}
}

// AddDep records a dependency edge by task IDs (ingestion entry point).
func (c *Collector) AddDep(taskID, onID uint64, label string) {
	c.deps[taskID] = append(c.deps[taskID], Edge{On: onID, Label: label})
	c.rdeps[onID] = append(c.rdeps[onID], taskID)
}

// Tasks returns the recorded tasks in completion order.
func (c *Collector) Tasks() []obs.Task { return c.tasks }

// Task resolves a task by ID.
func (c *Collector) Task(id uint64) (obs.Task, bool) {
	t, ok := c.byID[id]
	return t, ok
}

// Deps returns the explicit dependency edges recorded for a task.
func (c *Collector) Deps(id uint64) []Edge { return c.deps[id] }

// childTasks returns a task's children sorted by start time then ID, a
// deterministic order independent of completion interleaving.
func (c *Collector) childTasks(id uint64) []obs.Task {
	ids := c.children[id]
	out := make([]obs.Task, 0, len(ids))
	for _, cid := range ids {
		out = append(out, c.byID[cid])
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Transfer is one paired point-to-point transfer: the sender's request
// task and the matching receiver's.
type Transfer struct {
	Send obs.Task
	Recv obs.Task
}

// Transfers pairs send request tasks with receive request tasks: requests
// are matched in start order by byte count, the way a deterministic
// simulation run lays them out. Unmatched requests (e.g. a traced
// half-run) are dropped.
func (c *Collector) Transfers() []Transfer {
	var sends, recvs []obs.Task
	for _, t := range c.tasks {
		switch t.Kind {
		case obs.KindSendRndv, obs.KindSendEager, obs.KindSendSelf:
			sends = append(sends, t)
		case obs.KindRecv:
			recvs = append(recvs, t)
		}
	}
	byStart := func(ts []obs.Task) {
		sort.Slice(ts, func(i, j int) bool {
			if ts[i].Start != ts[j].Start {
				return ts[i].Start < ts[j].Start
			}
			return ts[i].ID < ts[j].ID
		})
	}
	byStart(sends)
	byStart(recvs)
	used := make([]bool, len(recvs))
	var out []Transfer
	for _, s := range sends {
		for i, r := range recvs {
			if used[i] || r.Bytes != s.Bytes {
				continue
			}
			used[i] = true
			out = append(out, Transfer{Send: s, Recv: r})
			break
		}
	}
	return out
}

// rxWireTask reports whether the task is a receive-side wire task (data
// streaming in on an HCA rx link).
func rxWireTask(t obs.Task) bool {
	base, _, _ := obs.SplitRail(t.Where)
	return t.Kind == obs.KindRDMA && strings.HasSuffix(base, ".rx")
}

// senderStage reports whether a stage kind runs before the wire crossing
// (used to pick the control bucket for unexplained gaps).
func senderStage(kind string) bool {
	switch kind {
	case obs.KindPack, obs.KindD2H, obs.KindRDMA:
		return true
	}
	return false
}
