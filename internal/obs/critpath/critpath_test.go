package critpath_test

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"mv2sim/internal/cluster"
	"mv2sim/internal/core"
	"mv2sim/internal/datatype"
	"mv2sim/internal/mem"
	"mv2sim/internal/obs"
	"mv2sim/internal/obs/critpath"
	"mv2sim/internal/sim"
)

// runTransfer runs one pipetrace-style 2-GPU vector transfer with the
// collector (and optionally a chrome tracer) attached and returns the
// analyses.
func runTransfer(t testing.TB, msg, rails int, mode core.PackMode) (*critpath.Collector, *obs.ChromeTracer) {
	t.Helper()
	rows := msg / 4
	vec, err := datatype.Vector(rows, 1, 4, datatype.Float32)
	if err != nil {
		t.Fatal(err)
	}
	vec.MustCommit()

	col := critpath.NewCollector()
	chrome := obs.NewChromeTracer()
	cfg := cluster.Config{
		GPUMemBytes: 2*rows*16 + (64 << 20),
		Rails:       rails,
		Tracers:     []obs.Tracer{col, chrome},
	}
	cfg.Core.PackMode = mode
	cfg.Core.UnpackMode = mode
	cl := cluster.New(cfg)
	err = cl.Run(func(n *cluster.Node) {
		r := n.Rank
		buf := n.Ctx.MustMalloc(vec.Span(1))
		if r.Rank() == 0 {
			mem.Fill(buf, vec.Span(1), func(i int) byte { return byte(i) })
			r.Send(buf, 1, vec, 1, 0)
		} else {
			r.Recv(buf, 1, vec, 0, 0)
		}
		if err := n.Ctx.Free(buf); err != nil {
			panic(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return col, chrome
}

// render is the full doctor report for one analysis, used by the golden
// determinism test.
func render(a *critpath.Analysis) string {
	var sb strings.Builder
	sb.WriteString(a.BreakdownTable("breakdown").String())
	if m, ok := a.Model(); ok {
		sb.WriteString(m.ModelTable("model").String())
	}
	sb.WriteString(a.PathTable("path").String())
	return sb.String()
}

// TestGoldenDeterminism pins the doctor's behavior on the standard
// pinned pipeline run (1 MB vector, pitch 16, memcpy2d — the same
// configuration as the committed pipetrace golden): two independent runs
// must render byte-identical reports, and the headline numbers must stay
// pinned.
func TestGoldenDeterminism(t *testing.T) {
	colA, _ := runTransfer(t, 1<<20, 1, core.PackModeMemcpy2D)
	colB, _ := runTransfer(t, 1<<20, 1, core.PackModeMemcpy2D)
	asA, asB := colA.Analyze(), colB.Analyze()
	if len(asA) != 1 || len(asB) != 1 {
		t.Fatalf("transfers analyzed: %d and %d, want 1 and 1", len(asA), len(asB))
	}
	a, b := asA[0], asB[0]
	if got, want := render(a), render(b); got != want {
		t.Fatalf("reports differ between identical runs:\n--- A\n%s\n--- B\n%s", got, want)
	}

	// Headline pins: the 1 MB pipetrace run completes at 2931.5us (the
	// committed golden's final unpack stamp); the transfer recv request
	// spans slightly longer. 16 chunks of 64 KB; pack-bound under memcpy2d.
	if a.Chunks != 16 {
		t.Errorf("chunks = %d, want 16", a.Chunks)
	}
	if !a.Exact() {
		t.Errorf("attribution sum %d != wall %d", a.Sum(), a.Wall())
	}
	m, ok := a.Model()
	if !ok {
		t.Fatal("no model for a chunked transfer")
	}
	if m.Bottleneck != critpath.BucketPack {
		t.Errorf("bottleneck = %q, want pack", m.Bottleneck)
	}
	if m.Flagged {
		t.Errorf("pinned config flagged divergent: %v", m)
	}
	if m.Divergence > 0.10 || m.Divergence < -0.10 {
		t.Errorf("divergence %.3f outside 10%%", m.Divergence)
	}
}

// TestIngestRoundTrip verifies that analyzing a re-ingested Chrome trace
// reproduces the live analysis exactly.
func TestIngestRoundTrip(t *testing.T) {
	col, chrome := runTransfer(t, 1<<20, 2, core.PackModeKernel)
	var buf bytes.Buffer
	if _, err := chrome.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	ingested, err := critpath.Ingest(&buf)
	if err != nil {
		t.Fatal(err)
	}
	live, replay := col.Analyze(), ingested.Analyze()
	if len(live) != len(replay) {
		t.Fatalf("live analyzed %d transfers, replay %d", len(live), len(replay))
	}
	for i := range live {
		if got, want := render(replay[i]), render(live[i]); got != want {
			t.Errorf("transfer %d: replayed report differs:\n--- live\n%s\n--- replay\n%s", i, want, got)
		}
	}
}

// TestAttributionProperties is the property test over the configuration
// space: for every (size, rails, pack mode) combination the attribution
// must sum exactly to the wall clock and the critical path must be a valid
// DAG path — time-ordered, non-overlapping, with every step's gap buckets
// summing to its gap.
func TestAttributionProperties(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full simulations")
	}
	sizes := []int{64 << 10, 256 << 10, 1 << 20}
	railses := []int{1, 2, 4}
	modes := []core.PackMode{core.PackModeMemcpy2D, core.PackModeKernel, core.PackModeAuto, core.PackModeNic}

	type key struct {
		size, rails int
		mode        core.PackMode
	}
	cache := map[key]*critpath.Analysis{}
	analyze := func(k key) *critpath.Analysis {
		if a, ok := cache[k]; ok {
			return a
		}
		col, _ := runTransfer(t, k.size, k.rails, k.mode)
		as := col.Analyze()
		if len(as) != 1 {
			t.Fatalf("%+v: analyzed %d transfers, want 1", k, len(as))
		}
		cache[k] = as[0]
		return as[0]
	}

	prop := func(si, ri, mi uint8) bool {
		k := key{
			size:  sizes[int(si)%len(sizes)],
			rails: railses[int(ri)%len(railses)],
			mode:  modes[int(mi)%len(modes)],
		}
		a := analyze(k)
		if !a.Exact() {
			t.Errorf("%+v: attribution sum %d != wall %d", k, a.Sum(), a.Wall())
			return false
		}
		return validPath(t, fmt.Sprintf("%+v", k), a)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// validPath checks the critical-path invariants.
func validPath(t *testing.T, label string, a *critpath.Analysis) bool {
	ok := true
	seen := map[uint64]bool{}
	for i, s := range a.Path {
		if seen[s.Task.ID] {
			t.Errorf("%s: step %d repeats task %d", label, i, s.Task.ID)
			ok = false
		}
		seen[s.Task.ID] = true
		if s.Task.End < s.Task.Start {
			t.Errorf("%s: step %d runs backwards", label, i)
			ok = false
		}
		var gapSum sim.Time
		for _, v := range s.GapBuckets {
			gapSum += v
		}
		if gapSum != s.Gap && !(s.Gap <= 0 && gapSum == 0) {
			t.Errorf("%s: step %d gap buckets sum %d != gap %d", label, i, gapSum, s.Gap)
			ok = false
		}
		if i == 0 {
			continue
		}
		prev := a.Path[i-1]
		// A valid DAG path: the binding predecessor completed before the
		// dependent step started.
		if prev.Task.End > s.Task.Start {
			t.Errorf("%s: step %d starts at %d before predecessor ends at %d",
				label, i, s.Task.Start, prev.Task.End)
			ok = false
		}
		if s.Gap != s.Task.Start-prev.Task.End {
			t.Errorf("%s: step %d gap %d != start-prevEnd %d",
				label, i, s.Gap, s.Task.Start-prev.Task.End)
			ok = false
		}
	}
	return ok
}
