package critpath

import (
	"fmt"
	"io"

	"mv2sim/internal/report"
)

// WriteReport renders the standard doctor report for one analysis —
// header, stall attribution, and the pipeline-model check when the
// transfer was chunked — so commands embedding the doctor (-doctor
// flags) produce the same output as cmd/pipedoctor. extra, if non-nil,
// is printed between the breakdown and the model check (the stage
// latency percentile table slots in there).
func WriteReport(w io.Writer, label string, a *Analysis, extra fmt.Stringer) {
	fmt.Fprintf(w, "==== %s: wall %.3f us, %d chunks, %d rail(s) ====\n\n",
		label, a.Wall().Micros(), a.Chunks, a.Rails)
	fmt.Fprintln(w, a.BreakdownTable("Stall attribution (every ns in exactly one bucket)"))
	if extra != nil {
		fmt.Fprintln(w, extra.String())
	}
	if m, ok := a.Model(); ok {
		fmt.Fprintln(w, m.ModelTable("Pipeline model check: (n+2)*T(N/n)"))
		fmt.Fprintln(w, m)
		fmt.Fprintln(w)
	} else {
		fmt.Fprintln(w, "No chunked pipeline in this transfer (eager path); model check skipped.")
		fmt.Fprintln(w)
	}
}

// BreakdownTable renders the stall attribution as bucket / µs / share of
// wall clock, in canonical bucket order, ending with the exact sum.
func (a *Analysis) BreakdownTable(title string) *report.Table {
	t := report.NewTable(title, "bucket", "us", "share")
	wall := a.Wall()
	for _, b := range BucketOrder {
		v, ok := a.Buckets[b]
		if !ok {
			continue
		}
		share := "-"
		if wall > 0 {
			share = fmt.Sprintf("%.1f%%", 100*float64(v)/float64(wall))
		}
		t.Add(b, fmt.Sprintf("%.3f", v.Micros()), share)
	}
	t.Add("total", fmt.Sprintf("%.3f", a.Sum().Micros()),
		fmt.Sprintf("exact=%v", a.Exact()))
	return t
}

// ModelTable renders the analytic model check: per-chunk stage times, the
// bottleneck, and the (n+2)*T(N/n) prediction against the measurement.
func (m *ModelCheck) ModelTable(title string) *report.Table {
	t := report.NewTable(title, "quantity", "value")
	t.Add("chunks (n)", fmt.Sprintf("%d", m.Chunks))
	t.Add("rails", fmt.Sprintf("%d", m.Rails))
	for _, st := range m.SortedPerChunk() {
		t.Add("T_"+st+"(N/n)", fmt.Sprintf("%.3f us", m.PerChunk[st].Micros()))
	}
	t.Add("bottleneck", m.Bottleneck)
	t.Add("predicted (n+2)*T", fmt.Sprintf("%.3f us", m.Predicted.Micros()))
	t.Add("measured wall", fmt.Sprintf("%.3f us", m.Measured.Micros()))
	t.Add("divergence", fmt.Sprintf("%+.1f%%", 100*m.Divergence))
	if m.Flagged {
		t.Add("FLAGGED", fmt.Sprintf("diverges >%.0f%%; largest stall: %s",
			100*DivergenceThreshold, m.Responsible))
	}
	t.Add("verdict", m.Verdict)
	t.Add("recommend", m.Recommend)
	return t
}

// BenchResult is one machine-readable pipedoctor measurement, the record
// written (one per configuration) into BENCH_critpath.json.
type BenchResult struct {
	Label    string `json:"label"`
	Msg      int    `json:"msg_bytes"`
	Block    int    `json:"block_bytes"`
	Rails    int    `json:"rails"`
	PackMode string `json:"packmode"`

	WallUs    float64            `json:"wall_us"`
	Chunks    int                `json:"chunks"`
	BucketsUs map[string]float64 `json:"buckets_us"`
	SumUs     float64            `json:"sum_us"`
	SumsExact bool               `json:"sums_exact"`

	Bottleneck  string  `json:"bottleneck,omitempty"`
	PredictedUs float64 `json:"predicted_us,omitempty"`
	Divergence  float64 `json:"divergence,omitempty"`
	Flagged     bool    `json:"flagged"`
	Responsible string  `json:"responsible,omitempty"`
	Recommend   string  `json:"recommend,omitempty"`
	Verdict     string  `json:"verdict,omitempty"`
}

// Bench converts an analysis (and its model check, if the transfer has a
// chunked pipeline) into the JSON record.
func Bench(label string, msg, block, rails int, packMode string, a *Analysis) BenchResult {
	b := BenchResult{
		Label:     label,
		Msg:       msg,
		Block:     block,
		Rails:     rails,
		PackMode:  packMode,
		WallUs:    a.Wall().Micros(),
		Chunks:    a.Chunks,
		BucketsUs: map[string]float64{},
		SumUs:     a.Sum().Micros(),
		SumsExact: a.Exact(),
	}
	for k, v := range a.Buckets {
		b.BucketsUs[k] = v.Micros()
	}
	if m, ok := a.Model(); ok {
		b.Bottleneck = m.Bottleneck
		b.PredictedUs = m.Predicted.Micros()
		b.Divergence = m.Divergence
		b.Flagged = m.Flagged
		b.Responsible = m.Responsible
		b.Recommend = m.Recommend
		b.Verdict = m.Verdict
	}
	return b
}

// PathTable renders the critical path itself: each binding step with its
// incoming gap attribution.
func (a *Analysis) PathTable(title string) *report.Table {
	t := report.NewTable(title, "task", "where", "chunk", "start (us)", "dur (us)", "gap-in", "via")
	for _, s := range a.Path {
		gap := "-"
		if s.Gap > 0 {
			gap = fmt.Sprintf("%.3f", s.Gap.Micros())
		}
		via := s.EdgeLabel
		if via == "" {
			via = "-"
		}
		t.Add(s.Task.Kind, s.Task.Where, fmt.Sprintf("%d", s.Task.Chunk),
			fmt.Sprintf("%.3f", s.Task.Start.Micros()),
			fmt.Sprintf("%.3f", (s.Task.End-s.Task.Start).Micros()), gap, via)
	}
	return t
}
