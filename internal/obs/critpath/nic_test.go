package critpath_test

import (
	"testing"

	"mv2sim/internal/core"
	"mv2sim/internal/obs/critpath"
)

// TestNicAttribution checks the doctor on a NIC-offloaded transfer: the
// gather runs inside the rdma span and the scatter is a parentless task
// hanging off the receive wire, yet the attribution must still sum
// exactly to the wall clock, with the gather counted as pack work, the
// scatter as unpack work, and the SGE engine wait surfaced in the
// dedicated nic-queueing bucket.
func TestNicAttribution(t *testing.T) {
	col, _ := runTransfer(t, 1<<20, 1, core.PackModeNic)
	as := col.Analyze()
	if len(as) != 1 {
		t.Fatalf("analyzed %d transfers, want 1", len(as))
	}
	a := as[0]
	if !a.Exact() {
		t.Fatalf("attribution sum %d != wall %d", a.Sum(), a.Wall())
	}
	if a.Chunks != 16 {
		t.Errorf("chunks = %d, want 16", a.Chunks)
	}
	for _, b := range []string{critpath.BucketPack, critpath.BucketUnpack, critpath.BucketNicQueue} {
		if a.Buckets[b] <= 0 {
			t.Errorf("bucket %q = %v, want > 0 on a nic transfer", b, a.Buckets[b])
		}
	}
	// No GPU pack engines run in nic mode: their queue buckets must be
	// empty, and so must the staging copies those engines feed.
	for _, b := range []string{critpath.BucketCopyQueue, critpath.BucketKernelQueue} {
		if a.Buckets[b] != 0 {
			t.Errorf("bucket %q = %v on a nic transfer, want 0", b, a.Buckets[b])
		}
	}
	// The gather work is also visible in the per-stage totals: the rdma
	// stage span contains the pack work rather than a D2D pack stage.
	if a.StageTotals[critpath.BucketPack] <= 0 {
		t.Errorf("stage total pack = %v, want > 0 (gather inside rdma span)", a.StageTotals[critpath.BucketPack])
	}
	m, ok := a.Model()
	if !ok {
		t.Fatal("no model for a chunked nic transfer")
	}
	if m.Flagged {
		t.Errorf("nic 1MB pinned shape flagged divergent: %+v", m)
	}
	if !validPath(t, "nic", a) {
		t.Error("critical path invariants violated")
	}
}
