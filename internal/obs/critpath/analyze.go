package critpath

import (
	"sort"
	"strings"

	"mv2sim/internal/obs"
	"mv2sim/internal/sim"
)

// Attribution buckets. Every nanosecond of a transfer's wall clock lands
// in exactly one of these.
const (
	// Stage work: the bytes are actually moving (or being gathered).
	BucketPack   = "pack"
	BucketD2H    = "d2h"
	BucketWire   = "wire"
	BucketH2D    = "h2d"
	BucketUnpack = "unpack"

	// Resource queueing: a stage was issued but waited for hardware.
	BucketCopyQueue   = "copy-engine-queue"
	BucketKernelQueue = "kernel-engine-queue"
	BucketRailQueue   = "rail-queue"
	BucketNicQueue    = "nic-queueing"
	BucketVbufWait    = "vbuf-wait"

	// Protocol control: nothing was issued yet.
	BucketHandshake = "handshake"
	BucketFIN       = "fin"

	// Whole-transfer fallback for paths without a traced pipeline
	// (eager-size, self-sends, host-memory rendezvous).
	BucketEager = "eager-path"
)

// BucketOrder is the canonical reporting order.
var BucketOrder = []string{
	BucketPack, BucketD2H, BucketWire, BucketH2D, BucketUnpack,
	BucketCopyQueue, BucketKernelQueue, BucketRailQueue, BucketNicQueue, BucketVbufWait,
	BucketHandshake, BucketFIN, BucketEager,
}

// PathStep is one node of the critical path in time order: the binding
// stage task, plus the gap between the previous step's end and this
// task's start, classified into GapBuckets (summing exactly to Gap).
type PathStep struct {
	Task       obs.Task
	Gap        sim.Time
	GapBuckets map[string]sim.Time
	// EdgeLabel is how this step was bound to its predecessor: an obs.Dep*
	// label, "chunk" for the cross-rank rx→H2D chunk match, or "head" for
	// the first step.
	EdgeLabel string
}

// Analysis is the attribution of one transfer.
type Analysis struct {
	Transfer Transfer
	Start    sim.Time
	End      sim.Time
	// Buckets is the wall-clock attribution; Sum() equals Wall() exactly.
	Buckets map[string]sim.Time
	// Path is the critical path in time order.
	Path []PathStep
	// Chunks is the pipeline depth (number of RDMA stage tasks); zero for
	// fallback-attributed transfers.
	Chunks int
	// Rails is the number of distinct rails the RDMA stages used.
	Rails int
	// StageTotals sums stage-task durations per work bucket (all chunks,
	// not just critical-path ones) — the input to the analytic model.
	StageTotals map[string]sim.Time
}

// Wall returns the transfer's wall-clock duration.
func (a *Analysis) Wall() sim.Time { return a.End - a.Start }

// Sum returns the total attributed time across all buckets.
func (a *Analysis) Sum() sim.Time {
	var s sim.Time
	for _, v := range a.Buckets {
		s += v
	}
	return s
}

// Exact reports whether the attribution sums to the wall clock exactly —
// the invariant the engine guarantees and check.sh gates on.
func (a *Analysis) Exact() bool { return a.Sum() == a.Wall() }

// Analyze attributes every paired transfer in the collected stream.
func (c *Collector) Analyze() []*Analysis {
	var out []*Analysis
	for _, tr := range c.Transfers() {
		out = append(out, c.AnalyzeTransfer(tr))
	}
	return out
}

// AnalyzeTransfer runs the critical-path walk for one transfer.
func (c *Collector) AnalyzeTransfer(tr Transfer) *Analysis {
	a := &Analysis{
		Transfer:    tr,
		Start:       minTime(tr.Send.Start, tr.Recv.Start),
		End:         maxTime(tr.Send.End, tr.Recv.End),
		Buckets:     map[string]sim.Time{},
		StageTotals: map[string]sim.Time{},
	}
	nodes := c.stageNodes(tr)
	for _, n := range nodes {
		if rxWireTask(n) {
			continue // wire occupancy is counted from the rdma stage spans
		}
		if b, ok := workBucket(n); ok {
			// Use the engine/wire occupancy inside the span, not the span
			// itself: a stage span issued early also covers time queued
			// behind its siblings, which would inflate the model's T(N/n).
			d := n.End - n.Start
			if inner, found := c.innerWork(n); found {
				d = inner.End - inner.Start
			}
			a.StageTotals[b] += d
		}
		if n.Kind == obs.KindRDMA {
			a.Chunks++
			// A NIC-offloaded chunk does its pack work inside the rdma
			// stage span: the SGE gather child is that chunk's datatype
			// processing, so the model sees it as the pack stage.
			for _, ch := range c.childTasks(n.ID) {
				if ch.Kind == obs.KindNicGather {
					a.StageTotals[BucketPack] += ch.End - ch.Start
				}
			}
		}
	}
	a.Rails = countRails(nodes)
	if len(nodes) == 0 {
		// No traced pipeline: the whole wall clock is one bucket, so the
		// sum stays exact.
		a.Buckets[BucketEager] = a.Wall()
		return a
	}
	c.walk(a, nodes)
	return a
}

// stageNodes collects the transfer's stage-level tasks: the sender's
// pack/D2H/RDMA spans, the receiver's H2D/unpack spans, and the rx wire
// tasks reached through explicit wire edges from the sender's transmit
// tasks. Sorted by (End, ID) so "latest-ending" is well defined.
func (c *Collector) stageNodes(tr Transfer) []obs.Task {
	var nodes []obs.Task
	add := func(t obs.Task) {
		if !t.Instant() {
			nodes = append(nodes, t)
		}
	}
	for _, t := range c.childTasks(tr.Send.ID) {
		switch t.Kind {
		case obs.KindPack, obs.KindD2H, obs.KindRDMA:
			add(t)
			if t.Kind != obs.KindRDMA {
				continue
			}
			// The rdma stage span's transmit child links to the remote rx
			// wire task through the recorded wire edge.
			for _, tx := range c.childTasks(t.ID) {
				for _, depID := range c.rdeps[tx.ID] {
					rx, ok := c.byID[depID]
					if !ok || !rxWireTask(rx) {
						continue
					}
					add(rx)
					// A nic-unpack receiver has no H2D/unpack spans under
					// its recv request; its stage work is the SGE scatter
					// task hanging off the rx wire task's stage edge.
					for _, scID := range c.rdeps[rx.ID] {
						if sc, ok := c.byID[scID]; ok && sc.Kind == obs.KindNicScatter {
							add(sc)
						}
					}
				}
			}
		}
	}
	for _, t := range c.childTasks(tr.Recv.ID) {
		switch t.Kind {
		case obs.KindH2D, obs.KindUnpack:
			add(t)
		}
	}
	sort.Slice(nodes, func(i, j int) bool {
		if nodes[i].End != nodes[j].End {
			return nodes[i].End < nodes[j].End
		}
		return nodes[i].ID < nodes[j].ID
	})
	return nodes
}

// walk performs the backward critical-path traversal and fills the
// attribution. The traversal starts at the latest-ending stage node and
// repeatedly binds to the predecessor with the latest end time among the
// node's dependencies; every interval between a.Start and a.End is
// assigned to exactly one bucket along the way.
func (c *Collector) walk(a *Analysis, nodes []obs.Task) {
	byID := map[uint64]obs.Task{}
	for _, n := range nodes {
		byID[n.ID] = n
	}
	waits := c.vbufWaits()

	cur := nodes[len(nodes)-1]
	// Tail: from the last stage task to request completion (FIN drain,
	// completion callbacks).
	a.Buckets[BucketFIN] += a.End - cur.End

	var rev []PathStep
	visited := map[uint64]bool{}
	for {
		if visited[cur.ID] {
			break
		}
		visited[cur.ID] = true
		c.decompose(a, cur)

		pred, label, ok := c.bindingPred(cur, nodes, byID, visited)
		gapStart := a.Start
		if ok {
			gapStart = pred.End
		}
		step := PathStep{Task: cur, Gap: cur.Start - gapStart, EdgeLabel: "head"}
		if ok {
			step.EdgeLabel = label
		}
		step.GapBuckets = classifyGap(cur, step.EdgeLabel, gapStart, cur.Start, waits)
		for b, v := range step.GapBuckets {
			a.Buckets[b] += v
		}
		rev = append(rev, step)
		if !ok {
			break
		}
		cur = pred
	}
	for i := len(rev) - 1; i >= 0; i-- {
		a.Path = append(a.Path, rev[i])
	}
}

// bindingPred finds the predecessor whose completion released cur: the
// latest-ending candidate among explicit dependency edges, the cross-rank
// chunk match (rx wire → H2D) and same-track serialization. Candidates
// ending after cur started cannot have been binding and are skipped.
// Candidate scans iterate the sorted nodes slice, never the byID map:
// map order is randomized per run and the first-seen candidate wins End
// ties, so iterating byID would make the attributed path (and the report)
// differ between runs on the same trace.
func (c *Collector) bindingPred(cur obs.Task, nodes []obs.Task, byID map[uint64]obs.Task, visited map[uint64]bool) (obs.Task, string, bool) {
	type cand struct {
		t     obs.Task
		label string
	}
	var cands []cand
	consider := func(t obs.Task, label string) {
		if t.ID == cur.ID || visited[t.ID] || t.End > cur.Start {
			return
		}
		cands = append(cands, cand{t, label})
	}
	for _, e := range c.deps[cur.ID] {
		t, ok := c.byID[e.On]
		if !ok {
			continue
		}
		if _, isNode := byID[t.ID]; !isNode {
			// The edge targets a task below stage level (e.g. the rx wire
			// task depends on the transmit task inside the rdma span);
			// lift it to its enclosing stage node.
			if p, ok := byID[t.ParentID]; ok {
				t = p
			} else {
				continue
			}
		}
		consider(t, e.Label)
	}
	if cur.Kind == obs.KindH2D && cur.Chunk >= 0 {
		// Cross-rank data dependency: the H2D of chunk c could not start
		// before chunk c's bytes finished streaming in.
		for _, n := range nodes {
			if rxWireTask(n) && n.Chunk == cur.Chunk {
				consider(n, "chunk")
			}
		}
	}
	// Same-track serialization: the latest earlier stage task on the same
	// resource track.
	var serial obs.Task
	for _, n := range nodes {
		if n.ID == cur.ID || n.Where != cur.Where || n.End > cur.Start {
			continue
		}
		if n.End > serial.End || (n.End == serial.End && n.ID > serial.ID) {
			serial = n
		}
	}
	if serial.ID != 0 {
		consider(serial, obs.DepSerial)
	}
	if len(cands) == 0 {
		return obs.Task{}, "", false
	}
	best := cands[0]
	for _, cd := range cands[1:] {
		switch {
		case cd.t.End > best.t.End:
			best = cd
		case cd.t.End == best.t.End && best.label == obs.DepSerial && cd.label != obs.DepSerial:
			// Prefer an explicit edge over implicit serialization at ties.
			best = cd
		case cd.t.End == best.t.End && cd.label == best.label && cd.t.ID < best.t.ID:
			best = cd
		}
	}
	return best.t, best.label, true
}

// decompose splits a critical-path node's own interval into resource
// queueing (before its engine/wire task started) and stage work.
func (c *Collector) decompose(a *Analysis, n obs.Task) {
	if rxWireTask(n) {
		a.Buckets[BucketWire] += n.End - n.Start
		return
	}
	work, _ := workBucket(n)
	inner, ok := c.innerWork(n)
	if !ok {
		a.Buckets[work] += n.End - n.Start
		return
	}
	if n.Kind == obs.KindRDMA {
		if g, ok := c.nicGatherChild(n); ok {
			// NIC-offloaded chunk: the span telescopes into SGE-engine
			// queueing, the gather itself (that chunk's pack work), rail
			// arbitration, and the wire.
			a.Buckets[BucketNicQueue] += clampTime(g.Start - n.Start)
			a.Buckets[BucketPack] += g.End - g.Start
			a.Buckets[BucketRailQueue] += clampTime(inner.Start - g.End)
			a.Buckets[BucketWire] += n.End - maxTime(inner.Start, g.End)
			return
		}
	}
	queue := BucketCopyQueue
	switch {
	case n.Kind == obs.KindRDMA:
		queue = BucketRailQueue
	case inner.Kind == obs.KindKernel:
		queue = BucketKernelQueue
	}
	qt := inner.Start - n.Start
	if qt < 0 {
		qt = 0
	}
	a.Buckets[queue] += qt
	a.Buckets[work] += (n.End - n.Start) - qt
}

// nicGatherChild finds the SGE gather task inside a NIC-offloaded rdma
// stage span, if any.
func (c *Collector) nicGatherChild(n obs.Task) (obs.Task, bool) {
	for _, ch := range c.childTasks(n.ID) {
		if ch.Kind == obs.KindNicGather {
			return ch, true
		}
	}
	return obs.Task{}, false
}

func clampTime(t sim.Time) sim.Time {
	if t < 0 {
		return 0
	}
	return t
}

// innerWork finds the task inside a stage span that did the actual moving:
// the engine-occupancy task under the stream op for GPU stages, the
// transmit wire task for RDMA stages.
func (c *Collector) innerWork(n obs.Task) (obs.Task, bool) {
	for _, ch := range c.childTasks(n.ID) {
		if ch.Instant() {
			continue
		}
		if n.Kind == obs.KindRDMA {
			base, _, _ := obs.SplitRail(ch.Where)
			if strings.HasSuffix(base, ".tx") {
				return ch, true
			}
			continue
		}
		// GPU stage: the stream op; prefer its engine-task child, which
		// excludes stream-FIFO and engine-arbitration waits.
		for _, g := range c.childTasks(ch.ID) {
			if !g.Instant() {
				return g, true
			}
		}
		return ch, true
	}
	return obs.Task{}, false
}

// classifyGap assigns the idle interval before a node. Wire edges are
// propagation latency (work); FIN-labelled gaps are control; everything
// else is split into vbuf-pool back-pressure (overlap with vbuf_wait
// tasks on the node's side of the transfer) and protocol control.
func classifyGap(cur obs.Task, label string, from, to sim.Time, waits []obs.Task) map[string]sim.Time {
	out := map[string]sim.Time{}
	gap := to - from
	if gap <= 0 {
		return out
	}
	switch label {
	case obs.DepWire:
		out[BucketWire] = gap
		return out
	case "chunk":
		out[BucketFIN] = gap
		return out
	}
	if cur.Kind == obs.KindNicScatter {
		// Idle time before a scatter is the serialized SGE engine working
		// through earlier chunks (or waiting for this chunk's bytes).
		out[BucketNicQueue] = gap
		return out
	}
	side := ".rxvbufs"
	ctrl := BucketFIN
	if senderStage(cur.Kind) {
		side = ".txvbufs"
		ctrl = BucketHandshake
	}
	var overlap sim.Time
	for _, w := range waits {
		if !strings.Contains(w.Where, side) {
			continue
		}
		lo, hi := maxTime(w.Start, from), minTime(w.End, to)
		if hi > lo {
			overlap += hi - lo
		}
	}
	if overlap > gap {
		overlap = gap
	}
	if overlap > 0 {
		out[BucketVbufWait] = overlap
	}
	if gap > overlap {
		out[ctrl] = gap - overlap
	}
	return out
}

// vbufWaits returns all pool-exhaustion wait tasks in the run.
func (c *Collector) vbufWaits() []obs.Task {
	var out []obs.Task
	for _, t := range c.tasks {
		if t.Kind == obs.KindVbufWait {
			out = append(out, t)
		}
	}
	return out
}

// workBucket maps a stage task to its work bucket.
func workBucket(t obs.Task) (string, bool) {
	switch t.Kind {
	case obs.KindPack:
		return BucketPack, true
	case obs.KindD2H:
		return BucketD2H, true
	case obs.KindRDMA:
		return BucketWire, true
	case obs.KindH2D:
		return BucketH2D, true
	case obs.KindUnpack:
		return BucketUnpack, true
	case obs.KindNicScatter:
		// The SGE scatter is the receive side's datatype processing.
		return BucketUnpack, true
	}
	return "", false
}

// countRails counts the distinct rails the sender's RDMA stages used.
func countRails(nodes []obs.Task) int {
	rails := map[int]bool{}
	for _, n := range nodes {
		if n.Kind != obs.KindRDMA || rxWireTask(n) {
			continue
		}
		_, r, _ := obs.SplitRail(n.Where)
		rails[r] = true
	}
	if len(rails) == 0 {
		return 1
	}
	return len(rails)
}

func minTime(a, b sim.Time) sim.Time {
	if a < b {
		return a
	}
	return b
}

func maxTime(a, b sim.Time) sim.Time {
	if a > b {
		return a
	}
	return b
}
