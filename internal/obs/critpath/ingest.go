package critpath

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"mv2sim/internal/obs"
	"mv2sim/internal/sim"
)

// chromeEvent mirrors the subset of Chrome's trace_event schema that
// obs.ChromeTracer emits. Chunk is a pointer so an absent field (contig
// task) is distinguishable from chunk 0.
type chromeEvent struct {
	Ph   string  `json:"ph"`
	Tid  int     `json:"tid"`
	Name string  `json:"name"`
	Cat  string  `json:"cat"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
	Args struct {
		ID     uint64  `json:"id"`
		Parent uint64  `json:"parent"`
		Chunk  *int    `json:"chunk"`
		Bytes  int     `json:"bytes"`
		Task   uint64  `json:"task"`
		On     uint64  `json:"on"`
		Name   string  `json:"name"`  // thread_name metadata payload
		Value  float64 `json:"value"` // counter ("C") sample payload
	} `json:"args"`
}

type chromeDoc struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
}

// nanos converts a trace_event microsecond timestamp back to the virtual
// nanosecond it was rendered from. The emitter prints three decimals, so
// the round-trip is exact.
func nanos(us float64) sim.Time {
	return sim.Time(math.Round(us * 1e3))
}

// Ingest rebuilds a Collector from a ChromeTracer JSON document, so
// pipedoctor can analyze a trace file captured by any traced command
// instead of re-running the simulation.
//
// The mapping undoes ChromeTracer's encoding: "M" thread_name events
// recover the tid→track map, "X" events become span tasks, "C" events
// become counter samples, "i" events in category "dep" become dependency
// edges, and remaining "i" events become instant tasks — except those
// whose args.id names an "X" task, which are TaskStep milestones, not
// tasks, and are dropped.
func Ingest(r io.Reader) (*Collector, error) {
	var doc chromeDoc
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("critpath: parse trace: %w", err)
	}
	tracks := map[int]string{}
	spanIDs := map[uint64]bool{}
	for _, ev := range doc.TraceEvents {
		switch {
		case ev.Ph == "M" && ev.Name == "thread_name":
			tracks[ev.Tid] = ev.Args.Name
		case ev.Ph == "X":
			spanIDs[ev.Args.ID] = true
		}
	}
	c := NewCollector()
	task := func(ev chromeEvent) obs.Task {
		chunk := -1
		if ev.Args.Chunk != nil {
			chunk = *ev.Args.Chunk
		}
		return obs.Task{
			ID:       ev.Args.ID,
			ParentID: ev.Args.Parent,
			Kind:     ev.Cat,
			What:     ev.Name,
			Where:    tracks[ev.Tid],
			Chunk:    chunk,
			Bytes:    ev.Args.Bytes,
			Start:    nanos(ev.Ts),
			End:      nanos(ev.Ts) + nanos(ev.Dur),
		}
	}
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			c.AddTask(task(ev))
		case "C":
			c.AddCounter(ev.Name, nanos(ev.Ts), ev.Args.Value)
		case "i":
			if ev.Cat == "dep" {
				c.AddDep(ev.Args.Task, ev.Args.On, ev.Name)
				continue
			}
			if ev.Args.ID == 0 || spanIDs[ev.Args.ID] {
				continue // TaskStep milestone of a span task, not a task
			}
			c.AddTask(task(ev))
		}
	}
	return c, nil
}
