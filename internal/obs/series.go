package obs

import (
	"sort"

	"mv2sim/internal/sim"
)

// Defaults for SeriesTracer. The ring capacity bounds memory per series
// regardless of run length; the window is the busy-fraction sampling
// granularity in virtual time.
const (
	DefaultSeriesCap    = 512
	DefaultSeriesWindow = sim.Time(100_000) // 100 us
)

// SeriesPoint is one sample of a time series: a gauge value at a virtual
// instant.
type SeriesPoint struct {
	At    sim.Time
	Value float64
}

// SeriesTracer is the ring-buffer time-series sampler: the consumer of
// CounterSample gauges (vbuf-pool occupancy and exhaustion waits, per-rail
// wire queue depth, per-rank in-flight requests, HCA byte counters) plus a
// derived windowed busy-fraction series per resource track. It exists so
// the load harness and the dashboard can see a run's behaviour *over time*
// — queue growth, pool exhaustion episodes, saturation onset — instead of
// only end-of-run aggregates.
//
// Two independent inputs feed it:
//
//   - CounterSample records are stored verbatim, one bounded ring per
//     gauge name; when a ring overflows, the oldest points are dropped
//     and the drop count is reported so downsampling is never silent.
//   - TaskEnd records accumulate per-track busy time into fixed virtual
//     windows, served as the synthetic series "busy.<track>" (value =
//     busy/window; overlapping tasks on one track can push it past 1).
//     TaskStart is ignored, so a replay that only has completed tasks
//     (dash.Replay over an ingested trace) reproduces the same series.
//
// Both derivations are order-insensitive within one virtual instant and
// all timestamps are virtual, so the series are byte-deterministic across
// runs and engines. Like every tracer, it costs nothing when no hub is
// attached, and the hot-path methods allocate only when a sample is
// actually recorded.
type SeriesTracer struct {
	cap    int
	window sim.Time

	rings map[string]*seriesRing
	busy  map[string]map[int64]sim.Time
}

// NewSeriesTracer creates a sampler with the default ring capacity and
// busy window.
func NewSeriesTracer() *SeriesTracer {
	return &SeriesTracer{
		cap:    DefaultSeriesCap,
		window: DefaultSeriesWindow,
		rings:  map[string]*seriesRing{},
		busy:   map[string]map[int64]sim.Time{},
	}
}

// SetCap overrides the per-series ring capacity. Must be called before
// samples arrive.
func (s *SeriesTracer) SetCap(n int) {
	if n <= 0 {
		panic("obs: series ring capacity must be positive")
	}
	s.cap = n
}

// SetWindow overrides the busy-fraction window. Must be called before
// samples arrive.
func (s *SeriesTracer) SetWindow(w sim.Time) {
	if w <= 0 {
		panic("obs: series busy window must be positive")
	}
	s.window = w
}

// Window returns the busy-fraction window.
func (s *SeriesTracer) Window() sim.Time { return s.window }

// TaskStart is ignored; see the type comment (replay parity).
func (s *SeriesTracer) TaskStart(Task) {}

// TaskStep is ignored.
func (s *SeriesTracer) TaskStep(Task, string) {}

// TaskEnd folds the task's duration into its track's busy windows.
func (s *SeriesTracer) TaskEnd(t Task) {
	if t.Instant() || t.Where == "" {
		return
	}
	wins := s.busy[t.Where]
	if wins == nil {
		wins = map[int64]sim.Time{}
		s.busy[t.Where] = wins
	}
	for w := int64(t.Start / s.window); w <= int64((t.End-1)/s.window); w++ {
		lo, hi := sim.Time(w)*s.window, sim.Time(w+1)*s.window
		if t.Start > lo {
			lo = t.Start
		}
		if t.End < hi {
			hi = t.End
		}
		wins[w] += hi - lo
	}
}

// CounterSample appends the gauge sample to the name's ring.
func (s *SeriesTracer) CounterSample(name string, at sim.Time, value float64) {
	r := s.rings[name]
	if r == nil {
		r = &seriesRing{}
		s.rings[name] = r
	}
	r.push(SeriesPoint{At: at, Value: value}, s.cap)
}

// busyPrefix namespaces the derived busy-fraction series.
const busyPrefix = "busy."

// Names returns every series name, sorted: the raw counter gauges plus one
// "busy.<track>" series per observed resource track.
func (s *SeriesTracer) Names() []string {
	out := make([]string, 0, len(s.rings)+len(s.busy))
	for name := range s.rings {
		out = append(out, name)
	}
	for where := range s.busy {
		out = append(out, busyPrefix+where)
	}
	sort.Strings(out)
	return out
}

// Points returns the series' samples in time order. Counter series return
// the ring's retained points; busy series return one point per non-empty
// window (At = window end, Value = busy fraction), capped to the most
// recent ring-capacity windows. Unknown names return nil.
func (s *SeriesTracer) Points(name string) []SeriesPoint {
	if wins, ok := s.busy[nameTrack(name)]; ok && len(name) > len(busyPrefix) && name[:len(busyPrefix)] == busyPrefix {
		idx := make([]int64, 0, len(wins))
		for w := range wins {
			idx = append(idx, w)
		}
		sort.Slice(idx, func(i, j int) bool { return idx[i] < idx[j] })
		if len(idx) > s.cap {
			idx = idx[len(idx)-s.cap:]
		}
		out := make([]SeriesPoint, 0, len(idx))
		for _, w := range idx {
			out = append(out, SeriesPoint{
				At:    sim.Time(w+1) * s.window,
				Value: float64(wins[w]) / float64(s.window),
			})
		}
		return out
	}
	if r := s.rings[name]; r != nil {
		return r.points()
	}
	return nil
}

// Dropped returns how many samples the named counter series evicted from
// its ring (always 0 for busy series, whose windows are capped at query
// time instead).
func (s *SeriesTracer) Dropped(name string) int {
	if r := s.rings[name]; r != nil {
		return r.dropped
	}
	return 0
}

// nameTrack strips the busy prefix; for non-busy names it returns a string
// that cannot collide with a track (tracks never start with "busy.").
func nameTrack(name string) string {
	if len(name) > len(busyPrefix) && name[:len(busyPrefix)] == busyPrefix {
		return name[len(busyPrefix):]
	}
	return name
}

// seriesRing is a bounded append-only window over one series: the last
// cap points survive, older ones are counted as dropped.
type seriesRing struct {
	buf     []SeriesPoint
	next    int // overwrite position once full
	full    bool
	dropped int
}

func (r *seriesRing) push(p SeriesPoint, cap int) {
	if !r.full {
		r.buf = append(r.buf, p)
		if len(r.buf) == cap {
			r.full = true
		}
		return
	}
	r.buf[r.next] = p
	r.next = (r.next + 1) % len(r.buf)
	r.dropped++
}

func (r *seriesRing) points() []SeriesPoint {
	if !r.full {
		return append([]SeriesPoint(nil), r.buf...)
	}
	out := make([]SeriesPoint, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}
