package obs

import (
	"fmt"
	"math/bits"

	"mv2sim/internal/report"
	"mv2sim/internal/sim"
)

// histBuckets is the number of power-of-two duration buckets a Histogram
// keeps: bucket i counts durations in [2^i, 2^(i+1)) ns, which spans
// sub-nanosecond to ~292 years — every virtual duration the simulator can
// produce.
const histBuckets = 64

// Histogram accumulates a duration distribution in fixed power-of-two
// buckets: O(1) memory regardless of sample count, no allocation after
// construction, and deterministic quantile estimates (linear interpolation
// within the hit bucket, clamped to the observed min/max). Like the rest
// of the package it is only ever driven from tracer callbacks, so a
// disabled hub costs nothing.
type Histogram struct {
	count    uint64
	sum      sim.Time
	min, max sim.Time
	buckets  [histBuckets]uint64
}

// NewHistogram creates an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// bucketOf maps a duration to its bucket index.
func bucketOf(d sim.Time) int {
	if d <= 0 {
		return 0
	}
	return bits.Len64(uint64(d)) - 1
}

// Observe records one duration. Negative durations clamp to zero.
func (h *Histogram) Observe(d sim.Time) {
	if d < 0 {
		d = 0
	}
	if h.count == 0 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
	h.count++
	h.sum += d
	h.buckets[bucketOf(d)]++
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the total of all observations.
func (h *Histogram) Sum() sim.Time { return h.sum }

// Min returns the smallest observation (zero when empty).
func (h *Histogram) Min() sim.Time {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest observation.
func (h *Histogram) Max() sim.Time { return h.max }

// Mean returns the average observation (zero when empty).
func (h *Histogram) Mean() sim.Time {
	if h.count == 0 {
		return 0
	}
	return h.sum / sim.Time(h.count)
}

// Bucket is one power-of-two cell of a histogram: Count observations fell
// in [Lo, Hi). The first cell starts at zero; the top cell is clamped to
// the int64 range instead of overflowing.
type Bucket struct {
	Lo, Hi sim.Time
	Count  uint64
}

// Buckets returns the non-empty cells in ascending duration order — the
// raw material for CDF rendering (loadgen, the dashboard), where three
// point quantiles are not enough. The boundaries are the histogram's
// actual power-of-two edges, so plotting code needs no knowledge of the
// bucketing scheme.
func (h *Histogram) Buckets() []Bucket {
	var out []Bucket
	for i, c := range h.buckets {
		if c == 0 {
			continue
		}
		b := Bucket{Hi: sim.Time(1) << uint(i+1), Count: c}
		if i > 0 {
			b.Lo = sim.Time(1) << uint(i)
		}
		if i >= 62 {
			b.Hi = sim.Time(1<<63 - 1)
		}
		out = append(out, b)
	}
	return out
}

// Quantile estimates the q-th quantile (0 <= q <= 1): it walks the
// cumulative bucket counts to the target rank and interpolates linearly
// within the hit bucket. Exact for distributions narrower than one bucket;
// within a factor of two otherwise, clamped to [Min, Max].
func (h *Histogram) Quantile(q float64) sim.Time {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	rank := q * float64(h.count)
	var cum float64
	for i, c := range h.buckets {
		if c == 0 {
			continue
		}
		if cum+float64(c) >= rank {
			lo := sim.Time(0)
			if i > 0 {
				lo = sim.Time(1) << uint(i)
			}
			hi := h.max
			if i < histBuckets-2 {
				hi = sim.Time(1) << uint(i+1)
			}
			frac := (rank - cum) / float64(c)
			v := lo + sim.Time(frac*float64(hi-lo))
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
		cum += float64(c)
	}
	return h.max
}

// MetricsTracer is the percentile registry: one Histogram of task
// durations per kind — the five pipeline stages, the wire operations, and
// the whole-transfer request kinds (send_rndv, recv, ...) all get their
// own distribution, so p50/p95/p99 per stage and per transfer read
// straight out of it. Instant tasks carry no duration and are skipped.
type MetricsTracer struct {
	order []string
	hists map[string]*Histogram
}

// NewMetricsTracer creates an empty registry.
func NewMetricsTracer() *MetricsTracer {
	return &MetricsTracer{hists: map[string]*Histogram{}}
}

// TaskStart is a no-op; durations are known at TaskEnd.
func (m *MetricsTracer) TaskStart(Task) {}

// TaskStep is a no-op.
func (m *MetricsTracer) TaskStep(Task, string) {}

// TaskEnd records the task's duration under its kind.
func (m *MetricsTracer) TaskEnd(t Task) {
	if t.Instant() {
		return
	}
	h := m.hists[t.Kind]
	if h == nil {
		h = NewHistogram()
		m.hists[t.Kind] = h
		m.order = append(m.order, t.Kind)
	}
	h.Observe(t.End - t.Start)
}

// CounterSample is a no-op: gauges carry no duration.
func (m *MetricsTracer) CounterSample(string, sim.Time, float64) {}

// Kinds returns the observed kinds in first-seen order.
func (m *MetricsTracer) Kinds() []string { return append([]string(nil), m.order...) }

// Hist returns the histogram for a kind, or nil when unobserved.
func (m *MetricsTracer) Hist(kind string) *Histogram { return m.hists[kind] }

// Percentile returns the q-th quantile of the kind's duration
// distribution. ok is false for unobserved kinds and for kinds with
// fewer than two samples: a single sample makes every quantile collapse
// to that one value, and reporting it as "p99" misleads — callers
// (tables, dashboard endpoints) render those as absent instead.
func (m *MetricsTracer) Percentile(kind string, q float64) (sim.Time, bool) {
	h := m.hists[kind]
	if h == nil || h.Count() < 2 {
		return 0, false
	}
	return h.Quantile(q), true
}

// Table renders the registry as a percentile table. Kinds with fewer
// than two samples show "-" in the quantile columns (see Percentile).
func (m *MetricsTracer) Table(title string) *report.Table {
	t := report.NewTable(title, "kind", "count", "p50 (us)", "p95 (us)", "p99 (us)", "p99.9 (us)", "max (us)")
	for _, k := range m.order {
		h := m.hists[k]
		cell := func(q float64) string {
			v, ok := m.Percentile(k, q)
			if !ok {
				return "-"
			}
			return fmt.Sprintf("%.1f", v.Micros())
		}
		t.Add(k,
			fmt.Sprintf("%d", h.Count()),
			cell(0.50), cell(0.95), cell(0.99), cell(0.999),
			fmt.Sprintf("%.1f", h.Max().Micros()))
	}
	return t
}
