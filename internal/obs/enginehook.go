package obs

import "mv2sim/internal/sim"

// EngineTracer adapts a Hub to sim.Hook: every engine process becomes a
// task on a shared "procs" track (the process name as the task name), and
// fired events are counted. Install it with Engine.SetHook; cluster.New
// does so when Config.TraceEngine is set. This view is deliberately
// coarse — per-transfer helper processes are short-lived and numerous, so
// one track keeps the trace readable.
type EngineTracer struct {
	hub    *Hub
	open   map[string]Span
	events uint64
}

// NewEngineTracer creates the adapter.
func NewEngineTracer(hub *Hub) *EngineTracer {
	return &EngineTracer{hub: hub, open: map[string]Span{}}
}

// ProcStart opens the process's task.
func (t *EngineTracer) ProcStart(_ sim.Time, name string) {
	t.open[name] = t.hub.StartTask(KindProc, name, "procs", -1, 0)
}

// ProcEnd closes the process's task.
func (t *EngineTracer) ProcEnd(_ sim.Time, name string) {
	if sp, ok := t.open[name]; ok {
		sp.End()
		delete(t.open, name)
	}
}

// EventFired counts event firings.
func (t *EngineTracer) EventFired(sim.Time, string) { t.events++ }

// EventsFired returns the number of observed event firings.
func (t *EngineTracer) EventsFired() uint64 { return t.events }
