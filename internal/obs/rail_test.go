package obs

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
)

func TestSplitRail(t *testing.T) {
	for _, tc := range []struct {
		in   string
		base string
		rail int
		ok   bool
	}{
		{"rank0.d2h.r0", "rank0.d2h", 0, true},
		{"rank0.d2h.r1", "rank0.d2h", 1, true},
		{"hca3.tx.r12", "hca3.tx", 12, true},
		{"rank0.d2h", "rank0.d2h", 0, false},
		{"hca0.tx", "hca0.tx", 0, false},
		{"rank0.rdma.r", "rank0.rdma.r", 0, false}, // no digits
		{"r1", "r1", 0, false},                     // no dot before the suffix
		{"node0.rxvbufs", "node0.rxvbufs", 0, false},
	} {
		base, rail, ok := SplitRail(tc.in)
		if base != tc.base || rail != tc.rail || ok != tc.ok {
			t.Errorf("SplitRail(%q) = (%q, %d, %v), want (%q, %d, %v)",
				tc.in, base, rail, ok, tc.base, tc.rail, tc.ok)
		}
	}
}

func TestGroupRails(t *testing.T) {
	got := GroupRails([]string{
		"rank0.pack",
		"rank0.d2h.r0",
		"rank0.rdma.r0",
		"rank0.d2h.r1",
		"rank0.rdma.r1",
		"gpu0.d2hEngine",
	})
	want := []RailGroup{
		{Base: "rank0.pack", Tracks: []string{"rank0.pack"}},
		{Base: "rank0.d2h", Tracks: []string{"rank0.d2h.r0", "rank0.d2h.r1"}},
		{Base: "rank0.rdma", Tracks: []string{"rank0.rdma.r0", "rank0.rdma.r1"}},
		{Base: "gpu0.d2hEngine", Tracks: []string{"gpu0.d2hEngine"}},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("GroupRails =\n%+v\nwant\n%+v", got, want)
	}
}

func TestGroupRailsSparse(t *testing.T) {
	// A hole in the rail indices must not leave empty track names behind.
	got := GroupRails([]string{"x.r0", "x.r2"})
	want := []RailGroup{{Base: "x", Tracks: []string{"x.r0", "x.r2"}}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("GroupRails = %+v, want %+v", got, want)
	}
}

func TestResourceTableAggregatesRails(t *testing.T) {
	clk := &fakeClock{}
	s := NewStatsTracer()
	h := NewHub(clk, s)
	for rail := 0; rail < 2; rail++ {
		for i := 0; i < 3; i++ {
			sp := h.Start(KindD2H, fmt.Sprintf("rank0.d2h.r%d", rail), i, 1000)
			clk.t += 250
			sp.End()
		}
	}
	sp := h.Start(KindPack, "rank0.pack", 0, 500)
	clk.t += 100
	sp.End()

	tbl := s.ResourceTable("resources").String()
	lines := strings.Split(tbl, "\n")
	var aggregated, split int
	for _, l := range lines {
		switch {
		case strings.HasPrefix(l, "rank0.d2h "):
			aggregated++
			if !strings.Contains(l, "6") { // 6 tasks summed across both rails
				t.Errorf("aggregated row lost tasks: %q", l)
			}
		case strings.HasPrefix(l, "  rank0.d2h.r"):
			split++
		}
	}
	if aggregated != 1 {
		t.Fatalf("want exactly 1 aggregated rank0.d2h row, got %d in:\n%s", aggregated, tbl)
	}
	if split != 2 {
		t.Fatalf("want 2 split rail rows, got %d in:\n%s", split, tbl)
	}
}
