package obs

// Multi-rail pipelines suffix striped resource tracks with ".rK"
// ("rank0.d2h.r1", "hca0.tx.r0", ...). A rail track is one lane of a
// single logical resource, not an independent resource: reports must
// aggregate rail siblings back under their base name or rails>1 runs
// double-list every striped stage. SplitRail and GroupRails are the shared
// helpers for that.

// SplitRail splits a rail-suffixed track name into its base resource and
// rail index. ok is false for bare (unsuffixed) names, which report
// themselves as base with rail 0.
func SplitRail(where string) (base string, rail int, ok bool) {
	i := len(where) - 1
	for i >= 0 && where[i] >= '0' && where[i] <= '9' {
		i--
	}
	if i < 1 || i == len(where)-1 || where[i] != 'r' || where[i-1] != '.' {
		return where, 0, false
	}
	n := 0
	for _, c := range where[i+1:] {
		n = n*10 + int(c-'0')
	}
	return where[:i-1], n, true
}

// RailGroup is one logical resource and the rail tracks that make it up.
// Bare tracks form single-member groups with Tracks[0] == Base.
type RailGroup struct {
	Base   string
	Tracks []string // in rail order for suffixed groups
}

// GroupRails collapses a track list into per-resource groups, preserving
// the first-seen order of the base names. Suffixed members are ordered by
// rail index within their group.
func GroupRails(wheres []string) []RailGroup {
	idx := map[string]int{}
	var out []RailGroup
	for _, w := range wheres {
		base, rail, ok := SplitRail(w)
		if !ok {
			base, rail = w, 0
		}
		gi, seen := idx[base]
		if !seen {
			gi = len(out)
			idx[base] = gi
			out = append(out, RailGroup{Base: base})
		}
		g := &out[gi]
		for len(g.Tracks) <= rail {
			g.Tracks = append(g.Tracks, "")
		}
		g.Tracks[rail] = w
	}
	// Drop any holes left by sparse rail indices (tracecheck rejects those
	// in real traces, but reports should not crash on them).
	for i := range out {
		dst := out[i].Tracks[:0]
		for _, tr := range out[i].Tracks {
			if tr != "" {
				dst = append(dst, tr)
			}
		}
		out[i].Tracks = dst
	}
	return out
}
