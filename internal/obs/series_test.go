package obs

import (
	"reflect"
	"testing"

	"mv2sim/internal/sim"
)

func TestSeriesTracerCounterRing(t *testing.T) {
	clk := &fakeClock{}
	s := NewSeriesTracer()
	h := NewHub(clk, s)

	for i := 0; i < 5; i++ {
		clk.t = sim.Time(i * 100)
		h.Counter("pool.free", float64(10-i))
	}
	got := s.Points("pool.free")
	want := []SeriesPoint{
		{At: 0, Value: 10}, {At: 100, Value: 9}, {At: 200, Value: 8},
		{At: 300, Value: 7}, {At: 400, Value: 6},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("points = %+v, want %+v", got, want)
	}
	if d := s.Dropped("pool.free"); d != 0 {
		t.Fatalf("dropped = %d, want 0", d)
	}
	if names := s.Names(); len(names) != 1 || names[0] != "pool.free" {
		t.Fatalf("names = %v", names)
	}
}

func TestSeriesTracerRingEviction(t *testing.T) {
	s := NewSeriesTracer()
	s.SetCap(4)
	for i := 0; i < 10; i++ {
		s.CounterSample("g", sim.Time(i), float64(i))
	}
	got := s.Points("g")
	want := []SeriesPoint{{At: 6, Value: 6}, {At: 7, Value: 7}, {At: 8, Value: 8}, {At: 9, Value: 9}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("points after eviction = %+v, want %+v", got, want)
	}
	if d := s.Dropped("g"); d != 6 {
		t.Fatalf("dropped = %d, want 6", d)
	}
}

func TestSeriesTracerBusyWindows(t *testing.T) {
	s := NewSeriesTracer()
	s.SetWindow(1000)
	// One task fully inside window 0, one spanning windows 2..3, and an
	// instant marker that must not contribute.
	s.TaskEnd(Task{ID: 1, Kind: KindD2H, Where: "gpu0.d2h", Start: 100, End: 600})
	s.TaskEnd(Task{ID: 2, Kind: KindD2H, Where: "gpu0.d2h", Start: 2500, End: 3500})
	s.TaskEnd(Task{ID: 3, Kind: KindFIN, Where: "gpu0.d2h", Start: 700, End: 700})

	got := s.Points("busy.gpu0.d2h")
	want := []SeriesPoint{
		{At: 1000, Value: 0.5}, // 500ns of window [0,1000)
		{At: 3000, Value: 0.5}, // 500ns of window [2000,3000)
		{At: 4000, Value: 0.5}, // 500ns of window [3000,4000)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("busy points = %+v, want %+v", got, want)
	}
	if names := s.Names(); len(names) != 1 || names[0] != "busy.gpu0.d2h" {
		t.Fatalf("names = %v", names)
	}
}

func TestSeriesTracerBusyBoundaryExact(t *testing.T) {
	// A task ending exactly on a window boundary must not leak into the
	// next window.
	s := NewSeriesTracer()
	s.SetWindow(1000)
	s.TaskEnd(Task{ID: 1, Kind: KindRDMA, Where: "hca0.tx", Start: 0, End: 1000})
	got := s.Points("busy.hca0.tx")
	want := []SeriesPoint{{At: 1000, Value: 1.0}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("busy points = %+v, want %+v", got, want)
	}
}

// TestSeriesTracerReplayParity pins the property the dashboard's replay
// mode depends on: feeding only the completed tasks and counter samples
// (what an ingested trace preserves), in recorded order, yields the same
// series as the live interleaving.
func TestSeriesTracerReplayParity(t *testing.T) {
	live := NewSeriesTracer()
	replay := NewSeriesTracer()

	tasks := []Task{
		{ID: 1, Kind: KindPack, Where: "gpu0.pack", Start: 0, End: 40_000},
		{ID: 2, Kind: KindD2H, Where: "gpu0.d2h", Start: 40_000, End: 260_000},
		{ID: 3, Kind: KindPack, Where: "gpu0.pack", Start: 50_000, End: 90_000},
	}
	samples := []SeriesPoint{{At: 10_000, Value: 3}, {At: 20_000, Value: 2}, {At: 250_000, Value: 3}}

	// Live: interleaved starts, counters, ends.
	for _, tk := range tasks {
		live.TaskStart(tk)
	}
	for _, p := range samples {
		live.CounterSample("pool.free", p.At, p.Value)
	}
	for _, tk := range tasks {
		live.TaskEnd(tk)
	}
	// Replay: counters first, then TaskEnd only (dash.Replay's order).
	for _, p := range samples {
		replay.CounterSample("pool.free", p.At, p.Value)
	}
	for _, tk := range tasks {
		replay.TaskEnd(tk)
	}

	if !reflect.DeepEqual(live.Names(), replay.Names()) {
		t.Fatalf("names: live %v, replay %v", live.Names(), replay.Names())
	}
	for _, name := range live.Names() {
		if !reflect.DeepEqual(live.Points(name), replay.Points(name)) {
			t.Fatalf("%s: live %+v, replay %+v", name, live.Points(name), replay.Points(name))
		}
	}
}
