package cuda

import (
	"testing"
	"testing/quick"

	"mv2sim/internal/gpu"
	"mv2sim/internal/mem"
	"mv2sim/internal/obs"
	"mv2sim/internal/sim"
)

type fixture struct {
	e    sim.Engine
	dev  *gpu.Device
	ctx  *Ctx
	host *mem.Space
}

func newFixture() *fixture {
	e := sim.New()
	dev := gpu.New(e, 0, gpu.Config{MemBytes: 8 << 20})
	return &fixture{e: e, dev: dev, ctx: NewCtx(e, dev), host: mem.NewHostSpace("host", 8<<20)}
}

func TestBlockingMemcpyRoundTrip(t *testing.T) {
	f := newFixture()
	d := f.ctx.MustMalloc(4096)
	back := f.host.Base().Add(4096)
	mem.Fill(f.host.Base(), 4096, func(i int) byte { return byte(3 * i) })
	var elapsed sim.Time
	f.e.Spawn("app", func(p *sim.Proc) {
		f.ctx.Memcpy(p, d, f.host.Base(), 4096)
		f.ctx.Memcpy(p, back, d, 4096)
		elapsed = p.Now()
	})
	if err := f.e.Run(); err != nil {
		t.Fatal(err)
	}
	if !mem.Equal(back, f.host.Base(), 4096) {
		t.Error("round trip corrupted data")
	}
	m := f.ctx.Model()
	want := m.CopyCost(gpu.H2D, gpu.Shape1D(4096)) + m.CopyCost(gpu.D2H, gpu.Shape1D(4096)) +
		2*(m.AsyncIssue+m.SyncOverhead)
	if elapsed != want {
		t.Errorf("elapsed = %v, want %v", elapsed, want)
	}
}

func TestMemcpy2DPacksColumn(t *testing.T) {
	f := newFixture()
	const pitch, width, height = 64, 4, 16
	src := f.ctx.MustMalloc(pitch * height)
	dst := f.host.Base()
	f.e.Spawn("fill+copy", func(p *sim.Proc) {
		mem.Fill(src, pitch*height, func(i int) byte { return byte(i) })
		f.ctx.Memcpy2D(p, dst, width, src, pitch, width, height)
	})
	if err := f.e.Run(); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < height; r++ {
		for x := 0; x < width; x++ {
			if got, want := dst.Bytes(width * height)[r*width+x], byte(r*pitch+x); got != want {
				t.Fatalf("row %d byte %d: got %d want %d", r, x, got, want)
			}
		}
	}
}

func TestStreamFIFO(t *testing.T) {
	// Two copies on one stream execute in order even though the second is
	// smaller/faster.
	f := newFixture()
	s := f.ctx.NewStream()
	d := f.ctx.MustMalloc(1 << 16)
	var ev1, ev2 *sim.Event
	f.e.Spawn("app", func(p *sim.Proc) {
		ev1 = f.ctx.MemcpyAsync(p, d, f.host.Base(), 1<<16, s)
		ev2 = f.ctx.MemcpyAsync(p, d.Add(0), f.host.Base(), 16, s)
	})
	if err := f.e.Run(); err != nil {
		t.Fatal(err)
	}
	if !ev1.Fired() || !ev2.Fired() {
		t.Fatal("ops did not complete")
	}
	if ev2.FiredAt() <= ev1.FiredAt() {
		t.Errorf("stream order violated: op2@%v <= op1@%v", ev2.FiredAt(), ev1.FiredAt())
	}
}

func TestStreamsOverlapAcrossEngines(t *testing.T) {
	// A D2H copy on stream A and an H2D copy on stream B run concurrently:
	// total time ≈ max, not sum.
	f := newFixture()
	sa, sb := f.ctx.NewStream(), f.ctx.NewStream()
	d := f.ctx.MustMalloc(2 << 20)
	const n = 1 << 20
	var end sim.Time
	f.e.Spawn("app", func(p *sim.Proc) {
		e1 := f.ctx.MemcpyAsync(p, f.host.Base(), d, n, sa)               // D2H
		e2 := f.ctx.MemcpyAsync(p, d.Add(n), f.host.Base().Add(n), n, sb) // H2D
		p.WaitAll(e1, e2)
		end = p.Now()
	})
	if err := f.e.Run(); err != nil {
		t.Fatal(err)
	}
	m := f.ctx.Model()
	one := m.CopyCost(gpu.D2H, gpu.Shape1D(n))
	if end > one+one/2 {
		t.Errorf("no overlap: end=%v, single copy=%v", end, one)
	}
}

func TestSameEngineStreamsSerialize(t *testing.T) {
	// Two D2H copies on different streams still share the single D2H engine.
	f := newFixture()
	sa, sb := f.ctx.NewStream(), f.ctx.NewStream()
	d := f.ctx.MustMalloc(2 << 20)
	const n = 1 << 20
	var end sim.Time
	f.e.Spawn("app", func(p *sim.Proc) {
		e1 := f.ctx.MemcpyAsync(p, f.host.Base(), d, n, sa)
		e2 := f.ctx.MemcpyAsync(p, f.host.Base().Add(n), d.Add(n), n, sb)
		p.WaitAll(e1, e2)
		end = p.Now()
	})
	if err := f.e.Run(); err != nil {
		t.Fatal(err)
	}
	one := f.ctx.Model().CopyCost(gpu.D2H, gpu.Shape1D(n))
	if end < 2*one {
		t.Errorf("copies overlapped on one engine: end=%v, 2x copy=%v", end, 2*one)
	}
}

func TestStreamQueryAndSynchronize(t *testing.T) {
	f := newFixture()
	s := f.ctx.NewStream()
	d := f.ctx.MustMalloc(1 << 20)
	f.e.Spawn("app", func(p *sim.Proc) {
		if !s.Query() {
			t.Error("fresh stream not idle")
		}
		f.ctx.MemcpyAsync(p, d, f.host.Base(), 1<<20, s)
		if s.Query() {
			t.Error("stream idle immediately after async submit")
		}
		s.Synchronize(p)
		if !s.Query() {
			t.Error("stream busy after Synchronize")
		}
	})
	if err := f.e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSynchronizeIdleStreamCostsOnlyOverhead(t *testing.T) {
	f := newFixture()
	s := f.ctx.NewStream()
	var elapsed sim.Time
	f.e.Spawn("app", func(p *sim.Proc) {
		s.Synchronize(p)
		elapsed = p.Now()
	})
	if err := f.e.Run(); err != nil {
		t.Fatal(err)
	}
	if elapsed != f.ctx.Model().SyncOverhead {
		t.Errorf("elapsed = %v, want %v", elapsed, f.ctx.Model().SyncOverhead)
	}
}

func TestEventRecordQuerySynchronize(t *testing.T) {
	f := newFixture()
	s := f.ctx.NewStream()
	d := f.ctx.MustMalloc(1 << 20)
	ev := f.ctx.NewEvent()
	if ev.Query() {
		t.Error("unrecorded event reports complete")
	}
	f.e.Spawn("app", func(p *sim.Proc) {
		copyDone := f.ctx.MemcpyAsync(p, d, f.host.Base(), 1<<20, s)
		ev.Record(p, s)
		if ev.Query() {
			t.Error("event complete before stream drained")
		}
		ev.Synchronize(p)
		if !copyDone.Fired() {
			t.Error("event fired before prior stream work")
		}
		if ev.CompletedAt() < copyDone.FiredAt() {
			t.Error("event completed before prior op")
		}
	})
	if err := f.e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSynchronizeUnrecordedEventPanics(t *testing.T) {
	f := newFixture()
	ev := f.ctx.NewEvent()
	f.e.Spawn("app", func(p *sim.Proc) {
		defer func() {
			if recover() == nil {
				t.Error("Synchronize on unrecorded event did not panic")
			}
		}()
		ev.Synchronize(p)
	})
	if err := f.e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestKernelLaunchOrderingWithCopies(t *testing.T) {
	// Kernel launched after a H2D copy in the same stream sees the copied
	// data; a marker event after the kernel sees its effect.
	f := newFixture()
	s := f.ctx.NewStream()
	d := f.ctx.MustMalloc(16)
	sawInput := false
	f.e.Spawn("app", func(p *sim.Proc) {
		mem.Fill(f.host.Base(), 16, func(i int) byte { return 0xAB })
		f.ctx.MemcpyAsync(p, d, f.host.Base(), 16, s)
		kd := f.ctx.LaunchKernel(p, s, 16, 1.0, func() {
			sawInput = d.Bytes(16)[7] == 0xAB
			d.Bytes(16)[0] = 0xCD
		})
		p.Wait(kd)
		if d.Bytes(16)[0] != 0xCD {
			t.Error("kernel effect not visible after completion")
		}
	})
	if err := f.e.Run(); err != nil {
		t.Fatal(err)
	}
	if !sawInput {
		t.Error("kernel ran before its input copy completed")
	}
}

// The paper's §IV-A observation as an executable property: for messages
// beyond the small-message regime, device-side packing plus a contiguous
// D2H ("D2D2H nc2c2c") completes earlier than the direct strided D2H, and
// the advantage grows with message size.
func TestOffloadedPackingBeatsDirectStridedCopy(t *testing.T) {
	f := newFixture()
	const pitch = 64
	for _, rows := range []int{256, 4096, 65536} {
		rows := rows
		fx := newFixture()
		src := fx.ctx.MustMalloc(pitch * rows)
		tbuf := fx.ctx.MustMalloc(4 * rows)
		hostA := fx.host.Base()
		hostB := fx.host.Base().Add(4 * rows)
		var direct, offload sim.Time
		fx.e.Spawn("direct", func(p *sim.Proc) {
			t0 := p.Now()
			fx.ctx.Memcpy2D(p, hostA, pitch, src, pitch, 4, rows)
			direct = p.Now() - t0
		})
		fx.e.SpawnAt(sim.Second, "offload", func(p *sim.Proc) {
			t0 := p.Now()
			fx.ctx.Memcpy2D(p, tbuf, 4, src, pitch, 4, rows)
			fx.ctx.Memcpy(p, hostB, tbuf, 4*rows)
			offload = p.Now() - t0
		})
		if err := fx.e.Run(); err != nil {
			t.Fatal(err)
		}
		if offload >= direct {
			t.Errorf("rows=%d: offload %v not faster than direct %v", rows, offload, direct)
		}
	}
	_ = f
}

// Property: async 2D copies through any stream preserve data for arbitrary
// geometry (the byte-movement layer never depends on timing).
func TestPropAsync2DCopyIntegrity(t *testing.T) {
	f := func(widthRaw, heightRaw, padRaw uint8) bool {
		width := 1 + int(widthRaw%32)
		height := 1 + int(heightRaw%32)
		pitch := width + int(padRaw%16)
		fx := newFixture()
		src := fx.ctx.MustMalloc(pitch * height)
		dst := fx.host.Base()
		ok := false
		fx.e.Spawn("app", func(p *sim.Proc) {
			mem.Fill(src, pitch*height, func(i int) byte { return byte(i * 7) })
			s := fx.ctx.NewStream()
			ev := fx.ctx.Memcpy2DAsync(p, dst, width, src, pitch, width, height, s)
			p.Wait(ev)
			ok = true
			for r := 0; r < height && ok; r++ {
				for x := 0; x < width; x++ {
					if dst.Bytes(width * height)[r*width+x] != byte((r*pitch+x)*7) {
						ok = false
						break
					}
				}
			}
		})
		if err := fx.e.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestMemset(t *testing.T) {
	f := newFixture()
	d := f.ctx.MustMalloc(4096)
	var devTime, hostTime sim.Time
	f.e.Spawn("app", func(p *sim.Proc) {
		t0 := p.Now()
		f.ctx.Memset(p, d, 0x7F, 4096)
		devTime = p.Now() - t0
		b := d.Bytes(4096)
		for i := range b {
			if b[i] != 0x7F {
				t.Fatalf("byte %d = %d after Memset", i, b[i])
			}
		}
		t0 = p.Now()
		f.ctx.Memset(p, f.host.Base(), 0x01, 4096)
		hostTime = p.Now() - t0
		if f.host.Base().Bytes(1)[0] != 0x01 {
			t.Error("host memset did not fill")
		}
	})
	if err := f.e.Run(); err != nil {
		t.Fatal(err)
	}
	if devTime <= 0 || hostTime <= devTime {
		t.Errorf("memset costs: dev=%v host=%v (host fill should be slower per byte)", devTime, hostTime)
	}
}

func TestMemsetAsyncOrderedWithCopies(t *testing.T) {
	f := newFixture()
	s := f.ctx.NewStream()
	d := f.ctx.MustMalloc(64)
	f.e.Spawn("app", func(p *sim.Proc) {
		f.ctx.MemsetAsync(p, d, 0xAA, 64, s)
		ev := f.ctx.MemcpyAsync(p, f.host.Base(), d, 64, s)
		p.Wait(ev)
		if f.host.Base().Bytes(64)[63] != 0xAA {
			t.Error("copy ran before the preceding memset in stream order")
		}
	})
	if err := f.e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestStreamWaitEvent(t *testing.T) {
	// A kernel on stream B must not run until the copy on stream A (gated
	// through an event) has completed — even though B has no other work.
	f := newFixture()
	sa, sb := f.ctx.NewStream(), f.ctx.NewStream()
	d := f.ctx.MustMalloc(1 << 20)
	sawCopy := false
	f.e.Spawn("app", func(p *sim.Proc) {
		mem.Fill(f.host.Base(), 1<<20, func(i int) byte { return 0x42 })
		f.ctx.MemcpyAsync(p, d, f.host.Base(), 1<<20, sa)
		ev := f.ctx.NewEvent()
		ev.Record(p, sa)
		f.ctx.StreamWaitEvent(p, sb, ev)
		kd := f.ctx.LaunchKernel(p, sb, 1, 1.0, func() {
			sawCopy = d.Bytes(1 << 20)[1<<20-1] == 0x42
		})
		p.Wait(kd)
	})
	if err := f.e.Run(); err != nil {
		t.Fatal(err)
	}
	if !sawCopy {
		t.Error("stream B ran ahead of the event it was told to wait for")
	}
}

func TestStreamWaitUnrecordedEventPanics(t *testing.T) {
	f := newFixture()
	s := f.ctx.NewStream()
	ev := f.ctx.NewEvent()
	f.e.Spawn("app", func(p *sim.Proc) {
		defer func() {
			if recover() == nil {
				t.Error("StreamWaitEvent on unrecorded event did not panic")
			}
		}()
		f.ctx.StreamWaitEvent(p, s, ev)
	})
	if err := f.e.Run(); err != nil {
		t.Fatal(err)
	}
}

// taskCollector records every completed obs task in simulation order.
type taskCollector struct{ tasks []obs.Task }

func (c *taskCollector) TaskStart(obs.Task)                      {}
func (c *taskCollector) TaskStep(obs.Task, string)               {}
func (c *taskCollector) TaskEnd(t obs.Task)                      { c.tasks = append(c.tasks, t) }
func (c *taskCollector) CounterSample(string, sim.Time, float64) {}

func TestLaunchKernelTaskTracing(t *testing.T) {
	// A kernel launched through LaunchKernelTask must be traced as a child
	// of the supplied pipeline span, carrying that chunk's index; a plain
	// LaunchKernel stays a top-level, unchunked task. Stream FIFO order is
	// unchanged either way.
	f := newFixture()
	col := &taskCollector{}
	hub := obs.NewHub(f.e, col)
	f.ctx.SetHub(hub)
	var parentID uint64
	order := ""
	f.e.Spawn("app", func(p *sim.Proc) {
		s := f.ctx.NewStream()
		parent := hub.StartTask(obs.KindPack, obs.KindPack, "rank0.pack", 7, 128)
		parentID = parent.Task().ID
		first := f.ctx.LaunchKernelTask(p, s, parent, 7, 128, 2.0, func() { order += "a" })
		second := f.ctx.LaunchKernel(p, s, 64, 1.0, func() { order += "b" })
		p.Wait(first)
		p.Wait(second)
		parent.End()
	})
	if err := f.e.Run(); err != nil {
		t.Fatal(err)
	}
	if order != "ab" {
		t.Fatalf("kernel bodies ran in order %q, want FIFO \"ab\"", order)
	}
	var kernels []obs.Task
	for _, tk := range col.tasks {
		if tk.Kind == obs.KindKernel {
			kernels = append(kernels, tk)
		}
	}
	if len(kernels) != 2 {
		t.Fatalf("traced %d kernel tasks, want 2", len(kernels))
	}
	child, top := kernels[0], kernels[1]
	if child.ParentID != parentID || child.Chunk != 7 || child.Bytes != 128 {
		t.Errorf("task kernel = {parent %d, chunk %d, bytes %d}, want {%d, 7, 128}",
			child.ParentID, child.Chunk, child.Bytes, parentID)
	}
	m := f.ctx.Model()
	if got, want := child.End-child.Start, m.KernelCost(128, 2.0); got != want {
		t.Errorf("child kernel task span = %v, want modeled cost %v", got, want)
	}
	if top.ParentID != 0 || top.Chunk != -1 || top.Bytes != 64 {
		t.Errorf("plain kernel = {parent %d, chunk %d, bytes %d}, want top-level {0, -1, 64}",
			top.ParentID, top.Chunk, top.Bytes)
	}
}
