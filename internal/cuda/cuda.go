// Package cuda provides a CUDA-4.0-flavoured runtime API over the
// simulated GPU in internal/gpu: memory management, synchronous and
// asynchronous 1D/2D memory copies, streams and events.
//
// The subset implemented is exactly what the paper's three code patterns
// (Figure 4) and MVAPICH2's internals need:
//
//	Memcpy / Memcpy2D            — blocking copies (Figure 4(a))
//	MemcpyAsync / Memcpy2DAsync  — stream-ordered copies (Figure 4(b))
//	Stream Query/Synchronize     — pipeline progress checks
//	Event Record/Synchronize     — inter-stream ordering
//
// Directions are inferred from the pointers (cudaMemcpyDefault under UVA);
// host pointers are ordinary mem.Ptr values into a host Space.
//
// Semantics mirrored from CUDA: operations within one stream execute in
// FIFO order; operations in different streams may overlap subject to the
// device's engine resources (one H2D DMA engine, one D2H DMA engine, an
// internal copy path, and the compute engine). A blocking call costs the
// caller the async-issue time plus a synchronization overhead on top of
// the transfer itself.
package cuda

import (
	"fmt"

	"mv2sim/internal/gpu"
	"mv2sim/internal/mem"
	"mv2sim/internal/obs"
	"mv2sim/internal/sim"
)

// Ctx binds a simulated device to the CUDA API for one node.
type Ctx struct {
	e       sim.Engine
	dev     *gpu.Device
	nstream int
	def     *Stream
	hub     *obs.Hub
}

// SetHub attaches an observability hub; every stream operation (copy,
// kernel, memset) becomes a task on the stream's own track, covering the
// op from dequeue to completion — engine contention included.
func (c *Ctx) SetHub(h *obs.Hub) { c.hub = h }

// NewCtx creates a context on the given device. The context owns the
// default (NULL) stream used by the blocking API.
func NewCtx(e sim.Engine, dev *gpu.Device) *Ctx {
	c := &Ctx{e: e, dev: dev}
	c.def = c.NewStream()
	return c
}

// Device returns the underlying simulated device.
func (c *Ctx) Device() *gpu.Device { return c.dev }

// Model returns the device cost model.
func (c *Ctx) Model() *gpu.CostModel { return c.dev.Model() }

// Malloc allocates device memory (cudaMalloc).
func (c *Ctx) Malloc(n int) (mem.Ptr, error) { return c.dev.Malloc(n) }

// MustMalloc allocates device memory or panics.
func (c *Ctx) MustMalloc(n int) mem.Ptr { return c.dev.MustMalloc(n) }

// Free releases device memory (cudaFree).
func (c *Ctx) Free(p mem.Ptr) error { return c.dev.Free(p) }

// op is one stream-ordered operation.
type op struct {
	shape       gpu.CopyShape
	dst, src    mem.Ptr
	kernCells   int
	kernNsCell  float64
	kernBody    func()
	isKernel    bool
	parent      obs.Span   // pipeline span to parent the op task under (may be inert)
	chunk       int        // pipeline chunk index, or -1
	isMarker    bool       // event record: completes instantly in stream order
	waitOn      *sim.Event // stream barrier: stall the stream until this fires
	memsetBytes int        // >0: a fill; costed as a device-bandwidth write
	memsetDst   mem.Ptr
	done        *sim.Event
}

// Stream is a CUDA stream: a FIFO of operations executed by a dedicated
// worker process that contends for the device's engines.
type Stream struct {
	ctx     *Ctx
	name    string
	q       *sim.Queue[*op]
	pending int
	drained *sim.Event // recreated whenever pending drops to 0 with waiters
	lastOp  obs.Task   // previous traced op, for FIFO-serialization edges
}

// NewStream creates a stream with its own worker (cudaStreamCreate).
func (c *Ctx) NewStream() *Stream {
	s := &Stream{ctx: c, name: fmt.Sprintf("gpu%d.stream%d", c.dev.ID(), c.nstream)}
	c.nstream++
	s.q = sim.NewQueue[*op](c.e, s.name+".ops")
	c.e.SpawnDaemon(s.name, s.run)
	return s
}

// opSpan opens the tracing span for one stream op. Markers and stream
// waits carry no device work and are not traced.
func (s *Stream) opSpan(o *op) obs.Span {
	h := s.ctx.hub
	if !h.Enabled() || o.isMarker || o.waitOn != nil {
		return obs.Span{}
	}
	switch {
	case o.memsetBytes > 0:
		return h.Start(obs.KindMemset, s.name, -1, o.memsetBytes)
	case o.isKernel:
		return h.StartChild(o.parent, obs.KindKernel, s.name, o.chunk, o.kernCells)
	default:
		return h.StartChild(o.parent, gpu.CopyKind(gpu.DirOf(o.dst, o.src)), s.name, o.chunk, o.shape.Bytes())
	}
}

func (s *Stream) run(p *sim.Proc) {
	for {
		o := s.q.Get(p)
		sp := s.opSpan(o)
		if sp.Active() {
			// FIFO order: this op could not dequeue before the previous
			// traced op on the stream completed.
			sp.DependsOnTask(s.lastOp, obs.DepSerial)
			s.lastOp = sp.Task()
		}
		switch {
		case o.waitOn != nil:
			// cudaStreamWaitEvent: the stream stalls here until the event
			// completes; later ops in this stream wait behind it.
			p.Wait(o.waitOn)
		case o.isMarker:
			// No device work; completes in stream order.
		case o.memsetBytes > 0:
			// A fill occupies the device like a half-bandwidth internal
			// copy (one write stream, no read): model as a kernel of
			// memsetBytes cells at the copy engine's per-byte write rate.
			ns := 1e9 / s.ctx.Model().DevBandwidth
			if !o.memsetDst.IsDevice() {
				ns = 1e9 / s.ctx.Model().HostBandwidth
			}
			s.ctx.dev.ExecKernelTask(p, sp, -1, o.memsetBytes, ns, o.kernBody)
		case o.isKernel:
			s.ctx.dev.ExecKernelTask(p, sp, o.chunk, o.kernCells, o.kernNsCell, o.kernBody)
		default:
			s.ctx.dev.ExecCopyTask(p, sp, o.chunk, o.dst, o.shape.DPitch, o.src, o.shape.SPitch, o.shape.Width, o.shape.Height)
		}
		sp.End()
		o.done.Trigger()
		s.pending--
		if s.pending == 0 && s.drained != nil {
			s.drained.Trigger()
			s.drained = nil
		}
	}
}

func (s *Stream) enqueue(o *op) *sim.Event {
	o.done = s.ctx.e.NewEvent(s.name + ".op")
	s.pending++
	s.q.Put(o)
	return o.done
}

// Query reports whether all work submitted to the stream has completed
// (cudaStreamQuery == cudaSuccess).
func (s *Stream) Query() bool { return s.pending == 0 }

// Synchronize blocks until all submitted work completes
// (cudaStreamSynchronize). The caller additionally pays the blocking-call
// overhead.
func (s *Stream) Synchronize(p *sim.Proc) {
	if s.pending > 0 {
		if s.drained == nil {
			s.drained = s.ctx.e.NewEvent(s.name + ".drained")
		}
		p.Wait(s.drained)
	}
	p.Sleep(s.ctx.Model().SyncOverhead)
}

// issue charges the calling process the host-side cost of an async launch.
// Asynchronous operations may also be issued from engine context (e.g. a
// completion callback chaining the next pipeline stage) by passing a nil
// proc; the issue cost is then not charged to anyone, modeling work done
// by an already-running progress thread.
func (c *Ctx) issue(p *sim.Proc) {
	if p != nil {
		p.Sleep(c.Model().AsyncIssue)
	}
}

// MemcpyAsync enqueues a contiguous n-byte copy on the stream and returns
// its completion event (cudaMemcpyAsync).
func (c *Ctx) MemcpyAsync(p *sim.Proc, dst, src mem.Ptr, n int, s *Stream) *sim.Event {
	return c.MemcpyAsyncTask(p, dst, src, n, s, obs.Span{}, -1)
}

// MemcpyAsyncTask is MemcpyAsync with the stream-op task parented to an
// enclosing pipeline-stage span and tagged with its chunk index, so stage
// tasks decompose into stream-queue wait, engine wait and pure copy time
// in the trace. An inert parent and chunk -1 degrade to plain tracing.
func (c *Ctx) MemcpyAsyncTask(p *sim.Proc, dst, src mem.Ptr, n int, s *Stream, parent obs.Span, chunk int) *sim.Event {
	c.issue(p)
	return s.enqueue(&op{dst: dst, src: src, shape: gpu.Shape1D(n), parent: parent, chunk: chunk})
}

// Memcpy2DAsync enqueues a 2D strided copy: height rows of width bytes,
// with destination/source pitches (cudaMemcpy2DAsync).
func (c *Ctx) Memcpy2DAsync(p *sim.Proc, dst mem.Ptr, dpitch int, src mem.Ptr, spitch, width, height int, s *Stream) *sim.Event {
	return c.Memcpy2DAsyncTask(p, dst, dpitch, src, spitch, width, height, s, obs.Span{}, -1)
}

// Memcpy2DAsyncTask is Memcpy2DAsync with stage-span parenting and a chunk
// tag, like MemcpyAsyncTask.
func (c *Ctx) Memcpy2DAsyncTask(p *sim.Proc, dst mem.Ptr, dpitch int, src mem.Ptr, spitch, width, height int, s *Stream, parent obs.Span, chunk int) *sim.Event {
	c.issue(p)
	return s.enqueue(&op{dst: dst, src: src, shape: gpu.CopyShape{Width: width, Height: height, DPitch: dpitch, SPitch: spitch}, parent: parent, chunk: chunk})
}

// Memcpy performs a blocking contiguous copy (cudaMemcpy): issue on the
// default stream, wait for it, pay the synchronization overhead.
func (c *Ctx) Memcpy(p *sim.Proc, dst, src mem.Ptr, n int) {
	ev := c.MemcpyAsync(p, dst, src, n, c.def)
	p.Wait(ev)
	p.Sleep(c.Model().SyncOverhead)
}

// Memcpy2D performs a blocking 2D copy (cudaMemcpy2D).
func (c *Ctx) Memcpy2D(p *sim.Proc, dst mem.Ptr, dpitch int, src mem.Ptr, spitch, width, height int) {
	ev := c.Memcpy2DAsync(p, dst, dpitch, src, spitch, width, height, c.def)
	p.Wait(ev)
	p.Sleep(c.Model().SyncOverhead)
}

// LaunchKernel enqueues a kernel on the stream. cells×nsPerCell defines
// the modeled duration; body applies the kernel's effect to memory at
// completion time.
func (c *Ctx) LaunchKernel(p *sim.Proc, s *Stream, cells int, nsPerCell float64, body func()) *sim.Event {
	return c.LaunchKernelTask(p, s, obs.Span{}, -1, cells, nsPerCell, body)
}

// LaunchKernelTask enqueues a kernel like LaunchKernel, but traces the
// stream op as a child of parent with the given pipeline chunk index, so
// pack/unpack kernels nest under their transfer's stage span in the trace.
// An inert parent and chunk -1 degrade to LaunchKernel's plain tracing.
func (c *Ctx) LaunchKernelTask(p *sim.Proc, s *Stream, parent obs.Span, chunk, cells int, nsPerCell float64, body func()) *sim.Event {
	c.issue(p)
	return s.enqueue(&op{isKernel: true, kernCells: cells, kernNsCell: nsPerCell, kernBody: body, parent: parent, chunk: chunk})
}

// Event is a CUDA event: a marker recorded into a stream.
type Event struct {
	c  *Ctx
	ev *sim.Event
}

// NewEvent creates an unrecorded event (cudaEventCreate).
func (c *Ctx) NewEvent() *Event { return &Event{c: c} }

// Record enqueues the event marker on the stream (cudaEventRecord). The
// event completes when all prior work in the stream has completed.
// Re-recording resets the event to the new position.
func (ev *Event) Record(p *sim.Proc, s *Stream) {
	ev.c.issue(p)
	ev.ev = s.enqueue(&op{isMarker: true, chunk: -1})
}

// Query reports whether the recorded marker has completed
// (cudaEventQuery). An unrecorded event reports false, mirroring CUDA's
// cudaErrorNotReady-until-recorded behaviour closely enough for callers.
func (ev *Event) Query() bool { return ev.ev != nil && ev.ev.Fired() }

// Synchronize blocks until the recorded marker completes
// (cudaEventSynchronize). It panics if the event was never recorded.
func (ev *Event) Synchronize(p *sim.Proc) {
	if ev.ev == nil {
		panic("cuda: Synchronize on unrecorded event")
	}
	p.Wait(ev.ev)
	p.Sleep(ev.c.Model().SyncOverhead)
}

// CompletedAt returns the virtual time the marker completed; it panics if
// the event has not completed.
func (ev *Event) CompletedAt() sim.Time {
	if !ev.Query() {
		panic("cuda: CompletedAt on incomplete event")
	}
	return ev.ev.FiredAt()
}

// MemsetAsync enqueues a fill of n bytes at dst with value b
// (cudaMemsetAsync). Device fills run on the internal copy path at device
// bandwidth; host fills cost host memcpy time.
func (c *Ctx) MemsetAsync(p *sim.Proc, dst mem.Ptr, b byte, n int, s *Stream) *sim.Event {
	c.issue(p)
	return s.enqueue(&op{isKernel: true, kernCells: 0, kernNsCell: 0, kernBody: func() {
		buf := dst.Bytes(n)
		for i := range buf {
			buf[i] = b
		}
	}, memsetBytes: n, memsetDst: dst, chunk: -1})
}

// Memset performs a blocking fill (cudaMemset).
func (c *Ctx) Memset(p *sim.Proc, dst mem.Ptr, b byte, n int) {
	ev := c.MemsetAsync(p, dst, b, n, c.def)
	p.Wait(ev)
	p.Sleep(c.Model().SyncOverhead)
}

// StreamWaitEvent makes all work submitted to s after this call wait until
// the event's recorded marker completes (cudaStreamWaitEvent) — the
// standard way to express cross-stream dependencies without blocking the
// host. The event must have been recorded.
func (c *Ctx) StreamWaitEvent(p *sim.Proc, s *Stream, ev *Event) {
	if ev.ev == nil {
		panic("cuda: StreamWaitEvent on unrecorded event")
	}
	c.issue(p)
	s.enqueue(&op{waitOn: ev.ev, chunk: -1})
}
