package gpu

import (
	"fmt"

	"mv2sim/internal/alloc"

	"mv2sim/internal/mem"
	"mv2sim/internal/obs"
	"mv2sim/internal/sim"
)

// EngineKind identifies one of the device's independent execution engines.
// Fermi-class parts have two DMA copy engines (one per PCIe direction),
// an internal copy path, and the compute engine; transfers on different
// engines proceed concurrently, which is what the paper's pipeline
// exploits.
type EngineKind uint8

const (
	EngineH2D EngineKind = iota
	EngineD2H
	EngineD2D
	EngineKernel
	numEngines
)

func (k EngineKind) String() string {
	switch k {
	case EngineH2D:
		return "h2dEngine"
	case EngineD2H:
		return "d2hEngine"
	case EngineD2D:
		return "d2dEngine"
	case EngineKernel:
		return "kernelEngine"
	default:
		return "engine?"
	}
}

// EngineFor maps a copy direction to the engine that executes it.
func EngineFor(dir CopyDir) EngineKind {
	switch dir {
	case H2D:
		return EngineH2D
	case D2H:
		return EngineD2H
	case D2D:
		return EngineD2D
	default:
		panic("gpu: no engine for direction " + dir.String())
	}
}

// Stats accumulates per-device transfer counters.
type Stats struct {
	Copies     map[CopyDir]int
	Bytes      map[CopyDir]int64
	Kernels    int
	KernelTime sim.Time
}

// Config parameterizes a device.
type Config struct {
	MemBytes int       // device global memory size
	Model    CostModel // cost constants; zero value replaced by DefaultModel
}

// Device is one simulated GPU.
type Device struct {
	id          int
	e           sim.Engine
	space       *mem.Space
	alloc       *alloc.Allocator
	model       CostModel
	engines     [numEngines]*sim.Resource
	engineTrack [numEngines]string // precomputed obs track names
	stats       Stats
	hub         *obs.Hub
}

// New creates a device with the given ordinal and configuration.
func New(e sim.Engine, id int, cfg Config) *Device {
	if cfg.MemBytes <= 0 {
		panic("gpu: MemBytes must be positive")
	}
	model := cfg.Model
	if model.PCIeBandwidth == 0 {
		model = DefaultModel()
	}
	d := &Device{
		id:    id,
		e:     e,
		space: mem.NewDeviceSpace(fmt.Sprintf("gpu%d", id), id, cfg.MemBytes),
		alloc: newAllocator(cfg.MemBytes),
		model: model,
		stats: Stats{Copies: map[CopyDir]int{}, Bytes: map[CopyDir]int64{}},
	}
	for k := EngineKind(0); k < numEngines; k++ {
		name := fmt.Sprintf("gpu%d.%s", id, k)
		d.engines[k] = e.NewResource(name, 1)
		d.engineTrack[k] = name
	}
	return d
}

// SetHub attaches an observability hub; each engine occupancy becomes a
// task on the engine's own track ("gpu0.d2hEngine", ...), which is what
// BusyTimeTracer turns into DMA-engine utilization.
func (d *Device) SetHub(h *obs.Hub) { d.hub = h }

// CopyKind maps a copy direction to its obs task kind.
func CopyKind(dir CopyDir) string {
	switch dir {
	case H2D:
		return obs.KindCopyH2D
	case D2H:
		return obs.KindCopyD2H
	case D2D:
		return obs.KindCopyD2D
	default:
		return obs.KindCopyH2H
	}
}

// ID returns the device ordinal.
func (d *Device) ID() int { return d.id }

// Space returns the device's address space.
func (d *Device) Space() *mem.Space { return d.space }

// Model returns the device cost model.
func (d *Device) Model() *CostModel { return &d.model }

// Engine returns the resource serializing work on one engine.
func (d *Device) Engine(k EngineKind) *sim.Resource { return d.engines[k] }

// Stats returns a copy of the accumulated counters.
func (d *Device) Stats() Stats {
	cp := Stats{Copies: map[CopyDir]int{}, Bytes: map[CopyDir]int64{}, Kernels: d.stats.Kernels, KernelTime: d.stats.KernelTime}
	for k, v := range d.stats.Copies {
		cp.Copies[k] = v
	}
	for k, v := range d.stats.Bytes {
		cp.Bytes[k] = v
	}
	return cp
}

// Malloc allocates device memory, like cudaMalloc.
func (d *Device) Malloc(n int) (mem.Ptr, error) {
	off, err := d.alloc.Alloc(n)
	if err != nil {
		return mem.Ptr{}, err
	}
	return d.space.Base().Add(off), nil
}

// MustMalloc allocates or panics; for setup code whose sizes are static.
func (d *Device) MustMalloc(n int) mem.Ptr {
	p, err := d.Malloc(n)
	if err != nil {
		panic(err)
	}
	return p
}

// Free releases memory returned by Malloc.
func (d *Device) Free(p mem.Ptr) error {
	if p.Space() != d.space {
		return fmt.Errorf("gpu%d: free of foreign pointer %v", d.id, p)
	}
	return d.alloc.Free(p.Offset())
}

// LiveAllocs returns the number of outstanding device allocations.
func (d *Device) LiveAllocs() int { return d.alloc.LiveCount() }

// MemInUse returns the number of allocated device bytes.
func (d *Device) MemInUse() int { return d.alloc.InUse() }

// CheckAllocator validates allocator invariants (tests only).
func (d *Device) CheckAllocator() error { return d.alloc.CheckInvariants() }

// ExecCopy occupies the engine for dir, sleeps the modeled duration, then
// moves the actual bytes. It must be called from a simulation process; the
// bytes become visible at the completion instant, which is also when any
// completion event should be triggered by the caller.
//
// ExecCopy validates that device pointers belong to this device: a
// cross-device copy (GPU peer-to-peer) is not part of the simulated
// cluster, matching the paper's one-GPU-per-node setup.
func (d *Device) ExecCopy(p *sim.Proc, dst mem.Ptr, dpitch int, src mem.Ptr, spitch, width, height int) {
	d.ExecCopyTask(p, obs.Span{}, -1, dst, dpitch, src, spitch, width, height)
}

// ExecCopyTask is ExecCopy with the engine-occupancy task parented to an
// enclosing span (typically the cuda stream op) and tagged with a pipeline
// chunk index, so the critical-path analyzer can split a stage's elapsed
// time into engine-queueing (before the engine task starts) and pure
// transfer work (the engine task itself).
func (d *Device) ExecCopyTask(p *sim.Proc, parent obs.Span, chunk int, dst mem.Ptr, dpitch int, src mem.Ptr, spitch, width, height int) {
	d.checkOwned(dst)
	d.checkOwned(src)
	dir := DirOf(dst, src)
	shape := CopyShape{Width: width, Height: height, DPitch: dpitch, SPitch: spitch}
	cost := d.model.CopyCost(dir, shape)
	if dir == H2H {
		// Host copies do not occupy a device engine. The byte movement is a
		// task due at the copy's completion instant: the destination is not
		// readable before then, so the parallel engine may overlap it with
		// dispatch while the serial engine runs it at the same slot.
		d.e.TaskAt(d.e.Now()+cost, func() {
			mem.Copy2D(dst, dpitch, src, spitch, width, height)
		})
		p.Sleep(cost)
	} else {
		k := EngineFor(dir)
		eng := d.engines[k]
		eng.Acquire(p)
		sp := d.hub.StartChild(parent, CopyKind(dir), d.engineTrack[k], chunk, shape.Bytes())
		d.e.TaskAt(d.e.Now()+cost, func() {
			mem.Copy2D(dst, dpitch, src, spitch, width, height)
		})
		p.Sleep(cost)
		sp.End()
		eng.Release()
	}
	d.stats.Copies[dir]++
	d.stats.Bytes[dir] += int64(shape.Bytes())
}

// ExecKernel occupies the compute engine for the kernel's modeled duration
// and then runs body, which performs the kernel's real effect on memory.
func (d *Device) ExecKernel(p *sim.Proc, cells int, nsPerCell float64, body func()) {
	d.ExecKernelTask(p, obs.Span{}, -1, cells, nsPerCell, body)
}

// ExecKernelTask is ExecKernel with the engine-occupancy task parented and
// chunk-tagged like ExecCopyTask.
func (d *Device) ExecKernelTask(p *sim.Proc, parent obs.Span, chunk, cells int, nsPerCell float64, body func()) {
	cost := d.model.KernelCost(cells, nsPerCell)
	eng := d.engines[EngineKernel]
	eng.Acquire(p)
	sp := d.hub.StartChild(parent, obs.KindKernel, d.engineTrack[EngineKernel], chunk, cells)
	if body != nil {
		// The kernel's memory effect is due at the kernel's completion
		// instant; nothing may read its output before the stream op's done
		// event, which fires after this slot.
		d.e.TaskAt(d.e.Now()+cost, body)
	}
	p.Sleep(cost)
	sp.End()
	eng.Release()
	d.stats.Kernels++
	d.stats.KernelTime += cost
}

func (d *Device) checkOwned(p mem.Ptr) {
	if p.IsDevice() && p.Space() != d.space {
		panic(fmt.Sprintf("gpu%d: pointer %v belongs to another device", d.id, p))
	}
}
