package gpu

import "mv2sim/internal/alloc"

// Alignment is the allocation granularity of device memory. CUDA guarantees
// at least 256-byte alignment from cudaMalloc; we match it so that pitch
// and coalescing behaviour of real code carries over.
const Alignment = 256

// newAllocator creates the device-memory allocator.
func newAllocator(size int) *alloc.Allocator {
	return alloc.New(size, Alignment)
}
