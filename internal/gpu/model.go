// Package gpu simulates an NVIDIA Fermi-class GPU (the paper's Tesla C2050)
// at the fidelity the paper's experiments need: a real byte-addressable
// device memory, a first-fit allocator, independent DMA copy engines for
// each transfer direction, a kernel-execution engine, and an analytic cost
// model for contiguous and 2D-strided copies.
//
// The cost model is calibrated against the measurements the paper itself
// reports for a Tesla C2050 on PCIe 2.0 x16 (section I-A and Figure 2):
//
//	D2H nc2nc, 4 KB vector (1024 rows of 4 B): ~200 µs
//	D2H nc2c,  4 KB vector:                    ~281 µs
//	D2D2H nc2c2c, 4 KB vector:                 ~35 µs
//	D2D2H nc2c2c at 4 MB ≈ 4.8 % of D2H nc2nc
//
// The structure behind those numbers: a PCIe strided copy issues one DMA
// transaction per row, so its cost is dominated by a per-row overhead of
// hundreds of nanoseconds, while the on-device copy engine moves strided
// rows at tens of nanoseconds each and the packed result then crosses PCIe
// at full contiguous bandwidth. That per-row asymmetry is exactly what
// makes the paper's GPU-offloaded packing win, and it is preserved here.
package gpu

import (
	"mv2sim/internal/mem"
	"mv2sim/internal/sim"
)

// CopyDir identifies the direction of a copy relative to the device.
type CopyDir uint8

const (
	H2D CopyDir = iota // host to device
	D2H                // device to host
	D2D                // device to device
	H2H                // host to host (CPU memcpy, for completeness)
)

func (d CopyDir) String() string {
	switch d {
	case H2D:
		return "h2d"
	case D2H:
		return "d2h"
	case D2D:
		return "d2d"
	case H2H:
		return "h2h"
	default:
		return "dir?"
	}
}

// DirOf classifies a copy by its endpoint spaces, the way CUDA's
// cudaMemcpyDefault resolves directions under UVA.
func DirOf(dst, src mem.Ptr) CopyDir {
	switch {
	case src.IsDevice() && dst.IsDevice():
		return D2D
	case src.IsDevice():
		return D2H
	case dst.IsDevice():
		return H2D
	default:
		return H2H
	}
}

// CostModel holds every latency/bandwidth constant of the simulated GPU and
// its PCIe attachment. All bandwidths are bytes per second of virtual time.
type CostModel struct {
	// PCIeBandwidth is the effective contiguous DMA bandwidth between host
	// and device in one direction. PCIe 2.0 x16 is 8 GB/s raw; ~5.2 GB/s is
	// a typical effective pinned-memory figure on Westmere-era hosts.
	PCIeBandwidth float64

	// PCIeBase is the fixed setup cost of one host/device DMA transfer
	// (driver work, doorbell, DMA start).
	PCIeBase sim.Time

	// PCIeRowNC2NC and PCIeRowNC2C are the per-row costs of a 2D strided
	// copy crossing PCIe. A strided PCIe copy issues one transaction per
	// row. nc2nc leaves rows strided on both sides; nc2c gathers them into
	// a contiguous buffer on the far side, which the paper measured to be
	// *more* expensive per row (281 µs vs 200 µs at 1024 rows).
	PCIeRowNC2NC sim.Time
	PCIeRowNC2C  sim.Time

	// DevBandwidth is the device-internal copy-engine bandwidth (global
	// memory to global memory). C2050: ~100 GB/s effective for large
	// engine-driven copies.
	DevBandwidth float64

	// DevBase is the fixed cost of launching one device-internal copy.
	DevBase sim.Time

	// DevRow is the per-row cost of a 2D strided copy performed entirely
	// inside device memory. Tens of nanoseconds: this is the asymmetry
	// that makes GPU-offloaded packing fast.
	DevRow sim.Time

	// HostBandwidth and HostBase model plain CPU memcpy, used for host-side
	// datatype packing and pageable staging.
	HostBandwidth float64
	HostBase      sim.Time

	// SyncOverhead is the extra host-side cost of a *blocking* CUDA call
	// (stream synchronization, driver round trip) compared with an async
	// launch.
	SyncOverhead sim.Time

	// AsyncIssue is the host-side cost of issuing an asynchronous copy or
	// kernel (the caller is occupied this long before the call returns).
	AsyncIssue sim.Time

	// KernelLaunch is the fixed device-side cost of starting a kernel.
	KernelLaunch sim.Time

	// PackKernelNsPerByte is the per-byte streaming cost of the
	// gather/scatter pack kernel (one read plus one write through global
	// memory, ~50 GB/s asymptotic on Fermi). Unlike the copy engine's 2D
	// path the kernel carries no per-ROW charge — threads address cells,
	// not rows — which is exactly the asymmetry that makes it win for
	// many-short-row shapes (TEMPI, arXiv:2012.14363).
	PackKernelNsPerByte float64

	// PackKernelNsPerSegment is the per-segment (per contiguous block)
	// cost of the pack kernel: address generation and uncoalesced access
	// at each block boundary. TEMPI's kernel pack throughput is strongly
	// block-size sensitive — tiny blocks run an order of magnitude below
	// the asymptotic rate and wide blocks approach it — which a flat ns/B
	// rate cannot express. The calibration splits the old 0.025 ns/B flat
	// rate so that 4-byte segments (this repo's Figure 5 vector geometry)
	// cost exactly what they always did: 0.02 ns/B + 0.02 ns/segment / 4 B
	// = 0.025 ns/B, while wider blocks are cheaper per byte.
	PackKernelNsPerSegment float64
}

// DefaultModel returns the C2050/PCIe-2.0 calibration described in the
// package comment.
func DefaultModel() CostModel {
	return CostModel{
		PCIeBandwidth: 5.2e9,
		PCIeBase:      7 * sim.Microsecond,
		PCIeRowNC2NC:  185 * sim.Nanosecond,
		PCIeRowNC2C:   265 * sim.Nanosecond,
		DevBandwidth:  100e9,
		DevBase:       4 * sim.Microsecond,
		DevRow:        10 * sim.Nanosecond,
		HostBandwidth: 6e9,
		HostBase:      300 * sim.Nanosecond,
		SyncOverhead:  3 * sim.Microsecond,
		AsyncIssue:    1 * sim.Microsecond,
		KernelLaunch:  5 * sim.Microsecond,

		PackKernelNsPerByte:    0.02,
		PackKernelNsPerSegment: 0.02,
	}
}

// CopyShape describes the geometry of a (possibly 2D) copy for costing.
// A contiguous 1D copy of n bytes is {Width: n, Height: 1} with both
// pitches equal to n.
type CopyShape struct {
	Width  int // bytes per row
	Height int // number of rows
	DPitch int // destination pitch in bytes
	SPitch int // source pitch in bytes
}

// Shape1D returns the shape of a contiguous n-byte copy.
func Shape1D(n int) CopyShape {
	return CopyShape{Width: n, Height: 1, DPitch: n, SPitch: n}
}

// Bytes returns the payload size.
func (s CopyShape) Bytes() int { return s.Width * s.Height }

// SrcStrided reports whether the source rows are non-contiguous.
func (s CopyShape) SrcStrided() bool { return s.Height > 1 && s.SPitch != s.Width }

// DstStrided reports whether the destination rows are non-contiguous.
func (s CopyShape) DstStrided() bool { return s.Height > 1 && s.DPitch != s.Width }

// Contiguous reports whether the copy degenerates to a single linear move.
func (s CopyShape) Contiguous() bool { return !s.SrcStrided() && !s.DstStrided() }

// CopyCost returns the device/bus occupancy time of a copy of the given
// shape in the given direction. It does not include host-side call
// overheads (SyncOverhead / AsyncIssue), which the cuda layer accounts to
// the calling process.
func (m *CostModel) CopyCost(dir CopyDir, s CopyShape) sim.Time {
	bytes := s.Bytes()
	switch dir {
	case D2D:
		t := m.DevBase + sim.DurationOf(bytes, m.DevBandwidth)
		if !s.Contiguous() {
			t += sim.Time(int64(s.Height) * int64(m.DevRow))
		}
		return t
	case H2D, D2H:
		t := m.PCIeBase + sim.DurationOf(bytes, m.PCIeBandwidth)
		if !s.Contiguous() {
			// One DMA transaction per row. The per-row constant depends on
			// whether the copy also gathers into a contiguous layout.
			row := m.PCIeRowNC2NC
			if (dir == D2H && !s.DstStrided()) || (dir == H2D && !s.SrcStrided()) {
				row = m.PCIeRowNC2C
			}
			t += sim.Time(int64(s.Height) * int64(row))
		}
		return t
	case H2H:
		t := m.HostBase + sim.DurationOf(bytes, m.HostBandwidth)
		if !s.Contiguous() {
			t += sim.Time(int64(s.Height) * int64(m.HostBase) / 4)
		}
		return t
	default:
		panic("gpu: unknown copy direction")
	}
}

// KernelCost returns the execution time of a kernel processing `cells`
// elements at nsPerCell nanoseconds each, plus launch overhead.
func (m *CostModel) KernelCost(cells int, nsPerCell float64) sim.Time {
	return m.KernelLaunch + sim.Time(float64(cells)*nsPerCell)
}

// PackKernelNsPerCell returns the pack kernel's base per-byte cost with no
// segment charge, floored at the device copy engine's byte rate: the
// kernel streams through the same global memory, so no calibration may
// let it beat DevBandwidth. Segment-aware callers use PackKernelRate.
func (m *CostModel) PackKernelNsPerCell() float64 {
	floor := 1e9 / m.DevBandwidth
	if m.PackKernelNsPerByte > floor {
		return m.PackKernelNsPerByte
	}
	return floor
}

// PackKernelRate returns the kernel's effective per-byte cost for a pack
// of `bytes` total bytes spread over `segments` contiguous blocks: the
// streaming rate plus the per-segment charge amortized over the mean
// block width, floored at the copy engine's byte rate. segments <= 0
// (unknown geometry) degrades to the flat rate.
func (m *CostModel) PackKernelRate(bytes, segments int) float64 {
	r := m.PackKernelNsPerByte
	if segments > 0 && bytes > 0 && m.PackKernelNsPerSegment > 0 {
		// Per-byte share of the segment charge: nsPerSeg / meanWidth,
		// computed as a single division so the 4-byte-segment case lands
		// exactly on the historical 0.025 ns/B flat rate.
		r += m.PackKernelNsPerSegment * (float64(segments) / float64(bytes))
	}
	if floor := 1e9 / m.DevBandwidth; r < floor {
		r = floor
	}
	return r
}

// PackKernelCost returns the modeled duration of a gather/scatter pack
// kernel over `bytes` packed bytes in `segments` contiguous blocks:
// launch overhead plus the segment-amortized per-byte term, with no
// per-row DMA component.
func (m *CostModel) PackKernelCost(bytes, segments int) sim.Time {
	return m.KernelCost(bytes, m.PackKernelRate(bytes, segments))
}

// KernelPackBeatsCopy reports whether the pack kernel is modeled faster
// than the copy engine for a strided D2D pack of `rows` rows of
// `rowBytes` bytes read at the given source pitch. The copy engine pays
// DevRow per row; the kernel pays a per-byte rate (with its own per-row
// segment charge) but no DMA row charge, so short rows in quantity favor
// the kernel and long rows favor the engine.
func (m *CostModel) KernelPackBeatsCopy(rows, rowBytes, pitch int) bool {
	shape := CopyShape{Width: rowBytes, Height: rows, DPitch: rowBytes, SPitch: pitch}
	return m.PackKernelCost(rows*rowBytes, rows) < m.CopyCost(D2D, shape)
}
